package bench

// Self-healing HA failure tests: a replicated trader cluster over real
// TCP with failure detection and quorum-fenced auto-promotion armed.
// These are the wire-level counterparts of the in-process election
// tests in internal/trader — the full daemon wiring (service handlers,
// leader-hint redirects, journal fail-stop) exercised end to end, plus
// the failover-latency benchmark behind BENCH_7.json.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/journal"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

const haElectionTimeout = 150 * time.Millisecond

// haEndpoints reserves n listen ports up front: every member's cluster
// view must name the others before any member serves, and a revived
// member must come back on its old address.
func haEndpoints(tb testing.TB, n int) ([]string, []ref.ServiceRef) {
	tb.Helper()
	listeners := make([]net.Listener, n)
	endpoints := make([]string, n)
	refs := make([]ref.ServiceRef, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[i] = l
		endpoints[i] = fmt.Sprintf("tcp:127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
		refs[i] = ref.New(endpoints[i], trader.ServiceName)
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return endpoints, refs
}

// haNode is one self-healing cluster member for these tests: a trader
// served over TCP on a fixed endpoint, with its pull loop and failover
// monitor. down/serve cycle the whole incarnation; the trader itself
// stays in memory, modelling a process whose network died and revived.
type haNode struct {
	tb       testing.TB
	id       string
	endpoint string
	ref      ref.ServiceRef
	peers    []string
	tr       *trader.Trader

	node *cosm.Node
	pool *wire.Pool
	fl   *trader.Follower
	mon  *trader.Monitor
}

func newHACluster(tb testing.TB, traders []*trader.Trader, endpoints []string, refs []ref.ServiceRef) []*haNode {
	tb.Helper()
	nodes := make([]*haNode, len(traders))
	for i, tr := range traders {
		var peers []string
		for j := range refs {
			if j != i {
				peers = append(peers, refs[j].String())
			}
		}
		nodes[i] = &haNode{
			tb: tb, id: fmt.Sprintf("ha%d", i),
			endpoint: endpoints[i], ref: refs[i], peers: peers, tr: tr,
		}
	}
	return nodes
}

func (n *haNode) serve() {
	n.tb.Helper()
	svc, err := trader.NewService(n.tr)
	if err != nil {
		n.tb.Fatal(err)
	}
	n.node = cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := n.node.Host(trader.ServiceName, svc); err != nil {
		n.tb.Fatal(err)
	}
	if _, err := n.node.ListenAndServe(n.endpoint); err != nil {
		n.tb.Fatal(err)
	}
	n.pool = wire.NewPool()
	n.fl = trader.NewFollower(n.tr, nil, n.id)
	n.fl.SetResolver(func(ctx context.Context, leaderRef string) (trader.ReplSource, error) {
		r, err := ref.Parse(leaderRef)
		if err != nil {
			return nil, err
		}
		return trader.DialTrader(ctx, n.pool, r)
	})
	if hint := n.tr.LeaderHint(); hint != "" {
		n.fl.Retarget(hint)
	}
	n.mon = trader.NewMonitor(n.tr, n.fl, trader.MonitorConfig{
		SelfID:          n.id,
		SelfRef:         n.ref.String(),
		PeerRefs:        n.peers,
		ElectionTimeout: haElectionTimeout,
		Dial: func(ctx context.Context, peerRef string) (trader.ElectionPeer, error) {
			r, err := ref.Parse(peerRef)
			if err != nil {
				return nil, err
			}
			return trader.DialTrader(ctx, n.pool, r)
		},
	})
	n.mon.Start()
	n.fl.Start()
	n.tb.Cleanup(n.down)
}

func (n *haNode) down() {
	if n.node == nil {
		return
	}
	n.mon.Close()
	n.fl.Close()
	_ = n.node.Close()
	n.pool.Close()
	n.node, n.pool, n.fl, n.mon = nil, nil, nil, nil
}

// haWait polls until cond holds or the deadline passes.
func haWait(tb testing.TB, deadline time.Duration, what string, cond func() bool) {
	tb.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

// TestFailureAutoFailoverElectsMaxApplied: a journaled 3-node cluster
// with synchronous replication loses its leader. The follower holding
// more acknowledged records must win the election — max-applied-wins
// is what makes "acknowledged" mean "survives failover" — and every
// acknowledged export must be served by the new leader.
func TestFailureAutoFailoverElectsMaxApplied(t *testing.T) {
	ctx := context.Background()
	endpoints, refs := haEndpoints(t, 3)

	mk := func(id string, opts ...trader.Option) *trader.Trader {
		tr := trader.New(id, typemgr.NewRepo(), opts...)
		j, err := journal.Open(t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = j.Close() })
		if err := j.Start(tr.JournalSnapshot); err != nil {
			t.Fatal(err)
		}
		tr.SetJournal(j)
		return tr
	}
	leader := mk("ha0", trader.WithReplSync(1, 2*time.Second))
	ahead := mk("ha1")
	behind := mk("ha2")
	ahead.SetFollower(refs[0].String())
	behind.SetFollower(refs[0].String())

	nodes := newHACluster(t, []*trader.Trader{leader, ahead, behind}, endpoints, refs)
	for _, n := range nodes {
		n.serve()
	}

	pool := wire.NewPool()
	defer pool.Close()
	tc, err := trader.DialTrader(ctx, pool, refs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.DefineTypeFromSID(ctx, sidl.CarRentalSID()); err != nil {
		t.Fatal(err)
	}
	export := func(i int) {
		t.Helper()
		r := ref.New(fmt.Sprintf("tcp:10.4.0.%d:7000", i), "CarRentalService")
		if _, err := tc.Export(ctx, "CarRentalService", r, carProps(float64(50+i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		export(i)
	}
	haWait(t, 5*time.Second, "both followers caught up", func() bool {
		return ahead.ReplApplied() == behind.ReplApplied() && ahead.ReplApplied() > 0
	})

	// Freeze ha2's pull loop, then keep exporting: replication stays
	// synchronous through ha1 alone, so ha2 falls behind on records the
	// cluster acknowledged.
	nodes[2].fl.Close()
	for i := 5; i < 10; i++ {
		export(i)
	}
	if ahead.ReplApplied() <= behind.ReplApplied() {
		t.Fatalf("lag not established: ahead %d, behind %d", ahead.ReplApplied(), behind.ReplApplied())
	}

	// The leader dies. The cluster must elect ha1 — never ha2, whose
	// candidacy every up-to-date voter rejects on applied position.
	nodes[0].down()
	haWait(t, 15*time.Second, "ha1 to win the election", func() bool {
		return ahead.Role() == trader.RoleLeader
	})
	if behind.Role() == trader.RoleLeader {
		t.Fatal("the lagging follower took leadership")
	}
	if ahead.Epoch() == 0 {
		t.Fatal("winner's epoch = 0: promotion did not fence")
	}

	tw, err := trader.DialTrader(ctx, pool, refs[1])
	if err != nil {
		t.Fatal(err)
	}
	offers, err := tw.ImportWith(ctx, "CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 10 {
		t.Fatalf("new leader serves %d offers, want all 10 acknowledged", len(offers))
	}
}

// TestFailureMinorityCannotElect: a follower partitioned away from the
// rest of its 3-member cluster must never promote itself — quorum
// counts the configured cluster, not the reachable one, so a minority
// cannot mint a second leader no matter how long it retries.
func TestFailureMinorityCannotElect(t *testing.T) {
	ctx := context.Background()
	endpoints, refs := haEndpoints(t, 3)

	tr := trader.New("ha0", typemgr.NewRepo())
	tr.SetFollower(refs[1].String()) // a leader it will never reach
	nodes := newHACluster(t, []*trader.Trader{tr, nil, nil}, endpoints, refs)
	nodes[0].serve() // refs[1] and refs[2] stay dark: total partition

	time.Sleep(10 * haElectionTimeout) // many suspicion windows and rounds
	if got := tr.Role(); got != trader.RoleFollower {
		t.Fatalf("partitioned minority node is %q, must stay follower", got)
	}
	if e := tr.Epoch(); e != 0 {
		t.Fatalf("partitioned minority node fenced epoch %d without quorum", e)
	}

	// And it still refuses mutations, pointing at its (dead) leader.
	pool := wire.NewPool()
	defer pool.Close()
	tc, err := trader.DialTrader(ctx, pool, refs[0])
	if err != nil {
		t.Fatal(err)
	}
	_, err = tc.Export(ctx, "CarRentalService",
		ref.New("tcp:10.4.1.1:7000", "CarRentalService"), carProps(10))
	if err == nil || !strings.Contains(err.Error(), "not leader") {
		t.Fatalf("export on minority node = %v, want not-leader rejection", err)
	}
}

// TestFailureJournalFaultFailStop: an fsync failure on the leader's
// journal latches fail-stop. The export that hit the fault is NOT
// acknowledged, later writes are refused, the trader demotes itself,
// and reopening the directory recovers every acknowledged offer — no
// acked-but-unpersisted write exists.
func TestFailureJournalFaultFailStop(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	inj := journal.NewFaultInjector()
	j, err := journal.Open(dir, journal.Options{
		Fsync:     journal.FsyncAlways,
		FaultHook: inj.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trader.New("HA", typemgr.NewRepo())
	if err := j.Start(tr.JournalSnapshot); err != nil {
		t.Fatal(err)
	}
	tr.SetJournal(j)
	node := quietNode()
	svc, err := trader.NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(trader.ServiceName, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	pool := wire.NewPool()
	defer pool.Close()
	tc, err := trader.DialTrader(ctx, pool, node.MustRefFor(trader.ServiceName))
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.DefineTypeFromSID(ctx, sidl.CarRentalSID()); err != nil {
		t.Fatal(err)
	}
	var ackedIDs []string
	for i := 0; i < 3; i++ {
		id, err := tc.Export(ctx, "CarRentalService",
			ref.New(fmt.Sprintf("tcp:10.4.2.%d:7000", i), "CarRentalService"), carProps(float64(60+i)))
		if err != nil {
			t.Fatal(err)
		}
		ackedIDs = append(ackedIDs, id)
	}

	// The disk goes bad: the next fsync fails, permanently.
	inj.FailNow(journal.FaultFsync, errors.New("injected: disk on fire"))
	if _, err := tc.Export(ctx, "CarRentalService",
		ref.New("tcp:10.4.2.100:7000", "CarRentalService"), carProps(999)); err == nil {
		t.Fatal("export across the fsync fault was acknowledged")
	}
	if j.Failed() == nil {
		t.Fatal("journal did not latch fail-stop")
	}
	// Sticky: the fault injector fires once, but the journal stays dead.
	if _, err := tc.Export(ctx, "CarRentalService",
		ref.New("tcp:10.4.2.101:7000", "CarRentalService"), carProps(998)); err == nil {
		t.Fatal("export on a fail-stopped journal was acknowledged")
	}
	// The trader shed leadership rather than serve unpersistable writes.
	if st, err := tc.ReplStatus(ctx); err != nil || st.Role != trader.RoleFollower {
		t.Fatalf("fail-stopped trader status = %+v, %v; want demoted to follower", st, err)
	}

	// "Replace the disk": reopen the directory with a healthy journal.
	// Every acknowledged export must be there.
	_ = node.Close()
	_ = j.Close()
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	tr2 := trader.New("HA", typemgr.NewRepo())
	if snap, ok := j2.Snapshot(); ok {
		if err := tr2.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Replay(tr2.ReplayRecord); err != nil {
		t.Fatal(err)
	}
	offers, err := tr2.Import(ctx, trader.ImportRequest{Type: "CarRentalService"})
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, o := range offers {
		have[o.ID] = true
	}
	for _, id := range ackedIDs {
		if !have[id] {
			t.Fatalf("acknowledged export %s lost across the disk fault", id)
		}
	}
}

// TestFailureClientRedirectFollowsLeaderHint: a client bound to a
// follower, with redirects enabled, transparently lands its mutation
// on the leader — the wire-level check that the hint in the not-leader
// rejection round-trips through the real codec and back into a Bind.
func TestFailureClientRedirectFollowsLeaderHint(t *testing.T) {
	ctx := context.Background()
	endpoints, refs := haEndpoints(t, 2)

	leader := trader.New("HA", typemgr.NewRepo())
	follower := trader.New("HA", typemgr.NewRepo())
	follower.SetFollower(refs[0].String())
	nodes := newHACluster(t, []*trader.Trader{leader, follower}, endpoints, refs)
	// No monitors needed: this is purely the redirect path.
	for _, n := range nodes {
		svc, err := trader.NewService(n.tr)
		if err != nil {
			t.Fatal(err)
		}
		n.node = cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
		if err := n.node.Host(trader.ServiceName, svc); err != nil {
			t.Fatal(err)
		}
		if _, err := n.node.ListenAndServe(n.endpoint); err != nil {
			t.Fatal(err)
		}
		nn := n.node
		t.Cleanup(func() { _ = nn.Close() })
	}
	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}

	pool := wire.NewPool()
	defer pool.Close()
	tf, err := trader.DialTrader(ctx, pool, refs[1])
	if err != nil {
		t.Fatal(err)
	}

	// Without redirects: a clean rejection naming the leader.
	_, err = tf.Export(ctx, "CarRentalService",
		ref.New("tcp:10.4.3.1:7000", "CarRentalService"), carProps(70))
	if err == nil {
		t.Fatal("follower accepted a mutation")
	}
	hint, ok := trader.LeaderHintFromError(err)
	if !ok || hint != refs[0].String() {
		t.Fatalf("rejection %q carries hint %q, want %q", err, hint, refs[0])
	}

	// With redirects: the same call lands on the leader.
	tf.FollowLeaderHints(true)
	id, err := tf.Export(ctx, "CarRentalService",
		ref.New("tcp:10.4.3.2:7000", "CarRentalService"), carProps(71))
	if err != nil {
		t.Fatalf("redirected export failed: %v", err)
	}
	offers, err := leader.Import(ctx, trader.ImportRequest{Type: "CarRentalService"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].ID != id {
		t.Fatalf("leader offers = %+v, want the redirected export %s", offers, id)
	}
}

// BenchmarkFailoverLatency measures detection + election: the wall
// time from the leader dropping off the network until a survivor of
// the 3-node cluster has won a quorum election and serves as leader.
// The revival of the deposed node between iterations is off the clock.
func BenchmarkFailoverLatency(b *testing.B) {
	endpoints, refs := haEndpoints(b, 3)
	traders := make([]*trader.Trader, 3)
	for i := range traders {
		tr := trader.New(fmt.Sprintf("ha%d", i), typemgr.NewRepo())
		j, err := journal.Open(b.TempDir(), journal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = j.Close() })
		if err := j.Start(tr.JournalSnapshot); err != nil {
			b.Fatal(err)
		}
		tr.SetJournal(j)
		traders[i] = tr
	}
	traders[1].SetFollower(refs[0].String())
	traders[2].SetFollower(refs[0].String())
	nodes := newHACluster(b, traders, endpoints, refs)
	for _, n := range nodes {
		n.serve()
	}
	leaderOf := func() *haNode {
		var best *haNode
		for _, n := range nodes {
			// Highest epoch wins the tie: a revived stale leader claims
			// its old epoch until its monitor demotes it.
			if n.node != nil && n.tr.Role() == trader.RoleLeader &&
				(best == nil || n.tr.Epoch() > best.tr.Epoch()) {
				best = n
			}
		}
		return best
	}
	wait := func(what string, cond func() bool) {
		haWait(b, 20*time.Second, what, cond)
	}
	wait("followers synced to the leader", func() bool {
		return traders[1].LeaderHint() != "" && traders[2].LeaderHint() != ""
	})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := leaderOf()
		if l == nil {
			b.Fatal("no leader to kill")
		}
		epoch := l.tr.Epoch()
		l.down()
		wait("a survivor to win the election", func() bool {
			n := leaderOf()
			return n != nil && n.tr.Epoch() > epoch
		})
		b.StopTimer()
		// Revive the deposed node; its monitor finds the new epoch and
		// demote-rejoins, restoring the 3-node cluster for the next kill.
		l.serve()
		winner := leaderOf()
		wait("the deposed node to rejoin", func() bool {
			return l.tr.Role() == trader.RoleFollower && l.tr.Epoch() == winner.tr.Epoch()
		})
		b.StartTimer()
	}
}
