package bench

// Client-side leader caching: a redirect-enabled client remembers the
// leader a not-leader hint pointed at, steers every later mutation
// straight there, and invalidates the cached binding the moment it
// answers not-leader itself (leadership moved).

import (
	"context"
	"fmt"
	"testing"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

// leaderCachePair serves a leader/follower trader pair over TCP with no
// monitors or replication: leadership only moves when the test says so.
func leaderCachePair(t *testing.T) (traders [2]*trader.Trader, nodes [2]*cosm.Node, refs []ref.ServiceRef) {
	t.Helper()
	endpoints, refs := haEndpoints(t, 2)
	for i := range traders {
		tr := trader.New("HA", typemgr.NewRepo())
		// Both sides know the service type up front: there is no type
		// replication in this harness, and a promoted ex-follower must
		// be able to accept the exports the client will send it.
		if err := tr.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
			t.Fatal(err)
		}
		traders[i] = tr
	}
	traders[1].SetFollower(refs[0].String())
	for i, tr := range traders {
		svc, err := trader.NewService(tr)
		if err != nil {
			t.Fatal(err)
		}
		node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
		if err := node.Host(trader.ServiceName, svc); err != nil {
			t.Fatal(err)
		}
		if _, err := node.ListenAndServe(endpoints[i]); err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { _ = node.Close() })
	}
	return traders, nodes, refs
}

func leaderCacheExport(t *testing.T, tc *trader.Client, i int) string {
	t.Helper()
	ctx := context.Background()
	id, err := tc.Export(ctx, "CarRentalService",
		ref.New(fmt.Sprintf("tcp:10.4.9.%d:7000", i), "CarRentalService"), carProps(float64(50+i)))
	if err != nil {
		t.Fatalf("export %d: %v", i, err)
	}
	return id
}

// TestClientLeaderCacheSurvivesFollowerLoss: after one redirected
// mutation the client holds the leader binding, so later mutations
// succeed even when the follower it originally bound to is gone —
// proof the hint is remembered across calls rather than re-chased.
func TestClientLeaderCacheSurvivesFollowerLoss(t *testing.T) {
	ctx := context.Background()
	traders, nodes, refs := leaderCachePair(t)

	pool := wire.NewPool()
	defer pool.Close()
	tc, err := trader.DialTrader(ctx, pool, refs[1]) // bound to the follower
	if err != nil {
		t.Fatal(err)
	}
	tc.FollowLeaderHints(true)

	id1 := leaderCacheExport(t, tc, 1)

	// The follower disappears; the cached leader binding keeps working.
	_ = nodes[1].Close()
	id2 := leaderCacheExport(t, tc, 2)

	offers, err := traders[0].Import(ctx, trader.ImportRequest{Type: "CarRentalService"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, o := range offers {
		got[o.ID] = true
	}
	if len(offers) != 2 || !got[id1] || !got[id2] {
		t.Fatalf("leader offers = %+v, want %s and %s", offers, id1, id2)
	}
}

// TestClientLeaderCacheInvalidatedOnLeadershipMove: when the cached
// leader is deposed its not-leader rejection names the new leader; the
// client drops the stale binding, chases the fresh hint, and lands the
// mutation — then goes straight to the new leader on the next call.
func TestClientLeaderCacheInvalidatedOnLeadershipMove(t *testing.T) {
	ctx := context.Background()
	traders, _, refs := leaderCachePair(t)

	pool := wire.NewPool()
	defer pool.Close()
	tc, err := trader.DialTrader(ctx, pool, refs[1])
	if err != nil {
		t.Fatal(err)
	}
	tc.FollowLeaderHints(true)

	id1 := leaderCacheExport(t, tc, 1) // caches the original leader

	// Leadership moves: the old leader demotes pointing at the new one.
	traders[0].DemoteRejoin(refs[1].String())
	if err := traders[1].Promote(traders[1].Epoch() + 1); err != nil {
		t.Fatal(err)
	}

	id2 := leaderCacheExport(t, tc, 2) // stale cache → re-chase → new leader
	id3 := leaderCacheExport(t, tc, 3) // straight to the new leader

	newLeader, err := traders[1].Import(ctx, trader.ImportRequest{Type: "CarRentalService"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, o := range newLeader {
		got[o.ID] = true
	}
	if len(newLeader) != 2 || !got[id2] || !got[id3] {
		t.Fatalf("new leader offers = %+v, want %s and %s", newLeader, id2, id3)
	}
	oldLeader, err := traders[0].Import(ctx, trader.ImportRequest{Type: "CarRentalService"})
	if err != nil || len(oldLeader) != 1 || oldLeader[0].ID != id1 {
		t.Fatalf("old leader offers = %+v, %v; want only %s", oldLeader, err, id1)
	}
}
