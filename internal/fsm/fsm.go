// Package fsm implements the finite-state-machine service protocol model
// of the paper (section 3.1).
//
// An extended Service Interface Description may restrict the legal
// invocation sequences of its operations by a finite state machine: a
// list of (current state, operation, resulting state) tuples. The
// paper's running example is the car rental service with states INIT and
// SELECTED and transitions
//
//	(INIT, SelectCar, SELECTED)
//	(SELECTED, SelectCar, SELECTED)
//	(SELECTED, Commit, INIT)
//
// A Spec is the static machine description carried inside a SID; a
// Session is the per-binding runtime tracker used by the generic client
// (and optionally the server) to intercept and reject non-conforming
// invocations locally, before any network traffic occurs (section 4.2).
package fsm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors reported by Spec validation and Session stepping.
var (
	ErrNoStates      = errors.New("fsm: spec has no states")
	ErrBadInitial    = errors.New("fsm: initial state not in state set")
	ErrUnknownState  = errors.New("fsm: transition references unknown state")
	ErrDupTransition = errors.New("fsm: duplicate transition source")
	ErrIllegalOp     = errors.New("fsm: operation not allowed in current state")
)

// Transition is one allowed state transition: while in From, invoking
// operation Op moves the session to To.
type Transition struct {
	From string
	Op   string
	To   string
}

// Spec is a static FSM protocol description. The zero value (no states)
// is the "unrestricted" protocol: Restricted reports false and sessions
// built from it allow every operation.
type Spec struct {
	// States is the set of communication states.
	States []string
	// Initial is the session's starting state; it must be in States.
	Initial string
	// Transitions lists the allowed transitions. At most one transition
	// may exist per (From, Op) pair (the machine is deterministic).
	Transitions []Transition
}

// Restricted reports whether the spec actually restricts invocations.
func (s *Spec) Restricted() bool { return s != nil && len(s.States) > 0 }

// Validate checks internal consistency: a non-empty state set, a valid
// initial state, transitions over known states only, and determinism.
func (s *Spec) Validate() error {
	if !s.Restricted() {
		return nil // unrestricted specs are trivially valid
	}
	states := make(map[string]bool, len(s.States))
	for _, st := range s.States {
		states[st] = true
	}
	if len(states) == 0 {
		return ErrNoStates
	}
	if !states[s.Initial] {
		return fmt.Errorf("%w: %q", ErrBadInitial, s.Initial)
	}
	seen := make(map[[2]string]string, len(s.Transitions))
	for _, t := range s.Transitions {
		if !states[t.From] {
			return fmt.Errorf("%w: from %q", ErrUnknownState, t.From)
		}
		if !states[t.To] {
			return fmt.Errorf("%w: to %q", ErrUnknownState, t.To)
		}
		key := [2]string{t.From, t.Op}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("%w: (%s, %s) -> both %s and %s", ErrDupTransition, t.From, t.Op, prev, t.To)
		}
		seen[key] = t.To
	}
	return nil
}

// Next returns the state reached by invoking op in state from, or
// ok=false if the transition is not allowed.
func (s *Spec) Next(from, op string) (to string, ok bool) {
	for _, t := range s.Transitions {
		if t.From == from && t.Op == op {
			return t.To, true
		}
	}
	return "", false
}

// AllowedOps returns the operations legal in the given state, sorted and
// deduplicated. For an unrestricted spec it returns nil (meaning "all").
func (s *Spec) AllowedOps(state string) []string {
	if !s.Restricted() {
		return nil
	}
	set := make(map[string]bool)
	for _, t := range s.Transitions {
		if t.From == state {
			set[t.Op] = true
		}
	}
	ops := make([]string, 0, len(set))
	for op := range set {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// Reachable returns the states reachable from Initial (including it).
// Useful for spec linting: states outside this set are dead.
func (s *Spec) Reachable() map[string]bool {
	r := make(map[string]bool)
	if !s.Restricted() {
		return r
	}
	stack := []string{s.Initial}
	r[s.Initial] = true
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range s.Transitions {
			if t.From == st && !r[t.To] {
				r[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return r
}

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	c := &Spec{
		States:      append([]string(nil), s.States...),
		Initial:     s.Initial,
		Transitions: append([]Transition(nil), s.Transitions...),
	}
	return c
}

// Equal reports whether two specs describe the same machine (same state
// set, initial state, and transition set, order-insensitive).
func (s *Spec) Equal(o *Spec) bool {
	if s.Restricted() != o.Restricted() {
		return false
	}
	if !s.Restricted() {
		return true
	}
	if s.Initial != o.Initial {
		return false
	}
	ss := append([]string(nil), s.States...)
	os := append([]string(nil), o.States...)
	sort.Strings(ss)
	sort.Strings(os)
	if len(ss) != len(os) {
		return false
	}
	for i := range ss {
		if ss[i] != os[i] {
			return false
		}
	}
	key := func(t Transition) string { return t.From + "\x00" + t.Op + "\x00" + t.To }
	st := make([]string, 0, len(s.Transitions))
	ot := make([]string, 0, len(o.Transitions))
	for _, t := range s.Transitions {
		st = append(st, key(t))
	}
	for _, t := range o.Transitions {
		ot = append(ot, key(t))
	}
	sort.Strings(st)
	sort.Strings(ot)
	if len(st) != len(ot) {
		return false
	}
	for i := range st {
		if st[i] != ot[i] {
			return false
		}
	}
	return true
}

// String renders the spec in the paper's tuple notation, e.g.
// "INIT: (INIT, SelectCar, SELECTED), (SELECTED, Commit, INIT)".
func (s *Spec) String() string {
	if !s.Restricted() {
		return "<unrestricted>"
	}
	var b strings.Builder
	b.WriteString(s.Initial)
	b.WriteString(":")
	for i, t := range s.Transitions {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " (%s, %s, %s)", t.From, t.Op, t.To)
	}
	return b.String()
}

// Session tracks the communication state of one client/server binding.
// It is safe for concurrent use: a binding may be driven by UI events
// and background completions at once.
type Session struct {
	spec *Spec

	mu    sync.Mutex
	state string
}

// NewSession returns a session at the spec's initial state. A nil or
// unrestricted spec yields a session that allows every operation.
func NewSession(spec *Spec) *Session {
	s := &Session{spec: spec}
	if spec.Restricted() {
		s.state = spec.Initial
	}
	return s
}

// State returns the current communication state ("" if unrestricted).
func (s *Session) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Allowed reports whether invoking op is legal in the current state,
// without changing state.
func (s *Session) Allowed(op string) bool {
	if !s.spec.Restricted() {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.spec.Next(s.state, op)
	return ok
}

// Step attempts to invoke op: if the transition is legal the session
// moves to the resulting state, otherwise ErrIllegalOp is returned and
// the state is unchanged. This is the "local interception" of the paper.
func (s *Session) Step(op string) error {
	if !s.spec.Restricted() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	to, ok := s.spec.Next(s.state, op)
	if !ok {
		return fmt.Errorf("%w: %q in state %q (allowed: %s)",
			ErrIllegalOp, op, s.state, strings.Join(s.spec.AllowedOps(s.state), ", "))
	}
	s.state = to
	return nil
}

// Reset moves the session back to the initial state.
func (s *Session) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spec.Restricted() {
		s.state = s.spec.Initial
	}
}

// Restore forces the session to a known state of the machine. It exists
// for mirror resynchronisation: a client-side session that stepped
// optimistically can move back when the invocation turns out not to
// have reached the server's machine.
func (s *Session) Restore(state string) error {
	if !s.spec.Restricted() {
		return nil
	}
	for _, st := range s.spec.States {
		if st == state {
			s.mu.Lock()
			s.state = state
			s.mu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownState, state)
}

// CarRentalSpec returns the paper's example machine; used across tests,
// examples and benchmarks as the canonical restricted protocol.
func CarRentalSpec() *Spec {
	return &Spec{
		States:  []string{"INIT", "SELECTED"},
		Initial: "INIT",
		Transitions: []Transition{
			{From: "INIT", Op: "SelectCar", To: "SELECTED"},
			{From: "SELECTED", Op: "SelectCar", To: "SELECTED"},
			{From: "SELECTED", Op: "Commit", To: "INIT"},
		},
	}
}
