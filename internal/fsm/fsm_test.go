package fsm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    *Spec
		wantErr error
	}{
		{"nil is valid", nil, nil},
		{"zero value is valid", &Spec{}, nil},
		{"car rental", CarRentalSpec(), nil},
		{
			"bad initial",
			&Spec{States: []string{"A"}, Initial: "B"},
			ErrBadInitial,
		},
		{
			"unknown from state",
			&Spec{States: []string{"A"}, Initial: "A",
				Transitions: []Transition{{From: "X", Op: "op", To: "A"}}},
			ErrUnknownState,
		},
		{
			"unknown to state",
			&Spec{States: []string{"A"}, Initial: "A",
				Transitions: []Transition{{From: "A", Op: "op", To: "X"}}},
			ErrUnknownState,
		},
		{
			"nondeterministic",
			&Spec{States: []string{"A", "B"}, Initial: "A",
				Transitions: []Transition{
					{From: "A", Op: "op", To: "A"},
					{From: "A", Op: "op", To: "B"},
				}},
			ErrDupTransition,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.spec.Validate()
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSessionPaperExample(t *testing.T) {
	// The exact sequence from section 3.1 of the paper.
	s := NewSession(CarRentalSpec())
	if got := s.State(); got != "INIT" {
		t.Fatalf("initial state = %q, want INIT", got)
	}
	// Commit is illegal in INIT and must be intercepted locally.
	if err := s.Step("Commit"); !errors.Is(err, ErrIllegalOp) {
		t.Fatalf("Commit in INIT: err = %v, want ErrIllegalOp", err)
	}
	if got := s.State(); got != "INIT" {
		t.Fatalf("state changed on rejected op: %q", got)
	}
	steps := []struct{ op, state string }{
		{"SelectCar", "SELECTED"},
		{"SelectCar", "SELECTED"}, // re-selection is allowed
		{"Commit", "INIT"},
	}
	for _, st := range steps {
		if err := s.Step(st.op); err != nil {
			t.Fatalf("Step(%s): %v", st.op, err)
		}
		if got := s.State(); got != st.state {
			t.Fatalf("after %s: state = %q, want %q", st.op, got, st.state)
		}
	}
}

func TestUnrestrictedSession(t *testing.T) {
	for _, spec := range []*Spec{nil, {}} {
		s := NewSession(spec)
		for _, op := range []string{"anything", "goes", "here"} {
			if !s.Allowed(op) {
				t.Fatalf("unrestricted session disallowed %q", op)
			}
			if err := s.Step(op); err != nil {
				t.Fatalf("unrestricted Step(%q): %v", op, err)
			}
		}
	}
}

func TestAllowedOps(t *testing.T) {
	spec := CarRentalSpec()
	got := spec.AllowedOps("SELECTED")
	want := []string{"Commit", "SelectCar"}
	if len(got) != len(want) {
		t.Fatalf("AllowedOps(SELECTED) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllowedOps(SELECTED) = %v, want %v", got, want)
		}
	}
	if ops := spec.AllowedOps("INIT"); len(ops) != 1 || ops[0] != "SelectCar" {
		t.Fatalf("AllowedOps(INIT) = %v, want [SelectCar]", ops)
	}
	if ops := (&Spec{}).AllowedOps("X"); ops != nil {
		t.Fatalf("unrestricted AllowedOps = %v, want nil", ops)
	}
}

func TestReachable(t *testing.T) {
	spec := &Spec{
		States:  []string{"A", "B", "DEAD"},
		Initial: "A",
		Transitions: []Transition{
			{From: "A", Op: "go", To: "B"},
			{From: "DEAD", Op: "x", To: "A"}, // DEAD has no inbound edge
		},
	}
	r := spec.Reachable()
	if !r["A"] || !r["B"] {
		t.Fatalf("A and B must be reachable: %v", r)
	}
	if r["DEAD"] {
		t.Fatal("DEAD must not be reachable")
	}
}

func TestSessionReset(t *testing.T) {
	s := NewSession(CarRentalSpec())
	if err := s.Step("SelectCar"); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if got := s.State(); got != "INIT" {
		t.Fatalf("after Reset: state = %q, want INIT", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	a := CarRentalSpec()
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone must equal original")
	}
	// Mutating the clone must not affect the original.
	b.Transitions[0].Op = "Other"
	if a.Equal(b) {
		t.Fatal("mutated clone must differ")
	}
	if a.Transitions[0].Op != "SelectCar" {
		t.Fatal("original mutated through clone")
	}
	// Order-insensitivity.
	c := CarRentalSpec()
	c.Transitions[0], c.Transitions[2] = c.Transitions[2], c.Transitions[0]
	if !a.Equal(c) {
		t.Fatal("Equal must be order-insensitive")
	}
	// Unrestricted comparisons.
	var nilSpec *Spec
	if !nilSpec.Equal(&Spec{}) {
		t.Fatal("nil and zero specs are both unrestricted, must be Equal")
	}
	if nilSpec.Equal(a) {
		t.Fatal("unrestricted must differ from restricted")
	}
}

func TestConcurrentSession(t *testing.T) {
	// Many goroutines race on a session; the state must always remain a
	// valid state of the machine and rejected steps must not corrupt it.
	s := NewSession(CarRentalSpec())
	valid := map[string]bool{"INIT": true, "SELECTED": true}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ops := []string{"SelectCar", "Commit", "Bogus"}
			for j := 0; j < 200; j++ {
				_ = s.Step(ops[rng.Intn(len(ops))])
				if !valid[s.State()] {
					t.Errorf("invalid state %q", s.State())
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
}

// Property: for any legal step sequence executed on a valid spec, the
// session state always equals the state computed by folding Next over
// the sequence.
func TestStepMatchesNextProperty(t *testing.T) {
	spec := CarRentalSpec()
	f := func(choices []uint8) bool {
		s := NewSession(spec)
		ops := []string{"SelectCar", "Commit", "Nope"}
		model := spec.Initial
		for _, c := range choices {
			op := ops[int(c)%len(ops)]
			if to, ok := spec.Next(model, op); ok {
				if err := s.Step(op); err != nil {
					return false
				}
				model = to
			} else {
				if err := s.Step(op); !errors.Is(err, ErrIllegalOp) {
					return false
				}
			}
			if s.State() != model {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
