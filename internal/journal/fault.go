package journal

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
)

// Disk-fault injection. Options.FaultHook is consulted before each disk
// operation the journal performs, identified by one of the Fault*
// operation names below; a non-nil return is treated as that operation
// failing. FaultInjector is the stock deterministic schedule — fail the
// Kth fsync, tear the Kth record write, run out of space from write K
// onward — used by the fail-stop tests and the marketsim soak harness.

// Fault hook operation names.
const (
	// FaultFsync is a segment fsync: the per-append sync under
	// FsyncAlways, the background interval ticker, Sync and Close.
	FaultFsync = "fsync"
	// FaultWrite is one record frame written to the append segment.
	FaultWrite = "write"
	// FaultSnapshot is a snapshot temp-file write (Compact and the
	// replication snapshot installs).
	FaultSnapshot = "snapshot"
)

// ErrTornWrite, returned by a fault hook for a FaultWrite operation,
// makes the journal write only half of the record frame before failing
// the append — the on-disk shape a crash mid-write leaves, which
// recovery must truncate at.
var ErrTornWrite = errors.New("journal: injected torn write")

// ErrNoSpace is the injectable out-of-space disk fault.
var ErrNoSpace = fmt.Errorf("journal: injected write failure: %w", syscall.ENOSPC)

// FaultInjector is a deterministic, arm-anytime fault schedule keyed by
// operation occurrence counts. Arm it before or during a journal's
// life; Hook is the Options.FaultHook adapter. All methods are safe for
// concurrent use.
type FaultInjector struct {
	mu     sync.Mutex
	counts map[string]uint64
	rules  []faultRule
}

type faultRule struct {
	op     string
	k      uint64 // 1-based occurrence the rule starts firing at
	sticky bool   // fire on every occurrence >= k, not just the kth
	err    error
}

// NewFaultInjector returns an injector with no faults armed.
func NewFaultInjector() *FaultInjector {
	return &FaultInjector{counts: make(map[string]uint64)}
}

// FailNth arms the injector to fail the kth occurrence (1-based) of op
// with err. Returns the injector for chaining.
func (fi *FaultInjector) FailNth(op string, k uint64, err error) *FaultInjector {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.rules = append(fi.rules, faultRule{op: op, k: k, err: err})
	return fi
}

// FailFrom arms the injector to fail the kth and every later occurrence
// of op with err — the ENOSPC shape, where the disk does not come back.
func (fi *FaultInjector) FailFrom(op string, k uint64, err error) *FaultInjector {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.rules = append(fi.rules, faultRule{op: op, k: k, sticky: true, err: err})
	return fi
}

// FailNow arms the injector to fail every occurrence of op from this
// moment on — the soak harness's "the leader's disk just died" trigger.
func (fi *FaultInjector) FailNow(op string, err error) *FaultInjector {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.rules = append(fi.rules, faultRule{op: op, k: fi.counts[op] + 1, sticky: true, err: err})
	return fi
}

// Hook adapts the injector to Options.FaultHook.
func (fi *FaultInjector) Hook() func(op string) error {
	return func(op string) error {
		fi.mu.Lock()
		defer fi.mu.Unlock()
		fi.counts[op]++
		n := fi.counts[op]
		for _, r := range fi.rules {
			if r.op != op {
				continue
			}
			if n == r.k || (r.sticky && n >= r.k) {
				return r.err
			}
		}
		return nil
	}
}

// Count reports how many occurrences of op the hook has seen.
func (fi *FaultInjector) Count(op string) uint64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.counts[op]
}
