package journal

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"cosm/internal/obs"
)

func TestFailStopLatchesOnFsyncFault(t *testing.T) {
	fi := NewFaultInjector().FailNth(FaultFsync, 3, errors.New("disk on fire"))
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	j, _ := openStarted(t, t.TempDir(), Options{Fsync: FsyncAlways, Metrics: m, FaultHook: fi.Hook()})
	defer j.Close()

	if _, err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("three")); err == nil {
		t.Fatal("append over a failed fsync succeeded")
	}
	if j.Failed() == nil {
		t.Fatal("fsync fault did not latch")
	}
	if m.FsyncErrors() != 1 {
		t.Fatalf("fsync error counter = %d, want 1", m.FsyncErrors())
	}
	// The latch is sticky: every later append is rejected with
	// ErrFailStop even though the injector only armed one fault.
	if _, err := j.Append([]byte("four")); !errors.Is(err, ErrFailStop) {
		t.Fatalf("append after latch = %v, want ErrFailStop", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrFailStop) {
		t.Fatalf("sync after latch = %v, want ErrFailStop", err)
	}
}

func TestFailStopFiresOnFaultObserverOnce(t *testing.T) {
	fi := NewFaultInjector().FailNow(FaultFsync, ErrNoSpace)
	j, _ := openStarted(t, t.TempDir(), Options{Fsync: FsyncAlways, FaultHook: fi.Hook()})
	defer j.Close()

	var fired []error
	j.SetOnFault(func(err error) { fired = append(fired, err) })
	_, err1 := j.Append([]byte("one"))
	_, err2 := j.Append([]byte("two"))
	if err1 == nil || err2 == nil {
		t.Fatal("appends over a dead disk succeeded")
	}
	if len(fired) != 1 {
		t.Fatalf("OnFault fired %d times, want 1", len(fired))
	}
	if !errors.Is(fired[0], ErrNoSpace) {
		t.Fatalf("OnFault error = %v, want ErrNoSpace", fired[0])
	}

	// An observer registered after the latch fires immediately.
	var late error
	j.SetOnFault(func(err error) { late = err })
	if late == nil {
		t.Fatal("late OnFault observer not fired for an already-failed journal")
	}
}

func TestFailStopBackgroundSyncLatches(t *testing.T) {
	fi := NewFaultInjector().FailNth(FaultFsync, 1, errors.New("io error"))
	j, _ := openStarted(t, t.TempDir(), Options{Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond, FaultHook: fi.Hook()})
	defer j.Close()

	faulted := make(chan error, 1)
	j.SetOnFault(func(err error) { faulted <- err })
	if _, err := j.Append([]byte("one")); err != nil {
		t.Fatal(err) // interval policy: the append itself does not sync
	}
	select {
	case <-faulted:
	case <-time.After(2 * time.Second):
		t.Fatal("background fsync fault never latched")
	}
	if _, err := j.Append([]byte("two")); !errors.Is(err, ErrFailStop) {
		t.Fatalf("append after background latch = %v, want ErrFailStop", err)
	}
}

func TestTornWriteFaultTruncatesOnRecovery(t *testing.T) {
	dir := t.TempDir()
	fi := NewFaultInjector().FailNth(FaultWrite, 3, ErrTornWrite)
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways, FaultHook: fi.Hook()})
	if _, err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("three")); err == nil {
		t.Fatal("torn write acknowledged")
	}
	if _, err := j.Append([]byte("four")); !errors.Is(err, ErrFailStop) {
		t.Fatalf("append after torn write = %v, want ErrFailStop", err)
	}
	j.Close()

	// Recovery truncates the half-written frame and keeps the two
	// acknowledged records — exactly the crash-mid-write contract.
	j2, replayed := openStarted(t, dir, Options{})
	defer j2.Close()
	if len(replayed) != 2 {
		t.Fatalf("recovered %d records, want 2", len(replayed))
	}
	if !bytes.Equal(replayed[0], []byte("one")) || !bytes.Equal(replayed[1], []byte("two")) {
		t.Fatalf("recovered %q", replayed)
	}
	if seq, err := j2.Append([]byte("three again")); err != nil || seq != 3 {
		t.Fatalf("append after torn-write recovery = %d, %v", seq, err)
	}
}

func TestRewindToSnapshotReplacesDivergentTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		if _, err := j.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	// A plain install refuses to rewind below the local tail...
	if err := j.InstallSnapshot([]byte("SNAP"), 3); err == nil {
		t.Fatal("InstallSnapshot rewound the log")
	}
	// ...the rejoin path replaces the log wholesale, divergent tail and
	// all, snapping the sequence back to the snapshot watermark.
	if err := j.RewindToSnapshot([]byte("SNAP"), 3); err != nil {
		t.Fatal(err)
	}
	if seq, err := j.Append([]byte("x")); err != nil || seq != 4 {
		t.Fatalf("append after rewind = %d, %v", seq, err)
	}
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := j2.Snapshot()
	if !ok || !bytes.Equal(snap, []byte("SNAP")) {
		t.Fatalf("recovered snapshot = %q, %v", snap, ok)
	}
	var replayed [][]byte
	if err := j2.Replay(func(seq uint64, payload []byte) error {
		replayed = append(replayed, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || !bytes.Equal(replayed[0], []byte("x")) {
		t.Fatalf("replayed %q, want just the post-rewind record", replayed)
	}
	j2.Close()
}

func TestFaultInjectorSchedules(t *testing.T) {
	fi := NewFaultInjector().
		FailNth("op", 2, errors.New("second")).
		FailFrom("op", 4, errors.New("from four"))
	hook := fi.Hook()
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, hook("op") != nil)
	}
	want := []bool{false, true, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d fault = %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if fi.Count("op") != 6 {
		t.Fatalf("Count = %d, want 6", fi.Count("op"))
	}
	if hook("other") != nil {
		t.Fatal("unrelated op faulted")
	}
}
