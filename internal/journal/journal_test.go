package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cosm/internal/obs"
)

// openStarted opens a journal on dir and runs the full recovery
// lifecycle, returning the replayed records.
func openStarted(t *testing.T, dir string, opts Options) (*Journal, [][]byte) {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var replayed [][]byte
	if err := j.Replay(func(seq uint64, payload []byte) error {
		replayed = append(replayed, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(nil); err != nil {
		t.Fatal(err)
	}
	return j, replayed
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, replayed := openStarted(t, dir, Options{Fsync: FsyncAlways})
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(replayed))
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte(`{"op":"export"}`)}
	for i, p := range want {
		seq, err := j.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append #%d seq = %d", i, seq)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replayed := openStarted(t, dir, Options{})
	defer j2.Close()
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(want))
	}
	for i := range want {
		if !bytes.Equal(replayed[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, replayed[i], want[i])
		}
	}
	// Appends continue the sequence.
	if seq, err := j2.Append([]byte("four")); err != nil || seq != 4 {
		t.Fatalf("Append after recovery = %d, %v", seq, err)
	}
}

func TestAppendBeforeStartFails(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Append([]byte("x")); err != ErrNotStarted {
		t.Fatalf("Append before Start = %v, want ErrNotStarted", err)
	}
}

func TestReplayAfterStartFails(t *testing.T) {
	j, _ := openStarted(t, t.TempDir(), Options{})
	defer j.Close()
	if err := j.Replay(func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay after Start must fail")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := openStarted(t, t.TempDir(), Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, err := j.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// segFiles lists the journal's segment files sorted by name.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestTornTailTruncatedAtLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: append a partial frame to the segment.
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2, 3}); err != nil { // length says 9, only 3 header bytes follow
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	j2, replayed := openStarted(t, dir, Options{Metrics: m})
	defer j2.Close()
	if len(replayed) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(replayed))
	}
	if got := m.RecordsTruncated(); got != 1 {
		t.Fatalf("records_truncated = %d, want 1", got)
	}
	if got := m.RecordsRecovered(); got != 5 {
		t.Fatalf("records_recovered = %d, want 5", got)
	}
	// The truncated tail is gone from disk: a third recovery is clean.
	j2.Close()
	reg2 := obs.NewRegistry()
	m2 := NewMetrics(reg2)
	j3, replayed := openStarted(t, dir, Options{Metrics: m2})
	defer j3.Close()
	if len(replayed) != 5 || m2.RecordsTruncated() != 0 {
		t.Fatalf("second recovery: %d records, truncated=%d", len(replayed), m2.RecordsTruncated())
	}
}

func TestBitFlipCutsFromCorruptRecordOn(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	var offsets []int64
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, j.segSize)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside record 3 (index 2): recovery must keep records
	// 1-2 and drop 3-5 (frame boundaries past a corrupt record are not
	// trustworthy).
	segs := segFiles(t, dir)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[1]+recordOverhead/2] ^= 0x40
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewMetrics(obs.NewRegistry())
	j2, replayed := openStarted(t, dir, Options{Metrics: m})
	defer j2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records after bit flip, want 2", len(replayed))
	}
	for i, rec := range replayed {
		if want := fmt.Sprintf("payload-%d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
	}
	if m.RecordsTruncated() == 0 {
		t.Fatal("bit flip not counted as truncation")
	}
	// Sequence numbers are reissued after the cut.
	if seq, err := j2.Append([]byte("fresh")); err != nil || seq != 3 {
		t.Fatalf("Append after cut = %d, %v", seq, err)
	}
}

func TestSegmentRotationAndRecoveryAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	j, _ := openStarted(t, dir, Options{Fsync: FsyncNever, SegmentSize: 64})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("record-number-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(segFiles(t, dir)); got < 3 {
		t.Fatalf("expected multiple segments, got %d", got)
	}

	j2, replayed := openStarted(t, dir, Options{})
	defer j2.Close()
	if len(replayed) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(replayed), n)
	}
	for i, rec := range replayed {
		if want := fmt.Sprintf("record-number-%02d", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q", i, rec, want)
		}
	}
}

func TestCompactionFoldsLogIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncNever, SegmentSize: 128})
	var mu sync.Mutex
	state := []string{} // the "store": a list of applied records
	appendRec := func(s string) {
		mu.Lock()
		state = append(state, s)
		mu.Unlock()
		if _, err := j.Append([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	j.snapshotFn = func() ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		return []byte(strings.Join(state, ",")), nil
	}
	for i := 0; i < 10; i++ {
		appendRec(fmt.Sprintf("r%d", i))
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SnapshotSeq != 10 {
		t.Fatalf("SnapshotSeq = %d, want 10", st.SnapshotSeq)
	}
	appendRec("r10")
	appendRec("r11")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap, ok := j2.Snapshot()
	if !ok {
		t.Fatal("no snapshot recovered")
	}
	if want := "r0,r1,r2,r3,r4,r5,r6,r7,r8,r9"; string(snap) != want {
		t.Fatalf("snapshot = %q, want %q", snap, want)
	}
	var tail []string
	if err := j2.Replay(func(seq uint64, p []byte) error {
		tail = append(tail, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0] != "r10" || tail[1] != "r11" {
		t.Fatalf("post-snapshot replay = %v", tail)
	}
}

func TestAutoCompactionTriggersAndDeletesSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Fsync: FsyncNever, SegmentSize: 64, CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(func(uint64, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	if err := j.Start(func() ([]byte, error) {
		mu.Lock()
		defer mu.Unlock()
		return []byte(fmt.Sprintf("count=%d", count)), nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		mu.Lock()
		count++
		mu.Unlock()
		if _, err := j.Append([]byte("rrrrrrrrrrrrrrrr")); err != nil {
			t.Fatal(err)
		}
	}
	// The background compactor is asynchronous; force one deterministic
	// pass to bound the test, then verify covered segments are gone.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.SnapshotSeq == 0 {
		t.Fatal("auto/manual compaction never installed a snapshot")
	}
	if got := len(segFiles(t, dir)); got > 2 {
		t.Fatalf("%d segments survive compaction", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// All 64 records reconstructable: snapshot + tail replay.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap, ok := j2.Snapshot()
	if !ok {
		t.Fatal("no snapshot after auto compaction")
	}
	var snapCount int
	if _, err := fmt.Sscanf(string(snap), "count=%d", &snapCount); err != nil {
		t.Fatalf("snapshot %q: %v", snap, err)
	}
	if snapCount > 64 {
		t.Fatalf("snapshot count %d exceeds appends", snapCount)
	}
	replayed := 0
	if err := j2.Replay(func(uint64, []byte) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if uint64(replayed) < 64-j2.Stats().SnapshotSeq {
		t.Fatalf("replayed %d, snapshot seq %d: records lost", replayed, j2.Stats().SnapshotSeq)
	}
}

func TestCorruptSnapshotFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	j.snapshotFn = func() ([]byte, error) { return []byte("snapshot-state"), nil }
	for i := 0; i < 6; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	// Compaction deleted covered segments, so a corrupt snapshot now
	// genuinely loses those records — but recovery must still come up,
	// replaying whatever the log retains.
	for i := 6; i < 9; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	snapPath := filepath.Join(dir, snapName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewMetrics(obs.NewRegistry())
	j2, replayed := openStarted(t, dir, Options{Metrics: m})
	defer j2.Close()
	if _, ok := j2.Snapshot(); ok {
		t.Fatal("corrupt snapshot accepted")
	}
	if len(replayed) != 3 {
		t.Fatalf("replayed %d surviving records, want 3", len(replayed))
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			j, _ := openStarted(t, t.TempDir(), Options{Fsync: pol, Metrics: NewMetrics(reg)})
			for i := 0; i < 3; i++ {
				if _, err := j.Append([]byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParseFsync(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsync(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("ParseFsync must reject unknown policies")
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncNever, SegmentSize: 256})
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, replayed := openStarted(t, dir, Options{})
	defer j2.Close()
	if len(replayed) != workers*per {
		t.Fatalf("recovered %d of %d concurrent appends", len(replayed), workers*per)
	}
}

func TestAppendJSON(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{})
	type rec struct {
		Op string `json:"op"`
		N  int    `json:"n"`
	}
	if _, err := j.AppendJSON(rec{Op: "export", N: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, replayed := openStarted(t, dir, Options{})
	defer j2.Close()
	if len(replayed) != 1 || string(replayed[0]) != `{"op":"export","n":7}` {
		t.Fatalf("AppendJSON round trip = %q", replayed)
	}
}

func TestUnrecognisedSegmentFileTruncated(t *testing.T) {
	dir := t.TempDir()
	// A file with a segment name but garbage content (e.g. torn during
	// creation before the magic landed) must not wedge recovery.
	if err := os.WriteFile(filepath.Join(dir, segPrefix+"0000000000000001"+segSuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(obs.NewRegistry())
	j, replayed := openStarted(t, dir, Options{Metrics: m})
	defer j.Close()
	if len(replayed) != 0 {
		t.Fatalf("replayed %d records from garbage", len(replayed))
	}
	if m.RecordsTruncated() == 0 {
		t.Fatal("garbage file not counted as truncated")
	}
	if _, err := j.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalFsyncFlushOnRotation is the regression test for rotation
// stranding unsynced records: under FsyncInterval, rotating away from a
// dirty segment must fsync it before closing its descriptor (Sync and
// the background ticker only ever reach the current segment). The
// interval is set far beyond the test so the only possible fsyncs are
// the rotation flush and the Close flush.
func TestIntervalFsyncFlushOnRotation(t *testing.T) {
	dir := t.TempDir()
	m := NewMetrics(obs.NewRegistry())
	j, _ := openStarted(t, dir, Options{
		Fsync: FsyncInterval, FsyncEvery: time.Hour, SegmentSize: 64, Metrics: m,
	})
	payload := []byte("0123456789abcdef") // 16B + 16B framing = 32B per record
	for i := 0; i < 3; i++ {              // the third append rotates
		if _, err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(segFiles(t, dir)); got < 2 {
		t.Fatalf("expected a rotation, %d segments", got)
	}
	if got := m.fsyncs.Value(); got < 1 {
		t.Fatalf("fsyncs after rotation = %d, want >= 1 (outgoing segment not flushed)", got)
	}
	afterRotation := m.fsyncs.Value()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushes the pending append of the fresh segment too.
	if got := m.fsyncs.Value(); got <= afterRotation {
		t.Fatalf("fsyncs after Close = %d, want > %d (dirty tail not flushed)", got, afterRotation)
	}
	j2, replayed := openStarted(t, dir, Options{})
	defer j2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records, want 3", len(replayed))
	}
}

// TestIntervalFsyncFlushOnClose: a graceful Close under FsyncInterval
// must flush pending appends even when the interval timer never fired.
func TestIntervalFsyncFlushOnClose(t *testing.T) {
	dir := t.TempDir()
	m := NewMetrics(obs.NewRegistry())
	j, _ := openStarted(t, dir, Options{Fsync: FsyncInterval, FsyncEvery: time.Hour, Metrics: m})
	for i := 0; i < 3; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.fsyncs.Value(); got != 0 {
		t.Fatalf("fsyncs before Close = %d, want 0 (interval is an hour)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := m.fsyncs.Value(); got != 1 {
		t.Fatalf("fsyncs after Close = %d, want exactly the final flush", got)
	}
	j2, replayed := openStarted(t, dir, Options{})
	defer j2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records after graceful close, want 3", len(replayed))
	}
}

// TestTornFirstRecordOfFreshSegment covers recovery when the torn
// record is the very first record of a new segment: the empty torn
// segment must be dropped entirely and sequence numbers reissued.
func TestTornFirstRecordOfFreshSegment(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh segment whose only content after the magic is a torn frame.
	torn := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, uint64(6), segSuffix))
	if err := os.WriteFile(torn, append([]byte(segMagic), 0xAA, 0xBB, 0xCC), 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewMetrics(obs.NewRegistry())
	j2, replayed := openStarted(t, dir, Options{Metrics: m})
	defer j2.Close()
	if len(replayed) != 5 {
		t.Fatalf("replayed %d records, want 5", len(replayed))
	}
	if m.RecordsTruncated() != 1 {
		t.Fatalf("records_truncated = %d, want 1", m.RecordsTruncated())
	}
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty torn segment survives recovery: %v", err)
	}
	if seq, err := j2.Append([]byte("fresh")); err != nil || seq != 6 {
		t.Fatalf("Append after torn-first-record recovery = %d, %v", seq, err)
	}
}

// TestEmptyTrailingSegmentRecovery: a rotation (or compaction) can
// leave a magic-only trailing segment; recovery must adopt it as the
// append target without counting anything truncated.
func TestEmptyTrailingSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 4; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, uint64(5), segSuffix))
	if err := os.WriteFile(empty, []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewMetrics(obs.NewRegistry())
	j2, replayed := openStarted(t, dir, Options{Metrics: m})
	defer j2.Close()
	if len(replayed) != 4 || m.RecordsTruncated() != 0 {
		t.Fatalf("replayed %d (truncated %d), want 4 clean records", len(replayed), m.RecordsTruncated())
	}
	if seq, err := j2.Append([]byte("rec-4")); err != nil || seq != 5 {
		t.Fatalf("Append into empty trailing segment = %d, %v", seq, err)
	}
}

// TestSnapshotZeroRecordsRestart: restart from a snapshot with no
// records past the watermark (compaction folded everything).
func TestSnapshotZeroRecordsRestart(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	j.snapshotFn = func() ([]byte, error) { return []byte("full-state"), nil }
	for i := 0; i < 7; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap, ok := j2.Snapshot()
	if !ok || string(snap) != "full-state" {
		t.Fatalf("snapshot = %q, %v", snap, ok)
	}
	replayed := 0
	if err := j2.Replay(func(uint64, []byte) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed %d records past a full snapshot, want 0", replayed)
	}
	if err := j2.Start(nil); err != nil {
		t.Fatal(err)
	}
	st := j2.Stats()
	if st.LastSeq != 7 || st.SnapshotSeq != 7 {
		t.Fatalf("Stats after snapshot-only restart = %+v", st)
	}
	if seq, err := j2.Append([]byte("rec-7")); err != nil || seq != 8 {
		t.Fatalf("Append after snapshot-only restart = %d, %v", seq, err)
	}
}

// TestReadFrom covers the replication read path: positional reads,
// the max bound, and ErrCompacted once the watermark passes the
// requested position.
func TestReadFrom(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncNever, SegmentSize: 64})
	defer j.Close()
	for i := 0; i < 10; i++ {
		if _, err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := j.ReadFrom(0, 0)
	if err != nil || len(recs) != 10 {
		t.Fatalf("ReadFrom(0) = %d records, %v", len(recs), err)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || string(r.Payload) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("record %d = seq %d payload %q", i, r.Seq, r.Payload)
		}
	}
	recs, err = j.ReadFrom(5, 2)
	if err != nil || len(recs) != 2 || recs[0].Seq != 6 || recs[1].Seq != 7 {
		t.Fatalf("ReadFrom(5, max 2) = %+v, %v", recs, err)
	}
	if recs, err = j.ReadFrom(10, 0); err != nil || recs != nil {
		t.Fatalf("ReadFrom(last) = %+v, %v, want empty", recs, err)
	}

	j.snapshotFn = func() ([]byte, error) { return []byte("state"), nil }
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.ReadFrom(0, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadFrom below watermark = %v, want ErrCompacted", err)
	}
	if recs, err := j.ReadFrom(10, 0); err != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom(watermark) = %+v, %v", recs, err)
	}
}

// TestWaitFor: the long-poll primitive wakes on append and on close,
// and times out honestly.
func TestWaitFor(t *testing.T) {
	j, _ := openStarted(t, t.TempDir(), Options{Fsync: FsyncNever})
	if j.WaitFor(0, 20*time.Millisecond) {
		t.Fatal("WaitFor reported records on an empty journal")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		_, _ = j.Append([]byte("wake"))
	}()
	if !j.WaitFor(0, 5*time.Second) {
		t.Fatal("WaitFor missed the append")
	}
	if !j.WaitFor(0, 0) {
		t.Fatal("WaitFor(satisfied) must return immediately true")
	}
	done := make(chan bool, 1)
	go func() { done <- j.WaitFor(99, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if <-done {
		t.Fatal("WaitFor survived Close")
	}
}

// TestAppendAt covers the follower apply path: explicit sequence
// numbers, gap tolerance, and the monotonicity guard.
func TestAppendAt(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	if err := j.AppendAt(5, []byte("five")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAt(3, []byte("stale")); err == nil {
		t.Fatal("AppendAt must reject non-monotonic sequence numbers")
	}
	if err := j.AppendAt(9, []byte("nine")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var seqs []uint64
	if err := j2.Replay(func(seq uint64, _ []byte) error { seqs = append(seqs, seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 5 || seqs[1] != 9 {
		t.Fatalf("replayed seqs = %v, want [5 9]", seqs)
	}
}

// TestInstallSnapshot: a follower leaps over compacted history by
// installing the leader's snapshot, and the journal recovers from it.
func TestInstallSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _ := openStarted(t, dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 3; i++ {
		if _, err := j.Append([]byte("pre")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.InstallSnapshot([]byte("leader-state"), 2); err == nil {
		t.Fatal("InstallSnapshot must reject a watermark behind the local log")
	}
	if err := j.InstallSnapshot([]byte("leader-state"), 100); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.LastSeq != 100 || st.SnapshotSeq != 100 {
		t.Fatalf("Stats after install = %+v", st)
	}
	if err := j.AppendAt(101, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	snap, ok := j2.Snapshot()
	if !ok || string(snap) != "leader-state" {
		t.Fatalf("recovered snapshot = %q, %v", snap, ok)
	}
	var seqs []uint64
	if err := j2.Replay(func(seq uint64, _ []byte) error { seqs = append(seqs, seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 101 {
		t.Fatalf("replayed seqs = %v, want [101]", seqs)
	}
}
