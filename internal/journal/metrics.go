package journal

import (
	"math"
	"sync/atomic"

	"cosm/internal/obs"
)

// Metrics binds the cosm_journal_* metric families. A nil *Metrics (or
// one built over a nil registry) records nothing: the obs instruments
// are nil-safe, so the journal hot path needs no "is observability on?"
// branches.
type Metrics struct {
	appends            *obs.Counter
	appendBytes        *obs.Counter
	fsyncs             *obs.Counter
	fsyncSeconds       *obs.Histogram
	fsyncErrors        *obs.Counter
	compactions        *obs.Counter
	recordsRecovered   *obs.Counter
	recordsTruncated   *obs.Counter
	snapshotsDiscarded *obs.Counter

	// recoverySecs holds the float64 bits of the last recovery duration
	// for the cosm_journal_recovery_seconds gauge.
	recoverySecs atomic.Uint64
}

// NewMetrics registers the journal families on reg; a nil reg yields a
// nil *Metrics whose recording methods no-op.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		appends:            reg.Counter("cosm_journal_appends_total", "Records appended to the write-ahead log."),
		appendBytes:        reg.Counter("cosm_journal_append_bytes_total", "Bytes appended to the write-ahead log (framing included)."),
		fsyncs:             reg.Counter("cosm_journal_fsyncs_total", "fsync calls issued by the journal."),
		fsyncSeconds:       reg.Histogram("cosm_journal_fsync_seconds", "fsync latency in seconds.", obs.DefBuckets),
		fsyncErrors:        reg.Counter("cosm_journal_fsync_errors_total", "fsync failures; each latches the journal fail-stop."),
		compactions:        reg.Counter("cosm_journal_compactions_total", "Log-into-snapshot compactions completed."),
		recordsRecovered:   reg.Counter("cosm_journal_records_recovered", "Records replayed from the log during recovery."),
		recordsTruncated:   reg.Counter("cosm_journal_records_truncated", "Records cut at a torn or corrupt log tail during recovery."),
		snapshotsDiscarded: reg.Counter("cosm_journal_snapshots_discarded_total", "Corrupt snapshots ignored during recovery (full log replay instead)."),
	}
	reg.GaugeFunc("cosm_journal_recovery_seconds", "Duration of the last boot recovery (open + replay).",
		func() float64 { return math.Float64frombits(m.recoverySecs.Load()) })
	return m
}

// setRecoverySeconds records the last recovery duration.
func (m *Metrics) setRecoverySeconds(s float64) {
	if m == nil {
		return
	}
	m.recoverySecs.Store(math.Float64bits(s))
}

// The recording helpers below are nil-safe so the journal never
// branches on whether observability is configured.

func (m *Metrics) appendOne(frameBytes int) {
	if m == nil {
		return
	}
	m.appends.Inc()
	m.appendBytes.Add(uint64(frameBytes))
}

func (m *Metrics) fsyncObserve(seconds float64) {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
	m.fsyncSeconds.Observe(seconds)
}

func (m *Metrics) fsyncError() {
	if m == nil {
		return
	}
	m.fsyncErrors.Inc()
}

func (m *Metrics) compactOne() {
	if m == nil {
		return
	}
	m.compactions.Inc()
}

func (m *Metrics) recovered(n uint64) {
	if m == nil {
		return
	}
	m.recordsRecovered.Add(n)
}

func (m *Metrics) truncated(n uint64) {
	if m == nil {
		return
	}
	m.recordsTruncated.Add(n)
}

func (m *Metrics) snapshotDiscarded() {
	if m == nil {
		return
	}
	m.snapshotsDiscarded.Inc()
}

// RecordsRecovered exposes the recovery counter (tests, cosmcli stats
// assertions).
func (m *Metrics) RecordsRecovered() uint64 {
	if m == nil {
		return 0
	}
	return m.recordsRecovered.Value()
}

// RecordsTruncated exposes the truncation counter.
func (m *Metrics) RecordsTruncated() uint64 {
	if m == nil {
		return 0
	}
	return m.recordsTruncated.Value()
}

// FsyncErrors exposes the fsync-failure counter (fail-stop tests).
func (m *Metrics) FsyncErrors() uint64 {
	if m == nil {
		return 0
	}
	return m.fsyncErrors.Value()
}
