// Package journal is the durability layer under the market's stateful
// services: a zero-dependency, generic write-ahead log with snapshot
// compaction and crash recovery.
//
// Callers append opaque logical records (the trader journals
// export/withdraw/replace/suspect/purge, the browser journals
// register/withdraw); the journal frames them with a length prefix, a
// monotonic sequence number and a CRC32C, appends them to a segment
// file under a configurable fsync policy, and rotates segments as they
// grow. Compaction folds everything up to a watermark into a single
// snapshot payload (supplied by the caller, installed atomically via
// rename) and deletes the covered segments.
//
// Recovery is the reverse path: Open loads the latest valid snapshot,
// streams every record past its watermark to the caller's replay
// function, and truncates the log at the first torn or corrupt record —
// a crash mid-append loses at most the unsynced tail, never the
// records before it. Replayed records must be idempotent state setters
// (a re-inserted offer overwrites itself, a withdraw of an absent ID is
// a no-op): compaction snapshots may be slightly newer than their
// watermark, so a handful of records spanning the snapshot instant are
// replayed over state that already includes them.
//
// Lifecycle:
//
//	j, err := journal.Open(dir, opts)      // scan, pick snapshot, seal tail
//	if snap, ok := j.Snapshot(); ok {...}  // restore state
//	err = j.Replay(func(seq, payload) error {...})
//	err = j.Start(snapshotFn)              // enable appends + background work
//	...
//	seq, err := j.Append(payload)
//	...
//	j.Close()                              // final flush + fsync
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Errors reported by the journal.
var (
	ErrClosed     = errors.New("journal: closed")
	ErrNotStarted = errors.New("journal: not started (recovery incomplete)")
	ErrCorrupt    = errors.New("journal: corrupt")
	// ErrCompacted reports a ReadFrom position below the compaction
	// watermark: the requested records were folded into the snapshot and
	// their segments deleted, so the reader must ship the snapshot
	// instead.
	ErrCompacted = errors.New("journal: records compacted")
	// ErrFailStop reports a journal that latched a disk fault: a failed
	// fsync or record write means the log's tail can no longer be
	// trusted, so the journal rejects every further append and sync
	// rather than acknowledge records it cannot keep. The latched cause
	// is available from Failed; reads and recovery keep working.
	ErrFailStop = errors.New("journal: fail-stop (disk fault latched)")
)

// FsyncPolicy selects when appended records are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the cost of one fsync per mutation.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer (Options.FsyncEvery):
	// a crash loses at most one interval's worth of records.
	FsyncInterval
	// FsyncNever leaves syncing to the operating system: fastest, and a
	// crash loses whatever the page cache still held.
	FsyncNever
)

// ParseFsync maps the -fsync flag vocabulary (always|interval|never)
// to a policy.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always|interval|never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return "unknown"
}

// Options configure a journal.
type Options struct {
	// Fsync selects the sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncEvery time.Duration
	// SegmentSize rotates the append segment once it exceeds this many
	// bytes (default 4MiB).
	SegmentSize int64
	// CompactEvery triggers snapshot compaction after this many appends
	// since the last snapshot; 0 disables automatic compaction
	// (Compact can still be called by hand).
	CompactEvery int
	// Metrics records the journal's cosm_journal_* families; nil
	// disables recording.
	Metrics *Metrics
	// Clock injects a time source for the fsync-latency and recovery
	// metrics (tests); nil means time.Now.
	Clock func() time.Time
	// FaultHook, when set, is consulted before each disk operation
	// (FaultFsync, FaultWrite, FaultSnapshot) and a non-nil return is
	// treated as that operation failing — the disk-fault injection seam
	// used by the fail-stop tests and the chaos soak harness (see
	// FaultInjector). Production journals leave it nil.
	FaultHook func(op string) error
}

const (
	defaultFsyncEvery  = 100 * time.Millisecond
	defaultSegmentSize = 4 << 20

	segPrefix    = "wal-"
	segSuffix    = ".log"
	snapName     = "SNAPSHOT"
	snapTempName = "SNAPSHOT.tmp"

	// segMagic/snapMagic head every segment and snapshot file, versioned
	// so a future format change can coexist with old data directories.
	segMagic  = "COSMWAL1"
	snapMagic = "COSMSNP1"

	// recordOverhead is the framing around one payload: u32 length,
	// u64 sequence number, u32 CRC32C.
	recordOverhead = 4 + 8 + 4

	// maxRecordSize rejects absurd length prefixes during recovery (a
	// corrupt length would otherwise drive a giant allocation).
	maxRecordSize = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is a single-writer write-ahead log over one directory. Append
// and Sync are safe for concurrent use; Open/Replay/Start follow the
// lifecycle documented on the package.
type Journal struct {
	dir      string
	opts     Options
	now      func() time.Time
	openedAt time.Time

	mu      sync.Mutex
	started bool
	closed  bool
	seq     uint64 // last assigned sequence number
	seg     *os.File
	segSize int64
	dirty   bool // records appended since the last sync

	// failed latches the first unrecoverable disk error (fail-stop);
	// faultPending marks an OnFault notification not yet delivered, and
	// onFault is the registered observer (fired outside j.mu by
	// flushFaultNotify).
	failed       error
	faultPending bool
	onFault      func(error)

	// sinceSnap counts appends since the last snapshot, driving
	// automatic compaction.
	sinceSnap int
	snapSeq   uint64 // watermark of the installed snapshot
	snapLive  bool   // a snapshot file is installed on disk

	// snapshotFn folds current state into a snapshot payload
	// (installed by Start; nil disables compaction).
	snapshotFn func() ([]byte, error)

	// recovered holds the Open scan results consumed by Snapshot and
	// Replay.
	snapPayload []byte
	hasSnap     bool
	segments    []segmentInfo // sorted by start sequence

	// compactMu serializes whole compaction passes (the background
	// compactor and manual Compact calls must not race on the snapshot
	// temp file).
	compactMu sync.Mutex

	// notify is closed (and reset to nil) whenever the sequence advances
	// or the journal closes, waking WaitFor blockers; lazily allocated by
	// the first waiter.
	notify chan struct{}

	kick chan struct{} // compaction trigger
	stop chan struct{}
	bg   sync.WaitGroup
}

// Record is one framed log record as returned by ReadFrom.
type Record struct {
	Seq     uint64
	Payload []byte
}

// segmentInfo describes one scanned segment file.
type segmentInfo struct {
	path     string
	startSeq uint64
}

// Stats is a point-in-time summary of the journal (introspection,
// tests).
type Stats struct {
	// LastSeq is the last assigned record sequence number.
	LastSeq uint64
	// SnapshotSeq is the watermark of the installed snapshot (0 when
	// none).
	SnapshotSeq uint64
	// HasSnapshot reports whether a snapshot file is installed — a
	// snapshot at watermark 0 can still carry boot-time state that was
	// never journalled as records.
	HasSnapshot bool
	// Segments is the number of live segment files.
	Segments int
	// SinceSnapshot counts records appended since the last snapshot.
	SinceSnapshot int
}

// Open scans dir (creating it if needed), loads the newest valid
// snapshot, seals the log tail — truncating at the first torn or
// corrupt record — and returns a journal ready for Snapshot/Replay/
// Start. The directory must not be shared between live journals.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = defaultFsyncEvery
	}
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:  dir,
		opts: opts,
		now:  opts.Clock,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	if j.now == nil {
		j.now = time.Now
	}

	j.openedAt = j.now()
	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := j.scanSegments(); err != nil {
		return nil, err
	}
	return j, nil
}

// loadSnapshot reads the installed snapshot, if any. A corrupt snapshot
// is ignored (and counted), falling back to full log replay — the log
// is the source of truth, the snapshot only an accelerator, and
// compaction deletes segments only after a snapshot was durably
// installed.
func (j *Journal) loadSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(j.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	payload, seq, err := decodeSnapshot(raw)
	if err != nil {
		j.opts.Metrics.snapshotDiscarded()
		return nil
	}
	j.snapPayload, j.hasSnap, j.snapSeq, j.seq = payload, true, seq, seq
	j.snapLive = true
	return nil
}

// decodeSnapshot validates a snapshot file: magic, u64 watermark,
// payload, trailing CRC32C over everything before it.
func decodeSnapshot(raw []byte) (payload []byte, seq uint64, err error) {
	if len(raw) < len(snapMagic)+8+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, 0, fmt.Errorf("%w: snapshot checksum", ErrCorrupt)
	}
	seq = binary.LittleEndian.Uint64(body[len(snapMagic):])
	return body[len(snapMagic)+8:], seq, nil
}

func encodeSnapshot(payload []byte, seq uint64) []byte {
	buf := make([]byte, 0, len(snapMagic)+8+len(payload)+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// scanSegments indexes the segment files and seals the newest one:
// records are validated front to back and the file is truncated at the
// first torn or corrupt record, so appends resume on a clean tail.
func (j *Journal) scanSegments() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			continue
		}
		j.segments = append(j.segments, segmentInfo{path: filepath.Join(j.dir, name), startSeq: start})
	}
	sort.Slice(j.segments, func(a, b int) bool { return j.segments[a].startSeq < j.segments[b].startSeq })

	// Every segment is sealed, not just the last: a crash during
	// compaction or rotation can leave a torn record mid-chain, and
	// everything after a torn record is unreachable anyway (sequence
	// numbers past a truncation are reissued). Sealing from the first
	// torn record onward drops later segments entirely.
	truncated := 0
	for i, seg := range j.segments {
		lastSeq, validLen, tail, err := sealSegment(seg.path)
		if err != nil {
			return err
		}
		truncated += tail
		if lastSeq > j.seq {
			j.seq = lastSeq
		}
		if tail > 0 {
			// Torn chain: drop every later segment (their records would
			// reuse sequence numbers the truncation freed).
			for _, later := range j.segments[i+1:] {
				n, cerr := countRecords(later.path)
				if cerr == nil {
					truncated += n
				}
				_ = os.Remove(later.path)
			}
			j.segments = j.segments[:i+1]
			if validLen <= int64(len(segMagic)) {
				// Nothing valid left in the torn segment either.
				_ = os.Remove(seg.path)
				j.segments = j.segments[:i]
			}
			break
		}
	}
	if truncated > 0 {
		j.opts.Metrics.truncated(uint64(truncated))
	}
	return nil
}

// sealSegment walks one segment, returning the last valid sequence
// number, the byte length of the valid prefix, and how many records
// were cut when the file had to be truncated at a torn/corrupt record.
func sealSegment(path string) (lastSeq uint64, validLen int64, truncated int, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("journal: %w", err)
	}
	size := info.Size()

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		// Unrecognised file: treat the whole content as one torn record.
		if terr := f.Truncate(0); terr != nil {
			return 0, 0, 0, fmt.Errorf("journal: truncate %s: %w", path, terr)
		}
		return 0, 0, 1, nil
	}

	r := &countingReader{r: f, off: int64(len(segMagic))}
	validLen = r.off
	for {
		seq, _, rerr := readRecord(r)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// Torn or corrupt: truncate here. Everything after the first
			// bad frame is unreachable (frame boundaries are lost), so it
			// counts as one truncated record.
			if terr := f.Truncate(validLen); terr != nil {
				return 0, 0, 0, fmt.Errorf("journal: truncate %s: %w", path, terr)
			}
			return lastSeq, validLen, 1, nil
		}
		lastSeq = seq
		validLen = r.off
	}
	if validLen != size {
		if terr := f.Truncate(validLen); terr != nil {
			return 0, 0, 0, fmt.Errorf("journal: truncate %s: %w", path, terr)
		}
	}
	return lastSeq, validLen, 0, nil
}

// countRecords returns the number of valid records in a segment
// (best-effort, for truncation accounting).
func countRecords(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		return 1, nil
	}
	n := 0
	r := &countingReader{r: f, off: int64(len(segMagic))}
	for {
		_, _, err := readRecord(r)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n + 1, nil
		}
		n++
	}
}

// countingReader tracks the byte offset of a sequential reader so
// sealSegment knows where the valid prefix ends.
type countingReader struct {
	r   io.Reader
	off int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

// readRecord decodes one framed record: u32 payload length, u64
// sequence, payload, u32 CRC32C over sequence+payload. io.EOF means a
// clean end; any other error means a torn or corrupt frame.
func readRecord(r io.Reader) (seq uint64, payload []byte, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: torn length", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxRecordSize {
		return 0, nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	if _, err := io.ReadFull(r, hdr[4:12]); err != nil {
		return 0, nil, fmt.Errorf("%w: torn header", ErrCorrupt)
	}
	seq = binary.LittleEndian.Uint64(hdr[4:12])
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: torn payload", ErrCorrupt)
	}
	payload = buf[:n]
	sum := binary.LittleEndian.Uint32(buf[n:])
	crc := crc32.Checksum(hdr[4:12], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != sum {
		return 0, nil, fmt.Errorf("%w: checksum mismatch at seq %d", ErrCorrupt, seq)
	}
	return seq, payload, nil
}

// frameRecord builds the on-disk frame for one record.
func frameRecord(seq uint64, payload []byte) []byte {
	buf := make([]byte, 0, recordOverhead+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf[4:12], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// appendRecord frames and writes one record to w.
func appendRecord(w io.Writer, seq uint64, payload []byte) (int, error) {
	return w.Write(frameRecord(seq, payload))
}

// Snapshot returns the recovered snapshot payload, if one was
// installed. Valid between Open and Start (Start releases the buffer).
func (j *Journal) Snapshot() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapPayload, j.hasSnap
}

// Replay streams every recovered record with a sequence number past the
// snapshot watermark to fn, in order. A non-nil error from fn aborts
// the replay and is returned. Must be called before Start.
func (j *Journal) Replay(fn func(seq uint64, payload []byte) error) error {
	j.mu.Lock()
	if j.started {
		j.mu.Unlock()
		return errors.New("journal: Replay after Start")
	}
	segments := append([]segmentInfo(nil), j.segments...)
	snapSeq := j.snapSeq
	j.mu.Unlock()

	recovered := uint64(0)
	for _, seg := range segments {
		err := func() error {
			f, err := os.Open(seg.path)
			if err != nil {
				return fmt.Errorf("journal: %w", err)
			}
			defer f.Close()
			magic := make([]byte, len(segMagic))
			if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
				return fmt.Errorf("%w: segment header %s", ErrCorrupt, seg.path)
			}
			for {
				seq, payload, err := readRecord(f)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					// The sealed prefix re-read corrupt: disk went bad
					// between Open and Replay. Surface it.
					return fmt.Errorf("journal: replay %s: %w", seg.path, err)
				}
				if seq <= snapSeq {
					continue // folded into the snapshot already
				}
				if err := fn(seq, payload); err != nil {
					return err
				}
				recovered++
			}
		}()
		if err != nil {
			return err
		}
	}
	j.opts.Metrics.recovered(recovered)
	return nil
}

// Start seals recovery and enables appends: the append segment is
// opened (continuing the newest recovered segment or starting a fresh
// one), and the background fsync ticker and compactor are launched.
// snapshotFn folds current state into a snapshot payload for
// compaction; nil disables compaction.
func (j *Journal) Start(snapshotFn func() ([]byte, error)) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.started {
		return errors.New("journal: already started")
	}
	j.snapshotFn = snapshotFn
	// Release the recovery buffer; Snapshot is a recovery-phase call.
	j.snapPayload, j.hasSnap = nil, false

	if n := len(j.segments); n > 0 {
		f, err := os.OpenFile(j.segments[n-1].path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		j.seg, j.segSize = f, info.Size()
	} else if err := j.openSegmentLocked(j.seq + 1); err != nil {
		return err
	}
	j.started = true
	j.opts.Metrics.setRecoverySeconds(j.now().Sub(j.openedAt).Seconds())

	if j.opts.Fsync == FsyncInterval {
		j.bg.Add(1)
		go j.syncLoop()
	}
	if j.opts.CompactEvery > 0 && j.snapshotFn != nil {
		j.bg.Add(1)
		go j.compactLoop()
	}
	return nil
}

// openSegmentLocked creates the segment whose first record will carry
// startSeq and makes it the append target; the caller holds j.mu.
func (j *Journal) openSegmentLocked(startSeq uint64) error {
	path := filepath.Join(j.dir, fmt.Sprintf("%s%016x%s", segPrefix, startSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if j.seg != nil {
		// Rotation must not strand unsynced records: Sync/Close and the
		// interval ticker only reach the *current* segment's descriptor,
		// so a dirty outgoing segment is flushed here before it is closed
		// — otherwise its tail would stay in the page cache forever.
		// FsyncNever keeps its contract and leaves flushing to the OS.
		if j.dirty && j.opts.Fsync != FsyncNever {
			if err := j.syncLocked(); err != nil {
				_ = f.Close()
				_ = os.Remove(path)
				return err
			}
		}
		_ = j.seg.Close()
	}
	j.seg, j.segSize = f, int64(len(segMagic))
	j.segments = append(j.segments, segmentInfo{path: path, startSeq: startSeq})
	return nil
}

// Append writes one logical record and returns its sequence number.
// Under FsyncAlways the record is on stable storage when Append
// returns; under the other policies it is durable after the next sync.
func (j *Journal) Append(payload []byte) (uint64, error) {
	return j.append(0, payload)
}

// AppendAt writes one record under an explicit sequence number — the
// replication apply path, where a follower persists records with the
// sequence numbers the leader assigned. seq must exceed the journal's
// last sequence number; gaps are allowed (a snapshot install leaps the
// sequence forward past compacted history).
func (j *Journal) AppendAt(seq uint64, payload []byte) error {
	_, err := j.append(seq, payload)
	return err
}

// append is the shared core of Append (at==0: assign the next sequence
// number) and AppendAt (at>0: use the caller's).
func (j *Journal) append(at uint64, payload []byte) (uint64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	if !j.started {
		j.mu.Unlock()
		return 0, ErrNotStarted
	}
	if j.failed != nil {
		err := fmt.Errorf("%w: %v", ErrFailStop, j.failed)
		j.mu.Unlock()
		return 0, err
	}
	seq := j.seq + 1
	if at > 0 {
		if at <= j.seq {
			j.mu.Unlock()
			return 0, fmt.Errorf("journal: AppendAt seq %d not past last seq %d", at, j.seq)
		}
		seq = at
	}
	if j.segSize >= j.opts.SegmentSize {
		if err := j.openSegmentLocked(seq); err != nil {
			j.mu.Unlock()
			j.flushFaultNotify() // rotation syncs the outgoing segment; that sync may have latched
			return 0, err
		}
	}
	j.seq = seq
	frame := frameRecord(seq, payload)
	var n int
	err := j.fault(FaultWrite)
	switch {
	case err == nil:
		n, err = j.seg.Write(frame)
	case errors.Is(err, ErrTornWrite):
		// Simulated torn write: half the frame reaches the segment —
		// the shape a crash mid-write leaves on disk — and the append
		// fails.
		n, _ = j.seg.Write(frame[:len(frame)/2])
	}
	j.segSize += int64(n)
	if err != nil {
		// A failed record write is as terminal as a failed fsync: the
		// segment tail is in an unknown state, so the journal latches
		// fail-stop rather than risk framing later records after garbage.
		err = fmt.Errorf("journal: append: %w", err)
		j.latchLocked(err)
		j.mu.Unlock()
		j.flushFaultNotify()
		return 0, err
	}
	j.dirty = true
	j.sinceSnap++
	j.notifyLocked()
	kick := j.opts.CompactEvery > 0 && j.sinceSnap >= j.opts.CompactEvery
	var syncErr error
	if j.opts.Fsync == FsyncAlways {
		syncErr = j.syncLocked()
	}
	j.mu.Unlock()

	j.opts.Metrics.appendOne(n)
	if syncErr != nil {
		j.flushFaultNotify()
		return 0, syncErr
	}
	if kick {
		select {
		case j.kick <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// notifyLocked wakes WaitFor blockers; the caller holds j.mu.
func (j *Journal) notifyLocked() {
	if j.notify != nil {
		close(j.notify)
		j.notify = nil
	}
}

// WaitFor blocks until the journal's last sequence number exceeds
// afterSeq (reporting true) or until timeout elapses or the journal
// closes (reporting false). It is the long-poll primitive under the
// replication pull endpoint: a caught-up follower parks here instead of
// busy-polling.
func (j *Journal) WaitFor(afterSeq uint64, timeout time.Duration) bool {
	if j == nil {
		return false
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		j.mu.Lock()
		if j.seq > afterSeq {
			j.mu.Unlock()
			return true
		}
		if j.closed || !j.started {
			j.mu.Unlock()
			return false
		}
		if j.notify == nil {
			j.notify = make(chan struct{})
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			j.mu.Lock()
			ok := j.seq > afterSeq
			j.mu.Unlock()
			return ok
		}
	}
}

// ReadFrom returns up to max records (unlimited when max <= 0) with
// sequence numbers greater than afterSeq, in order — the replication
// read path. It returns ErrCompacted when afterSeq lies below the
// compaction watermark: those records were folded into the snapshot, so
// the caller must ship the snapshot instead. Reading is safe
// concurrently with appends and compaction; a partially written or
// concurrently deleted tail is treated as end-of-log, never an error.
func (j *Journal) ReadFrom(afterSeq uint64, max int) ([]Record, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil, ErrClosed
	}
	snapSeq, last := j.snapSeq, j.seq
	segments := append([]segmentInfo(nil), j.segments...)
	j.mu.Unlock()

	if afterSeq < snapSeq {
		return nil, ErrCompacted
	}
	if afterSeq >= last {
		return nil, nil
	}
	var out []Record
	for i, seg := range segments {
		// A segment is skippable when its successor starts at or below
		// the first wanted sequence number.
		if i+1 < len(segments) && segments[i+1].startSeq <= afterSeq+1 {
			continue
		}
		done, err := readSegmentFrom(seg.path, afterSeq, max, &out)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Compaction deleted the segment between the snapshot of
				// the list above and the open: every record it held is at
				// or below the (new) watermark, hence ≤ afterSeq or
				// retrievable from a later surviving segment.
				continue
			}
			return nil, err
		}
		if done {
			break
		}
	}
	return out, nil
}

// readSegmentFrom appends the records of one segment past afterSeq to
// out, honouring max; done reports that max was reached. Torn or
// corrupt frames end the scan cleanly — on the live tail they are an
// in-flight append, not corruption.
func readSegmentFrom(path string, afterSeq uint64, max int, out *[]Record) (done bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		return false, nil
	}
	for {
		seq, payload, err := readRecord(f)
		if err != nil {
			return false, nil // io.EOF or an in-flight tail write
		}
		if seq <= afterSeq {
			continue
		}
		*out = append(*out, Record{Seq: seq, Payload: payload})
		if max > 0 && len(*out) >= max {
			return true, nil
		}
	}
}

// InstallSnapshot replaces the journal's history with a snapshot
// received from a replication leader: the payload becomes the local
// compaction snapshot with watermark seq, the sequence number leaps
// forward to seq, and every existing segment (all of whose records the
// snapshot now covers) is deleted. seq must be at or past the last
// local sequence number — a follower only installs snapshots to jump
// *over* compacted history, never to rewind. The caller is the single
// writer (the follower apply loop), per the journal's contract.
func (j *Journal) InstallSnapshot(payload []byte, seq uint64) error {
	return j.installSnapshot(payload, seq, false)
}

// RewindToSnapshot installs a leader snapshot that is allowed to land
// *behind* the local tail — the rejoin path of a deposed leader, whose
// journal may hold a divergent suffix of records it acknowledged to no
// one and that the elected leader's history does not contain. The local
// log is replaced wholesale: the divergent tail is discarded with the
// rest of the covered history, and the sequence number snaps to the
// snapshot watermark.
func (j *Journal) RewindToSnapshot(payload []byte, seq uint64) error {
	return j.installSnapshot(payload, seq, true)
}

func (j *Journal) installSnapshot(payload []byte, seq uint64, allowRewind bool) error {
	if j == nil {
		return nil
	}
	j.compactMu.Lock()
	defer j.compactMu.Unlock()
	j.mu.Lock()
	if j.closed || !j.started {
		j.mu.Unlock()
		return ErrClosed
	}
	if j.failed != nil {
		err := fmt.Errorf("%w: %v", ErrFailStop, j.failed)
		j.mu.Unlock()
		return err
	}
	if seq < j.seq && !allowRewind {
		j.mu.Unlock()
		return fmt.Errorf("journal: snapshot watermark %d behind last seq %d", seq, j.seq)
	}
	j.mu.Unlock()

	if err := j.fault(FaultSnapshot); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	tmp := filepath.Join(j.dir, snapTempName)
	if err := os.WriteFile(tmp, encodeSnapshot(payload, seq), 0o644); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := syncFile(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		return fmt.Errorf("journal: install snapshot: %w", err)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	old := j.segments
	j.segments = nil
	if j.seg != nil {
		_ = j.seg.Close()
		j.seg = nil
	}
	// Old segments go before the new one is created: a rotation may have
	// left an empty segment already carrying the new segment's name, and
	// a crash in the gap recovers cleanly from the installed snapshot.
	for _, seg := range old {
		_ = os.Remove(seg.path)
	}
	j.dirty = false
	j.snapSeq, j.seq = seq, seq
	j.snapLive = true
	j.sinceSnap = 0
	if err := j.openSegmentLocked(seq + 1); err != nil {
		return err
	}
	j.notifyLocked()
	return nil
}

// Sync forces appended records to stable storage (the drain hook's
// final flush).
func (j *Journal) Sync() error {
	j.mu.Lock()
	if j.closed || j.seg == nil {
		j.mu.Unlock()
		return nil
	}
	err := j.syncLocked()
	j.mu.Unlock()
	j.flushFaultNotify()
	return err
}

func (j *Journal) syncLocked() error {
	if j.failed != nil {
		return fmt.Errorf("%w: %v", ErrFailStop, j.failed)
	}
	if !j.dirty {
		return nil
	}
	start := j.now()
	err := j.fault(FaultFsync)
	if err == nil {
		err = j.seg.Sync()
	}
	j.opts.Metrics.fsyncObserve(j.now().Sub(start).Seconds())
	if err != nil {
		err = fmt.Errorf("journal: fsync: %w", err)
		j.opts.Metrics.fsyncError()
		j.latchLocked(err)
		return err
	}
	j.dirty = false
	return nil
}

// fault consults the injection hook for one disk operation.
func (j *Journal) fault(op string) error {
	if j.opts.FaultHook == nil {
		return nil
	}
	return j.opts.FaultHook(op)
}

// latchLocked records the first unrecoverable disk error: the journal
// goes fail-stop — further appends and syncs are rejected — because a
// record acknowledged after a failed write or fsync could be silently
// lost. The caller holds j.mu.
func (j *Journal) latchLocked(err error) {
	if j.failed != nil {
		return
	}
	j.failed = err
	j.faultPending = true
	j.notifyLocked() // wake WaitFor blockers: this log will not advance
}

// flushFaultNotify delivers the one-shot OnFault callback outside j.mu
// (the observer typically demotes a trader, which takes its own locks).
func (j *Journal) flushFaultNotify() {
	j.mu.Lock()
	fire := j.faultPending && j.onFault != nil
	if fire {
		j.faultPending = false // leave pending if no observer yet: SetOnFault fires it
	}
	err, fn := j.failed, j.onFault
	j.mu.Unlock()
	if fire {
		fn(err)
	}
}

// SetOnFault registers an observer invoked once when the journal
// latches fail-stop. The callback runs outside the journal's locks; a
// journal that already failed fires it immediately.
func (j *Journal) SetOnFault(fn func(error)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.onFault = fn
	fire := j.failed != nil && fn != nil
	if fire {
		j.faultPending = false
	}
	err := j.failed
	j.mu.Unlock()
	if fire {
		fn(err)
	}
}

// Failed reports the latched fail-stop error, nil while healthy. Once
// non-nil the journal rejects appends and syncs; reads keep working.
func (j *Journal) Failed() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// syncLoop is the FsyncInterval background ticker. A failed background
// sync is never discarded: syncLocked bumps
// cosm_journal_fsync_errors_total and latches the journal fail-stop,
// and Sync delivers the OnFault notification — the next Append returns
// ErrFailStop instead of acknowledging a record the disk may not hold.
func (j *Journal) syncLoop() {
	defer j.bg.Done()
	t := time.NewTicker(j.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := j.Sync(); err != nil {
				return // latched fail-stop: nothing further to sync
			}
		case <-j.stop:
			return
		}
	}
}

// compactLoop runs snapshot compaction whenever the append path signals
// the threshold was crossed.
func (j *Journal) compactLoop() {
	defer j.bg.Done()
	for {
		select {
		case <-j.kick:
			_ = j.Compact()
		case <-j.stop:
			return
		}
	}
}

// Compact folds the log into a snapshot: it rotates to a fresh
// segment, records the watermark, asks the snapshot function for the
// current state, installs the snapshot atomically (write temp, fsync,
// rename), and deletes every segment fully covered by the watermark.
// The snapshot may include mutations newer than the watermark; replay
// over it is idempotent by the package contract.
func (j *Journal) Compact() error {
	j.compactMu.Lock()
	defer j.compactMu.Unlock()
	j.mu.Lock()
	if j.closed || !j.started {
		j.mu.Unlock()
		return ErrClosed
	}
	fn := j.snapshotFn
	if fn == nil {
		j.mu.Unlock()
		return errors.New("journal: no snapshot function")
	}
	// Seal the watermark: everything ≤ seq will be covered. Rotate so
	// later appends land in a segment the cleanup below keeps, and sync
	// the sealed segment — the snapshot must never be the only copy of
	// records the log acknowledged but left in the page cache.
	if err := j.syncLocked(); err != nil {
		j.mu.Unlock()
		j.flushFaultNotify()
		return err
	}
	watermark := j.seq
	// An empty append segment needs no rotation (and rotating would
	// recreate its own name): it already holds no record ≤ watermark.
	if j.segSize > int64(len(segMagic)) {
		if err := j.openSegmentLocked(j.seq + 1); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	j.sinceSnap = 0
	j.mu.Unlock()

	payload, err := fn()
	if err != nil {
		return fmt.Errorf("journal: snapshot state: %w", err)
	}

	// A failed snapshot write does not latch: the log remains the
	// authoritative copy and compaction is simply retried later.
	if err := j.fault(FaultSnapshot); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	tmp := filepath.Join(j.dir, snapTempName)
	if err := os.WriteFile(tmp, encodeSnapshot(payload, watermark), 0o644); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := syncFile(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		return fmt.Errorf("journal: install snapshot: %w", err)
	}
	j.opts.Metrics.compactOne()

	// Drop segments whose every record is ≤ watermark: those are the
	// segments followed by another segment starting at or below
	// watermark+1.
	j.mu.Lock()
	j.snapSeq = watermark
	j.snapLive = true
	keep := j.segments[:0]
	for i, seg := range j.segments {
		covered := i+1 < len(j.segments) && j.segments[i+1].startSeq <= watermark+1
		if covered {
			_ = os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	j.segments = keep
	j.mu.Unlock()
	return nil
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync %s: %w", path, err)
	}
	return nil
}

// Stats returns a snapshot of the journal's bookkeeping.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		LastSeq:       j.seq,
		SnapshotSeq:   j.snapSeq,
		HasSnapshot:   j.snapLive,
		Segments:      len(j.segments),
		SinceSnapshot: j.sinceSnap,
	}
}

// Close stops the background goroutines, flushes and syncs the append
// segment, and closes it. Safe to call multiple times; nil-safe so
// daemons can `defer j.Close()` unconditionally.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	close(j.stop)
	j.notifyLocked() // release WaitFor blockers
	j.mu.Unlock()
	j.bg.Wait()

	j.mu.Lock()
	var err error
	if j.seg != nil {
		// An already fail-stopped journal closes without a final sync:
		// the error was surfaced when it latched, and Close is cleanup.
		if j.failed == nil {
			err = j.syncLocked()
		}
		if cerr := j.seg.Close(); err == nil {
			err = cerr
		}
		j.seg = nil
	}
	j.mu.Unlock()
	j.flushFaultNotify()
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// AppendJSON marshals v and appends it — the convenience every logical-
// record producer in the repo uses.
func (j *Journal) AppendJSON(v any) (uint64, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("journal: encode record: %w", err)
	}
	return j.Append(payload)
}
