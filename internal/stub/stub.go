// Package stub is the counter-example the paper argues against: a
// conventional, statically compiled RPC client and server for the car
// rental service (section 1's "most current implementations ... require
// the client application to have very specific a-priori knowledge of the
// service addressed as well as about the related protocol").
//
// Everything here is hand-written against compile-time knowledge of
// CarRentalService: Go structs mirror the SIDL types, and the
// marshalling code is fixed. It exists (a) as the baseline for the
// Fig. 3 experiment, quantifying what dynamic mediation costs relative
// to compiled stubs, and (b) as a byte-compatibility proof: the static
// stubs speak exactly the wire encoding the dynamic runtime derives from
// the SID, so a static client can call a dynamically dispatched server
// and vice versa — the property a stub generator would rely on.
package stub

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cosm/internal/ref"
	"cosm/internal/wire"
)

// CarModel mirrors the SIDL enum CarModel_t.
type CarModel uint8

// Car models, in SIDL ordinal order.
const (
	AUDI CarModel = iota
	FIATUno
	VWGolf
)

// Currency mirrors the SIDL enum Currency_t.
type Currency uint8

// Currencies, in SIDL ordinal order.
const (
	USD Currency = iota
	DEM
	FF
	SFR
	GBP
)

// SelectCarRequest mirrors SelectCar_t.
type SelectCarRequest struct {
	Model       CarModel
	BookingDate string
	Days        int32
}

// SelectCarReturn mirrors SelectCarReturn_t.
type SelectCarReturn struct {
	Available bool
	Charge    float64
	Currency  Currency
}

// BookCarReturn mirrors BookCarReturn_t.
type BookCarReturn struct {
	OK           bool
	Confirmation string
}

// ErrDecode reports malformed response bytes.
var ErrDecode = errors.New("stub: malformed response")

// --- hand-rolled wire encoding, byte-compatible with the dynamic
// runtime's SID-derived encoding ---

func appendChunk(dst, chunk []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(chunk)))
	return append(dst, chunk...)
}

func consumeChunk(data []byte) (chunk, rest []byte, err error) {
	n, size := binary.Uvarint(data)
	if size <= 0 || uint64(len(data)-size) < n {
		return nil, nil, ErrDecode
	}
	return data[size : size+int(n)], data[size+int(n):], nil
}

func encodeSelectCar(req SelectCarRequest) []byte {
	body := binary.AppendUvarint(nil, uint64(req.Model))
	body = binary.AppendUvarint(body, uint64(len(req.BookingDate)))
	body = append(body, req.BookingDate...)
	return binary.BigEndian.AppendUint32(body, uint32(req.Days))
}

func decodeSelectCar(data []byte) (SelectCarRequest, error) {
	var req SelectCarRequest
	model, size := binary.Uvarint(data)
	if size <= 0 || model > uint64(VWGolf) {
		return req, ErrDecode
	}
	req.Model = CarModel(model)
	data = data[size:]
	n, size := binary.Uvarint(data)
	if size <= 0 || uint64(len(data)-size) < n {
		return req, ErrDecode
	}
	req.BookingDate = string(data[size : size+int(n)])
	data = data[size+int(n):]
	if len(data) != 4 {
		return req, ErrDecode
	}
	req.Days = int32(binary.BigEndian.Uint32(data))
	return req, nil
}

func encodeSelectReturn(r SelectCarReturn) []byte {
	body := make([]byte, 0, 16)
	body = appendBool(body, r.Available)
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(r.Charge))
	return binary.AppendUvarint(body, uint64(r.Currency))
}

func decodeSelectReturn(data []byte) (SelectCarReturn, error) {
	var r SelectCarReturn
	if len(data) < 10 {
		return r, ErrDecode
	}
	switch data[0] {
	case 0:
	case 1:
		r.Available = true
	default:
		return r, ErrDecode
	}
	r.Charge = math.Float64frombits(binary.BigEndian.Uint64(data[1:9]))
	cur, size := binary.Uvarint(data[9:])
	if size <= 0 || len(data[9+size:]) != 0 || cur > uint64(GBP) {
		return r, ErrDecode
	}
	r.Currency = Currency(cur)
	return r, nil
}

func encodeBookReturn(r BookCarReturn) []byte {
	body := make([]byte, 0, 8+len(r.Confirmation))
	body = appendBool(body, r.OK)
	body = binary.AppendUvarint(body, uint64(len(r.Confirmation)))
	return append(body, r.Confirmation...)
}

func decodeBookReturn(data []byte) (BookCarReturn, error) {
	var r BookCarReturn
	if len(data) < 2 || data[0] > 1 {
		return r, ErrDecode
	}
	r.OK = data[0] == 1
	n, size := binary.Uvarint(data[1:])
	if size <= 0 || uint64(len(data)-1-size) != n {
		return r, ErrDecode
	}
	r.Confirmation = string(data[1+size:])
	return r, nil
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Client is the statically compiled car rental client.
type Client struct {
	client  *wire.Client
	service string
	session string
}

// Dial connects the static client to the car rental service behind r.
// Unlike the generic client it transfers no SID: the interface knowledge
// is compiled in.
func Dial(pool *wire.Pool, r ref.ServiceRef, session string) (*Client, error) {
	c, err := pool.Get(context.Background(), r.Endpoint)
	if err != nil {
		return nil, err
	}
	return &Client{client: c, service: r.Service, session: session}, nil
}

// SelectCar invokes SelectCar with compiled marshalling.
func (c *Client) SelectCar(ctx context.Context, req SelectCarRequest) (SelectCarReturn, error) {
	body := appendChunk(nil, []byte(c.session))
	body = appendChunk(body, encodeSelectCar(req))
	respBody, err := c.client.Call(ctx, &wire.Request{Service: c.service, Op: "SelectCar", Body: body})
	if err != nil {
		return SelectCarReturn{}, err
	}
	chunk, rest, err := consumeChunk(respBody)
	if err != nil || len(rest) != 0 {
		return SelectCarReturn{}, fmt.Errorf("%w: SelectCar response", ErrDecode)
	}
	return decodeSelectReturn(chunk)
}

// Commit invokes Commit with compiled marshalling.
func (c *Client) Commit(ctx context.Context) (BookCarReturn, error) {
	body := appendChunk(nil, []byte(c.session))
	respBody, err := c.client.Call(ctx, &wire.Request{Service: c.service, Op: "Commit", Body: body})
	if err != nil {
		return BookCarReturn{}, err
	}
	chunk, rest, err := consumeChunk(respBody)
	if err != nil || len(rest) != 0 {
		return BookCarReturn{}, fmt.Errorf("%w: Commit response", ErrDecode)
	}
	return decodeBookReturn(chunk)
}

// Impl is the application logic behind the static server.
type Impl interface {
	SelectCar(req SelectCarRequest) (SelectCarReturn, error)
	Commit() (BookCarReturn, error)
}

// Handler adapts an Impl to the wire layer with compiled marshalling and
// no SID, FSM tracking or dynamic dispatch — the minimal 1994 RPC
// server. Note what is lost versus the cosm runtime: the service cannot
// be described, browsed, or protocol-checked.
func Handler(impl Impl) wire.Handler {
	return wire.HandlerFunc(func(_ context.Context, _ string, req *wire.Request) *wire.Response {
		// Skip the session chunk: the static server keeps no protocol
		// state.
		_, rest, err := consumeChunk(req.Body)
		if err != nil {
			return &wire.Response{Status: wire.StatusBadRequest, ErrMsg: err.Error()}
		}
		switch req.Op {
		case "SelectCar":
			chunk, _, err := consumeChunk(rest)
			if err != nil {
				return &wire.Response{Status: wire.StatusBadRequest, ErrMsg: err.Error()}
			}
			in, err := decodeSelectCar(chunk)
			if err != nil {
				return &wire.Response{Status: wire.StatusBadRequest, ErrMsg: err.Error()}
			}
			out, err := impl.SelectCar(in)
			if err != nil {
				return &wire.Response{Status: wire.StatusAppError, ErrMsg: err.Error()}
			}
			return &wire.Response{Status: wire.StatusOK, Body: appendChunk(nil, encodeSelectReturn(out))}
		case "Commit":
			out, err := impl.Commit()
			if err != nil {
				return &wire.Response{Status: wire.StatusAppError, ErrMsg: err.Error()}
			}
			return &wire.Response{Status: wire.StatusOK, Body: appendChunk(nil, encodeBookReturn(out))}
		default:
			return &wire.Response{Status: wire.StatusNoOp, ErrMsg: req.Op}
		}
	})
}

// FixedImpl is a trivial Impl with constant pricing, used by tests and
// benchmarks.
type FixedImpl struct {
	ChargePerDay float64
}

// SelectCar prices the selection.
func (f FixedImpl) SelectCar(req SelectCarRequest) (SelectCarReturn, error) {
	if req.Days <= 0 {
		return SelectCarReturn{}, errors.New("stub: days must be positive")
	}
	return SelectCarReturn{Available: true, Charge: f.ChargePerDay * float64(req.Days), Currency: USD}, nil
}

// Commit confirms the booking.
func (f FixedImpl) Commit() (BookCarReturn, error) {
	return BookCarReturn{OK: true, Confirmation: "RES-STATIC"}, nil
}
