package stub

import (
	"context"
	"errors"
	"testing"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

func startStaticServer(t *testing.T, loopName string) (*wire.Server, ref.ServiceRef, *wire.Pool) {
	t.Helper()
	srv := wire.NewServer(wire.WithServerLog(func(string, ...any) {}))
	if err := srv.Register("CarRentalService", Handler(FixedImpl{ChargePerDay: 80})); err != nil {
		t.Fatal(err)
	}
	ep, err := srv.ListenAndServe("loop:" + loopName)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	pool := wire.NewPool()
	t.Cleanup(func() { _ = pool.Close() })
	return srv, ref.New(ep, "CarRentalService"), pool
}

func TestStaticClientStaticServer(t *testing.T) {
	_, carRef, pool := startStaticServer(t, "stub-basic")
	c, err := Dial(pool, carRef, "s1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sel, err := c.SelectCar(ctx, SelectCarRequest{Model: FIATUno, BookingDate: "1994-06-21", Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Available || sel.Charge != 240 || sel.Currency != USD {
		t.Fatalf("SelectCar = %+v", sel)
	}
	book, err := c.Commit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !book.OK || book.Confirmation != "RES-STATIC" {
		t.Fatalf("Commit = %+v", book)
	}
	// Application errors propagate.
	if _, err := c.SelectCar(ctx, SelectCarRequest{Days: 0}); !errors.Is(err, wire.ErrRemote) {
		t.Fatalf("err = %v", err)
	}
}

// startDynamicServer hosts the SID-described car rental on the cosm
// runtime (FSM enforcement off so the stateless static client can call
// in any order).
func startDynamicServer(t *testing.T, loopName string) (*cosm.Node, ref.ServiceRef) {
	t.Helper()
	sid := sidl.CarRentalSID()
	svc, err := cosm.NewService(sid, cosm.WithoutFSMEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	boolT := sidl.Basic(sidl.Bool)
	svc.MustHandle("SelectCar", func(call *cosm.Call) error {
		selection, err := call.Arg("selection")
		if err != nil {
			return err
		}
		days, err := selection.Field("days")
		if err != nil {
			return err
		}
		out := xcode.Zero(sid.Type("SelectCarReturn_t"))
		if err := out.SetField("available", xcode.NewBool(boolT, true)); err != nil {
			return err
		}
		if err := out.SetField("charge", xcode.NewFloat(sidl.Basic(sidl.Float64), 80*float64(days.Int))); err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	svc.MustHandle("Commit", func(call *cosm.Call) error {
		out := xcode.Zero(sid.Type("BookCarReturn_t"))
		if err := out.SetField("ok", xcode.NewBool(boolT, true)); err != nil {
			return err
		}
		if err := out.SetField("confirmation", xcode.NewString(sidl.Basic(sidl.String), "RES-DYN")); err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor("CarRentalService")
}

func TestStaticClientAgainstDynamicServer(t *testing.T) {
	// Byte-compatibility: the hand-written stub speaks exactly the
	// encoding the dynamic runtime derives from the SID.
	node, carRef := startDynamicServer(t, "stub-compat")
	c, err := Dial(node.Pool(), carRef, "compat-session")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sel, err := c.SelectCar(ctx, SelectCarRequest{Model: VWGolf, BookingDate: "1994-07-01", Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Available || sel.Charge != 160 {
		t.Fatalf("SelectCar = %+v", sel)
	}
	book, err := c.Commit(ctx)
	if err != nil || book.Confirmation != "RES-DYN" {
		t.Fatalf("Commit = %+v, %v", book, err)
	}
}

func TestDynamicClientAgainstStaticServer(t *testing.T) {
	// The reverse direction: a client that got the SID out of band can
	// call the static server dynamically — but the static server cannot
	// be described (the paper's closed-system limitation).
	_, carRef, pool := startStaticServer(t, "stub-reverse")
	ctx := context.Background()

	if _, err := cosm.Describe(ctx, pool, carRef); err == nil {
		t.Fatal("a static 1994 server must not be describable")
	}

	sid := sidl.CarRentalSID()
	conn, err := cosm.BindWithSID(pool, carRef, sid)
	if err != nil {
		t.Fatal(err)
	}
	arg := xcode.Zero(sid.Type("SelectCar_t"))
	if err := arg.SetField("days", xcode.NewInt(sidl.Basic(sidl.Int32), 5)); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Invoke(ctx, "SelectCar", arg)
	if err != nil {
		t.Fatal(err)
	}
	charge, err := res.Value.Field("charge")
	if err != nil || charge.Float != 400 {
		t.Fatalf("charge = %v, %v", charge, err)
	}
}

func TestCodecRejectsJunk(t *testing.T) {
	if _, err := decodeSelectCar([]byte{9}); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := decodeSelectReturn([]byte{2, 0, 0}); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := decodeBookReturn([]byte{1, 200, 1}); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := consumeChunk([]byte{200}); !errors.Is(err, ErrDecode) {
		t.Fatalf("err = %v", err)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	reqs := []SelectCarRequest{
		{Model: AUDI, BookingDate: "", Days: 0},
		{Model: VWGolf, BookingDate: "1994-12-31", Days: 1 << 20},
		{Model: FIATUno, BookingDate: "x", Days: -1},
	}
	for _, r := range reqs {
		got, err := decodeSelectCar(encodeSelectCar(r))
		if err != nil || got != r {
			t.Fatalf("SelectCarRequest round trip: %+v vs %+v (%v)", got, r, err)
		}
	}
	rets := []SelectCarReturn{
		{Available: true, Charge: 99.5, Currency: GBP},
		{},
	}
	for _, r := range rets {
		got, err := decodeSelectReturn(encodeSelectReturn(r))
		if err != nil || got != r {
			t.Fatalf("SelectCarReturn round trip: %+v vs %+v (%v)", got, r, err)
		}
	}
	books := []BookCarReturn{
		{OK: true, Confirmation: "RES-1"},
		{},
	}
	for _, r := range books {
		got, err := decodeBookReturn(encodeBookReturn(r))
		if err != nil || got != r {
			t.Fatalf("BookCarReturn round trip: %+v vs %+v (%v)", got, r, err)
		}
	}
}
