package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func spanAt(trace, id, parent, op, kind string, start time.Time, d time.Duration) Span {
	return Span{Trace: trace, ID: id, Parent: parent, Op: op, Kind: kind, Status: "ok", Start: start, Duration: d}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	r.Record(Span{Trace: "t", ID: "a"})
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	if got := r.Trace("t"); got != nil {
		t.Fatalf("nil recorder trace = %v", got)
	}
	if got := r.Summaries(); len(got) != 0 {
		t.Fatalf("nil recorder summaries = %v", got)
	}
	if NewSpanRecorder(0) != nil {
		t.Fatal("zero-capacity recorder should be nil")
	}
}

func TestSpanRecorderBounded(t *testing.T) {
	r := NewSpanRecorder(16)
	base := time.Unix(1000, 0)
	// One trace stays in one shard; overfill it and check the ring keeps
	// only the newest per-shard window, oldest-first.
	for i := 0; i < 40; i++ {
		r.Record(spanAt("tr", fmt.Sprintf("s%02d", i), "", "op", SpanServer, base.Add(time.Duration(i)*time.Millisecond), time.Millisecond))
	}
	got := r.Trace("tr")
	if len(got) == 0 || len(got) > 16 {
		t.Fatalf("retained %d spans, want 1..16", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start.Before(got[i-1].Start) {
			t.Fatalf("spans out of order at %d: %v before %v", i, got[i].Start, got[i-1].Start)
		}
	}
	if last := got[len(got)-1]; last.ID != "s39" {
		t.Fatalf("newest span = %s, want s39 (eviction must drop oldest)", last.ID)
	}
}

func TestSpanRecorderDropsUntraced(t *testing.T) {
	r := NewSpanRecorder(8)
	r.Record(Span{ID: "x", Op: "op"})
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("untraced span retained: %v", got)
	}
}

func TestBuildSpanTreeLinksHops(t *testing.T) {
	base := time.Unix(2000, 0)
	// root(client call c1) -> server s1 -> client c2 -> server s2
	spans := []Span{
		spanAt("tr", "c1", "root", "svc/Op", SpanClient, base, 40*time.Millisecond),
		spanAt("tr", "s1", "c1", "svc/Op", SpanServer, base.Add(5*time.Millisecond), 30*time.Millisecond),
		spanAt("tr", "c2", "s1", "peer/Op", SpanClient, base.Add(10*time.Millisecond), 20*time.Millisecond),
		spanAt("tr", "s2", "c2", "peer/Op", SpanServer, base.Add(12*time.Millisecond), 15*time.Millisecond),
	}
	roots := BuildSpanTree(spans)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1 connected tree", len(roots))
	}
	depth := 0
	for n := roots[0]; n != nil; {
		depth++
		if len(n.Children) > 1 {
			t.Fatalf("unexpected branching at %s", n.ID)
		}
		if len(n.Children) == 0 {
			n = nil
		} else {
			n = n.Children[0]
		}
	}
	if depth != 4 {
		t.Fatalf("chain depth = %d, want 4", depth)
	}
	// Duplicate recordings (same span fetched from two nodes) collapse.
	if again := BuildSpanTree(append(spans, spans...)); len(again) != 1 {
		t.Fatalf("duplicated spans produced %d roots, want 1", len(again))
	}
}

func TestSummariesAndSlowest(t *testing.T) {
	r := NewSpanRecorder(64)
	base := time.Unix(3000, 0)
	r.Record(spanAt("fast", "a", "", "svc/Quick", SpanServer, base, 2*time.Millisecond))
	r.Record(spanAt("slow", "b", "", "svc/Slow", SpanServer, base.Add(time.Second), 500*time.Millisecond))
	r.Record(spanAt("slow", "c", "b", "peer/Hop", SpanServer, base.Add(1100*time.Millisecond), 300*time.Millisecond))
	sums := r.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	if sums[0].Trace != "slow" {
		t.Fatalf("newest-first order broken: %v", sums)
	}
	slowest := SlowestN(sums, 1)
	if len(slowest) != 1 || slowest[0].Trace != "slow" {
		t.Fatalf("slowest = %v, want trace 'slow'", slowest)
	}
	if slowest[0].Spans != 2 {
		t.Fatalf("slow trace spans = %d, want 2", slowest[0].Spans)
	}
	if slowest[0].Duration < 500*time.Millisecond {
		t.Fatalf("slow trace duration = %v, want >= 500ms", slowest[0].Duration)
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := fmt.Sprintf("t%d", g)
				r.Record(spanAt(tr, fmt.Sprintf("s%d", i), "", "op", SpanServer, time.Unix(int64(i), 0), time.Millisecond))
				_ = r.Trace(tr)
			}
		}(g)
	}
	wg.Wait()
	if len(r.Snapshot()) == 0 {
		t.Fatal("no spans retained after concurrent load")
	}
}
