package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name interns to the same instrument.
	if r.Counter("c_total", "help") != c {
		t.Fatal("counter not interned")
	}

	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}

	// Nil registry and nil instruments are inert.
	var nilReg *Registry
	nc := nilReg.Counter("x", "")
	nc.Inc()
	if nc.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	nilReg.Gauge("x", "").Add(1)
	nilReg.GaugeFunc("x", "", func() float64 { return 1 })
	nilReg.Histogram("x", "", nil).Observe(1)
	nilReg.CounterVec("x", "", "l").With("a").Inc()
	nilReg.HistogramVec("x", "", "l", nil).With("a").Observe(1)
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering m as a gauge did not panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{0.1, 0.5, 1, 5})
	for i := 0; i < 100; i++ {
		h.Observe(0.3) // all in the (0.1, 0.5] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.1 || p50 > 0.5 {
		t.Fatalf("p50 = %v, want within (0.1, 0.5]", p50)
	}
	// Values beyond the last bound land in +Inf and report the largest
	// finite bound.
	h.Observe(100)
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("overflow quantile = %v, want 5", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistSnapshotSubAndMerge(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2})
	h.Observe(0.5)
	before := h.Snapshot()
	h.Observe(0.5)
	h.Observe(1.5)
	interval := h.Snapshot().Sub(before)
	if interval.Count != 2 || interval.Sum != 2 {
		t.Fatalf("interval = %+v", interval)
	}

	other := r.Histogram("h2", "help", []float64{1, 2})
	other.Observe(1.5)
	merged := interval.Merge(other.Snapshot())
	if merged.Count != 3 {
		t.Fatalf("merged count = %d", merged.Count)
	}
	// Empty snapshot merges as identity from either side.
	if m := (HistSnapshot{}).Merge(interval); m.Count != 2 {
		t.Fatalf("identity merge = %+v", m)
	}
	if m := interval.Merge(HistSnapshot{}); m.Count != 2 {
		t.Fatalf("identity merge rhs = %+v", m)
	}
}

func TestVecCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "help", "who")
	for i := 0; i < maxLabelCard+20; i++ {
		v.With(fmt.Sprintf("label-%d", i)).Inc()
	}
	snap := v.Snapshot()
	// The cap admits maxLabelCard distinct children plus the overflow
	// bucket; everything past the cap collapses into "_other".
	if len(snap) > maxLabelCard+1 {
		t.Fatalf("cardinality = %d, want <= %d", len(snap), maxLabelCard+1)
	}
	if snap[otherLabel] != 20 {
		t.Fatalf("overflow bucket = %d, want 20", snap[otherLabel])
	}
	if v.Total() != uint64(maxLabelCard+20) {
		t.Fatalf("total = %d", v.Total())
	}

	hv := r.HistogramVec("hv", "help", "who", []float64{1})
	for i := 0; i < maxLabelCard+5; i++ {
		hv.With(fmt.Sprintf("label-%d", i)).Observe(0.5)
	}
	if hs := hv.Snapshot(); hs[otherLabel].Count != 5 {
		t.Fatalf("hist overflow = %+v", hs[otherLabel])
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cosm_demo_total", "A demo counter.").Add(2)
	r.GaugeFunc("cosm_demo_depth", "A demo gauge.", func() float64 { return 1.5 })
	r.CounterVec("cosm_demo_by_status", "By status.", "status").With("ok").Inc()
	r.Histogram("cosm_demo_seconds", "A demo histogram.", []float64{1, 2}).Observe(1.5)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP cosm_demo_total A demo counter.",
		"# TYPE cosm_demo_total counter",
		"cosm_demo_total 2",
		"cosm_demo_depth 1.5",
		`cosm_demo_by_status{status="ok"} 1`,
		`cosm_demo_seconds_bucket{le="2"} 1`,
		`cosm_demo_seconds_bucket{le="+Inf"} 1`,
		"cosm_demo_seconds_sum 1.5",
		"cosm_demo_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.HistogramVec("lat", "", "ep", nil).With("x").Observe(0.2)
	doc := r.JSONValue()
	if doc["a_total"] != uint64(3) {
		t.Fatalf("a_total = %v", doc["a_total"])
	}
	lat, ok := doc["lat"].(map[string]any)
	if !ok {
		t.Fatalf("lat = %T", doc["lat"])
	}
	child, ok := lat["x"].(map[string]any)
	if !ok || child["count"] != uint64(1) {
		t.Fatalf("lat.x = %v", lat["x"])
	}
	if got := (*Registry)(nil).JSONValue(); len(got) != 0 {
		t.Fatalf("nil JSONValue = %v", got)
	}
}

func TestCountBuckets(t *testing.T) {
	b := CountBuckets
	if len(b) == 0 || b[0] != 0 {
		t.Fatalf("CountBuckets = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("CountBuckets not ascending: %v", b)
		}
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("races_total", "")
	h := r.Histogram("races_seconds", "", nil)
	v := r.CounterVec("races_by", "", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.With(fmt.Sprintf("l%d", i%3)).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || v.Total() != 8000 {
		t.Fatalf("counts = %d %d %d", c.Value(), h.Count(), v.Total())
	}
}
