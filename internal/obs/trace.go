package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
)

// Trace identifies one logical request as it fans out across the
// market: one trace ID minted at the importer, one span ID per hop, and
// the parent span that caused the hop. The wire layer carries (ID,
// Span) in request-frame metadata; each server derives a child span for
// its handler context, so a federated import through two traders and a
// direct bind at the exporter all log the same trace ID with a span
// tree underneath it.
type Trace struct {
	// ID is the request identity, stable across every hop.
	ID string
	// Span identifies this hop's work.
	Span string
	// Parent is the span that caused this one ("" at the root).
	Parent string
}

// Valid reports whether the trace carries an ID.
func (t Trace) Valid() bool { return t.ID != "" }

// Child derives the trace for one outgoing hop: same ID, fresh span,
// parented at the current span.
func (t Trace) Child() Trace {
	return Trace{ID: t.ID, Span: newID(), Parent: t.Span}
}

// NewTrace mints a root trace (fresh ID and span, no parent).
func NewTrace() Trace {
	return Trace{ID: newID(), Span: newID()}
}

// newID returns 16 hex characters of randomness. math/rand/v2's global
// generator is goroutine-safe and cheap — trace IDs need uniqueness
// within operator attention spans, not cryptographic strength.
func newID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rand.Uint64())
	return hex.EncodeToString(b[:])
}

type traceKey struct{}

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace carried by ctx (zero Trace when none).
func TraceFrom(ctx context.Context) Trace {
	if ctx == nil {
		return Trace{}
	}
	t, _ := ctx.Value(traceKey{}).(Trace)
	return t
}

// EnsureTrace returns ctx guaranteed to carry a trace, minting a root
// trace when none is present. Importer entry points (cosmcli commands,
// the chaos market's bookings, tests) call this once; every layer below
// only propagates.
func EnsureTrace(ctx context.Context) (context.Context, Trace) {
	if t := TraceFrom(ctx); t.Valid() {
		return ctx, t
	}
	t := NewTrace()
	return WithTrace(ctx, t), t
}
