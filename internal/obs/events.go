package obs

// Flight recorder, event half: a bounded in-memory timeline of the rare
// but load-bearing cluster events — elections (suspect, candidacy, vote
// grant/deny, promote, demote, rejoin), journal fail-stop latches,
// replication snapshot installs and fencing rejections, circuit-breaker
// transitions. Counters tell an operator *how many* failovers happened;
// the event log tells them *what happened, in what order* — and because
// every node keeps its own log, `cosmcli events` can merge the cluster's
// logs into one causal timeline after a chaotic failover. Nil-safe like
// the Registry and the SpanRecorder.

import (
	"sort"
	"sync"
	"time"
)

// Event is one timeline entry.
type Event struct {
	// Seq orders events recorded by one log within the same clock tick.
	Seq  uint64            `json:"seq"`
	Time time.Time         `json:"time"`
	Node string            `json:"node,omitempty"`
	Kind string            `json:"kind"`
	Attr map[string]string `json:"attr,omitempty"`
}

// EventLog is a bounded ring of cluster events. A nil *EventLog records
// nothing; all methods are safe for concurrent use.
type EventLog struct {
	node  string
	clock func() time.Time

	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	seq  uint64
}

// NewEventLog returns a log retaining the last capacity events,
// attributed to node (may be empty; cosmcli tags merged events by the
// address it fetched them from). A capacity <= 0 returns nil.
func NewEventLog(node string, capacity int) *EventLog {
	if capacity <= 0 {
		return nil
	}
	return &EventLog{node: node, clock: time.Now, buf: make([]Event, capacity)}
}

// WithClock substitutes the time source (tests). Returns the log.
func (l *EventLog) WithClock(now func() time.Time) *EventLog {
	if l != nil {
		l.clock = now
	}
	return l
}

// Record appends one event; kv is alternating attribute keys and values
// (a trailing odd key takes an empty value).
func (l *EventLog) Record(kind string, kv ...string) {
	if l == nil {
		return
	}
	var attr map[string]string
	if len(kv) > 0 {
		attr = make(map[string]string, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			v := ""
			if i+1 < len(kv) {
				v = kv[i+1]
			}
			attr[kv[i]] = v
		}
	}
	l.mu.Lock()
	l.seq++
	l.buf[l.next] = Event{Seq: l.seq, Time: l.clock(), Node: l.node, Kind: kind, Attr: attr}
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Events copies the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]Event, n)
	if l.full {
		copy(out, l.buf[l.next:])
		copy(out[len(l.buf)-l.next:], l.buf[:l.next])
	} else {
		copy(out, l.buf[:n])
	}
	return out
}

// Len reports how many events are retained.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// MergeEvents folds several nodes' event slices into one timeline
// ordered by time (breaking ties by node then per-log sequence) — the
// cluster-wide post-mortem view assembled by `cosmcli events` and the
// soak harness's invariant-violation report.
func MergeEvents(logs ...[]Event) []Event {
	var out []Event
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
