// Package obs is the zero-dependency observability layer of the COSM
// reproduction: counters, gauges and bounded histograms with quantile
// estimation (metrics.go), a per-request trace context propagated on
// the wire (trace.go), a structured key=value logger (log.go), and the
// daemon introspection endpoints /metrics, /debug/vars and /healthz
// (http.go).
//
// Everything is stdlib-only and nil-safe: a nil *Registry hands out nil
// instruments whose methods are no-ops, so instrumented code paths need
// no "is observability on?" branches and cost almost nothing when
// disabled (see BenchmarkObsOverhead).
//
// Cardinality is bounded by construction: label values beyond a vec's
// cap collapse into the reserved "_other" child, so a client spraying
// unique endpoint strings (or a market with unbounded service types)
// cannot grow a registry without bound.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds:
// roughly exponential from 100µs to 30s, fitting both loopback RPCs
// and federation hops on a congested market.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// CountBuckets are histogram bounds for small cardinalities (offer
// match counts, federation fan-outs).
var CountBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250}

// maxLabelCard bounds the number of distinct label values one vec
// tracks; further values collapse into the "_other" child.
const maxLabelCard = 64

// otherLabel is the overflow child of a vec at its cardinality cap.
const otherLabel = "_other"

// metric is anything the registry can export.
type metric interface {
	// promWrite appends the Prometheus text exposition of the metric.
	promWrite(w io.Writer)
	// jsonValue returns the metric's /debug/vars representation.
	jsonValue() any
	metricName() string
	typeName() string
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid "observability off" registry:
// every constructor returns a nil instrument whose methods no-op.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	ordered []metric
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// register interns a metric by name: the first registration wins and
// later ones with the same name receive the existing instrument, so
// components sharing a registry share families. Re-registering a name
// as a different metric type is a programming error and panics.
func (r *Registry) register(name string, fresh metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.typeName() != fresh.typeName() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, fresh.typeName(), m.typeName()))
		}
		return m
	}
	r.byName[name] = fresh
	r.ordered = append(r.ordered, fresh)
	return fresh
}

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns nil, whose methods no-op.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, &Counter{name: name, help: help}).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) typeName() string   { return "counter" }
func (c *Counter) jsonValue() any     { return c.Value() }
func (c *Counter) promWrite(w io.Writer) {
	promHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) typeName() string   { return "gauge" }
func (g *Gauge) jsonValue() any     { return g.Value() }
func (g *Gauge) promWrite(w io.Writer) {
	promHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
}

// GaugeFunc exports a value computed at scrape time (pool sizes, queue
// depths owned by other structs).
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, &GaugeFunc{name: name, help: help, fn: fn})
}

func (g *GaugeFunc) metricName() string { return g.name }
func (g *GaugeFunc) typeName() string   { return "gaugefunc" }
func (g *GaugeFunc) jsonValue() any     { return g.fn() }
func (g *GaugeFunc) promWrite(w io.Writer) {
	promHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// Histogram is a fixed-bucket histogram: bounded memory regardless of
// observation volume, with quantiles estimated by linear interpolation
// within the bucket containing the target rank.
type Histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implied last
	counts     []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil bounds = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	return r.register(name, h).(*Histogram)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search: bounds are small (≤ ~20), but branch-free lookup
	// keeps the hot path cheap either way.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the p-quantile (0 < p ≤ 1) of all observations.
func (h *Histogram) Quantile(p float64) float64 {
	return h.Snapshot().Quantile(p)
}

// HistSnapshot is a point-in-time copy of a histogram, subtractable for
// interval views (the chaos demo's per-phase p99).
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the interval histogram s − prev (both must come from the
// same Histogram).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Bounds: s.Bounds, Counts: make([]uint64, len(s.Counts)), Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i]
		if i < len(prev.Counts) {
			out.Counts[i] -= prev.Counts[i]
		}
	}
	return out
}

// Merge returns the union of two snapshots taken from histograms with
// the same bucket layout; an empty snapshot merges as identity. Callers
// aggregating a HistogramVec (the chaos demo folding per-endpoint
// latency into one view) merge the children's snapshots.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Counts) == 0 {
		return o
	}
	out := HistSnapshot{Bounds: s.Bounds, Counts: append([]uint64(nil), s.Counts...), Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	for i := range out.Counts {
		if i < len(o.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

// Quantile estimates the p-quantile of the snapshot: the bucket holding
// the target rank is found by cumulative count, and the value is
// linearly interpolated between the bucket's bounds. Values in the
// overflow (+Inf) bucket report the largest finite bound.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := p * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) typeName() string   { return "histogram" }
func (h *Histogram) jsonValue() any {
	s := h.Snapshot()
	return map[string]any{
		"count": s.Count,
		"sum":   s.Sum,
		"p50":   s.Quantile(0.50),
		"p95":   s.Quantile(0.95),
		"p99":   s.Quantile(0.99),
	}
}
func (h *Histogram) promWrite(w io.Writer) {
	promHeader(w, h.name, h.help, "histogram")
	h.promWriteLabeled(w, "")
}

// promWriteLabeled writes the bucket/sum/count series with extraLabels
// (already formatted, e.g. `endpoint="tcp:..."`) merged into each line.
func (h *Histogram) promWriteLabeled(w io.Writer, extraLabels string) {
	s := h.Snapshot()
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		if extraLabels != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", h.name, extraLabels, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum)
		}
	}
	suffix := ""
	if extraLabels != "" {
		suffix = "{" + extraLabels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, suffix, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, suffix, s.Count)
}

// CounterVec is a family of counters partitioned by one label.
type CounterVec struct {
	name, help, label string

	mu       sync.Mutex
	children map[string]*Counter
	order    []string
}

// CounterVec returns the named counter family partitioned by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.register(name, &CounterVec{name: name, help: help, label: label, children: map[string]*Counter{}}).(*CounterVec)
}

// With returns the child counter for the label value, creating it on
// first use; past the cardinality cap all new values share the
// "_other" child.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	if len(v.children) >= maxLabelCard {
		value = otherLabel
		if c, ok := v.children[value]; ok {
			return c
		}
	}
	c := &Counter{name: v.name}
	v.children[value] = c
	v.order = append(v.order, value)
	return c
}

// Total sums all children.
func (v *CounterVec) Total() uint64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var n uint64
	for _, c := range v.children {
		n += c.Value()
	}
	return n
}

// snapshotChildren returns (label value, child) pairs in registration
// order.
func (v *CounterVec) snapshotChildren() ([]string, []*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	labels := append([]string(nil), v.order...)
	children := make([]*Counter, len(labels))
	for i, l := range labels {
		children[i] = v.children[l]
	}
	return labels, children
}

// Snapshot returns the current value of every child by label (empty on
// nil), for callers that diff snapshots into interval views.
func (v *CounterVec) Snapshot() map[string]uint64 {
	if v == nil {
		return map[string]uint64{}
	}
	labels, children := v.snapshotChildren()
	m := make(map[string]uint64, len(labels))
	for i, l := range labels {
		m[l] = children[i].Value()
	}
	return m
}

func (v *CounterVec) metricName() string { return v.name }
func (v *CounterVec) typeName() string   { return "countervec" }
func (v *CounterVec) jsonValue() any {
	labels, children := v.snapshotChildren()
	m := make(map[string]any, len(labels))
	for i, l := range labels {
		m[l] = children[i].Value()
	}
	return m
}
func (v *CounterVec) promWrite(w io.Writer) {
	promHeader(w, v.name, v.help, "counter")
	labels, children := v.snapshotChildren()
	for i, l := range labels {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, l, children[i].Value())
	}
}

// HistogramVec is a family of histograms partitioned by one label.
type HistogramVec struct {
	name, help, label string
	bounds            []float64

	mu       sync.Mutex
	children map[string]*Histogram
	order    []string
}

// HistogramVec returns the named histogram family partitioned by label
// (nil bounds = DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, &HistogramVec{name: name, help: help, label: label, bounds: bounds, children: map[string]*Histogram{}}).(*HistogramVec)
}

// With returns the child histogram for the label value, creating it on
// first use; past the cardinality cap all new values share the
// "_other" child.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	if len(v.children) >= maxLabelCard {
		value = otherLabel
		if h, ok := v.children[value]; ok {
			return h
		}
	}
	h := &Histogram{name: v.name, bounds: v.bounds, counts: make([]atomic.Uint64, len(v.bounds)+1)}
	v.children[value] = h
	v.order = append(v.order, value)
	return h
}

func (v *HistogramVec) snapshotChildren() ([]string, []*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	labels := append([]string(nil), v.order...)
	children := make([]*Histogram, len(labels))
	for i, l := range labels {
		children[i] = v.children[l]
	}
	return labels, children
}

// Snapshot returns each child's HistSnapshot by label (empty on nil).
func (v *HistogramVec) Snapshot() map[string]HistSnapshot {
	if v == nil {
		return map[string]HistSnapshot{}
	}
	labels, children := v.snapshotChildren()
	m := make(map[string]HistSnapshot, len(labels))
	for i, l := range labels {
		m[l] = children[i].Snapshot()
	}
	return m
}

func (v *HistogramVec) metricName() string { return v.name }
func (v *HistogramVec) typeName() string   { return "histogramvec" }
func (v *HistogramVec) jsonValue() any {
	labels, children := v.snapshotChildren()
	m := make(map[string]any, len(labels))
	for i, l := range labels {
		m[l] = children[i].jsonValue()
	}
	return m
}
func (v *HistogramVec) promWrite(w io.Writer) {
	promHeader(w, v.name, v.help, "histogram")
	labels, children := v.snapshotChildren()
	for i, l := range labels {
		children[i].promWriteLabeled(w, fmt.Sprintf("%s=%q", v.label, l))
	}
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	for _, m := range ms {
		m.promWrite(w)
	}
}

// JSONValue returns all metrics as a name → value map for /debug/vars.
func (r *Registry) JSONValue() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		out[m.metricName()] = m.jsonValue()
	}
	return out
}

func promHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// formatFloat renders a float the way Prometheus expects (no exponent
// for common magnitudes, minimal digits).
func formatFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	// %g may produce "1e-05"-style exponents for small bucket bounds;
	// Prometheus accepts them, but fixed notation reads better.
	if strings.ContainsAny(s, "eE") {
		s = fmt.Sprintf("%f", f)
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}
