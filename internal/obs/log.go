package obs

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Logger is the structured logger shared by every COSM component: one
// line per event, key=value pairs, tagged with the component name and —
// when the context carries one — the request trace. It replaces the
// scattered log.Printf-style defaults so a grep for trace=<id> finds a
// request's footprint across every daemon log.
//
// A nil *Logger discards everything, so instrumented code needs no nil
// checks. Derived loggers (With) share the parent's writer and mutex,
// so lines from all components of one process interleave atomically.
type Logger struct {
	mu   *sync.Mutex
	w    io.Writer
	comp string
	now  func() time.Time
}

// NewLogger returns a structured logger writing to w, tagged with the
// component name.
func NewLogger(w io.Writer, component string) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, comp: component, now: time.Now}
}

// defaultLogger guards the process-wide fallback used by components
// whose owner configured no logger.
var (
	defaultMu     sync.Mutex
	defaultLogger *Logger
)

// Default returns the process-wide fallback logger (stderr, component
// "cosm").
func Default() *Logger {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultLogger == nil {
		defaultLogger = NewLogger(os.Stderr, "cosm")
	}
	return defaultLogger
}

// With returns a logger with the same writer but a different component
// tag.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{mu: l.mu, w: l.w, comp: component, now: l.now}
}

// WithClock substitutes the timestamp source (tests).
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{mu: l.mu, w: l.w, comp: l.comp, now: now}
}

// Log emits one structured line: time, component, event, the trace
// carried by ctx (if any), then the key=value pairs in argument order.
// kv is alternating keys (string) and values (anything; rendered with
// %v and quoted when needed).
func (l *Logger) Log(ctx context.Context, event string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString("time=")
	b.WriteString(l.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" component=")
	b.WriteString(quoteIfNeeded(l.comp))
	b.WriteString(" event=")
	b.WriteString(quoteIfNeeded(event))
	if t := TraceFrom(ctx); t.Valid() {
		b.WriteString(" trace=")
		b.WriteString(t.ID)
		b.WriteString(" span=")
		b.WriteString(t.Span)
		if t.Parent != "" {
			b.WriteString(" parent=")
			b.WriteString(t.Parent)
		}
	}
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kv[i])
		}
		b.WriteString(" ")
		b.WriteString(key)
		b.WriteString("=")
		b.WriteString(quoteIfNeeded(fmt.Sprintf("%v", kv[i+1])))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" ")
		b.WriteString(quoteIfNeeded(fmt.Sprintf("%v", kv[len(kv)-1])))
	}
	b.WriteString("\n")
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// Logf emits a free-form message as a structured line (event="msg",
// msg=<formatted>). It adapts printf-style call sites to the structured
// format during migration; prefer Log with explicit keys.
func (l *Logger) Logf(format string, args ...any) {
	if l == nil {
		return
	}
	l.Log(nil, "msg", "msg", fmt.Sprintf(format, args...))
}

// Sink returns a printf-style function forwarding to Logf — the adapter
// for the pre-existing logf option hooks (wire.WithServerLog,
// trader.WithSweeperLog, daemon.Drain). A nil logger yields a no-op
// sink, never nil, so callers can install it unconditionally.
func (l *Logger) Sink() func(format string, args ...any) {
	if l == nil {
		return func(string, ...any) {}
	}
	return l.Logf
}

// quoteIfNeeded quotes values containing whitespace, quotes or '='
// so the line stays mechanically parseable.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
