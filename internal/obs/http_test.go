package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cosm_up_total", "help").Add(7)
	healthy := error(nil)
	srv := httptest.NewServer(Handler(reg, func() error { return healthy }))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "cosm_up_total 7") {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(readAll(t, resp)), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	cosmVars, ok := doc["cosm"].(map[string]any)
	if !ok || cosmVars["cosm_up_total"] != float64(7) {
		t.Fatalf("/debug/vars cosm = %v", doc["cosm"])
	}
	if _, ok := doc["goroutines"]; !ok {
		t.Fatal("/debug/vars missing goroutines")
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	healthy = errors.New("draining")
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(readAll(t, resp), "draining") {
		t.Fatalf("unhealthy /healthz = %d", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}

func TestHandlerFlightRecorderEndpoints(t *testing.T) {
	rec := NewSpanRecorder(64)
	ev := NewEventLog("n1", 16)
	base := time.Unix(7000, 0)
	rec.Record(spanAt("tr1", "c1", "", "svc/Op", SpanClient, base, 40*time.Millisecond))
	rec.Record(spanAt("tr1", "s1", "c1", "svc/Op", SpanServer, base.Add(5*time.Millisecond), 30*time.Millisecond))
	ev.Record("promote", "epoch", "2")
	srv := httptest.NewServer(HandlerWith(NewRegistry(), nil, MuxConfig{Spans: rec, Events: ev, Pprof: true}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces  int            `json:"traces"`
		Recent  []TraceSummary `json:"recent"`
		Slowest []TraceSummary `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &listing); err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	if listing.Traces != 1 || len(listing.Recent) != 1 || listing.Recent[0].Spans != 2 {
		t.Fatalf("/debug/traces listing = %+v", listing)
	}

	resp, err = http.Get(srv.URL + "/debug/traces?id=tr1")
	if err != nil {
		t.Fatal(err)
	}
	var tree struct {
		Trace string      `json:"trace"`
		Spans []Span      `json:"spans"`
		Roots []*SpanNode `json:"roots"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &tree); err != nil {
		t.Fatalf("/debug/traces?id not JSON: %v", err)
	}
	if len(tree.Spans) != 2 || len(tree.Roots) != 1 || len(tree.Roots[0].Children) != 1 {
		t.Fatalf("/debug/traces?id tree = %+v", tree)
	}

	resp, err = http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	var events struct {
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &events); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if len(events.Events) != 1 || events.Events[0].Kind != "promote" || events.Events[0].Attr["epoch"] != "2" {
		t.Fatalf("/debug/events = %+v", events)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", resp.StatusCode)
	}
}

func TestHandlerWithoutRecorderOmitsEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	for _, path := range []string{"/debug/traces", "/debug/events", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s = %d, want 404 when disabled", path, resp.StatusCode)
		}
	}
}

func TestServeIntrospectionBadAddr(t *testing.T) {
	if _, err := ServeIntrospection("256.256.256.256:bad", NewRegistry(), nil); err == nil {
		t.Fatal("bad addr accepted")
	}
}
