package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cosm_up_total", "help").Add(7)
	healthy := error(nil)
	srv := httptest.NewServer(Handler(reg, func() error { return healthy }))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 || !strings.Contains(body, "cosm_up_total 7") {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(readAll(t, resp)), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	cosmVars, ok := doc["cosm"].(map[string]any)
	if !ok || cosmVars["cosm_up_total"] != float64(7) {
		t.Fatalf("/debug/vars cosm = %v", doc["cosm"])
	}
	if _, ok := doc["goroutines"]; !ok {
		t.Fatal("/debug/vars missing goroutines")
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	healthy = errors.New("draining")
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(readAll(t, resp), "draining") {
		t.Fatalf("unhealthy /healthz = %d", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}

func TestServeIntrospectionBadAddr(t *testing.T) {
	if _, err := ServeIntrospection("256.256.256.256:bad", NewRegistry(), nil); err == nil {
		t.Fatal("bad addr accepted")
	}
}
