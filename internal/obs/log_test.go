package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }

func TestLogLine(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, "trader").WithClock(fixedClock)
	l.Log(nil, "export", "offer", "o-1", "ttl", 30*time.Second, "note", "two words")
	line := b.String()
	for _, want := range []string{
		"time=2026-01-02T03:04:05Z",
		"component=trader",
		"event=export",
		"offer=o-1",
		"ttl=30s",
		`note="two words"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "trace=") {
		t.Errorf("untraced line carries trace tag: %s", line)
	}
}

func TestLogTraceTags(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, "wire").WithClock(fixedClock)
	tr := Trace{ID: "aaaa", Span: "bbbb", Parent: "cccc"}
	l.Log(WithTrace(context.Background(), tr), "rpc", "op", "svc/Op")
	line := b.String()
	for _, want := range []string{"trace=aaaa", "span=bbbb", "parent=cccc", "op=svc/Op"} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
}

func TestLoggerWithSharesWriter(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, "a").WithClock(fixedClock)
	l.With("b").Log(nil, "x")
	if !strings.Contains(b.String(), "component=b") {
		t.Fatalf("derived logger wrote elsewhere: %q", b.String())
	}

	// Derived loggers share one mutex: concurrent lines never interleave.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.With("worker").Log(nil, "tick", "j", j)
			}
		}()
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "time=") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestNilLoggerAndSink(t *testing.T) {
	var l *Logger
	l.Log(nil, "ignored")
	l.Logf("ignored %d", 1)
	if l.With("x") != nil || l.WithClock(fixedClock) != nil {
		t.Fatal("nil derivations not nil")
	}
	sink := l.Sink()
	if sink == nil {
		t.Fatal("nil logger Sink returned nil func")
	}
	sink("still fine %d", 2)

	var b strings.Builder
	real := NewLogger(&b, "d").WithClock(fixedClock)
	real.Sink()("hello %s", "world")
	if !strings.Contains(b.String(), `msg="hello world"`) {
		t.Fatalf("sink line = %q", b.String())
	}
}

func TestQuoteIfNeeded(t *testing.T) {
	cases := map[string]string{
		"plain":   "plain",
		"":        `""`,
		"a b":     `"a b"`,
		"k=v":     `"k=v"`,
		`with"dq`: `"with\"dq"`,
	}
	for in, want := range cases {
		if got := quoteIfNeeded(in); got != want {
			t.Errorf("quoteIfNeeded(%q) = %s, want %s", in, got, want)
		}
	}
}
