package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Record("promote", "epoch", "3")
	if got := l.Events(); got != nil {
		t.Fatalf("nil log events = %v", got)
	}
	if l.Len() != 0 {
		t.Fatal("nil log length nonzero")
	}
	if NewEventLog("n", 0) != nil {
		t.Fatal("zero-capacity log should be nil")
	}
}

func TestEventLogBoundedAndOrdered(t *testing.T) {
	now := time.Unix(5000, 0)
	l := NewEventLog("n1", 4).WithClock(func() time.Time { return now })
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		l.Record("tick", "i", string(rune('0'+i)))
	}
	got := l.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if got[3].Seq != 10 {
		t.Fatalf("newest seq = %d, want 10", got[3].Seq)
	}
	if got[0].Node != "n1" || got[0].Kind != "tick" {
		t.Fatalf("event attribution broken: %+v", got[0])
	}
}

func TestEventLogAttrs(t *testing.T) {
	l := NewEventLog("", 8)
	l.Record("vote", "candidate", "n2", "epoch", "4", "granted")
	e := l.Events()[0]
	if e.Attr["candidate"] != "n2" || e.Attr["epoch"] != "4" {
		t.Fatalf("attrs = %v", e.Attr)
	}
	if v, ok := e.Attr["granted"]; !ok || v != "" {
		t.Fatalf("odd trailing key mishandled: %v", e.Attr)
	}
}

func TestMergeEvents(t *testing.T) {
	base := time.Unix(6000, 0)
	at := func(n string, d time.Duration, kind string, seq uint64) Event {
		return Event{Seq: seq, Time: base.Add(d), Node: n, Kind: kind}
	}
	a := []Event{at("a", 0, "suspect", 1), at("a", 3*time.Second, "promote", 2)}
	b := []Event{at("b", time.Second, "candidacy", 1), at("b", 2*time.Second, "vote", 2)}
	merged := MergeEvents(a, b)
	want := []string{"suspect", "candidacy", "vote", "promote"}
	if len(merged) != len(want) {
		t.Fatalf("merged %d events, want %d", len(merged), len(want))
	}
	for i, k := range want {
		if merged[i].Kind != k {
			t.Fatalf("merged[%d] = %s, want %s (full: %v)", i, merged[i].Kind, k, merged)
		}
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog("n", 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record("e", "k", "v")
				_ = l.Events()
			}
		}()
	}
	wg.Wait()
	if l.Len() != 128 {
		t.Fatalf("len = %d, want full ring 128", l.Len())
	}
}
