package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"
)

// MuxConfig selects the optional introspection endpoints beyond the
// always-on /metrics, /debug/vars and /healthz.
type MuxConfig struct {
	// Spans, when non-nil, serves the flight recorder at /debug/traces
	// (recent + slowest trace summaries; ?id= returns one trace's spans
	// and reassembled tree).
	Spans *SpanRecorder
	// Events, when non-nil, serves the cluster event timeline at
	// /debug/events.
	Events *EventLog
	// Pprof mounts net/http/pprof under /debug/pprof/ (the -pprof
	// daemon flag).
	Pprof bool
}

// Handler returns the introspection mux every daemon serves on its
// -metrics-addr:
//
//	/metrics     Prometheus text exposition of reg
//	/debug/vars  expvar-style JSON: cmdline, memstats, and all metrics
//	/healthz     200 "ok" while healthy() returns nil, else 503
//
// healthy may be nil (always healthy). Daemons pass a func reporting
// the drain state, so load balancers stop routing during shutdown.
func Handler(reg *Registry, healthy func() error) http.Handler {
	return HandlerWith(reg, healthy, MuxConfig{})
}

// HandlerWith is Handler plus the optional flight-recorder, event-log
// and pprof endpoints (see MuxConfig).
func HandlerWith(reg *Registry, healthy func() error, cfg MuxConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		doc := map[string]any{
			"cmdline": os.Args,
			"memstats": map[string]any{
				"Alloc":        ms.Alloc,
				"TotalAlloc":   ms.TotalAlloc,
				"Sys":          ms.Sys,
				"HeapAlloc":    ms.HeapAlloc,
				"HeapObjects":  ms.HeapObjects,
				"NumGC":        ms.NumGC,
				"PauseTotalNs": ms.PauseTotalNs,
			},
			"goroutines": runtime.NumGoroutine(),
			"cosm":       reg.JSONValue(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if cfg.Spans.Enabled() {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if id := r.URL.Query().Get("id"); id != "" {
				spans := cfg.Spans.Trace(id)
				_ = enc.Encode(map[string]any{
					"trace": id,
					"spans": spans,
					"roots": BuildSpanTree(spans),
				})
				return
			}
			sums := cfg.Spans.Summaries()
			recent := sums
			if len(recent) > 50 {
				recent = recent[:50]
			}
			_ = enc.Encode(map[string]any{
				"traces":  len(sums),
				"recent":  recent,
				"slowest": SlowestN(sums, 20),
			})
		})
	}
	if cfg.Events != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]any{"events": cfg.Events.Events()})
		})
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Introspection is a running introspection HTTP server.
type Introspection struct {
	srv *http.Server
	ln  net.Listener
}

// ServeIntrospection starts the introspection endpoints on addr
// (host:port; ":0" picks an ephemeral port) and returns the running
// server. It returns immediately; Close stops it.
func ServeIntrospection(addr string, reg *Registry, healthy func() error) (*Introspection, error) {
	return ServeIntrospectionWith(addr, reg, healthy, MuxConfig{})
}

// ServeIntrospectionWith is ServeIntrospection with the optional
// flight-recorder, event-log and pprof endpoints enabled per cfg.
func ServeIntrospectionWith(addr string, reg *Registry, healthy func() error, cfg MuxConfig) (*Introspection, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           HandlerWith(reg, healthy, cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Introspection{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with ":0").
func (i *Introspection) Addr() string {
	if i == nil {
		return ""
	}
	return i.ln.Addr().String()
}

// Close stops the server. Safe on nil.
func (i *Introspection) Close() error {
	if i == nil {
		return nil
	}
	return i.srv.Close()
}
