package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"
)

// Handler returns the introspection mux every daemon serves on its
// -metrics-addr:
//
//	/metrics     Prometheus text exposition of reg
//	/debug/vars  expvar-style JSON: cmdline, memstats, and all metrics
//	/healthz     200 "ok" while healthy() returns nil, else 503
//
// healthy may be nil (always healthy). Daemons pass a func reporting
// the drain state, so load balancers stop routing during shutdown.
func Handler(reg *Registry, healthy func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		doc := map[string]any{
			"cmdline": os.Args,
			"memstats": map[string]any{
				"Alloc":        ms.Alloc,
				"TotalAlloc":   ms.TotalAlloc,
				"Sys":          ms.Sys,
				"HeapAlloc":    ms.HeapAlloc,
				"HeapObjects":  ms.HeapObjects,
				"NumGC":        ms.NumGC,
				"PauseTotalNs": ms.PauseTotalNs,
			},
			"goroutines": runtime.NumGoroutine(),
			"cosm":       reg.JSONValue(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Introspection is a running introspection HTTP server.
type Introspection struct {
	srv *http.Server
	ln  net.Listener
}

// ServeIntrospection starts the introspection endpoints on addr
// (host:port; ":0" picks an ephemeral port) and returns the running
// server. It returns immediately; Close stops it.
func ServeIntrospection(addr string, reg *Registry, healthy func() error) (*Introspection, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg, healthy),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Introspection{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with ":0").
func (i *Introspection) Addr() string {
	if i == nil {
		return ""
	}
	return i.ln.Addr().String()
}

// Close stops the server. Safe on nil.
func (i *Introspection) Close() error {
	if i == nil {
		return nil
	}
	return i.srv.Close()
}
