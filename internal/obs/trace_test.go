package obs

import (
	"context"
	"testing"
)

func TestTraceLifecycle(t *testing.T) {
	root := NewTrace()
	if !root.Valid() || root.ID == "" || root.Span == "" || root.Parent != "" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.ID) != 16 || len(root.Span) != 16 {
		t.Fatalf("id lengths = %d/%d, want 16 hex chars", len(root.ID), len(root.Span))
	}
	child := root.Child()
	if child.ID != root.ID {
		t.Fatalf("child changed trace ID: %q vs %q", child.ID, root.ID)
	}
	if child.Parent != root.Span || child.Span == root.Span {
		t.Fatalf("child span tree broken: %+v under %+v", child, root)
	}
	if (Trace{}).Valid() {
		t.Fatal("zero trace reports valid")
	}
}

func TestContextCarriage(t *testing.T) {
	// Nil and bare contexts carry no trace.
	if tr := TraceFrom(nil); tr.Valid() {
		t.Fatalf("TraceFrom(nil) = %+v", tr)
	}
	if tr := TraceFrom(context.Background()); tr.Valid() {
		t.Fatalf("TraceFrom(bare) = %+v", tr)
	}

	want := NewTrace()
	ctx := WithTrace(context.Background(), want)
	if got := TraceFrom(ctx); got != want {
		t.Fatalf("TraceFrom = %+v, want %+v", got, want)
	}

	// EnsureTrace mints a root once and then reuses it.
	ctx2, minted := EnsureTrace(context.Background())
	if !minted.Valid() {
		t.Fatal("EnsureTrace minted nothing")
	}
	ctx3, again := EnsureTrace(ctx2)
	if again != minted || ctx3 != ctx2 {
		t.Fatalf("EnsureTrace re-minted: %+v vs %+v", again, minted)
	}
}
