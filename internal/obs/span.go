package obs

// Flight recorder, span half: every RPC hop — the client side of a call
// and the server side of a handler — records one timed Span into a
// bounded, lock-sharded ring buffer. Spans carry the trace/span/parent
// identity the wire layer already propagates (trace.go), so the recent
// history of a node can be reassembled into per-trace trees after the
// fact: "what happened, in what order, and where did the time go" for a
// request that fanned out across the market. The recorder is nil-safe
// like the Registry: a nil *SpanRecorder records nothing at negligible
// cost (see BenchmarkSpanOverhead).

import (
	"sort"
	"sync"
	"time"
)

// Span kinds.
const (
	// SpanClient is the caller's side of one RPC attempt.
	SpanClient = "client"
	// SpanServer is one handler execution.
	SpanServer = "server"
)

// Span is one recorded unit of timed work. ID/Parent are span IDs in
// the trace's tree: a client span is parented at the span that issued
// the call, and the server span it causes is parented at the client
// span, so edges link by Parent → ID across processes.
type Span struct {
	Trace    string        `json:"trace"`
	ID       string        `json:"id"`
	Parent   string        `json:"parent,omitempty"`
	Op       string        `json:"op"`
	Peer     string        `json:"peer,omitempty"`
	Node     string        `json:"node,omitempty"`
	Kind     string        `json:"kind"`
	Status   string        `json:"status"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
}

// End returns the span's completion instant.
func (s Span) End() time.Time { return s.Start.Add(s.Duration) }

// spanShards fixes the recorder's lock sharding. Spans shard by trace
// ID, so one trace's spans land in one shard and a per-trace lookup
// scans a single ring.
const spanShards = 8

type spanShard struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// SpanRecorder is a bounded in-memory flight recorder of recent spans.
// A nil *SpanRecorder is a valid "recording off" recorder: Record
// no-ops and lookups return nothing, so instrumented paths need no
// branches. All methods are safe for concurrent use.
type SpanRecorder struct {
	shards [spanShards]spanShard
}

// NewSpanRecorder returns a recorder retaining about capacity spans
// (split across the lock shards; capacity < spanShards is rounded up to
// one span per shard). A capacity <= 0 returns nil — recording off.
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + spanShards - 1) / spanShards
	r := &SpanRecorder{}
	for i := range r.shards {
		r.shards[i].buf = make([]Span, per)
	}
	return r
}

// Enabled reports whether spans are being retained.
func (r *SpanRecorder) Enabled() bool { return r != nil }

// Record retains one completed span, evicting the oldest in its shard
// when the ring is full. Spans without a trace ID are dropped — they
// could never be assembled into a tree.
func (r *SpanRecorder) Record(s Span) {
	if r == nil || s.Trace == "" {
		return
	}
	sh := &r.shards[fnv32(s.Trace)%spanShards]
	sh.mu.Lock()
	sh.buf[sh.next] = s
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next, sh.full = 0, true
	}
	sh.mu.Unlock()
}

// Snapshot copies every retained span, ordered by start time.
func (r *SpanRecorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for i := range r.shards {
		out = append(out, r.shards[i].snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Trace returns the retained spans of one trace, ordered by start time.
// Sharding by trace ID means only one shard is scanned.
func (r *SpanRecorder) Trace(id string) []Span {
	if r == nil || id == "" {
		return nil
	}
	var out []Span
	for _, s := range r.shards[fnv32(id)%spanShards].snapshot() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

func (sh *spanShard) snapshot() []Span {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := sh.next
	if sh.full {
		n = len(sh.buf)
	}
	out := make([]Span, n)
	if sh.full {
		// Oldest-first: the ring wraps at next.
		copy(out, sh.buf[sh.next:])
		copy(out[len(sh.buf)-sh.next:], sh.buf[:sh.next])
	} else {
		copy(out, sh.buf[:n])
	}
	return out
}

// SpanNode is one node of a reassembled trace tree.
type SpanNode struct {
	Span
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree reassembles spans (possibly gathered from several
// nodes' recorders) into trees: edges link a span to the span whose ID
// is its Parent; spans whose parent was not recorded anywhere become
// roots. Duplicate recordings of the same span (one node queried twice)
// collapse; children and roots sort by start time. Spans from different
// traces yield separate trees.
func BuildSpanTree(spans []Span) []*SpanNode {
	byID := make(map[string]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	for _, s := range spans {
		key := s.Trace + "/" + s.ID + "/" + s.Kind
		if _, dup := byID[key]; dup {
			continue
		}
		n := &SpanNode{Span: s}
		byID[key] = n
		order = append(order, n)
	}
	// A server span shares no ID with its client span; link each span to
	// its parent preferring the client-side recording (the closer cause),
	// falling back to the server-side one.
	lookup := func(trace, id string) *SpanNode {
		if n, ok := byID[trace+"/"+id+"/"+SpanClient]; ok {
			return n
		}
		if n, ok := byID[trace+"/"+id+"/"+SpanServer]; ok {
			return n
		}
		return nil
	}
	var roots []*SpanNode
	for _, n := range order {
		if p := lookup(n.Trace, n.Parent); n.Parent != "" && p != nil && p != n {
			p.Children = append(p.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	for _, n := range order {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Start.Before(n.Children[j].Start) })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	return roots
}

// TraceSummary is the listing view of one retained trace: its earliest
// span (the closest thing this node saw to the root), how many spans
// the node retained for it, and the wall-clock extent those spans cover.
type TraceSummary struct {
	Trace    string        `json:"trace"`
	Op       string        `json:"op"`
	Status   string        `json:"status"`
	Spans    int           `json:"spans"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
}

// Summaries folds the retained spans into per-trace summaries, newest
// first.
func (r *SpanRecorder) Summaries() []TraceSummary {
	spans := r.Snapshot()
	byTrace := map[string]*TraceSummary{}
	var order []*TraceSummary
	for _, s := range spans {
		ts, ok := byTrace[s.Trace]
		if !ok {
			ts = &TraceSummary{Trace: s.Trace, Op: s.Op, Status: s.Status, Start: s.Start}
			byTrace[s.Trace] = ts
			order = append(order, ts)
		}
		ts.Spans++
		if s.Start.Before(ts.Start) {
			ts.Start, ts.Op, ts.Status = s.Start, s.Op, s.Status
		}
		if ext := s.End().Sub(ts.Start); ext > ts.Duration {
			ts.Duration = ext
		}
	}
	out := make([]TraceSummary, len(order))
	for i, ts := range order {
		out[i] = *ts
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// SlowestN returns the n summaries with the largest duration, slowest
// first.
func SlowestN(summaries []TraceSummary, n int) []TraceSummary {
	out := append([]TraceSummary(nil), summaries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// fnv32 is the FNV-1a hash of s, inlined to keep Record allocation-free.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
