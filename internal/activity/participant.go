package activity

import (
	"fmt"

	"cosm/internal/cosm"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

// Resource is the local transactional state a participant service
// protects. Implementations are typically the application service
// itself: Prepare validates and locks the activity's pending work,
// Commit applies it, Abort discards it. All three are keyed by activity
// identifier and must be idempotent.
type Resource interface {
	Prepare(activityID string) error
	Commit(activityID string) error
	Abort(activityID string) error
}

// ParticipantOpsIDL is the SIDL fragment every transactional service
// embeds: the three participant operations. It is spliced into a
// service's interface by ExtendSID.
const participantOps = `
        // Vote on committing the activity's pending work.
        boolean TxPrepare(in string activity);
        // Apply the activity's pending work.
        void TxCommit(in string activity);
        // Discard the activity's pending work.
        void TxAbort(in string activity);
`

// ParticipantIDL is a standalone description of a pure participant
// service (used when the transactional interface is hosted separately
// from the application interface).
const ParticipantIDL = `
// Transactional participant: two-phase-commit callbacks.
module CosmParticipant {
    interface COSM_Operations {` + participantOps + `    };
};
`

// ExtendSID returns a copy of sid whose interface additionally offers
// the three participant operations — a SID extension in exactly the
// section 3.1 sense: base-level clients still see a conforming
// description and ignore the extra operations.
func ExtendSID(sid *sidl.SID) *sidl.SID {
	ext := sid.Clone()
	strT := sidl.Basic(sidl.String)
	ext.Ops = append(ext.Ops,
		sidl.Op{Name: OpPrepare, Result: sidl.Basic(sidl.Bool), Doc: "Vote on committing the activity's pending work.",
			Params: []sidl.Param{{Name: "activity", Dir: sidl.In, Type: strT}}},
		sidl.Op{Name: OpCommit, Result: sidl.Basic(sidl.Void), Doc: "Apply the activity's pending work.",
			Params: []sidl.Param{{Name: "activity", Dir: sidl.In, Type: strT}}},
		sidl.Op{Name: OpAbort, Result: sidl.Basic(sidl.Void), Doc: "Discard the activity's pending work.",
			Params: []sidl.Param{{Name: "activity", Dir: sidl.In, Type: strT}}},
	)
	return ext
}

// HandleParticipant attaches the three participant operations of an
// ExtendSID-ed service to a Resource.
func HandleParticipant(svc *cosm.Service, res Resource) error {
	boolT := sidl.Basic(sidl.Bool)
	activityArg := func(call *cosm.Call) (string, error) {
		v, err := call.Arg("activity")
		if err != nil {
			return "", err
		}
		return v.Str, nil
	}
	if err := svc.Handle(OpPrepare, func(call *cosm.Call) error {
		id, err := activityArg(call)
		if err != nil {
			return err
		}
		vote := res.Prepare(id) == nil
		call.Result = xcode.NewBool(boolT, vote)
		return nil
	}); err != nil {
		return fmt.Errorf("activity: %w", err)
	}
	if err := svc.Handle(OpCommit, func(call *cosm.Call) error {
		id, err := activityArg(call)
		if err != nil {
			return err
		}
		return res.Commit(id)
	}); err != nil {
		return fmt.Errorf("activity: %w", err)
	}
	if err := svc.Handle(OpAbort, func(call *cosm.Call) error {
		id, err := activityArg(call)
		if err != nil {
			return err
		}
		return res.Abort(id)
	}); err != nil {
		return fmt.Errorf("activity: %w", err)
	}
	return nil
}

func newStringValue(s string) *xcode.Value {
	return xcode.NewString(sidl.Basic(sidl.String), s)
}
