package activity

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// seatStore is a transactional test resource: a pool of seats with
// activity-keyed pending reservations. Prepare votes no when the pending
// reservation oversubscribes the pool.
type seatStore struct {
	mu      sync.Mutex
	free    int
	pending map[string]int
}

func newSeatStore(free int) *seatStore {
	return &seatStore{free: free, pending: map[string]int{}}
}

func (s *seatStore) reserve(activityID string, seats int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending[activityID] += seats
}

func (s *seatStore) Prepare(activityID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[activityID] > s.free {
		return errors.New("not enough seats")
	}
	return nil
}

func (s *seatStore) Commit(activityID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.free -= s.pending[activityID]
	delete(s.pending, activityID)
	return nil
}

func (s *seatStore) Abort(activityID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, activityID)
	return nil
}

func (s *seatStore) Free() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.free
}

func (s *seatStore) pendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

const seatIDL = `
// Reserves seats, transactionally.
module SeatStore {
    interface COSM_Operations {
        // Add seats to the activity's pending reservation.
        void Reserve(in string activity, in long seats);
        // Report free seats.
        long Free();
    };
};
`

// startSeatService hosts one transactional seat store.
func startSeatService(t *testing.T, node *cosm.Node, name string, free int) (*seatStore, ref.ServiceRef) {
	t.Helper()
	baseSID, err := sidl.Parse(seatIDL)
	if err != nil {
		t.Fatal(err)
	}
	baseSID.ServiceName = name
	sid := ExtendSID(baseSID)
	svc, err := cosm.NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	store := newSeatStore(free)
	int32T := sidl.Basic(sidl.Int32)
	svc.MustHandle("Reserve", func(call *cosm.Call) error {
		id, err := call.Arg("activity")
		if err != nil {
			return err
		}
		seats, err := call.Arg("seats")
		if err != nil {
			return err
		}
		store.reserve(id.Str, int(seats.Int))
		return nil
	})
	svc.MustHandle("Free", func(call *cosm.Call) error {
		call.Result = xcode.NewInt(int32T, int64(store.Free()))
		return nil
	})
	if err := HandleParticipant(svc, store); err != nil {
		t.Fatal(err)
	}
	if err := node.Host(name, svc); err != nil {
		t.Fatal(err)
	}
	return store, node.MustRefFor(name)
}

func startNode(t *testing.T, loopName string) *cosm.Node {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node
}

func reserve(t *testing.T, pool *wire.Pool, r ref.ServiceRef, id string, seats int) {
	t.Helper()
	ctx := context.Background()
	conn, err := cosm.Bind(ctx, pool, r)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Invoke(ctx, "Reserve",
		xcode.NewString(sidl.Basic(sidl.String), id),
		xcode.NewInt(sidl.Basic(sidl.Int32), int64(seats)))
	if err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseCommitAcrossServices(t *testing.T) {
	node := startNode(t, "act-commit")
	flights, flightRef := startSeatService(t, node, "FlightSeats", 10)
	hotels, hotelRef := startSeatService(t, node, "HotelRooms", 5)

	m := NewManager(node.Pool())
	ctx := context.Background()

	// Atomic trip booking: 2 flight seats + 2 hotel rooms.
	id := m.Begin()
	if err := m.Join(id, flightRef); err != nil {
		t.Fatal(err)
	}
	if err := m.Join(id, hotelRef); err != nil {
		t.Fatal(err)
	}
	if err := m.Join(id, hotelRef); err != nil { // duplicate join is a no-op
		t.Fatal(err)
	}
	if ps, _ := m.Participants(id); len(ps) != 2 {
		t.Fatalf("participants = %v", ps)
	}
	reserve(t, node.Pool(), flightRef, id, 2)
	reserve(t, node.Pool(), hotelRef, id, 2)

	committed, err := m.Commit(ctx, id)
	if err != nil || !committed {
		t.Fatalf("Commit = %v, %v", committed, err)
	}
	if flights.Free() != 8 || hotels.Free() != 3 {
		t.Fatalf("free = %d flights, %d hotels", flights.Free(), hotels.Free())
	}
	if st, _ := m.Status(id); st != Committed {
		t.Fatalf("status = %s", st)
	}
	// Commit is idempotent.
	committed, err = m.Commit(ctx, id)
	if err != nil || !committed {
		t.Fatalf("repeat Commit = %v, %v", committed, err)
	}
}

func TestPrepareVetoAbortsEverywhere(t *testing.T) {
	node := startNode(t, "act-veto")
	flights, flightRef := startSeatService(t, node, "FlightSeats", 10)
	hotels, hotelRef := startSeatService(t, node, "HotelRooms", 1)

	m := NewManager(node.Pool())
	ctx := context.Background()

	id := m.Begin()
	for _, r := range []ref.ServiceRef{flightRef, hotelRef} {
		if err := m.Join(id, r); err != nil {
			t.Fatal(err)
		}
	}
	reserve(t, node.Pool(), flightRef, id, 2)
	reserve(t, node.Pool(), hotelRef, id, 2) // oversubscribes the hotel

	committed, err := m.Commit(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("activity must abort when a participant vetoes")
	}
	// Nothing applied anywhere — atomicity across services.
	if flights.Free() != 10 || hotels.Free() != 1 {
		t.Fatalf("free = %d flights, %d hotels after abort", flights.Free(), hotels.Free())
	}
	// And the vetoing participant's pending state is discarded too.
	if flights.pendingCount() != 0 || hotels.pendingCount() != 0 {
		t.Fatalf("pending leaked: flights %d, hotels %d", flights.pendingCount(), hotels.pendingCount())
	}
	if st, _ := m.Status(id); st != Aborted {
		t.Fatalf("status = %s", st)
	}
	// Commit after abort reports the aborted outcome.
	committed, err = m.Commit(ctx, id)
	if err != nil || committed {
		t.Fatalf("Commit after abort = %v, %v", committed, err)
	}
}

func TestExplicitAbort(t *testing.T) {
	node := startNode(t, "act-abort")
	flights, flightRef := startSeatService(t, node, "FlightSeats", 10)

	m := NewManager(node.Pool())
	ctx := context.Background()
	id := m.Begin()
	if err := m.Join(id, flightRef); err != nil {
		t.Fatal(err)
	}
	reserve(t, node.Pool(), flightRef, id, 3)
	if err := m.Abort(ctx, id); err != nil {
		t.Fatal(err)
	}
	if flights.Free() != 10 {
		t.Fatalf("free = %d after abort", flights.Free())
	}
	// Abort is idempotent; commit afterwards fails cleanly.
	if err := m.Abort(ctx, id); err != nil {
		t.Fatal(err)
	}
	if committed, err := m.Commit(ctx, id); err != nil || committed {
		t.Fatalf("Commit after abort = %v, %v", committed, err)
	}
	// Joining a finished activity fails.
	if err := m.Join(id, flightRef); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownActivityErrors(t *testing.T) {
	m := NewManager(wire.NewPool())
	ctx := context.Background()
	if err := m.Join("ghost", ref.New("e", "s")); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Commit(ctx, "ghost"); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Abort(ctx, "ghost"); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Status("ghost"); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.Participants("ghost"); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnreachableParticipantAborts(t *testing.T) {
	node := startNode(t, "act-unreachable")
	flights, flightRef := startSeatService(t, node, "FlightSeats", 10)
	m := NewManager(node.Pool())
	ctx := context.Background()
	id := m.Begin()
	if err := m.Join(id, flightRef); err != nil {
		t.Fatal(err)
	}
	if err := m.Join(id, ref.New("loop:act-ghost-node", "Ghost")); err != nil {
		t.Fatal(err)
	}
	reserve(t, node.Pool(), flightRef, id, 1)
	committed, err := m.Commit(ctx, id)
	if err != nil || committed {
		t.Fatalf("Commit with unreachable participant = %v, %v", committed, err)
	}
	if flights.Free() != 10 {
		t.Fatalf("free = %d", flights.Free())
	}
}

func TestRemoteActivityManager(t *testing.T) {
	// The manager itself as a COSM service, driven by its typed client.
	node := startNode(t, "act-remote")
	flights, flightRef := startSeatService(t, node, "FlightSeats", 4)

	m := NewManager(node.Pool())
	msvc, err := NewService(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(ServiceName, msvc); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ac, err := DialManager(ctx, node.Pool(), node.MustRefFor(ServiceName))
	if err != nil {
		t.Fatal(err)
	}

	id, err := ac.Begin(ctx)
	if err != nil || id == "" {
		t.Fatalf("Begin = %q, %v", id, err)
	}
	if err := ac.Join(ctx, id, flightRef); err != nil {
		t.Fatal(err)
	}
	reserve(t, node.Pool(), flightRef, id, 4)
	if status, err := ac.Status(ctx, id); err != nil || status != "active" {
		t.Fatalf("Status = %q, %v", status, err)
	}
	committed, err := ac.Commit(ctx, id)
	if err != nil || !committed {
		t.Fatalf("Commit = %v, %v", committed, err)
	}
	if flights.Free() != 0 {
		t.Fatalf("free = %d", flights.Free())
	}
	if status, _ := ac.Status(ctx, id); status != "committed" {
		t.Fatalf("Status = %q", status)
	}
	// Remote errors propagate.
	if err := ac.Join(ctx, "ghost", flightRef); err == nil {
		t.Fatal("remote Join(ghost) must fail")
	}
	// Abort path through the facade.
	id2, err := ac.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ac.Abort(ctx, id2); err != nil {
		t.Fatal(err)
	}
	if status, _ := ac.Status(ctx, id2); status != "aborted" {
		t.Fatalf("Status = %q", status)
	}
}

func TestExtendedSIDStillConformsToBase(t *testing.T) {
	// The participant extension is a record extension in the paper's
	// sense: base clients see a conforming SID and never notice the
	// transactional operations.
	base, err := sidl.Parse(seatIDL)
	if err != nil {
		t.Fatal(err)
	}
	ext := ExtendSID(base)
	if err := ext.ConformsTo(base); err != nil {
		t.Fatal(err)
	}
	if err := base.ConformsTo(ext); err == nil {
		t.Fatal("base must not conform to the extension")
	}
	if _, ok := ext.Op(OpPrepare); !ok {
		t.Fatal("extension lacks TxPrepare")
	}
	// The standalone participant IDL parses and matches the op names.
	p, err := sidl.Parse(ParticipantIDL)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{OpPrepare, OpCommit, OpAbort} {
		if _, ok := p.Op(op); !ok {
			t.Fatalf("ParticipantIDL lacks %s", op)
		}
	}
}

func TestConcurrentActivities(t *testing.T) {
	node := startNode(t, "act-concurrent")
	store, storeRef := startSeatService(t, node, "FlightSeats", 64)
	m := NewManager(node.Pool())
	ctx := context.Background()

	const workers = 16
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := m.Begin()
			if err := m.Join(id, storeRef); err != nil {
				errs[i] = err
				return
			}
			conn, err := cosm.Bind(ctx, node.Pool(), storeRef)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := conn.Invoke(ctx, "Reserve",
				xcode.NewString(sidl.Basic(sidl.String), id),
				xcode.NewInt(sidl.Basic(sidl.Int32), 2)); err != nil {
				errs[i] = err
				return
			}
			committed, err := m.Commit(ctx, id)
			if err != nil {
				errs[i] = err
				return
			}
			if !committed {
				errs[i] = fmt.Errorf("activity %s unexpectedly aborted", id)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := store.Free(); got != 64-2*workers {
		t.Fatalf("free = %d, want %d", got, 64-2*workers)
	}
}
