// Package activity implements the "Activity Management" / "TP-Monitor"
// function of the COSM controlling level and the "Transactional RPC"
// function of the communication level (Fig. 6).
//
// The paper lists both as part of the architecture but "currently
// outside the scope of the ongoing prototype implementation"; this
// package supplies them in the same style as the rest of the
// infrastructure: the Activity Manager is itself a COSM service with a
// SID, participants are COSM services implementing a small transactional
// interface, and coordination is classic presumed-abort two-phase
// commit.
//
// An activity groups invocations at several services into one atomic
// unit of work: a client Begins an activity, enlists each participant
// (Join), performs ordinary invocations that the participants key by
// activity identifier, and finally Commits — the manager drives
// prepare/commit (or abort) at every participant.
package activity

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/wire"
)

// Errors reported by the activity manager.
var (
	ErrUnknownActivity = errors.New("activity: unknown activity")
	ErrNotActive       = errors.New("activity: activity is not active")
	ErrAborted         = errors.New("activity: activity aborted")
)

// State is the lifecycle state of an activity.
type State uint8

// Activity states (presumed-abort 2PC).
const (
	Active State = iota + 1
	Preparing
	Committed
	Aborted
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Preparing:
		return "preparing"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Participant operation names; every transactional service implements
// these three operations (the CosmParticipant interface).
const (
	OpPrepare = "TxPrepare"
	OpCommit  = "TxCommit"
	OpAbort   = "TxAbort"
)

// Manager is the activity coordinator. It drives two-phase commit over
// participants addressed by service reference, binding through a shared
// pool. Safe for concurrent use.
type Manager struct {
	pool *wire.Pool

	mu         sync.Mutex
	activities map[string]*activity
}

type activity struct {
	state        State
	participants []ref.ServiceRef
}

// NewManager returns an empty coordinator.
func NewManager(pool *wire.Pool) *Manager {
	return &Manager{pool: pool, activities: map[string]*activity{}}
}

// Begin starts a new activity and returns its identifier.
func (m *Manager) Begin() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("activity: crypto/rand unavailable: " + err.Error())
	}
	id := "act-" + hex.EncodeToString(b[:])
	m.mu.Lock()
	m.activities[id] = &activity{state: Active}
	m.mu.Unlock()
	return id
}

// Join enlists a participant service in an active activity. Enlisting
// the same participant twice is a no-op.
func (m *Manager) Join(id string, participant ref.ServiceRef) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	act, ok := m.activities[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownActivity, id)
	}
	if act.state != Active {
		return fmt.Errorf("%w: %q is %s", ErrNotActive, id, act.state)
	}
	for _, p := range act.participants {
		if p == participant {
			return nil
		}
	}
	act.participants = append(act.participants, participant)
	return nil
}

// Participants returns the enlisted participants, sorted by reference.
func (m *Manager) Participants(id string) ([]ref.ServiceRef, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	act, ok := m.activities[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownActivity, id)
	}
	out := append([]ref.ServiceRef(nil), act.participants...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// Status returns the activity's state.
func (m *Manager) Status(id string) (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	act, ok := m.activities[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownActivity, id)
	}
	return act.state, nil
}

// Commit runs two-phase commit. It returns (true, nil) when all
// participants voted yes and were committed, and (false, nil) when the
// activity was aborted because some participant voted no or failed
// during prepare. Calling Commit on a finished activity returns its
// outcome idempotently.
func (m *Manager) Commit(ctx context.Context, id string) (bool, error) {
	m.mu.Lock()
	act, ok := m.activities[id]
	if !ok {
		m.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrUnknownActivity, id)
	}
	switch act.state {
	case Committed:
		m.mu.Unlock()
		return true, nil
	case Aborted:
		m.mu.Unlock()
		return false, nil
	case Preparing:
		m.mu.Unlock()
		return false, fmt.Errorf("%w: %q is already preparing", ErrNotActive, id)
	}
	act.state = Preparing
	participants := append([]ref.ServiceRef(nil), act.participants...)
	m.mu.Unlock()

	// Phase 1: prepare.
	prepared := make([]ref.ServiceRef, 0, len(participants))
	vote := true
	for _, p := range participants {
		ok, err := m.invokeBool(ctx, p, OpPrepare, id)
		if err != nil || !ok {
			vote = false
			break
		}
		prepared = append(prepared, p)
	}

	if !vote {
		// Abort at every participant, not only the prepared ones: a
		// participant that voted no may still hold pending state for
		// the activity and must discard it.
		m.finish(ctx, id, participants, OpAbort)
		m.setState(id, Aborted)
		return false, nil
	}

	// Phase 2: commit everywhere. Participant failures here are logged
	// into the error best-effort; the decision is already durable in the
	// coordinator (in-memory durability — the 1994 prototype level).
	m.finish(ctx, id, prepared, OpCommit)
	m.setState(id, Committed)
	return true, nil
}

// Abort rolls back an active activity at every participant.
func (m *Manager) Abort(ctx context.Context, id string) error {
	m.mu.Lock()
	act, ok := m.activities[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownActivity, id)
	}
	if act.state == Aborted {
		m.mu.Unlock()
		return nil
	}
	if act.state == Committed {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q already committed", ErrNotActive, id)
	}
	participants := append([]ref.ServiceRef(nil), act.participants...)
	act.state = Preparing
	m.mu.Unlock()

	m.finish(ctx, id, participants, OpAbort)
	m.setState(id, Aborted)
	return nil
}

func (m *Manager) setState(id string, s State) {
	m.mu.Lock()
	if act, ok := m.activities[id]; ok {
		act.state = s
	}
	m.mu.Unlock()
}

// finish drives commit or abort at each participant, tolerating
// individual failures.
func (m *Manager) finish(ctx context.Context, id string, participants []ref.ServiceRef, op string) {
	for _, p := range participants {
		_, _ = m.invokeVoid(ctx, p, op, id)
	}
}

func (m *Manager) invokeBool(ctx context.Context, p ref.ServiceRef, op, id string) (bool, error) {
	res, err := m.invoke(ctx, p, op, id)
	if err != nil {
		return false, err
	}
	return res.Value != nil && res.Value.Bool, nil
}

func (m *Manager) invokeVoid(ctx context.Context, p ref.ServiceRef, op, id string) (*cosm.Result, error) {
	return m.invoke(ctx, p, op, id)
}

func (m *Manager) invoke(ctx context.Context, p ref.ServiceRef, op, id string) (*cosm.Result, error) {
	conn, err := cosm.Bind(ctx, m.pool, p)
	if err != nil {
		return nil, err
	}
	return conn.Invoke(ctx, op, newStringValue(id))
}
