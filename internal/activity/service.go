package activity

import (
	"context"
	"fmt"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// ServiceName is the well-known hosted name of an activity manager.
const ServiceName = "cosm.activity"

// IDL is the activity manager's own service description.
const IDL = `
// Activity manager: groups invocations at several services into atomic
// units of work via two-phase commit.
module CosmActivity {
    interface COSM_Operations {
        // Start a new activity; returns its identifier.
        string Begin();
        // Enlist a participant service in an activity.
        void Join(in string activity, in Object participant);
        // Two-phase commit; TRUE if committed, FALSE if aborted.
        boolean Commit(in string activity);
        // Roll the activity back at every participant.
        void Abort(in string activity);
        // Report the activity's lifecycle state.
        string Status(in string activity);
    };
};
`

// NewService wraps a Manager as a hosted COSM service.
func NewService(m *Manager) (*cosm.Service, error) {
	sid, err := sidl.Parse(IDL)
	if err != nil {
		return nil, fmt.Errorf("activity: internal IDL: %w", err)
	}
	svc, err := cosm.NewService(sid)
	if err != nil {
		return nil, err
	}
	strT := sidl.Basic(sidl.String)
	boolT := sidl.Basic(sidl.Bool)

	activityArg := func(call *cosm.Call) (string, error) {
		v, err := call.Arg("activity")
		if err != nil {
			return "", err
		}
		return v.Str, nil
	}

	svc.MustHandle("Begin", func(call *cosm.Call) error {
		call.Result = xcode.NewString(strT, m.Begin())
		return nil
	})
	svc.MustHandle("Join", func(call *cosm.Call) error {
		id, err := activityArg(call)
		if err != nil {
			return err
		}
		participant, err := call.Arg("participant")
		if err != nil {
			return err
		}
		return m.Join(id, participant.Ref)
	})
	svc.MustHandle("Commit", func(call *cosm.Call) error {
		id, err := activityArg(call)
		if err != nil {
			return err
		}
		committed, err := m.Commit(context.Background(), id)
		if err != nil {
			return err
		}
		call.Result = xcode.NewBool(boolT, committed)
		return nil
	})
	svc.MustHandle("Abort", func(call *cosm.Call) error {
		id, err := activityArg(call)
		if err != nil {
			return err
		}
		return m.Abort(context.Background(), id)
	})
	svc.MustHandle("Status", func(call *cosm.Call) error {
		id, err := activityArg(call)
		if err != nil {
			return err
		}
		state, err := m.Status(id)
		if err != nil {
			return err
		}
		call.Result = xcode.NewString(strT, state.String())
		return nil
	})
	return svc, nil
}

// Client is a typed wrapper over a dynamic binding to a remote activity
// manager.
type Client struct {
	conn *cosm.Conn
	strT *sidl.Type
	refT *sidl.Type
}

// DialManager binds to the activity manager behind r.
func DialManager(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) (*Client, error) {
	conn, err := cosm.Bind(ctx, pool, r)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, strT: sidl.Basic(sidl.String), refT: sidl.Basic(sidl.SvcRef)}, nil
}

// Begin starts a new remote activity.
func (c *Client) Begin(ctx context.Context) (string, error) {
	res, err := c.conn.Invoke(ctx, "Begin")
	if err != nil {
		return "", fmt.Errorf("activity: remote begin: %w", err)
	}
	return res.Value.Str, nil
}

// Join enlists a participant.
func (c *Client) Join(ctx context.Context, id string, participant ref.ServiceRef) error {
	_, err := c.conn.Invoke(ctx, "Join",
		xcode.NewString(c.strT, id), xcode.NewRef(c.refT, participant))
	if err != nil {
		return fmt.Errorf("activity: remote join: %w", err)
	}
	return nil
}

// Commit drives two-phase commit; it reports whether the activity
// committed.
func (c *Client) Commit(ctx context.Context, id string) (bool, error) {
	res, err := c.conn.Invoke(ctx, "Commit", xcode.NewString(c.strT, id))
	if err != nil {
		return false, fmt.Errorf("activity: remote commit: %w", err)
	}
	return res.Value.Bool, nil
}

// Abort rolls the activity back.
func (c *Client) Abort(ctx context.Context, id string) error {
	_, err := c.conn.Invoke(ctx, "Abort", xcode.NewString(c.strT, id))
	if err != nil {
		return fmt.Errorf("activity: remote abort: %w", err)
	}
	return nil
}

// Status reports the activity's lifecycle state name.
func (c *Client) Status(ctx context.Context, id string) (string, error) {
	res, err := c.conn.Invoke(ctx, "Status", xcode.NewString(c.strT, id))
	if err != nil {
		return "", fmt.Errorf("activity: remote status: %w", err)
	}
	return res.Value.Str, nil
}
