package carrental

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cosm/internal/browser"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

func startRental(t *testing.T, loopName string) (*cosm.Node, *Service, ref.ServiceRef) {
	t.Helper()
	svc, impl, err := New()
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, impl, node.MustRefFor("CarRentalService")
}

func TestBookingFlow(t *testing.T) {
	node, impl, carRef := startRental(t, "cr-flow")
	gc := genclient.New(node.Pool())
	ctx := context.Background()
	b, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}

	res, err := b.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model":       "FIAT_Uno",
		"SelectCar.selection.bookingDate": "1994-06-21",
		"SelectCar.selection.days":        "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	charge, _ := res.Value.Field("charge")
	if charge.Float != 240 {
		t.Fatalf("charge = %v", charge)
	}

	// Re-selection is allowed by the FSM and replaces the choice.
	res, err = b.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "AUDI",
		"SelectCar.selection.days":  "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	charge, _ = res.Value.Field("charge")
	if charge.Float != 240 { // AUDI 120 * 2
		t.Fatalf("re-selection charge = %v", charge)
	}

	res, err = b.Invoke(ctx, "Commit")
	if err != nil {
		t.Fatal(err)
	}
	conf, _ := res.Value.Field("confirmation")
	if !strings.Contains(conf.Str, "AUDI-2d") {
		t.Fatalf("confirmation = %q", conf.Str)
	}
	if impl.Bookings() != 1 {
		t.Fatalf("bookings = %d", impl.Bookings())
	}
}

func TestUnavailableModel(t *testing.T) {
	node, _, _ := startRental(t, "cr-unavailable")
	gc := genclient.New(node.Pool())
	ctx := context.Background()
	// A fresh service with a restricted tariff: VW_Golf is not offered.
	svc, _, err := New(WithTariff(Tariff{"AUDI": 100}))
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host("SmallRental", svc); err != nil {
		t.Fatal(err)
	}
	b2, err := gc.Bind(ctx, node.MustRefFor("SmallRental"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := b2.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "VW_Golf",
		"SelectCar.selection.days":  "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if avail, _ := res.Value.Field("available"); avail.Bool {
		t.Fatal("VW_Golf should be unavailable in the restricted tariff")
	}
}

func TestRejectsNonPositiveDays(t *testing.T) {
	node, _, carRef := startRental(t, "cr-days")
	gc := genclient.New(node.Pool())
	ctx := context.Background()
	b, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.InvokeForm(ctx, "SelectCar", map[string]string{"SelectCar.selection.days": "0"})
	var re *wire.RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "days must be positive") {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	node, impl, carRef := startRental(t, "cr-sessions")
	gc := genclient.New(node.Pool())
	ctx := context.Background()

	b1, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "AUDI", "SelectCar.selection.days": "1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "VW_Golf", "SelectCar.selection.days": "4"}); err != nil {
		t.Fatal(err)
	}
	res, err := b1.Invoke(ctx, "Commit")
	if err != nil {
		t.Fatal(err)
	}
	conf, _ := res.Value.Field("confirmation")
	if !strings.Contains(conf.Str, "AUDI-1d") {
		t.Fatalf("session 1 booked %q", conf.Str)
	}
	res, err = b2.Invoke(ctx, "Commit")
	if err != nil {
		t.Fatal(err)
	}
	conf, _ = res.Value.Field("confirmation")
	if !strings.Contains(conf.Str, "VW_Golf-4d") {
		t.Fatalf("session 2 booked %q", conf.Str)
	}
	if impl.Bookings() != 2 {
		t.Fatalf("bookings = %d", impl.Bookings())
	}
}

func TestPublishIntegrated(t *testing.T) {
	node, _, carRef := startRental(t, "cr-publish")
	ctx := context.Background()

	// Host a browser and a trader on the same node.
	bsvc, err := browser.NewService(browser.NewDirectory())
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(browser.ServiceName, bsvc); err != nil {
		t.Fatal(err)
	}
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := trader.New("T1", repo)
	tsvc, err := trader.NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(trader.ServiceName, tsvc); err != nil {
		t.Fatal(err)
	}

	bc, err := browser.DialBrowser(ctx, node.Pool(), node.MustRefFor(browser.ServiceName))
	if err != nil {
		t.Fatal(err)
	}
	tc, err := trader.DialTrader(ctx, node.Pool(), node.MustRefFor(trader.ServiceName))
	if err != nil {
		t.Fatal(err)
	}

	pub, err := Publish(ctx, sidl.CarRentalSID(), carRef, bc, tc)
	if err != nil {
		t.Fatal(err)
	}
	if pub.Name != "CarRentalService" || pub.OfferID == "" {
		t.Fatalf("publication = %+v", pub)
	}

	// Reachable through the browser (mediation)...
	entries, err := bc.Search(ctx, "car")
	if err != nil || len(entries) != 1 || entries[0].Ref != carRef {
		t.Fatalf("browser entries = %v, %v", entries, err)
	}
	// ...and through the trader (typed import).
	offer, err := tc.ImportOneWith(ctx, "CarRentalService",
		trader.Where("ChargePerDay < 100"),
		trader.OrderBy("min:ChargePerDay"))
	if err != nil || offer.Ref != carRef {
		t.Fatalf("trader offer = %+v, %v", offer, err)
	}

	// Unpublish withdraws both registrations symmetrically.
	if err := pub.Unpublish(ctx); err != nil {
		t.Fatal(err)
	}
	if entries, _ := bc.Search(ctx, "car"); len(entries) != 0 {
		t.Fatalf("browser entries after unpublish = %v", entries)
	}
	if _, err := tc.ImportOneWith(ctx, "CarRentalService"); err == nil {
		t.Fatal("trader offer must be withdrawn after unpublish")
	}
}
