// Package carrental implements the paper's running example — the remote
// car rental server of sections 1, 2.1, 3.1 and 4.1 — as a complete
// COSM service: the SIDL description (sidl.CarRentalIDL), a stateful
// implementation honouring the FSM protocol, and helpers to publish the
// service at browsers and traders.
package carrental

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cosm/internal/browser"
	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/xcode"
)

// ErrNoSelection reports a Commit for a session that never selected a
// car. With server-side FSM enforcement active this cannot happen; the
// check is the application-level belt to the protocol's braces.
var ErrNoSelection = errors.New("carrental: no car selected in this session")

// Tariff is the per-model daily charge table of one rental company.
type Tariff map[string]float64

// DefaultTariff prices the three models of the paper's example.
func DefaultTariff() Tariff {
	return Tariff{"AUDI": 120, "FIAT_Uno": 80, "VW_Golf": 95}
}

// Service is the car rental business logic: per-session selections plus
// a booking counter.
type Service struct {
	sid    *sidl.SID
	tariff Tariff

	mu         sync.Mutex
	selections map[string]selection
	bookings   int
}

type selection struct {
	model  string
	days   int64
	charge float64
}

// Option configures a Service.
type Option func(*Service)

// WithTariff overrides the default tariff.
func WithTariff(t Tariff) Option {
	return func(s *Service) { s.tariff = t }
}

// New builds the car rental service and returns both the COSM service
// (to host on a node) and the business object (to inspect in tests).
func New(opts ...Option) (*cosm.Service, *Service, error) {
	sid := sidl.CarRentalSID()
	impl := &Service{
		sid:        sid,
		tariff:     DefaultTariff(),
		selections: map[string]selection{},
	}
	for _, o := range opts {
		o(impl)
	}
	svc, err := cosm.NewService(sid)
	if err != nil {
		return nil, nil, err
	}
	svc.MustHandle("SelectCar", impl.selectCar)
	svc.MustHandle("Commit", impl.commit)
	return svc, impl, nil
}

// SID returns the service description.
func (s *Service) SID() *sidl.SID { return s.sid }

// Bookings returns the number of committed bookings.
func (s *Service) Bookings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bookings
}

func (s *Service) selectCar(call *cosm.Call) error {
	sel, err := call.Arg("selection")
	if err != nil {
		return err
	}
	model, err := sel.Field("model")
	if err != nil {
		return err
	}
	days, err := sel.Field("days")
	if err != nil {
		return err
	}
	if days.Int <= 0 {
		return fmt.Errorf("carrental: days must be positive, got %d", days.Int)
	}
	modelName := model.EnumLiteral()
	perDay, available := s.tariff[modelName]
	charge := perDay * float64(days.Int)

	out := xcode.Zero(s.sid.Type("SelectCarReturn_t"))
	if err := out.SetField("available", xcode.NewBool(sidl.Basic(sidl.Bool), available)); err != nil {
		return err
	}
	if available {
		if err := out.SetField("charge", xcode.NewFloat(sidl.Basic(sidl.Float64), charge)); err != nil {
			return err
		}
		s.mu.Lock()
		s.selections[call.Session] = selection{model: modelName, days: days.Int, charge: charge}
		s.mu.Unlock()
	}
	call.Result = out
	return nil
}

func (s *Service) commit(call *cosm.Call) error {
	s.mu.Lock()
	sel, ok := s.selections[call.Session]
	if ok {
		delete(s.selections, call.Session)
		s.bookings++
	}
	n := s.bookings
	s.mu.Unlock()
	if !ok {
		return ErrNoSelection
	}
	out := xcode.Zero(s.sid.Type("BookCarReturn_t"))
	if err := out.SetField("ok", xcode.NewBool(sidl.Basic(sidl.Bool), true)); err != nil {
		return err
	}
	confirmation := fmt.Sprintf("RES-%04d-%s-%dd", n, sel.model, sel.days)
	if err := out.SetField("confirmation", xcode.NewString(sidl.Basic(sidl.String), confirmation)); err != nil {
		return err
	}
	call.Result = out
	return nil
}

// Publication records where a service was published, so it can be
// withdrawn symmetrically when the provider shuts down.
type Publication struct {
	// Name is the SID service name registered at the browser ("" when no
	// browser was involved).
	Name string
	// OfferID is the trader offer id ("" when no trader was involved).
	OfferID string

	bc *browser.Client
	tc *trader.Client
}

// Publish registers the hosted service at a browser (mediation path)
// and, when a trader client is given, also exports it as a typed offer
// (trading path) — the integrated COSM publication of section 4.1. The
// returned Publication lets the provider deregister on shutdown.
func Publish(ctx context.Context, sid *sidl.SID, r ref.ServiceRef, bc *browser.Client, tc *trader.Client) (*Publication, error) {
	pub := &Publication{bc: bc, tc: tc}
	if bc != nil {
		if err := bc.RegisterSID(ctx, sid, r); err != nil {
			return nil, fmt.Errorf("carrental: browser registration: %w", err)
		}
		pub.Name = sid.ServiceName
	}
	if tc != nil {
		id, err := tc.ExportSID(ctx, sid, r)
		if err != nil {
			return nil, fmt.Errorf("carrental: trader export: %w", err)
		}
		pub.OfferID = id
	}
	return pub, nil
}

// Unpublish withdraws the publication: the trader offer first (so
// importers stop being routed here), then the browser entry. Errors are
// joined, not short-circuited — a dead trader must not leave the
// browser entry stale too.
func (p *Publication) Unpublish(ctx context.Context) error {
	var errs []error
	if p.tc != nil && p.OfferID != "" {
		if err := p.tc.Withdraw(ctx, p.OfferID); err != nil {
			errs = append(errs, fmt.Errorf("carrental: trader withdraw: %w", err))
		}
	}
	if p.bc != nil && p.Name != "" {
		if err := p.bc.Withdraw(ctx, p.Name); err != nil {
			errs = append(errs, fmt.Errorf("carrental: browser withdraw: %w", err))
		}
	}
	return errors.Join(errs...)
}
