// Package genclient implements the Generic Client of the COSM
// architecture (paper sections 3.2 and 4.2, Fig. 3).
//
// A generic client lets a human user access an arbitrary, previously
// unknown service with zero service-specific code: it fetches the
// service's SID at bind time (SID transfer), generates the user
// interface from it (GUI generation, package uiform), marshals
// parameters dynamically (package xcode via the cosm runtime), and
// intercepts invocations that violate the service's FSM protocol locally
// — before any network traffic (section 4.2).
//
// Service references are first-class: when an invocation result carries
// a SERVICEREFERENCE value, the user can bind to it directly out of the
// user interface, producing the cascade of bindings of Fig. 4. Bindings
// track their parent so the cascade is inspectable.
package genclient

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cosm/internal/browser"
	"cosm/internal/cosm"
	"cosm/internal/fsm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/uiform"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// Errors reported by the generic client.
var (
	// ErrProtocol wraps local FSM interceptions: the invocation was
	// rejected before leaving the client.
	ErrProtocol = errors.New("genclient: protocol violation intercepted locally")
	// ErrNotARef reports a cascade attempt on a non-reference value.
	ErrNotARef = errors.New("genclient: value is not a service reference")
)

// Client is a generic client: a factory for Bindings sharing one
// connection pool, tracking the cascade of bindings it has opened.
type Client struct {
	pool *wire.Pool

	mu       sync.Mutex
	bindings []*Binding
}

// New returns a generic client drawing connections from pool.
func New(pool *wire.Pool) *Client {
	return &Client{pool: pool}
}

// Binding is one live binding: the dynamic connection, the local FSM
// session mirror, and the generated forms.
type Binding struct {
	client  *Client
	conn    *cosm.Conn
	session *fsm.Session
	forms   []*uiform.Form
	parent  *Binding
}

// Bind opens a binding to r, fetching the SID from the service (the
// "SID transfer" arrow of Fig. 3) and generating its user interface.
func (c *Client) Bind(ctx context.Context, r ref.ServiceRef) (*Binding, error) {
	conn, err := cosm.Bind(ctx, c.pool, r)
	if err != nil {
		return nil, err
	}
	return c.adopt(conn, nil), nil
}

// BindWithSID opens a binding with an already-known description (e.g. a
// browser entry), avoiding the describe round trip.
func (c *Client) BindWithSID(r ref.ServiceRef, sid *sidl.SID) (*Binding, error) {
	conn, err := cosm.BindWithSID(c.pool, r, sid)
	if err != nil {
		return nil, err
	}
	return c.adopt(conn, nil), nil
}

// BindEntry opens a binding to a browser entry (step 3 of Fig. 4).
func (c *Client) BindEntry(e browser.Entry) (*Binding, error) {
	return c.BindWithSID(e.Ref, e.SID)
}

// Browse performs a keyword search at a browser service — the human
// user's service selection step (step 2 of Fig. 4).
func (c *Client) Browse(ctx context.Context, browserRef ref.ServiceRef, keyword string) ([]browser.Entry, error) {
	bc, err := browser.DialBrowser(ctx, c.pool, browserRef)
	if err != nil {
		return nil, err
	}
	return bc.Search(ctx, keyword)
}

// BrowseAndBind searches at a browser and binds to the first hit.
func (c *Client) BrowseAndBind(ctx context.Context, browserRef ref.ServiceRef, keyword string) (*Binding, error) {
	entries, err := c.Browse(ctx, browserRef, keyword)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("genclient: no service matching %q at %s", keyword, browserRef)
	}
	return c.BindEntry(entries[0])
}

// Adopt wraps an externally-established connection (for example one
// produced by the trader's failover binding path) into a Binding, so
// FSM interception and form generation apply to it like any other.
func (c *Client) Adopt(conn *cosm.Conn) *Binding {
	return c.adopt(conn, nil)
}

func (c *Client) adopt(conn *cosm.Conn, parent *Binding) *Binding {
	b := &Binding{
		client:  c,
		conn:    conn,
		session: fsm.NewSession(conn.SID().FSM),
		forms:   uiform.Generate(conn.SID()),
		parent:  parent,
	}
	c.mu.Lock()
	c.bindings = append(c.bindings, b)
	c.mu.Unlock()
	return b
}

// Bindings returns every binding opened through this client, in order.
func (c *Client) Bindings() []*Binding {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Binding(nil), c.bindings...)
}

// SID returns the bound service's description.
func (b *Binding) SID() *sidl.SID { return b.conn.SID() }

// Ref returns the bound service reference.
func (b *Binding) Ref() ref.ServiceRef { return b.conn.Ref() }

// Parent returns the binding this one was cascaded from (nil for roots).
func (b *Binding) Parent() *Binding { return b.parent }

// Depth returns the binding's cascade depth (0 for roots).
func (b *Binding) Depth() int {
	d := 0
	for p := b.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Forms returns the generated user interface, one form per operation.
func (b *Binding) Forms() []*uiform.Form {
	return append([]*uiform.Form(nil), b.forms...)
}

// Form returns the generated form for one operation.
func (b *Binding) Form(opName string) (*uiform.Form, error) {
	for _, f := range b.forms {
		if f.Op.Name == opName {
			return f, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", uiform.ErrNoOp, opName)
}

// RenderUI renders the full generated user interface as text (Fig. 7).
func (b *Binding) RenderUI() string {
	return uiform.RenderAll(b.conn.SID())
}

// State returns the local mirror of the communication state ("" when the
// protocol is unrestricted).
func (b *Binding) State() string { return b.session.State() }

// AllowedOps returns the operations legal in the current state (nil
// means all).
func (b *Binding) AllowedOps() []string {
	return b.conn.SID().FSM.AllowedOps(b.session.State())
}

// Reset rewinds the local protocol mirror to the initial state (used
// after an out-of-band resynchronisation with the server).
func (b *Binding) Reset() { b.session.Reset() }

// Invoke performs one dynamic invocation. Invocations that violate the
// FSM protocol are intercepted locally and return ErrProtocol without
// any network traffic — the property demonstrated in section 4.2.
//
// The local state mirror steps optimistically before the call; when the
// invocation fails in a way that shows the server's machine did not
// transition (marshalling errors, unknown operation, a server-side
// protocol rejection), the mirror is restored. Application errors leave
// the mirror stepped: the server transitioned before running the
// handler.
func (b *Binding) Invoke(ctx context.Context, opName string, args ...*xcode.Value) (*cosm.Result, error) {
	prev := b.session.State()
	if err := b.session.Step(opName); err != nil {
		if errors.Is(err, fsm.ErrIllegalOp) {
			return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
		}
		return nil, err
	}
	res, err := b.conn.Invoke(ctx, opName, args...)
	if err != nil && !isServerHandlerError(err) {
		// Best-effort resynchronisation; an unknown state would mean the
		// SID changed under us, in which case the mirror stays ahead.
		_ = b.session.Restore(prev)
	}
	return res, err
}

// isServerHandlerError reports whether the error proves the server-side
// machine transitioned (the handler ran and failed).
func isServerHandlerError(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && re.Status == wire.StatusAppError
}

// InvokeForm builds the operation's arguments from textual user input
// (keyed by widget path) and invokes it — the full Fig. 7 loop: form in,
// typed invocation out.
func (b *Binding) InvokeForm(ctx context.Context, opName string, inputs map[string]string) (*cosm.Result, error) {
	form, err := b.Form(opName)
	if err != nil {
		return nil, err
	}
	args, err := form.BuildArgs(inputs)
	if err != nil {
		return nil, err
	}
	return b.Invoke(ctx, opName, args...)
}

// BindValue cascades: given a SERVICEREFERENCE value from a previous
// result, it opens a child binding to the referenced service, with this
// binding as parent (Fig. 4's consecutive binding establishments).
func (b *Binding) BindValue(ctx context.Context, v *xcode.Value) (*Binding, error) {
	if v == nil || v.Type.Kind != sidl.SvcRef {
		return nil, ErrNotARef
	}
	if v.Ref.IsZero() {
		return nil, fmt.Errorf("%w: nil reference", ErrNotARef)
	}
	conn, err := cosm.Bind(ctx, b.client.pool, v.Ref)
	if err != nil {
		return nil, err
	}
	return b.client.adopt(conn, b), nil
}
