package genclient

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cosm/internal/browser"
	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

// startCarRental hosts a minimal car rental service (with the paper's
// FSM) and returns its node and reference. selectCount observes how many
// SelectCar requests actually reached the server.
func startCarRental(t *testing.T, loopName string, selectCount *int) (*cosm.Node, ref.ServiceRef) {
	t.Helper()
	sid := sidl.CarRentalSID()
	svc, err := cosm.NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	svc.MustHandle("SelectCar", func(call *cosm.Call) error {
		if selectCount != nil {
			*selectCount++
		}
		out := xcode.Zero(sid.Type("SelectCarReturn_t"))
		if err := out.SetField("available", xcode.NewBool(sidl.Basic(sidl.Bool), true)); err != nil {
			return err
		}
		if err := out.SetField("charge", xcode.NewFloat(sidl.Basic(sidl.Float64), 80)); err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	svc.MustHandle("Commit", func(call *cosm.Call) error {
		out := xcode.Zero(sid.Type("BookCarReturn_t"))
		if err := out.SetField("ok", xcode.NewBool(sidl.Basic(sidl.Bool), true)); err != nil {
			return err
		}
		if err := out.SetField("confirmation", xcode.NewString(sidl.Basic(sidl.String), "RES-4711")); err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor("CarRentalService")
}

func TestBindGeneratesUI(t *testing.T) {
	node, carRef := startCarRental(t, "gc-bind", nil)
	gc := New(node.Pool())
	b, err := gc.Bind(context.Background(), carRef)
	if err != nil {
		t.Fatal(err)
	}
	if b.SID().ServiceName != "CarRentalService" {
		t.Fatalf("SID = %q", b.SID().ServiceName)
	}
	forms := b.Forms()
	if len(forms) != 2 {
		t.Fatalf("forms = %d", len(forms))
	}
	ui := b.RenderUI()
	if !strings.Contains(ui, "model: (AUDI | FIAT_Uno | VW_Golf)") {
		t.Fatalf("UI lacks generated editor:\n%s", ui)
	}
	if _, err := b.Form("SelectCar"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Form("Ghost"); err == nil {
		t.Fatal("Form(Ghost) must fail")
	}
	if b.Ref() != carRef || b.Depth() != 0 || b.Parent() != nil {
		t.Fatalf("binding metadata: %v %d", b.Ref(), b.Depth())
	}
}

func TestLocalFSMInterception(t *testing.T) {
	var selects int
	node, carRef := startCarRental(t, "gc-fsm", &selects)
	gc := New(node.Pool())
	ctx := context.Background()
	b, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}

	if got := b.State(); got != "INIT" {
		t.Fatalf("state = %q", got)
	}
	if ops := b.AllowedOps(); len(ops) != 1 || ops[0] != "SelectCar" {
		t.Fatalf("AllowedOps = %v", ops)
	}

	// Commit in INIT: intercepted locally — the server never sees it.
	_, err = b.Invoke(ctx, "Commit")
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}

	// Legal sequence.
	res, err := b.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "FIAT_Uno",
		"SelectCar.selection.days":  "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if avail, _ := res.Value.Field("available"); !avail.Bool {
		t.Fatalf("available = %s", res.Value)
	}
	if got := b.State(); got != "SELECTED" {
		t.Fatalf("state after SelectCar = %q", got)
	}
	res, err = b.Invoke(ctx, "Commit")
	if err != nil {
		t.Fatal(err)
	}
	if conf, _ := res.Value.Field("confirmation"); conf.Str != "RES-4711" {
		t.Fatalf("confirmation = %s", conf)
	}
	if got := b.State(); got != "INIT" {
		t.Fatalf("state after Commit = %q", got)
	}
	if selects != 1 {
		t.Fatalf("server saw %d SelectCar calls, want 1", selects)
	}

	// Reset rewinds the local mirror.
	if _, err := b.Invoke(ctx, "SelectCar", xcode.Zero(b.SID().Type("SelectCar_t"))); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if got := b.State(); got != "INIT" {
		t.Fatalf("state after Reset = %q", got)
	}
}

func TestInvokeFormBadInput(t *testing.T) {
	node, carRef := startCarRental(t, "gc-badform", nil)
	gc := New(node.Pool())
	ctx := context.Background()
	b, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.InvokeForm(ctx, "SelectCar", map[string]string{"SelectCar.selection.days": "lots"}); err == nil {
		t.Fatal("bad input must fail before invocation")
	}
	if _, err := b.InvokeForm(ctx, "Ghost", nil); err == nil {
		t.Fatal("unknown op must fail")
	}
	// The failed form build must not have stepped the FSM.
	if b.State() != "INIT" {
		t.Fatalf("state = %q", b.State())
	}
}

func TestBrowseAndBind(t *testing.T) {
	node, carRef := startCarRental(t, "gc-browse", nil)
	// Host a browser on the same node and register the car service.
	dir := browser.NewDirectory()
	if err := dir.Register(sidl.CarRentalSID(), carRef); err != nil {
		t.Fatal(err)
	}
	bsvc, err := browser.NewService(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(browser.ServiceName, bsvc); err != nil {
		t.Fatal(err)
	}
	browserRef := node.MustRefFor(browser.ServiceName)

	gc := New(node.Pool())
	ctx := context.Background()

	entries, err := gc.Browse(ctx, browserRef, "rental")
	if err != nil || len(entries) != 1 {
		t.Fatalf("Browse = %v, %v", entries, err)
	}

	b, err := gc.BrowseAndBind(ctx, browserRef, "rental")
	if err != nil {
		t.Fatal(err)
	}
	if b.Ref() != carRef {
		t.Fatalf("bound to %v", b.Ref())
	}
	// Binding from a browser entry carries the full SID, including the
	// FSM — interception still works without a describe round trip.
	if _, err := b.Invoke(ctx, "Commit"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}

	if _, err := gc.BrowseAndBind(ctx, browserRef, "zeppelin"); err == nil {
		t.Fatal("BrowseAndBind with no hits must fail")
	}
}

// directoryIDL describes a tiny referral service whose result carries a
// service reference — the cascade seed.
const directoryIDL = `
module PartnerDirectory {
    interface COSM_Operations {
        // Refer the caller to our partner's service.
        Object GetPartner();
    };
};
`

func TestBindingCascade(t *testing.T) {
	node, carRef := startCarRental(t, "gc-cascade", nil)

	dirSID, err := sidl.Parse(directoryIDL)
	if err != nil {
		t.Fatal(err)
	}
	dirSvc, err := cosm.NewService(dirSID)
	if err != nil {
		t.Fatal(err)
	}
	refT := sidl.Basic(sidl.SvcRef)
	dirSvc.MustHandle("GetPartner", func(call *cosm.Call) error {
		call.Result = xcode.NewRef(refT, carRef)
		return nil
	})
	if err := node.Host("PartnerDirectory", dirSvc); err != nil {
		t.Fatal(err)
	}

	gc := New(node.Pool())
	ctx := context.Background()
	root, err := gc.Bind(ctx, node.MustRefFor("PartnerDirectory"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := root.Invoke(ctx, "GetPartner")
	if err != nil {
		t.Fatal(err)
	}

	// The result is a first-class service reference: bind to it out of
	// the "user interface" (Fig. 4).
	child, err := root.BindValue(ctx, res.Value)
	if err != nil {
		t.Fatal(err)
	}
	if child.SID().ServiceName != "CarRentalService" {
		t.Fatalf("cascaded SID = %q", child.SID().ServiceName)
	}
	if child.Depth() != 1 || child.Parent() != root {
		t.Fatalf("cascade depth = %d", child.Depth())
	}
	// The cascaded binding has its own generated UI and FSM session.
	if _, err := child.Invoke(ctx, "Commit"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
	if got := len(gc.Bindings()); got != 2 {
		t.Fatalf("Bindings = %d", got)
	}

	// Cascade errors.
	if _, err := root.BindValue(ctx, xcode.NewString(sidl.Basic(sidl.String), "x")); !errors.Is(err, ErrNotARef) {
		t.Fatalf("err = %v", err)
	}
	if _, err := root.BindValue(ctx, xcode.Zero(refT)); !errors.Is(err, ErrNotARef) {
		t.Fatalf("nil ref err = %v", err)
	}
	if _, err := root.BindValue(ctx, nil); !errors.Is(err, ErrNotARef) {
		t.Fatalf("nil value err = %v", err)
	}
}

func TestUnrestrictedServiceAllowsEverything(t *testing.T) {
	// A SID without an FSM module imposes no protocol: AllowedOps is nil
	// and every op passes the local check.
	node, _ := startCarRental(t, "gc-unrestricted", nil)
	dirSID, err := sidl.Parse(directoryIDL)
	if err != nil {
		t.Fatal(err)
	}
	dirSvc, err := cosm.NewService(dirSID)
	if err != nil {
		t.Fatal(err)
	}
	dirSvc.MustHandle("GetPartner", func(call *cosm.Call) error {
		call.Result = xcode.Zero(sidl.Basic(sidl.SvcRef))
		return nil
	})
	if err := node.Host("PartnerDirectory", dirSvc); err != nil {
		t.Fatal(err)
	}
	gc := New(node.Pool())
	b, err := gc.Bind(context.Background(), node.MustRefFor("PartnerDirectory"))
	if err != nil {
		t.Fatal(err)
	}
	if b.State() != "" || b.AllowedOps() != nil {
		t.Fatalf("unrestricted binding: state %q ops %v", b.State(), b.AllowedOps())
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Invoke(context.Background(), "GetPartner"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMirrorRestoredOnNonHandlerFailure(t *testing.T) {
	// A call that fails before reaching the handler (bad arity) must
	// leave the local FSM mirror where it was.
	node, carRef := startCarRental(t, "gc-mirror", nil)
	gc := New(node.Pool())
	ctx := context.Background()
	b, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(ctx, "SelectCar"); err == nil { // missing argument
		t.Fatal("arity error expected")
	}
	if got := b.State(); got != "INIT" {
		t.Fatalf("mirror stepped despite failed call: %q", got)
	}
	// A legal call still works and steps.
	if _, err := b.Invoke(ctx, "SelectCar", xcode.Zero(b.SID().Type("SelectCar_t"))); err != nil {
		t.Fatal(err)
	}
	if got := b.State(); got != "SELECTED" {
		t.Fatalf("state = %q", got)
	}
}

func TestMirrorKeptOnApplicationError(t *testing.T) {
	// An application error means the server's machine transitioned
	// before the handler failed; the mirror must track it.
	sid := sidl.CarRentalSID()
	svc, err := cosm.NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	svc.MustHandle("SelectCar", func(call *cosm.Call) error {
		return errors.New("fleet is in the harbour")
	})
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:gc-mirror-apperr"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	gc := New(node.Pool())
	ctx := context.Background()
	b, err := gc.Bind(ctx, node.MustRefFor("CarRentalService"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Invoke(ctx, "SelectCar", xcode.Zero(sid.Type("SelectCar_t")))
	if err == nil {
		t.Fatal("application error expected")
	}
	if got := b.State(); got != "SELECTED" {
		t.Fatalf("mirror must track the server's transition: %q", got)
	}
}
