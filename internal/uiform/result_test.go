package uiform

import (
	"strings"
	"testing"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

func TestRenderResultStruct(t *testing.T) {
	sid := sidl.CarRentalSID()
	op, _ := sid.Op("SelectCar")
	result := xcode.Zero(sid.Type("SelectCarReturn_t"))
	if err := result.SetField("available", xcode.NewBool(sidl.Basic(sidl.Bool), true)); err != nil {
		t.Fatal(err)
	}
	if err := result.SetField("charge", xcode.NewFloat(sidl.Basic(sidl.Float64), 240)); err != nil {
		t.Fatal(err)
	}
	out := RenderResult("CarRentalService", op, result, nil)
	for _, want := range []string{
		"CarRentalService :: SelectCar — result",
		"+-- result --",
		"available: true",
		"charge: 240",
		"currency: USD",
		"[ OK ]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("result dialog lacks %q:\n%s", want, out)
		}
	}
}

func TestRenderResultVoidAndOuts(t *testing.T) {
	src := `
module M {
    interface COSM_Operations {
        void Split(in long v, out long half, inout long acc);
        void Nothing();
    };
};
`
	sid, err := sidl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	split, _ := sid.Op("Split")
	int32T := sidl.Basic(sidl.Int32)
	out := RenderResult("M", split, nil, []*xcode.Value{
		xcode.NewInt(int32T, 5), xcode.NewInt(int32T, 15),
	})
	if !strings.Contains(out, "half: 5") || !strings.Contains(out, "acc: 15") {
		t.Fatalf("out params missing:\n%s", out)
	}
	if strings.Contains(out, "result:") {
		t.Fatalf("void op must not show a result line:\n%s", out)
	}

	nothing, _ := sid.Op("Nothing")
	out = RenderResult("M", nothing, nil, nil)
	if !strings.Contains(out, "(no result values)") {
		t.Fatalf("empty dialog missing placeholder:\n%s", out)
	}
}

func TestRenderResultSequenceAndRef(t *testing.T) {
	seqT := sidl.SequenceOf(sidl.Basic(sidl.String))
	op := sidl.Op{Name: "List", Result: seqT}
	seq, err := xcode.NewSequence(seqT,
		xcode.NewString(sidl.Basic(sidl.String), "a"),
		xcode.NewString(sidl.Basic(sidl.String), "b"))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderResult("M", op, seq, nil)
	if !strings.Contains(out, "result (2 items):") || !strings.Contains(out, `[0]: "a"`) {
		t.Fatalf("sequence rendering broken:\n%s", out)
	}

	refT := sidl.Basic(sidl.SvcRef)
	refOp := sidl.Op{Name: "GetPartner", Result: refT}
	r := xcode.NewRef(refT, ref.New("tcp:h:1", "Partner"))
	out = RenderResult("M", refOp, r, nil)
	if !strings.Contains(out, "[ Bind -> cosm://tcp:h:1/Partner ]") {
		t.Fatalf("reference result must render as a bind control:\n%s", out)
	}
	out = RenderResult("M", refOp, xcode.Zero(refT), nil)
	if !strings.Contains(out, "<nil reference>") {
		t.Fatalf("nil reference rendering broken:\n%s", out)
	}
}
