package uiform

import (
	"errors"
	"strings"
	"testing"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

func TestGenerateCarRentalForms(t *testing.T) {
	sid := sidl.CarRentalSID()
	forms := Generate(sid)
	if len(forms) != 2 {
		t.Fatalf("forms = %d, want 2 (one per operation)", len(forms))
	}

	sel := forms[0]
	if sel.Op.Name != "SelectCar" || sel.Service != "CarRentalService" {
		t.Fatalf("form 0 = %+v", sel)
	}
	// The COSM_UI doc overrides the op doc comment.
	if sel.Doc != "Choose a car model and booking date" {
		t.Fatalf("doc = %q", sel.Doc)
	}
	if len(sel.Params) != 1 {
		t.Fatalf("params = %d", len(sel.Params))
	}

	// The selection parameter is a group box with three members.
	group := sel.Params[0]
	if group.Kind != GroupBox || len(group.Children) != 3 {
		t.Fatalf("group = %+v", group)
	}
	model := group.Children[0]
	if model.Kind != Choice {
		t.Fatalf("model widget = %s", model.Kind)
	}
	if len(model.Options) != 3 || model.Options[1] != "FIAT_Uno" {
		t.Fatalf("model options = %v", model.Options)
	}
	if model.Doc != "The car model to rent" {
		t.Fatalf("model doc = %q", model.Doc)
	}
	if model.Hint != "choice" {
		t.Fatalf("model hint = %q", model.Hint)
	}
	if date := group.Children[1]; date.Kind != TextField {
		t.Fatalf("bookingDate widget = %s", date.Kind)
	}
	if days := group.Children[2]; days.Kind != IntField {
		t.Fatalf("days widget = %s", days.Kind)
	}

	// Commit has no parameters and a struct result.
	commit := forms[1]
	if len(commit.Params) != 0 || commit.ResultType.Name != "BookCarReturn_t" {
		t.Fatalf("commit form = %+v", commit)
	}
}

func TestWidgetKindsForAllTypes(t *testing.T) {
	src := `
module Zoo {
    enum E_t { A, B };
    struct Inner_t { boolean flag; };
    struct All_t {
        boolean b;
        octet o;
        short s;
        long l;
        long long ll;
        unsigned long ul;
        unsigned long long ull;
        float f;
        double d;
        string str;
        E_t e;
        Object peer;
        Inner_t inner;
        sequence<long> nums;
    };
    interface COSM_Operations {
        void Touch(in All_t v);
    };
};
`
	sid, err := sidl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	form, err := GenerateForm(sid, "Touch")
	if err != nil {
		t.Fatal(err)
	}
	group := form.Params[0]
	want := map[string]WidgetKind{
		"b": Checkbox, "o": IntField, "s": IntField, "l": IntField,
		"ll": IntField, "ul": UIntField, "ull": UIntField,
		"f": FloatField, "d": FloatField, "str": TextField,
		"e": Choice, "peer": BindButton, "inner": GroupBox, "nums": ListEditor,
	}
	for _, c := range group.Children {
		if want[c.Label] != c.Kind {
			t.Fatalf("widget %q = %s, want %s", c.Label, c.Kind, want[c.Label])
		}
	}
	// The list editor exposes an element prototype.
	nums, err := form.WidgetAt("Touch.v.nums")
	if err != nil || len(nums.Children) != 1 || nums.Children[0].Kind != IntField {
		t.Fatalf("nums = %+v, %v", nums, err)
	}
	// Widget count: All_t group + 14 members + inner.flag + nums element
	// = 17 widgets.
	if n := form.CountWidgets(); n != 17 {
		t.Fatalf("CountWidgets = %d", n)
	}
}

func TestGenerateFormErrors(t *testing.T) {
	sid := sidl.CarRentalSID()
	if _, err := GenerateForm(sid, "Ghost"); !errors.Is(err, ErrNoOp) {
		t.Fatalf("err = %v", err)
	}
}

func TestWidgetAt(t *testing.T) {
	sid := sidl.CarRentalSID()
	form, err := GenerateForm(sid, "SelectCar")
	if err != nil {
		t.Fatal(err)
	}
	w, err := form.WidgetAt("SelectCar.selection.model")
	if err != nil || w.Kind != Choice {
		t.Fatalf("WidgetAt = %+v, %v", w, err)
	}
	if w, err := form.WidgetAt("SelectCar.selection"); err != nil || w.Kind != GroupBox {
		t.Fatalf("WidgetAt(param) = %+v, %v", w, err)
	}
	if _, err := form.WidgetAt("SelectCar.bogus.path"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderContainsFig7Elements(t *testing.T) {
	// The rendered dialog must exhibit the Fig. 7 structure: a titled
	// form with a value editor per SID element and an invoke button.
	sid := sidl.CarRentalSID()
	out := RenderAll(sid)
	for _, want := range []string{
		"CarRentalService :: SelectCar",
		"model: (AUDI | FIAT_Uno | VW_Golf)",
		"(The car model to rent)",
		"bookingDate:",
		"days:",
		"[ Invoke SelectCar ]",
		"CarRentalService :: Commit",
		"=> returns BookCarReturn_t",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered form lacks %q:\n%s", want, out)
		}
	}
}

func TestBuildArgsCarRental(t *testing.T) {
	sid := sidl.CarRentalSID()
	form, err := GenerateForm(sid, "SelectCar")
	if err != nil {
		t.Fatal(err)
	}
	args, err := form.BuildArgs(map[string]string{
		"SelectCar.selection.model":       "VW_Golf",
		"SelectCar.selection.bookingDate": "1994-06-21",
		"SelectCar.selection.days":        "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 1 {
		t.Fatalf("args = %d", len(args))
	}
	sel := args[0]
	if f, _ := sel.Field("model"); f.EnumLiteral() != "VW_Golf" {
		t.Fatalf("model = %s", f)
	}
	if f, _ := sel.Field("bookingDate"); f.Str != "1994-06-21" {
		t.Fatalf("bookingDate = %s", f)
	}
	if f, _ := sel.Field("days"); f.Int != 3 {
		t.Fatalf("days = %s", f)
	}
}

func TestBuildArgsDefaultsAndErrors(t *testing.T) {
	sid := sidl.CarRentalSID()
	form, err := GenerateForm(sid, "SelectCar")
	if err != nil {
		t.Fatal(err)
	}
	// No inputs: all zero values.
	args, err := form.BuildArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := args[0].Field("model"); f.EnumLiteral() != "AUDI" {
		t.Fatalf("zero model = %s", f)
	}

	tests := []struct {
		name   string
		inputs map[string]string
		want   error
	}{
		{"unknown path", map[string]string{"SelectCar.nope": "x"}, ErrBadPath},
		{"unknown param", map[string]string{"Other.p": "x"}, ErrBadPath},
		{"bad int", map[string]string{"SelectCar.selection.days": "three"}, ErrBadInput},
		{"bad enum", map[string]string{"SelectCar.selection.model": "TRABANT"}, ErrBadInput},
		{"path into scalar", map[string]string{"SelectCar.selection.days.deeper": "1"}, ErrBadPath},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := form.BuildArgs(tt.inputs); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestParseScalarKinds(t *testing.T) {
	seqT := sidl.SequenceOf(sidl.Basic(sidl.Int32))
	refT := sidl.Basic(sidl.SvcRef)
	tests := []struct {
		name  string
		typ   *sidl.Type
		text  string
		check func(*xcode.Value) bool
		bad   bool
	}{
		{"bool", sidl.Basic(sidl.Bool), "true", func(v *xcode.Value) bool { return v.Bool }, false},
		{"bad bool", sidl.Basic(sidl.Bool), "yep", nil, true},
		{"uint", sidl.Basic(sidl.UInt64), "18446744073709551615", func(v *xcode.Value) bool { return v.Uint == ^uint64(0) }, false},
		{"bad uint", sidl.Basic(sidl.UInt32), "-1", nil, true},
		{"float", sidl.Basic(sidl.Float64), " 2.5 ", func(v *xcode.Value) bool { return v.Float == 2.5 }, false},
		{"bad float", sidl.Basic(sidl.Float32), "pi", nil, true},
		{"seq", seqT, "1, 2,3", func(v *xcode.Value) bool { return len(v.Elems) == 3 && v.Elems[2].Int == 3 }, false},
		{"empty seq", seqT, "", func(v *xcode.Value) bool { return len(v.Elems) == 0 }, false},
		{"bad seq elem", seqT, "1,x", nil, true},
		{"ref", refT, "cosm://tcp:h:1/svc", func(v *xcode.Value) bool { return v.Ref == ref.New("tcp:h:1", "svc") }, false},
		{"empty ref", refT, "", func(v *xcode.Value) bool { return v.Ref.IsZero() }, false},
		{"bad ref", refT, "http://x", nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, err := parseScalar(tt.typ, tt.text)
			if tt.bad {
				if !errors.Is(err, ErrBadInput) {
					t.Fatalf("err = %v, want ErrBadInput", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !tt.check(v) {
				t.Fatalf("parsed value = %s", v)
			}
		})
	}
}

func TestBuildArgsDoesNotAliasZeroTemplate(t *testing.T) {
	// Two BuildArgs calls must produce independent values.
	sid := sidl.CarRentalSID()
	form, err := GenerateForm(sid, "SelectCar")
	if err != nil {
		t.Fatal(err)
	}
	a, err := form.BuildArgs(map[string]string{"SelectCar.selection.days": "1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := form.BuildArgs(map[string]string{"SelectCar.selection.days": "2"})
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := a[0].Field("days")
	fb, _ := b[0].Field("days")
	if fa.Int != 1 || fb.Int != 2 {
		t.Fatalf("aliasing: %d %d", fa.Int, fb.Int)
	}
}
