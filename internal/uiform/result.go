package uiform

import (
	"fmt"
	"strings"

	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

// RenderResult presents an operation's return values the same way the
// entry form presents its parameters (section 4.2: "return values can be
// presented in the same way by the user interface"): a read-only display
// dialog with one labelled field per result element, recursing into
// records and sequences.
func RenderResult(serviceName string, op sidl.Op, result *xcode.Value, outs []*xcode.Value) string {
	var b strings.Builder
	title := serviceName + " :: " + op.Name + " — result"
	line := strings.Repeat("-", len(title)+4)
	fmt.Fprintf(&b, "%s\n| %s |\n%s\n", line, title, line)
	shown := false
	if result != nil && result.Type.Kind != sidl.Void {
		renderValue(&b, "result", result, 1)
		shown = true
	}
	i := 0
	for _, p := range op.Params {
		if p.Dir == sidl.In {
			continue
		}
		if i < len(outs) {
			renderValue(&b, p.Name, outs[i], 1)
			shown = true
		}
		i++
	}
	if !shown {
		b.WriteString("  (no result values)\n")
	}
	b.WriteString("  [ OK ]\n")
	return b.String()
}

// renderValue writes one labelled display line (or a nested block for
// records and sequences).
func renderValue(b *strings.Builder, label string, v *xcode.Value, depth int) {
	indent := strings.Repeat("  ", depth)
	if v == nil {
		fmt.Fprintf(b, "%s%s: <none>\n", indent, label)
		return
	}
	switch v.Type.Kind {
	case sidl.Struct:
		fmt.Fprintf(b, "%s+-- %s --\n", indent, label)
		for i, f := range v.Type.Fields {
			renderValue(b, f.Name, v.Fields[i], depth+1)
		}
	case sidl.Sequence:
		fmt.Fprintf(b, "%s%s (%d items):\n", indent, label, len(v.Elems))
		for i, e := range v.Elems {
			renderValue(b, fmt.Sprintf("[%d]", i), e, depth+1)
		}
	case sidl.SvcRef:
		if v.Ref.IsZero() {
			fmt.Fprintf(b, "%s%s: <nil reference>\n", indent, label)
		} else {
			// A reference result is itself a binding opportunity — the
			// cascade seed of Fig. 4 rendered as an actionable control.
			fmt.Fprintf(b, "%s%s: [ Bind -> %s ]\n", indent, label, v.Ref)
		}
	default:
		fmt.Fprintf(b, "%s%s: %s\n", indent, label, v)
	}
}
