// Package uiform implements the UIMS (user interface management system)
// side of the COSM generic client: automatic generation of typed entry
// forms from Service Interface Descriptions.
//
// The paper (sections 3.2 and 4.2, Figs. 3 and 7) requires "a
// well-defined relationship of linguistic service description elements
// to corresponding (graphical) user interface management system
// components": type definitions, operation signatures and textual
// annotations become value editors, buttons and labels, generated with
// no service-specific code. The 1994 prototype rendered Motif-style
// forms; this implementation generates the same artefact — a widget tree
// — and renders it as text, which preserves exactly the property the
// paper demonstrates (automatic generation from the SID) without a
// display substrate.
//
// The inverse direction is implemented too: BuildArgs converts textual
// user input, addressed by widget path, into typed xcode values, so a
// command-line UI can drive any remote service from its SID alone.
package uiform

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

// Errors reported by form generation and input binding.
var (
	ErrNoOp     = errors.New("uiform: no such operation")
	ErrBadPath  = errors.New("uiform: no widget at path")
	ErrBadInput = errors.New("uiform: cannot parse input")
)

// WidgetKind classifies the generated value editors.
type WidgetKind uint8

// Widget kinds. The mapping from SIDL types is fixed (Fig. 7): scalars
// become entry fields, enums become choice widgets, booleans become
// checkboxes, structs become group boxes, sequences become list editors,
// and service references become bind buttons — the controller element
// that effects a further binding out of the user interface (section
// 3.2).
const (
	TextField WidgetKind = iota + 1
	IntField
	UIntField
	FloatField
	Checkbox
	Choice
	GroupBox
	ListEditor
	BindButton
)

// String returns the widget kind name.
func (k WidgetKind) String() string {
	switch k {
	case TextField:
		return "text"
	case IntField:
		return "int"
	case UIntField:
		return "uint"
	case FloatField:
		return "float"
	case Checkbox:
		return "check"
	case Choice:
		return "choice"
	case GroupBox:
		return "group"
	case ListEditor:
		return "list"
	case BindButton:
		return "bind"
	}
	return fmt.Sprintf("WidgetKind(%d)", uint8(k))
}

// Widget is one generated user-interface element.
type Widget struct {
	// Path addresses the widget: "op.param" or "op.param.field...".
	Path string
	// Label is the display label (the last path segment).
	Label string
	// Kind is the editor class.
	Kind WidgetKind
	// Doc is the natural-language annotation from the SID's COSM_UI
	// module (or the operation doc comment), if any.
	Doc string
	// Hint is the raw widget hint from the SID, if any.
	Hint string
	// Options lists the choices for Choice widgets (enum literals).
	Options []string
	// Children are the member widgets of a GroupBox, or the single
	// element prototype of a ListEditor.
	Children []*Widget
	// Type is the SIDL type the widget edits.
	Type *sidl.Type
}

// Form is the generated dialog for one operation: entry widgets for the
// in/inout parameters and an invoke button semantic for the operation
// itself.
type Form struct {
	// Service is the SID's service name.
	Service string
	// Op is the operation the form invokes.
	Op sidl.Op
	// Doc is the operation annotation.
	Doc string
	// Params holds one widget per in/inout parameter.
	Params []*Widget
	// ResultType is the operation result type (Void for none).
	ResultType *sidl.Type
}

// Generate builds one form per operation of the SID, in declaration
// order — the "GUI generation" arrow of Fig. 3.
func Generate(sid *sidl.SID) []*Form {
	forms := make([]*Form, 0, len(sid.Ops))
	for _, op := range sid.Ops {
		forms = append(forms, generateForm(sid, op))
	}
	return forms
}

// GenerateForm builds the form for one operation.
func GenerateForm(sid *sidl.SID, opName string) (*Form, error) {
	op, ok := sid.Op(opName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoOp, opName)
	}
	return generateForm(sid, op), nil
}

func generateForm(sid *sidl.SID, op sidl.Op) *Form {
	doc := op.Doc
	if uiDoc := sid.UI.Doc(op.Name); uiDoc != "" {
		doc = uiDoc
	}
	f := &Form{Service: sid.ServiceName, Op: op, Doc: doc, ResultType: op.Result}
	for _, p := range op.Params {
		if p.Dir == sidl.Out {
			continue
		}
		path := op.Name + "." + p.Name
		f.Params = append(f.Params, generateWidget(sid, path, p.Name, p.Type))
	}
	return f
}

func generateWidget(sid *sidl.SID, path, label string, t *sidl.Type) *Widget {
	w := &Widget{
		Path:  path,
		Label: label,
		Doc:   sid.UI.Doc(path),
		Hint:  sid.UI.Widget(path),
		Type:  t,
	}
	switch t.Kind {
	case sidl.Bool:
		w.Kind = Checkbox
	case sidl.Octet, sidl.Int16, sidl.Int32, sidl.Int64:
		w.Kind = IntField
	case sidl.UInt32, sidl.UInt64:
		w.Kind = UIntField
	case sidl.Float32, sidl.Float64:
		w.Kind = FloatField
	case sidl.String:
		w.Kind = TextField
	case sidl.Enum:
		w.Kind = Choice
		w.Options = append([]string(nil), t.Literals...)
	case sidl.SvcRef:
		w.Kind = BindButton
	case sidl.Struct:
		w.Kind = GroupBox
		for _, field := range t.Fields {
			w.Children = append(w.Children,
				generateWidget(sid, path+"."+field.Name, field.Name, field.Type))
		}
	case sidl.Sequence:
		w.Kind = ListEditor
		w.Children = []*Widget{generateWidget(sid, path+"[]", "element", t.Elem)}
	default:
		w.Kind = TextField
	}
	return w
}

// WidgetAt returns the widget addressed by a dotted path relative to the
// form's operation (e.g. "SelectCar.selection.model").
func (f *Form) WidgetAt(path string) (*Widget, error) {
	for _, p := range f.Params {
		if p.Path == path {
			return p, nil
		}
		if strings.HasPrefix(path, p.Path+".") || strings.HasPrefix(path, p.Path+"[]") {
			if w := findWidget(p, path); w != nil {
				return w, nil
			}
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
}

func findWidget(w *Widget, path string) *Widget {
	if w.Path == path {
		return w
	}
	for _, c := range w.Children {
		if found := findWidget(c, path); found != nil {
			return found
		}
	}
	return nil
}

// CountWidgets returns the total number of widgets in the form
// (benchmarked in the Fig. 7 experiment).
func (f *Form) CountWidgets() int {
	n := 0
	var walk func(*Widget)
	walk = func(w *Widget) {
		n++
		for _, c := range w.Children {
			walk(c)
		}
	}
	for _, p := range f.Params {
		walk(p)
	}
	return n
}

// Render draws the form as text: the 1994 prototype's Motif dialog,
// reproduced as a fixed-width layout (Fig. 7).
func (f *Form) Render() string {
	var b strings.Builder
	title := f.Service + " :: " + f.Op.Name
	line := strings.Repeat("=", len(title)+4)
	fmt.Fprintf(&b, "%s\n| %s |\n%s\n", line, title, line)
	if f.Doc != "" {
		fmt.Fprintf(&b, "  %s\n", f.Doc)
	}
	for _, p := range f.Params {
		renderWidget(&b, p, 1)
	}
	if f.ResultType.Kind != sidl.Void {
		fmt.Fprintf(&b, "  => returns %s\n", f.ResultType)
	}
	fmt.Fprintf(&b, "  [ Invoke %s ]   [ Cancel ]\n", f.Op.Name)
	return b.String()
}

func renderWidget(b *strings.Builder, w *Widget, depth int) {
	indent := strings.Repeat("  ", depth)
	switch w.Kind {
	case Checkbox:
		fmt.Fprintf(b, "%s[ ] %s", indent, w.Label)
	case Choice:
		fmt.Fprintf(b, "%s%s: (%s)", indent, w.Label, strings.Join(w.Options, " | "))
	case GroupBox:
		fmt.Fprintf(b, "%s+-- %s --", indent, w.Label)
	case ListEditor:
		fmt.Fprintf(b, "%s%s: [ + add / - remove ]", indent, w.Label)
	case BindButton:
		fmt.Fprintf(b, "%s[ Bind -> %s ]", indent, w.Label)
	default:
		fmt.Fprintf(b, "%s%s: [%s_________]", indent, w.Label, w.Kind)
	}
	if w.Doc != "" {
		fmt.Fprintf(b, "   (%s)", w.Doc)
	}
	b.WriteByte('\n')
	for _, c := range w.Children {
		renderWidget(b, c, depth+1)
	}
}

// RenderAll renders every form of a SID, separated by blank lines — the
// full generated user interface for a service.
func RenderAll(sid *sidl.SID) string {
	forms := Generate(sid)
	parts := make([]string, len(forms))
	for i, f := range forms {
		parts[i] = f.Render()
	}
	return strings.Join(parts, "\n")
}

// BuildArgs converts textual inputs, keyed by widget path, into the
// typed argument values for the form's operation. Unaddressed fields
// keep their zero values. Sequence inputs address the whole sequence
// path with comma-separated element texts (scalar elements only).
func (f *Form) BuildArgs(inputs map[string]string) ([]*xcode.Value, error) {
	args := make([]*xcode.Value, len(f.Params))
	for i, p := range f.Params {
		args[i] = xcode.Zero(p.Type)
	}
	for path, text := range inputs {
		idx := -1
		for i, p := range f.Params {
			if path == p.Path || strings.HasPrefix(path, p.Path+".") {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
		rest := strings.TrimPrefix(path, f.Params[idx].Path)
		rest = strings.TrimPrefix(rest, ".")
		newV, err := setPath(args[idx], rest, text)
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", path, err)
		}
		args[idx] = newV
	}
	return args, nil
}

// setPath returns v with the element at the dotted path replaced by the
// parsed text.
func setPath(v *xcode.Value, path, text string) (*xcode.Value, error) {
	if path == "" {
		return parseScalar(v.Type, text)
	}
	if v.Type.Kind != sidl.Struct {
		return nil, fmt.Errorf("%w: path %q into non-record type %s", ErrBadPath, path, v.Type)
	}
	head, rest := path, ""
	if i := strings.IndexByte(path, '.'); i >= 0 {
		head, rest = path[:i], path[i+1:]
	}
	field, err := v.Field(head)
	if err != nil {
		return nil, err
	}
	newField, err := setPath(field, rest, text)
	if err != nil {
		return nil, err
	}
	out := v.Clone()
	if err := out.SetField(head, newField); err != nil {
		return nil, err
	}
	return out, nil
}

// parseScalar parses user text into a value of a leaf (or sequence)
// type.
func parseScalar(t *sidl.Type, text string) (*xcode.Value, error) {
	text = strings.TrimSpace(text)
	switch t.Kind {
	case sidl.Bool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as boolean", ErrBadInput, text)
		}
		return xcode.NewBool(t, b), nil
	case sidl.Octet, sidl.Int16, sidl.Int32, sidl.Int64:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as integer", ErrBadInput, text)
		}
		return xcode.NewInt(t, i), nil
	case sidl.UInt32, sidl.UInt64:
		u, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as unsigned integer", ErrBadInput, text)
		}
		return xcode.NewUint(t, u), nil
	case sidl.Float32, sidl.Float64:
		fl, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as float", ErrBadInput, text)
		}
		return xcode.NewFloat(t, fl), nil
	case sidl.String:
		return xcode.NewString(t, text), nil
	case sidl.Enum:
		v, err := xcode.NewEnum(t, text)
		if err != nil {
			return nil, fmt.Errorf("%w: %q is not one of %s", ErrBadInput, text, strings.Join(t.Literals, ", "))
		}
		return v, nil
	case sidl.SvcRef:
		if text == "" {
			return xcode.Zero(t), nil
		}
		r, err := ref.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as service reference", ErrBadInput, text)
		}
		return xcode.NewRef(t, r), nil
	case sidl.Sequence:
		if text == "" {
			return xcode.Zero(t), nil
		}
		parts := strings.Split(text, ",")
		elems := make([]*xcode.Value, len(parts))
		for i, part := range parts {
			ev, err := parseScalar(t.Elem, part)
			if err != nil {
				return nil, fmt.Errorf("element %d: %w", i, err)
			}
			elems[i] = ev
		}
		return xcode.NewSequence(t, elems...)
	}
	return nil, fmt.Errorf("%w: type %s has no textual editor", ErrBadInput, t)
}
