package browser

import (
	"testing"

	"cosm/internal/journal"
	"cosm/internal/ref"
	"cosm/internal/sidl"
)

// newDurableDirectory opens (or re-opens) a journalled directory over
// dir, mirroring the daemon boot order: recover, then start, then
// attach.
func newDurableDirectory(t *testing.T, dir string) (*Directory, *journal.Journal) {
	t.Helper()
	d := NewDirectory()
	j, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if snap, ok := j.Snapshot(); ok {
		if err := d.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Replay(d.ReplayRecord); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(d.JournalSnapshot); err != nil {
		t.Fatal(err)
	}
	d.SetJournal(j)
	return d, j
}

// TestDurableDirectoryCrashRecovery registers and withdraws SIDs,
// abandons the journal without shutdown, and recovers a fresh directory
// with the same registrations.
func TestDurableDirectoryCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d1, _ := newDurableDirectory(t, dir)

	car := sidl.CarRentalSID()
	if err := d1.Register(car, ref.New("tcp:10.0.0.1:7000", "CarRentalService")); err != nil {
		t.Fatal(err)
	}
	other := sidl.CarRentalSID()
	other.ServiceName = "TruckRentalService"
	if err := d1.Register(other, ref.New("tcp:10.0.0.2:7000", "TruckRentalService")); err != nil {
		t.Fatal(err)
	}
	// Re-register (upsert) at a new endpoint, then withdraw the second.
	moved := ref.New("tcp:10.0.0.9:7000", "CarRentalService")
	if err := d1.Register(car, moved); err != nil {
		t.Fatal(err)
	}
	if err := d1.Withdraw("TruckRentalService"); err != nil {
		t.Fatal(err)
	}

	// Crash: no Close, no Sync.
	d2, j2 := newDurableDirectory(t, dir)
	defer j2.Close()

	if got := d2.Names(); len(got) != 1 || got[0] != "CarRentalService" {
		t.Fatalf("recovered names = %v", got)
	}
	e, err := d2.Get("CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	if e.Ref != moved {
		t.Fatalf("recovered ref = %v, want %v", e.Ref, moved)
	}
	// The recovered SID round-trips to the same canonical text.
	want, _ := car.MarshalText()
	got, _ := e.SID.MarshalText()
	if string(got) != string(want) {
		t.Fatalf("recovered SID text differs:\n got %s\nwant %s", got, want)
	}
	// Keyword search works over re-parsed keywords.
	if hits := d2.Search("rental"); len(hits) != 1 {
		t.Fatalf("Search(rental) = %d hits", len(hits))
	}
}

// TestDurableDirectoryCompaction folds registrations into a snapshot
// and recovers from snapshot + tail.
func TestDurableDirectoryCompaction(t *testing.T) {
	dir := t.TempDir()
	d1, j1 := newDurableDirectory(t, dir)
	car := sidl.CarRentalSID()
	if err := d1.Register(car, ref.New("tcp:10.0.0.1:7000", "CarRentalService")); err != nil {
		t.Fatal(err)
	}
	if err := j1.Compact(); err != nil {
		t.Fatal(err)
	}
	other := sidl.CarRentalSID()
	other.ServiceName = "TruckRentalService"
	if err := d1.Register(other, ref.New("tcp:10.0.0.2:7000", "TruckRentalService")); err != nil {
		t.Fatal(err)
	}

	d2, j2 := newDurableDirectory(t, dir)
	defer j2.Close()
	if got := d2.Names(); len(got) != 2 {
		t.Fatalf("recovered names = %v", got)
	}
}
