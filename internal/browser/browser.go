// Package browser implements the browser mediation of the paper
// (section 3.2, Fig. 4): the COSM mechanism that makes *innovative*
// services — services with no standardised service type yet — reachable.
//
// Application services register their full Service Interface Description
// together with their globally identifying service reference at a
// well-known Browser component (step 1). Clients browse the directory,
// inspect descriptions (step 2), and obtain the reference for a direct
// binding (step 3). A browser is itself a COSM service with its own SID,
// so one browser can register at another: browsing cascades, and a
// cascade of bindings with individually generated user interfaces can
// evolve (end of section 3.2).
package browser

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cosm/internal/journal"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
)

// ServiceName is the well-known hosted name of a browser service.
const ServiceName = "cosm.browser"

// Errors reported by the directory.
var (
	ErrNotRegistered = errors.New("browser: service not registered")
	ErrBadSID        = errors.New("browser: invalid SID")
)

// Entry is one registered service: its description and its reference.
type Entry struct {
	// Name is the SID's service name (the registration key).
	Name string
	// SID is the registered description.
	SID *sidl.SID
	// Ref is the service reference for direct binding.
	Ref ref.ServiceRef
}

// Directory is the browser's in-memory store. Registration is an
// upsert: a provider re-registering (e.g. after moving endpoints)
// replaces its entry. Safe for concurrent use.
type Directory struct {
	mu      sync.RWMutex
	entries map[string]*dirEntry

	// journal, when attached via SetJournal, receives a logical record
	// for every registration and withdrawal (see durable.go).
	journal *journal.Journal

	log     *obs.Logger
	metrics dirMetrics
}

type dirEntry struct {
	entry    Entry
	keywords []string
}

// dirMetrics binds the cosm_browser_* metric families; the zero value
// (no registry) records nothing.
type dirMetrics struct {
	registrations *obs.Counter
	withdrawals   *obs.Counter
	fetches       *obs.Counter
	searches      *obs.Counter
}

// DirectoryOption configures a Directory.
type DirectoryOption func(*Directory)

// WithDirectoryLogger routes registration and withdrawal events through
// the structured logger l. A nil l disables logging.
func WithDirectoryLogger(l *obs.Logger) DirectoryOption {
	return func(d *Directory) { d.log = l }
}

// WithDirectoryMetrics records registrations, withdrawals, SID fetches
// and searches — plus the live registration count — into reg's
// cosm_browser_* families. A nil reg disables recording.
func WithDirectoryMetrics(reg *obs.Registry) DirectoryOption {
	return func(d *Directory) {
		if reg == nil {
			return
		}
		d.metrics = dirMetrics{
			registrations: reg.Counter("cosm_browser_registrations_total", "SID registrations (upserts included)."),
			withdrawals:   reg.Counter("cosm_browser_withdrawals_total", "Registrations withdrawn."),
			fetches:       reg.Counter("cosm_browser_fetches_total", "SID/reference fetches by name."),
			searches:      reg.Counter("cosm_browser_searches_total", "Keyword searches."),
		}
		reg.GaugeFunc("cosm_browser_entries", "Registered services.",
			func() float64 { return float64(d.Len()) })
	}
}

// NewDirectory returns an empty directory.
func NewDirectory(opts ...DirectoryOption) *Directory {
	d := &Directory{entries: map[string]*dirEntry{}}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Register records a SID and its reference under the SID's service name
// (step 1 of Fig. 4). The SID must validate; no service type is needed —
// that is the point of mediation.
func (d *Directory) Register(sid *sidl.SID, r ref.ServiceRef) error {
	if sid == nil {
		return fmt.Errorf("%w: nil", ErrBadSID)
	}
	if err := sid.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSID, err)
	}
	if d.journal != nil {
		// WAL-first, after validation: the log carries no rejected
		// registrations, and a crash after the append replays the upsert.
		text, err := sid.MarshalText()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadSID, err)
		}
		if err := d.journalAppend(&dirRecord{Op: opRegister, Name: sid.ServiceName, SIDL: string(text), Ref: r.String()}); err != nil {
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[sid.ServiceName] = &dirEntry{
		entry:    Entry{Name: sid.ServiceName, SID: sid, Ref: r},
		keywords: sid.Keywords(),
	}
	d.metrics.registrations.Inc()
	d.log.Log(nil, "register", "service", sid.ServiceName, "ref", r.String())
	return nil
}

// Withdraw removes a registration.
func (d *Directory) Withdraw(name string) error {
	if d.journal != nil {
		// WAL-first for known names only; a concurrent withdrawal may
		// still win the race below — the duplicate record is idempotent.
		d.mu.RLock()
		_, ok := d.entries[name]
		d.mu.RUnlock()
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotRegistered, name)
		}
		if err := d.journalAppend(&dirRecord{Op: opWithdraw, Name: name}); err != nil {
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	delete(d.entries, name)
	d.metrics.withdrawals.Inc()
	d.log.Log(nil, "withdraw", "service", name)
	return nil
}

// Get returns the entry for a service name.
func (d *Directory) Get(name string) (Entry, error) {
	d.metrics.fetches.Inc()
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	return e.entry, nil
}

// Names returns all registered service names, sorted.
func (d *Directory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.entries))
	for n := range d.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registrations.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Search returns entries whose keyword set (service name, operation
// names, type names, annotation words) contains a word with the given
// substring, case-insensitively, sorted by name. This is the human
// user's entry point into the open service market: no service type, just
// text.
func (d *Directory) Search(keyword string) []Entry {
	d.metrics.searches.Inc()
	needle := strings.ToLower(strings.TrimSpace(keyword))
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Entry
	for _, e := range d.entries {
		if needle == "" || matchKeyword(e.keywords, needle) {
			out = append(out, e.entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func matchKeyword(keywords []string, needle string) bool {
	for _, k := range keywords {
		if strings.Contains(k, needle) {
			return true
		}
	}
	return false
}
