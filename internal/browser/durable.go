package browser

// Durable directory state: like the trader (see trader/durable.go) the
// browser journals every registration and withdrawal as a logical JSON
// record and rebuilds from snapshot + replay on boot. SIDs persist as
// canonical SIDL text — the communicable form of section 4.1 — so a
// recovered entry is the re-parsed canonical description (comments in
// the provider's original source are not retained).

import (
	"encoding/json"
	"fmt"

	"cosm/internal/journal"
	"cosm/internal/ref"
	"cosm/internal/sidl"
)

const (
	opRegister = "register"
	opWithdraw = "withdraw"
)

// dirRecord is one logical journal record of the directory.
type dirRecord struct {
	Op   string `json:"op"`
	Name string `json:"name,omitempty"`
	SIDL string `json:"sidl,omitempty"`
	Ref  string `json:"ref,omitempty"`
}

// dirSnapshot is the compaction snapshot: every registration, sorted by
// name for byte-stable output.
type dirSnapshot struct {
	Entries []dirRecord `json:"entries,omitempty"`
}

// SetJournal attaches a started journal; call after recovery and before
// serving.
func (d *Directory) SetJournal(j *journal.Journal) { d.journal = j }

func (d *Directory) journalAppend(r *dirRecord) error {
	if d.journal == nil {
		return nil
	}
	if _, err := d.journal.AppendJSON(r); err != nil {
		return fmt.Errorf("browser: journal: %w", err)
	}
	return nil
}

// JournalSnapshot serialises the directory for journal compaction.
func (d *Directory) JournalSnapshot() ([]byte, error) {
	var snap dirSnapshot
	for _, name := range d.Names() {
		e, err := d.Get(name)
		if err != nil {
			continue // withdrawn between Names and Get
		}
		text, err := e.SID.MarshalText()
		if err != nil {
			return nil, fmt.Errorf("browser: snapshot %q: %w", name, err)
		}
		snap.Entries = append(snap.Entries, dirRecord{Name: name, SIDL: string(text), Ref: e.Ref.String()})
	}
	return json.Marshal(&snap)
}

// RestoreSnapshot loads a compaction snapshot into an empty directory.
// Call before Replay.
func (d *Directory) RestoreSnapshot(payload []byte) error {
	var snap dirSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("browser: snapshot: %w", err)
	}
	for _, rec := range snap.Entries {
		if err := d.applyRegister(rec.SIDL, rec.Ref); err != nil {
			return err
		}
	}
	return nil
}

// ReplayRecord applies one journal record during recovery; pass it to
// journal.Replay. Records are idempotent (register is an upsert,
// withdrawal of an absent name is a no-op), so replaying over a
// snapshot newer than its watermark is harmless.
func (d *Directory) ReplayRecord(seq uint64, payload []byte) error {
	var rec dirRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("browser: journal record %d: %w", seq, err)
	}
	switch rec.Op {
	case opRegister:
		if err := d.applyRegister(rec.SIDL, rec.Ref); err != nil {
			return fmt.Errorf("browser: journal record %d: %w", seq, err)
		}
	case opWithdraw:
		d.mu.Lock()
		delete(d.entries, rec.Name)
		d.mu.Unlock()
	default:
		return fmt.Errorf("browser: journal record %d: unknown op %q", seq, rec.Op)
	}
	return nil
}

// applyRegister parses a persisted registration and upserts it without
// journalling (the recovery path).
func (d *Directory) applyRegister(sidlText, refText string) error {
	sid, err := sidl.Parse(sidlText)
	if err != nil {
		return err
	}
	r, err := ref.Parse(refText)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.entries[sid.ServiceName] = &dirEntry{
		entry:    Entry{Name: sid.ServiceName, SID: sid, Ref: r},
		keywords: sid.Keywords(),
	}
	d.mu.Unlock()
	return nil
}
