package browser

import (
	"context"
	"fmt"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// IDL is the browser's own service description — the browser is a COSM
// service too, which is what enables browser cascades (Fig. 4).
const IDL = `
// Directory of innovative services: communicable SIDs plus references.
module CosmBrowser {
    struct Entry_t {
        string name;
        Object target;
        string sidlText;
    };
    typedef sequence<Entry_t> Entries_t;
    typedef sequence<string> Names_t;
    interface COSM_Operations {
        // Register a SID together with its service reference.
        void RegisterSID(in string sidlText, in Object target);
        // Remove a registration by service name.
        void Withdraw(in string name);
        // List registered service names.
        Names_t List();
        // Fetch one entry (SID text and reference) by service name.
        Entry_t Get(in string name);
        // Keyword search over names, operations and annotations.
        Entries_t Search(in string keyword);
    };
};
`

// NewService wraps a Directory as a hosted COSM service.
func NewService(d *Directory) (*cosm.Service, error) {
	sid, err := sidl.Parse(IDL)
	if err != nil {
		return nil, fmt.Errorf("browser: internal IDL: %w", err)
	}
	svc, err := cosm.NewService(sid)
	if err != nil {
		return nil, err
	}
	strT := sidl.Basic(sidl.String)
	refT := sidl.Basic(sidl.SvcRef)
	entryT := sid.Type("Entry_t")
	entriesT := sid.Type("Entries_t")
	namesT := sid.Type("Names_t")

	entryValue := func(e Entry) (*xcode.Value, error) {
		text, err := e.SID.MarshalText()
		if err != nil {
			return nil, err
		}
		return xcode.NewStruct(entryT, map[string]*xcode.Value{
			"name":     xcode.NewString(strT, e.Name),
			"target":   xcode.NewRef(refT, e.Ref),
			"sidlText": xcode.NewString(strT, string(text)),
		})
	}

	svc.MustHandle("RegisterSID", func(call *cosm.Call) error {
		text, err := call.Arg("sidlText")
		if err != nil {
			return err
		}
		target, err := call.Arg("target")
		if err != nil {
			return err
		}
		parsed, err := sidl.Parse(text.Str)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrBadSID, err)
		}
		return d.Register(parsed, target.Ref)
	})
	svc.MustHandle("Withdraw", func(call *cosm.Call) error {
		name, err := call.Arg("name")
		if err != nil {
			return err
		}
		return d.Withdraw(name.Str)
	})
	svc.MustHandle("List", func(call *cosm.Call) error {
		names := d.Names()
		elems := make([]*xcode.Value, len(names))
		for i, n := range names {
			elems[i] = xcode.NewString(strT, n)
		}
		seq, err := xcode.NewSequence(namesT, elems...)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	svc.MustHandle("Get", func(call *cosm.Call) error {
		name, err := call.Arg("name")
		if err != nil {
			return err
		}
		e, err := d.Get(name.Str)
		if err != nil {
			return err
		}
		ev, err := entryValue(e)
		if err != nil {
			return err
		}
		call.Result = ev
		return nil
	})
	svc.MustHandle("Search", func(call *cosm.Call) error {
		keyword, err := call.Arg("keyword")
		if err != nil {
			return err
		}
		entries := d.Search(keyword.Str)
		elems := make([]*xcode.Value, len(entries))
		for i, e := range entries {
			ev, err := entryValue(e)
			if err != nil {
				return err
			}
			elems[i] = ev
		}
		seq, err := xcode.NewSequence(entriesT, elems...)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	return svc, nil
}

// Client is a typed wrapper over a dynamic binding to a remote browser.
type Client struct {
	conn *cosm.Conn
	strT *sidl.Type
	refT *sidl.Type
}

// DialBrowser binds to the browser behind r.
func DialBrowser(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) (*Client, error) {
	conn, err := cosm.Bind(ctx, pool, r)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, strT: sidl.Basic(sidl.String), refT: sidl.Basic(sidl.SvcRef)}, nil
}

// RegisterSID registers a description and reference at the remote
// browser (step 1 of Fig. 4).
func (c *Client) RegisterSID(ctx context.Context, sid *sidl.SID, target ref.ServiceRef) error {
	text, err := sid.MarshalText()
	if err != nil {
		return err
	}
	_, err = c.conn.Invoke(ctx, "RegisterSID",
		xcode.NewString(c.strT, string(text)), xcode.NewRef(c.refT, target))
	if err != nil {
		return fmt.Errorf("browser: remote register: %w", err)
	}
	return nil
}

// Withdraw removes a registration at the remote browser.
func (c *Client) Withdraw(ctx context.Context, name string) error {
	_, err := c.conn.Invoke(ctx, "Withdraw", xcode.NewString(c.strT, name))
	if err != nil {
		return fmt.Errorf("browser: remote withdraw: %w", err)
	}
	return nil
}

// List returns the registered service names.
func (c *Client) List(ctx context.Context) ([]string, error) {
	res, err := c.conn.Invoke(ctx, "List")
	if err != nil {
		return nil, fmt.Errorf("browser: remote list: %w", err)
	}
	names := make([]string, 0, len(res.Value.Elems))
	for _, e := range res.Value.Elems {
		names = append(names, e.Str)
	}
	return names, nil
}

// Get fetches one entry by service name, parsing the SID text.
func (c *Client) Get(ctx context.Context, name string) (Entry, error) {
	res, err := c.conn.Invoke(ctx, "Get", xcode.NewString(c.strT, name))
	if err != nil {
		return Entry{}, fmt.Errorf("browser: remote get: %w", err)
	}
	return entryFromValue(res.Value)
}

// Search performs a keyword search at the remote browser.
func (c *Client) Search(ctx context.Context, keyword string) ([]Entry, error) {
	res, err := c.conn.Invoke(ctx, "Search", xcode.NewString(c.strT, keyword))
	if err != nil {
		return nil, fmt.Errorf("browser: remote search: %w", err)
	}
	entries := make([]Entry, 0, len(res.Value.Elems))
	for _, ev := range res.Value.Elems {
		e, err := entryFromValue(ev)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func entryFromValue(v *xcode.Value) (Entry, error) {
	name, err := v.Field("name")
	if err != nil {
		return Entry{}, err
	}
	target, err := v.Field("target")
	if err != nil {
		return Entry{}, err
	}
	text, err := v.Field("sidlText")
	if err != nil {
		return Entry{}, err
	}
	var sid sidl.SID
	if err := sid.UnmarshalText([]byte(text.Str)); err != nil {
		return Entry{}, fmt.Errorf("%w: %v", ErrBadSID, err)
	}
	return Entry{Name: name.Str, SID: &sid, Ref: target.Ref}, nil
}
