package browser

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

func TestDirectoryLocal(t *testing.T) {
	d := NewDirectory()
	sid := sidl.CarRentalSID()
	r := ref.New("tcp:h:1", "CarRentalService")

	if err := d.Register(sid, r); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(nil, r); !errors.Is(err, ErrBadSID) {
		t.Fatalf("nil SID err = %v", err)
	}
	if err := d.Register(&sidl.SID{}, r); !errors.Is(err, ErrBadSID) {
		t.Fatalf("invalid SID err = %v", err)
	}

	e, err := d.Get("CarRentalService")
	if err != nil || e.Ref != r || e.SID.ServiceName != "CarRentalService" {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	if _, err := d.Get("Ghost"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("err = %v", err)
	}

	// Re-registration replaces the entry (provider moved).
	r2 := ref.New("tcp:h:2", "CarRentalService")
	if err := d.Register(sid, r2); err != nil {
		t.Fatal(err)
	}
	if e, _ := d.Get("CarRentalService"); e.Ref != r2 {
		t.Fatalf("upsert did not replace: %+v", e)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}

	if err := d.Withdraw("CarRentalService"); err != nil {
		t.Fatal(err)
	}
	if err := d.Withdraw("CarRentalService"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("double withdraw err = %v", err)
	}
}

func TestDirectorySearch(t *testing.T) {
	d := NewDirectory()
	car := sidl.CarRentalSID()
	if err := d.Register(car, ref.New("tcp:h:1", "cars")); err != nil {
		t.Fatal(err)
	}
	img, err := sidl.Parse(`
// Converts raster images between encodings.
module ImageConvert {
    interface COSM_Operations {
        // Convert an image from format Y to format X.
        string Convert(in string data);
    };
};
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Register(img, ref.New("tcp:h:2", "img")); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		keyword string
		want    []string
	}{
		{"", []string{"CarRentalService", "ImageConvert"}},
		{"car", []string{"CarRentalService"}},
		{"BOOKING", []string{"CarRentalService"}}, // case-insensitive, from annotations
		{"raster", []string{"ImageConvert"}},
		{"convert", []string{"ImageConvert"}},
		{"zeppelin", nil},
	}
	for _, tt := range tests {
		t.Run(tt.keyword, func(t *testing.T) {
			got := d.Search(tt.keyword)
			if len(got) != len(tt.want) {
				t.Fatalf("Search(%q) = %d entries, want %d", tt.keyword, len(got), len(tt.want))
			}
			for i := range tt.want {
				if got[i].Name != tt.want[i] {
					t.Fatalf("Search(%q)[%d] = %q, want %q", tt.keyword, i, got[i].Name, tt.want[i])
				}
			}
		})
	}
	if names := d.Names(); len(names) != 2 || names[0] != "CarRentalService" {
		t.Fatalf("Names = %v", names)
	}
}

func startBrowserNode(t *testing.T, loopName string) (*cosm.Node, ref.ServiceRef) {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	svc, err := NewService(NewDirectory())
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(ServiceName, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor(ServiceName)
}

func TestBrowserRemote(t *testing.T) {
	node, browserRef := startBrowserNode(t, "brw-remote")
	ctx := context.Background()
	bc, err := DialBrowser(ctx, node.Pool(), browserRef)
	if err != nil {
		t.Fatal(err)
	}

	sid := sidl.CarRentalSID()
	target := ref.New("tcp:provider:7", "CarRentalService")
	if err := bc.RegisterSID(ctx, sid, target); err != nil {
		t.Fatal(err)
	}

	names, err := bc.List(ctx)
	if err != nil || len(names) != 1 || names[0] != "CarRentalService" {
		t.Fatalf("List = %v, %v", names, err)
	}

	e, err := bc.Get(ctx, "CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	if e.Ref != target {
		t.Fatalf("Get ref = %v", e.Ref)
	}
	// The SID survives the round trip with its extensions intact.
	if !e.SID.FSM.Restricted() || e.SID.Trader == nil || e.SID.Trader.ServiceID != 4711 {
		t.Fatalf("SID extensions lost: %+v", e.SID)
	}
	if err := e.SID.ConformsTo(sid); err != nil {
		t.Fatalf("round-tripped SID conformance: %v", err)
	}

	found, err := bc.Search(ctx, "rent")
	if err != nil || len(found) != 1 {
		t.Fatalf("Search = %v, %v", found, err)
	}
	none, err := bc.Search(ctx, "spaceship")
	if err != nil || len(none) != 0 {
		t.Fatalf("Search(spaceship) = %v, %v", none, err)
	}

	if err := bc.Withdraw(ctx, "CarRentalService"); err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Get(ctx, "CarRentalService"); err == nil {
		t.Fatal("Get after withdraw must fail")
	}
	if err := bc.Withdraw(ctx, "CarRentalService"); err == nil {
		t.Fatal("double withdraw must fail remotely")
	}
}

func TestBrowserCascade(t *testing.T) {
	// Browser B registers its own SID at browser A — "the browser may
	// also act as an application service as well and register its own
	// SID at yet another browser" (section 3.2). A client starting at A
	// discovers B, binds to it, and browses B's directory.
	nodeA, refA := startBrowserNode(t, "brw-cascade-a")
	nodeB, refB := startBrowserNode(t, "brw-cascade-b")
	ctx := context.Background()

	// Register an application service at B.
	bcB, err := DialBrowser(ctx, nodeB.Pool(), refB)
	if err != nil {
		t.Fatal(err)
	}
	car := sidl.CarRentalSID()
	carTarget := ref.New("tcp:provider:9", "CarRentalService")
	if err := bcB.RegisterSID(ctx, car, carTarget); err != nil {
		t.Fatal(err)
	}

	// Register B itself at A, using B's own served SID.
	bSID, err := cosm.Describe(ctx, nodeA.Pool(), refB)
	if err != nil {
		t.Fatal(err)
	}
	bcA, err := DialBrowser(ctx, nodeA.Pool(), refA)
	if err != nil {
		t.Fatal(err)
	}
	if err := bcA.RegisterSID(ctx, bSID, refB); err != nil {
		t.Fatal(err)
	}

	// A client at A browses, finds a browser entry, follows the
	// reference (step 3 of Fig. 4), and finds the car service at B.
	entries, err := bcA.Search(ctx, "browser")
	if err != nil || len(entries) != 1 {
		t.Fatalf("Search(browser) at A = %v, %v", entries, err)
	}
	next, err := DialBrowser(ctx, nodeA.Pool(), entries[0].Ref)
	if err != nil {
		t.Fatal(err)
	}
	cars, err := next.Search(ctx, "car")
	if err != nil || len(cars) != 1 || cars[0].Ref != carTarget {
		t.Fatalf("cascaded Search = %v, %v", cars, err)
	}
}

func TestBrowserRejectsBadSIDText(t *testing.T) {
	node, browserRef := startBrowserNode(t, "brw-bad")
	ctx := context.Background()
	conn, err := cosm.Bind(ctx, node.Pool(), browserRef)
	if err != nil {
		t.Fatal(err)
	}
	strT := sidl.Basic(sidl.String)
	refT := sidl.Basic(sidl.SvcRef)
	_, err = conn.Invoke(ctx, "RegisterSID",
		xcode.NewString(strT, "module Broken {"),
		xcode.Zero(refT))
	if err == nil {
		t.Fatal("registering unparseable SID text must fail")
	}
}

func TestDirectoryConcurrent(t *testing.T) {
	d := NewDirectory()
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			sid := sidl.CarRentalSID()
			sid.ServiceName = fmt.Sprintf("Svc%d", i)
			if err := d.Register(sid, ref.New("tcp:h:1", sid.ServiceName)); err != nil {
				done <- err
				return
			}
			_, err := d.Get(sid.ServiceName)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 16 {
		t.Fatalf("Len = %d", d.Len())
	}
}
