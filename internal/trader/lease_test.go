package trader

import (
	"context"
	"testing"
	"time"

	"cosm/internal/sidl"
)

// fakeClock is a settable time source for lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLeaseExpiryStopsMatching(t *testing.T) {
	clock := &fakeClock{t: time.Date(1994, 6, 21, 12, 0, 0, 0, time.UTC)}
	tr := New("T", newCarRepo(t), WithClock(clock.now))
	ctx := context.Background()

	leased, err := tr.ExportLease("CarRentalService", carRef(1), carProps("AUDI", 80, "USD"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	forever, err := tr.Export("CarRentalService", carRef(2), carProps("AUDI", 90, "USD"))
	if err != nil {
		t.Fatal(err)
	}

	offers, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || len(offers) != 2 {
		t.Fatalf("before expiry: %d offers, %v", len(offers), err)
	}
	if tr.OfferCount() != 2 {
		t.Fatalf("OfferCount = %d", tr.OfferCount())
	}

	// One hour and a second later the leased offer is gone from
	// matching, while the permanent one stays.
	clock.advance(time.Hour + time.Second)
	offers, err = tr.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || len(offers) != 1 || offers[0].ID != forever {
		t.Fatalf("after expiry: %+v, %v", offers, err)
	}
	if tr.OfferCount() != 1 {
		t.Fatalf("OfferCount after expiry = %d", tr.OfferCount())
	}

	// PurgeExpired reclaims storage; the expired offer can no longer be
	// withdrawn.
	if n := tr.PurgeExpired(); n != 1 {
		t.Fatalf("PurgeExpired = %d", n)
	}
	if n := tr.PurgeExpired(); n != 0 {
		t.Fatalf("second PurgeExpired = %d", n)
	}
	if err := tr.Withdraw(leased); err == nil {
		t.Fatal("withdrawing a purged offer must fail")
	}
	if err := tr.Withdraw(forever); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseRenewalByReexport(t *testing.T) {
	// A provider keeps its offer alive by re-exporting before expiry —
	// the lease idiom. (The old offer is withdrawn by the provider.)
	clock := &fakeClock{t: time.Unix(0, 0)}
	tr := New("T", newCarRepo(t), WithClock(clock.now))
	ctx := context.Background()

	id1, err := tr.ExportLease("CarRentalService", carRef(1), carProps("AUDI", 80, "USD"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(50 * time.Second)
	id2, err := tr.ExportLease("CarRentalService", carRef(1), carProps("AUDI", 80, "USD"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw(id1); err != nil {
		t.Fatal(err)
	}
	clock.advance(30 * time.Second) // 80s total: id1 would have expired
	offers, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || len(offers) != 1 || offers[0].ID != id2 {
		t.Fatalf("after renewal: %+v, %v", offers, err)
	}
}

func TestNegativeLeaseRejected(t *testing.T) {
	tr := New("T", newCarRepo(t))
	if _, err := tr.ExportLease("CarRentalService", carRef(1), carProps("AUDI", 1, "USD"), -time.Second); err == nil {
		t.Fatal("negative lease must fail")
	}
}

func TestRemoteExportLease(t *testing.T) {
	node, tr, traderRef := startTraderNode(t, "trd-lease", "T1")
	ctx := context.Background()
	tc, err := DialTrader(ctx, node.Pool(), traderRef)
	if err != nil {
		t.Fatal(err)
	}
	id, err := tc.ExportLease(ctx, "CarRentalService", carRef(5), carProps("AUDI", 50, "USD"), 30*time.Second)
	if err != nil || id == "" {
		t.Fatalf("ExportLease = %q, %v", id, err)
	}
	// The offer is live now (wall clock: 30s have not passed).
	one, err := tc.ImportOne(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || one.Ref != carRef(5) {
		t.Fatalf("ImportOne = %+v, %v", one, err)
	}
	// The lease expiry survives the wire round trip (Offer_t carries
	// expiresUnix).
	if one.Expires.IsZero() {
		t.Fatal("lease expiry lost across the wire")
	}
	_ = tr
}

func TestOffersSnapshot(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	tr := New("T", newCarRepo(t), WithClock(clock.now))
	if _, err := tr.Export("CarRentalService", carRef(2), carProps("AUDI", 90, "USD")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ExportLease("CarRentalService", carRef(1), carProps("AUDI", 80, "USD"), time.Minute); err != nil {
		t.Fatal(err)
	}
	offers := tr.Offers()
	if len(offers) != 2 || offers[0].ID >= offers[1].ID {
		t.Fatalf("Offers = %+v", offers)
	}
	// Snapshot is a copy: mutating it does not affect the store.
	offers[0].Props["ChargePerDay"] = sidl.FloatLit(1)
	fresh := tr.Offers()
	if fresh[0].Props["ChargePerDay"] == sidl.FloatLit(1) {
		t.Fatal("Offers must return clones")
	}
	clock.advance(2 * time.Minute)
	if got := tr.Offers(); len(got) != 1 {
		t.Fatalf("expired offer still listed: %+v", got)
	}
}
