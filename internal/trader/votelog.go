package trader

// Durable vote ledger: a per-node sidecar file recording every election
// vote pledge this node makes, so a voter that crashes and restarts
// inside one election round cannot grant two votes at the same epoch.
//
// The ledger is deliberately NOT part of the replicated journal. The
// journal's sequence space is owned by the leader — followers mirror
// leader-assigned seqs via ApplyBatch/AppendAt — so a follower
// appending a local vote record would collide with the next replicated
// record, and a leader's vote record would replicate and overwrite
// every follower's *own* vote state. Votes are per-node facts, not
// market state; they live next to the journal, not inside it.
//
// Format: one JSON walRecord per line (Op: "vote", Epoch, Name =
// candidate, "" for a bare epoch adoption). Append-only, fsynced per
// record — a vote round is rare and slow (network RTTs), one fsync is
// noise. Recovery replays every line and keeps the highest pledge; a
// torn final line (crash mid-append) is skipped, which is safe: the
// pledge it recorded was never acknowledged to any candidate.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// voteLogName is the ledger's file name inside a trader's data dir.
const voteLogName = "votes.wal"

// VotePledge is one recovered ledger entry: this node's vote at Epoch
// went to Candidate ("" for an epoch adopted without granting).
type VotePledge struct {
	Epoch     uint64
	Candidate string
}

// VoteLog is the durable per-node vote ledger. Safe for concurrent use;
// in practice appends are serialised under the trader's repl lock.
type VoteLog struct {
	mu sync.Mutex
	f  *os.File

	pledges []VotePledge // entries read at open, consumed by SetVoteLog
}

// OpenVoteLog opens (creating if absent) the vote ledger in dir,
// reading any pledges recorded by a previous incarnation. A torn final
// line is tolerated and dropped; corruption earlier in the file is an
// error (the ledger is tiny — refusing to guess is cheap).
func OpenVoteLog(dir string) (*VoteLog, error) {
	path := filepath.Join(dir, voteLogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trader: vote log: %w", err)
	}
	l := &VoteLog{f: f}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r walRecord
		if err := json.Unmarshal(line, &r); err != nil || r.Op != opVote {
			// A torn tail from a crash mid-append parses as neither;
			// the pledge it held was never acknowledged, so dropping it
			// here (and every line after it) is safe.
			break
		}
		l.pledges = append(l.pledges, VotePledge{Epoch: r.Epoch, Candidate: r.Name})
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("trader: vote log %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("trader: vote log %s: %w", path, err)
	}
	return l, nil
}

// Pledges returns the entries recovered at open (oldest first).
func (l *VoteLog) Pledges() []VotePledge {
	if l == nil {
		return nil
	}
	return l.pledges
}

// Append durably records one pledge: the line is written and fsynced
// before Append returns, so a grant built on it survives a crash.
func (l *VoteLog) Append(epoch uint64, candidate string) error {
	if l == nil {
		return nil
	}
	payload, err := json.Marshal(walRecord{Op: opVote, Epoch: epoch, Name: candidate})
	if err != nil {
		return fmt.Errorf("trader: vote log: %w", err)
	}
	payload = append(payload, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("trader: vote log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("trader: vote log: %w", err)
	}
	return nil
}

// Close closes the ledger file.
func (l *VoteLog) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	return l.f.Close()
}

// SetVoteLog attaches an opened vote ledger: recovered pledges are
// re-adopted into the vote lock (highest epoch wins; the candidate is
// kept so a restarted voter answers the same candidate's retry
// idempotently), and future pledges persist through it. Call before
// serving, alongside SetJournal.
func (t *Trader) SetVoteLog(l *VoteLog) {
	t.votes = l
	if l == nil {
		return
	}
	t.repl.mu.Lock()
	for _, p := range l.Pledges() {
		if p.Epoch > t.repl.voteEpoch ||
			(p.Epoch == t.repl.voteEpoch && p.Candidate != "") {
			t.repl.voteEpoch, t.repl.votedFor = p.Epoch, p.Candidate
		}
	}
	t.repl.mu.Unlock()
}
