package trader

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, mutex-guarded LRU map from string keys to
// values. It backs the compiled-constraint cache and the import-result
// cache: both are fed by remote callers, so without a bound a hostile
// importer could grow them without limit (one fresh constraint string
// per request).
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRU returns an LRU holding at most capacity entries. A capacity
// of zero or less yields a nil cache, on which get and add are no-ops.
func newLRU[V any](capacity int) *lruCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &lruCache[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// get returns the cached value and marks it most recently used.
func (c *lruCache[V]) get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// add inserts or refreshes key, evicting the least recently used entry
// beyond capacity.
func (c *lruCache[V]) add(key string, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry[V]).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache[V]) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
