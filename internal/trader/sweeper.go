package trader

import (
	"context"
	"sync"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/wire"
)

// PingFunc probes one provider for liveness. The default pings the
// service behind the offer's reference with cosm.Ping over a Pool
// (which already retries connection-class failures), so an error means
// the provider stayed unreachable across the pool's attempts.
type PingFunc func(ctx context.Context, target ref.ServiceRef) error

// Sweeper is the trader's offer liveness monitor — the facility
// 1994-era traders lack (clients had to work around stale offers by
// hand; see failure_test.go). It periodically probes every stored
// offer's provider: a provider that fails a probe has its offers
// marked suspect (deprioritised by Import); a provider that stays dead
// for FailThreshold consecutive sweeps has its offers withdrawn. Each
// sweep also reclaims expired leases (PurgeExpired).
//
// Create with NewSweeper, then either run it in the background with
// Start/Close or drive it deterministically with SweepOnce (tests use
// a tick channel via WithSweepTick, reusing the trader's WithClock
// fake-clock style).
type Sweeper struct {
	t            *Trader
	ping         PingFunc
	interval     time.Duration
	timeout      time.Duration
	probeTimeout time.Duration
	thresh       int
	tick         <-chan time.Time
	logf         func(format string, args ...any)
	log          *obs.Logger
	probes       *obs.CounterVec // cosm_trader_probes_total{outcome}

	mu    sync.Mutex
	fails map[string]int // offer ID -> consecutive failed probes

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	stopped   chan struct{}
}

// SweeperOption configures a Sweeper.
type SweeperOption func(*Sweeper)

// WithSweepInterval sets the background sweep period (default 30s).
func WithSweepInterval(d time.Duration) SweeperOption {
	return func(sw *Sweeper) { sw.interval = d }
}

// WithSweepTimeout bounds one whole sweep, probes included
// (default 10s). Providers not yet probed when the budget runs out are
// skipped, not failed — see SweepOnce.
func WithSweepTimeout(d time.Duration) SweeperOption {
	return func(sw *Sweeper) { sw.timeout = d }
}

// WithProbeTimeout bounds each individual provider probe (default 2s),
// so one black-holed provider cannot eat the whole sweep budget and
// starve — or worse, falsely condemn — the providers probed after it.
func WithProbeTimeout(d time.Duration) SweeperOption {
	return func(sw *Sweeper) { sw.probeTimeout = d }
}

// WithFailThreshold sets how many consecutive failed probes withdraw
// an offer (default 2: one sweep marks suspect, the next withdraws).
// A threshold of 1 withdraws on the first failed probe.
func WithFailThreshold(n int) SweeperOption {
	return func(sw *Sweeper) { sw.thresh = n }
}

// WithPingFunc substitutes the liveness probe (tests inject failures
// without a network).
func WithPingFunc(ping PingFunc) SweeperOption {
	return func(sw *Sweeper) { sw.ping = ping }
}

// WithSweepTick substitutes the background timer with an external tick
// channel, so tests drive sweeps with a fake clock.
func WithSweepTick(tick <-chan time.Time) SweeperOption {
	return func(sw *Sweeper) { sw.tick = tick }
}

// WithSweeperLog directs sweep diagnostics to logf (default: silent).
func WithSweeperLog(logf func(format string, args ...any)) SweeperOption {
	return func(sw *Sweeper) { sw.logf = logf }
}

// WithSweeperLogger routes probe results through the structured logger
// l: every sweep emits one event=sweep summary line, and each suspicion
// or withdrawal its own event line. A nil l is a no-op.
func WithSweeperLogger(l *obs.Logger) SweeperOption {
	return func(sw *Sweeper) {
		if l == nil {
			return
		}
		sw.log = l
		sw.logf = l.Sink()
	}
}

// WithSweeperMetrics counts probe outcomes (ok, failed) into reg's
// cosm_trader_probes_total family. A nil reg disables recording.
func WithSweeperMetrics(reg *obs.Registry) SweeperOption {
	return func(sw *Sweeper) {
		sw.probes = reg.CounterVec("cosm_trader_probes_total", "Sweeper liveness probes by outcome.", "outcome")
	}
}

// NewSweeper returns a sweeper over t probing providers through pool.
// The sweeper does not run until Start (or SweepOnce) is called.
func NewSweeper(t *Trader, pool *wire.Pool, opts ...SweeperOption) *Sweeper {
	sw := &Sweeper{
		t: t,
		ping: func(ctx context.Context, target ref.ServiceRef) error {
			return cosm.Ping(ctx, pool, target)
		},
		interval:     30 * time.Second,
		timeout:      10 * time.Second,
		probeTimeout: 2 * time.Second,
		thresh:       2,
		logf:         func(string, ...any) {},
		fails:        map[string]int{},
		done:         make(chan struct{}),
		stopped:      make(chan struct{}),
	}
	for _, o := range opts {
		o(sw)
	}
	if sw.thresh < 1 {
		sw.thresh = 1
	}
	return sw
}

// Start launches the background sweep loop. Safe to call once; use
// Close to stop it.
func (sw *Sweeper) Start() {
	sw.startOnce.Do(func() {
		go sw.loop()
	})
}

func (sw *Sweeper) loop() {
	defer close(sw.stopped)
	tick := sw.tick
	if tick == nil {
		ticker := time.NewTicker(sw.interval)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-sw.done:
			return
		case <-tick:
			ctx, cancel := context.WithTimeout(context.Background(), sw.timeout)
			sw.SweepOnce(ctx)
			cancel()
		}
	}
}

// Close stops the background loop and waits for an in-flight sweep to
// finish. Safe to call multiple times, and before Start.
func (sw *Sweeper) Close() error {
	sw.stopOnce.Do(func() { close(sw.done) })
	sw.startOnce.Do(func() { close(sw.stopped) }) // never started: nothing to wait for
	<-sw.stopped
	return nil
}

// SweepReport summarises one sweep.
type SweepReport struct {
	// Checked counts offers probed this sweep.
	Checked int
	// Healthy counts offers whose provider answered.
	Healthy int
	// Suspected counts offers newly or still marked suspect.
	Suspected int
	// Withdrawn counts offers withdrawn for staying dead.
	Withdrawn int
	// Expired counts offers reclaimed because their lease ran out.
	Expired int
	// Skipped counts offers not probed because the sweep budget ran
	// out first. Skipped offers keep their failure streak untouched.
	Skipped int
}

// SweepOnce performs one synchronous sweep: reclaim expired leases,
// probe every offer's provider once (one probe per distinct provider
// service, shared by all its offers), then mark or withdraw.
//
// Each probe runs under its own probe timeout, so one black-holed
// provider costs at most that much of the sweep budget. If the sweep
// ctx itself expires, the remaining providers record *no* verdict this
// sweep — their offers are skipped, never counted as failures: a probe
// cut short by the sweeper's own budget says nothing about the
// provider, and treating it as death would let one slow provider
// cascade into market-wide withdrawals of healthy offers.
func (sw *Sweeper) SweepOnce(ctx context.Context) SweepReport {
	var rep SweepReport
	rep.Expired = sw.t.PurgeExpired()

	// Shared immutable snapshots — the sweeper only reads Ref/ID/Suspect,
	// so it skips the management view's per-offer deep copy.
	offers := sw.t.liveOffers()

	// One probe per distinct provider reference: a provider exporting
	// ten offers is pinged once, and all ten share the verdict.
	verdict := map[ref.ServiceRef]error{}
	for _, o := range offers {
		if _, seen := verdict[o.Ref]; seen {
			continue
		}
		if ctx.Err() != nil {
			break // sweep budget exhausted: no verdicts for the rest
		}
		pctx, cancel := context.WithTimeout(ctx, sw.probeTimeout)
		err := sw.ping(pctx, o.Ref)
		cancel()
		if err != nil && ctx.Err() != nil {
			// The sweep budget — not the per-probe one — expired while
			// this probe ran: the failure proves nothing about the
			// provider. Record no verdict for it (or any later one).
			break
		}
		verdict[o.Ref] = err
		if err == nil {
			sw.probes.With("ok").Inc()
		} else {
			sw.probes.With("failed").Inc()
		}
	}

	// tracked collects offer IDs whose failure streak must survive this
	// sweep (healthy, suspect, or skipped offers still stored); the GC
	// below drops streaks for everything else.
	tracked := map[string]bool{}
	for _, o := range offers {
		err, ok := verdict[o.Ref]
		if !ok {
			rep.Skipped++
			tracked[o.ID] = true // unprobed: streak carries over unchanged
			continue
		}
		rep.Checked++
		if err == nil {
			rep.Healthy++
			sw.mu.Lock()
			delete(sw.fails, o.ID)
			sw.mu.Unlock()
			if o.Suspect {
				_ = sw.t.MarkSuspect(o.ID, false)
			}
			tracked[o.ID] = true
			continue
		}
		sw.mu.Lock()
		sw.fails[o.ID]++
		n := sw.fails[o.ID]
		sw.mu.Unlock()
		if n >= sw.thresh {
			if werr := sw.t.Withdraw(o.ID); werr == nil {
				rep.Withdrawn++
				sw.logf("trader: sweeper withdrew %s (%s unreachable %d sweeps: %v)", o.ID, o.Ref, n, err)
			}
			sw.mu.Lock()
			delete(sw.fails, o.ID)
			sw.mu.Unlock()
			continue
		}
		rep.Suspected++
		_ = sw.t.MarkSuspect(o.ID, true)
		sw.logf("trader: sweeper suspects %s (%s unreachable: %v)", o.ID, o.Ref, err)
		tracked[o.ID] = true
	}
	if rep.Skipped > 0 {
		sw.logf("trader: sweep budget exhausted, %d offer(s) not probed", rep.Skipped)
	}

	// Drop failure counts for offers withdrawn or replaced out of band.
	sw.mu.Lock()
	for id := range sw.fails {
		if !tracked[id] {
			delete(sw.fails, id)
		}
	}
	sw.mu.Unlock()
	sw.log.Log(nil, "sweep", "checked", rep.Checked, "healthy", rep.Healthy,
		"suspected", rep.Suspected, "withdrawn", rep.Withdrawn,
		"expired", rep.Expired, "skipped", rep.Skipped)
	return rep
}
