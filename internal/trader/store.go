package trader

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosm/internal/match"
	"cosm/internal/obs"
	"cosm/internal/typemgr"
)

// storeShards is the number of offer-store shards. Shard choice hashes
// the service-type name, so one hot type contends only with types that
// share its shard and exports of distinct types proceed in parallel.
const storeShards = 16

// offerStore is the trader's sharded, snapshot-serving offer store.
//
// Writes (export, withdraw, replace, suspect-marking, purge) take one
// shard's write lock and swap offers copy-on-write: a stored *Offer is
// immutable from the moment it enters the store, so readers may hold it
// without locks or clones. Reads go through per-type immutable
// snapshots (see typeSnapshot) that are rebuilt lazily after a write to
// that type — imports therefore never block exports of other types and
// pay no per-request index build for read-mostly workloads.
type offerStore struct {
	repo *typemgr.Repo
	now  func() time.Time

	shards [storeShards]storeShard

	// typeSetGen is bumped whenever a type bucket appears or
	// disappears. Together with the repo generation it pins the set of
	// stored types matching a request type, validating the resolution
	// cache and import-result cache entries.
	typeSetGen atomic.Uint64

	// resolutions caches request type -> conforming stored type names
	// (bounded: request types arrive from the network).
	resolutions *lruCache[*resolution]

	// rebuilds counts snapshot rebuilds (nil-safe obs counter).
	rebuilds *obs.Counter
}

type storeShard struct {
	mu    sync.RWMutex
	types map[string]*typeBucket
	byID  map[string]*Offer
}

// typeBucket holds one stored service type's offers plus the lazily
// built matching snapshot. version counts mutations (guarded by the
// owning shard's lock); snap is the current snapshot or nil after a
// write invalidated it.
type typeBucket struct {
	name    string
	offers  map[string]*Offer
	version uint64
	snap    atomic.Pointer[typeSnapshot]
}

// resolution pins the graded stored types matching one request type at
// a (store generation, repo generation) pair.
type resolution struct {
	storeGen uint64
	repoGen  uint64
	types    []match.TypeMatch
}

// bucketVersion records the version of one consulted type bucket, for
// import-result cache validation.
type bucketVersion struct {
	name    string
	version uint64
}

func newOfferStore(repo *typemgr.Repo, now func() time.Time) *offerStore {
	st := &offerStore{repo: repo, now: now, resolutions: newLRU[*resolution](256)}
	for i := range st.shards {
		st.shards[i].types = map[string]*typeBucket{}
		st.shards[i].byID = map[string]*Offer{}
	}
	return st
}

// shardFor hashes a service-type name to its shard (FNV-1a).
func (st *offerStore) shardFor(serviceType string) *storeShard {
	var h uint32 = 2166136261
	for i := 0; i < len(serviceType); i++ {
		h ^= uint32(serviceType[i])
		h *= 16777619
	}
	return &st.shards[h%storeShards]
}

// gens returns the generation pair import-result cache entries are
// validated against.
func (st *offerStore) gens() (storeGen, repoGen uint64) {
	return st.typeSetGen.Load(), st.repo.Gen()
}

// clear empties every shard — the follower snapshot-install path
// replaces the whole store wholesale. Bumping the type-set generation
// invalidates cached resolutions and import results implicitly.
func (st *offerStore) clear() {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.types = map[string]*typeBucket{}
		sh.byID = map[string]*Offer{}
		sh.mu.Unlock()
	}
	st.typeSetGen.Add(1)
}

// insert stores an immutable offer.
func (st *offerStore) insert(o *Offer) {
	sh := st.shardFor(o.Type)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.types[o.Type]
	if b == nil {
		b = &typeBucket{name: o.Type, offers: map[string]*Offer{}}
		sh.types[o.Type] = b
		st.typeSetGen.Add(1)
	}
	b.offers[o.ID] = o
	sh.byID[o.ID] = o
	b.version++
	b.snap.Store(nil)
}

// lookup returns the stored offer by ID (shared, immutable).
func (st *offerStore) lookup(id string) (*Offer, bool) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		o, ok := sh.byID[id]
		sh.mu.RUnlock()
		if ok {
			return o, true
		}
	}
	return nil, false
}

// remove withdraws an offer by ID and returns it.
func (st *offerStore) remove(id string) (*Offer, bool) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		o, ok := sh.byID[id]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		delete(sh.byID, id)
		st.removeFromBucketLocked(sh, o)
		sh.mu.Unlock()
		return o, true
	}
	return nil, false
}

// removeFromBucketLocked detaches o from its type bucket; the caller
// holds the shard's write lock and has already removed it from byID.
func (st *offerStore) removeFromBucketLocked(sh *storeShard, o *Offer) {
	b := sh.types[o.Type]
	if b == nil {
		return
	}
	delete(b.offers, o.ID)
	b.version++
	b.snap.Store(nil)
	if len(b.offers) == 0 {
		delete(sh.types, o.Type)
		st.typeSetGen.Add(1)
	}
}

// update swaps the stored offer for id with mutate's copy (copy-on-
// write: mutate must return a fresh *Offer, never modify the old one).
func (st *offerStore) update(id string, mutate func(*Offer) *Offer) (*Offer, bool) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		o, ok := sh.byID[id]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		fresh := mutate(o)
		sh.byID[id] = fresh
		if b := sh.types[o.Type]; b != nil {
			b.offers[id] = fresh
			b.version++
			b.snap.Store(nil)
		}
		sh.mu.Unlock()
		return fresh, true
	}
	return nil, false
}

// purgeExpired removes offers whose lease ran out at time now.
func (st *offerStore) purgeExpired(now time.Time) int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, o := range sh.byID {
			if !o.expired(now) {
				continue
			}
			delete(sh.byID, id)
			st.removeFromBucketLocked(sh, o)
			n++
		}
		sh.mu.Unlock()
	}
	return n
}

// typeCounts returns the number of stored, unexpired offers per
// service type at time now — the raw material of an offer summary.
func (st *offerStore) typeCounts(now time.Time) map[string]int {
	out := map[string]int{}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for name, b := range sh.types {
			n := 0
			for _, o := range b.offers {
				if !o.expired(now) {
					n++
				}
			}
			if n > 0 {
				out[name] = n
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// count returns the number of stored, unexpired offers at time now.
func (st *offerStore) count(now time.Time) int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, o := range sh.byID {
			if !o.expired(now) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// live returns every stored, unexpired offer (shared, immutable),
// sorted by ID.
func (st *offerStore) live(now time.Time) []*Offer {
	var out []*Offer
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, o := range sh.byID {
			if !o.expired(now) {
				out = append(out, o)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// all returns every stored offer, expired ones included (shared,
// immutable) — the linear-scan ablation path.
func (st *offerStore) all() []*Offer {
	var out []*Offer
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, o := range sh.byID {
			out = append(out, o)
		}
		sh.mu.RUnlock()
	}
	return out
}

// resolve is phase 1 of the matching pipeline: the graded stored type
// buckets whose offers satisfy requests for reqType — the type itself
// (exact) plus every stored type in its conformant closure (subtype,
// scored by hierarchy distance). The closure comes from the typemgr
// hierarchy index, so this never walks conformance per stored type; the
// intersection with the stored bucket set is cached and revalidated
// against the store and repo generations, so steady-state imports do no
// hierarchy work at all.
func (st *offerStore) resolve(reqType string) []match.TypeMatch {
	storeGen, repoGen := st.gens()
	if r, ok := st.resolutions.get(reqType); ok && r.storeGen == storeGen && r.repoGen == repoGen {
		return r.types
	}

	stored := map[string]bool{}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for name := range sh.types {
			stored[name] = true
		}
		sh.mu.RUnlock()
	}

	var types []match.TypeMatch
	cl, err := st.repo.ConformingTypes(reqType)
	if err != nil {
		// The request type is unknown to the repository (or its
		// hierarchy is corrupt): offers stored under the literal name
		// still match exactly, nothing else can conform.
		if stored[reqType] {
			types = []match.TypeMatch{{Name: reqType, Grade: match.GradeExact, Score: match.ScoreExact}}
		}
	} else {
		for _, tm := range match.GradeClosure(cl) {
			if stored[tm.Name] {
				types = append(types, tm)
			}
		}
	}
	st.resolutions.add(reqType, &resolution{storeGen: storeGen, repoGen: repoGen, types: types})
	return types
}

// snapshot returns the current matching snapshot for a stored type,
// building it under the shard's read lock if a write invalidated it.
func (st *offerStore) snapshot(serviceType string) (*typeSnapshot, bool) {
	sh := st.shardFor(serviceType)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	b := sh.types[serviceType]
	if b == nil {
		return nil, false
	}
	if snap := b.snap.Load(); snap != nil {
		return snap, true
	}
	// Build while holding the read lock: writers are excluded, so the
	// built snapshot is consistent with b.version, and a writer that
	// runs after we release will Store(nil) over it. Concurrent readers
	// may build duplicates; they are identical, and the duplicate work
	// is bounded by one rebuild per reader already past the nil check.
	snap := buildSnapshot(b)
	b.snap.Store(snap)
	st.rebuilds.Inc()
	return snap, true
}

// validate reports whether an import-result cache entry still describes
// the store: same type set, same repo generation, and every consulted
// bucket unchanged.
func (st *offerStore) validate(e *importCacheEntry) bool {
	storeGen, repoGen := st.gens()
	if e.storeGen != storeGen || e.repoGen != repoGen {
		return false
	}
	for _, bv := range e.consulted {
		sh := st.shardFor(bv.name)
		sh.mu.RLock()
		b := sh.types[bv.name]
		ok := b != nil && b.version == bv.version
		sh.mu.RUnlock()
		if !ok {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Type snapshots and attribute indexes
// ---------------------------------------------------------------------

// typeSnapshot is an immutable view of one stored type's offers with
// attribute indexes over the characterising properties: equality
// posting lists for every (property, value) pair and value-sorted
// lists for numeric properties. Imports narrow their candidate set
// through the indexes (see Constraint.hints) and never lock the store.
type typeSnapshot struct {
	version uint64
	offers  []*Offer // sorted by ID
	// props records every property name present on any offer; an
	// equality hint whose right-hand side is syntactically an
	// identifier is only index-resolvable when that identifier names no
	// stored property (see indexHint.rhsProp).
	props map[string]bool
	// eq maps property + "\x00" + value key to the ID-sorted posting
	// list of offers carrying exactly that value.
	eq map[string][]*Offer
	// num maps property name to its offers sorted by numeric value.
	num map[string]*numIndex
}

// numIndex holds one property's numerically valued offers sorted
// ascending by value; vals[i] is the value of offers[i].
type numIndex struct {
	vals   []float64
	offers []*Offer
}

func buildSnapshot(b *typeBucket) *typeSnapshot {
	snap := &typeSnapshot{
		version: b.version,
		offers:  make([]*Offer, 0, len(b.offers)),
		props:   map[string]bool{},
		eq:      map[string][]*Offer{},
		num:     map[string]*numIndex{},
	}
	for _, o := range b.offers {
		snap.offers = append(snap.offers, o)
	}
	sort.Slice(snap.offers, func(i, j int) bool { return snap.offers[i].ID < snap.offers[j].ID })
	for _, o := range snap.offers { // ID order keeps posting lists sorted
		for name, lit := range o.Props {
			snap.props[name] = true
			v := litVal(lit)
			if key, ok := v.key(); ok {
				k := name + "\x00" + key
				snap.eq[k] = append(snap.eq[k], o)
			}
			// NaN values satisfy no ordered predicate and would break
			// the sorted-array invariant; leave them out of the range
			// index (the equality index keeps them, harmlessly).
			if v.kind == cvNum && !math.IsNaN(v.num) {
				ni := snap.num[name]
				if ni == nil {
					ni = &numIndex{}
					snap.num[name] = ni
				}
				ni.vals = append(ni.vals, v.num)
				ni.offers = append(ni.offers, o)
			}
		}
	}
	for _, ni := range snap.num {
		sort.Sort(ni)
	}
	return snap
}

func (ni *numIndex) Len() int           { return len(ni.vals) }
func (ni *numIndex) Less(i, j int) bool { return ni.vals[i] < ni.vals[j] }
func (ni *numIndex) Swap(i, j int) {
	ni.vals[i], ni.vals[j] = ni.vals[j], ni.vals[i]
	ni.offers[i], ni.offers[j] = ni.offers[j], ni.offers[i]
}

// rangeOf returns the slice of offers satisfying "value op x".
func (ni *numIndex) rangeOf(op string, x float64) []*Offer {
	geq := sort.SearchFloat64s(ni.vals, x) // first index with val >= x
	gt := sort.Search(len(ni.vals), func(i int) bool { return ni.vals[i] > x })
	switch op {
	case "<":
		return ni.offers[:geq]
	case "<=":
		return ni.offers[:gt]
	case ">":
		return ni.offers[gt:]
	case ">=":
		return ni.offers[geq:]
	}
	return nil
}

// candidates narrows the snapshot to offers that can possibly satisfy
// the constraint, using the most selective applicable index hint, and
// reports which index kind answered ("eq", "range", or "scan"). The
// result is a superset of the matching offers — every hint is a
// necessary condition — so the caller still evaluates the full
// constraint on each candidate.
func (snap *typeSnapshot) candidates(c *Constraint) ([]*Offer, string) {
	best := snap.offers
	kind := "scan"
	for _, h := range c.hints() {
		if h.rhsProp != "" && snap.props[h.rhsProp] {
			// The "literal" side names a real property of some offer in
			// this snapshot, so it does not uniformly resolve to an enum
			// symbol; the posting list would not be a superset.
			continue
		}
		var cand []*Offer
		var k string
		if h.op == "==" {
			key, ok := h.val.key()
			if !ok {
				continue
			}
			cand, k = snap.eq[h.prop+"\x00"+key], "eq"
		} else {
			if h.val.kind != cvNum {
				continue
			}
			ni := snap.num[h.prop]
			if ni == nil {
				return nil, "range" // no numeric values: nothing can match
			}
			cand, k = ni.rangeOf(h.op, h.val.num), "range"
		}
		if len(cand) < len(best) || kind == "scan" {
			best, kind = cand, k
		}
	}
	return best, kind
}
