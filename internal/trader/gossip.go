package trader

import (
	"context"
	"sort"
	"time"
)

// SummaryEntry advertises one service type: how many offers the sender
// can reach and how many additional federation hops away they are
// (0 = stored at the sender itself).
type SummaryEntry struct {
	Type  string
	Count int
	Hops  int
}

// OfferSummary is one trader's compact advertisement of the service
// types it can answer imports for. Summaries are exchanged between
// linked traders (see Trader.GossipRound) so federatedMatches can route
// an import only to peers that plausibly hold the requested type
// instead of scattering to every link.
type OfferSummary struct {
	// From is the advertising trader's federation identity.
	From string
	// Gen orders summaries from the same sender; receivers drop
	// generations older than the one they hold. It is the sender's
	// clock, so it stays monotonic across restarts.
	Gen uint64
	// Entries lists the advertised types, sorted by name.
	Entries []SummaryEntry
}

// SummaryPeer is the optional Federate extension for offer-summary
// gossip: both *Trader (in-process links) and *Client (remote links)
// implement it. A push doubles as a pull — the receiver stores the
// caller's summary and replies with its own, so one round of pushes
// over a link populates routing state on both ends, and an asymmetric
// link still learns its peer's summary from the reply.
type SummaryPeer interface {
	ExchangeSummary(ctx context.Context, s OfferSummary) (OfferSummary, error)
}

// defaultGossipHorizon bounds how far reachability is re-advertised: a
// trader advertises its own offers (hop 0) and what its direct links
// advertised as their own (hop 1). Deeper relaying would let stale
// counts circulate through cycles.
const defaultGossipHorizon = 2

// defaultSummaryTTL is how long a received summary steers routing
// before the link degrades to unknown coverage (see WithSummaryTTL).
const defaultSummaryTTL = 30 * time.Second

// Summary builds this trader's current offer summary: its own stored
// types at hop 0 plus, within the horizon, the types its links
// advertise, re-advertised one hop further. horizon <= 0 means the
// default (own offers plus direct links).
func (t *Trader) Summary(horizon int) OfferSummary {
	if horizon <= 0 {
		horizon = defaultGossipHorizon
	}
	now := t.now()
	type agg struct {
		count int
		hops  int
	}
	types := map[string]agg{}
	for name, count := range t.store.typeCounts(now) {
		types[name] = agg{count: count, hops: 0}
	}
	if horizon > 1 {
		for _, l := range t.mesh.snapshot() {
			sum, at := l.summarySnapshot()
			if sum == nil || (t.summaryTTL > 0 && now.Sub(at) > t.summaryTTL) {
				continue
			}
			for _, e := range sum.Entries {
				h := e.Hops + 1
				if h > horizon-1 {
					continue
				}
				cur, ok := types[e.Type]
				if !ok {
					types[e.Type] = agg{count: e.Count, hops: h}
					continue
				}
				cur.count += e.Count
				if h < cur.hops {
					cur.hops = h
				}
				types[e.Type] = cur
			}
		}
	}
	s := OfferSummary{From: t.id, Gen: uint64(now.UnixNano())}
	for name, a := range types {
		s.Entries = append(s.Entries, SummaryEntry{Type: name, Count: a.count, Hops: a.hops})
	}
	sort.Slice(s.Entries, func(i, j int) bool { return s.Entries[i].Type < s.Entries[j].Type })
	return s
}

// ExchangeSummary implements SummaryPeer for in-process links: it
// stores the caller's summary against the matching link (if any) and
// replies with this trader's own summary.
func (t *Trader) ExchangeSummary(_ context.Context, s OfferSummary) (OfferSummary, error) {
	t.acceptSummary(s)
	return t.Summary(t.gossipHorizon), nil
}

// acceptSummary records a peer's summary on the link that reaches it.
// Summaries from traders this one has no link to are dropped: routing
// state is only useful for peers an import could be forwarded to.
func (t *Trader) acceptSummary(s OfferSummary) {
	if s.From == "" {
		return
	}
	if l, ok := t.mesh.byPeer(s.From); ok {
		if l.setSummary(&s, t.now()) {
			t.metrics.gossip.With("accepted").Inc()
		} else {
			t.metrics.gossip.With("stale").Inc()
		}
	}
}

// GossipRound pushes this trader's offer summary to every link whose
// peer speaks summary gossip and stores the summaries they reply with.
// One round therefore refreshes this trader's routing state for all its
// links. Push failures feed the per-link breakers and are reported in
// the returned count of failed pushes; timeout bounds each push
// (<= 0 means no per-push bound beyond ctx).
func (t *Trader) GossipRound(ctx context.Context, timeout time.Duration) (pushed, failed int) {
	mine := t.Summary(t.gossipHorizon)
	for _, l := range t.mesh.snapshot() {
		peer, ok := l.peer.(SummaryPeer)
		if !ok {
			continue
		}
		if l.br.Allow(t.now()) != nil {
			continue // failing fast; the cooldown probe will retry
		}
		pctx, cancel := ctx, context.CancelFunc(func() {})
		if timeout > 0 {
			pctx, cancel = context.WithTimeout(ctx, timeout)
		}
		theirs, err := peer.ExchangeSummary(pctx, mine)
		cancel()
		if err != nil {
			failed++
			t.metrics.gossip.With("push_error").Inc()
			if l.fail(t.now()) {
				t.event("link_down", "link", l.name, "err", err.Error())
			}
			continue
		}
		pushed++
		l.seen(t.now())
		if theirs.From != "" {
			if l.setSummary(&theirs, t.now()) {
				t.metrics.gossip.With("accepted").Inc()
			} else {
				t.metrics.gossip.With("stale").Inc()
			}
		}
	}
	return pushed, failed
}

// Gossiper periodically runs summary gossip rounds for one trader.
type Gossiper struct {
	t        *Trader
	interval time.Duration
	timeout  time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// NewGossiper returns a gossiper pushing every interval, bounding each
// push to timeout (defaults to interval when <= 0). Call Start.
func NewGossiper(t *Trader, interval, timeout time.Duration) *Gossiper {
	if timeout <= 0 {
		timeout = interval
	}
	return &Gossiper{
		t:        t,
		interval: interval,
		timeout:  timeout,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the gossip loop.
func (g *Gossiper) Start() {
	go func() {
		defer close(g.done)
		ticker := time.NewTicker(g.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), g.interval)
				g.t.GossipRound(ctx, g.timeout)
				cancel()
			case <-g.stop:
				return
			}
		}
	}()
}

// Close stops the gossip loop and waits for it to exit.
func (g *Gossiper) Close() {
	close(g.stop)
	<-g.done
}
