package trader

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"cosm/internal/journal"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
)

// syncUp pulls from leader into follower until the follower has
// applied the leader's whole log.
func syncUp(t *testing.T, leader, follower *Trader, id string) {
	t.Helper()
	for {
		b, err := leader.PullBatch(context.Background(), id, follower.Epoch(), follower.ReplApplied(), 512, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := follower.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if follower.ReplApplied() >= b.LastSeq {
			return
		}
	}
}

// TestReplicationEquivalence replicates a full mutation history from a
// journalled leader to a journalled follower via the pull protocol and
// requires byte-identical import results — then restarts the follower
// from its own journal and requires the same again (replication is
// WAL-first on the follower too).
func TestReplicationEquivalence(t *testing.T) {
	ctx := context.Background()
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()

	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := leader.Export("CarRentalService", carRef(i), carProps("FIAT_Uno", float64(50+i), "USD"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := leader.Withdraw(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := leader.Replace(ids[1], carProps("AUDI", 200, "GBP")); err != nil {
		t.Fatal(err)
	}
	if err := leader.MarkSuspect(ids[2], true); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	follower, fj := newDurableTrader(t, "L", fdir, journal.Options{Fsync: journal.FsyncAlways})
	follower.SetFollower("cosm://leader")
	syncUp(t, leader, follower, "f1")

	req := ImportRequest{Type: "CarRentalService"}
	want, err := leader.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offersJSON(t, got), offersJSON(t, want)) {
		t.Fatalf("follower import differs:\n got %s\nwant %s", offersJSON(t, got), offersJSON(t, want))
	}

	// Restart the follower from its own journal (simulated crash).
	fj.Close()
	follower2, fj2 := newDurableTrader(t, "L", fdir, journal.Options{Fsync: journal.FsyncAlways})
	defer fj2.Close()
	got2, err := follower2.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offersJSON(t, got2), offersJSON(t, want)) {
		t.Fatalf("recovered follower import differs:\n got %s\nwant %s", offersJSON(t, got2), offersJSON(t, want))
	}
	if follower2.ReplApplied() != follower.ReplApplied() {
		t.Fatalf("recovered pull position %d, want %d", follower2.ReplApplied(), follower.ReplApplied())
	}
}

// TestReplSnapshotCatchUp compacts the leader's journal so a fresh
// follower is behind the watermark: its first pull must ship a full
// snapshot, and subsequent pulls resume with records.
func TestReplSnapshotCatchUp(t *testing.T) {
	ctx := context.Background()
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()

	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := leader.Export("CarRentalService", carRef(i), carProps("VW_Golf", float64(40+i), "USD")); err != nil {
			t.Fatal(err)
		}
	}
	if err := lj.Compact(); err != nil {
		t.Fatal(err)
	}

	follower, fj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer fj.Close()
	follower.SetFollower("cosm://leader")

	b, err := leader.PullBatch(ctx, "f1", 0, 0, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot == nil {
		t.Fatal("expected a snapshot batch for a follower behind the watermark")
	}
	if _, err := follower.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	syncUp(t, leader, follower, "f1")

	// Post-snapshot records still flow.
	if _, err := leader.Export("CarRentalService", carRef(99), carProps("AUDI", 150, "DEM")); err != nil {
		t.Fatal(err)
	}
	syncUp(t, leader, follower, "f1")

	req := ImportRequest{Type: "CarRentalService"}
	want, _ := leader.Import(ctx, req)
	got, _ := follower.Import(ctx, req)
	if !bytes.Equal(offersJSON(t, got), offersJSON(t, want)) {
		t.Fatalf("follower import differs after snapshot catch-up")
	}
	if n := follower.OfferCount(); n != 11 {
		t.Fatalf("follower offers = %d, want 11", n)
	}
}

// TestFollowerRejectsMutations: a follower serves imports locally but
// refuses every mutation with ErrNotLeader carrying the leader hint.
func TestFollowerRejectsMutations(t *testing.T) {
	tr := New("T", typemgr.NewRepo())
	if err := tr.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	tr.SetFollower("cosm://10.0.0.1:7001/svc")

	_, err := tr.Export("CarRentalService", carRef(1), carProps("AUDI", 100, "USD"))
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Export on follower: %v, want ErrNotLeader", err)
	}
	if !strings.Contains(err.Error(), "leader at cosm://10.0.0.1:7001/svc") {
		t.Fatalf("error %q lacks leader hint", err)
	}
	if err := tr.Withdraw("T/o1"); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Withdraw on follower: %v", err)
	}
	if err := tr.DefineTypeSIDL(sidl.CarRentalIDL); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("DefineTypeSIDL on follower: %v", err)
	}
	if _, err := tr.Import(context.Background(), ImportRequest{Type: "CarRentalService"}); err != nil {
		t.Fatalf("Import on follower must work locally: %v", err)
	}
	if got := tr.Role(); got != RoleFollower {
		t.Fatalf("Role = %q", got)
	}
}

// TestPromotionAndFencing: promoting a follower raises the epoch and
// re-enables mutations; a stale promotion is rejected; the deposed
// leader self-demotes when it sees the higher epoch, and batches from
// it are fenced on the follower side.
func TestPromotionAndFencing(t *testing.T) {
	ctx := context.Background()
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()
	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}

	fdir := t.TempDir()
	follower, fj := newDurableTrader(t, "L", fdir, journal.Options{Fsync: journal.FsyncAlways})
	defer fj.Close()
	follower.SetFollower("cosm://leader")
	syncUp(t, leader, follower, "f1")

	// Stale promotion (epoch not past current) is rejected.
	if err := follower.Promote(0); err == nil {
		t.Fatal("Promote(0) succeeded, want stale-epoch rejection")
	}
	if err := follower.Promote(1); err != nil {
		t.Fatal(err)
	}
	if follower.Role() != RoleLeader || follower.Epoch() != 1 {
		t.Fatalf("after promote: role=%s epoch=%d", follower.Role(), follower.Epoch())
	}
	if _, err := follower.Export("CarRentalService", carRef(7), carProps("AUDI", 90, "USD")); err != nil {
		t.Fatalf("export on promoted leader: %v", err)
	}

	// The promoted epoch survives a restart (it is journalled).
	fj.Close()
	follower2, fj2 := newDurableTrader(t, "L", fdir, journal.Options{Fsync: journal.FsyncAlways})
	defer fj2.Close()
	if follower2.Epoch() != 1 {
		t.Fatalf("recovered epoch = %d, want 1", follower2.Epoch())
	}

	// The deposed leader sees the higher epoch on a pull and demotes.
	if _, err := leader.PullBatch(ctx, "f2", 1, 0, 512, 0); err == nil {
		t.Fatal("deposed leader accepted a pull at a higher epoch")
	}
	if leader.Role() != RoleFollower {
		t.Fatalf("deposed leader role = %s, want follower", leader.Role())
	}
	if _, err := leader.Export("CarRentalService", carRef(8), carProps("AUDI", 90, "USD")); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("deposed leader export: %v, want ErrNotLeader", err)
	}

	// A batch carrying a stale epoch is fenced by the receiver.
	if _, err := follower2.ApplyBatch(&ReplBatch{Epoch: 0, LastSeq: 1}); err == nil {
		t.Fatal("ApplyBatch accepted a batch below the local epoch")
	}
}

// TestReplSyncAck: with WithReplSync(1, ...) an export only returns
// once a follower has pulled past its record — and fails with a
// timeout when no follower ever does.
func TestReplSyncAck(t *testing.T) {
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways},
		WithReplSync(1, 300*time.Millisecond))
	defer lj.Close()
	// Type definitions replicate too, so even DefineTypeSIDL waits;
	// run the follower loop first.
	follower, fjr := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer fjr.Close()
	follower.SetFollower("cosm://leader")
	fl := NewFollower(follower, leader, "f1")
	fl.Start()

	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	id, err := leader.Export("CarRentalService", carRef(1), carProps("AUDI", 100, "USD"))
	if err != nil {
		t.Fatal(err)
	}

	// The acked export is already on the follower.
	deadline := time.Now().Add(2 * time.Second)
	for follower.ReplApplied() < leader.Status().LastSeq {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	offers, err := follower.Import(context.Background(), ImportRequest{Type: "CarRentalService"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].ID != id {
		t.Fatalf("follower offers = %v", offers)
	}
	fl.Close()

	// With the follower stopped, the next acked mutation times out.
	if _, err := leader.Export("CarRentalService", carRef(2), carProps("AUDI", 100, "USD")); err == nil {
		t.Fatal("export succeeded without any follower ack")
	} else if !strings.Contains(err.Error(), "followers acked") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestReplLagMetrics: the lag gauges see a follower fall behind and
// recover.
func TestReplLagMetrics(t *testing.T) {
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()
	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	follower, fj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer fj.Close()
	follower.SetFollower("cosm://leader")
	syncUp(t, leader, follower, "f1")
	if lag := follower.replLagRecords(); lag != 0 {
		t.Fatalf("caught-up lag = %d", lag)
	}

	for i := 0; i < 3; i++ {
		if _, err := leader.Export("CarRentalService", carRef(i), carProps("AUDI", 100, "USD")); err != nil {
			t.Fatal(err)
		}
	}
	// One empty pull refreshes the follower's view of the leader tail
	// without applying anything new past it.
	b, err := leader.PullBatch(context.Background(), "f1", follower.Epoch(), follower.ReplApplied(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if lag := follower.replLagRecords(); lag != 2 {
		t.Fatalf("lag = %d, want 2", lag)
	}
	syncUp(t, leader, follower, "f1")
	if lag := follower.replLagRecords(); lag != 0 {
		t.Fatalf("post-sync lag = %d", lag)
	}
	if leader.replLagRecords() != 0 {
		t.Fatal("leader reports replication lag")
	}
}

// TestReplBootstrapSnapshotCarriesPreloads: state that exists only in
// the leader's boot snapshot — service types preloaded outside the
// journal, compacted at watermark 0 — must reach a brand-new follower;
// record replay alone would silently miss it.
func TestReplBootstrapSnapshotCarriesPreloads(t *testing.T) {
	ctx := context.Background()
	repo := typemgr.NewRepo()
	carType, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.DefineWithSource(carType, sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	leader := New("L", repo)
	lj, err := journal.Open(t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer lj.Close()
	if err := lj.Start(leader.JournalSnapshot); err != nil {
		t.Fatal(err)
	}
	leader.SetJournal(lj)
	// The daemon's boot-time compaction: the preloaded type exists only
	// in this snapshot, at watermark 0.
	if err := lj.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := leader.Export("CarRentalService", carRef(i), carProps("AUDI", 100, "USD")); err != nil {
			t.Fatal(err)
		}
	}

	follower := New("L", typemgr.NewRepo())
	follower.SetFollower("cosm://leader")
	b, err := leader.PullBatch(ctx, "f1", 0, 0, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot == nil {
		t.Fatal("fresh follower did not get a bootstrap snapshot")
	}
	if _, err := follower.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	syncUp(t, leader, follower, "f1")

	if _, err := follower.Types().Lookup("CarRentalService"); err != nil {
		t.Fatalf("preloaded type missing on follower: %v", err)
	}
	offers, err := follower.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || len(offers) != 2 {
		t.Fatalf("follower import = %d offers, %v", len(offers), err)
	}
}

// TestReplSnapshotSeesUnackedWrites: with synchronous replication a
// mutation sits journalled-but-blocked until a follower acks it. A
// bootstrap snapshot cut during that window used to miss the offer
// while claiming a watermark that covered its record — the follower
// came up "caught up" and empty. The snapshot must include every
// journalled record its watermark covers.
func TestReplSnapshotSeesUnackedWrites(t *testing.T) {
	ctx := context.Background()
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()
	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	// The daemon's boot-time compaction, so bootstrap pulls take the
	// snapshot path. Synchronous replication goes on after the preload —
	// a real leader has its followers by the time it serves mutations.
	if err := lj.Compact(); err != nil {
		t.Fatal(err)
	}
	WithReplSync(1, 5*time.Second)(leader)

	exported := make(chan error, 1)
	go func() {
		_, err := leader.Export("CarRentalService", carRef(1), carProps("AUDI", 90, "USD"))
		exported <- err
	}()
	// Wait until the export's record is journalled (it then blocks in
	// waitReplicated until our pull below acks it).
	deadline := time.Now().Add(2 * time.Second)
	for lj.Stats().LastSeq == lj.Stats().SnapshotSeq {
		if time.Now().After(deadline) {
			t.Fatal("export record never reached the journal")
		}
		time.Sleep(time.Millisecond)
	}

	follower := New("L", typemgr.NewRepo())
	follower.SetFollower("cosm://leader")
	b, err := leader.PullBatch(ctx, "f1", 0, 0, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot == nil {
		t.Fatal("bootstrap pull did not ship a snapshot")
	}
	if _, err := follower.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	syncUp(t, leader, follower, "f1") // acks the export's seq

	if err := <-exported; err != nil {
		t.Fatalf("export: %v", err)
	}
	offers, err := follower.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || len(offers) != 1 {
		t.Fatalf("follower import = %d offers, %v: snapshot missed an unacked write", len(offers), err)
	}
}
