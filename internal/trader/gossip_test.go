package trader

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSummaryAdvertisesOwnOffers(t *testing.T) {
	tr := New("A", newCarRepo(t))
	for i := 1; i <= 3; i++ {
		if _, err := tr.Export("CarRentalService", carRef(i), carProps("AUDI", 50, "USD")); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Summary(0)
	if s.From != "A" || s.Gen == 0 {
		t.Fatalf("summary header = %+v", s)
	}
	if len(s.Entries) != 1 {
		t.Fatalf("entries = %+v, want one type", s.Entries)
	}
	e := s.Entries[0]
	if e.Type != "CarRentalService" || e.Count != 3 || e.Hops != 0 {
		t.Fatalf("entry = %+v, want {CarRentalService 3 0}", e)
	}
}

// A summary relays what direct links advertised as their own, one hop
// further — but no deeper than the horizon.
func TestSummaryRelaysWithinHorizon(t *testing.T) {
	ctx := context.Background()
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	c := New("C", newCarRepo(t))
	mustLink(t, a, "b", b)
	mustLink(t, b, "c", c)
	if _, err := c.Export("CarRentalService", carRef(1), carProps("VW_Golf", 70, "DEM")); err != nil {
		t.Fatal(err)
	}

	// B learns C's summary, then A learns B's (which relays C's entry).
	if pushed, failed := b.GossipRound(ctx, time.Second); pushed != 1 || failed != 0 {
		t.Fatalf("b gossip: pushed %d failed %d", pushed, failed)
	}
	if pushed, failed := a.GossipRound(ctx, time.Second); pushed != 1 || failed != 0 {
		t.Fatalf("a gossip: pushed %d failed %d", pushed, failed)
	}

	links := a.Links()
	if len(links) != 1 {
		t.Fatalf("a links = %+v", links)
	}
	li := links[0]
	if li.SummaryTypes != 1 || li.Hops != 2 {
		t.Fatalf("link info = %+v, want C's type relayed at hop distance 2", li)
	}

	// Hop budget 2 can reach C through B; hop budget 1 cannot, and the
	// summary says so — the plan consults nobody.
	before := a.FedStats()
	offers, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 2})
	if err != nil || len(offers) != 1 {
		t.Fatalf("hop-2 import = %+v, %v", offers, err)
	}
	if asked := a.FedStats().PeersAsked - before.PeersAsked; asked != 1 {
		t.Fatalf("hop-2 peers asked = %d, want 1", asked)
	}
	before = a.FedStats()
	offers, err = a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil || len(offers) != 0 {
		t.Fatalf("hop-1 import = %+v, %v", offers, err)
	}
	if asked := a.FedStats().PeersAsked - before.PeersAsked; asked != 0 {
		t.Fatalf("hop-1 peers asked = %d, want 0 (entry out of hop budget)", asked)
	}
}

// A gossip exchange populates routing state on both ends of the link.
func TestGossipExchangeIsBidirectional(t *testing.T) {
	ctx := context.Background()
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	mustLink(t, a, "b", b)
	mustLink(t, b, "a", a)
	if _, err := a.Export("CarRentalService", carRef(1), carProps("AUDI", 50, "USD")); err != nil {
		t.Fatal(err)
	}

	// One round from A: A pushes to B (B stores it) and stores B's reply.
	if pushed, _ := a.GossipRound(ctx, time.Second); pushed != 1 {
		t.Fatalf("pushed = %d", pushed)
	}
	if li := a.Links()[0]; li.SummaryGen == 0 {
		t.Fatalf("a's link learned nothing: %+v", li)
	}
	if li := b.Links()[0]; li.SummaryGen == 0 || li.SummaryTypes != 1 {
		t.Fatalf("b's link learned nothing from the push: %+v", li)
	}
}

func TestAcceptSummaryDropsStaleGenerations(t *testing.T) {
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	mustLink(t, a, "b", b)

	a.acceptSummary(OfferSummary{From: "B", Gen: 10,
		Entries: []SummaryEntry{{Type: "CarRentalService", Count: 2, Hops: 0}}})
	if li := a.Links()[0]; li.SummaryGen != 10 {
		t.Fatalf("gen = %d, want 10", li.SummaryGen)
	}
	// Older generation: dropped.
	a.acceptSummary(OfferSummary{From: "B", Gen: 5, Entries: nil})
	if li := a.Links()[0]; li.SummaryGen != 10 || li.SummaryTypes != 1 {
		t.Fatalf("stale generation overwrote state: %+v", li)
	}
	// Same generation: accepted (refresh).
	a.acceptSummary(OfferSummary{From: "B", Gen: 10, Entries: nil})
	if li := a.Links()[0]; li.SummaryTypes != 0 {
		t.Fatalf("equal generation not accepted: %+v", li)
	}
	// Unknown sender: ignored entirely.
	a.acceptSummary(OfferSummary{From: "nobody", Gen: 99})
	if li := a.Links()[0]; li.SummaryGen != 10 {
		t.Fatalf("summary from unlinked sender changed state: %+v", li)
	}
}

// Past the TTL a summary no longer rules a peer out: the link degrades
// to unknown coverage and full fan-out resumes.
func TestSummaryTTLFallsBackToFullFanOut(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	base := time.Now()
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return base
	}
	advance := func(d time.Duration) {
		mu.Lock()
		base = base.Add(d)
		mu.Unlock()
	}

	hub := New("hub", newCarRepo(t), WithClock(clock))
	p1 := New("P1", newCarRepo(t))
	p2 := New("P2", newCarRepo(t))
	if _, err := p1.Export("CarRentalService", carRef(1), carProps("AUDI", 50, "USD")); err != nil {
		t.Fatal(err)
	}
	mustLink(t, hub, "p1", p1)
	mustLink(t, hub, "p2", p2)

	if pushed, failed := hub.GossipRound(ctx, time.Second); pushed != 2 || failed != 0 {
		t.Fatalf("gossip: pushed %d failed %d", pushed, failed)
	}

	// Fresh summaries: routed, one peer consulted.
	before := hub.FedStats()
	if _, err := hub.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1}); err != nil {
		t.Fatal(err)
	}
	if asked := hub.FedStats().PeersAsked - before.PeersAsked; asked != 1 {
		t.Fatalf("fresh peers asked = %d, want 1", asked)
	}

	// Stale summaries: both links degrade to unknown, full fan-out.
	advance(defaultSummaryTTL + time.Second)
	before = hub.FedStats()
	if _, err := hub.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1}); err != nil {
		t.Fatal(err)
	}
	after := hub.FedStats()
	if asked := after.PeersAsked - before.PeersAsked; asked != 2 {
		t.Fatalf("stale peers asked = %d, want 2 (full fan-out)", asked)
	}
	if after.Full != before.Full+1 {
		t.Fatalf("full fan-outs = %d, want %d", after.Full, before.Full+1)
	}
}

func TestGossiperPeriodicRounds(t *testing.T) {
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	mustLink(t, a, "b", b)
	if _, err := b.Export("CarRentalService", carRef(1), carProps("AUDI", 50, "USD")); err != nil {
		t.Fatal(err)
	}

	g := NewGossiper(a, 5*time.Millisecond, time.Second)
	g.Start()
	defer g.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if li := a.Links()[0]; li.SummaryGen != 0 {
			return // the background loop delivered a summary
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("gossiper delivered no summary within 2s")
}
