package trader

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"cosm/internal/journal"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
)

// newDurableTrader opens (or re-opens) a journalled trader over dir:
// recovery first — snapshot, then record replay — and only then the
// journal is started and attached, mirroring the daemon boot order.
func newDurableTrader(t *testing.T, id, dir string, opts journal.Options, topts ...Option) (*Trader, *journal.Journal) {
	t.Helper()
	tr := New(id, typemgr.NewRepo(), topts...)
	j, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if snap, ok := j.Snapshot(); ok {
		if err := tr.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Replay(tr.ReplayRecord); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(tr.JournalSnapshot); err != nil {
		t.Fatal(err)
	}
	tr.SetJournal(j)
	return tr, j
}

// offersJSON renders import results in canonical journal form; byte
// equality of two renderings is the recovery acceptance criterion.
func offersJSON(t *testing.T, offers []*Offer) []byte {
	t.Helper()
	recs := make([]OfferRecord, len(offers))
	for i, o := range offers {
		recs[i] = offerToRecord(o)
	}
	b, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDurableCrashRecoveryEquivalence drives a journalled trader
// through the full mutation surface, abandons it without any shutdown
// (the in-process stand-in for kill -9; fsync=always makes every append
// durable), recovers a fresh trader from the same directory, and
// requires byte-identical import results.
func TestDurableCrashRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	tr1, _ := newDurableTrader(t, "T", dir, journal.Options{Fsync: journal.FsyncAlways})

	if err := tr1.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 8; i++ {
		id, err := tr1.Export("CarRentalService", carRef(i), carProps("FIAT_Uno", float64(50+i), "USD"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	leased, err := tr1.ExportLease("CarRentalService", carRef(50), carProps("AUDI", 120, "DEM"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := tr1.ExportAll([]ExportItem{
		{Type: "CarRentalService", Ref: carRef(60), Props: carProps("VW_Golf", 66, "USD")},
		{Type: "CarRentalService", Ref: carRef(61), Props: carProps("VW_Golf", 77, "USD"), TTL: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr1.Withdraw(ids[0]); err != nil {
		t.Fatal(err)
	}
	if n := tr1.WithdrawAll([]string{ids[1], "T/o999"}); n != 1 {
		t.Fatalf("WithdrawAll = %d", n)
	}
	if err := tr1.Replace(ids[2], carProps("AUDI", 200, "GBP")); err != nil {
		t.Fatal(err)
	}
	if err := tr1.MarkSuspect(ids[3], true); err != nil {
		t.Fatal(err)
	}
	_ = leased

	req := ImportRequest{Type: "CarRentalService"}
	before, err := tr1.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: no Close, no Sync — tr1 and its journal are simply
	// abandoned, as a killed process would leave them.
	tr2, j2 := newDurableTrader(t, "T", dir, journal.Options{Fsync: journal.FsyncAlways})
	defer j2.Close()

	after, err := tr2.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := offersJSON(t, after), offersJSON(t, before); !bytes.Equal(got, want) {
		t.Fatalf("recovered import differs:\n got %s\nwant %s", got, want)
	}

	// Constrained import must also survive byte-identically.
	creq := ImportRequest{Type: "CarRentalService", Constraint: "ChargePerDay > 60 && ChargeCurrency == USD"}
	cb, err := tr1.Import(ctx, creq)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := tr2.Import(ctx, creq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offersJSON(t, ca), offersJSON(t, cb)) {
		t.Fatalf("constrained import differs after recovery")
	}

	// The recovered ID counter must continue past every recovered
	// offer: a fresh export may not collide.
	newID, err := tr2.Export("CarRentalService", carRef(70), carProps("AUDI", 90, "USD"))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range append(append([]string{}, ids...), batch...) {
		if newID == old {
			t.Fatalf("post-recovery export reused ID %q", newID)
		}
	}
}

// TestDurableRecoveryAfterCompaction folds part of the history into a
// snapshot, keeps mutating, crashes, and checks the snapshot+tail
// replay reproduces the live state.
func TestDurableRecoveryAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := journal.Options{Fsync: journal.FsyncAlways, SegmentSize: 256}
	tr1, j1 := newDurableTrader(t, "T", dir, opts)
	if err := tr1.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := tr1.Export("CarRentalService", carRef(i), carProps("FIAT_Uno", float64(40+i), "USD"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := j1.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail: these exist only as log records.
	if err := tr1.Withdraw(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := tr1.MarkSuspect(ids[2], true); err != nil {
		t.Fatal(err)
	}
	if _, err := tr1.Export("CarRentalService", carRef(90), carProps("AUDI", 140, "DEM")); err != nil {
		t.Fatal(err)
	}

	before := offersJSON(t, tr1.Offers())

	tr2, j2 := newDurableTrader(t, "T", dir, opts)
	defer j2.Close()
	if got := offersJSON(t, tr2.Offers()); !bytes.Equal(got, before) {
		t.Fatalf("recovered offers differ:\n got %s\nwant %s", got, before)
	}
}

// TestDurablePurgeReplay checks lease purges replay deterministically:
// the purge record carries its absolute instant, so recovery reclaims
// exactly the offers the live trader did — no more, regardless of the
// clock at recovery time.
func TestDurablePurgeReplay(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	tr1, _ := newDurableTrader(t, "T", dir, journal.Options{Fsync: journal.FsyncAlways}, WithClock(clock))
	if err := tr1.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	short, err := tr1.ExportLease("CarRentalService", carRef(1), carProps("FIAT_Uno", 50, "USD"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	long, err := tr1.ExportLease("CarRentalService", carRef(2), carProps("AUDI", 120, "DEM"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if n := tr1.PurgeExpired(); n != 1 {
		t.Fatalf("PurgeExpired = %d", n)
	}

	tr2, j2 := newDurableTrader(t, "T", dir, journal.Options{Fsync: journal.FsyncAlways}, WithClock(clock))
	defer j2.Close()
	if _, ok := tr2.store.lookup(short); ok {
		t.Fatalf("purged offer %q resurrected by recovery", short)
	}
	if _, ok := tr2.store.lookup(long); !ok {
		t.Fatalf("live offer %q lost in recovery", long)
	}
}

// TestDurableTypeLifecycle journals type definition and removal through
// two crash/recover cycles.
func TestDurableTypeLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := journal.Options{Fsync: journal.FsyncAlways}

	tr1, _ := newDurableTrader(t, "T", dir, opts)
	if err := tr1.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}

	tr2, j2 := newDurableTrader(t, "T", dir, opts)
	if _, err := tr2.Types().Lookup("CarRentalService"); err != nil {
		t.Fatalf("type lost in recovery: %v", err)
	}
	if err := tr2.RemoveType("CarRentalService"); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	tr3, j3 := newDurableTrader(t, "T", dir, opts)
	defer j3.Close()
	if _, err := tr3.Types().Lookup("CarRentalService"); err == nil {
		t.Fatal("removed type resurrected by recovery")
	}
}

// TestUnjournalledTraderUnaffected pins the default: with no journal
// attached, mutations take no durability branches and leave no files.
func TestUnjournalledTraderUnaffected(t *testing.T) {
	tr := New("T", newCarRepo(t))
	if tr.journalled() {
		t.Fatal("fresh trader reports a journal")
	}
	id, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 80, "USD"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw(id); err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw(id); err == nil {
		t.Fatal("second withdraw should fail")
	}
}
