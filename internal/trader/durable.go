package trader

// Durable market state: the trader journals every offer-store and
// type-repo mutation as a logical JSON record into an attached
// write-ahead journal (internal/journal) and can rebuild itself from a
// snapshot plus a record replay. Replay goes through the store API, so
// PR 4's per-type snapshots, attribute indexes and caches rebuild
// naturally — recovery produces the same matching state a live trader
// would have.
//
// Ordering discipline: offer mutations are journalled before they are
// applied (classic WAL — a crash may lose the in-memory effect but
// never the record), after validation has passed so the log carries no
// rejected operations. Type mutations validate-and-apply inside the
// repo, then journal. All records are idempotent state setters: a
// compaction snapshot may be slightly newer than its watermark, so the
// records spanning the snapshot instant replay over state that already
// contains them.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cosm/internal/journal"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
)

// Journal record operations.
const (
	opExport      = "export"
	opWithdraw    = "withdraw"
	opWithdrawAll = "withdraw_all"
	opReplace     = "replace"
	opSuspect     = "suspect"
	opPurge       = "purge"
	opDefineType  = "deftype"
	opRemoveType  = "removetype"
	opEpoch       = "epoch"
	// opVote records an election vote pledge. It lives in the per-node
	// vote ledger (votelog.go), never in the replicated journal — votes
	// are per-node facts — but ReplayRecord still understands it, and
	// adopts it conservatively (denying extra votes is always safe).
	opVote = "vote"
)

// PropRecord is one offer property in journal form, reusing the wire
// protocol's kind/text literal encoding.
type PropRecord struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// OfferRecord is the journal form of one stored offer. Unlike the wire
// form (whole Unix seconds), expiry is kept at nanosecond precision so
// a recovered trader purges leases at exactly the instants the original
// would have.
type OfferRecord struct {
	ID      string       `json:"id"`
	Type    string       `json:"type"`
	Ref     string       `json:"ref"`
	Props   []PropRecord `json:"props,omitempty"`
	Expires int64        `json:"expires,omitempty"` // UnixNano; 0 = never
	Suspect bool         `json:"suspect,omitempty"`
}

// walRecord is one logical journal record.
type walRecord struct {
	Op      string        `json:"op"`
	Offers  []OfferRecord `json:"offers,omitempty"` // export
	IDs     []string      `json:"ids,omitempty"`    // withdraw(_all), replace, suspect
	Props   []PropRecord  `json:"props,omitempty"`  // replace
	Suspect bool          `json:"suspect,omitempty"`
	At      int64         `json:"at,omitempty"`    // purge instant, UnixNano
	SIDL    string        `json:"sidl,omitempty"`  // deftype source text
	Name    string        `json:"name,omitempty"`  // removetype
	Epoch   uint64        `json:"epoch,omitempty"` // epoch (fencing term)
}

// traderSnapshot is the compaction snapshot: the full offer store, the
// retained SIDL sources of journalled type definitions, and the offer
// ID counter.
type traderSnapshot struct {
	Seq    uint64        `json:"seq"`
	Epoch  uint64        `json:"epoch,omitempty"`
	Types  []string      `json:"types,omitempty"`
	Offers []OfferRecord `json:"offers,omitempty"`
}

func propsToRecords(props map[string]sidl.Lit) []PropRecord {
	out := make([]PropRecord, 0, len(props))
	for _, name := range sortedPropNames(props) {
		kind, text := encodeLit(props[name])
		out = append(out, PropRecord{Name: name, Kind: kind, Text: text})
	}
	return out
}

func propsFromRecords(recs []PropRecord) (map[string]sidl.Lit, error) {
	props := make(map[string]sidl.Lit, len(recs))
	for _, p := range recs {
		lit, err := decodeLit(p.Kind, p.Text)
		if err != nil {
			return nil, err
		}
		props[p.Name] = lit
	}
	return props, nil
}

func offerToRecord(o *Offer) OfferRecord {
	rec := OfferRecord{ID: o.ID, Type: o.Type, Ref: o.Ref.String(), Props: propsToRecords(o.Props), Suspect: o.Suspect}
	if !o.Expires.IsZero() {
		rec.Expires = o.Expires.UnixNano()
	}
	return rec
}

func offerFromRecord(rec OfferRecord) (*Offer, error) {
	r, err := ref.Parse(rec.Ref)
	if err != nil {
		return nil, fmt.Errorf("trader: journal offer %q: %w", rec.ID, err)
	}
	props, err := propsFromRecords(rec.Props)
	if err != nil {
		return nil, fmt.Errorf("trader: journal offer %q: %w", rec.ID, err)
	}
	o := &Offer{ID: rec.ID, Type: rec.Type, Ref: r, Props: props, Suspect: rec.Suspect}
	if rec.Expires != 0 {
		o.Expires = time.Unix(0, rec.Expires)
	}
	return o, nil
}

// Record returns the offer in its canonical durable form — sorted
// kind/text property encoding, nanosecond expiry. The journal, the
// compaction snapshot and cosmcli's dump format all share this one
// representation, so a dump of a recovered trader is comparable
// byte-for-byte with a dump of the original.
func (o *Offer) Record() OfferRecord { return offerToRecord(o) }

// OfferFromRecord reverses (*Offer).Record.
func OfferFromRecord(rec OfferRecord) (*Offer, error) { return offerFromRecord(rec) }

// SetJournal attaches a started journal: from now on every offer and
// type mutation appends a logical record before it is applied. Call it
// after recovery (RestoreSnapshot + Replay) and before serving; it is
// not safe to swap journals on a live trader.
func (t *Trader) SetJournal(j *journal.Journal) {
	t.journal = j
	if j != nil {
		// The replication position starts at the recovered log tail: on a
		// follower this is where pulling resumes, on a leader it is inert.
		t.repl.applied.Store(j.Stats().LastSeq)
		// Disk-fault demotion: a journal that latches fail-stop can no
		// longer persist acknowledged writes, so the trader immediately
		// stops leading and sheds mutations (keeping whatever leader
		// hint it has). PullBatch refuses to serve from a failed journal,
		// so followers' pulls start failing and the election monitor
		// promotes a healthy replica.
		j.SetOnFault(func(err error) {
			t.repl.follower.Store(true)
			t.event("journal_failstop", "err", err.Error())
			t.log.Log(nil, "journal_failstop", "err", err.Error())
		})
	}
}

// journalApply writes one record to the attached journal, runs apply
// (the in-memory effect of the record), and — when synchronous
// replication is configured — blocks until enough followers
// acknowledged the record's sequence number. Append and apply run
// under the apply lock so a concurrent snapshot can never capture a
// state that is missing a journalled record: the snapshot contract
// allows state ahead of the watermark (replay is idempotent), never
// behind it. The replication wait happens after the lock is released —
// it can take seconds, and a snapshot (or a bootstrapping follower's
// pull, whose ack is what the wait is for) must not block on it.
func (t *Trader) journalApply(r *walRecord, apply func()) error {
	if t.journal == nil {
		if apply != nil {
			apply()
		}
		return nil
	}
	t.applyMu.RLock()
	seq, err := t.journal.AppendJSON(r)
	if err != nil {
		t.applyMu.RUnlock()
		return fmt.Errorf("trader: journal: %w", err)
	}
	if apply != nil {
		apply()
	}
	t.applyMu.RUnlock()
	return t.waitReplicated(seq)
}

// journalled reports whether a journal is attached (i.e. whether the
// mutation paths must pay for WAL-first existence checks).
func (t *Trader) journalled() bool { return t.journal != nil }

// JournalSnapshot serialises the trader's durable state for journal
// compaction: every stored offer (expired ones included — replayed
// purge records re-reclaim them deterministically), the retained SIDL
// sources of type definitions, and the offer ID counter. Output is
// sorted for byte-stable snapshots.
func (t *Trader) JournalSnapshot() ([]byte, error) {
	// Exclude in-flight mutations: a record that is already in the
	// journal but not yet applied to the store would otherwise be
	// missing from a snapshot whose watermark covers it — and lost when
	// compaction deletes its segment, or when a follower bootstraps
	// from the snapshot.
	t.applyMu.Lock()
	defer t.applyMu.Unlock()
	snap := traderSnapshot{Seq: t.seq.Load(), Epoch: t.repl.epoch.Load()}
	sources := t.types.Sources()
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		snap.Types = append(snap.Types, sources[n])
	}
	offers := t.store.all()
	sort.Slice(offers, func(i, j int) bool { return offers[i].ID < offers[j].ID })
	for _, o := range offers {
		snap.Offers = append(snap.Offers, offerToRecord(o))
	}
	return json.Marshal(snap)
}

// RestoreSnapshot loads a compaction snapshot produced by
// JournalSnapshot into an empty trader. Call before Replay.
func (t *Trader) RestoreSnapshot(payload []byte) error {
	var snap traderSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("trader: snapshot: %w", err)
	}
	// Types may reference each other as supertypes; define in passes
	// until a fixed point so ordering never matters.
	pending := append([]string(nil), snap.Types...)
	for len(pending) > 0 {
		var stuck []string
		var lastErr error
		for _, src := range pending {
			if err := t.defineFromSIDL(src); err != nil {
				stuck = append(stuck, src)
				lastErr = err
			}
		}
		if len(stuck) == len(pending) {
			return fmt.Errorf("trader: snapshot types: %w", lastErr)
		}
		pending = stuck
	}
	for _, rec := range snap.Offers {
		o, err := offerFromRecord(rec)
		if err != nil {
			return err
		}
		t.store.insert(o)
		t.bumpSeqFromID(o.ID)
	}
	t.bumpSeq(snap.Seq)
	t.raiseEpoch(snap.Epoch)
	return nil
}

// ReplayRecord applies one journal record during recovery; pass it to
// journal.Replay. Records are idempotent, so replaying over a snapshot
// that already contains their effect is harmless.
func (t *Trader) ReplayRecord(seq uint64, payload []byte) error {
	var r walRecord
	if err := json.Unmarshal(payload, &r); err != nil {
		return fmt.Errorf("trader: journal record %d: %w", seq, err)
	}
	switch r.Op {
	case opExport:
		for _, rec := range r.Offers {
			o, err := offerFromRecord(rec)
			if err != nil {
				return err
			}
			t.store.insert(o)
			t.bumpSeqFromID(o.ID)
		}
	case opWithdraw, opWithdrawAll:
		for _, id := range r.IDs {
			t.store.remove(id)
		}
	case opReplace:
		props, err := propsFromRecords(r.Props)
		if err != nil {
			return fmt.Errorf("trader: journal record %d: %w", seq, err)
		}
		for _, id := range r.IDs {
			t.store.update(id, func(old *Offer) *Offer {
				fresh := *old
				fresh.Props = props
				return &fresh
			})
		}
	case opSuspect:
		for _, id := range r.IDs {
			t.store.update(id, func(old *Offer) *Offer {
				fresh := *old
				fresh.Suspect = r.Suspect
				return &fresh
			})
		}
	case opPurge:
		t.store.purgeExpired(time.Unix(0, r.At))
	case opDefineType:
		if err := t.defineFromSIDL(r.SIDL); err != nil {
			return fmt.Errorf("trader: journal record %d: %w", seq, err)
		}
	case opRemoveType:
		// ErrTypeUnknown is fine: a snapshot newer than the watermark
		// already excludes the type.
		if err := t.types.Remove(r.Name); err != nil && !errors.Is(err, typemgr.ErrTypeUnknown) {
			return fmt.Errorf("trader: journal record %d: %w", seq, err)
		}
	case opEpoch:
		t.raiseEpoch(r.Epoch)
	case opVote:
		// Adopt the pledge: only ever raises the vote lock, so a stray
		// vote record can deny votes but never double one.
		t.repl.mu.Lock()
		if r.Epoch > t.repl.voteEpoch ||
			(r.Epoch == t.repl.voteEpoch && r.Name != "") {
			t.repl.voteEpoch, t.repl.votedFor = r.Epoch, r.Name
		}
		t.repl.mu.Unlock()
	default:
		return fmt.Errorf("trader: journal record %d: unknown op %q", seq, r.Op)
	}
	return nil
}

// defineFromSIDL parses a SIDL source carrying a trader export and
// registers the derived service type with its source retained. A type
// already registered under the same name is left alone (idempotent
// replay).
func (t *Trader) defineFromSIDL(text string) error {
	sid, err := sidl.Parse(text)
	if err != nil {
		return err
	}
	st, err := typemgr.FromSID(sid)
	if err != nil {
		return err
	}
	if err := t.types.DefineWithSource(st, text); err != nil {
		if _, lookupErr := t.types.Lookup(st.Name); lookupErr == nil {
			return nil // already defined
		}
		return err
	}
	return nil
}

// DefineTypeSIDL registers a service type from SIDL text carrying a
// COSM_TraderExport module (the maturation path of section 4.1) and
// journals the source text, so the definition survives a restart.
func (t *Trader) DefineTypeSIDL(text string) error {
	if err := t.leaderCheck(); err != nil {
		return err
	}
	sid, err := sidl.Parse(text)
	if err != nil {
		return err
	}
	st, err := typemgr.FromSID(sid)
	if err != nil {
		return err
	}
	if err := t.types.DefineWithSource(st, text); err != nil {
		return err
	}
	return t.journalApply(&walRecord{Op: opDefineType, SIDL: text}, nil)
}

// RemoveType deletes a service type through the management interface
// and journals the removal.
func (t *Trader) RemoveType(name string) error {
	if err := t.leaderCheck(); err != nil {
		return err
	}
	if err := t.types.Remove(name); err != nil {
		return err
	}
	return t.journalApply(&walRecord{Op: opRemoveType, Name: name}, nil)
}

// bumpSeqFromID advances the offer ID counter past the sequence number
// embedded in a recovered offer ID, so post-recovery exports never
// collide with recovered ones.
func (t *Trader) bumpSeqFromID(id string) {
	i := strings.LastIndex(id, "/o")
	if i < 0 {
		return
	}
	n, err := strconv.ParseUint(id[i+2:], 10, 64)
	if err != nil {
		return
	}
	t.bumpSeq(n)
}

// bumpSeq raises the offer ID counter to at least n.
func (t *Trader) bumpSeq(n uint64) {
	for {
		cur := t.seq.Load()
		if cur >= n || t.seq.CompareAndSwap(cur, n) {
			return
		}
	}
}
