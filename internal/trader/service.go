package trader

import (
	"fmt"
	"strconv"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/journal"
	"cosm/internal/match"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// ServiceName is the well-known hosted name of a trader service.
const ServiceName = "cosm.trader"

// IDL is the trader's own service description. Like the browser and the
// name server, the trader is an ordinary COSM service: its operations
// are invoked dynamically, and a generic client can browse it.
const IDL = `
// ODP trading function: typed service offers, constrained imports,
// and a management interface for service types.
module CosmTrader {
    struct Prop_t {
        string name;
        string kind;
        string text;
    };
    typedef sequence<Prop_t> Props_t;
    struct Offer_t {
        string id;
        string serviceType;
        Object target;
        Props_t props;
        // Lease expiry as Unix seconds; 0 means the offer never expires.
        long long expiresUnix;
        // Liveness: true when the trader's sweeper suspects the provider.
        boolean suspect;
        // Semantic match grade ("exact", "subtype", "partial-attribute")
        // and score; empty/zero outside graded import results.
        string grade;
        double score;
    };
    typedef sequence<Offer_t> Offers_t;
    typedef sequence<string> Names_t;
    struct ExportItem_t {
        string serviceType;
        Object target;
        Props_t props;
        // Lease in whole seconds; 0 means no expiry.
        long long ttlSeconds;
    };
    typedef sequence<ExportItem_t> ExportItems_t;
    struct ImportReq_t {
        string serviceType;
        string constraint;
        string policy;
        long max;
        long hopLimit;
        // Scatter knobs: peers consulted per hop (0 = all) and the
        // hedge delay in milliseconds (0 = no hedging).
        long maxPeers;
        long long hedgeMs;
        // Semantic grade floor ("exact", "subtype", "partial-attribute";
        // empty = the trader's default, subtype conformance).
        string minGrade;
        Names_t visited;
    };
    // One federation link's observable state (see LinkList).
    struct LinkInfo_t {
        string name;
        string peerId;
        // Circuit-breaker state: closed, open or half-open.
        string state;
        // Last successful interaction as Unix milliseconds; 0 = never.
        long long lastSeenUnixMs;
        // Farthest advertised hop distance through this link, plus one;
        // 0 before any summary arrived.
        long hops;
        long summaryTypes;
        long long summaryGen;
        // Age of the last summary in milliseconds; -1 = none yet.
        long long summaryAgeMs;
    };
    typedef sequence<LinkInfo_t> LinkInfos_t;
    // One advertised service type of an offer summary: reachable offer
    // count and hop distance (0 = at the advertising trader itself).
    struct SummaryEntry_t {
        string serviceType;
        long count;
        long hops;
    };
    typedef sequence<SummaryEntry_t> SummaryEntries_t;
    struct Summary_t {
        string from;
        long long gen;
        SummaryEntries_t entries;
    };
    // One replicated journal record: the leader's sequence number and
    // the logical JSON payload, verbatim.
    struct ReplRecord_t {
        long long seq;
        string payload;
    };
    typedef sequence<ReplRecord_t> ReplRecords_t;
    struct ReplBatch_t {
        long long epoch;
        long long lastSeq;
        // When the follower is behind the compaction watermark the
        // batch carries a full state snapshot instead of records.
        long long snapshotSeq;
        string snapshot;
        ReplRecords_t records;
    };
    struct ReplStatus_t {
        string role;
        long long epoch;
        long long lastSeq;
        long long applied;
        string leader;
    };
    // One member's reply to an election vote request: whether the vote
    // was granted, plus the responder's own role/epoch/position/leader
    // hint so candidates learn about live leaders and newer epochs.
    struct Vote_t {
        boolean granted;
        string role;
        long long epoch;
        long long applied;
        string leader;
        long long voteEpoch;
    };
    interface COSM_Operations {
        // Register an offer of a known service type.
        string Export(in string serviceType, in Object target, in Props_t props);
        // Register an offer with a lease of ttlSeconds (0 = no expiry).
        string ExportLease(in string serviceType, in Object target, in Props_t props, in long long ttlSeconds);
        // Register an offer from SIDL text with a COSM_TraderExport module.
        string ExportSID(in string sidlText, in Object target);
        // Register a batch of offers in one round trip. The batch is
        // validated up front and registers completely or not at all;
        // the returned IDs parallel the items.
        Names_t ExportAll(in ExportItems_t items);
        // Remove an offer.
        void Withdraw(in string offerId);
        // Remove a batch of offers; unknown IDs are skipped and the
        // number actually withdrawn is returned (idempotent).
        long WithdrawAll(in Names_t offerIds);
        // Replace an offer's properties.
        void Replace(in string offerId, in Props_t props);
        // Match offers (federation-aware).
        Offers_t Import(in ImportReq_t req);
        // Management interface: define a service type from SIDL text
        // carrying a trader export (the maturation path of section 4.1).
        void DefineTypeFromSID(in string sidlText);
        // Management interface: list and remove service types.
        Names_t TypeNames();
        void RemoveType(in string name);
        // Replication: stream journal records after afterSeq to the
        // named follower, long-polling up to waitMs for new ones. A
        // follower behind the compaction watermark gets a snapshot.
        ReplBatch_t ReplPull(in string followerId, in long long epoch, in long long afterSeq, in long max, in long long waitMs);
        // Failover: take leadership at a strictly greater fencing epoch.
        void Promote(in long long epoch);
        // Replication role and position of this trader.
        ReplStatus_t ReplStatus();
        // Election: candidateId asks to lead at newEpoch, carrying its
        // applied position. At most one vote is granted per epoch, and
        // only to candidates at least as advanced as the voter.
        Vote_t RequestVote(in string candidateId, in long long newEpoch, in long long applied);
        // Link management: register a named federation link to the
        // trader behind peer, remove one, list them with their state.
        void LinkAdd(in string name, in Object peer);
        void LinkRemove(in string name);
        LinkInfos_t LinkList();
        // Offer-summary gossip: store the caller's summary and reply
        // with this trader's own (a push doubles as a pull).
        Summary_t SummaryExchange(in Summary_t summary);
    };
};
`

func encodeLit(l sidl.Lit) (kind, text string) {
	switch l.Kind {
	case sidl.LitBool:
		return "bool", strconv.FormatBool(l.Bool)
	case sidl.LitInt:
		return "int", strconv.FormatInt(l.Int, 10)
	case sidl.LitFloat:
		return "float", strconv.FormatFloat(l.Float, 'g', -1, 64)
	case sidl.LitString:
		return "string", l.Str
	case sidl.LitEnum:
		return "enum", l.Enum
	}
	return "", ""
}

func decodeLit(kind, text string) (sidl.Lit, error) {
	switch kind {
	case "bool":
		b, err := strconv.ParseBool(text)
		if err != nil {
			return sidl.Lit{}, fmt.Errorf("trader: bad bool property %q: %w", text, err)
		}
		return sidl.BoolLit(b), nil
	case "int":
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return sidl.Lit{}, fmt.Errorf("trader: bad int property %q: %w", text, err)
		}
		return sidl.IntLit(i), nil
	case "float":
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return sidl.Lit{}, fmt.Errorf("trader: bad float property %q: %w", text, err)
		}
		return sidl.FloatLit(f), nil
	case "string":
		return sidl.StringLit(text), nil
	case "enum":
		return sidl.EnumLit(text), nil
	}
	return sidl.Lit{}, fmt.Errorf("trader: unknown property kind %q", kind)
}

// traderTypes caches the parsed IDL types used by both the service
// facade and the typed client.
type traderTypes struct {
	sid     *sidl.SID
	strT    *sidl.Type
	refT    *sidl.Type
	int32T  *sidl.Type
	propT   *sidl.Type
	propsT  *sidl.Type
	offerT  *sidl.Type
	offersT *sidl.Type
	namesT  *sidl.Type
	importT *sidl.Type
	itemT   *sidl.Type
	itemsT  *sidl.Type

	int64T      *sidl.Type
	float64T    *sidl.Type
	boolT       *sidl.Type
	replRecT    *sidl.Type
	replRecsT   *sidl.Type
	replBatchT  *sidl.Type
	replStatusT *sidl.Type
	voteT       *sidl.Type

	linkInfoT   *sidl.Type
	linkInfosT  *sidl.Type
	sumEntryT   *sidl.Type
	sumEntriesT *sidl.Type
	summaryT    *sidl.Type
}

func newTraderTypes() (*traderTypes, error) {
	sid, err := sidl.Parse(IDL)
	if err != nil {
		return nil, fmt.Errorf("trader: internal IDL: %w", err)
	}
	return &traderTypes{
		sid:     sid,
		strT:    sidl.Basic(sidl.String),
		refT:    sidl.Basic(sidl.SvcRef),
		int32T:  sidl.Basic(sidl.Int32),
		propT:   sid.Type("Prop_t"),
		propsT:  sid.Type("Props_t"),
		offerT:  sid.Type("Offer_t"),
		offersT: sid.Type("Offers_t"),
		namesT:  sid.Type("Names_t"),
		importT: sid.Type("ImportReq_t"),
		itemT:   sid.Type("ExportItem_t"),
		itemsT:  sid.Type("ExportItems_t"),

		int64T:      sidl.Basic(sidl.Int64),
		float64T:    sidl.Basic(sidl.Float64),
		boolT:       sidl.Basic(sidl.Bool),
		replRecT:    sid.Type("ReplRecord_t"),
		replRecsT:   sid.Type("ReplRecords_t"),
		replBatchT:  sid.Type("ReplBatch_t"),
		replStatusT: sid.Type("ReplStatus_t"),
		voteT:       sid.Type("Vote_t"),

		linkInfoT:   sid.Type("LinkInfo_t"),
		linkInfosT:  sid.Type("LinkInfos_t"),
		sumEntryT:   sid.Type("SummaryEntry_t"),
		sumEntriesT: sid.Type("SummaryEntries_t"),
		summaryT:    sid.Type("Summary_t"),
	}, nil
}

// linkInfoValue encodes one link's observable state.
func (tt *traderTypes) linkInfoValue(li LinkInfo) (*xcode.Value, error) {
	var lastSeen int64
	if !li.LastSeen.IsZero() {
		lastSeen = li.LastSeen.UnixMilli()
	}
	ageMs := int64(-1)
	if li.SummaryAge >= 0 {
		ageMs = li.SummaryAge.Milliseconds()
	}
	return xcode.NewStruct(tt.linkInfoT, map[string]*xcode.Value{
		"name":           xcode.NewString(tt.strT, li.Name),
		"peerId":         xcode.NewString(tt.strT, li.PeerID),
		"state":          xcode.NewString(tt.strT, string(li.State)),
		"lastSeenUnixMs": xcode.NewInt(tt.int64T, lastSeen),
		"hops":           xcode.NewInt(tt.int32T, int64(li.Hops)),
		"summaryTypes":   xcode.NewInt(tt.int32T, int64(li.SummaryTypes)),
		"summaryGen":     xcode.NewInt(tt.int64T, int64(li.SummaryGen)),
		"summaryAgeMs":   xcode.NewInt(tt.int64T, ageMs),
	})
}

func linkInfoFromValue(v *xcode.Value) (LinkInfo, error) {
	var li LinkInfo
	name, err := v.Field("name")
	if err != nil {
		return li, err
	}
	li.Name = name.Str
	peer, err := v.Field("peerId")
	if err != nil {
		return li, err
	}
	li.PeerID = peer.Str
	state, err := v.Field("state")
	if err != nil {
		return li, err
	}
	li.State = wire.BreakerState(state.Str)
	if f, err := v.Field("lastSeenUnixMs"); err == nil && f.Int != 0 {
		li.LastSeen = time.UnixMilli(f.Int)
	}
	if f, err := v.Field("hops"); err == nil {
		li.Hops = int(f.Int)
	}
	if f, err := v.Field("summaryTypes"); err == nil {
		li.SummaryTypes = int(f.Int)
	}
	if f, err := v.Field("summaryGen"); err == nil {
		li.SummaryGen = uint64(f.Int)
	}
	li.SummaryAge = -1
	if f, err := v.Field("summaryAgeMs"); err == nil && f.Int >= 0 {
		li.SummaryAge = time.Duration(f.Int) * time.Millisecond
	}
	return li, nil
}

// summaryValue encodes one offer summary.
func (tt *traderTypes) summaryValue(s OfferSummary) (*xcode.Value, error) {
	elems := make([]*xcode.Value, len(s.Entries))
	for i, e := range s.Entries {
		ev, err := xcode.NewStruct(tt.sumEntryT, map[string]*xcode.Value{
			"serviceType": xcode.NewString(tt.strT, e.Type),
			"count":       xcode.NewInt(tt.int32T, int64(e.Count)),
			"hops":        xcode.NewInt(tt.int32T, int64(e.Hops)),
		})
		if err != nil {
			return nil, err
		}
		elems[i] = ev
	}
	seq, err := xcode.NewSequence(tt.sumEntriesT, elems...)
	if err != nil {
		return nil, err
	}
	return xcode.NewStruct(tt.summaryT, map[string]*xcode.Value{
		"from":    xcode.NewString(tt.strT, s.From),
		"gen":     xcode.NewInt(tt.int64T, int64(s.Gen)),
		"entries": seq,
	})
}

func summaryFromValue(v *xcode.Value) (OfferSummary, error) {
	var s OfferSummary
	from, err := v.Field("from")
	if err != nil {
		return s, err
	}
	s.From = from.Str
	gen, err := v.Field("gen")
	if err != nil {
		return s, err
	}
	s.Gen = uint64(gen.Int)
	entries, err := v.Field("entries")
	if err != nil {
		return s, err
	}
	for _, ev := range entries.Elems {
		st, err := ev.Field("serviceType")
		if err != nil {
			return s, err
		}
		count, err := ev.Field("count")
		if err != nil {
			return s, err
		}
		hops, err := ev.Field("hops")
		if err != nil {
			return s, err
		}
		s.Entries = append(s.Entries, SummaryEntry{Type: st.Str, Count: int(count.Int), Hops: int(hops.Int)})
	}
	return s, nil
}

func (tt *traderTypes) propsValue(props []sidl.Property) (*xcode.Value, error) {
	elems := make([]*xcode.Value, len(props))
	for i, p := range props {
		kind, text := encodeLit(p.Value)
		pv, err := xcode.NewStruct(tt.propT, map[string]*xcode.Value{
			"name": xcode.NewString(tt.strT, p.Name),
			"kind": xcode.NewString(tt.strT, kind),
			"text": xcode.NewString(tt.strT, text),
		})
		if err != nil {
			return nil, err
		}
		elems[i] = pv
	}
	return xcode.NewSequence(tt.propsT, elems...)
}

func propsFromValue(v *xcode.Value) ([]sidl.Property, error) {
	props := make([]sidl.Property, 0, len(v.Elems))
	for _, pv := range v.Elems {
		name, err := pv.Field("name")
		if err != nil {
			return nil, err
		}
		kind, err := pv.Field("kind")
		if err != nil {
			return nil, err
		}
		text, err := pv.Field("text")
		if err != nil {
			return nil, err
		}
		lit, err := decodeLit(kind.Str, text.Str)
		if err != nil {
			return nil, err
		}
		props = append(props, sidl.Property{Name: name.Str, Value: lit})
	}
	return props, nil
}

func (tt *traderTypes) offerValue(o *Offer) (*xcode.Value, error) {
	props := make([]sidl.Property, 0, len(o.Props))
	for _, name := range sortedPropNames(o.Props) {
		props = append(props, sidl.Property{Name: name, Value: o.Props[name]})
	}
	propsV, err := tt.propsValue(props)
	if err != nil {
		return nil, err
	}
	var expires int64
	if !o.Expires.IsZero() {
		expires = o.Expires.Unix()
	}
	return xcode.NewStruct(tt.offerT, map[string]*xcode.Value{
		"id":          xcode.NewString(tt.strT, o.ID),
		"serviceType": xcode.NewString(tt.strT, o.Type),
		"target":      xcode.NewRef(tt.refT, o.Ref),
		"props":       propsV,
		"expiresUnix": xcode.NewInt(sidl.Basic(sidl.Int64), expires),
		"suspect":     xcode.NewBool(sidl.Basic(sidl.Bool), o.Suspect),
	})
}

// matchValue encodes one graded import result: the offer plus its
// semantic grade and score.
func (tt *traderTypes) matchValue(m Match) (*xcode.Value, error) {
	ov, err := tt.offerValue(m.Offer)
	if err != nil {
		return nil, err
	}
	if err := ov.SetField("grade", xcode.NewString(tt.strT, m.Grade.String())); err != nil {
		return nil, err
	}
	if err := ov.SetField("score", xcode.NewFloat(tt.float64T, m.Score)); err != nil {
		return nil, err
	}
	return ov, nil
}

// matchFromValue decodes one graded import result. Offers sent by a
// trader that predates grading lack the grade/score fields and decode
// as GradeNone matches; the federation path re-grades those locally.
func matchFromValue(v *xcode.Value) (Match, error) {
	o, err := offerFromValue(v)
	if err != nil {
		return Match{}, err
	}
	m := Match{Offer: o}
	if gv, err := v.Field("grade"); err == nil {
		g, err := match.ParseGrade(gv.Str)
		if err != nil {
			return Match{}, err
		}
		m.Grade = g
	}
	if sv, err := v.Field("score"); err == nil {
		m.Score = sv.Float
	}
	return m, nil
}

func offerFromValue(v *xcode.Value) (*Offer, error) {
	id, err := v.Field("id")
	if err != nil {
		return nil, err
	}
	st, err := v.Field("serviceType")
	if err != nil {
		return nil, err
	}
	target, err := v.Field("target")
	if err != nil {
		return nil, err
	}
	propsV, err := v.Field("props")
	if err != nil {
		return nil, err
	}
	props, err := propsFromValue(propsV)
	if err != nil {
		return nil, err
	}
	o := &Offer{ID: id.Str, Type: st.Str, Ref: target.Ref, Props: make(map[string]sidl.Lit, len(props))}
	for _, p := range props {
		o.Props[p.Name] = p.Value
	}
	if ev, err := v.Field("expiresUnix"); err == nil && ev.Int != 0 {
		o.Expires = time.Unix(ev.Int, 0)
	}
	if sv, err := v.Field("suspect"); err == nil {
		o.Suspect = sv.Bool
	}
	return o, nil
}

func sortedPropNames(props map[string]sidl.Lit) []string {
	names := make([]string, 0, len(props))
	for n := range props {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ { // insertion sort: tiny inputs
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// exportItemValue encodes one batch-export item.
func (tt *traderTypes) exportItemValue(it ExportItem) (*xcode.Value, error) {
	propsV, err := tt.propsValue(it.Props)
	if err != nil {
		return nil, err
	}
	return xcode.NewStruct(tt.itemT, map[string]*xcode.Value{
		"serviceType": xcode.NewString(tt.strT, it.Type),
		"target":      xcode.NewRef(tt.refT, it.Ref),
		"props":       propsV,
		"ttlSeconds":  xcode.NewInt(sidl.Basic(sidl.Int64), int64(it.TTL/time.Second)),
	})
}

func exportItemFromValue(v *xcode.Value) (ExportItem, error) {
	var it ExportItem
	st, err := v.Field("serviceType")
	if err != nil {
		return it, err
	}
	target, err := v.Field("target")
	if err != nil {
		return it, err
	}
	propsV, err := v.Field("props")
	if err != nil {
		return it, err
	}
	props, err := propsFromValue(propsV)
	if err != nil {
		return it, err
	}
	ttl, err := v.Field("ttlSeconds")
	if err != nil {
		return it, err
	}
	return ExportItem{Type: st.Str, Ref: target.Ref, Props: props, TTL: time.Duration(ttl.Int) * time.Second}, nil
}

// namesValue encodes a string slice as Names_t.
func (tt *traderTypes) namesValue(names []string) (*xcode.Value, error) {
	elems := make([]*xcode.Value, len(names))
	for i, n := range names {
		elems[i] = xcode.NewString(tt.strT, n)
	}
	return xcode.NewSequence(tt.namesT, elems...)
}

// NewService wraps a Trader as a hosted COSM service.
func NewService(t *Trader) (*cosm.Service, error) {
	tt, err := newTraderTypes()
	if err != nil {
		return nil, err
	}
	svc, err := cosm.NewService(tt.sid)
	if err != nil {
		return nil, err
	}

	strArg := func(call *cosm.Call, name string) (string, error) {
		v, err := call.Arg(name)
		if err != nil {
			return "", err
		}
		return v.Str, nil
	}
	propsArg := func(call *cosm.Call) ([]sidl.Property, error) {
		v, err := call.Arg("props")
		if err != nil {
			return nil, err
		}
		return propsFromValue(v)
	}

	svc.MustHandle("Export", func(call *cosm.Call) error {
		serviceType, err := strArg(call, "serviceType")
		if err != nil {
			return err
		}
		target, err := call.Arg("target")
		if err != nil {
			return err
		}
		props, err := propsArg(call)
		if err != nil {
			return err
		}
		id, err := t.Export(serviceType, target.Ref, props)
		if err != nil {
			return err
		}
		call.Result = xcode.NewString(tt.strT, id)
		return nil
	})
	svc.MustHandle("ExportLease", func(call *cosm.Call) error {
		serviceType, err := strArg(call, "serviceType")
		if err != nil {
			return err
		}
		target, err := call.Arg("target")
		if err != nil {
			return err
		}
		props, err := propsArg(call)
		if err != nil {
			return err
		}
		ttl, err := call.Arg("ttlSeconds")
		if err != nil {
			return err
		}
		id, err := t.ExportLease(serviceType, target.Ref, props, time.Duration(ttl.Int)*time.Second)
		if err != nil {
			return err
		}
		call.Result = xcode.NewString(tt.strT, id)
		return nil
	})
	svc.MustHandle("ExportSID", func(call *cosm.Call) error {
		text, err := strArg(call, "sidlText")
		if err != nil {
			return err
		}
		target, err := call.Arg("target")
		if err != nil {
			return err
		}
		sid, err := sidl.Parse(text)
		if err != nil {
			return err
		}
		id, err := t.ExportSID(sid, target.Ref)
		if err != nil {
			return err
		}
		call.Result = xcode.NewString(tt.strT, id)
		return nil
	})
	svc.MustHandle("ExportAll", func(call *cosm.Call) error {
		itemsV, err := call.Arg("items")
		if err != nil {
			return err
		}
		items := make([]ExportItem, 0, len(itemsV.Elems))
		for _, iv := range itemsV.Elems {
			it, err := exportItemFromValue(iv)
			if err != nil {
				return err
			}
			items = append(items, it)
		}
		ids, err := t.ExportAll(items)
		if err != nil {
			return err
		}
		seq, err := tt.namesValue(ids)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	svc.MustHandle("Withdraw", func(call *cosm.Call) error {
		id, err := strArg(call, "offerId")
		if err != nil {
			return err
		}
		return t.Withdraw(id)
	})
	svc.MustHandle("WithdrawAll", func(call *cosm.Call) error {
		idsV, err := call.Arg("offerIds")
		if err != nil {
			return err
		}
		ids := make([]string, 0, len(idsV.Elems))
		for _, e := range idsV.Elems {
			ids = append(ids, e.Str)
		}
		call.Result = xcode.NewInt(tt.int32T, int64(t.WithdrawAll(ids)))
		return nil
	})
	svc.MustHandle("Replace", func(call *cosm.Call) error {
		id, err := strArg(call, "offerId")
		if err != nil {
			return err
		}
		props, err := propsArg(call)
		if err != nil {
			return err
		}
		return t.Replace(id, props)
	})
	svc.MustHandle("Import", func(call *cosm.Call) error {
		reqV, err := call.Arg("req")
		if err != nil {
			return err
		}
		req, err := importReqFromValue(reqV)
		if err != nil {
			return err
		}
		ms, err := t.ImportGraded(call.Ctx, req)
		if err != nil {
			return err
		}
		elems := make([]*xcode.Value, len(ms))
		for i, m := range ms {
			mv, err := tt.matchValue(m)
			if err != nil {
				return err
			}
			elems[i] = mv
		}
		seq, err := xcode.NewSequence(tt.offersT, elems...)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	svc.MustHandle("DefineTypeFromSID", func(call *cosm.Call) error {
		text, err := strArg(call, "sidlText")
		if err != nil {
			return err
		}
		return t.DefineTypeSIDL(text)
	})
	svc.MustHandle("TypeNames", func(call *cosm.Call) error {
		names := t.Types().Names()
		elems := make([]*xcode.Value, len(names))
		for i, n := range names {
			elems[i] = xcode.NewString(tt.strT, n)
		}
		seq, err := xcode.NewSequence(tt.namesT, elems...)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	svc.MustHandle("RemoveType", func(call *cosm.Call) error {
		name, err := strArg(call, "name")
		if err != nil {
			return err
		}
		return t.RemoveType(name)
	})
	svc.MustHandle("ReplPull", func(call *cosm.Call) error {
		followerID, err := strArg(call, "followerId")
		if err != nil {
			return err
		}
		intArg := func(name string) (int64, error) {
			v, err := call.Arg(name)
			if err != nil {
				return 0, err
			}
			return v.Int, nil
		}
		epoch, err := intArg("epoch")
		if err != nil {
			return err
		}
		afterSeq, err := intArg("afterSeq")
		if err != nil {
			return err
		}
		max, err := intArg("max")
		if err != nil {
			return err
		}
		waitMs, err := intArg("waitMs")
		if err != nil {
			return err
		}
		b, err := t.PullBatch(call.Ctx, followerID, uint64(epoch), uint64(afterSeq), int(max), time.Duration(waitMs)*time.Millisecond)
		if err != nil {
			return err
		}
		bv, err := tt.replBatchValue(b)
		if err != nil {
			return err
		}
		call.Result = bv
		return nil
	})
	svc.MustHandle("Promote", func(call *cosm.Call) error {
		epoch, err := call.Arg("epoch")
		if err != nil {
			return err
		}
		return t.Promote(uint64(epoch.Int))
	})
	svc.MustHandle("ReplStatus", func(call *cosm.Call) error {
		st := t.Status()
		sv, err := xcode.NewStruct(tt.replStatusT, map[string]*xcode.Value{
			"role":    xcode.NewString(tt.strT, st.Role),
			"epoch":   xcode.NewInt(tt.int64T, int64(st.Epoch)),
			"lastSeq": xcode.NewInt(tt.int64T, int64(st.LastSeq)),
			"applied": xcode.NewInt(tt.int64T, int64(st.Applied)),
			"leader":  xcode.NewString(tt.strT, st.Leader),
		})
		if err != nil {
			return err
		}
		call.Result = sv
		return nil
	})
	svc.MustHandle("RequestVote", func(call *cosm.Call) error {
		candidateID, err := strArg(call, "candidateId")
		if err != nil {
			return err
		}
		newEpoch, err := call.Arg("newEpoch")
		if err != nil {
			return err
		}
		applied, err := call.Arg("applied")
		if err != nil {
			return err
		}
		v, err := t.RequestVote(call.Ctx, candidateID, uint64(newEpoch.Int), uint64(applied.Int))
		if err != nil {
			return err
		}
		vv, err := xcode.NewStruct(tt.voteT, map[string]*xcode.Value{
			"granted":   xcode.NewBool(tt.boolT, v.Granted),
			"role":      xcode.NewString(tt.strT, v.Role),
			"epoch":     xcode.NewInt(tt.int64T, int64(v.Epoch)),
			"applied":   xcode.NewInt(tt.int64T, int64(v.Applied)),
			"leader":    xcode.NewString(tt.strT, v.Leader),
			"voteEpoch": xcode.NewInt(tt.int64T, int64(v.VoteEpoch)),
		})
		if err != nil {
			return err
		}
		call.Result = vv
		return nil
	})
	svc.MustHandle("LinkAdd", func(call *cosm.Call) error {
		name, err := strArg(call, "name")
		if err != nil {
			return err
		}
		peerV, err := call.Arg("peer")
		if err != nil {
			return err
		}
		if t.linkDialer == nil {
			return ErrNoLinkDialer
		}
		peer, err := t.linkDialer(call.Ctx, peerV.Ref)
		if err != nil {
			return err
		}
		return t.AddLink(name, peer)
	})
	svc.MustHandle("LinkRemove", func(call *cosm.Call) error {
		name, err := strArg(call, "name")
		if err != nil {
			return err
		}
		return t.RemoveLink(name)
	})
	svc.MustHandle("LinkList", func(call *cosm.Call) error {
		links := t.Links()
		elems := make([]*xcode.Value, len(links))
		for i, li := range links {
			lv, err := tt.linkInfoValue(li)
			if err != nil {
				return err
			}
			elems[i] = lv
		}
		seq, err := xcode.NewSequence(tt.linkInfosT, elems...)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	svc.MustHandle("SummaryExchange", func(call *cosm.Call) error {
		sumV, err := call.Arg("summary")
		if err != nil {
			return err
		}
		theirs, err := summaryFromValue(sumV)
		if err != nil {
			return err
		}
		mine, err := t.ExchangeSummary(call.Ctx, theirs)
		if err != nil {
			return err
		}
		mv, err := tt.summaryValue(mine)
		if err != nil {
			return err
		}
		call.Result = mv
		return nil
	})
	return svc, nil
}

func voteFromValue(v *xcode.Value) (Vote, error) {
	var out Vote
	granted, err := v.Field("granted")
	if err != nil {
		return out, err
	}
	out.Granted = granted.Bool
	role, err := v.Field("role")
	if err != nil {
		return out, err
	}
	out.Role = role.Str
	leader, err := v.Field("leader")
	if err != nil {
		return out, err
	}
	out.Leader = leader.Str
	epoch, err := v.Field("epoch")
	if err != nil {
		return out, err
	}
	out.Epoch = uint64(epoch.Int)
	applied, err := v.Field("applied")
	if err != nil {
		return out, err
	}
	out.Applied = uint64(applied.Int)
	voteEpoch, err := v.Field("voteEpoch")
	if err != nil {
		return out, err
	}
	out.VoteEpoch = uint64(voteEpoch.Int)
	return out, nil
}

// replBatchValue encodes one replication batch. Record payloads and
// snapshots are logical JSON, carried verbatim in string fields.
func (tt *traderTypes) replBatchValue(b *ReplBatch) (*xcode.Value, error) {
	recs := make([]*xcode.Value, len(b.Records))
	for i, r := range b.Records {
		rv, err := xcode.NewStruct(tt.replRecT, map[string]*xcode.Value{
			"seq":     xcode.NewInt(tt.int64T, int64(r.Seq)),
			"payload": xcode.NewString(tt.strT, string(r.Payload)),
		})
		if err != nil {
			return nil, err
		}
		recs[i] = rv
	}
	recsSeq, err := xcode.NewSequence(tt.replRecsT, recs...)
	if err != nil {
		return nil, err
	}
	return xcode.NewStruct(tt.replBatchT, map[string]*xcode.Value{
		"epoch":       xcode.NewInt(tt.int64T, int64(b.Epoch)),
		"lastSeq":     xcode.NewInt(tt.int64T, int64(b.LastSeq)),
		"snapshotSeq": xcode.NewInt(tt.int64T, int64(b.SnapshotSeq)),
		"snapshot":    xcode.NewString(tt.strT, string(b.Snapshot)),
		"records":     recsSeq,
	})
}

func replBatchFromValue(v *xcode.Value) (*ReplBatch, error) {
	b := &ReplBatch{}
	ints := []struct {
		name string
		dst  *uint64
	}{
		{"epoch", &b.Epoch},
		{"lastSeq", &b.LastSeq},
		{"snapshotSeq", &b.SnapshotSeq},
	}
	for _, f := range ints {
		fv, err := v.Field(f.name)
		if err != nil {
			return nil, err
		}
		*f.dst = uint64(fv.Int)
	}
	snap, err := v.Field("snapshot")
	if err != nil {
		return nil, err
	}
	if snap.Str != "" {
		b.Snapshot = []byte(snap.Str)
	}
	recsV, err := v.Field("records")
	if err != nil {
		return nil, err
	}
	for _, rv := range recsV.Elems {
		seq, err := rv.Field("seq")
		if err != nil {
			return nil, err
		}
		payload, err := rv.Field("payload")
		if err != nil {
			return nil, err
		}
		b.Records = append(b.Records, journal.Record{Seq: uint64(seq.Int), Payload: []byte(payload.Str)})
	}
	return b, nil
}

func replStatusFromValue(v *xcode.Value) (ReplStatus, error) {
	var st ReplStatus
	role, err := v.Field("role")
	if err != nil {
		return st, err
	}
	st.Role = role.Str
	leader, err := v.Field("leader")
	if err != nil {
		return st, err
	}
	st.Leader = leader.Str
	ints := []struct {
		name string
		dst  *uint64
	}{
		{"epoch", &st.Epoch},
		{"lastSeq", &st.LastSeq},
		{"applied", &st.Applied},
	}
	for _, f := range ints {
		fv, err := v.Field(f.name)
		if err != nil {
			return st, err
		}
		*f.dst = uint64(fv.Int)
	}
	return st, nil
}

func importReqFromValue(v *xcode.Value) (ImportRequest, error) {
	var req ImportRequest
	fields := []struct {
		name string
		dst  *string
	}{
		{"serviceType", &req.Type},
		{"constraint", &req.Constraint},
		{"policy", &req.Policy},
	}
	for _, f := range fields {
		fv, err := v.Field(f.name)
		if err != nil {
			return req, err
		}
		*f.dst = fv.Str
	}
	maxV, err := v.Field("max")
	if err != nil {
		return req, err
	}
	req.Max = int(maxV.Int)
	hopV, err := v.Field("hopLimit")
	if err != nil {
		return req, err
	}
	req.HopLimit = int(hopV.Int)
	visitedV, err := v.Field("visited")
	if err != nil {
		return req, err
	}
	for _, e := range visitedV.Elems {
		req.visited = append(req.visited, e.Str)
	}
	// Scatter knobs arrived in a later protocol revision; tolerate their
	// absence so an old client's request still decodes.
	if f, err := v.Field("maxPeers"); err == nil {
		req.MaxPeers = int(f.Int)
	}
	if f, err := v.Field("hedgeMs"); err == nil && f.Int > 0 {
		req.Hedge = time.Duration(f.Int) * time.Millisecond
	}
	// The semantic grade floor arrived with graded matching; an absent
	// or unknown value falls back to the default (subtype conformance).
	if f, err := v.Field("minGrade"); err == nil {
		if g, err := match.ParseGrade(f.Str); err == nil {
			req.MinGrade = g
		}
	}
	return req, nil
}

func (tt *traderTypes) importReqValue(req ImportRequest) (*xcode.Value, error) {
	visited := make([]*xcode.Value, len(req.visited))
	for i, s := range req.visited {
		visited[i] = xcode.NewString(tt.strT, s)
	}
	visitedSeq, err := xcode.NewSequence(tt.namesT, visited...)
	if err != nil {
		return nil, err
	}
	return xcode.NewStruct(tt.importT, map[string]*xcode.Value{
		"serviceType": xcode.NewString(tt.strT, req.Type),
		"constraint":  xcode.NewString(tt.strT, req.Constraint),
		"policy":      xcode.NewString(tt.strT, req.Policy),
		"max":         xcode.NewInt(tt.int32T, int64(req.Max)),
		"hopLimit":    xcode.NewInt(tt.int32T, int64(req.HopLimit)),
		"visited":     visitedSeq,
		"maxPeers":    xcode.NewInt(tt.int32T, int64(req.MaxPeers)),
		"hedgeMs":     xcode.NewInt(tt.int64T, req.Hedge.Milliseconds()),
		"minGrade":    xcode.NewString(tt.strT, req.MinGrade.String()),
	})
}
