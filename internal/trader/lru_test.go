package trader

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU[int](3)
	c.add("a", 1)
	c.add("b", 2)
	c.add("c", 3)
	if n := c.len(); n != 3 {
		t.Fatalf("len = %d, want 3", n)
	}
	// d pushes out a (the least recently used).
	c.add("d", 4)
	if n := c.len(); n != 3 {
		t.Fatalf("len = %d, want 3 after eviction", n)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived eviction")
	}
	for _, k := range []string{"b", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	// Touch a: b becomes the eviction victim.
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("get(a) = %d, %v", v, ok)
	}
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived although a was more recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted although recently used")
	}
}

func TestLRUAddRefreshesRecencyAndValue(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	// Re-adding a updates its value and makes b the victim.
	c.add("a", 10)
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived although a was re-added")
	}
	if v, ok := c.get("a"); !ok || v != 10 {
		t.Fatalf("get(a) = %d, %v, want 10, true", v, ok)
	}
}

func TestLRUCapacityOne(t *testing.T) {
	c := newLRU[string](1)
	c.add("a", "x")
	c.add("b", "y")
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived in a capacity-1 cache")
	}
	if v, ok := c.get("b"); !ok || v != "y" {
		t.Fatalf("get(b) = %q, %v", v, ok)
	}
}

// A capacity of zero or less disables the cache: the nil receiver is
// safe for every method and caches nothing.
func TestLRUNilDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newLRU[int](capacity)
		if c != nil {
			t.Fatalf("newLRU(%d) != nil", capacity)
		}
		c.add("a", 1)
		if _, ok := c.get("a"); ok {
			t.Fatal("nil cache returned a hit")
		}
		if n := c.len(); n != 0 {
			t.Fatalf("nil cache len = %d", n)
		}
	}
}

// Concurrent gets and adds must be race-free (run under -race) and
// never grow the cache beyond capacity.
func TestLRUConcurrent(t *testing.T) {
	const capacity = 8
	c := newLRU[int](capacity)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				if v, ok := c.get(k); ok && v < 0 {
					t.Errorf("get(%s) = %d", k, v)
				}
				c.add(k, i)
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > capacity {
		t.Fatalf("len = %d, beyond capacity %d", n, capacity)
	}
}
