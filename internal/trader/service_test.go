package trader

import (
	"context"
	"errors"
	"testing"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

// startTraderNode hosts a trader service on a loopback node.
func startTraderNode(t *testing.T, loopName, traderID string) (*cosm.Node, *Trader, ref.ServiceRef) {
	t.Helper()
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := New(traderID, repo)
	svc, err := NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host(ServiceName, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, tr, node.MustRefFor(ServiceName)
}

func TestRemoteExportImportLifecycle(t *testing.T) {
	node, _, traderRef := startTraderNode(t, "trd-lifecycle", "T1")
	ctx := context.Background()
	tc, err := DialTrader(ctx, node.Pool(), traderRef)
	if err != nil {
		t.Fatal(err)
	}

	target := carRef(1)
	id, err := tc.Export(ctx, "CarRentalService", target, carProps("FIAT_Uno", 80, "USD"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty offer id")
	}

	offers, err := tc.Import(ctx, ImportRequest{Type: "CarRentalService", Constraint: "CarModel == FIAT_Uno"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Ref != target {
		t.Fatalf("offers = %+v", offers)
	}
	// All property kinds survive the round trip.
	o := offers[0]
	if o.Props["CarModel"] != sidl.EnumLit("FIAT_Uno") {
		t.Fatalf("CarModel = %+v", o.Props["CarModel"])
	}
	if o.Props["ChargePerDay"] != sidl.FloatLit(80) {
		t.Fatalf("ChargePerDay = %+v", o.Props["ChargePerDay"])
	}
	if o.Props["AverageMilage"] != sidl.IntLit(38000) {
		t.Fatalf("AverageMilage = %+v", o.Props["AverageMilage"])
	}

	if err := tc.Replace(ctx, id, carProps("FIAT_Uno", 75, "USD")); err != nil {
		t.Fatal(err)
	}
	one, err := tc.ImportOne(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || one.Props["ChargePerDay"] != sidl.FloatLit(75) {
		t.Fatalf("after replace: %+v, %v", one, err)
	}

	if err := tc.Withdraw(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.ImportOne(ctx, ImportRequest{Type: "CarRentalService"}); !errors.Is(err, ErrNoOffer) {
		t.Fatalf("err = %v", err)
	}
	// Remote errors propagate.
	if err := tc.Withdraw(ctx, id); err == nil {
		t.Fatal("double remote withdraw must fail")
	}
}

func TestRemoteExportSIDAndManagement(t *testing.T) {
	node, _, traderRef := startTraderNode(t, "trd-mgmt", "T1")
	ctx := context.Background()
	tc, err := DialTrader(ctx, node.Pool(), traderRef)
	if err != nil {
		t.Fatal(err)
	}

	// The car-rental SID exports itself (its type is predefined).
	sid := sidl.CarRentalSID()
	target := carRef(4)
	if _, err := tc.ExportSID(ctx, sid, target); err != nil {
		t.Fatal(err)
	}
	one, err := tc.ImportOne(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil || one.Ref != target {
		t.Fatalf("offer = %+v, %v", one, err)
	}

	// Management: define a brand-new type remotely, list, remove.
	bikes := sidl.CarRentalSID()
	bikes.ServiceName = "BikeRentalService"
	bikes.Trader.TypeOfService = "BikeRentalService"
	if err := tc.DefineTypeFromSID(ctx, bikes); err != nil {
		t.Fatal(err)
	}
	names, err := tc.TypeNames(ctx)
	if err != nil || len(names) != 2 {
		t.Fatalf("TypeNames = %v, %v", names, err)
	}
	if err := tc.RemoveType(ctx, "BikeRentalService"); err != nil {
		t.Fatal(err)
	}
	names, _ = tc.TypeNames(ctx)
	if len(names) != 1 {
		t.Fatalf("after remove: %v", names)
	}
	if err := tc.RemoveType(ctx, "Ghost"); err == nil {
		t.Fatal("removing unknown type must fail remotely")
	}
}

func TestFederationOverWire(t *testing.T) {
	// Trader A (local) links trader B (remote, via Client): an import at
	// A with hop budget reaches offers exported only at B — the ODP
	// "trader federation" of section 2.2, over the real wire.
	nodeB, trB, refB := startTraderNode(t, "trd-fed-b", "B")
	_ = trB
	_, trA, _ := startTraderNode(t, "trd-fed-a", "A")

	ctx := context.Background()
	remoteB, err := DialTrader(ctx, nodeB.Pool(), refB)
	if err != nil {
		t.Fatal(err)
	}
	mustLink(t, trA, "b", remoteB)

	target := carRef(8)
	if _, err := remoteB.Export(ctx, "CarRentalService", target, carProps("VW_Golf", 66, "DEM")); err != nil {
		t.Fatal(err)
	}

	offers, err := trA.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Ref != target {
		t.Fatalf("federated offers = %+v", offers)
	}
	// Without hop budget the remote offer is invisible.
	offers, err = trA.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 0})
	if err != nil || len(offers) != 0 {
		t.Fatalf("hop 0 offers = %+v, %v", offers, err)
	}
}

// Link management and summary gossip over the real wire: cosmcli links
// drives exactly this client surface.
func TestLinkManagementOverWire(t *testing.T) {
	nodeB, _, refB := startTraderNode(t, "trd-links-b", "B")
	nodeA, trA, refA := startTraderNode(t, "trd-links-a", "A")
	ctx := context.Background()

	clientA, err := DialTrader(ctx, nodeA.Pool(), refA)
	if err != nil {
		t.Fatal(err)
	}

	// Without a dialer the trader cannot resolve peer refs remotely.
	if err := clientA.LinkAdd(ctx, "b", refB); err == nil {
		t.Fatal("LinkAdd without a link dialer must fail")
	}
	trA.SetLinkDialer(func(ctx context.Context, peer ref.ServiceRef) (Federate, error) {
		return DialTrader(ctx, nodeA.Pool(), peer)
	})
	if err := clientA.LinkAdd(ctx, "b", refB); err != nil {
		t.Fatal(err)
	}
	if err := clientA.LinkAdd(ctx, "b", refB); err == nil {
		t.Fatal("duplicate remote LinkAdd must fail")
	}

	links, err := clientA.LinkList(ctx)
	if err != nil || len(links) != 1 {
		t.Fatalf("LinkList = %+v, %v", links, err)
	}
	if links[0].Name != "b" || links[0].State != wire.BreakerClosed {
		t.Fatalf("link = %+v", links[0])
	}
	if links[0].SummaryAge >= 0 {
		t.Fatalf("summary age = %v, want negative before gossip", links[0].SummaryAge)
	}

	// Gossip over the wire: A's round exchanges summaries with B via the
	// SummaryExchange wire op, and the learned state shows up in LinkList.
	clientB, err := DialTrader(ctx, nodeB.Pool(), refB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clientB.Export(ctx, "CarRentalService", carRef(2), carProps("AUDI", 42, "USD")); err != nil {
		t.Fatal(err)
	}
	if pushed, failed := trA.GossipRound(ctx, time.Second); pushed != 1 || failed != 0 {
		t.Fatalf("gossip round: pushed %d failed %d", pushed, failed)
	}
	links, err = clientA.LinkList(ctx)
	if err != nil || len(links) != 1 {
		t.Fatalf("LinkList = %+v, %v", links, err)
	}
	if links[0].PeerID != "B" || links[0].SummaryGen == 0 || links[0].SummaryTypes != 1 || links[0].SummaryAge < 0 {
		t.Fatalf("post-gossip link = %+v", links[0])
	}

	// The scatter knobs survive the wire round trip: a remote import
	// with MaxPeers and Hedge still reaches B's offer.
	offers, err := clientA.ImportWith(ctx, "CarRentalService",
		Hops(1), MaxPeers(1), Hedge(50*time.Millisecond))
	if err != nil || len(offers) != 1 || offers[0].Ref != carRef(2) {
		t.Fatalf("remote routed import = %+v, %v", offers, err)
	}

	if err := clientA.LinkRemove(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if err := clientA.LinkRemove(ctx, "b"); err == nil {
		t.Fatal("removing an unknown link must fail remotely")
	}
	if links, _ := clientA.LinkList(ctx); len(links) != 0 {
		t.Fatalf("links after remove = %+v", links)
	}
}

func TestLitWireCodec(t *testing.T) {
	lits := []sidl.Lit{
		sidl.BoolLit(true),
		sidl.BoolLit(false),
		sidl.IntLit(-5),
		sidl.FloatLit(3.5),
		sidl.StringLit("hello world"),
		sidl.EnumLit("AUDI"),
	}
	for _, l := range lits {
		kind, text := encodeLit(l)
		got, err := decodeLit(kind, text)
		if err != nil {
			t.Fatalf("decodeLit(%q, %q): %v", kind, text, err)
		}
		if got != l {
			t.Fatalf("round trip: %+v vs %+v", got, l)
		}
	}
	for _, bad := range [][2]string{
		{"bool", "maybe"},
		{"int", "x"},
		{"float", "x"},
		{"quaternion", "1"},
	} {
		if _, err := decodeLit(bad[0], bad[1]); err == nil {
			t.Fatalf("decodeLit(%q, %q) should fail", bad[0], bad[1])
		}
	}
}
