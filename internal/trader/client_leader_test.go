package trader

import (
	"errors"
	"fmt"
	"testing"

	"cosm/internal/cosm"
)

func TestIsNotLeaderError(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrNotLeader, true},
		{fmt.Errorf("%w (leader at tcp:10.0.0.1:7000/cosm.trader)", ErrNotLeader), true},
		// After crossing the wire the error is plain text.
		{errors.New("cosm: remote: trader: not leader (leader at tcp:10.0.0.1:7000/cosm.trader)"), true},
		{errors.New("trader: bad selection policy"), false},
	}
	for _, tc := range cases {
		if got := isNotLeaderError(tc.err); got != tc.want {
			t.Fatalf("isNotLeaderError(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestClientLeaderCacheStateMachine pins the binding-selection rules:
// mutations prefer the cached leader only while redirects are on, and
// invalidation is conditional on the cache still holding the binding
// that was rejected (a racing re-bind must not be clobbered).
func TestClientLeaderCacheStateMachine(t *testing.T) {
	primary, leader := &cosm.Conn{}, &cosm.Conn{}
	c := &Client{conn: primary}

	if conn, cached := c.mutConn(); conn != primary || cached {
		t.Fatal("fresh client must mutate through the primary binding")
	}

	// A cached leader is ignored while redirects are off.
	c.leader = leader
	if conn, cached := c.mutConn(); conn != primary || cached {
		t.Fatal("cache must be inert without FollowLeaderHints")
	}

	c.redirect = true
	if conn, cached := c.mutConn(); conn != leader || !cached {
		t.Fatal("redirecting client must prefer the cached leader")
	}

	// Dropping a different binding leaves the cache intact.
	c.dropLeader(primary)
	if conn, _ := c.mutConn(); conn != leader {
		t.Fatal("dropLeader of a non-cached conn cleared the cache")
	}

	c.dropLeader(leader)
	if conn, cached := c.mutConn(); conn != primary || cached {
		t.Fatal("invalidated cache must fall back to the primary binding")
	}
}
