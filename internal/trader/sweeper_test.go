package trader

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
)

// fakePinger is a controllable PingFunc: refs in the dead set fail.
type fakePinger struct {
	mu   sync.Mutex
	dead map[ref.ServiceRef]bool
	hits int
}

func (f *fakePinger) setDead(r ref.ServiceRef, dead bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead == nil {
		f.dead = map[ref.ServiceRef]bool{}
	}
	f.dead[r] = dead
}

func (f *fakePinger) ping(_ context.Context, r ref.ServiceRef) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits++
	if f.dead[r] {
		return errors.New("unreachable")
	}
	return nil
}

func newSweeperFixture(t *testing.T, opts ...SweeperOption) (*Trader, *fakePinger, *Sweeper) {
	t.Helper()
	tr := New("sweep", newCarRepo(t))
	fp := &fakePinger{}
	opts = append([]SweeperOption{WithPingFunc(fp.ping)}, opts...)
	sw := NewSweeper(tr, nil, opts...)
	t.Cleanup(func() { _ = sw.Close() })
	return tr, fp, sw
}

func TestSweeperSuspectsThenWithdraws(t *testing.T) {
	tr, fp, sw := newSweeperFixture(t, WithFailThreshold(2))
	ctx := context.Background()
	if _, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 70, "USD")); err != nil {
		t.Fatal(err)
	}
	idB, err := tr.Export("CarRentalService", carRef(2), carProps("FIAT_Uno", 80, "USD"))
	if err != nil {
		t.Fatal(err)
	}
	fp.setDead(carRef(2), true)

	rep := sw.SweepOnce(ctx)
	if rep.Checked != 2 || rep.Healthy != 1 || rep.Suspected != 1 || rep.Withdrawn != 0 {
		t.Fatalf("sweep 1 report = %+v", rep)
	}
	var suspectFlag bool
	for _, o := range tr.Offers() {
		if o.ID == idB {
			suspectFlag = o.Suspect
		}
	}
	if !suspectFlag {
		t.Fatal("offer of the dead provider is not marked suspect after sweep 1")
	}
	// Suspect offers still match, but rank behind healthy ones even
	// when the ordering policy prefers them.
	offers, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Policy: "min:ChargePerDay"})
	if err != nil || len(offers) != 2 {
		t.Fatalf("import = %v, %v", offers, err)
	}
	if offers[0].Suspect || !offers[1].Suspect {
		t.Fatalf("import order = [suspect=%v, suspect=%v], want healthy first", offers[0].Suspect, offers[1].Suspect)
	}

	rep = sw.SweepOnce(ctx)
	if rep.Withdrawn != 1 {
		t.Fatalf("sweep 2 report = %+v, want 1 withdrawal", rep)
	}
	if n := tr.OfferCount(); n != 1 {
		t.Fatalf("offers after withdrawal = %d, want 1", n)
	}
}

func TestSweeperWithdrawsWithinOneSweepAtThresholdOne(t *testing.T) {
	tr, fp, sw := newSweeperFixture(t, WithFailThreshold(1))
	if _, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 70, "USD")); err != nil {
		t.Fatal(err)
	}
	fp.setDead(carRef(1), true)
	rep := sw.SweepOnce(context.Background())
	if rep.Withdrawn != 1 || tr.OfferCount() != 0 {
		t.Fatalf("report = %+v, offers = %d; want immediate withdrawal", rep, tr.OfferCount())
	}
}

// TestSweeperRecovery: a provider that answers again is un-suspected
// and its failure streak resets — one new failure only re-suspects, it
// does not withdraw.
func TestSweeperRecovery(t *testing.T) {
	tr, fp, sw := newSweeperFixture(t, WithFailThreshold(2))
	ctx := context.Background()
	id, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 70, "USD"))
	if err != nil {
		t.Fatal(err)
	}

	fp.setDead(carRef(1), true)
	if rep := sw.SweepOnce(ctx); rep.Suspected != 1 {
		t.Fatalf("sweep 1 = %+v", rep)
	}

	fp.setDead(carRef(1), false)
	if rep := sw.SweepOnce(ctx); rep.Healthy != 1 {
		t.Fatalf("sweep 2 = %+v", rep)
	}
	for _, o := range tr.Offers() {
		if o.ID == id && o.Suspect {
			t.Fatal("recovered offer still marked suspect")
		}
	}

	// The streak restarted: this failure is the first again.
	fp.setDead(carRef(1), true)
	if rep := sw.SweepOnce(ctx); rep.Withdrawn != 0 || rep.Suspected != 1 {
		t.Fatalf("sweep 3 = %+v, want suspect (streak reset), not withdrawal", rep)
	}
	if tr.OfferCount() != 1 {
		t.Fatal("offer withdrawn despite reset failure streak")
	}
}

// TestSweeperBlackholedProviderDoesNotPoisonOthers: one provider that
// never answers (its probe runs into the per-probe timeout) must not
// eat the sweep budget and drag healthy providers into bogus
// suspect/withdraw verdicts.
func TestSweeperBlackholedProviderDoesNotPoisonOthers(t *testing.T) {
	tr := New("sweep-bh", newCarRepo(t))
	blackholed, healthy := carRef(1), carRef(2)
	ping := func(ctx context.Context, r ref.ServiceRef) error {
		if r == blackholed {
			<-ctx.Done() // never answers; only the probe timeout ends this
			return ctx.Err()
		}
		return nil
	}
	sw := NewSweeper(tr, nil, WithPingFunc(ping), WithProbeTimeout(20*time.Millisecond))
	t.Cleanup(func() { _ = sw.Close() })
	if _, err := tr.Export("CarRentalService", blackholed, carProps("FIAT_Uno", 70, "USD")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Export("CarRentalService", healthy, carProps("FIAT_Uno", 80, "USD")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rep := sw.SweepOnce(ctx)
	if rep.Checked != 2 || rep.Healthy != 1 || rep.Suspected != 1 || rep.Skipped != 0 {
		t.Fatalf("report = %+v; the healthy provider must not share the black hole's fate", rep)
	}
	for _, o := range tr.Offers() {
		if o.Ref == healthy && o.Suspect {
			t.Fatal("healthy provider marked suspect behind a black-holed one")
		}
	}
}

// TestSweeperBudgetExhaustionSkipsInsteadOfFailing: a sweep whose
// budget is already gone probes nothing — and counts nothing as a
// failure. Unprobed offers keep their streak: they neither advance
// toward withdrawal nor lose the failures already observed.
func TestSweeperBudgetExhaustionSkipsInsteadOfFailing(t *testing.T) {
	tr, fp, sw := newSweeperFixture(t, WithFailThreshold(2))
	if _, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 70, "USD")); err != nil {
		t.Fatal(err)
	}
	fp.setDead(carRef(1), true)

	if rep := sw.SweepOnce(context.Background()); rep.Suspected != 1 {
		t.Fatalf("sweep 1 = %+v, want one suspect", rep)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	rep := sw.SweepOnce(expired)
	if rep.Skipped != 1 || rep.Checked != 0 || rep.Suspected != 0 || rep.Withdrawn != 0 {
		t.Fatalf("budgetless sweep = %+v, want 1 skip and no verdicts", rep)
	}
	if tr.OfferCount() != 1 {
		t.Fatal("budgetless sweep withdrew an offer")
	}

	// The streak survived the skip: the next genuine failure is the
	// second strike and withdraws.
	if rep := sw.SweepOnce(context.Background()); rep.Withdrawn != 1 {
		t.Fatalf("sweep 3 = %+v, want withdrawal (streak preserved across skip)", rep)
	}
}

// TestSweeperProbesOncePerProvider: many offers behind one reference
// share a single probe per sweep.
func TestSweeperProbesOncePerProvider(t *testing.T) {
	tr, fp, sw := newSweeperFixture(t)
	for i := 0; i < 5; i++ {
		if _, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 70+float64(i), "USD")); err != nil {
			t.Fatal(err)
		}
	}
	rep := sw.SweepOnce(context.Background())
	if rep.Checked != 5 {
		t.Fatalf("Checked = %d, want 5", rep.Checked)
	}
	if fp.hits != 1 {
		t.Fatalf("pings = %d, want 1 (one probe per provider)", fp.hits)
	}
}

// TestSweeperReclaimsExpiredLeases: each sweep also purges expired
// leases, under the trader's injected clock.
func TestSweeperReclaimsExpiredLeases(t *testing.T) {
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tr := New("sweep-lease", newCarRepo(t), WithClock(clock))
	fp := &fakePinger{}
	sw := NewSweeper(tr, nil, WithPingFunc(fp.ping))
	defer sw.Close()

	if _, err := tr.ExportLease("CarRentalService", carRef(1), carProps("FIAT_Uno", 70, "USD"), time.Minute); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	rep := sw.SweepOnce(context.Background())
	if rep.Expired != 1 || rep.Checked != 0 {
		t.Fatalf("report = %+v, want 1 expiry and no probes of expired offers", rep)
	}
	if tr.OfferCount() != 0 {
		t.Fatal("expired offer not reclaimed")
	}
}

// TestSweeperBackgroundLoop drives the background goroutine through an
// injected tick channel — the fake-clock pattern for the sweep timer.
func TestSweeperBackgroundLoop(t *testing.T) {
	tr := New("sweep-bg", newCarRepo(t))
	if _, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 70, "USD")); err != nil {
		t.Fatal(err)
	}
	swept := make(chan ref.ServiceRef, 4)
	tick := make(chan time.Time)
	sw := NewSweeper(tr, nil,
		WithFailThreshold(1),
		WithSweepTick(tick),
		WithPingFunc(func(_ context.Context, r ref.ServiceRef) error {
			swept <- r
			return errors.New("unreachable")
		}))
	sw.Start()
	defer sw.Close()

	tick <- time.Unix(6000, 0)
	select {
	case r := <-swept:
		if r != carRef(1) {
			t.Fatalf("probed %v, want %v", r, carRef(1))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tick did not trigger a sweep")
	}
	if err := sw.Close(); err != nil { // waits for the sweep to finish
		t.Fatal(err)
	}
	if tr.OfferCount() != 0 {
		t.Fatal("background sweep did not withdraw the dead offer")
	}
}

// startCarService hosts a minimal describable car rental service on a
// loopback endpoint and returns its reference.
func startCarService(t *testing.T, endpoint, name string) (*cosm.Node, ref.ServiceRef) {
	t.Helper()
	svc, err := cosm.NewService(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host(name, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe(endpoint); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor(name)
}

// fastPool returns a pool that fails dead endpoints quickly, so
// failover tests don't sit out retry backoffs.
func fastPool(t *testing.T) *wire.Pool {
	t.Helper()
	p := wire.NewPool(wire.WithCallPolicy(wire.CallPolicy{MaxAttempts: 1, AttemptTimeout: 2 * time.Second}))
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestBindFirstLiveSkipsDeadProviders(t *testing.T) {
	ctx := context.Background()
	_, live := startCarService(t, "loop:bfl-live", "LiveCars")
	pool := fastPool(t)

	dead := ref.New("loop:bfl-nobody", "DeadCars")
	offers := []*Offer{
		{ID: "o-dead", Ref: dead},
		{ID: "o-live", Ref: live},
	}
	conn, chosen, err := BindFirstLive(ctx, pool, offers)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.ID != "o-live" || conn.Ref() != live {
		t.Fatalf("bound %v via offer %s, want the live provider", conn.Ref(), chosen.ID)
	}
}

func TestBindFirstLiveAllDead(t *testing.T) {
	pool := fastPool(t)
	offers := []*Offer{
		{ID: "a", Ref: ref.New("loop:bfl-gone-1", "X")},
		{ID: "b", Ref: ref.New("loop:bfl-gone-2", "X")},
	}
	_, _, err := BindFirstLive(context.Background(), pool, offers)
	if !errors.Is(err, ErrNoLiveOffer) {
		t.Fatalf("err = %v, want ErrNoLiveOffer", err)
	}
	if _, _, err := BindFirstLive(context.Background(), pool, nil); !errors.Is(err, ErrNoLiveOffer) {
		t.Fatalf("empty offers err = %v, want ErrNoLiveOffer", err)
	}
}

// TestImportBindFailsOver is the trader-level acceptance path: the
// preferred (cheapest) offer's provider is dead, so ImportBind binds
// the next-best offer instead — no manual workaround by the client.
func TestImportBindFailsOver(t *testing.T) {
	ctx := context.Background()
	tr := New("failover", newCarRepo(t))
	pool := fastPool(t)

	deadNode, deadRef := startCarService(t, "loop:ib-cheap", "CheapCars")
	_, liveRef := startCarService(t, "loop:ib-solid", "SolidCars")
	if _, err := tr.Export("CarRentalService", deadRef, carProps("FIAT_Uno", 60, "USD")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Export("CarRentalService", liveRef, carProps("FIAT_Uno", 90, "USD")); err != nil {
		t.Fatal(err)
	}
	_ = deadNode.Close() // the cheapest provider crashes

	conn, offer, err := ImportBind(ctx, tr, pool, ImportRequest{
		Type:   "CarRentalService",
		Policy: "min:ChargePerDay",
	})
	if err != nil {
		t.Fatal(err)
	}
	if offer.Ref != liveRef || conn.Ref() != liveRef {
		t.Fatalf("bound %v, want failover to %v", conn.Ref(), liveRef)
	}
}

// TestImportBindNoMatch propagates the import result when nothing
// matches at all.
func TestImportBindNoMatch(t *testing.T) {
	tr := New("failover-none", newCarRepo(t))
	pool := fastPool(t)
	_, _, err := ImportBind(context.Background(), tr, pool, ImportRequest{
		Type:       "CarRentalService",
		Constraint: "ChargePerDay < 1",
	})
	if !errors.Is(err, ErrNoLiveOffer) {
		t.Fatalf("err = %v, want ErrNoLiveOffer for an empty match", err)
	}
}
