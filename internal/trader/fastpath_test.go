package trader

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
)

// --- randomized equivalence: indexed snapshots vs. linear scan -------

var (
	fpModels     = []string{"FIAT_Uno", "AUDI", "VW_Golf"}
	fpCurrencies = []string{"USD", "DEM", "FF", "SFR"}
	fpDepots     = []string{"HH", "M", "B", ""}
)

func fpOfferProps(r *rand.Rand) []sidl.Property {
	props := []sidl.Property{
		{Name: "CarModel", Value: sidl.EnumLit(fpModels[r.Intn(len(fpModels))])},
		{Name: "AverageMilage", Value: sidl.IntLit(int64(10000 + r.Intn(60000)))},
		{Name: "ChargePerDay", Value: sidl.FloatLit(float64(10 + r.Intn(190)))},
		{Name: "ChargeCurrency", Value: sidl.EnumLit(fpCurrencies[r.Intn(len(fpCurrencies))])},
	}
	// Extra, undeclared properties are permitted and exercise the
	// equality/bool indexes.
	if r.Intn(2) == 0 {
		props = append(props, sidl.Property{Name: "Premium", Value: sidl.BoolLit(r.Intn(2) == 0)})
	}
	if r.Intn(2) == 0 {
		props = append(props, sidl.Property{Name: "Depot", Value: sidl.StringLit(fpDepots[r.Intn(len(fpDepots))])})
	}
	// Occasionally a property whose *name* is an enum symbol used by
	// constraints ("CarModel == FIAT_Uno"): the index planner must then
	// refuse the posting-list shortcut, because the identifier no longer
	// uniformly resolves to a symbol.
	if r.Intn(8) == 0 {
		props = append(props, sidl.Property{Name: "FIAT_Uno", Value: sidl.EnumLit(fpModels[r.Intn(len(fpModels))])})
	}
	return props
}

func fpCmp(r *rand.Rand) string {
	return []string{"==", "!=", "<", "<=", ">", ">="}[r.Intn(6)]
}

func fpLeaf(r *rand.Rand) string {
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("ChargePerDay %s %d", fpCmp(r), 10+r.Intn(190))
	case 1:
		return fmt.Sprintf("AverageMilage %s %d", fpCmp(r), 10000+r.Intn(60000))
	case 2:
		return "CarModel == " + fpModels[r.Intn(len(fpModels))]
	case 3:
		return "ChargeCurrency != " + fpCurrencies[r.Intn(len(fpCurrencies))]
	case 4:
		return "Premium"
	case 5:
		return fmt.Sprintf("Depot == %q", fpDepots[r.Intn(len(fpDepots))])
	case 6:
		return fmt.Sprintf("%d < ChargePerDay", 10+r.Intn(190))
	default:
		return "CarModel == FIAT_Uno"
	}
}

func fpExpr(r *rand.Rand, depth int) string {
	if depth == 0 || r.Intn(3) == 0 {
		return fpLeaf(r)
	}
	switch r.Intn(3) {
	case 0:
		return "(" + fpExpr(r, depth-1) + ") && (" + fpExpr(r, depth-1) + ")"
	case 1:
		return "(" + fpExpr(r, depth-1) + ") || (" + fpExpr(r, depth-1) + ")"
	default:
		return "!(" + fpExpr(r, depth-1) + ")"
	}
}

// TestIndexedMatchesLinearProperty drives an indexed trader and a
// linear-scan trader through identical randomized export/withdraw/
// replace/suspect/lease histories and asserts every import returns
// exactly the same offers in the same order.
func TestIndexedMatchesLinearProperty(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(42))

	clock := time.Unix(1_000_000, 0)
	now := func() time.Time { return clock }

	// Same trader ID so both assign identical offer IDs.
	indexed := New("T", newCarRepo(t), WithClock(now))
	linear := New("T", newCarRepo(t), WithClock(now), WithoutOfferIndex())
	traders := []*Trader{indexed, linear}

	var ids []string
	export := func() {
		props := fpOfferProps(r)
		target := ref.New(fmt.Sprintf("tcp:10.1.%d.%d:7000", len(ids)/250, len(ids)%250), "CarRentalService")
		ttl := time.Duration(0)
		if r.Intn(4) == 0 {
			ttl = time.Duration(1+r.Intn(120)) * time.Second
		}
		var firstID string
		for i, tr := range traders {
			id, err := tr.ExportLease("CarRentalService", target, props, ttl)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				firstID = id
			} else if id != firstID {
				t.Fatalf("diverging offer ids %q vs %q", firstID, id)
			}
		}
		ids = append(ids, firstID)
	}

	policies := []string{"", "first", "min:ChargePerDay", "max:AverageMilage"}
	check := func(round int) {
		for k := 0; k < 8; k++ {
			req := ImportRequest{
				Type:       "CarRentalService",
				Constraint: fpExpr(r, 2),
				Policy:     policies[r.Intn(len(policies))],
				Max:        r.Intn(5), // 0 = all
			}
			a, errA := indexed.Import(ctx, req)
			b, errB := linear.Import(ctx, req)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("round %d %+v: errs %v vs %v", round, req, errA, errB)
			}
			if len(a) != len(b) {
				t.Fatalf("round %d constraint %q: indexed %d offers, linear %d", round, req.Constraint, len(a), len(b))
			}
			for i := range a {
				if a[i].ID != b[i].ID || a[i].Suspect != b[i].Suspect {
					t.Fatalf("round %d constraint %q offer %d: indexed %+v, linear %+v", round, req.Constraint, i, a[i], b[i])
				}
			}
		}
	}

	for round := 0; round < 30; round++ {
		for i := 0; i < 10; i++ {
			export()
		}
		// Mutate identically on both sides.
		if len(ids) > 0 && r.Intn(2) == 0 {
			id := ids[r.Intn(len(ids))]
			for _, tr := range traders {
				_ = tr.Withdraw(id)
			}
		}
		if len(ids) > 0 {
			id := ids[r.Intn(len(ids))]
			props := fpOfferProps(r)
			for _, tr := range traders {
				_ = tr.Replace(id, props)
			}
		}
		if len(ids) > 0 {
			id := ids[r.Intn(len(ids))]
			sus := r.Intn(2) == 0
			for _, tr := range traders {
				_ = tr.MarkSuspect(id, sus)
			}
		}
		clock = clock.Add(time.Duration(r.Intn(30)) * time.Second) // expire some leases
		check(round)
	}
	if indexed.OfferCount() != linear.OfferCount() {
		t.Fatalf("offer counts diverged: %d vs %d", indexed.OfferCount(), linear.OfferCount())
	}
}

// TestIndexGuardPropertyNamedLikeSymbol pins the planner subtlety the
// property test probes statistically: when some offer carries a
// property literally named "FIAT_Uno", the identifier in
// "CarModel == FIAT_Uno" no longer uniformly denotes an enum symbol,
// so the posting-list shortcut must be refused for that snapshot.
func TestIndexGuardPropertyNamedLikeSymbol(t *testing.T) {
	ctx := context.Background()
	tr := New("T", newCarRepo(t))

	// Offer 1: CarModel=AUDI plus a property named FIAT_Uno with value
	// AUDI; "CarModel == FIAT_Uno" evaluates prop-vs-prop and matches.
	props := append(carProps("AUDI", 100, "USD"),
		sidl.Property{Name: "FIAT_Uno", Value: sidl.EnumLit("AUDI")})
	if _, err := tr.Export("CarRentalService", carRef(1), props); err != nil {
		t.Fatal(err)
	}
	// Offer 2: a plain FIAT_Uno; matches via symbol comparison.
	if _, err := tr.Export("CarRentalService", carRef(2), carProps("FIAT_Uno", 80, "USD")); err != nil {
		t.Fatal(err)
	}
	// Offer 3: a plain VW_Golf; matches nothing.
	if _, err := tr.Export("CarRentalService", carRef(3), carProps("VW_Golf", 90, "USD")); err != nil {
		t.Fatal(err)
	}

	offers, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Constraint: "CarModel == FIAT_Uno"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("want offers 1 and 2, got %+v", offers)
	}
}

// --- import-result cache: hits, invalidation, TTL, leases ------------

func cacheCounters(reg *obs.Registry) map[string]uint64 {
	return reg.CounterVec("cosm_trader_import_cache_total", "", "outcome").Snapshot()
}

func TestImportCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	clock := time.Unix(1_000_000, 0)
	reg := obs.NewRegistry()
	tr := New("T", newCarRepo(t),
		WithClock(func() time.Time { return clock }),
		WithImportCacheTTL(time.Second),
		WithMetrics(reg))

	id1, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 80, "USD"))
	if err != nil {
		t.Fatal(err)
	}

	req := ImportRequest{Type: "CarRentalService", Policy: "min:ChargePerDay"}
	mustImport := func(wantN int) []*Offer {
		t.Helper()
		offers, err := tr.Import(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(offers) != wantN {
			t.Fatalf("got %d offers, want %d", len(offers), wantN)
		}
		return offers
	}

	mustImport(1)
	mustImport(1)
	c := cacheCounters(reg)
	if c["hit"] != 1 || c["miss"] != 1 {
		t.Fatalf("after repeat import: %v", c)
	}

	// Export invalidates: the new offer appears immediately.
	if _, err := tr.Export("CarRentalService", carRef(2), carProps("AUDI", 60, "USD")); err != nil {
		t.Fatal(err)
	}
	if offers := mustImport(2); offers[0].Props["CarModel"] != sidl.EnumLit("AUDI") {
		t.Fatalf("policy order lost after invalidation: %+v", offers)
	}

	// Replace invalidates: new properties visible immediately.
	if err := tr.Replace(id1, carProps("FIAT_Uno", 40, "USD")); err != nil {
		t.Fatal(err)
	}
	if offers := mustImport(2); offers[0].Props["ChargePerDay"] != sidl.FloatLit(40) {
		t.Fatalf("replace not visible: %+v", offers[0].Props)
	}

	// MarkSuspect invalidates: the suspect offer drops to the back.
	if err := tr.MarkSuspect(id1, true); err != nil {
		t.Fatal(err)
	}
	if offers := mustImport(2); !offers[1].Suspect {
		t.Fatalf("suspect partition lost: %+v", offers)
	}

	// Withdraw invalidates.
	if err := tr.Withdraw(id1); err != nil {
		t.Fatal(err)
	}
	mustImport(1)

	// Unchanged store: hits again until the TTL runs out.
	before := cacheCounters(reg)
	mustImport(1)
	clock = clock.Add(2 * time.Second)
	mustImport(1)
	after := cacheCounters(reg)
	if after["hit"] != before["hit"]+1 || after["miss"] != before["miss"]+1 {
		t.Fatalf("TTL expiry: before %v after %v", before, after)
	}

	// The random policy must never be served from the cache.
	before = cacheCounters(reg)
	if _, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Policy: "random"}); err != nil {
		t.Fatal(err)
	}
	after = cacheCounters(reg)
	if after["hit"] != before["hit"] || after["miss"] != before["miss"] {
		t.Fatalf("random policy touched the cache: before %v after %v", before, after)
	}
}

func TestImportCacheRespectsLeaseExpiry(t *testing.T) {
	ctx := context.Background()
	clock := time.Unix(1_000_000, 0)
	tr := New("T", newCarRepo(t),
		WithClock(func() time.Time { return clock }),
		WithImportCacheTTL(time.Hour)) // TTL far beyond the lease

	if _, err := tr.ExportLease("CarRentalService", carRef(1), carProps("FIAT_Uno", 80, "USD"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	req := ImportRequest{Type: "CarRentalService"}
	if offers, err := tr.Import(ctx, req); err != nil || len(offers) != 1 {
		t.Fatalf("offers = %v, %v", offers, err)
	}
	clock = clock.Add(11 * time.Second)
	// No store mutation happened, but the cached entry must not outlive
	// the offer's lease.
	if offers, err := tr.Import(ctx, req); err != nil || len(offers) != 0 {
		t.Fatalf("expired offer served from cache: %v, %v", offers, err)
	}
}

// --- constraint cache bound --------------------------------------------

func TestConstraintCacheBounded(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	tr := New("T", newCarRepo(t), WithConstraintCacheSize(4), WithMetrics(reg))
	if _, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 80, "USD")); err != nil {
		t.Fatal(err)
	}

	// A hostile importer sends a fresh constraint per request; the LRU
	// must stay at its bound instead of growing with every string.
	for i := 0; i < 100; i++ {
		req := ImportRequest{Type: "CarRentalService", Constraint: fmt.Sprintf("ChargePerDay < %d", 1000+i)}
		if _, err := tr.Import(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if n := tr.constraints.len(); n > 4 {
		t.Fatalf("constraint cache grew to %d entries (cap 4)", n)
	}

	// Repeats hit.
	snap := reg.CounterVec("cosm_trader_constraint_cache_total", "", "outcome").Snapshot()
	if snap["miss"] != 100 {
		t.Fatalf("miss = %d, want 100", snap["miss"])
	}
	req := ImportRequest{Type: "CarRentalService", Constraint: "ChargePerDay < 1099"}
	if _, err := tr.Import(ctx, req); err != nil {
		t.Fatal(err)
	}
	snap = reg.CounterVec("cosm_trader_constraint_cache_total", "", "outcome").Snapshot()
	if snap["hit"] != 1 {
		t.Fatalf("hit = %d, want 1 (snapshot %v)", snap["hit"], snap)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	var nilLRU *lruCache[int]
	nilLRU.add("x", 1) // nil cache: no-ops, no panic
	if _, ok := nilLRU.get("x"); ok || nilLRU.len() != 0 {
		t.Fatal("nil LRU must be inert")
	}
}

// --- concurrent export/import/withdraw on one shard -------------------

// TestShardConcurrency hammers a single service type (one shard, one
// bucket) with concurrent exporters, importers, withdrawers and
// mutators. Run under -race it proves the snapshot/COW discipline; the
// final drain proves no offer is leaked or double-freed.
func TestShardConcurrency(t *testing.T) {
	ctx := context.Background()
	tr := New("T", newCarRepo(t))

	const exporters = 4
	const perExporter = 50
	idCh := make(chan string, exporters*perExporter)
	var wg sync.WaitGroup

	for e := 0; e < exporters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < perExporter; i++ {
				target := ref.New(fmt.Sprintf("tcp:10.2.%d.%d:7000", e, i), "CarRentalService")
				id, err := tr.Export("CarRentalService", target, carProps("FIAT_Uno", float64(40+i%100), "USD"))
				if err != nil {
					t.Error(err)
					return
				}
				idCh <- id
			}
		}(e)
	}

	// Withdraw half of what gets exported, concurrently.
	withdrawn := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for i := 0; i < exporters*perExporter/2; i++ {
			id := <-idCh
			if err := tr.Withdraw(id); err == nil {
				n++
			}
		}
		withdrawn <- n
	}()

	// Importers loop over reads while the store churns.
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Constraint: "ChargePerDay < 90", Policy: "min:ChargePerDay"}); err != nil {
					t.Error(err)
					return
				}
				_ = tr.OfferCount()
			}
		}()
	}

	// Mutators flip suspect flags and replace properties on live offers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, o := range tr.liveOffers() {
				if i%2 == 0 {
					_ = tr.MarkSuspect(o.ID, true)
				} else {
					_ = tr.Replace(o.ID, carProps("AUDI", 99, "DEM"))
				}
				break
			}
		}
	}()

	// The withdrawer finishing implies the exporters are done (it
	// consumed half their IDs and they only block on the buffered
	// channel); stop the reader loops then wait everyone out.
	gotWithdrawn := <-withdrawn
	close(stop)
	wg.Wait()

	want := exporters*perExporter - gotWithdrawn
	if got := tr.OfferCount(); got != want {
		t.Fatalf("OfferCount = %d, want %d", got, want)
	}
	// Drain everything that remains; the store must end empty.
	var rest []string
	for _, o := range tr.Offers() {
		rest = append(rest, o.ID)
	}
	if n := tr.WithdrawAll(rest); n != want {
		t.Fatalf("WithdrawAll = %d, want %d", n, want)
	}
	if tr.OfferCount() != 0 {
		t.Fatalf("store not empty: %d", tr.OfferCount())
	}
}

// --- batch operations --------------------------------------------------

func TestExportAllAtomicValidation(t *testing.T) {
	tr := New("T", newCarRepo(t))
	items := []ExportItem{
		{Type: "CarRentalService", Ref: carRef(1), Props: carProps("FIAT_Uno", 80, "USD")},
		{Type: "NoSuchService", Ref: carRef(2), Props: carProps("AUDI", 90, "USD")},
	}
	if _, err := tr.ExportAll(items); err == nil {
		t.Fatal("batch with unknown type must fail")
	}
	if tr.OfferCount() != 0 {
		t.Fatalf("failed batch registered offers: %d", tr.OfferCount())
	}

	items[1].Type = "CarRentalService"
	ids, err := tr.ExportAll(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || tr.OfferCount() != 2 {
		t.Fatalf("ids = %v, count = %d", ids, tr.OfferCount())
	}
	if n := tr.WithdrawAll(append(ids, "T/o999")); n != 2 {
		t.Fatalf("WithdrawAll = %d, want 2 (unknown IDs skipped)", n)
	}
	if n := tr.WithdrawAll(ids); n != 0 {
		t.Fatalf("second WithdrawAll = %d, want 0", n)
	}
}

func TestRemoteBatchExportWithdraw(t *testing.T) {
	node, _, traderRef := startTraderNode(t, "trd-batch", "TB")
	ctx := context.Background()
	tc, err := DialTrader(ctx, node.Pool(), traderRef)
	if err != nil {
		t.Fatal(err)
	}

	items := []ExportItem{
		{Type: "CarRentalService", Ref: carRef(1), Props: carProps("FIAT_Uno", 80, "USD")},
		{Type: "CarRentalService", Ref: carRef(2), Props: carProps("AUDI", 120, "DEM"), TTL: time.Hour},
		{Type: "CarRentalService", Ref: carRef(3), Props: carProps("VW_Golf", 100, "USD")},
	}
	ids, err := tc.ExportAll(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}

	offers, err := tc.ImportWith(ctx, "CarRentalService", trader0OrderByCharge()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 3 || offers[0].Props["CarModel"] != sidl.EnumLit("FIAT_Uno") {
		t.Fatalf("offers = %+v", offers)
	}

	n, err := tc.WithdrawAll(ctx, append([]string{"TB/o999"}, ids[:2]...))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("WithdrawAll = %d, want 2", n)
	}
	left, err := tc.ImportWith(ctx, "CarRentalService")
	if err != nil || len(left) != 1 {
		t.Fatalf("left = %+v, %v", left, err)
	}
}

// trader0OrderByCharge keeps the wire test honest about using the
// options API end to end.
func trader0OrderByCharge() []ImportOption {
	return []ImportOption{Where("ChargePerDay > 0"), OrderBy("min:ChargePerDay")}
}
