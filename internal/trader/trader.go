package trader

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cosm/internal/journal"
	"cosm/internal/match"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

// Errors reported by the trader.
var (
	ErrOfferUnknown = errors.New("trader: unknown offer")
	ErrNoOffer      = errors.New("trader: no matching offer")
	ErrHopLimit     = errors.New("trader: federation hop limit exhausted")
)

// Offer is one exported service offer: the triangular relationship of
// Fig. 1 stores these at the trader (step 1) and hands matching ones to
// importers (step 3), which then bind directly (steps 4 and 5).
//
// Stored offers are immutable: mutation operations (Replace,
// MarkSuspect) swap in a fresh copy, so offers returned by Import are
// shared snapshots that must not be modified by callers.
type Offer struct {
	// ID is the trader-assigned offer identifier, unique per trader.
	ID string
	// Type names the registered service type the offer belongs to.
	Type string
	// Ref is the exporter's service reference for direct binding.
	Ref ref.ServiceRef
	// Props holds the characterising attribute values.
	Props map[string]sidl.Lit
	// Expires is the lease expiry instant; the zero value means the
	// offer never expires. Expired offers stop matching immediately and
	// are reclaimed by PurgeExpired. Leases let providers in an open
	// market disappear without leaving dangling offers behind — the
	// liveness gap of 1994-era traders that failure tests demonstrate.
	Expires time.Time
	// Suspect marks an offer whose provider failed its most recent
	// liveness probe (see Sweeper). Suspect offers still match — the
	// failure may have been a transient network hiccup and the bind
	// failover path skips dead providers anyway — but importers and
	// operators can see the flag and prefer healthy offers.
	Suspect bool
}

// expired reports whether the offer's lease has run out at time now.
func (o *Offer) expired(now time.Time) bool {
	return !o.Expires.IsZero() && now.After(o.Expires)
}

func (o *Offer) clone() *Offer {
	c := &Offer{ID: o.ID, Type: o.Type, Ref: o.Ref, Props: make(map[string]sidl.Lit, len(o.Props)), Expires: o.Expires, Suspect: o.Suspect}
	for k, v := range o.Props {
		c.Props[k] = v
	}
	return c
}

// Match is one graded import result: the offer plus how well it
// satisfies the request (see the match package for the grade lattice
// and scoring model). The Offer is a shared immutable snapshot; the
// grade and score are per-request and cost no offer copy.
type Match struct {
	*Offer
	// Grade classifies the match: exact type, conforming subtype, or
	// partial attribute satisfaction. Offers relayed by pre-grading
	// peers arrive as GradeNone and are re-graded by the origin trader.
	Grade match.Grade
	// Score orders matches of equal grade: the type-conformance score
	// (1.0 exact, decaying with declared subtype depth, 0.5 structural)
	// scaled down for partial-attribute matches so that every full
	// match outranks every partial one.
	Score float64
}

// ImportRequest is one import call (step 2 of Fig. 1). It doubles as
// the wire struct of the trader protocol; in-process callers usually
// build it with NewImport and the functional options (Where, OrderBy,
// Limit, Hops).
type ImportRequest struct {
	// Type is the requested service type.
	Type string
	// Constraint optionally filters by attribute values ("" matches all).
	Constraint string
	// Policy optionally orders the result ("" means "first").
	Policy string
	// Max bounds the number of returned offers (0 means all).
	Max int
	// HopLimit bounds federation forwarding; 0 searches only the local
	// trader, 1 also its direct partners, and so on.
	HopLimit int
	// MaxPeers bounds the number of partner traders consulted per hop
	// (0 means all eligible links — today's full fan-out).
	MaxPeers int
	// Hedge, when positive, queries one backup peer if the scattered
	// peers have not all answered within this delay.
	Hedge time.Duration
	// MinGrade floors the match grade of returned offers. The zero
	// value (GradeNone, what requests from pre-grading clients decode
	// to) keeps the classic behaviour: full matches only, exact or
	// conforming subtype. MinGrade(GradeExact) restricts to the literal
	// type; MinGrade(GradePartial) additionally surfaces offers whose
	// attributes satisfy only part of the constraint.
	MinGrade match.Grade

	// visited carries the trader IDs already consulted, for loop
	// protection across federation links.
	visited []string
}

// LinkDialer resolves a peer trader reference into a Federate; the
// wire-level LinkAdd operation uses it (see Trader.SetLinkDialer).
type LinkDialer func(ctx context.Context, peer ref.ServiceRef) (Federate, error)

// Federate is the linked-trader interface used for federation: both
// *Trader (in-process links) and *Client (remote links) implement it.
type Federate interface {
	// FederatedImport answers an import on behalf of a partner trader,
	// returning graded matches. Peers that predate grading return
	// GradeNone matches; the origin trader re-grades those against its
	// own hierarchy view.
	FederatedImport(ctx context.Context, req ImportRequest) ([]Match, error)
	// FederationID globally identifies the trader for loop protection.
	FederationID() string
}

// Trader is the ODP trading function: an offer store over a service type
// repository, with export/withdraw/replace/import operations, a
// management interface, and optional federation links. Safe for
// concurrent use.
//
// The offer store is sharded by service-type hash and serves imports
// from immutable per-type snapshots with attribute indexes (see
// offerStore), so the matching hot path takes no trader-wide lock.
type Trader struct {
	id    string
	types *typemgr.Repo
	store *offerStore
	seq   atomic.Uint64

	// mesh is the named federation link registry (see mesh.go); its
	// own mutex guards it, so concurrent AddLink and Import never race.
	mesh       *linkRegistry
	linkPolicy wire.BreakerPolicy
	linkDialer LinkDialer

	// summaryTTL bounds how long a gossiped offer summary may steer
	// routing; older summaries degrade the link to unknown coverage
	// (always consulted). Zero means summaries never expire.
	summaryTTL    time.Duration
	gossipHorizon int

	// Federation scatter tallies (see FedStats).
	fedImports atomic.Uint64
	fedPeers   atomic.Uint64
	fedRouted  atomic.Uint64
	fedFull    atomic.Uint64
	fedHedged  atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand

	now      func() time.Time
	useIndex bool

	// matchPhases are pluggable matcher stages run after the built-in
	// resolve/filter/score phases on every local match pass (see
	// WithMatchPhase).
	matchPhases []match.Phase[*Offer]

	// constraints caches compiled constraint expressions (bounded LRU;
	// nil disables caching).
	constraints *lruCache[*Constraint]

	// importTTL bounds how long an import result may be served from the
	// result cache; zero disables the cache.
	importTTL   time.Duration
	importCache *lruCache[*importCacheEntry]

	// journal, when attached via SetJournal, receives a logical record
	// for every offer and type mutation (see durable.go).
	journal *journal.Journal

	// applyMu orders journalled mutations against snapshot capture:
	// mutations hold it shared across append+apply, JournalSnapshot
	// holds it exclusively, so a snapshot never misses a journalled
	// record (see journalApply in durable.go).
	applyMu sync.RWMutex

	// repl carries the replication role, fencing epoch and follower
	// bookkeeping (see repl.go).
	repl replState

	log     *obs.Logger
	metrics traderMetrics

	// events, when attached via WithEvents, receives the trader's
	// cluster-lifecycle timeline: suspicion, candidacies, vote
	// grants/denials, promotions, demotions, fencing rejections,
	// snapshot installs and journal fail-stop latches. Nil-safe.
	events *obs.EventLog

	// votes, when attached via SetVoteLog, persists per-epoch vote
	// pledges so a restarted voter cannot grant two votes in one epoch
	// (see votelog.go).
	votes *VoteLog
}

// Default sizes of the trader's bounded caches.
const (
	defaultConstraintCacheSize = 256
	defaultImportCacheTTL      = 250 * time.Millisecond
	importCacheSize            = 512
)

// importCacheEntry is one cached import result plus everything needed
// to prove it still describes the store: the generation pair pins the
// set of matching types, the consulted bucket versions pin their
// contents, and expires bounds staleness by the trader's clock (and by
// the earliest lease expiry among the cached offers).
type importCacheEntry struct {
	expires   time.Time
	storeGen  uint64
	repoGen   uint64
	consulted []bucketVersion
	matches   []Match
}

// traderMetrics binds the cosm_trader_* metric families. The zero value
// (no registry) records nothing: obs instruments are nil-safe.
type traderMetrics struct {
	exports     *obs.Counter
	withdrawals *obs.Counter
	imports     *obs.CounterVec // by requested type
	matches     *obs.Histogram  // matches returned per import
	matchGrades *obs.CounterVec // by grade: exact, subtype, partial-attribute
	purged      *obs.Counter

	indexLookups     *obs.CounterVec // by index kind: eq, range, scan, linear
	snapshotRebuilds *obs.Counter
	importCache      *obs.CounterVec // by outcome: hit, miss
	constraintCache  *obs.CounterVec // by outcome: hit, miss

	replRecords       *obs.CounterVec // by direction: sent (leader), applied (follower)
	fencingRejections *obs.Counter
	elections         *obs.CounterVec // by outcome: won, lost, relocated, deposed

	fedScatter   *obs.CounterVec // by mode: routed, full
	fedConsulted *obs.Histogram  // peers consulted per federated import
	fedHedges    *obs.Counter
	fedTimeouts  *obs.Counter
	gossip       *obs.CounterVec // by outcome: accepted, stale, push_error
}

func newTraderMetrics(reg *obs.Registry) traderMetrics {
	if reg == nil {
		return traderMetrics{}
	}
	return traderMetrics{
		exports:     reg.Counter("cosm_trader_exports_total", "Offers exported."),
		withdrawals: reg.Counter("cosm_trader_withdrawals_total", "Offers withdrawn."),
		imports:     reg.CounterVec("cosm_trader_imports_total", "Import requests by requested service type.", "type"),
		matches:     reg.Histogram("cosm_trader_import_matches", "Offers returned per import.", obs.CountBuckets),
		matchGrades: reg.CounterVec("cosm_trader_match_grade_total", "Matches returned by semantic grade (exact, subtype, partial-attribute).", "grade"),
		purged:      reg.Counter("cosm_trader_offers_purged_total", "Expired offers reclaimed."),

		indexLookups:     reg.CounterVec("cosm_trader_index_lookups_total", "Type-bucket match passes by index kind (eq, range, scan, linear).", "kind"),
		snapshotRebuilds: reg.Counter("cosm_trader_index_snapshot_rebuilds_total", "Type snapshots rebuilt after writes."),
		importCache:      reg.CounterVec("cosm_trader_import_cache_total", "Import-result cache lookups by outcome.", "outcome"),
		constraintCache:  reg.CounterVec("cosm_trader_constraint_cache_total", "Compiled-constraint cache lookups by outcome.", "outcome"),

		replRecords:       reg.CounterVec("cosm_trader_repl_records_total", "Replication records by direction (sent by the leader, applied by the follower).", "dir"),
		fencingRejections: reg.Counter("cosm_trader_repl_fencing_rejections_total", "Replication batches or promotions rejected by epoch fencing."),
		elections:         reg.CounterVec("cosm_trader_elections_total", "Failover monitor outcomes (won, lost, relocated, deposed).", "outcome"),

		fedScatter:   reg.CounterVec("cosm_trader_fed_scatter_total", "Federated fan-outs by mode (routed by offer summaries, or full).", "mode"),
		fedConsulted: reg.Histogram("cosm_trader_fed_peers_consulted", "Peer traders consulted per federated import.", obs.CountBuckets),
		fedHedges:    reg.Counter("cosm_trader_fed_hedges_total", "Backup peer queries launched after the hedge delay."),
		fedTimeouts:  reg.Counter("cosm_trader_fed_gather_timeouts_total", "Federated gathers cut off at the deadline margin with peers still pending."),
		gossip:       reg.CounterVec("cosm_trader_gossip_total", "Offer-summary gossip by outcome (accepted, stale, push_error).", "outcome"),
	}
}

// Option configures a Trader.
type Option func(*Trader)

// WithRandSeed seeds the "random" selection policy deterministically
// (tests, reproducible benchmarks).
func WithRandSeed(seed int64) Option {
	return func(t *Trader) { t.rng = rand.New(rand.NewSource(seed)) }
}

// WithoutOfferIndex makes imports scan all offers linearly instead of
// using the sharded type snapshots; only the offer-index ablation
// benchmark and the index-equivalence property test should want this.
func WithoutOfferIndex() Option {
	return func(t *Trader) { t.useIndex = false }
}

// WithoutConstraintCache disables the compiled-constraint cache, so
// every import re-parses its constraint; only the constraint-compile
// ablation benchmark should want this.
func WithoutConstraintCache() Option {
	return func(t *Trader) { t.constraints = nil }
}

// WithConstraintCacheSize bounds the compiled-constraint LRU to n
// entries (default 256); n <= 0 disables the cache.
func WithConstraintCacheSize(n int) Option {
	return func(t *Trader) { t.constraints = newLRU[*Constraint](n) }
}

// WithImportCacheTTL bounds how long a local import result may be
// served from the result cache without re-matching (default 250ms).
// The cache is additionally invalidated by every store or type-repo
// mutation that could change the result, so the TTL only caps staleness
// relative to lease expiry of remote clocks. A non-positive d disables
// the cache.
func WithImportCacheTTL(d time.Duration) Option {
	return func(t *Trader) { t.importTTL = d }
}

// WithMatchPhase appends a pluggable stage to the semantic matching
// pipeline, run over the local match set after the built-in
// resolve/filter/score phases — the slot custom matchers (business
// rules, re-rankers, mediation planners) plug into. Phases must be
// deterministic and side-effect free on the offers: results may be
// served from the import cache, and offers are shared snapshots.
func WithMatchPhase(p match.Phase[*Offer]) Option {
	return func(t *Trader) { t.matchPhases = append(t.matchPhases, p) }
}

// WithClock injects a time source for lease handling (tests use a fake
// clock).
func WithClock(now func() time.Time) Option {
	return func(t *Trader) { t.now = now }
}

// WithLogger routes the trader's structured log through l: every
// import, export and withdrawal emits one event line, and imports are
// tagged with the trace carried by their context — the line that makes
// a federated import visible in each consulted trader's log under one
// trace ID. A nil l disables logging.
func WithLogger(l *obs.Logger) Option {
	return func(t *Trader) { t.log = l }
}

// WithMetrics records the trader's market activity — exports,
// withdrawals, imports by type, matches per import, purged offers,
// index/cache effectiveness and the live offer count — into reg's
// cosm_trader_* families. A nil reg disables recording.
func WithMetrics(reg *obs.Registry) Option {
	return func(t *Trader) {
		t.metrics = newTraderMetrics(reg)
		if reg != nil {
			reg.GaugeFunc("cosm_trader_offers", "Stored, unexpired offers.",
				func() float64 { return float64(t.OfferCount()) })
			reg.GaugeFunc("cosm_trader_epoch", "Current fencing epoch of the replication group.",
				func() float64 { return float64(t.Epoch()) })
			reg.GaugeFunc("cosm_trader_repl_lag_records", "Records the follower still has to apply (0 on a leader).",
				func() float64 { return float64(t.replLagRecords()) })
			reg.GaugeFunc("cosm_trader_repl_lag_seconds", "Seconds since the follower was last caught up with its leader (0 when caught up or leading).",
				func() float64 { return t.replLagSeconds() })
			reg.GaugeFunc("cosm_trader_links", "Registered federation links.",
				func() float64 { return float64(t.LinkCount()) })
		}
	}
}

// WithLinkPolicy configures the per-link circuit breakers of the
// federation link registry (default: the pool's DefaultBreakerPolicy).
// A policy with Threshold < 1 disables per-link breaking.
func WithLinkPolicy(policy wire.BreakerPolicy) Option {
	return func(t *Trader) { t.linkPolicy = policy }
}

// WithSummaryTTL bounds how long a gossiped offer summary may steer
// federated routing (default 30s): a link whose summary is older is
// treated as having unknown coverage and is always consulted, so a
// stalled gossiper degrades to the full fan-out instead of hiding
// offers. d <= 0 means summaries never expire.
func WithSummaryTTL(d time.Duration) Option {
	return func(t *Trader) { t.summaryTTL = d }
}

// WithGossipHorizon bounds how far reachability is re-advertised in
// this trader's summaries: 1 advertises only its own offers, 2 (the
// default) also relays what its direct links advertise as their own.
func WithGossipHorizon(h int) Option {
	return func(t *Trader) { t.gossipHorizon = h }
}

// WithEvents feeds the trader's cluster-lifecycle transitions into ev,
// the node's event timeline (exposed at /debug/events and merged
// cluster-wide by `cosmcli events`). A nil ev disables the feed.
func WithEvents(ev *obs.EventLog) Option {
	return func(t *Trader) { t.events = ev }
}

// event appends one timeline event; safe on a trader with no event log.
func (t *Trader) event(kind string, kv ...string) {
	t.events.Record(kind, kv...)
}

// WithReplSync makes mutations block until n followers have pulled the
// mutation's journal record (synchronous replication): an acknowledged
// export then survives the loss of the leader, because at least n
// followers hold it. timeout bounds the wait; on expiry the mutation
// fails, though its record stays in the leader's log (the ambiguity any
// synchronous-replication timeout has). n <= 0 keeps the default
// asynchronous mode.
func WithReplSync(n int, timeout time.Duration) Option {
	return func(t *Trader) {
		t.repl.syncN = n
		t.repl.syncWait = timeout
	}
}

// New returns a trader with the given identity over the given type
// repository. The identity must be unique within a federation.
func New(id string, types *typemgr.Repo, opts ...Option) *Trader {
	t := &Trader{
		id:            id,
		types:         types,
		rng:           rand.New(rand.NewSource(1)),
		now:           time.Now,
		useIndex:      true,
		constraints:   newLRU[*Constraint](defaultConstraintCacheSize),
		importTTL:     defaultImportCacheTTL,
		linkPolicy:    wire.DefaultBreakerPolicy(),
		summaryTTL:    defaultSummaryTTL,
		gossipHorizon: defaultGossipHorizon,
	}
	for _, o := range opts {
		o(t)
	}
	t.mesh = newLinkRegistry(t.linkPolicy)
	if t.importTTL > 0 {
		t.importCache = newLRU[*importCacheEntry](importCacheSize)
	}
	t.store = newOfferStore(types, func() time.Time { return t.now() })
	t.store.rebuilds = t.metrics.snapshotRebuilds
	return t
}

// Types exposes the management interface: the underlying service type
// repository (insert and delete service type entries, section 2.1).
func (t *Trader) Types() *typemgr.Repo { return t.types }

// FederationID implements Federate.
func (t *Trader) FederationID() string { return t.id }

// Export registers a service offer (step 1 of Fig. 1): the offer must
// name a registered service type and carry values for all of the type's
// attributes. It returns the assigned offer ID. The offer never expires;
// use ExportLease for leased offers.
func (t *Trader) Export(serviceType string, r ref.ServiceRef, props []sidl.Property) (string, error) {
	return t.ExportLease(serviceType, r, props, 0)
}

// ExportLease registers an offer with a lease: after ttl the offer stops
// matching and is reclaimed by PurgeExpired. ttl zero means no expiry.
func (t *Trader) ExportLease(serviceType string, r ref.ServiceRef, props []sidl.Property, ttl time.Duration) (string, error) {
	if err := t.leaderCheck(); err != nil {
		return "", err
	}
	if err := checkExport(t.types, serviceType, ttl, props); err != nil {
		return "", err
	}
	offer := t.makeOffer(serviceType, r, props, ttl)
	// WAL-first: a crash after the append replays the export, a crash
	// before it rejects the call — never a silently lost offer.
	rec := &walRecord{Op: opExport, Offers: []OfferRecord{offerToRecord(offer)}}
	if err := t.journalApply(rec, func() { t.commitOffer(offer, ttl) }); err != nil {
		return "", err
	}
	return offer.ID, nil
}

func checkExport(types *typemgr.Repo, serviceType string, ttl time.Duration, props []sidl.Property) error {
	if ttl < 0 {
		return fmt.Errorf("trader: negative lease %v", ttl)
	}
	return types.CheckOffer(serviceType, props)
}

// makeOffer builds one pre-validated offer with a fresh ID; the caller
// journals and then commits it.
func (t *Trader) makeOffer(serviceType string, r ref.ServiceRef, props []sidl.Property, ttl time.Duration) *Offer {
	propMap := make(map[string]sidl.Lit, len(props))
	for _, p := range props {
		propMap[p.Name] = p.Value
	}
	id := t.id + "/o" + strconv.FormatUint(t.seq.Add(1), 10)
	offer := &Offer{ID: id, Type: serviceType, Ref: r, Props: propMap}
	if ttl > 0 {
		offer.Expires = t.now().Add(ttl)
	}
	return offer
}

// commitOffer stores a journalled offer.
func (t *Trader) commitOffer(offer *Offer, ttl time.Duration) {
	t.store.insert(offer)
	t.metrics.exports.Inc()
	t.log.Log(nil, "export", "offer", offer.ID, "type", offer.Type, "ref", offer.Ref.String(), "ttl", ttl)
}

// ExportItem is one offer of an ExportAll batch.
type ExportItem struct {
	Type  string
	Ref   ref.ServiceRef
	Props []sidl.Property
	// TTL is the offer's lease; zero means no expiry.
	TTL time.Duration
}

// ExportAll registers a batch of offers in one call — the bulk path a
// provider daemon uses to publish its whole catalogue without one wire
// round trip per offer. The batch is validated up front and registers
// either completely or not at all; the returned IDs parallel items.
func (t *Trader) ExportAll(items []ExportItem) ([]string, error) {
	if err := t.leaderCheck(); err != nil {
		return nil, err
	}
	for i := range items {
		if err := checkExport(t.types, items[i].Type, items[i].TTL, items[i].Props); err != nil {
			return nil, fmt.Errorf("trader: batch item %d: %w", i, err)
		}
	}
	offers := make([]*Offer, len(items))
	recs := make([]OfferRecord, len(items))
	for i := range items {
		offers[i] = t.makeOffer(items[i].Type, items[i].Ref, items[i].Props, items[i].TTL)
		recs[i] = offerToRecord(offers[i])
	}
	// One journal record covers the whole batch: it registers completely
	// or not at all, matching the call's atomicity contract.
	ids := make([]string, len(items))
	err := t.journalApply(&walRecord{Op: opExport, Offers: recs}, func() {
		for i := range items {
			t.commitOffer(offers[i], items[i].TTL)
			ids[i] = offers[i].ID
		}
	})
	if err != nil {
		return nil, err
	}
	return ids, nil
}

// ExportSID registers an offer directly from a SID carrying a
// COSM_TraderExport module — the integration path of section 4.1. The
// service type is taken from the export's TOD field.
func (t *Trader) ExportSID(sid *sidl.SID, r ref.ServiceRef) (string, error) {
	if sid.Trader == nil {
		return "", fmt.Errorf("%w: SID %s has no trader export", typemgr.ErrBadType, sid.ServiceName)
	}
	return t.Export(sid.Trader.TypeOfService, r, sid.Trader.Properties)
}

// Withdraw removes an offer by ID.
func (t *Trader) Withdraw(offerID string) error {
	if err := t.leaderCheck(); err != nil {
		return err
	}
	if t.journalled() {
		// WAL-first, but only for offers that exist: the log carries no
		// rejected withdrawals. A concurrent withdrawal may still win the
		// race below; the duplicate record is idempotent on replay.
		if _, ok := t.store.lookup(offerID); !ok {
			return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
		}
		var raced bool
		err := t.journalApply(&walRecord{Op: opWithdraw, IDs: []string{offerID}}, func() {
			offer, ok := t.store.remove(offerID)
			if !ok {
				raced = true
				return
			}
			t.metrics.withdrawals.Inc()
			t.log.Log(nil, "withdraw", "offer", offerID, "type", offer.Type)
		})
		if err != nil {
			return err
		}
		if raced {
			return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
		}
		return nil
	}
	offer, ok := t.store.remove(offerID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	t.metrics.withdrawals.Inc()
	t.log.Log(nil, "withdraw", "offer", offerID, "type", offer.Type)
	return nil
}

// WithdrawAll removes a batch of offers and returns how many were
// actually withdrawn. Unknown IDs are skipped, so the call is
// idempotent — the shape a provider's shutdown path wants. A journal
// append failure is logged and the in-memory withdrawal proceeds: the
// call's contract is idempotent best-effort, and a provider retry after
// a recovery that resurrected the offers heals the divergence.
func (t *Trader) WithdrawAll(offerIDs []string) int {
	if err := t.leaderCheck(); err != nil {
		t.log.Log(nil, "not_leader", "op", opWithdrawAll, "err", err.Error())
		return 0
	}
	if len(offerIDs) == 0 {
		return 0
	}
	n, removed := 0, false
	remove := func() {
		removed = true
		for _, id := range offerIDs {
			if offer, ok := t.store.remove(id); ok {
				n++
				t.metrics.withdrawals.Inc()
				t.log.Log(nil, "withdraw", "offer", id, "type", offer.Type)
			}
		}
	}
	if err := t.journalApply(&walRecord{Op: opWithdrawAll, IDs: offerIDs}, remove); err != nil {
		t.log.Log(nil, "journal_error", "op", opWithdrawAll, "err", err.Error())
	}
	if !removed {
		// The append itself failed, so the in-memory withdrawal never
		// ran; proceed with it — the call is idempotent best-effort.
		remove()
	}
	return n
}

// Replace atomically replaces the properties of an existing offer (the
// "replacing of exported services" operation of section 2.1). The new
// properties must still satisfy the offer's service type.
func (t *Trader) Replace(offerID string, props []sidl.Property) error {
	if err := t.leaderCheck(); err != nil {
		return err
	}
	offer, ok := t.store.lookup(offerID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	if err := t.types.CheckOffer(offer.Type, props); err != nil {
		return err
	}
	propMap := make(map[string]sidl.Lit, len(props))
	for _, p := range props {
		propMap[p.Name] = p.Value
	}
	rec := &walRecord{Op: opReplace, IDs: []string{offerID}, Props: propsToRecords(propMap)}
	err := t.journalApply(rec, func() {
		// Copy-on-write swap; the offer may have been withdrawn
		// meanwhile (the journalled record is idempotent on replay).
		_, ok = t.store.update(offerID, func(old *Offer) *Offer {
			fresh := *old
			fresh.Props = propMap
			return &fresh
		})
	})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	return nil
}

// MarkSuspect flags or clears the liveness suspicion on an offer (see
// Offer.Suspect). It is called by the Sweeper; operators can also set
// it by hand through the management view.
func (t *Trader) MarkSuspect(offerID string, suspect bool) error {
	if err := t.leaderCheck(); err != nil {
		return err
	}
	if t.journalled() {
		if _, ok := t.store.lookup(offerID); !ok {
			return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
		}
		var ok bool
		err := t.journalApply(&walRecord{Op: opSuspect, IDs: []string{offerID}, Suspect: suspect}, func() {
			_, ok = t.store.update(offerID, func(old *Offer) *Offer {
				fresh := *old
				fresh.Suspect = suspect
				return &fresh
			})
		})
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
		}
		return nil
	}
	_, ok := t.store.update(offerID, func(old *Offer) *Offer {
		fresh := *old
		fresh.Suspect = suspect
		return &fresh
	})
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	return nil
}

// OfferCount returns the number of stored, unexpired offers.
func (t *Trader) OfferCount() int {
	return t.store.count(t.now())
}

// Offers returns a snapshot of all stored, unexpired offers, sorted by
// ID — the management view a trader operator inspects. The offers are
// deep copies and safe to modify.
func (t *Trader) Offers() []*Offer {
	live := t.store.live(t.now())
	out := make([]*Offer, len(live))
	for i, o := range live {
		out[i] = o.clone()
	}
	return out
}

// liveOffers returns the stored, unexpired offers sorted by ID without
// copying; the offers are immutable and must not be modified. The
// sweeper's probe loop uses this view.
func (t *Trader) liveOffers() []*Offer {
	return t.store.live(t.now())
}

// PurgeExpired removes offers whose lease has run out and returns how
// many were reclaimed.
func (t *Trader) PurgeExpired() int {
	if t.repl.follower.Load() {
		// Purges replicate from the leader's journal (they carry the
		// leader's purge instant); expired offers stop matching locally
		// regardless, so a follower never purges on its own.
		return 0
	}
	now := t.now()
	n := t.store.purgeExpired(now)
	if n > 0 {
		// Journalled after-apply with the purge instant: replay re-evaluates
		// expiry against the same absolute time, so recovery reclaims
		// exactly the offers this call did. Apply-before-append only ever
		// leaves a snapshot ahead of the watermark, which replay tolerates.
		if err := t.journalApply(&walRecord{Op: opPurge, At: now.UnixNano()}, nil); err != nil {
			t.log.Log(nil, "journal_error", "op", opPurge, "err", err.Error())
		}
		t.metrics.purged.Add(uint64(n))
		t.log.Log(nil, "purge", "reclaimed", n)
	}
	return n
}

// effectiveMinGrade maps a request's grade floor to the engine's: the
// zero value (unset, and what pre-grading peers send) means the classic
// behaviour — full matches only, exact type or conforming subtype.
func effectiveMinGrade(g match.Grade) match.Grade {
	if g == match.GradeNone {
		return match.GradeSubtype
	}
	return g
}

// Import matches a request against the local offer store and, when the
// request's hop limit permits, against federated partner traders
// (step 2/3 of Fig. 1). Results are constraint-filtered, policy-ordered,
// deduplicated by service reference, and truncated to Max. It is
// ImportGraded with the grades dropped.
//
// The returned offers are shared immutable snapshots; callers must not
// modify them.
func (t *Trader) Import(ctx context.Context, req ImportRequest) ([]*Offer, error) {
	ms, err := t.ImportGraded(ctx, req)
	if err != nil {
		return nil, err
	}
	offers := make([]*Offer, len(ms))
	for i := range ms {
		offers[i] = ms[i].Offer
	}
	return offers, nil
}

// ImportGraded is the semantic import: every returned offer carries the
// grade and score the matching pipeline assigned it (exact type,
// conforming subtype, or — when req.MinGrade admits it — partial
// attribute satisfaction). See Import for the ungraded convenience
// wrapper and the result-ordering contract.
func (t *Trader) ImportGraded(ctx context.Context, req ImportRequest) ([]Match, error) {
	t.metrics.imports.With(req.Type).Inc()
	constraint, err := t.compile(req.Constraint)
	if err != nil {
		return nil, err
	}
	policy, err := ParsePolicy(req.Policy)
	if err != nil {
		return nil, err
	}
	minGrade := effectiveMinGrade(req.MinGrade)

	// Purely local, deterministically ordered imports can be answered
	// from the result cache: entries are invalidated by any store or
	// type-repo change that could alter the result, so the TTL only
	// bounds reuse, it never hides a change.
	now := t.now()
	cacheable := t.importCache != nil && t.useIndex && req.HopLimit == 0 && policy.cacheable()
	var key string
	var storeGen, repoGen uint64
	if cacheable {
		key = req.Type + "\x1f" + req.Constraint + "\x1f" + req.Policy + "\x1f" +
			strconv.Itoa(req.Max) + "\x1f" + strconv.Itoa(int(minGrade))
		if e, ok := t.importCache.get(key); ok && !now.After(e.expires) && t.store.validate(e) {
			t.metrics.importCache.With("hit").Inc()
			matches := append([]Match(nil), e.matches...)
			t.recordMatches(matches)
			t.log.Log(ctx, "import", "type", req.Type, "constraint", req.Constraint,
				"hoplimit", req.HopLimit, "matches", len(matches), "cache", "hit")
			return matches, nil
		}
		t.metrics.importCache.With("miss").Inc()
		// Capture the generations before reading any snapshot: a write
		// racing with the match pass then fails the entry's validation.
		storeGen, repoGen = t.store.gens()
	}

	matches, consulted, err := t.localMatches(req.Type, constraint, minGrade)
	if err != nil {
		return nil, err
	}

	if req.HopLimit > 0 {
		matches = append(matches, t.federatedMatches(ctx, req)...)
	}

	// Deduplicate by target reference: the same service exported at two
	// federated traders is still one service. First occurrence wins, so
	// a local (already grade-ordered-by-bucket) match shadows a remote
	// duplicate of the same service.
	seen := make(map[ref.ServiceRef]bool, len(matches))
	unique := matches[:0]
	for _, m := range matches {
		if seen[m.Ref] {
			continue
		}
		seen[m.Ref] = true
		unique = append(unique, m)
	}
	matches = unique

	t.rngMu.Lock()
	policy.apply(matches, t.rng)
	t.rngMu.Unlock()

	// Stable partition: healthy offers precede suspect ones, each class
	// keeping its policy order. A suspect provider may be fine (the
	// probe failure could be transient), but importers walking the list
	// front-to-back — in particular the bind failover path — should
	// reach live providers first.
	sort.SliceStable(matches, func(i, j int) bool {
		return !matches[i].Suspect && matches[j].Suspect
	})

	if req.Max > 0 && len(matches) > req.Max {
		matches = matches[:req.Max]
	}

	if cacheable {
		expires := now.Add(t.importTTL)
		for _, m := range matches {
			// A cached result must not outlive its shortest lease.
			if !m.Expires.IsZero() && m.Expires.Before(expires) {
				expires = m.Expires
			}
		}
		t.importCache.add(key, &importCacheEntry{
			expires:   expires,
			storeGen:  storeGen,
			repoGen:   repoGen,
			consulted: consulted,
			matches:   append([]Match(nil), matches...),
		})
	}

	t.recordMatches(matches)
	// The import line carries the trace from ctx, so a federated import
	// shows up in each consulted trader's log under one trace ID.
	t.log.Log(ctx, "import", "type", req.Type, "constraint", req.Constraint,
		"hoplimit", req.HopLimit, "matches", len(matches))
	return matches, nil
}

// recordMatches feeds the per-import match count and per-grade tallies.
func (t *Trader) recordMatches(ms []Match) {
	t.metrics.matches.Observe(float64(len(ms)))
	for _, m := range ms {
		t.metrics.matchGrades.With(m.Grade.String()).Inc()
	}
}

// ImportOne returns the single best offer, or ErrNoOffer.
func (t *Trader) ImportOne(ctx context.Context, req ImportRequest) (*Offer, error) {
	req.Max = 1
	offers, err := t.Import(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(offers) == 0 {
		return nil, fmt.Errorf("%w: type %q constraint %q", ErrNoOffer, req.Type, req.Constraint)
	}
	return offers[0], nil
}

// FederatedImport implements Federate for in-process links.
func (t *Trader) FederatedImport(ctx context.Context, req ImportRequest) ([]Match, error) {
	return t.ImportGraded(ctx, req)
}

// compile returns the compiled form of a constraint expression, served
// from the bounded LRU when possible.
func (t *Trader) compile(src string) (*Constraint, error) {
	if t.constraints == nil {
		return Compile(src)
	}
	if c, ok := t.constraints.get(src); ok {
		t.metrics.constraintCache.With("hit").Inc()
		return c, nil
	}
	c, err := Compile(src)
	if err != nil {
		return nil, err
	}
	t.metrics.constraintCache.With("miss").Inc()
	t.constraints.add(src, c)
	return c, nil
}

// localMatches runs the semantic matching pipeline over the local
// store: phase 1 resolves the requested type to its graded conformant
// closure, phase 2 filters each closure bucket through the compiled
// constraint (index-narrowed when only full matches are wanted), phase
// 3 scores the survivors, and any WithMatchPhase stages run last. The
// result is sorted by offer ID; the bucket versions consulted feed the
// import-result cache. Offers are shared immutable snapshots.
func (t *Trader) localMatches(reqType string, constraint *Constraint, minGrade match.Grade) ([]Match, []bucketVersion, error) {
	now := t.now()

	var consulted []bucketVersion
	pipe := &match.Pipeline[*Offer]{
		Phases: t.matchPhases,
		Gather: func(tm match.TypeMatch, min match.Grade) ([]match.Graded[*Offer], error) {
			snap, ok := t.store.snapshot(tm.Name)
			if !ok {
				return nil, nil // withdrawn since resolve; the gens catch it
			}
			consulted = append(consulted, bucketVersion{name: tm.Name, version: snap.version})
			return t.gatherBucket(snap, tm, constraint, min, now), nil
		},
	}
	if t.useIndex {
		pipe.Resolve = func(rt string) ([]match.TypeMatch, error) { return t.store.resolve(rt), nil }
	} else {
		// Ablation path: no stored-bucket intersection, no snapshots,
		// no index narrowing — the requested type's closure is walked
		// per offer over a full store scan. WithoutOfferIndex is the
		// equivalence oracle the property test compares against.
		return t.linearMatches(reqType, constraint, minGrade, now)
	}

	gs, err := pipe.Run(reqType, minGrade)
	if err != nil {
		return nil, nil, err
	}
	matches := make([]Match, len(gs))
	for i, g := range gs {
		matches[i] = Match{Offer: g.Item, Grade: g.Grade, Score: g.Score}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].ID < matches[j].ID })
	return matches, consulted, nil
}

// gatherBucket is phase 2+3 for one conformant type bucket: candidate
// selection, constraint filtering and scoring. When the grade floor
// excludes partial-attribute matches the candidate set is narrowed
// through the snapshot's attribute indexes (every index hint is a
// necessary condition of a *full* match); with a partial floor the
// whole bucket must be scanned, because an offer failing every hint may
// still satisfy some conjuncts.
func (t *Trader) gatherBucket(snap *typeSnapshot, tm match.TypeMatch, constraint *Constraint, minGrade match.Grade, now time.Time) []match.Graded[*Offer] {
	var out []match.Graded[*Offer]
	if minGrade > match.GradePartial {
		candidates, kind := snap.candidates(constraint)
		t.metrics.indexLookups.With(kind).Inc()
		for _, o := range candidates {
			if o.expired(now) {
				continue
			}
			if constraint.Match(o.Props) {
				out = append(out, match.Graded[*Offer]{Item: o, Grade: tm.Grade, Score: tm.Score})
			}
		}
		return out
	}
	t.metrics.indexLookups.With("scan").Inc()
	for _, o := range snap.offers {
		if o.expired(now) {
			continue
		}
		out = appendGraded(out, o, tm, constraint)
	}
	return out
}

// appendGraded grades one type-conformant offer against the constraint
// — full (inheriting the bucket's type grade) or partial-attribute —
// and appends it; offers satisfying no conjunct are dropped.
func appendGraded(out []match.Graded[*Offer], o *Offer, tm match.TypeMatch, constraint *Constraint) []match.Graded[*Offer] {
	sat, total := constraint.satisfied(o.Props)
	switch {
	case sat == total:
		out = append(out, match.Graded[*Offer]{Item: o, Grade: tm.Grade, Score: tm.Score})
	case sat > 0:
		out = append(out, match.Graded[*Offer]{
			Item: o, Grade: match.GradePartial,
			Score: match.PartialScore(tm.Score, sat, total),
		})
	}
	return out
}

// linearMatches is the WithoutOfferIndex oracle: a full-store linear
// scan with a per-offer closure lookup, implementing exactly the same
// graded semantics as the indexed pipeline.
func (t *Trader) linearMatches(reqType string, constraint *Constraint, minGrade match.Grade, now time.Time) ([]Match, []bucketVersion, error) {
	t.metrics.indexLookups.With("linear").Inc()
	grades := map[string]match.TypeMatch{}
	if cl, err := t.types.ConformingTypes(reqType); err == nil {
		for _, tm := range match.GradeClosure(cl) {
			grades[tm.Name] = tm
		}
	} else {
		// Unknown request type: only literal type names match.
		grades[reqType] = match.TypeMatch{Name: reqType, Grade: match.GradeExact, Score: match.ScoreExact}
	}
	var gs []match.Graded[*Offer]
	for _, o := range t.store.all() {
		tm, ok := grades[o.Type]
		if !ok || o.expired(now) {
			continue
		}
		if minGrade > match.GradePartial {
			if tm.Grade.AtLeast(minGrade) && constraint.Match(o.Props) {
				gs = append(gs, match.Graded[*Offer]{Item: o, Grade: tm.Grade, Score: tm.Score})
			}
			continue
		}
		gs = appendGraded(gs, o, tm, constraint)
	}
	matches := make([]Match, 0, len(gs))
	for _, g := range gs {
		if g.Grade.AtLeast(minGrade) {
			matches = append(matches, Match{Offer: g.Item, Grade: g.Grade, Score: g.Score})
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].ID < matches[j].ID })
	return matches, nil, nil
}

// regradeRemote grades matches relayed by pre-grading peers (GradeNone
// on the wire) against this trader's own hierarchy view and drops
// anything below the request's effective grade floor — the tolerant-
// decode half of wire compatibility: an old peer's answer degrades to
// its vouched-for match set instead of erroring.
func (t *Trader) regradeRemote(reqType string, minGrade match.Grade, ms []Match) []Match {
	var cl []match.TypeMatch
	if c, err := t.types.ConformingTypes(reqType); err == nil {
		cl = match.GradeClosure(c)
	}
	kept := ms[:0]
	for _, m := range ms {
		if m.Grade == match.GradeNone {
			m.Grade, m.Score = match.GradeRemote(reqType, m.Type, cl)
		}
		if m.Grade.AtLeast(minGrade) {
			kept = append(kept, m)
		}
	}
	return kept
}
