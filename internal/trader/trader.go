package trader

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
)

// Errors reported by the trader.
var (
	ErrOfferUnknown = errors.New("trader: unknown offer")
	ErrNoOffer      = errors.New("trader: no matching offer")
	ErrHopLimit     = errors.New("trader: federation hop limit exhausted")
)

// Offer is one exported service offer: the triangular relationship of
// Fig. 1 stores these at the trader (step 1) and hands matching ones to
// importers (step 3), which then bind directly (steps 4 and 5).
type Offer struct {
	// ID is the trader-assigned offer identifier, unique per trader.
	ID string
	// Type names the registered service type the offer belongs to.
	Type string
	// Ref is the exporter's service reference for direct binding.
	Ref ref.ServiceRef
	// Props holds the characterising attribute values.
	Props map[string]sidl.Lit
	// Expires is the lease expiry instant; the zero value means the
	// offer never expires. Expired offers stop matching immediately and
	// are reclaimed by PurgeExpired. Leases let providers in an open
	// market disappear without leaving dangling offers behind — the
	// liveness gap of 1994-era traders that failure tests demonstrate.
	Expires time.Time
	// Suspect marks an offer whose provider failed its most recent
	// liveness probe (see Sweeper). Suspect offers still match — the
	// failure may have been a transient network hiccup and the bind
	// failover path skips dead providers anyway — but importers and
	// operators can see the flag and prefer healthy offers.
	Suspect bool
}

// expired reports whether the offer's lease has run out at time now.
func (o *Offer) expired(now time.Time) bool {
	return !o.Expires.IsZero() && now.After(o.Expires)
}

func (o *Offer) clone() *Offer {
	c := &Offer{ID: o.ID, Type: o.Type, Ref: o.Ref, Props: make(map[string]sidl.Lit, len(o.Props)), Expires: o.Expires, Suspect: o.Suspect}
	for k, v := range o.Props {
		c.Props[k] = v
	}
	return c
}

// ImportRequest is one import call (step 2 of Fig. 1).
type ImportRequest struct {
	// Type is the requested service type.
	Type string
	// Constraint optionally filters by attribute values ("" matches all).
	Constraint string
	// Policy optionally orders the result ("" means "first").
	Policy string
	// Max bounds the number of returned offers (0 means all).
	Max int
	// HopLimit bounds federation forwarding; 0 searches only the local
	// trader, 1 also its direct partners, and so on.
	HopLimit int

	// visited carries the trader IDs already consulted, for loop
	// protection across federation links.
	visited []string
}

// Federate is the linked-trader interface used for federation: both
// *Trader (in-process links) and *Client (remote links) implement it.
type Federate interface {
	// FederatedImport answers an import on behalf of a partner trader.
	FederatedImport(ctx context.Context, req ImportRequest) ([]*Offer, error)
	// FederationID globally identifies the trader for loop protection.
	FederationID() string
}

// Trader is the ODP trading function: an offer store over a service type
// repository, with export/withdraw/replace/import operations, a
// management interface, and optional federation links. Safe for
// concurrent use.
type Trader struct {
	id    string
	types *typemgr.Repo

	mu     sync.RWMutex
	seq    uint64
	byType map[string]map[string]*Offer // type -> offer id -> offer
	byID   map[string]*Offer
	links  []Federate
	rng    *rand.Rand

	now          func() time.Time
	useIndex     bool
	compileCache map[string]*Constraint

	log     *obs.Logger
	metrics traderMetrics
}

// traderMetrics binds the cosm_trader_* metric families. The zero value
// (no registry) records nothing: obs instruments are nil-safe.
type traderMetrics struct {
	exports     *obs.Counter
	withdrawals *obs.Counter
	imports     *obs.CounterVec // by requested type
	matches     *obs.Histogram  // matches returned per import
	purged      *obs.Counter
}

func newTraderMetrics(reg *obs.Registry) traderMetrics {
	if reg == nil {
		return traderMetrics{}
	}
	return traderMetrics{
		exports:     reg.Counter("cosm_trader_exports_total", "Offers exported."),
		withdrawals: reg.Counter("cosm_trader_withdrawals_total", "Offers withdrawn."),
		imports:     reg.CounterVec("cosm_trader_imports_total", "Import requests by requested service type.", "type"),
		matches:     reg.Histogram("cosm_trader_import_matches", "Offers returned per import.", obs.CountBuckets),
		purged:      reg.Counter("cosm_trader_offers_purged_total", "Expired offers reclaimed."),
	}
}

// Option configures a Trader.
type Option func(*Trader)

// WithRandSeed seeds the "random" selection policy deterministically
// (tests, reproducible benchmarks).
func WithRandSeed(seed int64) Option {
	return func(t *Trader) { t.rng = rand.New(rand.NewSource(seed)) }
}

// WithoutOfferIndex makes imports scan all offers linearly instead of
// using the per-type index; only the offer-index ablation benchmark
// should want this.
func WithoutOfferIndex() Option {
	return func(t *Trader) { t.useIndex = false }
}

// WithoutConstraintCache disables the compiled-constraint cache, so
// every import re-parses its constraint; only the constraint-compile
// ablation benchmark should want this.
func WithoutConstraintCache() Option {
	return func(t *Trader) { t.compileCache = nil }
}

// WithClock injects a time source for lease handling (tests use a fake
// clock).
func WithClock(now func() time.Time) Option {
	return func(t *Trader) { t.now = now }
}

// WithLogger routes the trader's structured log through l: every
// import, export and withdrawal emits one event line, and imports are
// tagged with the trace carried by their context — the line that makes
// a federated import visible in each consulted trader's log under one
// trace ID. A nil l disables logging.
func WithLogger(l *obs.Logger) Option {
	return func(t *Trader) { t.log = l }
}

// WithMetrics records the trader's market activity — exports,
// withdrawals, imports by type, matches per import, purged offers and
// the live offer count — into reg's cosm_trader_* families. A nil reg
// disables recording.
func WithMetrics(reg *obs.Registry) Option {
	return func(t *Trader) {
		t.metrics = newTraderMetrics(reg)
		if reg != nil {
			reg.GaugeFunc("cosm_trader_offers", "Stored, unexpired offers.",
				func() float64 { return float64(t.OfferCount()) })
		}
	}
}

// New returns a trader with the given identity over the given type
// repository. The identity must be unique within a federation.
func New(id string, types *typemgr.Repo, opts ...Option) *Trader {
	t := &Trader{
		id:           id,
		types:        types,
		byType:       map[string]map[string]*Offer{},
		byID:         map[string]*Offer{},
		rng:          rand.New(rand.NewSource(1)),
		now:          time.Now,
		useIndex:     true,
		compileCache: map[string]*Constraint{},
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Types exposes the management interface: the underlying service type
// repository (insert and delete service type entries, section 2.1).
func (t *Trader) Types() *typemgr.Repo { return t.types }

// FederationID implements Federate.
func (t *Trader) FederationID() string { return t.id }

// Link adds a federation partner consulted by imports with HopLimit > 0.
func (t *Trader) Link(partner Federate) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links = append(t.links, partner)
}

// Export registers a service offer (step 1 of Fig. 1): the offer must
// name a registered service type and carry values for all of the type's
// attributes. It returns the assigned offer ID. The offer never expires;
// use ExportLease for leased offers.
func (t *Trader) Export(serviceType string, r ref.ServiceRef, props []sidl.Property) (string, error) {
	return t.ExportLease(serviceType, r, props, 0)
}

// ExportLease registers an offer with a lease: after ttl the offer stops
// matching and is reclaimed by PurgeExpired. ttl zero means no expiry.
func (t *Trader) ExportLease(serviceType string, r ref.ServiceRef, props []sidl.Property, ttl time.Duration) (string, error) {
	if ttl < 0 {
		return "", fmt.Errorf("trader: negative lease %v", ttl)
	}
	if err := t.types.CheckOffer(serviceType, props); err != nil {
		return "", err
	}
	propMap := make(map[string]sidl.Lit, len(props))
	for _, p := range props {
		propMap[p.Name] = p.Value
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := t.id + "/o" + strconv.FormatUint(t.seq, 10)
	offer := &Offer{ID: id, Type: serviceType, Ref: r, Props: propMap}
	if ttl > 0 {
		offer.Expires = t.now().Add(ttl)
	}
	byID, ok := t.byType[serviceType]
	if !ok {
		byID = map[string]*Offer{}
		t.byType[serviceType] = byID
	}
	byID[id] = offer
	t.byID[id] = offer
	t.metrics.exports.Inc()
	t.log.Log(nil, "export", "offer", id, "type", serviceType, "ref", r.String(), "ttl", ttl)
	return id, nil
}

// ExportSID registers an offer directly from a SID carrying a
// COSM_TraderExport module — the integration path of section 4.1. The
// service type is taken from the export's TOD field.
func (t *Trader) ExportSID(sid *sidl.SID, r ref.ServiceRef) (string, error) {
	if sid.Trader == nil {
		return "", fmt.Errorf("%w: SID %s has no trader export", typemgr.ErrBadType, sid.ServiceName)
	}
	return t.Export(sid.Trader.TypeOfService, r, sid.Trader.Properties)
}

// Withdraw removes an offer by ID.
func (t *Trader) Withdraw(offerID string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	offer, ok := t.byID[offerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	delete(t.byID, offerID)
	delete(t.byType[offer.Type], offerID)
	if len(t.byType[offer.Type]) == 0 {
		delete(t.byType, offer.Type)
	}
	t.metrics.withdrawals.Inc()
	t.log.Log(nil, "withdraw", "offer", offerID, "type", offer.Type)
	return nil
}

// Replace atomically replaces the properties of an existing offer (the
// "replacing of exported services" operation of section 2.1). The new
// properties must still satisfy the offer's service type.
func (t *Trader) Replace(offerID string, props []sidl.Property) error {
	t.mu.RLock()
	offer, ok := t.byID[offerID]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	if err := t.types.CheckOffer(offer.Type, props); err != nil {
		return err
	}
	propMap := make(map[string]sidl.Lit, len(props))
	for _, p := range props {
		propMap[p.Name] = p.Value
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check under the write lock: the offer may have been withdrawn.
	offer, ok = t.byID[offerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	offer.Props = propMap
	return nil
}

// MarkSuspect flags or clears the liveness suspicion on an offer (see
// Offer.Suspect). It is called by the Sweeper; operators can also set
// it by hand through the management view.
func (t *Trader) MarkSuspect(offerID string, suspect bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	offer, ok := t.byID[offerID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrOfferUnknown, offerID)
	}
	offer.Suspect = suspect
	return nil
}

// OfferCount returns the number of stored, unexpired offers.
func (t *Trader) OfferCount() int {
	now := t.now()
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, o := range t.byID {
		if !o.expired(now) {
			n++
		}
	}
	return n
}

// Offers returns a snapshot of all stored, unexpired offers, sorted by
// ID — the management view a trader operator inspects.
func (t *Trader) Offers() []*Offer {
	now := t.now()
	t.mu.RLock()
	out := make([]*Offer, 0, len(t.byID))
	for _, o := range t.byID {
		if !o.expired(now) {
			out = append(out, o.clone())
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PurgeExpired removes offers whose lease has run out and returns how
// many were reclaimed.
func (t *Trader) PurgeExpired() int {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, o := range t.byID {
		if !o.expired(now) {
			continue
		}
		delete(t.byID, id)
		delete(t.byType[o.Type], id)
		if len(t.byType[o.Type]) == 0 {
			delete(t.byType, o.Type)
		}
		n++
	}
	if n > 0 {
		t.metrics.purged.Add(uint64(n))
		t.log.Log(nil, "purge", "reclaimed", n)
	}
	return n
}

// Import matches a request against the local offer store and, when the
// request's hop limit permits, against federated partner traders
// (step 2/3 of Fig. 1). Results are constraint-filtered, policy-ordered,
// deduplicated by service reference, and truncated to Max.
func (t *Trader) Import(ctx context.Context, req ImportRequest) ([]*Offer, error) {
	t.metrics.imports.With(req.Type).Inc()
	constraint, err := t.compile(req.Constraint)
	if err != nil {
		return nil, err
	}
	policy, err := ParsePolicy(req.Policy)
	if err != nil {
		return nil, err
	}

	matches, err := t.localMatches(req.Type, constraint)
	if err != nil {
		return nil, err
	}

	if req.HopLimit > 0 {
		partnerOffers := t.federatedMatches(ctx, req)
		matches = append(matches, partnerOffers...)
	}

	// Deduplicate by target reference: the same service exported at two
	// federated traders is still one service.
	seen := make(map[ref.ServiceRef]bool, len(matches))
	unique := matches[:0]
	for _, o := range matches {
		if seen[o.Ref] {
			continue
		}
		seen[o.Ref] = true
		unique = append(unique, o)
	}
	matches = unique

	t.mu.Lock()
	policy.apply(matches, t.rng)
	t.mu.Unlock()

	// Stable partition: healthy offers precede suspect ones, each class
	// keeping its policy order. A suspect provider may be fine (the
	// probe failure could be transient), but importers walking the list
	// front-to-back — in particular the bind failover path — should
	// reach live providers first.
	sort.SliceStable(matches, func(i, j int) bool {
		return !matches[i].Suspect && matches[j].Suspect
	})

	if req.Max > 0 && len(matches) > req.Max {
		matches = matches[:req.Max]
	}
	t.metrics.matches.Observe(float64(len(matches)))
	// The import line carries the trace from ctx, so a federated import
	// shows up in each consulted trader's log under one trace ID.
	t.log.Log(ctx, "import", "type", req.Type, "constraint", req.Constraint,
		"hoplimit", req.HopLimit, "matches", len(matches))
	return matches, nil
}

// ImportOne returns the single best offer, or ErrNoOffer.
func (t *Trader) ImportOne(ctx context.Context, req ImportRequest) (*Offer, error) {
	req.Max = 1
	offers, err := t.Import(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(offers) == 0 {
		return nil, fmt.Errorf("%w: type %q constraint %q", ErrNoOffer, req.Type, req.Constraint)
	}
	return offers[0], nil
}

// FederatedImport implements Federate for in-process links.
func (t *Trader) FederatedImport(ctx context.Context, req ImportRequest) ([]*Offer, error) {
	return t.Import(ctx, req)
}

func (t *Trader) compile(src string) (*Constraint, error) {
	t.mu.RLock()
	cached, ok := t.compileCache[src]
	t.mu.RUnlock()
	if ok {
		return cached, nil
	}
	c, err := Compile(src)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.compileCache != nil {
		t.compileCache[src] = c
	}
	t.mu.Unlock()
	return c, nil
}

// localMatches returns cloned matching offers from the local store.
func (t *Trader) localMatches(reqType string, constraint *Constraint) ([]*Offer, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	var candidates []*Offer
	if t.useIndex {
		// Typed lookup: the requested type's offers plus offers of every
		// stored type that conforms to it.
		for storedType, offers := range t.byType {
			ok := storedType == reqType
			if !ok {
				conf, err := t.types.Conforms(storedType, reqType)
				if err != nil {
					// Unknown stored types cannot conform; skip them.
					continue
				}
				ok = conf
			}
			if !ok {
				continue
			}
			for _, o := range offers {
				candidates = append(candidates, o)
			}
		}
	} else {
		// Ablation path: linear scan over every offer.
		for _, o := range t.byID {
			ok := o.Type == reqType
			if !ok {
				conf, err := t.types.Conforms(o.Type, reqType)
				if err != nil {
					continue
				}
				ok = conf
			}
			if ok {
				candidates = append(candidates, o)
			}
		}
	}

	now := t.now()
	matches := make([]*Offer, 0, len(candidates))
	for _, o := range candidates {
		if o.expired(now) {
			continue
		}
		if constraint.Match(o.Props) {
			matches = append(matches, o.clone())
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].ID < matches[j].ID })
	return matches, nil
}

// federatedMatches consults partner traders, decrementing the hop limit
// and carrying the visited set for loop protection. Partner failures are
// tolerated: federation widens the search best-effort, and the links are
// queried concurrently so one dead or black-holed partner costs nothing
// but its own (bounded) attempt. When ctx carries a deadline, collection
// stops with enough headroom left for the caller to assemble and return
// the partial result: slow links are abandoned, live links still count.
func (t *Trader) federatedMatches(ctx context.Context, req ImportRequest) []*Offer {
	t.mu.RLock()
	links := append([]Federate(nil), t.links...)
	t.mu.RUnlock()

	visited := append(append([]string(nil), req.visited...), t.id)
	sub := req
	sub.HopLimit--
	sub.Policy = "" // ordering happens once, at the originating trader
	sub.Max = 0
	sub.visited = visited

	asked := 0
	// Buffered to link count: a link that answers after the cutoff
	// deposits its result and exits instead of leaking a goroutine.
	results := make(chan []*Offer, len(links))
	for _, link := range links {
		skip := false
		for _, v := range visited {
			if v == link.FederationID() {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		asked++
		go func(link Federate) {
			offers, err := link.FederatedImport(ctx, sub)
			if err != nil {
				offers = nil
			}
			results <- offers
		}(link)
	}

	// Stop collecting at the deadline minus a margin for the originating
	// trader's own ordering and marshalling work.
	var cutoff <-chan time.Time
	if deadline, ok := ctx.Deadline(); ok {
		rem := time.Until(deadline)
		margin := rem / 5
		if margin < time.Millisecond {
			margin = time.Millisecond
		}
		if margin > 250*time.Millisecond {
			margin = 250 * time.Millisecond
		}
		timer := time.NewTimer(rem - margin)
		defer timer.Stop()
		cutoff = timer.C
	}

	var out []*Offer
	for i := 0; i < asked; i++ {
		select {
		case offers := <-results:
			out = append(out, offers...)
		case <-cutoff:
			return out
		case <-ctx.Done():
			return out
		}
	}
	return out
}
