package trader

import (
	"context"
	"errors"
	"fmt"

	"cosm/internal/cosm"
	"cosm/internal/wire"
)

// ErrNoLiveOffer reports that every matched offer's provider was dead.
var ErrNoLiveOffer = errors.New("trader: no live offer")

// Importer is the import surface shared by an in-process *Trader and a
// remote *Client, so the failover binding path below works against
// either.
type Importer interface {
	Import(ctx context.Context, req ImportRequest) ([]*Offer, error)
}

// BindFirstLive walks offers in order and binds the first one whose
// provider answers, returning the binding and the offer it came from.
// Offers whose providers are unreachable (connection-class failures,
// open breaker) or stale (the node answers but no longer hosts the
// service) are skipped; any other application-level refusal (ErrRemote)
// aborts immediately, since the provider is alive and retrying a
// different one would mask a real error. If every provider is dead the
// error wraps ErrNoLiveOffer and the per-offer failures.
func BindFirstLive(ctx context.Context, pool *wire.Pool, offers []*Offer) (*cosm.Conn, *Offer, error) {
	if len(offers) == 0 {
		return nil, nil, ErrNoLiveOffer
	}
	var failures []error
	for _, o := range offers {
		conn, err := cosm.Bind(ctx, pool, o.Ref)
		if err == nil {
			return conn, o, nil
		}
		if ctx.Err() != nil {
			return nil, nil, err
		}
		var re *wire.RemoteError
		if errors.As(err, &re) && re.Status != wire.StatusNoService {
			return nil, nil, err
		}
		failures = append(failures, fmt.Errorf("%s (%s): %w", o.ID, o.Ref, err))
	}
	return nil, nil, fmt.Errorf("%w: all %d candidate(s) unreachable: %w",
		ErrNoLiveOffer, len(offers), errors.Join(failures...))
}

// ImportBind is the resilient import->bind operation: import the
// preference-ordered offer list for req (healthy offers before suspect
// ones), then bind the first live provider. This is the client-side
// half of the liveness story — even before the sweeper withdraws a
// dead offer, importers fail over past it instead of failing.
func ImportBind(ctx context.Context, imp Importer, pool *wire.Pool, req ImportRequest) (*cosm.Conn, *Offer, error) {
	offers, err := imp.Import(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	return BindFirstLive(ctx, pool, offers)
}

// Select is the one-call service selection path: build the import
// request from functional options, import the preference-ordered offer
// list from imp (a local *Trader or remote *Client), and bind the first
// live provider:
//
//	conn, offer, err := trader.Select(ctx, trd, pool, "CarRentalService",
//	        trader.Where("ChargePerDay < 90"),
//	        trader.OrderBy("min:ChargePerDay"))
//
// It replaces the hand-rolled Import/ImportOne → BindFirstLive triangle
// at daemon and example call sites.
func Select(ctx context.Context, imp Importer, pool *wire.Pool, serviceType string, opts ...ImportOption) (*cosm.Conn, *Offer, error) {
	return ImportBind(ctx, imp, pool, NewImport(serviceType, opts...))
}
