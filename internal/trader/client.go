package trader

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// Client is a typed wrapper over a dynamic binding to a remote trader.
// It implements Federate, so a local trader can link remote traders into
// a federation exactly like in-process ones.
type Client struct {
	pool *wire.Pool
	tt   *traderTypes
	fid  string

	// redirect makes mutations chase a not-leader rejection's hint
	// (FollowLeaderHints); mu guards conn and leader across re-binds.
	redirect bool
	mu       sync.RWMutex
	conn     *cosm.Conn
	// leader caches the binding a leader hint pointed at, so every
	// mutation after the first goes straight to the leader instead of
	// paying a rejection + redirect round trip. Reads stay on conn (a
	// follower serves them locally, by design). Invalidated whenever
	// the cached binding answers with ErrNotLeader.
	leader *cosm.Conn
}

var _ Federate = (*Client)(nil)

// DialTrader binds to the trader behind r.
func DialTrader(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) (*Client, error) {
	conn, err := cosm.Bind(ctx, pool, r)
	if err != nil {
		return nil, err
	}
	tt, err := newTraderTypes()
	if err != nil {
		return nil, err
	}
	return &Client{pool: pool, conn: conn, tt: tt, fid: r.String()}, nil
}

// FederationID identifies the remote trader by its reference.
func (c *Client) FederationID() string { return c.fid }

// FollowLeaderHints makes mutation calls follow a not-leader rejection:
// when a demoted trader answers with "(leader at <ref>)", the client
// re-binds to that ref, remembers the leader binding for subsequent
// mutations, and retries the call once. Reads are unaffected (followers
// serve them locally, by design). Set before sharing the client between
// goroutines.
func (c *Client) FollowLeaderHints(on bool) { c.redirect = on }

// invoke routes one call through the current connection.
func (c *Client) invoke(ctx context.Context, op string, args ...*xcode.Value) (*cosm.Result, error) {
	c.mu.RLock()
	conn := c.conn
	c.mu.RUnlock()
	return conn.Invoke(ctx, op, args...)
}

// isNotLeaderError recognises a not-leader rejection whether it is the
// local ErrNotLeader or its text after crossing the wire.
func isNotLeaderError(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrNotLeader) || strings.Contains(err.Error(), ErrNotLeader.Error())
}

// mutConn picks the binding a mutation should use: the cached leader
// when hints are followed and one is known, the primary otherwise.
func (c *Client) mutConn() (conn *cosm.Conn, cached bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.redirect && c.leader != nil {
		return c.leader, true
	}
	return c.conn, false
}

// dropLeader invalidates the cached leader binding if it still is conn
// (a racing mutation may have already re-bound to a fresher leader).
func (c *Client) dropLeader(conn *cosm.Conn) {
	c.mu.Lock()
	if c.leader == conn {
		c.leader = nil
	}
	c.mu.Unlock()
}

// invokeMut is invoke for mutations: under FollowLeaderHints mutations
// go straight to the last known leader, and a not-leader rejection
// invalidates that cache, re-binds to the rejection's hinted leader and
// retries once.
func (c *Client) invokeMut(ctx context.Context, op string, args ...*xcode.Value) (*cosm.Result, error) {
	conn, cached := c.mutConn()
	res, err := conn.Invoke(ctx, op, args...)
	if err == nil || !c.redirect || !isNotLeaderError(err) {
		return res, err
	}
	if cached {
		// The cached leader was deposed; stop steering mutations at it.
		c.dropLeader(conn)
	}
	hint, ok := LeaderHintFromError(err)
	if !ok {
		if !cached {
			return res, err
		}
		// A stale cached leader with no forwarding hint: fall back to
		// the primary binding, which may know the new leader.
		c.mu.RLock()
		primary := c.conn
		c.mu.RUnlock()
		return primary.Invoke(ctx, op, args...)
	}
	r, perr := ref.Parse(hint)
	if perr != nil {
		return res, err
	}
	lconn, berr := cosm.Bind(ctx, c.pool, r)
	if berr != nil {
		return res, err
	}
	c.mu.Lock()
	c.leader = lconn
	c.mu.Unlock()
	return lconn.Invoke(ctx, op, args...)
}

// Export registers an offer at the remote trader.
func (c *Client) Export(ctx context.Context, serviceType string, target ref.ServiceRef, props []sidl.Property) (string, error) {
	propsV, err := c.tt.propsValue(props)
	if err != nil {
		return "", err
	}
	res, err := c.invokeMut(ctx, "Export",
		xcode.NewString(c.tt.strT, serviceType),
		xcode.NewRef(c.tt.refT, target),
		propsV)
	if err != nil {
		return "", fmt.Errorf("trader: remote export: %w", err)
	}
	return res.Value.Str, nil
}

// ExportLease registers an offer with a lease at the remote trader.
// ttl is rounded down to whole seconds; zero means no expiry.
func (c *Client) ExportLease(ctx context.Context, serviceType string, target ref.ServiceRef, props []sidl.Property, ttl time.Duration) (string, error) {
	propsV, err := c.tt.propsValue(props)
	if err != nil {
		return "", err
	}
	res, err := c.invokeMut(ctx, "ExportLease",
		xcode.NewString(c.tt.strT, serviceType),
		xcode.NewRef(c.tt.refT, target),
		propsV,
		xcode.NewInt(sidl.Basic(sidl.Int64), int64(ttl/time.Second)))
	if err != nil {
		return "", fmt.Errorf("trader: remote export lease: %w", err)
	}
	return res.Value.Str, nil
}

// ExportAll registers a batch of offers at the remote trader in one
// round trip. The batch registers completely or not at all; the
// returned IDs parallel items. Lease TTLs are rounded down to whole
// seconds.
func (c *Client) ExportAll(ctx context.Context, items []ExportItem) ([]string, error) {
	elems := make([]*xcode.Value, len(items))
	for i := range items {
		iv, err := c.tt.exportItemValue(items[i])
		if err != nil {
			return nil, err
		}
		elems[i] = iv
	}
	seq, err := xcode.NewSequence(c.tt.itemsT, elems...)
	if err != nil {
		return nil, err
	}
	res, err := c.invokeMut(ctx, "ExportAll", seq)
	if err != nil {
		return nil, fmt.Errorf("trader: remote export batch: %w", err)
	}
	ids := make([]string, 0, len(res.Value.Elems))
	for _, e := range res.Value.Elems {
		ids = append(ids, e.Str)
	}
	return ids, nil
}

// ExportSID registers an offer from SIDL text carrying a trader export.
func (c *Client) ExportSID(ctx context.Context, sid *sidl.SID, target ref.ServiceRef) (string, error) {
	text, err := sid.MarshalText()
	if err != nil {
		return "", err
	}
	res, err := c.invokeMut(ctx, "ExportSID",
		xcode.NewString(c.tt.strT, string(text)),
		xcode.NewRef(c.tt.refT, target))
	if err != nil {
		return "", fmt.Errorf("trader: remote export SID: %w", err)
	}
	return res.Value.Str, nil
}

// Withdraw removes an offer at the remote trader.
func (c *Client) Withdraw(ctx context.Context, offerID string) error {
	_, err := c.invokeMut(ctx, "Withdraw", xcode.NewString(c.tt.strT, offerID))
	if err != nil {
		return fmt.Errorf("trader: remote withdraw: %w", err)
	}
	return nil
}

// WithdrawAll removes a batch of offers at the remote trader in one
// round trip and returns how many were actually withdrawn. Unknown IDs
// are skipped (idempotent).
func (c *Client) WithdrawAll(ctx context.Context, offerIDs []string) (int, error) {
	seq, err := c.tt.namesValue(offerIDs)
	if err != nil {
		return 0, err
	}
	res, err := c.invokeMut(ctx, "WithdrawAll", seq)
	if err != nil {
		return 0, fmt.Errorf("trader: remote withdraw batch: %w", err)
	}
	return int(res.Value.Int), nil
}

// Replace replaces an offer's properties at the remote trader.
func (c *Client) Replace(ctx context.Context, offerID string, props []sidl.Property) error {
	propsV, err := c.tt.propsValue(props)
	if err != nil {
		return err
	}
	_, err = c.invokeMut(ctx, "Replace", xcode.NewString(c.tt.strT, offerID), propsV)
	if err != nil {
		return fmt.Errorf("trader: remote replace: %w", err)
	}
	return nil
}

// Import matches offers at the remote trader. It is ImportGraded with
// the grades dropped.
func (c *Client) Import(ctx context.Context, req ImportRequest) ([]*Offer, error) {
	ms, err := c.ImportGraded(ctx, req)
	if err != nil {
		return nil, err
	}
	offers := make([]*Offer, len(ms))
	for i := range ms {
		offers[i] = ms[i].Offer
	}
	return offers, nil
}

// ImportGraded matches offers at the remote trader, keeping the
// semantic grade and score of every match. A trader that predates
// grading answers plain offers; tolerant decode turns those into
// GradeNone matches (which the federation path re-grades locally).
func (c *Client) ImportGraded(ctx context.Context, req ImportRequest) ([]Match, error) {
	reqV, err := c.tt.importReqValue(req)
	if err != nil {
		return nil, err
	}
	res, err := c.invoke(ctx, "Import", reqV)
	if err != nil {
		return nil, fmt.Errorf("trader: remote import: %w", err)
	}
	ms := make([]Match, 0, len(res.Value.Elems))
	for _, ov := range res.Value.Elems {
		m, err := matchFromValue(ov)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// ImportWith is Import with the functional-options request builder.
func (c *Client) ImportWith(ctx context.Context, serviceType string, opts ...ImportOption) ([]*Offer, error) {
	return c.Import(ctx, NewImport(serviceType, opts...))
}

// ImportGradedWith is ImportGraded with the functional-options request
// builder.
func (c *Client) ImportGradedWith(ctx context.Context, serviceType string, opts ...ImportOption) ([]Match, error) {
	return c.ImportGraded(ctx, NewImport(serviceType, opts...))
}

// ImportOneWith is ImportOne with the functional-options request
// builder: it returns the single best remote offer, or ErrNoOffer.
func (c *Client) ImportOneWith(ctx context.Context, serviceType string, opts ...ImportOption) (*Offer, error) {
	return c.ImportOne(ctx, NewImport(serviceType, opts...))
}

// ImportOne returns the single best remote offer, or ErrNoOffer.
func (c *Client) ImportOne(ctx context.Context, req ImportRequest) (*Offer, error) {
	req.Max = 1
	offers, err := c.Import(ctx, req)
	if err != nil {
		return nil, err
	}
	if len(offers) == 0 {
		return nil, fmt.Errorf("%w: type %q constraint %q", ErrNoOffer, req.Type, req.Constraint)
	}
	return offers[0], nil
}

// FederatedImport implements Federate over the wire.
func (c *Client) FederatedImport(ctx context.Context, req ImportRequest) ([]Match, error) {
	return c.ImportGraded(ctx, req)
}

// DefineTypeFromSID registers a service type at the remote trader's
// management interface, derived from SIDL text with a trader export.
func (c *Client) DefineTypeFromSID(ctx context.Context, sid *sidl.SID) error {
	text, err := sid.MarshalText()
	if err != nil {
		return err
	}
	_, err = c.invokeMut(ctx, "DefineTypeFromSID", xcode.NewString(c.tt.strT, string(text)))
	if err != nil {
		return fmt.Errorf("trader: remote define type: %w", err)
	}
	return nil
}

// TypeNames lists the remote trader's registered service types.
func (c *Client) TypeNames(ctx context.Context) ([]string, error) {
	res, err := c.invoke(ctx, "TypeNames")
	if err != nil {
		return nil, fmt.Errorf("trader: remote type names: %w", err)
	}
	names := make([]string, 0, len(res.Value.Elems))
	for _, e := range res.Value.Elems {
		names = append(names, e.Str)
	}
	return names, nil
}

// RemoveType removes a service type at the remote trader.
func (c *Client) RemoveType(ctx context.Context, name string) error {
	_, err := c.invokeMut(ctx, "RemoveType", xcode.NewString(c.tt.strT, name))
	if err != nil {
		return fmt.Errorf("trader: remote remove type: %w", err)
	}
	return nil
}

var _ SummaryPeer = (*Client)(nil)

// LinkAdd registers a named federation link at the remote trader,
// pointing at the trader behind peer. The remote trader resolves peer
// with its own link dialer.
func (c *Client) LinkAdd(ctx context.Context, name string, peer ref.ServiceRef) error {
	_, err := c.invokeMut(ctx, "LinkAdd",
		xcode.NewString(c.tt.strT, name),
		xcode.NewRef(c.tt.refT, peer))
	if err != nil {
		return fmt.Errorf("trader: remote link add: %w", err)
	}
	return nil
}

// LinkRemove removes a federation link at the remote trader.
func (c *Client) LinkRemove(ctx context.Context, name string) error {
	_, err := c.invokeMut(ctx, "LinkRemove", xcode.NewString(c.tt.strT, name))
	if err != nil {
		return fmt.Errorf("trader: remote link remove: %w", err)
	}
	return nil
}

// LinkList returns the remote trader's federation links.
func (c *Client) LinkList(ctx context.Context) ([]LinkInfo, error) {
	res, err := c.invoke(ctx, "LinkList")
	if err != nil {
		return nil, fmt.Errorf("trader: remote link list: %w", err)
	}
	links := make([]LinkInfo, 0, len(res.Value.Elems))
	for _, lv := range res.Value.Elems {
		li, err := linkInfoFromValue(lv)
		if err != nil {
			return nil, err
		}
		links = append(links, li)
	}
	return links, nil
}

// ExchangeSummary implements SummaryPeer over the wire: it pushes s to
// the remote trader and returns the summary it replies with, so a
// gossip round over a remote link works exactly like in-process.
func (c *Client) ExchangeSummary(ctx context.Context, s OfferSummary) (OfferSummary, error) {
	sv, err := c.tt.summaryValue(s)
	if err != nil {
		return OfferSummary{}, err
	}
	res, err := c.invoke(ctx, "SummaryExchange", sv)
	if err != nil {
		return OfferSummary{}, fmt.Errorf("trader: remote summary exchange: %w", err)
	}
	return summaryFromValue(res.Value)
}

var _ ReplSource = (*Client)(nil)

// ReplPull pulls one replication batch from the remote trader: up to
// max journal records after afterSeq, long-polling up to wait for new
// ones. The client implements ReplSource, so a follower's pull loop
// works over the wire exactly like in-process.
func (c *Client) ReplPull(ctx context.Context, followerID string, epoch, afterSeq uint64, max int, wait time.Duration) (*ReplBatch, error) {
	res, err := c.invoke(ctx, "ReplPull",
		xcode.NewString(c.tt.strT, followerID),
		xcode.NewInt(c.tt.int64T, int64(epoch)),
		xcode.NewInt(c.tt.int64T, int64(afterSeq)),
		xcode.NewInt(c.tt.int32T, int64(max)),
		xcode.NewInt(c.tt.int64T, int64(wait/time.Millisecond)))
	if err != nil {
		return nil, fmt.Errorf("trader: remote repl pull: %w", err)
	}
	return replBatchFromValue(res.Value)
}

// Promote asks the remote trader to take leadership at the given
// fencing epoch (which must be strictly greater than any it has seen).
func (c *Client) Promote(ctx context.Context, epoch uint64) error {
	_, err := c.invoke(ctx, "Promote", xcode.NewInt(c.tt.int64T, int64(epoch)))
	if err != nil {
		return fmt.Errorf("trader: remote promote: %w", err)
	}
	return nil
}

// ReplStatus reports the remote trader's replication role and
// position.
func (c *Client) ReplStatus(ctx context.Context) (ReplStatus, error) {
	res, err := c.invoke(ctx, "ReplStatus")
	if err != nil {
		return ReplStatus{}, fmt.Errorf("trader: remote repl status: %w", err)
	}
	return replStatusFromValue(res.Value)
}

var _ ElectionPeer = (*Client)(nil)

// RequestVote asks the remote trader for its vote in an election for
// newEpoch, declaring the candidate's applied position. The client
// implements ElectionPeer, so the failover monitor's election round
// works over the wire exactly like in-process.
func (c *Client) RequestVote(ctx context.Context, candidateID string, newEpoch, applied uint64) (Vote, error) {
	res, err := c.invoke(ctx, "RequestVote",
		xcode.NewString(c.tt.strT, candidateID),
		xcode.NewInt(c.tt.int64T, int64(newEpoch)),
		xcode.NewInt(c.tt.int64T, int64(applied)))
	if err != nil {
		return Vote{}, fmt.Errorf("trader: remote request vote: %w", err)
	}
	return voteFromValue(res.Value)
}
