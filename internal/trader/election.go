package trader

// Automatic failover: each node of a replicated trader group runs a
// Monitor. Followers watch their leader's health through the pull loop
// — N consecutive failed pulls (the suspicion window) mark the leader
// suspect and trigger an election. A candidate asks every other
// configured cluster member for a vote at the next epoch, carrying its
// applied position; a member grants at most one vote per epoch
// (in-memory vote lock), only to candidates at least as advanced as
// itself, and only when its own leader link looks dead too (the health
// veto). Promotion requires acknowledgements from a majority of the
// configured cluster — the candidate's own vote included — so a
// partitioned minority can never assemble a quorum and mint a second
// leader for an epoch. The winner journals the new epoch through the
// exact same Promote path an operator would use.
//
// Leaders run the same Monitor in the other direction: a periodic scan
// for a higher epoch in the cluster. A leader that was deposed while
// down (the group elected past it) discovers the winner there and
// demote-rejoins as its follower — catching up through the ordinary
// pull path, with its divergent unacknowledged tail rewound by the
// first snapshot install — instead of staying fenced-and-dead.
//
// Vote pledges are durable when a vote ledger is attached (SetVoteLog):
// the (epoch, candidate) pair is fsynced into a per-node sidecar file
// before the grant leaves this node, and replayed on restart — so a
// voter that restarts inside one election round re-adopts its pledge
// instead of handing a second vote to a rival at the same epoch.
// Without a ledger the pledge is memory-only (in-process tests), and
// the journalled epochs alone still fence restarted *leaders*.

import (
	"context"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Vote is one member's reply to a RequestVote exchange. Granted aside,
// it carries the responder's own view — role, epoch, applied position,
// leader hint — which candidates use to find a live leader or a higher
// epoch they did not know about.
type Vote struct {
	Granted bool
	Role    string
	Epoch   uint64
	Applied uint64
	Leader  string
	// VoteEpoch is the highest epoch the responder's vote is pledged
	// at. A losing candidate adopts the round's maximum so its next
	// candidacy leaps past every observed pledge in one step, instead
	// of chasing an inflated rival lock one epoch per round.
	VoteEpoch uint64
}

// RequestVote serves one vote request: candidateID asks to lead at
// newEpoch with the given applied position. The reply always carries
// this member's own view; Granted is true only when every fencing rule
// passes.
func (t *Trader) RequestVote(ctx context.Context, candidateID string, newEpoch, applied uint64) (Vote, error) {
	v := Vote{Role: t.Role(), Epoch: t.Epoch(), Applied: t.electionApplied(), Leader: t.LeaderHint()}
	var deny string
	switch {
	case v.Role == RoleLeader && !t.journalFailed():
		// A live healthy leader denies: the candidate learns we exist
		// (and at what epoch) from the reply and stands down.
		deny = "live_leader"
	case newEpoch <= v.Epoch:
		// Stale candidacy: the group already moved past that epoch.
		deny = "stale_epoch"
	case applied < v.Applied:
		// Max-applied wins: granting would let a candidate missing
		// acknowledged records take over and lose them.
		deny = "behind_applied"
	case t.pullHealthy():
		// Our own pulls from the leader succeeded within the veto
		// window: the "dead" leader is probably just partitioned from
		// the candidate. Denying here stops a flapping minority link
		// from deposing a healthy leader.
		deny = "healthy_leader_link"
	case !t.tryVote(candidateID, newEpoch):
		// Vote lock: this epoch's vote already went to someone else —
		// or the durable pledge could not be persisted (fail-safe:
		// denying an extra vote never violates quorum safety).
		deny = "vote_locked"
	default:
		v.Granted = true
	}
	t.repl.mu.Lock()
	v.VoteEpoch = t.repl.voteEpoch
	t.repl.mu.Unlock()
	if v.Granted {
		t.event("vote_granted", "candidate", candidateID, "epoch", strconv.FormatUint(newEpoch, 10))
	} else {
		t.event("vote_denied", "candidate", candidateID, "epoch", strconv.FormatUint(newEpoch, 10), "reason", deny)
	}
	t.log.Log(ctx, "election_vote", "candidate", candidateID, "epoch", newEpoch, "granted", v.Granted, "deny", deny)
	return v, nil
}

// adoptVoteEpoch raises this node's vote pledge to e (clearing the
// pledged candidate, since no vote was actually granted at e). A
// candidate calls it with the maximum VoteEpoch seen in a lost round.
// The raise is persisted best-effort: losing it to a crash only costs
// one re-fought round, it cannot double a vote.
func (t *Trader) adoptVoteEpoch(e uint64) {
	t.repl.mu.Lock()
	if e > t.repl.voteEpoch {
		t.repl.voteEpoch, t.repl.votedFor = e, ""
		if t.votes != nil {
			if err := t.votes.Append(e, ""); err != nil {
				t.log.Log(nil, "vote_persist_failed", "epoch", e, "err", err.Error())
			}
		}
	}
	t.repl.mu.Unlock()
}

// tryVote takes the per-epoch vote lock: true when candidateID holds
// this trader's vote for epoch e (idempotent for the same candidate).
// With a vote ledger attached the pledge is fsynced before the lock is
// considered taken; a persist failure denies the vote (fail-safe).
func (t *Trader) tryVote(candidateID string, e uint64) bool {
	t.repl.mu.Lock()
	defer t.repl.mu.Unlock()
	if e < t.repl.voteEpoch {
		return false
	}
	if e == t.repl.voteEpoch && t.repl.votedFor != "" && t.repl.votedFor != candidateID {
		return false
	}
	if t.votes != nil && (e != t.repl.voteEpoch || t.repl.votedFor != candidateID) {
		if err := t.votes.Append(e, candidateID); err != nil {
			t.log.Log(nil, "vote_persist_failed", "epoch", e, "candidate", candidateID, "err", err.Error())
			return false
		}
	}
	t.repl.voteEpoch, t.repl.votedFor = e, candidateID
	return true
}

// electionTarget picks the epoch to stand for: past both the current
// fencing epoch and any epoch this node's vote is already pledged at.
// Standing again at a pledged epoch would deadlock rival candidacies —
// every vote lock held, no quorum ever assembled — so each fresh
// candidacy moves to a fresh epoch, exactly as Raft mints a fresh term.
func (t *Trader) electionTarget() uint64 {
	target := t.repl.epoch.Load() + 1
	t.repl.mu.Lock()
	if t.repl.voteEpoch >= target {
		target = t.repl.voteEpoch + 1
	}
	t.repl.mu.Unlock()
	return target
}

// electionApplied is the position votes compare: the applied pull
// position on a follower, the journal tail on a leader.
func (t *Trader) electionApplied() uint64 {
	if !t.repl.follower.Load() && t.journal != nil {
		return t.journal.Stats().LastSeq
	}
	return t.repl.applied.Load()
}

// pullHealthy reports whether this follower's own pulls succeeded
// within the vote health-veto window (0 disables the veto; NewMonitor
// arms it with the election timeout).
func (t *Trader) pullHealthy() bool {
	w := t.repl.voteHealthWindow.Load()
	if w <= 0 || !t.repl.follower.Load() {
		return false
	}
	last := t.repl.lastPullOK.Load()
	return last != 0 && t.now().UnixNano()-last < w
}

// journalFailed reports whether the attached journal latched fail-stop.
func (t *Trader) journalFailed() bool {
	return t.journal != nil && t.journal.Failed() != nil
}

// LeaderHintFromError extracts the leader ref from a not-leader
// rejection — "trader: not leader (leader at cosm://…)" — whether the
// error is the local ErrNotLeader or its text after crossing the wire
// as an application error.
func LeaderHintFromError(err error) (string, bool) {
	if err == nil {
		return "", false
	}
	s := err.Error()
	i := strings.Index(s, "leader at ")
	if i < 0 {
		return "", false
	}
	s = s[i+len("leader at "):]
	if j := strings.IndexByte(s, ')'); j >= 0 {
		s = s[:j]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return "", false
	}
	return s, true
}

// ElectionPeer is what the failover monitor needs from another cluster
// member — implemented by *Client (over the wire) and by *Trader
// directly (in-process tests and the soak harness).
type ElectionPeer interface {
	RequestVote(ctx context.Context, candidateID string, newEpoch, applied uint64) (Vote, error)
	ReplStatus(ctx context.Context) (ReplStatus, error)
}

// ReplStatus lets a *Trader serve as an in-process ElectionPeer.
func (t *Trader) ReplStatus(ctx context.Context) (ReplStatus, error) {
	return t.Status(), nil
}

// MonitorConfig parameterises a failover Monitor.
type MonitorConfig struct {
	// SelfID identifies this node in vote requests; it must be unique
	// within the cluster (the vote lock is keyed by it).
	SelfID string
	// SelfRef is this node's own service ref, so peer status hints
	// naming it are recognised as "us" and never chased.
	SelfRef string
	// PeerRefs are the refs of the OTHER configured cluster members;
	// the quorum rule counts len(PeerRefs)+1 members total.
	PeerRefs []string
	// Dial resolves a peer ref into an ElectionPeer. Dialing is lazy
	// and retried, so members may come up in any order.
	Dial func(ctx context.Context, ref string) (ElectionPeer, error)
	// Suspicion is how many consecutive failed pulls mark the leader
	// suspect (default 3).
	Suspicion int
	// ElectionTimeout bounds one election round, paces the monitor's
	// periodic scans, and doubles as the voter health-veto window
	// (default 2s).
	ElectionTimeout time.Duration
	// OnPromote, when set, observes a successful auto-promotion (the
	// daemon logs it).
	OnPromote func(epoch uint64)
}

// Monitor is the failure-detection and election loop of one cluster
// member. Followers detect a dead leader and run elections; leaders
// scan for a higher epoch and demote-rejoin when deposed.
type Monitor struct {
	t   *Trader
	f   *Follower
	cfg MonitorConfig

	misses  atomic.Int32  // consecutive failed pulls
	suspect chan struct{} // wakes the loop early once suspicion trips

	peerMu sync.Mutex
	peers  map[string]ElectionPeer

	rngMu sync.Mutex
	rng   *rand.Rand

	cancel context.CancelFunc
	done   chan struct{}
}

// NewMonitor wires a monitor over trader t and its pull loop f (which
// must not have been started yet: the monitor installs itself as f's
// pull-health observer). It also arms t's vote health veto with the
// election timeout.
func NewMonitor(t *Trader, f *Follower, cfg MonitorConfig) *Monitor {
	if cfg.Suspicion <= 0 {
		cfg.Suspicion = 3
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 2 * time.Second
	}
	m := &Monitor{
		t:       t,
		f:       f,
		cfg:     cfg,
		suspect: make(chan struct{}, 1),
		peers:   make(map[string]ElectionPeer),
		rng:     rand.New(rand.NewSource(seedFrom(cfg.SelfID + "/monitor"))),
	}
	t.repl.voteHealthWindow.Store(int64(cfg.ElectionTimeout))
	if f != nil {
		f.OnResult(m.observePull)
	}
	return m
}

// Start launches the monitor loop.
func (m *Monitor) Start() {
	// Grace period: a node that has never pulled is not "suspicious",
	// it is booting — without this, a cluster coming up out of order
	// would elect over a merely slow leader.
	m.t.repl.lastPullOK.CompareAndSwap(0, m.t.now().UnixNano())
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	m.done = make(chan struct{})
	go m.run(ctx)
}

// Close stops the monitor loop and waits for it to exit.
func (m *Monitor) Close() {
	if m.cancel == nil {
		return
	}
	m.cancel()
	<-m.done
}

// observePull is the Follower.OnResult hook: it counts consecutive
// misses and wakes the loop once the suspicion window fills.
func (m *Monitor) observePull(err error) {
	if err == nil {
		m.misses.Store(0)
		return
	}
	if n := m.misses.Add(1); int(n) >= m.cfg.Suspicion {
		select {
		case m.suspect <- struct{}{}:
		default:
		}
	}
}

func (m *Monitor) run(ctx context.Context) {
	defer close(m.done)
	for ctx.Err() == nil {
		m.pace(ctx)
		if ctx.Err() != nil {
			return
		}
		if m.t.journalFailed() {
			// Fail-stopped disk: this node can neither lead nor vote
			// itself forward; it sheds until an operator replaces it.
			continue
		}
		if m.t.Role() == RoleLeader {
			m.leaderScan(ctx)
			continue
		}
		if m.suspectNow() {
			m.t.event("suspect", "node", m.cfg.SelfID,
				"misses", strconv.Itoa(int(m.misses.Load())))
			// Decorrelate rival candidacies: followers detect a dead
			// leader together (their pulls fail together), and rivals
			// standing together split every vote round on the per-epoch
			// locks. A random pre-candidacy delay lets one stand first
			// — the other finds the winner in its relocate scan. Same
			// trick as Raft's randomized election timeout.
			m.rngMu.Lock()
			d := time.Duration(m.rng.Int63n(int64(m.cfg.ElectionTimeout)/2 + 1))
			m.rngMu.Unlock()
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
			if m.relocate(ctx) {
				continue // a live leader exists; no election needed
			}
			m.electionRound(ctx)
		}
	}
}

// pace sleeps about half an election timeout (with seeded jitter, so
// rival candidates decorrelate) or wakes early on suspicion.
func (m *Monitor) pace(ctx context.Context) {
	base := m.cfg.ElectionTimeout / 2
	m.rngMu.Lock()
	d := base + time.Duration(m.rng.Int63n(int64(base)+1))
	m.rngMu.Unlock()
	select {
	case <-time.After(d):
	case <-m.suspect:
	case <-ctx.Done():
	}
}

// suspectNow reports whether the leader currently looks dead: the
// suspicion window filled with consecutive misses, or no pull has
// succeeded for two election timeouts (covers a wedged loop that
// produces no results at all).
func (m *Monitor) suspectNow() bool {
	if int(m.misses.Load()) >= m.cfg.Suspicion {
		return true
	}
	last := m.t.repl.lastPullOK.Load()
	return last != 0 && m.t.now().UnixNano()-last > 2*int64(m.cfg.ElectionTimeout)
}

// resetHealth clears suspicion after the loop was re-pointed at a live
// leader, granting the new link a fresh grace period.
func (m *Monitor) resetHealth() {
	m.misses.Store(0)
	m.t.repl.lastPullOK.Store(m.t.now().UnixNano())
}

// peerStatus is one peer's status snapshot gathered by scanPeers.
type peerStatus struct {
	ref string
	st  ReplStatus
}

// scanPeers polls every configured peer's replication status
// concurrently, dropping unreachable ones.
func (m *Monitor) scanPeers(ctx context.Context) []peerStatus {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.ElectionTimeout)
	defer cancel()
	ch := make(chan peerStatus, len(m.cfg.PeerRefs))
	for _, ref := range m.cfg.PeerRefs {
		go func(ref string) {
			p, err := m.peer(ctx, ref)
			if err != nil {
				ch <- peerStatus{}
				return
			}
			st, err := p.ReplStatus(ctx)
			if err != nil {
				ch <- peerStatus{}
				return
			}
			ch <- peerStatus{ref: ref, st: st}
		}(ref)
	}
	var out []peerStatus
	for range m.cfg.PeerRefs {
		if ps := <-ch; ps.ref != "" {
			out = append(out, ps)
		}
	}
	return out
}

// bestLeader picks from a scan the ref of the highest-epoch leader at
// or past minEpoch. A member reporting itself leader is direct
// evidence; a follower's hint counts only at an epoch strictly past
// minEpoch (second-hand news of a newer leader), so a follower merely
// echoing the current leader cannot satisfy a deposed-leader scan.
func bestLeader(peers []peerStatus, minEpoch uint64, selfRef string) (string, uint64) {
	ref, epoch := "", uint64(0)
	for _, p := range peers {
		switch {
		case p.st.Role == RoleLeader && p.st.Epoch >= minEpoch && p.st.Epoch >= epoch && p.ref != selfRef:
			ref, epoch = p.ref, p.st.Epoch
		case p.st.Role == RoleFollower && p.st.Epoch > minEpoch && p.st.Epoch > epoch &&
			p.st.Leader != "" && p.st.Leader != selfRef:
			ref, epoch = p.st.Leader, p.st.Epoch
		}
	}
	return ref, epoch
}

// leaderScan (leader side) looks for a higher epoch in the cluster: a
// leader that was deposed while down discovers the winner here and
// rejoins as its follower instead of staying fenced.
func (m *Monitor) leaderScan(ctx context.Context) {
	cur := m.t.Epoch()
	ref, epoch := bestLeader(m.scanPeers(ctx), cur+1, m.cfg.SelfRef)
	if ref == "" {
		return
	}
	m.t.metrics.elections.With("deposed").Inc()
	m.t.event("deposed", "winner", ref, "epoch", strconv.FormatUint(epoch, 10))
	m.t.log.Log(ctx, "election_deposed", "winner", ref, "epoch", epoch, "own_epoch", cur)
	m.t.DemoteRejoin(ref)
	if m.f != nil {
		m.f.Retarget(ref)
	}
	m.resetHealth()
}

// relocate (follower side) checks whether a live leader is reachable
// before holding an election: the suspect leader itself answering the
// scan, or another member knowing of a newer one, just re-points the
// pull loop.
func (m *Monitor) relocate(ctx context.Context) bool {
	ref, _ := bestLeader(m.scanPeers(ctx), m.t.Epoch(), m.cfg.SelfRef)
	if ref == "" {
		return false
	}
	m.t.metrics.elections.With("relocated").Inc()
	m.t.event("relocate", "leader", ref)
	m.t.log.Log(ctx, "election_relocate", "leader", ref)
	m.t.repl.leaderHint.Store(ref)
	if m.f != nil {
		m.f.Retarget(ref)
	}
	m.resetHealth()
	return true
}

// electionRound runs one candidacy: vote for self at epoch+1, fan a
// RequestVote out to every peer, and promote on a strict majority of
// the configured cluster. Losing is cheap — the loop paces with jitter
// and retries while the leader stays dead.
func (m *Monitor) electionRound(ctx context.Context) {
	cur, applied := m.t.Epoch(), m.t.ReplApplied()
	target := m.t.electionTarget()
	if !m.t.tryVote(m.cfg.SelfID, target) {
		// A rival's concurrent RequestVote pledged our vote between
		// picking the target and locking it; the next round moves past.
		return
	}
	m.t.event("candidacy", "candidate", m.cfg.SelfID,
		"epoch", strconv.FormatUint(target, 10),
		"applied", strconv.FormatUint(applied, 10))
	rctx, cancel := context.WithTimeout(ctx, m.cfg.ElectionTimeout)
	defer cancel()
	type reply struct {
		ref string
		v   Vote
		err error
	}
	ch := make(chan reply, len(m.cfg.PeerRefs))
	for _, ref := range m.cfg.PeerRefs {
		go func(ref string) {
			p, err := m.peer(rctx, ref)
			if err != nil {
				ch <- reply{ref: ref, err: err}
				return
			}
			v, err := p.RequestVote(rctx, m.cfg.SelfID, target, applied)
			ch <- reply{ref: ref, v: v, err: err}
		}(ref)
	}
	votes := 1 // our own
	leaderRef := ""
	maxPledge := uint64(0)
	for range m.cfg.PeerRefs {
		r := <-ch
		if r.err != nil {
			continue
		}
		if r.v.Granted {
			votes++
		}
		if r.v.VoteEpoch > maxPledge {
			maxPledge = r.v.VoteEpoch
		}
		if r.v.Role == RoleLeader && r.v.Epoch >= cur {
			leaderRef = r.ref
		}
	}
	quorum := (len(m.cfg.PeerRefs)+1)/2 + 1
	switch {
	case leaderRef != "":
		// A live leader answered the vote round: the outage was on our
		// side (or already healed). Re-point instead of promoting.
		m.t.metrics.elections.With("relocated").Inc()
		m.t.event("relocate", "leader", leaderRef)
		m.t.log.Log(ctx, "election_relocate", "leader", leaderRef)
		m.t.repl.leaderHint.Store(leaderRef)
		if m.f != nil {
			m.f.Retarget(leaderRef)
		}
		m.resetHealth()
	case votes >= quorum:
		if err := m.t.Promote(target); err != nil {
			m.t.log.Log(ctx, "election_promote_failed", "epoch", target, "err", err.Error())
			return
		}
		m.t.metrics.elections.With("won").Inc()
		m.t.event("election_won", "epoch", strconv.FormatUint(target, 10),
			"votes", strconv.Itoa(votes), "quorum", strconv.Itoa(quorum))
		m.t.log.Log(ctx, "election_won", "epoch", target, "votes", votes, "quorum", quorum)
		m.resetHealth()
		if m.cfg.OnPromote != nil {
			m.cfg.OnPromote(target)
		}
	default:
		// Adopt the round's highest observed vote pledge, so the next
		// candidacy stands past it instead of losing to the same lock
		// one epoch higher each round.
		m.t.adoptVoteEpoch(maxPledge)
		m.t.metrics.elections.With("lost").Inc()
		m.t.event("election_lost", "epoch", strconv.FormatUint(target, 10),
			"votes", strconv.Itoa(votes), "quorum", strconv.Itoa(quorum))
		m.t.log.Log(ctx, "election_lost", "epoch", target, "votes", votes, "quorum", quorum)
	}
}

// peer resolves (and caches) one ElectionPeer. Entries survive broken
// connections — Client calls ride a pool that re-dials — so eviction
// is unnecessary.
func (m *Monitor) peer(ctx context.Context, ref string) (ElectionPeer, error) {
	m.peerMu.Lock()
	p := m.peers[ref]
	m.peerMu.Unlock()
	if p != nil {
		return p, nil
	}
	p, err := m.cfg.Dial(ctx, ref)
	if err != nil {
		return nil, err
	}
	m.peerMu.Lock()
	m.peers[ref] = p
	m.peerMu.Unlock()
	return p, nil
}
