package trader

// Semantic matchmaking tests: graded conformance-aware imports over a
// diamond hierarchy, the randomized indexed-vs-linear equivalence
// property, agreement between mesh summary routing and local matching,
// and wire compatibility with traders that predate grading.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cosm/internal/match"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
	"cosm/internal/xcode"
)

// hierType builds a minimal service type with int attributes.
func hierType(name, super string, attrs ...string) *typemgr.ServiceType {
	st := &typemgr.ServiceType{Name: name, Super: super}
	for _, a := range attrs {
		st.Attrs = append(st.Attrs, typemgr.AttrDef{Name: a, Type: sidl.Basic(sidl.Int64)})
	}
	return st
}

// hierDiamondRepo mirrors the typemgr diamond: A{x}; B{x,y} and C{x,z}
// declare Super=A; D{x,y,z} declares Super=B and reaches C only
// structurally.
func hierDiamondRepo(t testing.TB) *typemgr.Repo {
	t.Helper()
	r := typemgr.NewRepo()
	for _, st := range []*typemgr.ServiceType{
		hierType("A", "", "x"),
		hierType("B", "A", "x", "y"),
		hierType("C", "A", "x", "z"),
		hierType("D", "B", "x", "y", "z"),
	} {
		if err := r.Define(st); err != nil {
			t.Fatalf("Define(%s): %v", st.Name, err)
		}
	}
	return r
}

func intProps(kv ...any) []sidl.Property {
	props := make([]sidl.Property, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		props = append(props, sidl.Property{
			Name:  kv[i].(string),
			Value: sidl.IntLit(int64(kv[i+1].(int))),
		})
	}
	return props
}

func hierRef(i int) ref.ServiceRef {
	return ref.New(fmt.Sprintf("tcp:10.9.%d.%d:7000", i/250, i%250), "Hier")
}

// exportDiamond registers one offer per diamond type and returns the
// offer IDs keyed by type name.
func exportDiamond(t *testing.T, tr *Trader) map[string]string {
	t.Helper()
	ids := map[string]string{}
	for i, tc := range []struct {
		typ   string
		props []sidl.Property
	}{
		{"A", intProps("x", 1)},
		{"B", intProps("x", 1, "y", 2)},
		{"C", intProps("x", 1, "z", 3)},
		{"D", intProps("x", 1, "y", 2, "z", 3)},
	} {
		id, err := tr.Export(tc.typ, hierRef(i+1), tc.props)
		if err != nil {
			t.Fatalf("export %s: %v", tc.typ, err)
		}
		ids[tc.typ] = id
	}
	return ids
}

func TestImportGradedDiamond(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	tr := New("S", hierDiamondRepo(t), WithMetrics(reg))
	exportDiamond(t, tr)

	// Default import of the base type: the whole conformant closure,
	// graded exact for A and subtype for the rest, scored by depth.
	ms, err := tr.ImportGradedWith(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		grade match.Grade
		score float64
	}{
		"A": {match.GradeExact, 1.0},
		"B": {match.GradeSubtype, 0.9},
		"C": {match.GradeSubtype, 0.9},
		"D": {match.GradeSubtype, 0.85},
	}
	if len(ms) != len(want) {
		t.Fatalf("import A = %d matches, want %d: %+v", len(ms), len(want), ms)
	}
	for _, m := range ms {
		w := want[m.Type]
		if m.Grade != w.grade || m.Score != w.score {
			t.Fatalf("type %s graded (%s, %.2f), want (%s, %.2f)",
				m.Type, m.Grade, m.Score, w.grade, w.score)
		}
	}

	grades := reg.CounterVec("cosm_trader_match_grade_total", "", "grade").Snapshot()
	if grades["exact"] != 1 || grades["subtype"] != 3 {
		t.Fatalf("grade counters = %v, want exact=1 subtype=3", grades)
	}

	// GradeExact restricts the import to the literal requested type.
	ms, err = tr.ImportGradedWith(ctx, "A", MinGrade(match.GradeExact))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Type != "A" || ms[0].Grade != match.GradeExact {
		t.Fatalf("exact-floor import = %+v, want only A", ms)
	}

	// Conformant() spells out today's default; the result must agree.
	explicit, err := tr.ImportGradedWith(ctx, "A", Conformant())
	if err != nil || len(explicit) != 4 {
		t.Fatalf("Conformant() import = %+v, %v", explicit, err)
	}

	// Importing C finds C exactly and D only structurally: D's declared
	// chain runs D→B→A, so its conformance to C is worth the structural
	// score, below every declared subtype.
	ms, err = tr.ImportGradedWith(ctx, "C")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, m := range ms {
		got[m.Type] = m.Score
	}
	if len(got) != 2 || got["C"] != 1.0 || got["D"] != match.ScoreStructural {
		t.Fatalf("import C scores = %v, want C=1.0 D=%.1f", got, match.ScoreStructural)
	}

	// An unknown request type matches nothing, without erroring.
	if ms, err := tr.ImportGradedWith(ctx, "Nope"); err != nil || len(ms) != 0 {
		t.Fatalf("unknown type import = %+v, %v", ms, err)
	}
}

func TestImportGradedPartialAttribute(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	tr := New("S", hierDiamondRepo(t), WithMetrics(reg))
	idFull, err := tr.Export("B", hierRef(1), intProps("x", 1, "y", 1))
	if err != nil {
		t.Fatal(err)
	}
	idPart, err := tr.Export("B", hierRef(2), intProps("x", 1, "y", 9))
	if err != nil {
		t.Fatal(err)
	}

	// Under the default floor the half-satisfying offer is filtered out.
	ms, err := tr.ImportGradedWith(ctx, "B", Where("x == 1 && y == 1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ID != idFull {
		t.Fatalf("default-floor matches = %+v, want only %s", ms, idFull)
	}

	// GradePartial surfaces it, graded and scored below the full match,
	// and the score policy ranks the full match first.
	ms, err = tr.ImportGradedWith(ctx, "B", Where("x == 1 && y == 1"),
		MinGrade(match.GradePartial), OrderBy("score"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != idFull || ms[1].ID != idPart {
		t.Fatalf("partial-floor matches = %+v, want full %s before partial %s", ms, idFull, idPart)
	}
	if ms[0].Grade != match.GradeExact || ms[0].Score != 1.0 {
		t.Fatalf("full match graded (%s, %.2f)", ms[0].Grade, ms[0].Score)
	}
	wantScore := match.PartialScore(match.ScoreExact, 1, 2)
	if ms[1].Grade != match.GradePartial || ms[1].Score != wantScore {
		t.Fatalf("partial match graded (%s, %.2f), want (partial-attribute, %.2f)",
			ms[1].Grade, ms[1].Score, wantScore)
	}
	if grades := reg.CounterVec("cosm_trader_match_grade_total", "", "grade").Snapshot(); grades["partial-attribute"] != 1 {
		t.Fatalf("grade counters = %v, want partial-attribute=1", grades)
	}
}

// TestPluggableMatchPhase proves the pipeline accepts external stages:
// a WithMatchPhase stage that halves every score and demotes offers
// missing a property reorders and filters the result.
func TestPluggableMatchPhase(t *testing.T) {
	ctx := context.Background()
	demote := match.PhaseFunc[*Offer]{
		PhaseName: "demote-unpriced",
		Fn: func(gs []match.Graded[*Offer]) []match.Graded[*Offer] {
			kept := gs[:0]
			for _, g := range gs {
				if _, ok := g.Item.Props["y"]; ok {
					kept = append(kept, g)
				}
			}
			return kept
		},
	}
	tr := New("S", hierDiamondRepo(t), WithMatchPhase(demote))
	exportDiamond(t, tr)

	ms, err := tr.ImportGradedWith(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	// Only B and D carry a "y" property; A and C are dropped by the
	// plugged-in phase.
	if len(ms) != 2 {
		t.Fatalf("phase-filtered matches = %+v, want B and D", ms)
	}
	for _, m := range ms {
		if m.Type != "B" && m.Type != "D" {
			t.Fatalf("phase kept %s, want only B and D", m.Type)
		}
	}
}

// TestMeshCoverageAgreesWithLocalMatching pins the shared-predicate
// satellite: typemgr.Covers — the exact test planScatter and the gossip
// summary router apply to advertised types — must agree with what the
// local matching engine actually returns under the default (full-match)
// grade floor, for every (requested, offered) pair of the diamond.
func TestMeshCoverageAgreesWithLocalMatching(t *testing.T) {
	ctx := context.Background()
	repo := hierDiamondRepo(t)
	names := []string{"A", "B", "C", "D"}
	attrs := map[string][]sidl.Property{
		"A": intProps("x", 1),
		"B": intProps("x", 1, "y", 2),
		"C": intProps("x", 1, "z", 3),
		"D": intProps("x", 1, "y", 2, "z", 3),
	}
	for _, req := range names {
		for i, offered := range names {
			tr := New("P", repo)
			if _, err := tr.Export(offered, hierRef(i+1), attrs[offered]); err != nil {
				t.Fatal(err)
			}
			ms, err := tr.ImportGraded(ctx, ImportRequest{Type: req})
			if err != nil {
				t.Fatal(err)
			}
			covered := repo.Covers(req, offered)
			if matched := len(ms) > 0; matched != covered {
				t.Fatalf("req %s offered %s: local match %v, Covers %v — routing and matching disagree",
					req, offered, matched, covered)
			}
			if covered && !ms[0].Grade.AtLeast(match.GradeSubtype) {
				t.Fatalf("req %s offered %s: full match graded %s", req, offered, ms[0].Grade)
			}
		}
	}
}

// TestMeshSummaryRoutesSubtypeCoverage: summary-routed imports consult a
// peer whose advertised types only *conformantly* cover the request —
// and skip peers whose types do not — using the same closure helper as
// the local matcher.
func TestMeshSummaryRoutesSubtypeCoverage(t *testing.T) {
	ctx := context.Background()
	repo := hierDiamondRepo(t)
	hub := New("hub", repo)
	sub := New("sub", repo)     // holds a D offer: covers a C request structurally
	other := New("other", repo) // holds a B offer: no conformance to C
	if _, err := sub.Export("D", hierRef(1), intProps("x", 1, "y", 2, "z", 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Export("B", hierRef(2), intProps("x", 1, "y", 2)); err != nil {
		t.Fatal(err)
	}
	mustLink(t, hub, "sub", sub)
	mustLink(t, hub, "other", other)

	if pushed, failed := hub.GossipRound(ctx, time.Second); pushed != 2 || failed != 0 {
		t.Fatalf("gossip round pushed %d, failed %d", pushed, failed)
	}
	before := hub.FedStats()
	ms, err := hub.ImportGradedWith(ctx, "C", Hops(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Type != "D" || ms[0].Grade != match.GradeSubtype {
		t.Fatalf("routed import = %+v, want one subtype-graded D match", ms)
	}
	if asked := hub.FedStats().PeersAsked - before.PeersAsked; asked != 1 {
		t.Fatalf("peers asked = %d, want 1 (subtype-covering peer only)", asked)
	}
}

// ungradedFederate simulates a federation peer that predates grading:
// its answers carry no grade, exactly like offers tolerantly decoded
// from an old trader's wire response.
type ungradedFederate struct{ offers []*Offer }

func (f *ungradedFederate) FederationID() string { return "OLD" }

func (f *ungradedFederate) FederatedImport(context.Context, ImportRequest) ([]Match, error) {
	ms := make([]Match, len(f.offers))
	for i, o := range f.offers {
		ms[i] = Match{Offer: o}
	}
	return ms, nil
}

func TestFederationRegradesOldPeerMatches(t *testing.T) {
	ctx := context.Background()
	old := &ungradedFederate{offers: []*Offer{{
		ID: "OLD/o1", Type: "D", Ref: hierRef(9),
		Props: map[string]sidl.Lit{"x": sidl.IntLit(1), "y": sidl.IntLit(2), "z": sidl.IntLit(3)},
	}}}
	a := New("A", hierDiamondRepo(t))
	mustLink(t, a, "old", old)

	ms, err := a.ImportGradedWith(ctx, "A", Hops(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Grade != match.GradeSubtype || ms[0].Score != 0.85 {
		t.Fatalf("re-graded remote = %+v, want one subtype match scored 0.85", ms)
	}

	// The origin re-applies the grade floor the old peer ignored.
	ms, err = a.ImportGradedWith(ctx, "A", Hops(1), MinGrade(match.GradeExact))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("exact floor over old peer = %+v, want nothing", ms)
	}
}

// --- randomized equivalence over hierarchies --------------------------

// TestConformantIndexedMatchesLinearProperty drives an indexed trader
// and a WithoutOfferIndex linear-scan trader through identical offer
// histories over randomized type hierarchies — declared chains,
// structural-only conformance and diamonds included — and asserts every
// graded import returns byte-identical results (IDs, grades, scores).
func TestConformantIndexedMatchesLinearProperty(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(11))

	for trial := 0; trial < 5; trial++ {
		repo := typemgr.NewRepo()
		nTypes := 5 + r.Intn(4)
		attrsOf := map[string][]string{}
		var names []string
		for i := 0; i < nTypes; i++ {
			name := fmt.Sprintf("T%d", i)
			super := ""
			attrs := []string{"a0"}
			if i > 0 {
				parent := names[r.Intn(i)]
				attrs = append([]string(nil), attrsOf[parent]...)
				if r.Intn(2) == 0 {
					attrs = append(attrs, fmt.Sprintf("a%d", i))
				}
				// Occasionally absorb a second type's attributes: the
				// declared chain stays linear but structural conformance
				// grows a diamond.
				if r.Intn(3) == 0 {
					for _, a := range attrsOf[names[r.Intn(i)]] {
						if !containsStr(attrs, a) {
							attrs = append(attrs, a)
						}
					}
				}
				if r.Intn(4) != 0 {
					super = parent // sometimes structural-only conformance
				}
			}
			attrsOf[name] = attrs
			names = append(names, name)
			if err := repo.Define(hierType(name, super, attrs...)); err != nil {
				t.Fatalf("trial %d Define(%s): %v", trial, name, err)
			}
		}

		indexed := New("T", repo)
		linear := New("T", repo, WithoutOfferIndex())
		traders := []*Trader{indexed, linear}

		var ids []string
		export := func() {
			typ := names[r.Intn(len(names))]
			props := make([]sidl.Property, 0, len(attrsOf[typ])+1)
			for _, a := range attrsOf[typ] {
				props = append(props, sidl.Property{Name: a, Value: sidl.IntLit(int64(r.Intn(10)))})
			}
			if r.Intn(3) == 0 {
				props = append(props, sidl.Property{Name: "extra", Value: sidl.IntLit(int64(r.Intn(10)))})
			}
			target := hierRef(len(ids) + 1)
			var firstID string
			for i, tr := range traders {
				id, err := tr.Export(typ, target, props)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					firstID = id
				} else if id != firstID {
					t.Fatalf("diverging offer ids %q vs %q", firstID, id)
				}
			}
			ids = append(ids, firstID)
		}

		leaf := func() string {
			op := []string{"==", "!=", "<", "<=", ">", ">="}[r.Intn(6)]
			return fmt.Sprintf("a%d %s %d", r.Intn(nTypes), op, r.Intn(10))
		}
		constraint := func() string {
			switch r.Intn(4) {
			case 0:
				return ""
			case 1:
				return leaf()
			case 2:
				return leaf() + " && " + leaf()
			default:
				return leaf() + " && (" + leaf() + " || " + leaf() + ")"
			}
		}
		floors := []match.Grade{match.GradeNone, match.GradePartial, match.GradeSubtype, match.GradeExact}
		policies := []string{"", "score", "min:a0"}

		check := func(round int) {
			for k := 0; k < 12; k++ {
				reqType := names[r.Intn(len(names))]
				if r.Intn(8) == 0 {
					reqType = "Unknown"
				}
				req := ImportRequest{
					Type:       reqType,
					Constraint: constraint(),
					Policy:     policies[r.Intn(len(policies))],
					Max:        r.Intn(4),
					MinGrade:   floors[r.Intn(len(floors))],
				}
				a, errA := indexed.ImportGraded(ctx, req)
				b, errB := linear.ImportGraded(ctx, req)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("trial %d round %d %+v: errs %v vs %v", trial, round, req, errA, errB)
				}
				if len(a) != len(b) {
					t.Fatalf("trial %d round %d %+v: indexed %d matches, linear %d\n%+v\n%+v",
						trial, round, req, len(a), len(b), a, b)
				}
				for i := range a {
					if a[i].ID != b[i].ID || a[i].Grade != b[i].Grade || a[i].Score != b[i].Score {
						t.Fatalf("trial %d round %d %+v match %d: indexed (%s,%s,%.3f), linear (%s,%s,%.3f)",
							trial, round, req, i,
							a[i].ID, a[i].Grade, a[i].Score, b[i].ID, b[i].Grade, b[i].Score)
					}
				}
			}
		}

		for round := 0; round < 6; round++ {
			for i := 0; i < 8; i++ {
				export()
			}
			if len(ids) > 0 && r.Intn(2) == 0 {
				id := ids[r.Intn(len(ids))]
				for _, tr := range traders {
					_ = tr.Withdraw(id)
				}
			}
			// Mid-trial type definition: the hierarchy closure caches must
			// invalidate on the repo generation bump.
			if round == 3 {
				name := fmt.Sprintf("TX%d", trial)
				parent := names[r.Intn(len(names))]
				if err := repo.Define(hierType(name, parent, append([]string(nil), attrsOf[parent]...)...)); err != nil {
					t.Fatal(err)
				}
				attrsOf[name] = attrsOf[parent]
				names = append(names, name)
			}
			check(round)
		}
	}
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// --- wire compatibility with pre-grading traders ----------------------

// oldTraderIDL is the Import slice of the trader protocol as it looked
// before grade/score and minGrade existed.
const oldTraderIDL = `
module OldTrader {
    struct Prop_t {
        string name;
        string kind;
        string text;
    };
    typedef sequence<Prop_t> Props_t;
    typedef sequence<string> Names_t;
    struct Offer_t {
        string id;
        string serviceType;
        Object target;
        Props_t props;
        long long expiresUnix;
        boolean suspect;
    };
    typedef sequence<Offer_t> Offers_t;
    struct ImportReq_t {
        string serviceType;
        string constraint;
        string policy;
        long max;
        long hopLimit;
        long maxPeers;
        long long hedgeMs;
        Names_t visited;
    };
    interface Old {
        Offers_t Import(in ImportReq_t req);
    };
};
`

// TestWireCompatNewClientOldTrader walks both halves of the version-skew
// path through the real codec. Request: a graded client's import request
// projects onto the old trader's ImportReq_t (the grade floor is
// dropped, nothing errors) and still decodes there. Response: an old
// trader's Offer_t decodes into a GradeNone match that the federation
// layer re-grades — new-client → old-trader degrades instead of failing.
func TestWireCompatNewClientOldTrader(t *testing.T) {
	tt, err := newTraderTypes()
	if err != nil {
		t.Fatal(err)
	}
	oldSid, err := sidl.Parse(oldTraderIDL)
	if err != nil {
		t.Fatal(err)
	}
	oldReqT := oldSid.Type("ImportReq_t")
	oldOfferT := oldSid.Type("Offer_t")
	if oldReqT == nil || oldOfferT == nil {
		t.Fatal("old IDL types missing")
	}

	// Request direction: project, marshal, unmarshal, decode.
	reqV, err := tt.importReqValue(ImportRequest{
		Type: "A", Constraint: "x == 1", Policy: "score",
		Max: 3, MinGrade: match.GradeExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	projected, err := reqV.Project(oldReqT)
	if err != nil {
		t.Fatalf("new import request does not project onto the old protocol: %v", err)
	}
	wireReq, err := xcode.Unmarshal(oldReqT, xcode.Marshal(projected))
	if err != nil {
		t.Fatal(err)
	}
	decodedReq, err := importReqFromValue(wireReq)
	if err != nil {
		t.Fatalf("old trader cannot decode the projected request: %v", err)
	}
	if decodedReq.Type != "A" || decodedReq.Constraint != "x == 1" || decodedReq.Max != 3 {
		t.Fatalf("request fields lost in projection: %+v", decodedReq)
	}
	// The grade floor does not survive the old protocol: the old trader
	// answers its default match set (exact + conforming subtypes).
	if decodedReq.MinGrade != match.GradeNone {
		t.Fatalf("minGrade = %v, want GradeNone (floor dropped)", decodedReq.MinGrade)
	}
	if effectiveMinGrade(decodedReq.MinGrade) != match.GradeSubtype {
		t.Fatal("degraded request must match with the default grade floor")
	}

	// Response direction: an old trader's offer lacks grade and score.
	oldPropsT := oldSid.Type("Props_t")
	emptyProps, err := xcode.NewSequence(oldPropsT)
	if err != nil {
		t.Fatal(err)
	}
	oldOffer, err := xcode.NewStruct(oldOfferT, map[string]*xcode.Value{
		"id":          xcode.NewString(sidl.Basic(sidl.String), "OLD/o1"),
		"serviceType": xcode.NewString(sidl.Basic(sidl.String), "D"),
		"target":      xcode.NewRef(sidl.Basic(sidl.SvcRef), hierRef(1)),
		"props":       emptyProps,
		"expiresUnix": xcode.NewInt(sidl.Basic(sidl.Int64), 0),
		"suspect":     xcode.NewBool(sidl.Basic(sidl.Bool), false),
	})
	if err != nil {
		t.Fatal(err)
	}
	wireOffer, err := xcode.Unmarshal(oldOfferT, xcode.Marshal(oldOffer))
	if err != nil {
		t.Fatal(err)
	}
	m, err := matchFromValue(wireOffer)
	if err != nil {
		t.Fatalf("old trader's offer does not decode as a match: %v", err)
	}
	if m.ID != "OLD/o1" || m.Type != "D" {
		t.Fatalf("offer fields lost: %+v", m)
	}
	if m.Grade != match.GradeNone || m.Score != 0 {
		t.Fatalf("pre-grading offer decoded as (%s, %.2f), want ungraded", m.Grade, m.Score)
	}

	// A graded response round-trips grade and score through the codec.
	gradedV, err := tt.matchValue(Match{
		Offer: m.Offer, Grade: match.GradeSubtype, Score: 0.85,
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := xcode.Unmarshal(tt.offerT, xcode.Marshal(gradedV))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := matchFromValue(back)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Grade != match.GradeSubtype || m2.Score != 0.85 {
		t.Fatalf("graded match round-trip = (%s, %.2f)", m2.Grade, m2.Score)
	}
	// And an old client reading the graded Offer_t simply ignores the
	// extra fields.
	if o, err := offerFromValue(back); err != nil || o.ID != "OLD/o1" {
		t.Fatalf("old-style decode of graded offer = %+v, %v", o, err)
	}
}
