// Package trader implements the ODP trading function of the paper
// (section 2): service offers classified by service types, exported by
// service providers and imported by clients through typed, constrained,
// policy-driven matching — plus trader federation for wider scopes.
package trader

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"cosm/internal/sidl"
)

// ErrConstraint is wrapped by all constraint parse errors.
var ErrConstraint = errors.New("trader: constraint syntax error")

// Constraint is a compiled matching predicate over offer properties,
// e.g.:
//
//	CarModel == FIAT_Uno && ChargePerDay < 85.0
//	(ChargeCurrency == USD || ChargeCurrency == DEM) && !Premium
//
// Identifiers name offer properties; comparisons support ==, !=, <, <=,
// >, >= on numbers and strings, equality on booleans and enum literals;
// predicates compose with &&, || and !. A bare identifier is a boolean
// property test. A comparison involving a property the offer lacks is
// false, so offers missing a constrained property never match. The empty
// constraint matches every offer.
type Constraint struct {
	src  string
	root cexpr
	// idx holds the index hints extracted from the top-level AND chain;
	// see hints.
	idx []indexHint
	// conj holds the top-level AND-chain conjuncts; the semantic
	// matcher grades offers that satisfy only some of them as
	// partial-attribute matches (see satisfied).
	conj []cexpr
}

// Compile parses a constraint expression. Compiling once and reusing the
// result is the fast path measured by the constraint-compile ablation.
func Compile(src string) (*Constraint, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return &Constraint{src: src}, nil
	}
	p := &cparser{src: trimmed}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("%w: trailing input %q", ErrConstraint, p.src[p.pos:])
	}
	return &Constraint{
		src:  src,
		root: root,
		idx:  collectHints(root, nil),
		conj: collectConjuncts(root, nil),
	}, nil
}

// MustCompile is Compile for statically known expressions.
func MustCompile(src string) *Constraint {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

// String returns the original expression text.
func (c *Constraint) String() string { return c.src }

// Match evaluates the constraint against a property set.
func (c *Constraint) Match(props map[string]sidl.Lit) bool {
	if c == nil || c.root == nil {
		return true
	}
	return c.root.eval(props)
}

// cval is an evaluated operand: a number, string, boolean or enum
// symbol, or "missing" when a referenced property is absent.
type cval struct {
	kind cvalKind
	num  float64
	str  string
	b    bool
}

type cvalKind uint8

const (
	cvMissing cvalKind = iota
	cvNum
	cvStr
	cvBool
	cvSym // enum literal, compared by name
)

func litVal(l sidl.Lit) cval {
	switch l.Kind {
	case sidl.LitBool:
		return cval{kind: cvBool, b: l.Bool}
	case sidl.LitInt:
		return cval{kind: cvNum, num: float64(l.Int)}
	case sidl.LitFloat:
		return cval{kind: cvNum, num: l.Float}
	case sidl.LitString:
		return cval{kind: cvStr, str: l.Str}
	case sidl.LitEnum:
		return cval{kind: cvSym, str: l.Enum}
	}
	return cval{}
}

// cexpr is a compiled constraint node.
type cexpr interface {
	eval(props map[string]sidl.Lit) bool
}

type andExpr struct{ l, r cexpr }
type orExpr struct{ l, r cexpr }
type notExpr struct{ e cexpr }

func (e andExpr) eval(p map[string]sidl.Lit) bool { return e.l.eval(p) && e.r.eval(p) }
func (e orExpr) eval(p map[string]sidl.Lit) bool  { return e.l.eval(p) || e.r.eval(p) }
func (e notExpr) eval(p map[string]sidl.Lit) bool { return !e.e.eval(p) }

// boolProp is a bare identifier: true iff the property exists, is a
// boolean, and is true.
type boolProp struct{ name string }

func (e boolProp) eval(p map[string]sidl.Lit) bool {
	l, ok := p[e.name]
	return ok && l.Kind == sidl.LitBool && l.Bool
}

// operand is a comparison side: a property reference or a literal.
type operand struct {
	isProp bool
	name   string // property name or enum symbol
	lit    cval   // literal value when !isProp
}

func (o operand) value(p map[string]sidl.Lit) cval {
	if !o.isProp {
		return o.lit
	}
	l, ok := p[o.name]
	if !ok {
		// An identifier that names no property acts as an enum symbol,
		// so "CarModel == FIAT_Uno" works without quoting.
		return cval{kind: cvSym, str: o.name}
	}
	return litVal(l)
}

type cmpExpr struct {
	op   string // "==", "!=", "<", "<=", ">", ">="
	l, r operand
}

func (e cmpExpr) eval(p map[string]sidl.Lit) bool {
	lv, rv := e.l.value(p), e.r.value(p)
	// A property reference that resolved to a symbol is a missing
	// property unless the other side is a symbol too.
	if lv.kind == cvMissing || rv.kind == cvMissing {
		return false
	}
	switch {
	case lv.kind == cvNum && rv.kind == cvNum:
		return cmpOrdered(e.op, lv.num, rv.num)
	case lv.kind == cvStr && rv.kind == cvStr:
		return cmpOrdered(e.op, lv.str, rv.str)
	case lv.kind == cvBool && rv.kind == cvBool:
		switch e.op {
		case "==":
			return lv.b == rv.b
		case "!=":
			return lv.b != rv.b
		}
		return false
	case lv.kind == cvSym && rv.kind == cvSym:
		switch e.op {
		case "==":
			return lv.str == rv.str
		case "!=":
			return lv.str != rv.str
		}
		return false
	default:
		// Mixed kinds never match (and never error: matching is a
		// filter, not a type checker).
		return false
	}
}

func cmpOrdered[T float64 | string](op string, a, b T) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// collectConjuncts flattens the top-level AND chain into its conjunct
// expressions; anything under || or ! stays one opaque conjunct.
func collectConjuncts(e cexpr, out []cexpr) []cexpr {
	if and, ok := e.(andExpr); ok {
		return collectConjuncts(and.r, collectConjuncts(and.l, out))
	}
	return append(out, e)
}

// satisfied evaluates each top-level conjunct independently and reports
// how many hold. total is 0 for the empty constraint (which every offer
// satisfies fully); sat == total iff Match would return true.
func (c *Constraint) satisfied(props map[string]sidl.Lit) (sat, total int) {
	if c == nil || c.root == nil {
		return 0, 0
	}
	for _, e := range c.conj {
		if e.eval(props) {
			sat++
		}
	}
	return sat, len(c.conj)
}

// indexHint is one leaf predicate of a constraint's top-level AND chain
// that an attribute index can answer: "prop op val". Every hint is a
// necessary condition for the whole constraint, so an index lookup on
// any one of them yields a superset of the matching offers.
type indexHint struct {
	prop string
	op   string // "==", "<", "<=", ">", ">="
	val  cval
	// rhsProp is set when the value side is syntactically an identifier.
	// Such an identifier resolves to an enum symbol only on offers that
	// lack a property of that name (see operand.value), so the hint is
	// only usable against a snapshot where no offer defines it.
	rhsProp string
}

// hints returns the constraint's index hints (nil for the empty
// constraint and for shapes the planner cannot use).
func (c *Constraint) hints() []indexHint {
	if c == nil {
		return nil
	}
	return c.idx
}

// collectHints walks the top-level AND chain only: predicates under ||
// or ! are not individually necessary, so they yield no hints.
func collectHints(e cexpr, out []indexHint) []indexHint {
	switch n := e.(type) {
	case andExpr:
		return collectHints(n.r, collectHints(n.l, out))
	case boolProp:
		// A bare identifier matches exactly the offers carrying the
		// boolean value true under that name.
		return append(out, indexHint{prop: n.name, op: "==", val: cval{kind: cvBool, b: true}})
	case cmpExpr:
		switch {
		case n.l.isProp && !n.r.isProp:
			return appendCmpHint(out, n.l.name, n.op, n.r.lit, "")
		case !n.l.isProp && n.r.isProp:
			return appendCmpHint(out, n.r.name, flipCmp(n.op), n.l.lit, "")
		case n.l.isProp && n.r.isProp && n.op == "==":
			// "CarModel == FIAT_Uno": either identifier may be an enum
			// symbol in disguise. Record both directions, each guarded
			// by the identifier that must not name a stored property.
			return append(out,
				indexHint{prop: n.l.name, op: "==", val: cval{kind: cvSym, str: n.r.name}, rhsProp: n.r.name},
				indexHint{prop: n.r.name, op: "==", val: cval{kind: cvSym, str: n.l.name}, rhsProp: n.l.name})
		}
	}
	return out
}

func appendCmpHint(out []indexHint, prop, op string, val cval, guard string) []indexHint {
	switch op {
	case "==", "<", "<=", ">", ">=":
		return append(out, indexHint{prop: prop, op: op, val: val, rhsProp: guard})
	}
	return out // != excludes almost nothing; not worth an index pass
}

// flipCmp mirrors an operator across swapped operands: "80 < P" means
// "P > 80".
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// key renders a value as an equality-index key. Kinds are tagged so a
// string "80" never collides with the number 80 (mixed kinds never
// compare equal at eval time either).
func (v cval) key() (string, bool) {
	switch v.kind {
	case cvNum:
		n := v.num
		if n == 0 {
			n = 0 // fold -0 and +0 into one key; they compare equal
		}
		return "n:" + strconv.FormatFloat(n, 'g', -1, 64), true
	case cvStr:
		return "s:" + v.str, true
	case cvBool:
		if v.b {
			return "b:1", true
		}
		return "b:0", true
	case cvSym:
		return "y:" + v.str, true
	}
	return "", false
}

// maxConstraintDepth bounds expression nesting so adversarial
// constraints cannot exhaust the parser's stack.
const maxConstraintDepth = 64

// cparser is a recursive-descent parser for the constraint grammar.
type cparser struct {
	src   string
	pos   int
	depth int
}

func (p *cparser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: at %d: %s", ErrConstraint, p.pos, fmt.Sprintf(format, args...))
}

func (p *cparser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *cparser) peek(s string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *cparser) accept(s string) bool {
	if p.peek(s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *cparser) parseOr() (cexpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l: l, r: r}
	}
	return l, nil
}

func (p *cparser) parseAnd() (cexpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = andExpr{l: l, r: r}
	}
	return l, nil
}

func (p *cparser) parseUnary() (cexpr, error) {
	if p.depth >= maxConstraintDepth {
		return nil, p.errorf("expression nesting exceeds %d levels", maxConstraintDepth)
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.accept("!") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{e: e}, nil
	}
	if p.accept("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, p.errorf("expected ')'")
		}
		return e, nil
	}
	return p.parseComparison()
}

var cmpOps = []string{"==", "!=", "<=", ">=", "<", ">"}

func (p *cparser) parseComparison() (cexpr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	for _, op := range cmpOps {
		if p.accept(op) {
			r, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return cmpExpr{op: op, l: l, r: r}, nil
		}
	}
	// No comparison operator: a bare boolean property.
	if !l.isProp {
		return nil, p.errorf("literal %v cannot stand alone", l.lit)
	}
	return boolProp{name: l.name}, nil
}

func (p *cparser) parseOperand() (operand, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return operand{}, p.errorf("expected operand")
	}
	c := p.src[p.pos]
	switch {
	case c == '"':
		start := p.pos + 1
		end := strings.IndexByte(p.src[start:], '"')
		if end < 0 {
			return operand{}, p.errorf("unterminated string")
		}
		p.pos = start + end + 1
		return operand{lit: cval{kind: cvStr, str: p.src[start : start+end]}}, nil
	case c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.':
		start := p.pos
		p.pos++
		for p.pos < len(p.src) && (isNumChar(p.src[p.pos])) {
			p.pos++
		}
		f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return operand{}, p.errorf("bad number %q", p.src[start:p.pos])
		}
		return operand{lit: cval{kind: cvNum, num: f}}, nil
	case c == '_' || unicode.IsLetter(rune(c)):
		start := p.pos
		for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
			p.pos++
		}
		word := p.src[start:p.pos]
		switch word {
		case "TRUE", "true":
			return operand{lit: cval{kind: cvBool, b: true}}, nil
		case "FALSE", "false":
			return operand{lit: cval{kind: cvBool, b: false}}, nil
		}
		return operand{isProp: true, name: word}, nil
	}
	return operand{}, p.errorf("unexpected character %q", c)
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+'
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
