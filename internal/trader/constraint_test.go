package trader

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cosm/internal/sidl"
)

// paperProps is the offer from the paper's section 4.1 listing.
func paperProps() map[string]sidl.Lit {
	return map[string]sidl.Lit{
		"CarModel":       sidl.EnumLit("FIAT_Uno"),
		"AverageMilage":  sidl.IntLit(38000),
		"ChargePerDay":   sidl.FloatLit(80),
		"ChargeCurrency": sidl.EnumLit("USD"),
		"AirCon":         sidl.BoolLit(true),
		"City":           sidl.StringLit("Hamburg"),
	}
}

func TestConstraintMatch(t *testing.T) {
	props := paperProps()
	tests := []struct {
		src  string
		want bool
	}{
		{"", true},
		{"   ", true},
		{"CarModel == FIAT_Uno", true},
		{"CarModel == AUDI", false},
		{"CarModel != AUDI", true},
		{"ChargePerDay < 85", true},
		{"ChargePerDay < 80", false},
		{"ChargePerDay <= 80", true},
		{"ChargePerDay > 79.5", true},
		{"ChargePerDay >= 80.0", true},
		{"AverageMilage == 38000", true},
		{"ChargePerDay < 85 && ChargeCurrency == USD", true},
		{"ChargePerDay < 85 && ChargeCurrency == DEM", false},
		{"ChargeCurrency == DEM || ChargeCurrency == USD", true},
		{"!(ChargeCurrency == DEM)", true},
		{"!AirCon", false},
		{"AirCon", true},
		{"AirCon == TRUE", true},
		{"AirCon != FALSE", true},
		{`City == "Hamburg"`, true},
		{`City == "Bremen"`, false},
		{`City < "Z"`, true},
		// Operator precedence: && binds tighter than ||.
		{"CarModel == AUDI && AirCon || City == \"Hamburg\"", true},
		{"(CarModel == AUDI || AirCon) && City == \"Hamburg\"", true},
		// Missing properties never match comparisons...
		{"Ghost == 5", false},
		{"Ghost < 5", false},
		// ...and missing boolean properties are false.
		{"GhostFlag", false},
		// Mixed kinds never match.
		{`ChargePerDay == "80"`, false},
		{"City == 80", false},
		{"AirCon == 1", false},
		// Enum symbols support equality both ways around.
		{"FIAT_Uno == CarModel", true},
		// Numeric int/float unify.
		{"AverageMilage > 37999.5", true},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			c, err := Compile(tt.src)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Match(props); got != tt.want {
				t.Fatalf("Match(%q) = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestConstraintErrors(t *testing.T) {
	tests := []string{
		"&&",
		"a ==",
		"== 5",
		"(a == 5",
		"a == 5)",
		`City == "unterminated`,
		"a == 5 extra",
		"5",
		`"lonely"`,
		"a == 5 && ",
		"!",
		"a @ b",
		"a == -",
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			if _, err := Compile(src); !errors.Is(err, ErrConstraint) {
				t.Fatalf("Compile(%q) err = %v, want ErrConstraint", src, err)
			}
		})
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile of bad input should panic")
		}
	}()
	MustCompile("((")
}

func TestNilConstraintMatchesAll(t *testing.T) {
	var c *Constraint
	if !c.Match(paperProps()) {
		t.Fatal("nil constraint must match")
	}
	if MustCompile("").String() != "" {
		t.Fatal("String should return source")
	}
}

// Property: De Morgan — !(a && b) ≡ !a || !b over random boolean
// property environments.
func TestConstraintDeMorganProperty(t *testing.T) {
	lhs := MustCompile("!(P && Q)")
	rhs := MustCompile("!P || !Q")
	f := func(p, q bool) bool {
		env := map[string]sidl.Lit{"P": sidl.BoolLit(p), "Q": sidl.BoolLit(q)}
		return lhs.Match(env) == rhs.Match(env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: numeric trichotomy — exactly one of <, ==, > holds for any
// pair of finite numbers.
func TestConstraintTrichotomyProperty(t *testing.T) {
	lt := MustCompile("X < Y")
	eq := MustCompile("X == Y")
	gt := MustCompile("X > Y")
	f := func(x, y int32) bool {
		env := map[string]sidl.Lit{"X": sidl.IntLit(int64(x)), "Y": sidl.IntLit(int64(y))}
		n := 0
		for _, c := range []*Constraint{lt, eq, gt} {
			if c.Match(env) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyParse(t *testing.T) {
	for _, src := range []string{"", "first", "random", "min:ChargePerDay", "max:AverageMilage"} {
		if _, err := ParsePolicy(src); err != nil {
			t.Fatalf("ParsePolicy(%q): %v", src, err)
		}
	}
	for _, src := range []string{"best", "min:", "max:  ", "min", "cheapest:x"} {
		if _, err := ParsePolicy(src); !errors.Is(err, ErrPolicy) {
			t.Fatalf("ParsePolicy(%q) should fail", src)
		}
	}
	p, _ := ParsePolicy("min:Charge")
	if p.String() != "min:Charge" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestConstraintDepthGuard(t *testing.T) {
	deep := strings.Repeat("(", 500) + "a == 1" + strings.Repeat(")", 500)
	if _, err := Compile(deep); !errors.Is(err, ErrConstraint) {
		t.Fatalf("err = %v, want nesting guard", err)
	}
	ok := strings.Repeat("!", 32) + "Flag"
	if _, err := Compile(ok); err != nil {
		t.Fatalf("moderate nesting failed: %v", err)
	}
}
