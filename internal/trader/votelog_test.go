package trader

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cosm/internal/typemgr"
)

// TestVoteLogSurvivesRestart closes the double-vote window: a voter
// that granted a vote, crashed, and restarted within the same election
// round must deny a rival at the same epoch.
func TestVoteLogSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	v1 := New("V", typemgr.NewRepo())
	v1.SetFollower("cosm://leader")
	vl, err := OpenVoteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1.SetVoteLog(vl)

	vote, err := v1.RequestVote(ctx, "X", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !vote.Granted {
		t.Fatalf("fresh voter denied X: %+v", vote)
	}
	vl.Close() // crash

	// Restart: a fresh trader over the same data dir.
	v2 := New("V", typemgr.NewRepo())
	v2.SetFollower("cosm://leader")
	vl2, err := OpenVoteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer vl2.Close()
	v2.SetVoteLog(vl2)

	if vote, _ = v2.RequestVote(ctx, "Y", 3, 0); vote.Granted {
		t.Fatal("restarted voter handed epoch 3's vote to rival Y")
	}
	if vote.VoteEpoch != 3 {
		t.Fatalf("recovered pledge epoch = %d, want 3", vote.VoteEpoch)
	}
	// The original candidate's retry stays granted (idempotent pledge).
	if vote, _ = v2.RequestVote(ctx, "X", 3, 0); !vote.Granted {
		t.Fatal("restarted voter denied the candidate it already pledged to")
	}
	// A higher epoch re-opens the lock as before.
	if vote, _ = v2.RequestVote(ctx, "Y", 4, 0); !vote.Granted {
		t.Fatal("fresh epoch must accept a new candidate after restart")
	}
}

// TestVoteLogToleratesTornTail drops a half-written final line instead
// of refusing to start: the pledge it held was never acknowledged.
func TestVoteLogToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	vl, err := OpenVoteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := vl.Append(5, "X"); err != nil {
		t.Fatal(err)
	}
	vl.Close()

	f, err := os.OpenFile(filepath.Join(dir, voteLogName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"vote","epo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	vl2, err := OpenVoteLog(dir)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	defer vl2.Close()
	got := vl2.Pledges()
	if len(got) != 1 || got[0].Epoch != 5 || got[0].Candidate != "X" {
		t.Fatalf("pledges after torn tail = %+v", got)
	}
}

// TestVoteLogPersistFailureDenies: a voter whose ledger cannot persist
// the pledge refuses the vote (fail-safe) instead of granting on
// memory alone.
func TestVoteLogPersistFailureDenies(t *testing.T) {
	dir := t.TempDir()
	vl, err := OpenVoteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := New("V", typemgr.NewRepo())
	tr.SetFollower("cosm://leader")
	tr.SetVoteLog(vl)
	vl.f.Close() // simulate a dead disk under the ledger

	if vote, _ := tr.RequestVote(context.Background(), "X", 2, 0); vote.Granted {
		t.Fatal("vote granted without a durable pledge")
	}
}
