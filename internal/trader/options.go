package trader

import (
	"context"
	"time"

	"cosm/internal/match"
)

// ImportOption configures one import request built with NewImport.
// Options replace positional ImportRequest construction at call sites;
// ImportRequest itself remains the wire struct of the trader protocol.
type ImportOption func(*ImportRequest)

// NewImport builds an import request for a service type:
//
//	req := trader.NewImport("CarRentalService",
//	        trader.Where("CarModel == FIAT_Uno && ChargePerDay < 90"),
//	        trader.OrderBy("min:ChargePerDay"),
//	        trader.Limit(3),
//	        trader.Hops(1))
//
// The zero request (no options) matches every offer of the type at the
// local trader in stable ID order.
func NewImport(serviceType string, opts ...ImportOption) ImportRequest {
	req := ImportRequest{Type: serviceType}
	for _, o := range opts {
		o(&req)
	}
	return req
}

// Where filters offers by a constraint expression over their
// characterising properties (see Constraint for the grammar).
func Where(constraint string) ImportOption {
	return func(req *ImportRequest) { req.Constraint = constraint }
}

// OrderBy orders the result by a selection policy: "first", "random",
// "min:<Prop>", "max:<Prop>" or the score-aware "score" (see Policy).
func OrderBy(policy string) ImportOption {
	return func(req *ImportRequest) { req.Policy = policy }
}

// Conformant explicitly requests conformance-aware matching: offers of
// any conforming subtype of the requested service type match, graded
// and scored by hierarchy distance. This is the trader's default
// behaviour — the option exists so call sites can state the intent,
// and as the counterpart to MinGrade(match.GradeExact).
func Conformant() ImportOption {
	return MinGrade(match.GradeSubtype)
}

// MinGrade floors the semantic grade of returned matches:
// match.GradeExact restricts to offers of the literal requested type,
// match.GradeSubtype (the default) also admits conforming subtypes,
// and match.GradePartial additionally surfaces offers whose attributes
// satisfy only part of the constraint (scored below every full match).
func MinGrade(g match.Grade) ImportOption {
	return func(req *ImportRequest) { req.MinGrade = g }
}

// Limit bounds the number of returned offers; 0 means all.
func Limit(n int) ImportOption {
	return func(req *ImportRequest) { req.Max = n }
}

// Hops lets the import fan out across federation links up to h hops;
// 0 searches only the local trader.
func Hops(h int) ImportOption {
	return func(req *ImportRequest) { req.HopLimit = h }
}

// MaxPeers bounds how many partner traders each hop of a federated
// import consults; 0 (the default) consults every eligible link.
// Summary-positive peers — those whose gossiped offer summary covers
// the requested type — are preferred, and the overflow becomes hedge
// spares (see Hedge).
func MaxPeers(n int) ImportOption {
	return func(req *ImportRequest) { req.MaxPeers = n }
}

// Hedge queries one backup peer if the scattered peers have not all
// answered within d — latency insurance against a single slow link.
// The backup is the best spare left by MaxPeers, or a duplicate of a
// still-pending peer (results are deduplicated by offer ID). d <= 0
// (the default) disables hedging.
func Hedge(d time.Duration) ImportOption {
	return func(req *ImportRequest) { req.Hedge = d }
}

// ImportWith is Import with the functional-options request builder.
func (t *Trader) ImportWith(ctx context.Context, serviceType string, opts ...ImportOption) ([]*Offer, error) {
	return t.Import(ctx, NewImport(serviceType, opts...))
}

// ImportOneWith is ImportOne with the functional-options request
// builder: it returns the single best offer, or ErrNoOffer.
func (t *Trader) ImportOneWith(ctx context.Context, serviceType string, opts ...ImportOption) (*Offer, error) {
	return t.ImportOne(ctx, NewImport(serviceType, opts...))
}

// ImportGradedWith is ImportGraded with the functional-options request
// builder.
func (t *Trader) ImportGradedWith(ctx context.Context, serviceType string, opts ...ImportOption) ([]Match, error) {
	return t.ImportGraded(ctx, NewImport(serviceType, opts...))
}
