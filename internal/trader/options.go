package trader

import "context"

// ImportOption configures one import request built with NewImport.
// Options replace positional ImportRequest construction at call sites;
// ImportRequest itself remains the wire struct of the trader protocol.
type ImportOption func(*ImportRequest)

// NewImport builds an import request for a service type:
//
//	req := trader.NewImport("CarRentalService",
//	        trader.Where("CarModel == FIAT_Uno && ChargePerDay < 90"),
//	        trader.OrderBy("min:ChargePerDay"),
//	        trader.Limit(3),
//	        trader.Hops(1))
//
// The zero request (no options) matches every offer of the type at the
// local trader in stable ID order.
func NewImport(serviceType string, opts ...ImportOption) ImportRequest {
	req := ImportRequest{Type: serviceType}
	for _, o := range opts {
		o(&req)
	}
	return req
}

// Where filters offers by a constraint expression over their
// characterising properties (see Constraint for the grammar).
func Where(constraint string) ImportOption {
	return func(req *ImportRequest) { req.Constraint = constraint }
}

// OrderBy orders the result by a selection policy: "first", "random",
// "min:<Prop>" or "max:<Prop>" (see Policy).
func OrderBy(policy string) ImportOption {
	return func(req *ImportRequest) { req.Policy = policy }
}

// Limit bounds the number of returned offers; 0 means all.
func Limit(n int) ImportOption {
	return func(req *ImportRequest) { req.Max = n }
}

// Hops lets the import fan out across federation links up to h hops;
// 0 searches only the local trader.
func Hops(h int) ImportOption {
	return func(req *ImportRequest) { req.HopLimit = h }
}

// ImportWith is Import with the functional-options request builder.
func (t *Trader) ImportWith(ctx context.Context, serviceType string, opts ...ImportOption) ([]*Offer, error) {
	return t.Import(ctx, NewImport(serviceType, opts...))
}

// ImportOneWith is ImportOne with the functional-options request
// builder: it returns the single best offer, or ErrNoOffer.
func (t *Trader) ImportOneWith(ctx context.Context, serviceType string, opts ...ImportOption) (*Offer, error) {
	return t.ImportOne(ctx, NewImport(serviceType, opts...))
}
