package trader

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cosm/internal/journal"
	"cosm/internal/obs"
	"cosm/internal/sidl"
)

// peerDirectory wires Monitors to in-process traders: each ref resolves
// to a *Trader unless marked down, which models a crashed node.
type peerDirectory struct {
	mu      sync.Mutex
	traders map[string]*Trader
	down    map[string]bool
}

func newPeerDirectory() *peerDirectory {
	return &peerDirectory{traders: map[string]*Trader{}, down: map[string]bool{}}
}

func (d *peerDirectory) add(ref string, t *Trader) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.traders[ref] = t
}

func (d *peerDirectory) setDown(ref string, down bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down[ref] = down
}

// dial resolves one peer. The returned proxy re-checks liveness per
// call, so a node going down mid-election looks like a broken wire, not
// a stale cached client.
func (d *peerDirectory) dial(_ context.Context, ref string) (ElectionPeer, error) {
	return &peerProxy{d: d, ref: ref}, nil
}

type peerProxy struct {
	d   *peerDirectory
	ref string
}

func (p *peerProxy) target() (*Trader, error) {
	p.d.mu.Lock()
	defer p.d.mu.Unlock()
	if p.d.down[p.ref] {
		return nil, fmt.Errorf("dial %s: connection refused", p.ref)
	}
	t := p.d.traders[p.ref]
	if t == nil {
		return nil, fmt.Errorf("dial %s: unknown peer", p.ref)
	}
	return t, nil
}

func (p *peerProxy) RequestVote(ctx context.Context, candidateID string, newEpoch, applied uint64) (Vote, error) {
	t, err := p.target()
	if err != nil {
		return Vote{}, err
	}
	return t.RequestVote(ctx, candidateID, newEpoch, applied)
}

func (p *peerProxy) ReplStatus(ctx context.Context) (ReplStatus, error) {
	t, err := p.target()
	if err != nil {
		return ReplStatus{}, err
	}
	return t.Status(), nil
}

func testMonitor(t *testing.T, tr *Trader, d *peerDirectory, selfID, selfRef string, peers ...string) *Monitor {
	t.Helper()
	return NewMonitor(tr, nil, MonitorConfig{
		SelfID:          selfID,
		SelfRef:         selfRef,
		PeerRefs:        peers,
		Dial:            d.dial,
		ElectionTimeout: 200 * time.Millisecond,
	})
}

// TestRequestVoteFencing exercises every deny rule of the vote
// protocol: live-leader deny, stale epoch, max-applied, the pull-health
// veto, and the per-epoch vote lock.
func TestRequestVoteFencing(t *testing.T) {
	ctx := context.Background()
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()
	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := leader.Export("CarRentalService", carRef(i), carProps("FIAT_Uno", 50, "USD")); err != nil {
			t.Fatal(err)
		}
	}

	// A healthy leader denies any candidacy, and reports itself.
	v, err := leader.RequestVote(ctx, "X", leader.Epoch()+5, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if v.Granted || v.Role != RoleLeader {
		t.Fatalf("healthy leader granted a vote: %+v", v)
	}

	follower, fj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer fj.Close()
	follower.SetFollower("cosm://leader")
	syncUp(t, leader, follower, "f1")
	applied := follower.ReplApplied()

	// Stale epoch: the group is already at or past it.
	if v, _ = follower.RequestVote(ctx, "X", follower.Epoch(), applied); v.Granted {
		t.Fatal("granted a vote at a stale epoch")
	}
	// Max-applied: a candidate missing acknowledged records is denied.
	if v, _ = follower.RequestVote(ctx, "X", follower.Epoch()+1, applied-1); v.Granted {
		t.Fatal("granted a vote to a candidate behind our applied position")
	}
	// Health veto: our own pulls still succeed, so the leader is alive.
	follower.repl.voteHealthWindow.Store(int64(time.Hour))
	follower.repl.lastPullOK.Store(follower.now().UnixNano())
	if v, _ = follower.RequestVote(ctx, "X", follower.Epoch()+1, applied); v.Granted {
		t.Fatal("granted a vote while our own leader link is healthy")
	}
	follower.repl.voteHealthWindow.Store(0)

	// Grant, then the vote lock: one vote per epoch, idempotent for the
	// same candidate, denied to a rival.
	if v, _ = follower.RequestVote(ctx, "X", follower.Epoch()+1, applied); !v.Granted {
		t.Fatalf("expected a grant: %+v", v)
	}
	if v, _ = follower.RequestVote(ctx, "X", follower.Epoch()+1, applied); !v.Granted {
		t.Fatal("re-request by the same candidate must stay granted")
	}
	if v, _ = follower.RequestVote(ctx, "Y", follower.Epoch()+1, applied); v.Granted {
		t.Fatal("epoch's vote already pledged to X, rival Y must be denied")
	}
	// A higher epoch re-opens the lock.
	if v, _ = follower.RequestVote(ctx, "Y", follower.Epoch()+2, applied); !v.Granted {
		t.Fatal("fresh epoch must accept a new candidate")
	}
}

// TestElectionMaxAppliedWins kills the leader of a three-node group and
// requires that only the most-advanced follower can assemble a quorum:
// the lagging follower's candidacy dies on the max-applied rule, the
// advanced follower promotes, and the laggard relocates to the winner.
func TestElectionMaxAppliedWins(t *testing.T) {
	ctx := context.Background()
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()
	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := leader.Export("CarRentalService", carRef(i), carProps("FIAT_Uno", 50, "USD")); err != nil {
			t.Fatal(err)
		}
	}

	ahead, aj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways},
		WithMetrics(obs.NewRegistry()))
	defer aj.Close()
	ahead.SetFollower("cosm://L")
	behind, bj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer bj.Close()
	behind.SetFollower("cosm://L")

	syncUp(t, leader, behind, "behind")
	for i := 4; i < 8; i++ {
		if _, err := leader.Export("CarRentalService", carRef(i), carProps("FIAT_Uno", 50, "USD")); err != nil {
			t.Fatal(err)
		}
	}
	syncUp(t, leader, ahead, "ahead") // only "ahead" sees the last four

	dir := newPeerDirectory()
	dir.add("cosm://L", leader)
	dir.add("cosm://A", ahead)
	dir.add("cosm://B", behind)
	dir.setDown("cosm://L", true) // leader crashes

	mA := testMonitor(t, ahead, dir, "A", "cosm://A", "cosm://B", "cosm://L")
	mB := testMonitor(t, behind, dir, "B", "cosm://B", "cosm://A", "cosm://L")
	// Age both followers' pull health past the veto window — with the
	// leader dead, their pulls would have been failing.
	ahead.repl.lastPullOK.Store(1)
	behind.repl.lastPullOK.Store(1)

	// The laggard stands first and must lose: "ahead" denies on the
	// max-applied rule, and the dead leader cannot vote.
	mB.electionRound(ctx)
	if behind.Role() != RoleFollower {
		t.Fatal("lagging candidate must not win an election")
	}

	// The advanced follower stands. Its first target epoch may collide
	// with B's failed self-vote lock, so a candidacy is retried — each
	// retry moves to a fresh epoch, exactly like a Raft term.
	won := false
	for i := 0; i < 3 && !won; i++ {
		mA.electionRound(ctx)
		won = ahead.Role() == RoleLeader
	}
	if !won {
		t.Fatal("most-advanced follower failed to win with a quorum of 2/3")
	}
	if got := ahead.metrics.elections.With("won").Value(); got == 0 {
		t.Fatal("election win not counted in cosm_trader_elections_total")
	}

	// The laggard's next suspicion scan finds the new leader and
	// relocates instead of electing again.
	if !mB.relocate(ctx) {
		t.Fatal("laggard did not relocate to the new leader")
	}
	if hint := behind.LeaderHint(); hint != "cosm://A" {
		t.Fatalf("laggard relocated to %q, want cosm://A", hint)
	}
}

// TestElectionMinorityCannotPromote isolates a follower from both other
// members of a three-node group: with only its own vote it can never
// reach the quorum of 2, no matter how many rounds it runs.
func TestElectionMinorityCannotPromote(t *testing.T) {
	ctx := context.Background()
	alone, j := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways},
		WithMetrics(obs.NewRegistry()))
	defer j.Close()
	alone.SetFollower("cosm://L")

	dir := newPeerDirectory()
	dir.setDown("cosm://L", true)
	dir.setDown("cosm://B", true)
	m := testMonitor(t, alone, dir, "A", "cosm://A", "cosm://B", "cosm://L")
	alone.repl.lastPullOK.Store(1)

	for i := 0; i < 5; i++ {
		m.electionRound(ctx)
	}
	if alone.Role() != RoleFollower {
		t.Fatal("partitioned minority promoted itself: split brain")
	}
	if got := alone.metrics.elections.With("lost").Value(); got != 5 {
		t.Fatalf("lost-election count = %d, want 5", got)
	}
}

// TestDeposedLeaderRejoins runs the leader-side scan: an old leader
// that the group elected past discovers the winner, demote-rejoins as
// its follower, and converges — its divergent unacknowledged tail
// replaced by the winner's snapshot, not merged.
func TestDeposedLeaderRejoins(t *testing.T) {
	ctx := context.Background()
	old, oj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer oj.Close()
	if err := old.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := old.Export("CarRentalService", carRef(i), carProps("FIAT_Uno", 50, "USD")); err != nil {
			t.Fatal(err)
		}
	}

	winner, wj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer wj.Close()
	winner.SetFollower("cosm://old")
	syncUp(t, old, winner, "w")

	// The group elects past the old leader while it is isolated; the
	// old leader keeps writing a tail nobody acknowledged.
	if err := winner.Promote(old.Epoch() + 1); err != nil {
		t.Fatal(err)
	}
	if _, err := winner.Export("CarRentalService", carRef(10), carProps("AUDI", 200, "GBP")); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Export("CarRentalService", carRef(99), carProps("VW_Golf", 75, "DEM")); err != nil {
		t.Fatal(err)
	}

	dir := newPeerDirectory()
	dir.add("cosm://W", winner)
	m := testMonitor(t, old, dir, "O", "cosm://O", "cosm://W")
	m.leaderScan(ctx)

	if old.Role() != RoleFollower {
		t.Fatal("deposed leader did not demote after discovering a higher epoch")
	}
	syncUp(t, winner, old, "o")

	req := ImportRequest{Type: "CarRentalService"}
	want, err := winner.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := old.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offersJSON(t, got), offersJSON(t, want)) {
		t.Fatalf("rejoined leader diverges:\n got %s\nwant %s", offersJSON(t, got), offersJSON(t, want))
	}
	for _, o := range got {
		if lit, ok := o.Props["CarModel"]; ok && lit.Str == "VW_Golf" {
			t.Fatal("divergent unacknowledged export survived the rejoin")
		}
	}
}

// TestFollowerRetargetsOnLeaderHint drives the pull loop against a
// demoted source: the not-leader rejection's hint must re-point the
// loop at the real leader, and pulls must then succeed.
func TestFollowerRetargetsOnLeaderHint(t *testing.T) {
	leader, lj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer lj.Close()
	if err := leader.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}
	demoted, dj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer dj.Close()
	demoted.SetFollower("cosm://real-leader")

	follower, fj := newDurableTrader(t, "L", t.TempDir(), journal.Options{Fsync: journal.FsyncAlways})
	defer fj.Close()
	follower.SetFollower("cosm://demoted")

	sources := map[string]ReplSource{
		"cosm://demoted":     demoted,
		"cosm://real-leader": leader,
	}
	f := NewFollower(follower, nil, "f1")
	f.SetResolver(func(_ context.Context, leaderRef string) (ReplSource, error) {
		src, ok := sources[leaderRef]
		if !ok {
			return nil, fmt.Errorf("unknown leader %q", leaderRef)
		}
		return src, nil
	})
	f.Retarget("cosm://demoted")
	results := make(chan error, 64)
	f.OnResult(func(err error) { results <- err })
	f.Start()
	defer f.Close()

	deadline := time.After(5 * time.Second)
	sawReject, sawOK := false, false
	for !sawOK {
		select {
		case err := <-results:
			if err != nil && errors.Is(err, ErrNotLeader) || err != nil && containsLeaderAt(err) {
				sawReject = true
			}
			if err == nil {
				sawOK = true
			}
		case <-deadline:
			t.Fatal("pull loop never recovered via the leader hint")
		}
	}
	if !sawReject {
		t.Fatal("pull loop never hit the demoted source")
	}
	if got := f.currentTarget(); got != "cosm://real-leader" {
		t.Fatalf("pull loop targets %q, want the hinted leader", got)
	}
}

func containsLeaderAt(err error) bool {
	_, ok := LeaderHintFromError(err)
	return ok
}

// TestLeaderHintFromError pins the hint parser to both the local error
// form and its flattened over-the-wire text.
func TestLeaderHintFromError(t *testing.T) {
	cases := []struct {
		err  error
		want string
		ok   bool
	}{
		{fmt.Errorf("%w (leader at cosm://host:9/Trader)", ErrNotLeader), "cosm://host:9/Trader", true},
		{errors.New("remote: trader: not leader (leader at cosm://x:1/T)"), "cosm://x:1/T", true},
		{errors.New("trader: not leader"), "", false},
		{errors.New("leader at "), "", false},
		{nil, "", false},
	}
	for _, c := range cases {
		got, ok := LeaderHintFromError(c.err)
		if got != c.want || ok != c.ok {
			t.Errorf("LeaderHintFromError(%v) = %q,%v want %q,%v", c.err, got, ok, c.want, c.ok)
		}
	}
}
