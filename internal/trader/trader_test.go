package trader

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
)

func newCarRepo(t *testing.T) *typemgr.Repo {
	t.Helper()
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	return repo
}

func carProps(model string, charge float64, currency string) []sidl.Property {
	return []sidl.Property{
		{Name: "CarModel", Value: sidl.EnumLit(model)},
		{Name: "AverageMilage", Value: sidl.IntLit(38000)},
		{Name: "ChargePerDay", Value: sidl.FloatLit(charge)},
		{Name: "ChargeCurrency", Value: sidl.EnumLit(currency)},
	}
}

func carRef(i int) ref.ServiceRef {
	return ref.New(fmt.Sprintf("tcp:10.0.0.%d:7000", i), "CarRentalService")
}

func TestExportImportWithdraw(t *testing.T) {
	tr := New("T1", newCarRepo(t))
	ctx := context.Background()

	id1, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 80, "USD"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tr.Export("CarRentalService", carRef(2), carProps("AUDI", 120, "DEM"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("offer ids must be unique")
	}
	if tr.OfferCount() != 2 {
		t.Fatalf("OfferCount = %d", tr.OfferCount())
	}

	// Unconstrained import returns both, in stable order.
	offers, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 || offers[0].ID != id1 {
		t.Fatalf("offers = %+v", offers)
	}

	// Constrained import.
	offers, err = tr.Import(ctx, ImportRequest{
		Type:       "CarRentalService",
		Constraint: "ChargePerDay < 100 && ChargeCurrency == USD",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Ref != carRef(1) {
		t.Fatalf("constrained offers = %+v", offers)
	}

	// Withdraw removes the offer from matching.
	if err := tr.Withdraw(id1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Withdraw(id1); !errors.Is(err, ErrOfferUnknown) {
		t.Fatalf("double withdraw err = %v", err)
	}
	offers, _ = tr.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if len(offers) != 1 || offers[0].ID != id2 {
		t.Fatalf("after withdraw = %+v", offers)
	}
}

func TestExportValidatesOffer(t *testing.T) {
	tr := New("T1", newCarRepo(t))
	// Unknown type.
	if _, err := tr.Export("Ghost", carRef(1), nil); !errors.Is(err, typemgr.ErrTypeUnknown) {
		t.Fatalf("err = %v", err)
	}
	// Missing attribute.
	if _, err := tr.Export("CarRentalService", carRef(1), carProps("AUDI", 1, "USD")[:2]); !errors.Is(err, typemgr.ErrMissingAttr) {
		t.Fatalf("err = %v", err)
	}
	// Mistyped attribute.
	bad := carProps("AUDI", 1, "USD")
	bad[2].Value = sidl.StringLit("eighty")
	if _, err := tr.Export("CarRentalService", carRef(1), bad); !errors.Is(err, typemgr.ErrAttrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplace(t *testing.T) {
	tr := New("T1", newCarRepo(t))
	ctx := context.Background()
	id, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 80, "USD"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Replace(id, carProps("FIAT_Uno", 60, "USD")); err != nil {
		t.Fatal(err)
	}
	offers, _ := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Constraint: "ChargePerDay == 60"})
	if len(offers) != 1 {
		t.Fatalf("offers = %+v", offers)
	}
	if err := tr.Replace("ghost", carProps("AUDI", 1, "USD")); !errors.Is(err, ErrOfferUnknown) {
		t.Fatalf("err = %v", err)
	}
	bad := carProps("AUDI", 1, "USD")[:1]
	if err := tr.Replace(id, bad); !errors.Is(err, typemgr.ErrMissingAttr) {
		t.Fatalf("err = %v", err)
	}
}

func TestImportPolicies(t *testing.T) {
	tr := New("T1", newCarRepo(t), WithRandSeed(7))
	ctx := context.Background()
	charges := []float64{90, 40, 120, 70}
	for i, c := range charges {
		if _, err := tr.Export("CarRentalService", carRef(i), carProps("AUDI", c, "USD")); err != nil {
			t.Fatal(err)
		}
	}

	best, err := tr.ImportOne(ctx, ImportRequest{Type: "CarRentalService", Policy: "min:ChargePerDay"})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := best.Props["ChargePerDay"]; v.Float != 40 {
		t.Fatalf("min policy picked %v", v)
	}
	best, err = tr.ImportOne(ctx, ImportRequest{Type: "CarRentalService", Policy: "max:ChargePerDay"})
	if err != nil {
		t.Fatal(err)
	}
	if v := best.Props["ChargePerDay"]; v.Float != 120 {
		t.Fatalf("max policy picked %v", v)
	}

	// Random policy returns some offer; with Max it truncates.
	offers, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Policy: "random", Max: 2})
	if err != nil || len(offers) != 2 {
		t.Fatalf("random offers = %+v, %v", offers, err)
	}

	// Bad policy and bad constraint are errors.
	if _, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Policy: "nope"}); !errors.Is(err, ErrPolicy) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService", Constraint: "(("}); !errors.Is(err, ErrConstraint) {
		t.Fatalf("err = %v", err)
	}

	// ImportOne with no match.
	if _, err := tr.ImportOne(ctx, ImportRequest{Type: "CarRentalService", Constraint: "ChargePerDay < 0"}); !errors.Is(err, ErrNoOffer) {
		t.Fatalf("err = %v", err)
	}
}

func TestImportSubtypeOffers(t *testing.T) {
	// Offers of a conforming subtype satisfy imports of the base type.
	repo := newCarRepo(t)
	base, _ := repo.Lookup("CarRentalService")
	lux := &typemgr.ServiceType{
		Name:      "LuxuryCarRentalService",
		Super:     "CarRentalService",
		Attrs:     append(append([]typemgr.AttrDef{}, base.Attrs...), typemgr.AttrDef{Name: "Chauffeur", Type: sidl.Basic(sidl.Bool)}),
		Signature: base.Signature,
	}
	if err := repo.Define(lux); err != nil {
		t.Fatal(err)
	}
	tr := New("T1", repo)
	ctx := context.Background()
	luxProps := append(carProps("AUDI", 300, "USD"), sidl.Property{Name: "Chauffeur", Value: sidl.BoolLit(true)})
	if _, err := tr.Export("LuxuryCarRentalService", carRef(9), luxProps); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Export("CarRentalService", carRef(1), carProps("FIAT_Uno", 80, "USD")); err != nil {
		t.Fatal(err)
	}

	offers, err := tr.Import(ctx, ImportRequest{Type: "CarRentalService"})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("base import must see subtype offers: %+v", offers)
	}
	// The reverse does not hold.
	offers, err = tr.Import(ctx, ImportRequest{Type: "LuxuryCarRentalService"})
	if err != nil || len(offers) != 1 {
		t.Fatalf("luxury import = %+v, %v", offers, err)
	}
}

func TestImportWithoutIndexMatchesIndexed(t *testing.T) {
	ctx := context.Background()
	indexed := New("A", newCarRepo(t))
	linear := New("B", newCarRepo(t), WithoutOfferIndex(), WithoutConstraintCache())
	for i := 0; i < 10; i++ {
		props := carProps("AUDI", float64(50+i*10), "USD")
		if _, err := indexed.Export("CarRentalService", carRef(i), props); err != nil {
			t.Fatal(err)
		}
		if _, err := linear.Export("CarRentalService", carRef(i), props); err != nil {
			t.Fatal(err)
		}
	}
	req := ImportRequest{Type: "CarRentalService", Constraint: "ChargePerDay >= 70 && ChargePerDay < 120", Policy: "min:ChargePerDay"}
	a, err := indexed.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := linear.Import(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("indexed %d vs linear %d offers", len(a), len(b))
	}
	for i := range a {
		if a[i].Ref != b[i].Ref {
			t.Fatalf("offer %d differs: %v vs %v", i, a[i].Ref, b[i].Ref)
		}
	}
}

// mustLink registers a federation link or fails the test.
func mustLink(t testing.TB, tr *Trader, name string, peer Federate) {
	t.Helper()
	if err := tr.AddLink(name, peer); err != nil {
		t.Fatalf("AddLink(%q): %v", name, err)
	}
}

func TestFederationInProcess(t *testing.T) {
	ctx := context.Background()
	// Three traders in a chain A <-> B <-> C (bidirectional links, so
	// loop protection matters).
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	c := New("C", newCarRepo(t))
	mustLink(t, a, "b", b)
	mustLink(t, b, "a", a)
	mustLink(t, b, "c", c)
	mustLink(t, c, "b", b)

	if _, err := c.Export("CarRentalService", carRef(3), carProps("VW_Golf", 55, "DEM")); err != nil {
		t.Fatal(err)
	}

	// Hop limit 0: local only, no results at A.
	offers, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 0})
	if err != nil || len(offers) != 0 {
		t.Fatalf("hop 0 offers = %+v, %v", offers, err)
	}
	// Hop limit 1 reaches B only — still nothing.
	offers, err = a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil || len(offers) != 0 {
		t.Fatalf("hop 1 offers = %+v, %v", offers, err)
	}
	// Hop limit 2 reaches C.
	offers, err = a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 2})
	if err != nil || len(offers) != 1 || offers[0].Ref != carRef(3) {
		t.Fatalf("hop 2 offers = %+v, %v", offers, err)
	}
}

func TestFederationDeduplicates(t *testing.T) {
	ctx := context.Background()
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	mustLink(t, a, "b", b)
	// The same service (same reference) is exported at both traders.
	if _, err := a.Export("CarRentalService", carRef(1), carProps("AUDI", 99, "USD")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Export("CarRentalService", carRef(1), carProps("AUDI", 99, "USD")); err != nil {
		t.Fatal(err)
	}
	offers, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil || len(offers) != 1 {
		t.Fatalf("dedup offers = %+v, %v", offers, err)
	}
}

// blackholeFederate simulates a dead federation partner: the query never
// answers until the caller's context gives up.
type blackholeFederate struct{ id string }

func (f *blackholeFederate) FederationID() string { return f.id }

func (f *blackholeFederate) FederatedImport(ctx context.Context, _ ImportRequest) ([]Match, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// A federated import over a dead link must still return the partial
// results from live links within the caller's deadline, instead of
// hanging on (or failing because of) the black-holed partner.
func TestFederationPartialResultsOverDeadLink(t *testing.T) {
	a := New("A", newCarRepo(t))
	live := New("B", newCarRepo(t))
	mustLink(t, a, "dead", &blackholeFederate{id: "DEAD"})
	mustLink(t, a, "live", live)
	if _, err := live.Export("CarRentalService", carRef(7), carProps("AUDI", 70, "USD")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	offers, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Import over dead link: %v", err)
	}
	if len(offers) != 1 || offers[0].Ref != carRef(7) {
		t.Fatalf("offers = %+v, want the live link's offer", offers)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("import took %v, must finish within the caller's deadline", elapsed)
	}
}

// Without any live results the query still returns (empty) by the
// deadline rather than hanging.
func TestFederationAllLinksDeadReturnsByDeadline(t *testing.T) {
	a := New("A", newCarRepo(t))
	mustLink(t, a, "d1", &blackholeFederate{id: "D1"})
	mustLink(t, a, "d2", &blackholeFederate{id: "D2"})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	offers, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if len(offers) != 0 {
		t.Fatalf("offers = %+v, want none", offers)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("import took %v, want ~deadline", elapsed)
	}
}

func TestFederationLoopTerminates(t *testing.T) {
	ctx := context.Background()
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	mustLink(t, a, "b", b)
	mustLink(t, b, "a", a)
	// Huge hop limit over a 2-cycle must terminate via the visited set.
	if _, err := b.Export("CarRentalService", carRef(2), carProps("AUDI", 10, "USD")); err != nil {
		t.Fatal(err)
	}
	offers, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 50})
	if err != nil || len(offers) != 1 {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
}
