package trader

// Trader replication: a leader streams its write-ahead journal to
// followers, who replay each record through the normal store API and
// so converge on the leader's exact matching state (same snapshots,
// same indexes, same caches). Followers serve imports locally — read
// replicas — and refuse mutations with a hint pointing at the leader.
//
// Failover is fenced: a follower is promoted — by an operator, or
// automatically by the quorum-fenced election in election.go — with an
// epoch strictly greater than any the group has seen. The epoch is
// journalled, so it survives restarts, and every replication exchange
// carries it — a deposed leader's batches and a stale promotion are
// both rejected by comparing epochs. Combined with synchronous
// replication (WithReplSync), promoting the most-advanced follower
// preserves every acknowledged mutation.
//
// The stream itself is pull-based: a follower asks for records after
// its last applied sequence number (ReplPull on the wire, PullBatch
// here). A pull doubles as an acknowledgement — the leader counts a
// follower as having replicated seq once it asks for records after
// seq. When the follower has fallen behind the leader's compaction
// watermark, the leader ships a full state snapshot instead and the
// follower reinstalls it wholesale.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cosm/internal/journal"
)

// ErrNotLeader rejects mutations sent to a follower. The error text on
// the wire carries the leader's ref so clients can re-bind.
var ErrNotLeader = errors.New("trader: not leader")

// Replication roles.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
)

// replState carries a trader's replication role and bookkeeping. The
// zero value is a standalone leader at epoch 0.
type replState struct {
	follower   atomic.Bool
	leaderHint atomic.Value // string: where mutations should go instead
	epoch      atomic.Uint64
	applied    atomic.Uint64 // follower: last journal seq applied locally
	leaderSeq  atomic.Uint64 // follower: leader's log tail at last pull
	caughtUpAt atomic.Int64  // follower: UnixNano of last caught-up pull; 0 = behind

	// Follower acknowledgements (leader side, for WithReplSync).
	mu    sync.Mutex
	acks  map[string]uint64 // follower ID -> highest seq it has pulled past
	ackCh chan struct{}     // closed+reset when any ack advances

	syncN    int
	syncWait time.Duration

	// Election state (see election.go). voteEpoch/votedFor are the
	// per-epoch vote lock, guarded by mu: at most one candidate ever
	// holds this trader's vote for a given epoch, which is what makes a
	// majority quorum exclusive. lastPullOK is the UnixNano of the last
	// successful pull (the voter health veto); voteHealthWindow > 0
	// enables that veto. rejoining marks a deposed leader resyncing
	// wholesale: its next snapshot install may rewind the local journal.
	voteEpoch        uint64
	votedFor         string
	lastPullOK       atomic.Int64
	voteHealthWindow atomic.Int64 // nanoseconds
	rejoining        atomic.Bool
}

// ReplBatch is one replication exchange from leader to follower:
// either a run of journal records after the follower's position, or —
// when the follower is behind the compaction watermark — a full state
// snapshot at SnapshotSeq. LastSeq is the leader's log tail, letting
// the follower measure its lag; Epoch fences the exchange.
type ReplBatch struct {
	Epoch       uint64
	LastSeq     uint64
	SnapshotSeq uint64
	Snapshot    []byte
	Records     []journal.Record
}

// ReplStatus describes a trader's position in its replication group.
type ReplStatus struct {
	Role    string
	Epoch   uint64
	LastSeq uint64 // local journal tail
	Applied uint64 // follower: last seq applied; leader: == LastSeq
	Leader  string // follower: the leader hint; leader: empty
}

// Role reports "leader" or "follower".
func (t *Trader) Role() string {
	if t.repl.follower.Load() {
		return RoleFollower
	}
	return RoleLeader
}

// Epoch reports the current fencing epoch.
func (t *Trader) Epoch() uint64 { return t.repl.epoch.Load() }

// LeaderHint reports where mutations should go when this trader is a
// follower ("" when leading or unknown).
func (t *Trader) LeaderHint() string {
	if s, ok := t.repl.leaderHint.Load().(string); ok {
		return s
	}
	return ""
}

// ReplApplied reports the last journal sequence number applied via
// replication (the follower's pull position).
func (t *Trader) ReplApplied() uint64 { return t.repl.applied.Load() }

// SetFollower puts the trader in follower mode before serving: local
// mutations are rejected with leaderRef as the hint, imports are
// served from the replicated store.
func (t *Trader) SetFollower(leaderRef string) {
	t.repl.leaderHint.Store(leaderRef)
	t.repl.follower.Store(true)
}

// DemoteRejoin demotes this trader — typically a deposed leader that
// discovered a higher epoch in the cluster — to a follower of
// leaderRef and marks it for wholesale resynchronisation: the pull
// position resets to zero so the first pull bootstraps from the new
// leader's snapshot, and that install is allowed to rewind the local
// journal (a divergent tail this node acknowledged to no one must not
// survive the rejoin).
func (t *Trader) DemoteRejoin(leaderRef string) {
	t.repl.rejoining.Store(true)
	t.repl.applied.Store(0)
	t.repl.leaderSeq.Store(0)
	t.repl.caughtUpAt.Store(0)
	t.SetFollower(leaderRef)
	t.event("demote_rejoin", "leader", leaderRef, "epoch", strconv.FormatUint(t.Epoch(), 10))
	t.log.Log(nil, "demote_rejoin", "leader", leaderRef, "epoch", t.Epoch())
}

// leaderCheck gates mutations: nil on a leader, ErrNotLeader (with the
// leader hint folded into the message) on a follower.
func (t *Trader) leaderCheck() error {
	if !t.repl.follower.Load() {
		return nil
	}
	if hint := t.LeaderHint(); hint != "" {
		return fmt.Errorf("%w (leader at %s)", ErrNotLeader, hint)
	}
	return ErrNotLeader
}

// raiseEpoch lifts the fencing epoch to at least e (it never lowers).
func (t *Trader) raiseEpoch(e uint64) {
	for {
		cur := t.repl.epoch.Load()
		if cur >= e || t.repl.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Promote makes a follower the leader of its group at the given
// fencing epoch, which must be strictly greater than any epoch this
// trader has seen. The new epoch is journalled first, so it survives a
// restart and replicates to the rest of the group, fencing the old
// leader out.
func (t *Trader) Promote(epoch uint64) error {
	if cur := t.repl.epoch.Load(); epoch <= cur {
		t.metrics.fencingRejections.Inc()
		return fmt.Errorf("trader: stale promotion epoch %d (current %d)", epoch, cur)
	}
	if t.journal != nil {
		// Journal directly: waitReplicated would deadlock here when the
		// group's other followers are still pointed at the old leader.
		// Append and the epoch raise share the apply lock so a snapshot
		// whose watermark covers the epoch record always carries the new
		// epoch.
		t.applyMu.RLock()
		if _, err := t.journal.AppendJSON(&walRecord{Op: opEpoch, Epoch: epoch}); err != nil {
			t.applyMu.RUnlock()
			return fmt.Errorf("trader: journal: %w", err)
		}
		t.raiseEpoch(epoch)
		t.applyMu.RUnlock()
	}
	t.raiseEpoch(epoch)
	t.repl.follower.Store(false)
	t.repl.leaderHint.Store("")
	t.event("promote", "epoch", strconv.FormatUint(epoch, 10))
	t.log.Log(nil, "promoted", "epoch", epoch)
	return nil
}

// PullBatch serves one replication pull (the ReplPull endpoint): the
// follower identified by followerID, fenced at followerEpoch, wants up
// to max records after afterSeq and is willing to wait up to wait for
// new ones. The pull acknowledges afterSeq for synchronous
// replication.
func (t *Trader) PullBatch(ctx context.Context, followerID string, followerEpoch, afterSeq uint64, max int, wait time.Duration) (*ReplBatch, error) {
	if t.journal == nil {
		return nil, errors.New("trader: replication requires a journal")
	}
	if err := t.journal.Failed(); err != nil {
		// A fail-stopped journal cannot vouch for its own tail: stop
		// serving as a replication source, so followers' pulls fail,
		// suspicion trips, and a healthy replica is elected.
		return nil, fmt.Errorf("trader: replication source fail-stop: %w", err)
	}
	if err := t.leaderCheck(); err != nil {
		// A demoted node must not keep feeding followers its stale
		// journal: the rejection carries the leader hint, which the
		// pull loop follows to re-point itself at the real leader.
		return nil, err
	}
	if cur := t.repl.epoch.Load(); followerEpoch > cur {
		// Someone was promoted past us: we are deposed. Stop accepting
		// mutations; the operator re-points us (or clients re-bind via
		// the hint-less ErrNotLeader).
		t.metrics.fencingRejections.Inc()
		t.repl.follower.Store(true)
		t.event("deposed", "epoch", strconv.FormatUint(cur, 10),
			"seen_epoch", strconv.FormatUint(followerEpoch, 10))
		t.log.Log(ctx, "deposed", "epoch", cur, "seen_epoch", followerEpoch)
		return nil, fmt.Errorf("trader: fenced: follower epoch %d past local %d", followerEpoch, cur)
	}
	t.noteFollower(followerID, afterSeq)

	if max <= 0 {
		max = 512
	}
	// Long-poll bounded by the caller's deadline (with margin to ship
	// an empty batch rather than time the RPC out).
	if dl, ok := ctx.Deadline(); ok {
		if budget := time.Until(dl) - 100*time.Millisecond; budget < wait {
			wait = budget
		}
	}
	if wait > 0 && t.journal.Stats().LastSeq <= afterSeq {
		t.journal.WaitFor(afterSeq, wait)
	}

	stats := t.journal.Stats()
	b := &ReplBatch{Epoch: t.repl.epoch.Load(), LastSeq: stats.LastSeq}
	recs, err := t.journal.ReadFrom(afterSeq, max)
	// A bootstrap pull (afterSeq 0) always ships a snapshot when there
	// is any history to ship: snapshots can carry boot-time state —
	// preloaded service types — that was never journalled as records,
	// and a deposed leader rejoining with a divergent journal tail can
	// only converge through a snapshot install (which rewinds it); its
	// local tail blocks record-by-record replay from seq 1.
	needSnap := errors.Is(err, journal.ErrCompacted) ||
		(err == nil && afterSeq == 0 && (stats.HasSnapshot || stats.LastSeq > 0))
	switch {
	case needSnap:
		// The follower is behind the compaction watermark: ship full
		// state. The watermark is captured before serialising, so the
		// snapshot is at-least-as-new as it (the journal's usual
		// snapshot-newer-than-watermark contract).
		watermark := t.journal.Stats().LastSeq
		snap, err := t.JournalSnapshot()
		if err != nil {
			return nil, err
		}
		b.Snapshot, b.SnapshotSeq = snap, watermark
	case err != nil:
		return nil, err
	default:
		b.Records = recs
		t.metrics.replRecords.With("sent").Add(uint64(len(recs)))
	}
	return b, nil
}

// ApplyBatch applies one replication batch on a follower, returning
// how many records it applied. Records are WAL-first: each is appended
// to the follower's own journal at the leader's sequence number before
// it is replayed, so a follower restart recovers to its pull position.
func (t *Trader) ApplyBatch(b *ReplBatch) (int, error) {
	if cur := t.repl.epoch.Load(); b.Epoch < cur {
		t.metrics.fencingRejections.Inc()
		t.event("fencing_rejection", "batch_epoch", strconv.FormatUint(b.Epoch, 10),
			"epoch", strconv.FormatUint(cur, 10))
		return 0, fmt.Errorf("trader: fenced: batch epoch %d below local %d", b.Epoch, cur)
	}
	t.raiseEpoch(b.Epoch)

	// The follower's own journal compacts too: each append+replay pair
	// holds the apply lock so a local snapshot never captures state
	// missing a record its watermark covers.
	n := 0
	if b.Snapshot != nil {
		t.applyMu.RLock()
		if t.journal != nil {
			// A rejoining deposed leader may hold a divergent unacked
			// tail past the shipped watermark; its log is replaced
			// wholesale. Everyone else only ever jumps forward.
			install := t.journal.InstallSnapshot
			if t.repl.rejoining.Load() {
				install = t.journal.RewindToSnapshot
			}
			if err := install(b.Snapshot, b.SnapshotSeq); err != nil {
				t.applyMu.RUnlock()
				return 0, fmt.Errorf("trader: install snapshot: %w", err)
			}
		}
		t.store.clear()
		if err := t.RestoreSnapshot(b.Snapshot); err != nil {
			t.applyMu.RUnlock()
			return 0, err
		}
		t.repl.applied.Store(b.SnapshotSeq)
		rejoined := t.repl.rejoining.Swap(false)
		t.applyMu.RUnlock()
		t.event("snapshot_install", "seq", strconv.FormatUint(b.SnapshotSeq, 10),
			"rejoin", strconv.FormatBool(rejoined))
	}
	for _, rec := range b.Records {
		if rec.Seq <= t.repl.applied.Load() {
			continue // duplicate delivery; records are idempotent anyway
		}
		t.applyMu.RLock()
		if t.journal != nil {
			if err := t.journal.AppendAt(rec.Seq, rec.Payload); err != nil {
				t.applyMu.RUnlock()
				return n, fmt.Errorf("trader: journal: %w", err)
			}
		}
		if err := t.ReplayRecord(rec.Seq, rec.Payload); err != nil {
			t.applyMu.RUnlock()
			return n, err
		}
		t.repl.applied.Store(rec.Seq)
		t.applyMu.RUnlock()
		n++
	}
	if n > 0 {
		t.metrics.replRecords.With("applied").Add(uint64(n))
	}
	t.repl.leaderSeq.Store(b.LastSeq)
	t.repl.lastPullOK.Store(t.now().UnixNano())
	if t.repl.applied.Load() >= b.LastSeq {
		t.repl.caughtUpAt.Store(t.now().UnixNano())
	}
	return n, nil
}

// Status reports the trader's replication position.
func (t *Trader) Status() ReplStatus {
	st := ReplStatus{Role: t.Role(), Epoch: t.Epoch(), Applied: t.repl.applied.Load(), Leader: t.LeaderHint()}
	if t.journal != nil {
		st.LastSeq = t.journal.Stats().LastSeq
	}
	if st.Role == RoleLeader {
		st.Applied = st.LastSeq
		st.Leader = ""
	}
	return st
}

// noteFollower records that a follower has pulled past seq (leader
// side), waking any mutation blocked in waitReplicated.
func (t *Trader) noteFollower(id string, seq uint64) {
	t.repl.mu.Lock()
	defer t.repl.mu.Unlock()
	if t.repl.acks == nil {
		t.repl.acks = map[string]uint64{}
	}
	if seq > t.repl.acks[id] {
		t.repl.acks[id] = seq
		if t.repl.ackCh != nil {
			close(t.repl.ackCh)
			t.repl.ackCh = nil
		}
	}
}

// waitReplicated blocks until syncN followers have pulled past seq, or
// syncWait expires. No-op in asynchronous mode (syncN <= 0).
func (t *Trader) waitReplicated(seq uint64) error {
	n := t.repl.syncN
	if n <= 0 {
		return nil
	}
	deadline := time.NewTimer(t.repl.syncWait)
	defer deadline.Stop()
	for {
		t.repl.mu.Lock()
		cnt := 0
		for _, acked := range t.repl.acks {
			if acked >= seq {
				cnt++
			}
		}
		if cnt >= n {
			t.repl.mu.Unlock()
			return nil
		}
		if t.repl.ackCh == nil {
			t.repl.ackCh = make(chan struct{})
		}
		ch := t.repl.ackCh
		t.repl.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("trader: replication: %d/%d followers acked seq %d within %v", cnt, n, seq, t.repl.syncWait)
		}
	}
}

// replLagRecords reports how many leader records the follower still
// has to apply (0 on a leader).
func (t *Trader) replLagRecords() uint64 {
	if !t.repl.follower.Load() {
		return 0
	}
	leader, applied := t.repl.leaderSeq.Load(), t.repl.applied.Load()
	if leader <= applied {
		return 0
	}
	return leader - applied
}

// replLagSeconds reports how long the follower has been behind its
// leader (0 when caught up or leading).
func (t *Trader) replLagSeconds() float64 {
	if !t.repl.follower.Load() || t.replLagRecords() == 0 {
		return 0
	}
	at := t.repl.caughtUpAt.Load()
	if at == 0 {
		return 0 // never caught up yet: lag in records tells the story
	}
	return time.Duration(t.now().UnixNano() - at).Seconds()
}

// ReplSource is where a follower pulls replication batches from —
// implemented by *Client (over the wire) and by *Trader directly
// (in-process tests).
type ReplSource interface {
	ReplPull(ctx context.Context, followerID string, epoch, afterSeq uint64, max int, wait time.Duration) (*ReplBatch, error)
}

// ReplPull lets a *Trader serve as an in-process ReplSource.
func (t *Trader) ReplPull(ctx context.Context, followerID string, epoch, afterSeq uint64, max int, wait time.Duration) (*ReplBatch, error) {
	return t.PullBatch(ctx, followerID, epoch, afterSeq, max, wait)
}

// Follower runs the pull loop of a follower trader: repeatedly pull
// from the source, apply, and back off on errors with seeded jitter
// (base/2 extra, capped at 2s — decorrelating retry stampedes when a
// leader dies under several followers at once). A pull rejected with a
// not-leader hint re-resolves the new leader through the resolver
// instead of hammering the deposed node, and the loop idles while the
// trader itself leads, so it survives promotion and a later
// demote-rejoin without restarting. Close stops the loop.
type Follower struct {
	t  *Trader
	id string

	// resolve turns a leader ref into a pull source (SetResolver);
	// onResult observes every pull outcome (OnResult — the failure
	// monitor's suspicion counter). Both are set before Start.
	resolve  func(ctx context.Context, leaderRef string) (ReplSource, error)
	onResult func(err error)

	mu     sync.Mutex
	src    ReplSource
	srcRef string       // ref src was resolved from ("" for a fixed source)
	target atomic.Value // string: leader ref the loop should be pulling from

	rngMu sync.Mutex
	rng   *rand.Rand

	cancel context.CancelFunc
	done   chan struct{}
}

const (
	followerBaseBackoff = 50 * time.Millisecond
	followerMaxBackoff  = 2 * time.Second
	followerIdlePoll    = 250 * time.Millisecond
)

// NewFollower wires follower t to pull from src, identifying itself as
// id in acknowledgements. src may be nil when a resolver and a later
// Retarget will supply the source (a node booting as leader under
// auto-failover). Call Start to begin pulling.
func NewFollower(t *Trader, src ReplSource, id string) *Follower {
	return &Follower{t: t, src: src, id: id, rng: rand.New(rand.NewSource(seedFrom(id)))}
}

// SetResolver installs the dialer used to re-resolve the leader: when a
// pull is rejected with a not-leader hint, or the failover monitor
// retargets the loop after an election, the resolver turns the new
// leader's ref into a pull source. Set before Start.
func (f *Follower) SetResolver(fn func(ctx context.Context, leaderRef string) (ReplSource, error)) {
	f.resolve = fn
}

// OnResult installs a hook observing the outcome of every pull attempt
// (nil on success) — the failure monitor counts consecutive misses
// here. Set before Start.
func (f *Follower) OnResult(fn func(err error)) {
	f.onResult = fn
}

// Retarget points the pull loop at a new leader ref; the loop
// re-resolves it on its next iteration. Safe from any goroutine.
func (f *Follower) Retarget(leaderRef string) {
	f.target.Store(leaderRef)
}

// Start launches the pull loop.
func (f *Follower) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(ctx)
}

// Close stops the pull loop and waits for it to exit.
func (f *Follower) Close() {
	if f.cancel == nil {
		return
	}
	f.cancel()
	<-f.done
}

func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	backoff := followerBaseBackoff
	for ctx.Err() == nil {
		if !f.t.repl.follower.Load() {
			// Leading: idle until a demotion makes this node a follower
			// again (the loop is reused across promote/demote cycles).
			f.sleep(ctx, followerIdlePoll)
			continue
		}
		src := f.currentSource(ctx)
		if src == nil {
			f.sleep(ctx, backoff)
			continue
		}
		b, err := src.ReplPull(ctx, f.id, f.t.Epoch(), f.t.ReplApplied(), 512, 2*time.Second)
		if err == nil {
			_, err = f.t.ApplyBatch(b)
		}
		if ctx.Err() != nil {
			return
		}
		if f.onResult != nil {
			f.onResult(err)
		}
		if err != nil {
			f.t.log.Log(ctx, "repl_pull_error", "err", err.Error())
			if hint, ok := LeaderHintFromError(err); ok && hint != f.currentTarget() {
				// The rejection names the real leader: chase the hint
				// instead of hammering the deposed node.
				f.Retarget(hint)
				f.t.repl.leaderHint.Store(hint)
			}
			f.sleep(ctx, backoff)
			if backoff *= 2; backoff > followerMaxBackoff {
				backoff = followerMaxBackoff
			}
			continue
		}
		backoff = followerBaseBackoff
	}
}

// currentTarget reports the ref the loop was last pointed at.
func (f *Follower) currentTarget() string {
	s, _ := f.target.Load().(string)
	return s
}

// currentSource returns the pull source, re-resolving it first when a
// Retarget changed the desired leader. A failed resolve keeps the old
// source (pulling a dead ref errors harmlessly) and retries next round.
func (f *Follower) currentSource(ctx context.Context) ReplSource {
	want := f.currentTarget()
	f.mu.Lock()
	src, have := f.src, f.srcRef
	f.mu.Unlock()
	if want == "" || want == have || f.resolve == nil {
		return src
	}
	fresh, err := f.resolve(ctx, want)
	if err != nil {
		f.t.log.Log(ctx, "repl_retarget_error", "leader", want, "err", err.Error())
		return src
	}
	f.mu.Lock()
	f.src, f.srcRef = fresh, want
	f.mu.Unlock()
	f.t.log.Log(ctx, "repl_retarget", "leader", want)
	return fresh
}

// sleep waits for d plus up to d/2 of seeded jitter, returning early on
// cancellation.
func (f *Follower) sleep(ctx context.Context, d time.Duration) {
	f.rngMu.Lock()
	j := time.Duration(f.rng.Int63n(int64(d)/2 + 1))
	f.rngMu.Unlock()
	select {
	case <-time.After(d + j):
	case <-ctx.Done():
	}
}

// seedFrom derives a deterministic RNG seed from an ID, so jitter
// streams differ per node but reproduce across runs (the soak
// harness's determinism contract).
func seedFrom(id string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return int64(h.Sum64())
}
