package trader

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cosm/internal/wire"
)

// Errors reported by the link registry.
var (
	// ErrLinkExists is returned by AddLink when the name is taken.
	ErrLinkExists = errors.New("trader: link name already registered")
	// ErrLinkUnknown is returned by RemoveLink for an unregistered name.
	ErrLinkUnknown = errors.New("trader: unknown link")
	// ErrNoLinkDialer is returned by the wire-level LinkAdd when the
	// trader has no dialer to resolve peer references with.
	ErrNoLinkDialer = errors.New("trader: no link dialer configured")
)

// LinkInfo is the observable state of one federation link — what
// `cosmcli links` prints and the LinkList wire op returns.
type LinkInfo struct {
	// Name is the operator-chosen registry key of the link.
	Name string
	// PeerID is the peer's federation identity: the trader ID once
	// learned through gossip, otherwise the Federate's own identity
	// (a service reference for remote links).
	PeerID string
	// State is the link's breaker state: closed, open or half-open.
	State wire.BreakerState
	// LastSeen is the instant of the last successful interaction with
	// the peer (zero before the first one).
	LastSeen time.Time
	// Hops is the farthest advertised hop distance reachable through
	// this link, plus one: 1 when the peer advertises only its own
	// offers, 2 when it relays summaries of its own links, 0 before any
	// summary arrived.
	Hops int
	// SummaryGen is the generation of the peer's last offer summary
	// (0 before the first one).
	SummaryGen uint64
	// SummaryTypes counts the service types in the peer's last summary.
	SummaryTypes int
	// SummaryAge is how stale the peer's last summary is (negative
	// before the first one).
	SummaryAge time.Duration
}

// meshLink is one registered federation link: the peer plus the
// per-link state the mesh keeps — breaker health, last-seen, and the
// peer's latest offer summary.
type meshLink struct {
	name string
	peer Federate
	br   *wire.Breaker

	mu sync.Mutex
	// peerID is the peer's trader identity once a summary revealed it;
	// until then the Federate identity stands in.
	peerID    string
	lastSeen  time.Time
	summary   *OfferSummary
	summaryAt time.Time
}

// seen records a successful interaction with the peer.
func (l *meshLink) seen(now time.Time) {
	l.br.Success()
	l.mu.Lock()
	l.lastSeen = now
	l.mu.Unlock()
}

// fail records a failed interaction; it returns true when the failure
// tripped the link's breaker open.
func (l *meshLink) fail(now time.Time) bool {
	return l.br.Failure(now)
}

// id returns the best-known federation identity of the peer.
func (l *meshLink) id() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.peerID != "" {
		return l.peerID
	}
	return l.peer.FederationID()
}

// setSummary installs a fresher offer summary from the peer; stale
// generations are dropped. It returns whether the summary was taken.
func (l *meshLink) setSummary(s *OfferSummary, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.summary != nil && s.Gen < l.summary.Gen {
		return false
	}
	l.summary = s
	l.summaryAt = now
	if s.From != "" {
		l.peerID = s.From
	}
	return true
}

// summarySnapshot returns the stored summary and its arrival instant.
func (l *meshLink) summarySnapshot() (*OfferSummary, time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.summary, l.summaryAt
}

// info renders the link's observable state.
func (l *meshLink) info(now time.Time) LinkInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	info := LinkInfo{
		Name:     l.name,
		PeerID:   l.peerID,
		State:    l.br.State(),
		LastSeen: l.lastSeen,
	}
	if info.PeerID == "" {
		info.PeerID = l.peer.FederationID()
	}
	if l.summary != nil {
		info.SummaryGen = l.summary.Gen
		info.SummaryTypes = len(l.summary.Entries)
		info.SummaryAge = now.Sub(l.summaryAt)
		info.Hops = 1
		for _, e := range l.summary.Entries {
			if e.Hops+1 > info.Hops {
				info.Hops = e.Hops + 1
			}
		}
	} else {
		info.SummaryAge = -1
	}
	return info
}

// linkRegistry is the trader's named federation link table. All methods
// are safe for concurrent use — Link/Import races are the registry's
// normal operating mode.
type linkRegistry struct {
	policy wire.BreakerPolicy

	mu    sync.RWMutex
	links map[string]*meshLink
}

func newLinkRegistry(policy wire.BreakerPolicy) *linkRegistry {
	return &linkRegistry{policy: policy, links: map[string]*meshLink{}}
}

func (r *linkRegistry) add(name string, peer Federate) (*meshLink, error) {
	if name == "" {
		return nil, fmt.Errorf("trader: empty link name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.links[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrLinkExists, name)
	}
	l := &meshLink{name: name, peer: peer, br: wire.NewBreaker(r.policy)}
	r.links[name] = l
	return l, nil
}

func (r *linkRegistry) remove(name string) (*meshLink, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.links[name]
	if ok {
		delete(r.links, name)
	}
	return l, ok
}

// snapshot returns the current links in stable name order.
func (r *linkRegistry) snapshot() []*meshLink {
	r.mu.RLock()
	out := make([]*meshLink, 0, len(r.links))
	for _, l := range r.links {
		out = append(out, l)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// byPeer finds the link whose peer carries the given federation
// identity (learned trader ID or Federate identity).
func (r *linkRegistry) byPeer(id string) (*meshLink, bool) {
	for _, l := range r.snapshot() {
		if l.id() == id || l.peer.FederationID() == id {
			return l, true
		}
	}
	return nil, false
}

func (r *linkRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.links)
}

// ---------------------------------------------------------------------
// Trader link-management surface
// ---------------------------------------------------------------------

// AddLink registers a named federation link consulted by imports with
// HopLimit > 0. The name is the operator's handle for the link
// (Remove, listings); it must be unique at this trader.
func (t *Trader) AddLink(name string, peer Federate) error {
	_, err := t.mesh.add(name, peer)
	if err != nil {
		return err
	}
	t.event("link_add", "link", name, "peer", peer.FederationID())
	t.log.Log(nil, "link_add", "link", name, "peer", peer.FederationID())
	return nil
}

// RemoveLink removes a federation link by name.
func (t *Trader) RemoveLink(name string) error {
	if _, ok := t.mesh.remove(name); !ok {
		return fmt.Errorf("%w: %q", ErrLinkUnknown, name)
	}
	t.event("link_remove", "link", name)
	t.log.Log(nil, "link_remove", "link", name)
	return nil
}

// Links returns the observable state of every federation link, sorted
// by name.
func (t *Trader) Links() []LinkInfo {
	now := t.now()
	links := t.mesh.snapshot()
	out := make([]LinkInfo, len(links))
	for i, l := range links {
		out[i] = l.info(now)
	}
	return out
}

// LinkCount returns the number of registered federation links.
func (t *Trader) LinkCount() int { return t.mesh.count() }

// SetLinkDialer installs the resolver the wire-level LinkAdd operation
// uses to turn a peer service reference into a Federate (traderd wires
// this to DialTrader over the node's pool). Set before serving.
func (t *Trader) SetLinkDialer(dial LinkDialer) { t.linkDialer = dial }

// FedStats is a running tally of the trader's federated scatter-gather
// behaviour, for tests and benchmarks that assert routing decisions.
type FedStats struct {
	// Imports counts federated fan-outs (imports with HopLimit > 0 and
	// at least one eligible link).
	Imports uint64
	// PeersAsked counts peer queries issued, hedges included.
	PeersAsked uint64
	// Routed counts fan-outs narrowed by offer summaries; Full counts
	// fan-outs that consulted every eligible link for lack of them.
	Routed uint64
	Full   uint64
	// Hedged counts backup queries launched after the hedge delay.
	Hedged uint64
}

// FedStats returns the current federation scatter tallies.
func (t *Trader) FedStats() FedStats {
	return FedStats{
		Imports:    t.fedImports.Load(),
		PeersAsked: t.fedPeers.Load(),
		Routed:     t.fedRouted.Load(),
		Full:       t.fedFull.Load(),
		Hedged:     t.fedHedged.Load(),
	}
}

// ---------------------------------------------------------------------
// Budgeted scatter-gather
// ---------------------------------------------------------------------

// scatterPlan is one federated fan-out: the links to query now and the
// spares a hedge may promote.
type scatterPlan struct {
	targets []*meshLink
	spares  []*meshLink
	// routed is true when offer summaries narrowed the target set.
	routed bool
}

// planScatter picks the links a federated import should consult.
// Links already visited by the request or failing fast (breaker open)
// are skipped. When fresh offer summaries are available the plan keeps
// only peers that plausibly hold the requested type — an entry whose
// hop distance fits inside the request's remaining hop budget — plus
// peers with no summary at all (unknown coverage must stay reachable).
// MaxPeers then caps the consulted set, preferring summary-positive
// peers holding the most offers at the fewest hops; the overflow
// becomes hedge spares.
func (t *Trader) planScatter(req ImportRequest, visited []string) scatterPlan {
	now := t.now()
	links := t.mesh.snapshot()

	skip := func(l *meshLink) bool {
		lid, fid := l.id(), l.peer.FederationID()
		for _, v := range visited {
			if v == lid || v == fid {
				return true
			}
		}
		return l.br.Allow(now) != nil
	}

	type scored struct {
		l     *meshLink
		hops  int // best hop distance for the requested type; -1 unknown
		count int
	}
	var routed, unknown []scored
	anySummary := false
	for _, l := range links {
		if skip(l) {
			continue
		}
		sum, at := l.summarySnapshot()
		if sum == nil || (t.summaryTTL > 0 && now.Sub(at) > t.summaryTTL) {
			unknown = append(unknown, scored{l: l, hops: -1})
			continue
		}
		anySummary = true
		bestHops, count := -1, 0
		for _, e := range sum.Entries {
			if e.Hops > req.HopLimit-1 {
				continue // out of the request's remaining hop budget
			}
			// Coverage is decided by the same typemgr closure the local
			// matching pipeline resolves against, so summary routing and
			// matching can never disagree about the hierarchy.
			if !t.types.Covers(req.Type, e.Type) {
				continue
			}
			count += e.Count
			if bestHops < 0 || e.Hops < bestHops {
				bestHops = e.Hops
			}
		}
		if bestHops >= 0 {
			routed = append(routed, scored{l: l, hops: bestHops, count: count})
		}
		// A fresh summary that does not cover the type rules the peer
		// out: that is the whole point of advertising summaries.
	}

	sort.SliceStable(routed, func(i, j int) bool {
		if routed[i].hops != routed[j].hops {
			return routed[i].hops < routed[j].hops
		}
		return routed[i].count > routed[j].count
	})

	all := append(routed, unknown...)
	plan := scatterPlan{routed: anySummary}
	for _, s := range all {
		plan.targets = append(plan.targets, s.l)
	}
	if req.MaxPeers > 0 && len(plan.targets) > req.MaxPeers {
		plan.spares = plan.targets[req.MaxPeers:]
		plan.targets = plan.targets[:req.MaxPeers]
	}
	return plan
}

// hopBudget derives the deadline budget for one more federation hop:
// the caller keeps a margin of the remaining budget for its own gather,
// ordering and marshalling work, and the sub-queries get the rest. The
// margin shrinks with the remaining budget but stays within
// [1ms, 250ms], so a deep hop chain degrades to progressively smaller
// budgets instead of every hop burning the full deadline.
func hopBudget(ctx context.Context, hopsLeft int) (sub context.Context, cancel context.CancelFunc, cutoff time.Time, ok bool) {
	deadline, has := ctx.Deadline()
	if !has {
		return ctx, func() {}, time.Time{}, false
	}
	rem := time.Until(deadline)
	if hopsLeft < 1 {
		hopsLeft = 1
	}
	margin := rem / time.Duration(hopsLeft+1)
	if margin < time.Millisecond {
		margin = time.Millisecond
	}
	if margin > 250*time.Millisecond {
		margin = 250 * time.Millisecond
	}
	cutoff = deadline.Add(-margin)
	sub, cancel = context.WithDeadline(ctx, cutoff)
	return sub, cancel, cutoff, true
}

// federatedMatches consults partner traders, decrementing the hop limit
// and carrying the visited set for loop protection. The fan-out is
// planned from gossiped offer summaries (see planScatter) so an import
// is routed only to peers that plausibly hold the requested type, and
// budgeted: sub-queries run under a split of the caller's deadline,
// collection stops at the local margin, and when the request carries a
// hedge delay one backup peer is queried as soon as the primaries run
// late. Peer failures are tolerated — federation widens the search
// best-effort — and feed the per-link breakers, so a dead peer fails
// fast until its cooldown probe. Results are deduplicated by offer ID:
// in a cyclic mesh the same origin offer can arrive over several paths.
// Matches relayed ungraded by pre-grading peers are re-graded against
// this trader's hierarchy view and floored at the request's MinGrade.
func (t *Trader) federatedMatches(ctx context.Context, req ImportRequest) []Match {
	visited := append(append([]string(nil), req.visited...), t.id)
	plan := t.planScatter(req, visited)
	if len(plan.targets) == 0 {
		return nil
	}

	t.fedImports.Add(1)
	if plan.routed {
		t.fedRouted.Add(1)
		t.metrics.fedScatter.With("routed").Inc()
	} else {
		t.fedFull.Add(1)
		t.metrics.fedScatter.With("full").Inc()
	}

	sub := req
	sub.HopLimit--
	sub.Policy = "" // ordering happens once, at the originating trader
	sub.Max = 0
	sub.visited = visited

	subCtx, cancel, cutoffAt, budgeted := hopBudget(ctx, req.HopLimit)
	defer cancel()

	type linkResult struct {
		link    *meshLink
		matches []Match
		err     error
	}
	// Buffered to the worst-case query count: a link that answers after
	// the cutoff deposits its result and exits instead of leaking a
	// goroutine.
	results := make(chan linkResult, len(plan.targets)+len(plan.spares)+1)
	launch := func(l *meshLink) {
		t.fedPeers.Add(1)
		go func() {
			ms, err := l.peer.FederatedImport(subCtx, sub)
			results <- linkResult{link: l, matches: ms, err: err}
		}()
	}
	pending := 0
	for _, l := range plan.targets {
		launch(l)
		pending++
	}
	asked := pending

	// The local gather cutoff mirrors the sub-query deadline: abandon
	// slow links with enough headroom left to assemble the reply.
	var cutoff <-chan time.Time
	if budgeted {
		timer := time.NewTimer(time.Until(cutoffAt))
		defer timer.Stop()
		cutoff = timer.C
	}

	// Hedge: when the primaries run late, query one backup peer (the
	// best spare, or a duplicate of a still-pending primary — offer-ID
	// dedupe makes duplicates safe).
	var hedge <-chan time.Time
	hedged := false
	if req.Hedge > 0 {
		ht := time.NewTimer(req.Hedge)
		defer ht.Stop()
		hedge = ht.C
	}

	pendingLinks := make(map[*meshLink]int, pending)
	for _, l := range plan.targets {
		pendingLinks[l]++
	}

	minGrade := effectiveMinGrade(req.MinGrade)
	var out []Match
	seen := make(map[string]bool)
	now := func() time.Time { return t.now() }
	for pending > 0 {
		select {
		case r := <-results:
			pending--
			if pendingLinks[r.link]--; pendingLinks[r.link] <= 0 {
				delete(pendingLinks, r.link)
			}
			if r.err != nil {
				if r.link.fail(now()) {
					t.event("link_down", "link", r.link.name, "err", r.err.Error())
				}
				continue
			}
			r.link.seen(now())
			for _, m := range t.regradeRemote(req.Type, minGrade, r.matches) {
				if seen[m.ID] {
					continue // same origin offer over a second mesh path
				}
				seen[m.ID] = true
				out = append(out, m)
			}
		case <-hedge:
			hedge = nil
			if hedged || pending == 0 {
				continue
			}
			var backup *meshLink
			if len(plan.spares) > 0 {
				backup = plan.spares[0]
			} else {
				for l := range pendingLinks {
					backup = l
					break
				}
			}
			if backup == nil {
				continue
			}
			hedged = true
			t.fedHedged.Add(1)
			t.metrics.fedHedges.Inc()
			launch(backup)
			pending++
			pendingLinks[backup]++
			asked++
		case <-cutoff:
			t.metrics.fedTimeouts.Inc()
			t.metrics.fedConsulted.Observe(float64(asked))
			return out
		case <-ctx.Done():
			t.metrics.fedConsulted.Observe(float64(asked))
			return out
		}
	}
	t.metrics.fedConsulted.Observe(float64(asked))
	return out
}
