package trader

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/typemgr"
)

// logBuffer collects structured log lines from every component of the
// test market; servers write from their own goroutines.
type logBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func (l *logBuffer) waitFor(want string) bool {
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); time.Sleep(2 * time.Millisecond) {
		if strings.Contains(l.String(), want) {
			return true
		}
	}
	return false
}

// startTracedTraderNode is startTraderNode with the structured logger
// wired through both the trader and its node's wire server.
func startTracedTraderNode(t *testing.T, loopName, traderID string, l *obs.Logger) (*cosm.Node, *Trader, ref.ServiceRef) {
	t.Helper()
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := New(traderID, repo, WithLogger(l.With("trader-"+traderID)))
	svc, err := NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(cosm.WithNodeLogger(l.With("wire-" + traderID)))
	if err := node.Host(ServiceName, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, tr, node.MustRefFor(ServiceName)
}

// One trace ID, minted at the importer, is visible in the logs of every
// hop of a federated import: the local trader, the federation partner,
// and the wire access logs in between (the acceptance walk of the
// observability tentpole).
func TestFederatedImportSharesOneTrace(t *testing.T) {
	var buf logBuffer
	logger := obs.NewLogger(&buf, "test")

	nodeB, _, refB := startTracedTraderNode(t, "trd-trace-b", "B", logger)
	nodeA, trA, refA := startTracedTraderNode(t, "trd-trace-a", "A", logger)

	setup := context.Background()
	remoteB, err := DialTrader(setup, nodeA.Pool(), refB)
	if err != nil {
		t.Fatal(err)
	}
	mustLink(t, trA, "b", remoteB)
	if _, err := remoteB.Export(setup, "CarRentalService", carRef(3), carProps("FIAT_Uno", 80, "DEM")); err != nil {
		t.Fatal(err)
	}

	// The importer mints the root trace once; everything below only
	// propagates it.
	ctx, root := obs.EnsureTrace(context.Background())
	tc, err := DialTrader(ctx, nodeB.Pool(), refA)
	if err != nil {
		t.Fatal(err)
	}
	offers, err := tc.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Fatalf("federated offers = %+v", offers)
	}

	// Both traders logged their import under the importer's trace ID.
	out := buf.String()
	var importLines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "event=import") && strings.Contains(line, "trace="+root.ID) {
			importLines = append(importLines, line)
		}
	}
	if len(importLines) != 2 {
		t.Fatalf("import lines under trace %s = %d, want 2:\n%s", root.ID, len(importLines), out)
	}
	for _, comp := range []string{"component=trader-A", "component=trader-B"} {
		found := false
		for _, line := range importLines {
			if strings.Contains(line, comp) {
				found = true
			}
		}
		if !found {
			t.Errorf("no import line from %s under the shared trace:\n%s", comp, out)
		}
	}
	// Spans differ per hop — a span tree, not one flat span.
	if spanOf(importLines[0]) == spanOf(importLines[1]) {
		t.Fatalf("both hops share one span:\n%s\n%s", importLines[0], importLines[1])
	}

	// The wire access logs carry the same trace (written asynchronously
	// after the response, hence the poll).
	for _, want := range []string{"component=wire-A", "component=wire-B"} {
		if !buf.waitFor(want + " event=rpc trace=" + root.ID) {
			t.Errorf("no access log line %q under trace %s:\n%s", want, root.ID, buf.String())
		}
	}
}

// spanOf extracts the span=... token of a structured log line.
func spanOf(line string) string {
	for _, f := range strings.Fields(line) {
		if rest, ok := strings.CutPrefix(f, "span="); ok {
			return rest
		}
	}
	return ""
}

// startRecordedTraderNode is startTracedTraderNode with a per-node
// flight recorder wired through both wire directions.
func startRecordedTraderNode(t *testing.T, loopName, traderID string, rec *obs.SpanRecorder) (*cosm.Node, *Trader, ref.ServiceRef) {
	t.Helper()
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := New(traderID, repo, WithImportCacheTTL(0))
	svc, err := NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(
		cosm.WithNodeLog(func(string, ...any) {}),
		cosm.WithNodeRecorder(rec),
	)
	if err := node.Host(ServiceName, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, tr, node.MustRefFor(ServiceName)
}

// TestFederatedFanOutBuildsOneSpanTree drives concurrent federated
// imports across a three-trader chain (importer → A → B → C), each
// node recording into its own flight recorder — as separate processes
// would — and asserts every trace's merged spans reassemble into ONE
// connected tree covering all three wire hops: the cross-process walk
// `cosmcli trace` performs against live daemons.
func TestFederatedFanOutBuildsOneSpanTree(t *testing.T) {
	recI := obs.NewSpanRecorder(256) // the importer's own client spans
	recA := obs.NewSpanRecorder(256)
	recB := obs.NewSpanRecorder(256)
	recC := obs.NewSpanRecorder(256)

	_, _, refC := startRecordedTraderNode(t, "trd-fan-c", "C", recC)
	nodeB, trB, refB := startRecordedTraderNode(t, "trd-fan-b", "B", recB)
	nodeA, trA, refA := startRecordedTraderNode(t, "trd-fan-a", "A", recA)

	setup := context.Background()
	remoteB, err := DialTrader(setup, nodeA.Pool(), refB)
	if err != nil {
		t.Fatal(err)
	}
	mustLink(t, trA, "b", remoteB)
	remoteC, err := DialTrader(setup, nodeB.Pool(), refC)
	if err != nil {
		t.Fatal(err)
	}
	mustLink(t, trB, "c", remoteC)
	// The only matching offer lives at the far end of the chain, so
	// every import must traverse all three hops.
	if _, err := remoteC.Export(setup, "CarRentalService", carRef(9), carProps("FIAT_Uno", 80, "DEM")); err != nil {
		t.Fatal(err)
	}

	importerPool := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}), cosm.WithNodeRecorder(recI)).Pool()
	// Dial outside any trace so the describe handshake stays span-less;
	// only the Import fan-out below is traced.
	tc, err := DialTrader(setup, importerPool, refA)
	if err != nil {
		t.Fatal(err)
	}

	const importers = 4
	traces := make([]obs.Trace, importers)
	errs := make(chan error, importers)
	for i := 0; i < importers; i++ {
		ctx, root := obs.EnsureTrace(context.Background())
		traces[i] = root
		go func() {
			offers, err := tc.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 2})
			if err == nil && len(offers) != 1 {
				err = errors.New("federated import returned no offer")
			}
			errs <- err
		}()
	}
	for i := 0; i < importers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Merge each recorder's view — exactly what cosmcli trace does with
	// /debug/traces?id= responses from separate daemons.
	for _, root := range traces {
		var spans []obs.Span
		for _, rec := range []*obs.SpanRecorder{recI, recA, recB, recC} {
			// Server spans are recorded just after the response leaves;
			// poll briefly for the full six-span chain.
			spans = append(spans, rec.Trace(root.ID)...)
		}
		for deadline := time.Now().Add(2 * time.Second); len(spans) < 6 && time.Now().Before(deadline); {
			time.Sleep(5 * time.Millisecond)
			spans = spans[:0]
			for _, rec := range []*obs.SpanRecorder{recI, recA, recB, recC} {
				spans = append(spans, rec.Trace(root.ID)...)
			}
		}
		// client@importer, server@A, client@A, server@B, client@B, server@C.
		if len(spans) != 6 {
			t.Fatalf("trace %s: %d spans, want 6: %+v", root.ID, len(spans), spans)
		}
		roots := obs.BuildSpanTree(spans)
		if len(roots) != 1 {
			t.Fatalf("trace %s: %d roots, want one connected tree: %+v", root.ID, len(roots), roots)
		}
		depth, node := 0, roots[0]
		for node != nil {
			depth++
			if len(node.Children) > 1 {
				t.Fatalf("trace %s: unexpected branch: %+v", root.ID, node)
			}
			if len(node.Children) == 0 {
				node = nil
			} else {
				node = node.Children[0]
			}
		}
		if depth != 6 {
			t.Fatalf("trace %s: chain depth = %d, want 6", root.ID, depth)
		}
	}
}
