package trader

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cosm/internal/sidl"
)

// ErrPolicy reports an unknown or malformed selection policy.
var ErrPolicy = errors.New("trader: bad selection policy")

// Policy orders a matching offer set so that "best possible" offers
// (section 2.1) come first. Supported forms:
//
//	"first"       — stable order (by offer id); the default
//	"random"      — a uniformly random permutation (load spreading)
//	"min:<Prop>"  — ascending by a numeric property, e.g. "min:ChargePerDay"
//	"max:<Prop>"  — descending by a numeric property
//	"score"       — descending by semantic match score (exact type first,
//	                then nearer subtypes, then partial-attribute matches),
//	                grade and offer id breaking ties
//
// Offers lacking the ranked property sort last under min/max.
type Policy struct {
	src  string
	kind policyKind
	prop string
}

type policyKind uint8

const (
	policyFirst policyKind = iota + 1
	policyRandom
	policyMin
	policyMax
	policyScore
)

// ParsePolicy parses a policy string; "" means "first".
func ParsePolicy(src string) (Policy, error) {
	s := strings.TrimSpace(src)
	switch {
	case s == "" || s == "first":
		return Policy{src: s, kind: policyFirst}, nil
	case s == "random":
		return Policy{src: s, kind: policyRandom}, nil
	case s == "score":
		return Policy{src: s, kind: policyScore}, nil
	case strings.HasPrefix(s, "min:"):
		return parseRankPolicy(s, policyMin)
	case strings.HasPrefix(s, "max:"):
		return parseRankPolicy(s, policyMax)
	default:
		return Policy{}, fmt.Errorf("%w: %q", ErrPolicy, src)
	}
}

func parseRankPolicy(s string, kind policyKind) (Policy, error) {
	prop := strings.TrimSpace(s[4:])
	if prop == "" {
		return Policy{}, fmt.Errorf("%w: %q lacks a property name", ErrPolicy, s)
	}
	return Policy{src: s, kind: kind, prop: prop}, nil
}

// String returns the policy source text.
func (p Policy) String() string { return p.src }

// cacheable reports whether the policy orders deterministically, so an
// import result under it may be served from the result cache. "random"
// must re-shuffle on every call.
func (p Policy) cacheable() bool { return p.kind != policyRandom }

// apply orders graded matches in place according to the policy. rng
// drives the "random" policy and must be non-nil for it.
func (p Policy) apply(ms []Match, rng *rand.Rand) {
	switch p.kind {
	case policyRandom:
		rng.Shuffle(len(ms), func(i, j int) {
			ms[i], ms[j] = ms[j], ms[i]
		})
	case policyMin, policyMax:
		sort.SliceStable(ms, func(i, j int) bool {
			vi, oki := numericProp(ms[i].Offer, p.prop)
			vj, okj := numericProp(ms[j].Offer, p.prop)
			switch {
			case oki && okj:
				if p.kind == policyMin {
					return vi < vj
				}
				return vi > vj
			case oki:
				return true // ranked offers before unranked ones
			default:
				return false
			}
		})
	case policyScore:
		sort.SliceStable(ms, func(i, j int) bool {
			if ms[i].Score != ms[j].Score {
				return ms[i].Score > ms[j].Score
			}
			if ms[i].Grade != ms[j].Grade {
				return ms[i].Grade > ms[j].Grade
			}
			return ms[i].ID < ms[j].ID
		})
	default:
		sort.SliceStable(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	}
}

func numericProp(o *Offer, prop string) (float64, bool) {
	l, ok := o.Props[prop]
	if !ok {
		return 0, false
	}
	switch l.Kind {
	case sidl.LitInt:
		return float64(l.Int), true
	case sidl.LitFloat:
		return l.Float, true
	}
	return 0, false
}
