package trader

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cosm/internal/wire"
)

func TestLinkRegistryAddRemoveList(t *testing.T) {
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	c := New("C", newCarRepo(t))

	if err := a.AddLink("", b); err == nil {
		t.Fatal("AddLink with empty name must fail")
	}
	mustLink(t, a, "b", b)
	if err := a.AddLink("b", c); !errors.Is(err, ErrLinkExists) {
		t.Fatalf("duplicate AddLink err = %v, want ErrLinkExists", err)
	}
	mustLink(t, a, "c", c)

	links := a.Links()
	if len(links) != 2 || links[0].Name != "b" || links[1].Name != "c" {
		t.Fatalf("Links() = %+v, want [b c]", links)
	}
	if links[0].PeerID != "B" || links[1].PeerID != "C" {
		t.Fatalf("peer IDs = %q, %q", links[0].PeerID, links[1].PeerID)
	}
	if links[0].State != "closed" {
		t.Fatalf("fresh link state = %q, want closed", links[0].State)
	}
	if links[0].SummaryAge >= 0 {
		t.Fatalf("fresh link summary age = %v, want negative (none)", links[0].SummaryAge)
	}

	if err := a.RemoveLink("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveLink("b"); !errors.Is(err, ErrLinkUnknown) {
		t.Fatalf("double RemoveLink err = %v, want ErrLinkUnknown", err)
	}
	if n := a.LinkCount(); n != 1 {
		t.Fatalf("LinkCount = %d, want 1", n)
	}
}

// The registry's normal operating mode is concurrent mutation and
// import fan-out; this test exists to fail under -race.
func TestLinkRegistryConcurrentAddRemoveImport(t *testing.T) {
	ctx := context.Background()
	a := New("A", newCarRepo(t))
	b := New("B", newCarRepo(t))
	if _, err := b.Export("CarRentalService", carRef(1), carProps("AUDI", 50, "USD")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				name := fmt.Sprintf("l-%d-%d", g, i)
				if err := a.AddLink(name, b); err != nil {
					t.Errorf("AddLink(%q): %v", name, err)
				}
				if i%3 == 0 {
					_ = a.RemoveLink(name)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1}); err != nil {
					t.Errorf("Import: %v", err)
				}
				a.Links()
			}
		}()
	}
	wg.Wait()
}

// A 3-trader directed cycle A -> B -> C -> A must terminate and return
// each reachable offer exactly once, whether the hop limit saturates
// the cycle exactly or vastly exceeds it.
func TestMeshCycleExactlyOnce(t *testing.T) {
	ctx := context.Background()
	for _, hops := range []int{2, 10} {
		t.Run(fmt.Sprintf("hoplimit-%d", hops), func(t *testing.T) {
			a := New("A", newCarRepo(t))
			b := New("B", newCarRepo(t))
			c := New("C", newCarRepo(t))
			mustLink(t, a, "b", b)
			mustLink(t, b, "c", c)
			mustLink(t, c, "a", a)
			for i, tr := range []*Trader{a, b, c} {
				if _, err := tr.Export("CarRentalService", carRef(i+1), carProps("AUDI", 50, "USD")); err != nil {
					t.Fatal(err)
				}
			}

			// White-box through federatedMatches so the final
			// by-reference dedupe cannot mask a double delivery.
			got := a.federatedMatches(ctx, ImportRequest{Type: "CarRentalService", HopLimit: hops})
			byID := map[string]int{}
			for _, o := range got {
				byID[o.ID]++
			}
			if len(byID) != 2 {
				t.Fatalf("federated offers = %v, want exactly B's and C's", byID)
			}
			for id, n := range byID {
				if n != 1 {
					t.Fatalf("offer %s delivered %d times, want exactly once", id, n)
				}
			}
			// The cycle must not re-import A's own offer via C.
			offers, err := a.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: hops})
			if err != nil || len(offers) != 3 {
				t.Fatalf("full import = %d offers, %v; want 3", len(offers), err)
			}
		})
	}
}

// Summary-routed imports consult only the peers whose gossiped summary
// covers the requested type: a 10-trader hub-and-spoke mesh where one
// spoke holds the offers must query 1 peer, not 9. (The CI mesh smoke
// step runs this test.)
func TestMeshSummaryRoutedImportConsultsFewPeers(t *testing.T) {
	ctx := context.Background()
	hub := New("hub", newCarRepo(t))
	for i := 0; i < 9; i++ {
		peer := New(fmt.Sprintf("peer-%d", i), newCarRepo(t))
		if i == 4 {
			if _, err := peer.Export("CarRentalService", carRef(40), carProps("VW_Golf", 61, "DEM")); err != nil {
				t.Fatal(err)
			}
		}
		mustLink(t, hub, fmt.Sprintf("peer-%d", i), peer)
	}

	// Without summaries every link has unknown coverage: full fan-out.
	before := hub.FedStats()
	offers, err := hub.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil || len(offers) != 1 {
		t.Fatalf("pre-gossip import = %+v, %v", offers, err)
	}
	after := hub.FedStats()
	if asked := after.PeersAsked - before.PeersAsked; asked != 9 {
		t.Fatalf("pre-gossip peers asked = %d, want 9 (full fan-out)", asked)
	}
	if after.Full != before.Full+1 {
		t.Fatalf("full fan-outs = %d, want %d", after.Full, before.Full+1)
	}

	// One gossip round teaches the hub which peer holds the type.
	if pushed, failed := hub.GossipRound(ctx, time.Second); pushed != 9 || failed != 0 {
		t.Fatalf("gossip round pushed %d, failed %d", pushed, failed)
	}
	before = hub.FedStats()
	offers, err = hub.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil || len(offers) != 1 {
		t.Fatalf("routed import = %+v, %v", offers, err)
	}
	after = hub.FedStats()
	if asked := after.PeersAsked - before.PeersAsked; asked != 1 {
		t.Fatalf("routed peers asked = %d, want 1", asked)
	}
	if after.Routed != before.Routed+1 {
		t.Fatalf("routed fan-outs = %d, want %d", after.Routed, before.Routed+1)
	}
}

// MaxPeers bounds the fan-out even without summaries; link name order
// makes the choice deterministic.
func TestMeshMaxPeersBoundsFanOut(t *testing.T) {
	ctx := context.Background()
	hub := New("hub", newCarRepo(t))
	for i := 1; i <= 3; i++ {
		peer := New(fmt.Sprintf("P%d", i), newCarRepo(t))
		if _, err := peer.Export("CarRentalService", carRef(i), carProps("AUDI", float64(50+i), "USD")); err != nil {
			t.Fatal(err)
		}
		mustLink(t, hub, fmt.Sprintf("p%d", i), peer)
	}

	before := hub.FedStats()
	offers, err := hub.Import(ctx, NewImport("CarRentalService", Hops(1), MaxPeers(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("offers = %d, want 2 (two peers consulted)", len(offers))
	}
	if asked := hub.FedStats().PeersAsked - before.PeersAsked; asked != 2 {
		t.Fatalf("peers asked = %d, want 2", asked)
	}
}

// Hedge promotes the spare left by MaxPeers when the primary runs late.
func TestMeshHedgePromotesSpare(t *testing.T) {
	hub := New("hub", newCarRepo(t))
	live := New("LIVE", newCarRepo(t))
	if _, err := live.Export("CarRentalService", carRef(9), carProps("VW_Golf", 70, "DEM")); err != nil {
		t.Fatal(err)
	}
	// "a-dead" sorts before "b-live", so MaxPeers(1) picks the black
	// hole as the primary and leaves the live peer as the hedge spare.
	mustLink(t, hub, "a-dead", &blackholeFederate{id: "DEAD"})
	mustLink(t, hub, "b-live", live)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	before := hub.FedStats()
	offers, err := hub.Import(ctx, NewImport("CarRentalService",
		Hops(1), MaxPeers(1), Hedge(20*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Ref != carRef(9) {
		t.Fatalf("offers = %+v, want the hedged live peer's offer", offers)
	}
	after := hub.FedStats()
	if after.Hedged != before.Hedged+1 {
		t.Fatalf("hedged = %d, want %d", after.Hedged, before.Hedged+1)
	}
	if asked := after.PeersAsked - before.PeersAsked; asked != 2 {
		t.Fatalf("peers asked = %d, want 2 (primary + hedge)", asked)
	}
}

// Breaker-open links are skipped by the scatter plan until cooldown.
func TestMeshBreakerSkipsDeadLink(t *testing.T) {
	hub := New("hub", newCarRepo(t),
		WithLinkPolicy(wire.BreakerPolicy{Threshold: 3, Cooldown: time.Minute}))
	live := New("LIVE", newCarRepo(t))
	if _, err := live.Export("CarRentalService", carRef(5), carProps("AUDI", 44, "USD")); err != nil {
		t.Fatal(err)
	}
	mustLink(t, hub, "dead", &failingFederate{id: "DEAD"})
	mustLink(t, hub, "live", live)

	ctx := context.Background()
	// Drive the dead link's breaker open, then confirm the plan stops
	// consulting it.
	for i := 0; i < 4; i++ {
		if _, err := hub.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var deadState string
	for _, li := range hub.Links() {
		if li.Name == "dead" {
			deadState = string(li.State)
		}
	}
	if deadState != "open" {
		t.Fatalf("dead link state = %q, want open", deadState)
	}
	before := hub.FedStats()
	offers, err := hub.Import(ctx, ImportRequest{Type: "CarRentalService", HopLimit: 1})
	if err != nil || len(offers) != 1 {
		t.Fatalf("import = %+v, %v", offers, err)
	}
	if asked := hub.FedStats().PeersAsked - before.PeersAsked; asked != 1 {
		t.Fatalf("peers asked = %d, want 1 (open breaker skipped)", asked)
	}
}

// failingFederate answers every query with an error immediately.
type failingFederate struct{ id string }

func (f *failingFederate) FederationID() string { return f.id }

func (f *failingFederate) FederatedImport(context.Context, ImportRequest) ([]Match, error) {
	return nil, errors.New("boom")
}

func TestHopBudgetSplitsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	sub, subCancel, cutoff, ok := hopBudget(ctx, 2)
	defer subCancel()
	if !ok {
		t.Fatal("budgeted context must report ok")
	}
	parent, _ := ctx.Deadline()
	child, _ := sub.Deadline()
	if !child.Before(parent) {
		t.Fatalf("child deadline %v must precede parent %v", child, parent)
	}
	if !child.Equal(cutoff) {
		t.Fatalf("cutoff %v != child deadline %v", cutoff, child)
	}

	// No deadline: pass-through, unbudgeted.
	sub2, c2, _, ok2 := hopBudget(context.Background(), 1)
	defer c2()
	if ok2 {
		t.Fatal("deadline-free context must not be budgeted")
	}
	if _, has := sub2.Deadline(); has {
		t.Fatal("pass-through context must stay deadline-free")
	}
}
