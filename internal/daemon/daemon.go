// Package daemon holds the overload-protection plumbing shared by the
// COSM daemons (traderd, browserd, namesrvd, carrentald): the admission
// control flags and the SIGTERM drain sequence. Every daemon exposes
// the same knobs —
//
//	-max-inflight   bound on concurrently served requests
//	-max-queue      admission queue beyond that bound
//	-queue-wait     cap on one request's queueing time
//	-drain-timeout  grace period for in-flight work on shutdown
//
// — so operators tune one vocabulary across the whole market.
package daemon

import (
	"context"
	"flag"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/wire"
)

// Flags are the shared daemon tuning knobs, registered by Register.
type Flags struct {
	MaxInFlight  int
	MaxQueue     int
	QueueWait    time.Duration
	DrainTimeout time.Duration
}

// Register installs the shared flags on fs with the common defaults
// (admission control off, 10s drain).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.MaxInFlight, "max-inflight", 0, "max concurrently served requests (0 = unlimited)")
	fs.IntVar(&f.MaxQueue, "max-queue", 0, "admission queue length beyond max-inflight")
	fs.DurationVar(&f.QueueWait, "queue-wait", 100*time.Millisecond, "max time a request may queue for admission")
	fs.DurationVar(&f.DrainTimeout, "drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	return f
}

// NodeOptions converts the flags into cosm.NewNode options.
func (f *Flags) NodeOptions() []cosm.NodeOption {
	return []cosm.NodeOption{cosm.WithNodeAdmission(wire.AdmissionPolicy{
		MaxInFlight: f.MaxInFlight,
		MaxQueue:    f.MaxQueue,
		QueueWait:   f.QueueWait,
	})}
}

// Drain performs the graceful-shutdown sequence: deregister first (so
// clients fail over to live providers instead of a draining endpoint),
// then drain the node under the configured timeout. deregister may be
// nil; its error is reported but does not abort the drain — a dead
// registry must not prevent local cleanup.
func (f *Flags) Drain(node *cosm.Node, deregister func(ctx context.Context) error, logf func(format string, args ...any)) error {
	ctx, cancel := context.WithTimeout(context.Background(), f.DrainTimeout)
	defer cancel()
	if deregister != nil {
		if err := deregister(ctx); err != nil {
			logf("deregistration: %v", err)
		}
	}
	return node.Shutdown(ctx)
}
