// Package daemon holds the overload-protection and observability
// plumbing shared by the COSM daemons (traderd, browserd, namesrvd,
// carrentald): the admission control flags, the metrics endpoint, and
// the SIGTERM drain sequence. Every daemon exposes the same knobs —
//
//	-max-inflight   bound on concurrently served requests
//	-max-queue      admission queue beyond that bound
//	-queue-wait     cap on one request's queueing time
//	-drain-timeout  grace period for in-flight work on shutdown
//	-metrics-addr   HTTP introspection endpoint (/metrics, /debug/vars,
//	                /healthz); empty disables it
//	-data-dir       write-ahead journal directory; empty keeps the
//	                daemon's state in memory only
//	-fsync          journal fsync policy: always, interval or never
//	-compact-every  journal records between snapshot compactions
//
// — so operators tune one vocabulary across the whole market.
package daemon

import (
	"context"
	"flag"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/journal"
	"cosm/internal/obs"
	"cosm/internal/wire"
)

// Flags are the shared daemon tuning knobs, registered by Register.
type Flags struct {
	MaxInFlight  int
	MaxQueue     int
	QueueWait    time.Duration
	DrainTimeout time.Duration
	MetricsAddr  string

	DataDir      string
	FsyncMode    string
	CompactEvery int

	// Registry collects the daemon's metrics; NodeOptions instruments
	// the node against it and Introspection serves it. Populated by
	// Register.
	Registry *obs.Registry
}

// Register installs the shared flags on fs with the common defaults
// (admission control off, 10s drain, no metrics endpoint, no journal).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{Registry: obs.NewRegistry()}
	fs.IntVar(&f.MaxInFlight, "max-inflight", 0, "max concurrently served requests (0 = unlimited)")
	fs.IntVar(&f.MaxQueue, "max-queue", 0, "admission queue length beyond max-inflight")
	fs.DurationVar(&f.QueueWait, "queue-wait", 100*time.Millisecond, "max time a request may queue for admission")
	fs.DurationVar(&f.DrainTimeout, "drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /healthz on this address (empty = off)")
	fs.StringVar(&f.DataDir, "data-dir", "", "journal market state into this directory and recover from it on boot (empty = in-memory only)")
	fs.StringVar(&f.FsyncMode, "fsync", "interval", "journal fsync policy: always (sync every append), interval (background sync) or never")
	fs.IntVar(&f.CompactEvery, "compact-every", 4096, "fold the journal into a snapshot every N records (0 = only on demand)")
	return f
}

// OpenJournal opens the daemon's write-ahead journal under -data-dir,
// instrumented against the daemon's registry. With an empty -data-dir
// it returns (nil, nil): journaling is off, and a nil *journal.Journal
// is safe to Close and Sync.
func (f *Flags) OpenJournal() (*journal.Journal, error) {
	if f.DataDir == "" {
		return nil, nil
	}
	policy, err := journal.ParseFsync(f.FsyncMode)
	if err != nil {
		return nil, err
	}
	return journal.Open(f.DataDir, journal.Options{
		Fsync:        policy,
		CompactEvery: f.CompactEvery,
		Metrics:      journal.NewMetrics(f.Registry),
	})
}

// NodeOptions converts the flags into cosm.NewNode options: admission
// control plus wire-level instrumentation against the daemon's
// registry and the structured logger l (nil for plain logging).
func (f *Flags) NodeOptions(l *obs.Logger) []cosm.NodeOption {
	opts := []cosm.NodeOption{
		cosm.WithNodeAdmission(wire.AdmissionPolicy{
			MaxInFlight: f.MaxInFlight,
			MaxQueue:    f.MaxQueue,
			QueueWait:   f.QueueWait,
		}),
		cosm.WithNodeMetrics(f.Registry),
	}
	if l != nil {
		opts = append(opts, cosm.WithNodeLogger(l))
	}
	return opts
}

// Introspection starts the daemon's metrics endpoint when -metrics-addr
// was given, serving the daemon's registry; healthy reports readiness
// for /healthz (typically the node's drain state) and may be nil. It
// returns nil (without error) when the endpoint is disabled; the
// returned server is nil-safe to Close.
func (f *Flags) Introspection(healthy func() error) (*obs.Introspection, error) {
	if f.MetricsAddr == "" {
		return nil, nil
	}
	return obs.ServeIntrospection(f.MetricsAddr, f.Registry, healthy)
}

// Drain performs the graceful-shutdown sequence: deregister first (so
// clients fail over to live providers instead of a draining endpoint),
// then drain the node under the configured timeout. deregister may be
// nil; its error is reported but does not abort the drain — a dead
// registry must not prevent local cleanup.
func (f *Flags) Drain(node *cosm.Node, deregister func(ctx context.Context) error, logf func(format string, args ...any)) error {
	ctx, cancel := context.WithTimeout(context.Background(), f.DrainTimeout)
	defer cancel()
	if deregister != nil {
		if err := deregister(ctx); err != nil {
			logf("deregistration: %v", err)
		}
	}
	return node.Shutdown(ctx)
}
