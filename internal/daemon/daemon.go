// Package daemon holds the overload-protection and observability
// plumbing shared by the COSM daemons (traderd, browserd, namesrvd,
// carrentald): the admission control flags, the metrics endpoint, and
// the SIGTERM drain sequence. Every daemon exposes the same knobs —
//
//	-max-inflight   bound on concurrently served requests
//	-max-queue      admission queue beyond that bound
//	-queue-wait     cap on one request's queueing time
//	-drain-timeout  grace period for in-flight work on shutdown
//	-metrics-addr   HTTP introspection endpoint (/metrics, /debug/vars,
//	                /healthz); empty disables it
//	-data-dir       write-ahead journal directory; empty keeps the
//	                daemon's state in memory only
//	-fsync          journal fsync policy: always, interval or never
//	-compact-every  journal records between snapshot compactions
//	-trace-buffer   flight-recorder span capacity (0 disables spans)
//	-event-buffer   cluster event timeline capacity (0 disables it)
//	-slow-ms        slow-request watchdog threshold (0 disables it)
//	-pprof          expose net/http/pprof on -metrics-addr
//
// — so operators tune one vocabulary across the whole market.
package daemon

import (
	"context"
	"flag"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/journal"
	"cosm/internal/obs"
	"cosm/internal/wire"
)

// Flags are the shared daemon tuning knobs, registered by Register.
type Flags struct {
	MaxInFlight  int
	MaxQueue     int
	QueueWait    time.Duration
	DrainTimeout time.Duration
	MetricsAddr  string

	DataDir      string
	FsyncMode    string
	CompactEvery int

	TraceBuffer int
	EventBuffer int
	SlowMS      int
	Pprof       bool

	// Registry collects the daemon's metrics; NodeOptions instruments
	// the node against it and Introspection serves it. Populated by
	// Register.
	Registry *obs.Registry

	// NodeName labels this daemon's timeline events (defaults to the
	// process's metrics address; daemons with a better identity — a
	// trader ID — overwrite it before calling Spans/Events).
	NodeName string

	// spans/events are built lazily by Spans/Events: buffer sizes are
	// only known after flag.Parse.
	spansOnce  bool
	spans      *obs.SpanRecorder
	eventsOnce bool
	events     *obs.EventLog
}

// Register installs the shared flags on fs with the common defaults
// (admission control off, 10s drain, no metrics endpoint, no journal).
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{Registry: obs.NewRegistry()}
	fs.IntVar(&f.MaxInFlight, "max-inflight", 0, "max concurrently served requests (0 = unlimited)")
	fs.IntVar(&f.MaxQueue, "max-queue", 0, "admission queue length beyond max-inflight")
	fs.DurationVar(&f.QueueWait, "queue-wait", 100*time.Millisecond, "max time a request may queue for admission")
	fs.DurationVar(&f.DrainTimeout, "drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /healthz on this address (empty = off)")
	fs.StringVar(&f.DataDir, "data-dir", "", "journal market state into this directory and recover from it on boot (empty = in-memory only)")
	fs.StringVar(&f.FsyncMode, "fsync", "interval", "journal fsync policy: always (sync every append), interval (background sync) or never")
	fs.IntVar(&f.CompactEvery, "compact-every", 4096, "fold the journal into a snapshot every N records (0 = only on demand)")
	fs.IntVar(&f.TraceBuffer, "trace-buffer", 4096, "flight-recorder span buffer capacity; /debug/traces (0 = off)")
	fs.IntVar(&f.EventBuffer, "event-buffer", 1024, "cluster event timeline capacity; /debug/events (0 = off)")
	fs.IntVar(&f.SlowMS, "slow-ms", 0, "promote requests slower than this many milliseconds into slow_request log lines (0 = off)")
	fs.BoolVar(&f.Pprof, "pprof", false, "expose net/http/pprof under /debug/pprof on -metrics-addr")
	return f
}

// Spans returns the daemon's flight recorder, built on first use from
// -trace-buffer (nil — recording disabled — when 0). Call only after
// flag.Parse.
func (f *Flags) Spans() *obs.SpanRecorder {
	if !f.spansOnce {
		f.spansOnce = true
		f.spans = obs.NewSpanRecorder(f.TraceBuffer)
	}
	return f.spans
}

// Events returns the daemon's cluster event timeline, built on first
// use from -event-buffer (nil when 0). Call only after flag.Parse.
func (f *Flags) Events() *obs.EventLog {
	if !f.eventsOnce {
		f.eventsOnce = true
		name := f.NodeName
		if name == "" {
			name = f.MetricsAddr
		}
		f.events = obs.NewEventLog(name, f.EventBuffer)
	}
	return f.events
}

// OpenJournal opens the daemon's write-ahead journal under -data-dir,
// instrumented against the daemon's registry. With an empty -data-dir
// it returns (nil, nil): journaling is off, and a nil *journal.Journal
// is safe to Close and Sync.
func (f *Flags) OpenJournal() (*journal.Journal, error) {
	if f.DataDir == "" {
		return nil, nil
	}
	policy, err := journal.ParseFsync(f.FsyncMode)
	if err != nil {
		return nil, err
	}
	return journal.Open(f.DataDir, journal.Options{
		Fsync:        policy,
		CompactEvery: f.CompactEvery,
		Metrics:      journal.NewMetrics(f.Registry),
	})
}

// NodeOptions converts the flags into cosm.NewNode options: admission
// control plus wire-level instrumentation against the daemon's
// registry and the structured logger l (nil for plain logging).
func (f *Flags) NodeOptions(l *obs.Logger) []cosm.NodeOption {
	opts := []cosm.NodeOption{
		cosm.WithNodeAdmission(wire.AdmissionPolicy{
			MaxInFlight: f.MaxInFlight,
			MaxQueue:    f.MaxQueue,
			QueueWait:   f.QueueWait,
		}),
		cosm.WithNodeMetrics(f.Registry),
	}
	if l != nil {
		opts = append(opts, cosm.WithNodeLogger(l))
	}
	if rec := f.Spans(); rec != nil {
		opts = append(opts, cosm.WithNodeRecorder(rec))
	}
	if ev := f.Events(); ev != nil {
		opts = append(opts, cosm.WithNodeEvents(ev))
	}
	if f.SlowMS > 0 {
		opts = append(opts, cosm.WithNodeSlowThreshold(time.Duration(f.SlowMS)*time.Millisecond))
	}
	return opts
}

// Introspection starts the daemon's metrics endpoint when -metrics-addr
// was given, serving the daemon's registry; healthy reports readiness
// for /healthz (typically the node's drain state) and may be nil. It
// returns nil (without error) when the endpoint is disabled; the
// returned server is nil-safe to Close.
func (f *Flags) Introspection(healthy func() error) (*obs.Introspection, error) {
	if f.MetricsAddr == "" {
		return nil, nil
	}
	return obs.ServeIntrospectionWith(f.MetricsAddr, f.Registry, healthy, obs.MuxConfig{
		Spans:  f.Spans(),
		Events: f.Events(),
		Pprof:  f.Pprof,
	})
}

// Drain performs the graceful-shutdown sequence: deregister first (so
// clients fail over to live providers instead of a draining endpoint),
// then drain the node under the configured timeout. deregister may be
// nil; its error is reported but does not abort the drain — a dead
// registry must not prevent local cleanup.
func (f *Flags) Drain(node *cosm.Node, deregister func(ctx context.Context) error, logf func(format string, args ...any)) error {
	ctx, cancel := context.WithTimeout(context.Background(), f.DrainTimeout)
	defer cancel()
	if deregister != nil {
		if err := deregister(ctx); err != nil {
			logf("deregistration: %v", err)
		}
	}
	return node.Shutdown(ctx)
}
