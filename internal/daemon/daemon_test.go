package daemon

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/wire"
)

func TestRegisterDefaultsAndParsing(t *testing.T) {
	fs := flag.NewFlagSet("d", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.MaxInFlight != 0 || f.MaxQueue != 0 {
		t.Fatalf("admission defaults = %+v, want off", f)
	}
	if f.QueueWait != 100*time.Millisecond || f.DrainTimeout != 10*time.Second {
		t.Fatalf("timing defaults = %+v", f)
	}

	fs = flag.NewFlagSet("d", flag.ContinueOnError)
	f = Register(fs)
	if err := fs.Parse([]string{
		"-max-inflight", "8", "-max-queue", "4",
		"-queue-wait", "50ms", "-drain-timeout", "2s",
	}); err != nil {
		t.Fatal(err)
	}
	if f.MaxInFlight != 8 || f.MaxQueue != 4 || f.QueueWait != 50*time.Millisecond || f.DrainTimeout != 2*time.Second {
		t.Fatalf("parsed = %+v", f)
	}
	if f.MetricsAddr != "" {
		t.Fatalf("MetricsAddr default = %q, want off", f.MetricsAddr)
	}
	if f.Registry == nil {
		t.Fatal("Register left Registry nil")
	}
	// admission + metrics + default flight recorder + event timeline.
	if opts := f.NodeOptions(nil); len(opts) != 4 {
		t.Fatalf("NodeOptions = %d options", len(opts))
	}
	if opts := f.NodeOptions(obs.NewLogger(&strings.Builder{}, "t")); len(opts) != 5 {
		t.Fatalf("NodeOptions with logger = %d options", len(opts))
	}

	// The flight recorder and timeline are off at zero capacity, and
	// -slow-ms adds the watchdog option.
	fs = flag.NewFlagSet("d", flag.ContinueOnError)
	f = Register(fs)
	if err := fs.Parse([]string{"-trace-buffer", "0", "-event-buffer", "0", "-slow-ms", "250"}); err != nil {
		t.Fatal(err)
	}
	if f.Spans() != nil || f.Events() != nil {
		t.Fatal("zero-capacity buffers should disable the recorder and timeline")
	}
	if opts := f.NodeOptions(nil); len(opts) != 3 {
		t.Fatalf("NodeOptions with watchdog only = %d options", len(opts))
	}
}

// The -metrics-addr flag stands up the introspection endpoints; the
// health check flips to 503 when the daemon reports unhealthy.
func TestIntrospectionEndpoint(t *testing.T) {
	fs := flag.NewFlagSet("d", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	f.Registry.Counter("cosm_test_total", "test counter").Add(3)
	healthy := true
	intro, err := f.Introspection(func() error {
		if !healthy {
			return errors.New("draining")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer intro.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + intro.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "cosm_test_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "cosm_test_total") {
		t.Fatalf("/debug/vars = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz healthy = %d", code)
	}
	healthy = false
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz draining = %d", code)
	}
}

// Without -metrics-addr, Introspection is off and nil-safe.
func TestIntrospectionDisabled(t *testing.T) {
	fs := flag.NewFlagSet("d", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	intro, err := f.Introspection(nil)
	if err != nil {
		t.Fatal(err)
	}
	if intro != nil {
		t.Fatalf("Introspection = %v, want nil when disabled", intro)
	}
	if err := intro.Close(); err != nil {
		t.Fatalf("nil Close = %v", err)
	}
}

func TestDrainShutsDownNode(t *testing.T) {
	f := &Flags{DrainTimeout: 5 * time.Second}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	endpoint, err := node.ListenAndServe("loop:daemon-drain")
	if err != nil {
		t.Fatal(err)
	}
	deregistered := false
	if err := f.Drain(node, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("deregister ctx carries no deadline")
		}
		deregistered = true
		return nil
	}, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	if !deregistered {
		t.Fatal("deregister never ran")
	}
	// The node is down: its endpoint no longer accepts connections.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	pool := wire.NewPool()
	defer pool.Close()
	if err := cosm.Ping(ctx, pool, ref.New(endpoint, "anything")); err == nil {
		t.Fatal("node still serving after Drain")
	}
}

// A failing deregistration is reported but must not abort the drain:
// a dead registry cannot be allowed to prevent local cleanup.
func TestDrainDeregistrationErrorIsNonFatal(t *testing.T) {
	f := &Flags{DrainTimeout: 5 * time.Second}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if _, err := node.ListenAndServe("loop:daemon-drain-err"); err != nil {
		t.Fatal(err)
	}
	var logged strings.Builder
	err := f.Drain(node, func(context.Context) error {
		return errors.New("registry unreachable")
	}, func(format string, args ...any) {
		fmt.Fprintf(&logged, format, args...)
	})
	if err != nil {
		t.Fatalf("Drain = %v, want nil despite deregistration failure", err)
	}
	if !strings.Contains(logged.String(), "registry unreachable") {
		t.Fatalf("deregistration failure not logged: %q", logged.String())
	}
}

func TestDrainNilDeregister(t *testing.T) {
	f := &Flags{DrainTimeout: 5 * time.Second}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if _, err := node.ListenAndServe("loop:daemon-drain-nil"); err != nil {
		t.Fatal(err)
	}
	if err := f.Drain(node, nil, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
}
