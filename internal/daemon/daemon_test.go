package daemon

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/wire"
)

func TestRegisterDefaultsAndParsing(t *testing.T) {
	fs := flag.NewFlagSet("d", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.MaxInFlight != 0 || f.MaxQueue != 0 {
		t.Fatalf("admission defaults = %+v, want off", f)
	}
	if f.QueueWait != 100*time.Millisecond || f.DrainTimeout != 10*time.Second {
		t.Fatalf("timing defaults = %+v", f)
	}

	fs = flag.NewFlagSet("d", flag.ContinueOnError)
	f = Register(fs)
	if err := fs.Parse([]string{
		"-max-inflight", "8", "-max-queue", "4",
		"-queue-wait", "50ms", "-drain-timeout", "2s",
	}); err != nil {
		t.Fatal(err)
	}
	want := &Flags{MaxInFlight: 8, MaxQueue: 4, QueueWait: 50 * time.Millisecond, DrainTimeout: 2 * time.Second}
	if *f != *want {
		t.Fatalf("parsed = %+v, want %+v", f, want)
	}
	if opts := f.NodeOptions(); len(opts) != 1 {
		t.Fatalf("NodeOptions = %d options", len(opts))
	}
}

func TestDrainShutsDownNode(t *testing.T) {
	f := &Flags{DrainTimeout: 5 * time.Second}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	endpoint, err := node.ListenAndServe("loop:daemon-drain")
	if err != nil {
		t.Fatal(err)
	}
	deregistered := false
	if err := f.Drain(node, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("deregister ctx carries no deadline")
		}
		deregistered = true
		return nil
	}, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	if !deregistered {
		t.Fatal("deregister never ran")
	}
	// The node is down: its endpoint no longer accepts connections.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	pool := wire.NewPool()
	defer pool.Close()
	if err := cosm.Ping(ctx, pool, ref.New(endpoint, "anything")); err == nil {
		t.Fatal("node still serving after Drain")
	}
}

// A failing deregistration is reported but must not abort the drain:
// a dead registry cannot be allowed to prevent local cleanup.
func TestDrainDeregistrationErrorIsNonFatal(t *testing.T) {
	f := &Flags{DrainTimeout: 5 * time.Second}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if _, err := node.ListenAndServe("loop:daemon-drain-err"); err != nil {
		t.Fatal(err)
	}
	var logged strings.Builder
	err := f.Drain(node, func(context.Context) error {
		return errors.New("registry unreachable")
	}, func(format string, args ...any) {
		fmt.Fprintf(&logged, format, args...)
	})
	if err != nil {
		t.Fatalf("Drain = %v, want nil despite deregistration failure", err)
	}
	if !strings.Contains(logged.String(), "registry unreachable") {
		t.Fatalf("deregistration failure not logged: %q", logged.String())
	}
}

func TestDrainNilDeregister(t *testing.T) {
	f := &Flags{DrainTimeout: 5 * time.Second}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if _, err := node.ListenAndServe("loop:daemon-drain-nil"); err != nil {
		t.Fatal(err)
	}
	if err := f.Drain(node, nil, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
}
