// Package ref defines ServiceRef, the globally identifying service
// reference of the COSM infrastructure.
//
// In the paper (section 3.2), values of the SIDL base type
// SERVICEREFERENCE are first-class objects: they are registered at
// browsers together with a service's SID, returned from trader imports,
// and may travel as parameters or results of ordinary service
// operations, enabling cascades of bindings. A ServiceRef is therefore a
// small, comparable value type with a canonical textual form so that it
// can be embedded in wire messages, SIDs and user interfaces alike.
package ref

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBadRef reports a malformed textual service reference.
var ErrBadRef = errors.New("ref: malformed service reference")

// ServiceRef globally identifies a service instance: the transport
// endpoint of the node hosting it and the service's name on that node.
// The zero value is the "nil reference"; IsZero reports it.
type ServiceRef struct {
	// Endpoint is the transport address of the hosting node, e.g.
	// "tcp:127.0.0.1:7001" or "loop:browser-1" for in-process transports.
	Endpoint string
	// Service is the name the service is registered under at the node.
	Service string
}

// New returns a reference to service name at endpoint.
func New(endpoint, service string) ServiceRef {
	return ServiceRef{Endpoint: endpoint, Service: service}
}

// IsZero reports whether r is the nil reference.
func (r ServiceRef) IsZero() bool { return r.Endpoint == "" && r.Service == "" }

// String returns the canonical textual form "cosm://<endpoint>/<service>".
func (r ServiceRef) String() string {
	return "cosm://" + r.Endpoint + "/" + r.Service
}

// Parse parses the canonical textual form produced by String.
func Parse(s string) (ServiceRef, error) {
	const scheme = "cosm://"
	if !strings.HasPrefix(s, scheme) {
		return ServiceRef{}, fmt.Errorf("%w: missing %q prefix in %q", ErrBadRef, scheme, s)
	}
	rest := s[len(scheme):]
	i := strings.LastIndexByte(rest, '/')
	if i <= 0 || i == len(rest)-1 {
		return ServiceRef{}, fmt.Errorf("%w: want cosm://endpoint/service, got %q", ErrBadRef, s)
	}
	return ServiceRef{Endpoint: rest[:i], Service: rest[i+1:]}, nil
}
