package ref

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		r    ServiceRef
	}{
		{"tcp", New("tcp:127.0.0.1:7001", "CarRentalService")},
		{"loop", New("loop:browser-1", "cosm.browser")},
		{"nested-colons", New("tcp:[::1]:80", "svc")},
		{"endpoint-with-slash-like-service", New("host:1", "a.b.c")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.r.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.r.String(), err)
			}
			if got != tt.r {
				t.Fatalf("round trip: got %+v, want %+v", got, tt.r)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"cosm://",
		"cosm://onlyendpoint",
		"cosm:///service",
		"cosm://host:1/",
		"http://host/service",
		"cosm:/host/service",
	}
	for _, s := range tests {
		t.Run(s, func(t *testing.T) {
			if _, err := Parse(s); !errors.Is(err, ErrBadRef) {
				t.Fatalf("Parse(%q) err = %v, want ErrBadRef", s, err)
			}
		})
	}
}

func TestIsZero(t *testing.T) {
	var z ServiceRef
	if !z.IsZero() {
		t.Fatal("zero value should be zero reference")
	}
	if New("e", "s").IsZero() {
		t.Fatal("non-empty ref should not be zero")
	}
}

// Property: any ref with non-empty fields and no '/' in the service name
// round-trips through the textual form.
func TestRoundTripProperty(t *testing.T) {
	f := func(endpoint, service string) bool {
		for _, c := range service {
			if c == '/' {
				return true // skip: service names never contain '/'
			}
		}
		if endpoint == "" || service == "" {
			return true
		}
		r := New(endpoint, service)
		got, err := Parse(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
