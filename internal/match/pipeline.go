package match

// Graded pairs a pipeline item with the grade and score the matcher
// assigned it.
type Graded[T any] struct {
	Item  T
	Grade Grade
	Score float64
}

// Phase is a pluggable pipeline stage run after the built-in
// resolve/gather phases: rescorers, deduplicators, business-rule
// filters. A phase receives the accumulated matches and returns the
// (possibly re-graded, re-ordered, or shrunk) set.
type Phase[T any] interface {
	// Name identifies the phase in traces and diagnostics.
	Name() string
	// Apply transforms the match set. It may mutate and return ms.
	Apply(ms []Graded[T]) []Graded[T]
}

// PhaseFunc adapts a function to the Phase interface.
type PhaseFunc[T any] struct {
	PhaseName string
	Fn        func(ms []Graded[T]) []Graded[T]
}

func (p PhaseFunc[T]) Name() string                     { return p.PhaseName }
func (p PhaseFunc[T]) Apply(ms []Graded[T]) []Graded[T] { return p.Fn(ms) }

// Pipeline is the multi-phase matcher. Resolve is phase 1 (request
// type → graded conformant closure), Gather is phase 2+3 for one
// closure member (candidate selection, attribute filtering, and
// scoring against that bucket's type grade), and Phases are optional
// pluggable stages run over the combined result. The zero value is not
// usable; both funcs are required.
type Pipeline[T any] struct {
	Resolve func(reqType string) ([]TypeMatch, error)
	Gather  func(tm TypeMatch, minGrade Grade) ([]Graded[T], error)
	Phases  []Phase[T]
}

// Run executes the pipeline for one request, returning every match
// grading at least minGrade. Buckets whose full-match grade is below
// the floor are skipped entirely when the floor also excludes
// partial-attribute matches — with a GradePartial (or none) floor they
// must still be scanned, because a failing-but-conformant offer may
// yield a partial match.
func (p *Pipeline[T]) Run(reqType string, minGrade Grade) ([]Graded[T], error) {
	tms, err := p.Resolve(reqType)
	if err != nil {
		return nil, err
	}
	var out []Graded[T]
	for _, tm := range tms {
		if minGrade > GradePartial && !tm.Grade.AtLeast(minGrade) {
			continue
		}
		ms, err := p.Gather(tm, minGrade)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	for _, ph := range p.Phases {
		out = ph.Apply(out)
	}
	// Phases may have re-graded; enforce the floor on the final set.
	kept := out[:0]
	for _, m := range out {
		if m.Grade.AtLeast(minGrade) {
			kept = append(kept, m)
		}
	}
	return kept, nil
}
