// Package match is the trader's semantic matchmaking engine: it turns
// the boolean "does this offer satisfy the import?" of classic trading
// into a *graded* answer, the maturation story of the paper's section
// 3.1 made queryable. The design follows the staged matchmakers in the
// literature (type conformance → attribute filtering → scoring): phase
// 1 resolves the requested service type to its conformant-subtype
// closure (typemgr's generation-cached hierarchy index), phase 2 runs
// the compiled attribute-constraint filter over each candidate bucket,
// and phase 3 scores every surviving offer into a graded result the
// preference policy can order by.
//
// The package is deliberately generic: the pipeline carries any item
// type, so the trader instantiates it with *Offer while tests (and
// future matchers, e.g. a mediation planner ranking service chains)
// instantiate it with their own payloads.
package match

import (
	"fmt"

	"cosm/internal/typemgr"
)

// Grade classifies how well an offer satisfies an import request. The
// lattice orders weaker matches below stronger ones, so "at least
// subtype" style floors are simple comparisons.
type Grade uint8

const (
	// GradeNone marks an ungraded result: an offer from a peer that
	// predates grading, or one that does not match at all. Zero value
	// on the wire means "absent".
	GradeNone Grade = iota
	// GradePartial is a partial-attribute match: the offer's type
	// conforms to the request but its properties satisfy only some of
	// the constraint's top-level conjuncts.
	GradePartial
	// GradeSubtype is a full match by a conforming subtype (declared
	// or structural) of the requested type.
	GradeSubtype
	// GradeExact is a full match on the requested type itself.
	GradeExact
)

// String renders the grade the way the wire, metrics, and cosmcli show
// it. GradeNone renders empty: on the wire that reads as "absent",
// which is exactly what tolerant decode needs for old peers.
func (g Grade) String() string {
	switch g {
	case GradePartial:
		return "partial-attribute"
	case GradeSubtype:
		return "subtype"
	case GradeExact:
		return "exact"
	}
	return ""
}

// ParseGrade is the inverse of String, with "partial" and "none"
// accepted as spoken-form aliases.
func ParseGrade(s string) (Grade, error) {
	switch s {
	case "", "none":
		return GradeNone, nil
	case "partial", "partial-attribute":
		return GradePartial, nil
	case "subtype":
		return GradeSubtype, nil
	case "exact":
		return GradeExact, nil
	}
	return GradeNone, fmt.Errorf("match: unknown grade %q", s)
}

// AtLeast reports whether g meets the floor min.
func (g Grade) AtLeast(min Grade) bool { return g >= min }

// Scoring model. The final score of a full match is its type score; a
// partial-attribute match scales the type score by the satisfied
// fraction of constraint conjuncts, weighted so that *any* full match
// (≥ ScoreStructural) outranks *any* partial one (< PartialWeight).
const (
	// ScoreExact is the type score of an offer of the requested type.
	ScoreExact = 1.0
	// ScoreSubtypeBase/Step: a declared subtype at depth d scores
	// Base − Step×(d−1), so nearer refinements rank higher.
	ScoreSubtypeBase = 0.9
	ScoreSubtypeStep = 0.05
	// ScoreSubtypeFloor bounds arbitrarily deep declared chains.
	ScoreSubtypeFloor = 0.55
	// ScoreStructural is the type score of a structural-only
	// conformer: substitutable, but never standardised as a
	// refinement, so it ranks below every declared subtype.
	ScoreStructural = 0.5
	// PartialWeight caps partial-attribute scores below every full
	// match's floor.
	PartialWeight = 0.4
)

// TypeScore maps a position in the conformance hierarchy to the type
// component of the score.
func TypeScore(depth int, structural bool) float64 {
	if structural {
		return ScoreStructural
	}
	if depth <= 0 {
		return ScoreExact
	}
	s := ScoreSubtypeBase - ScoreSubtypeStep*float64(depth-1)
	if s < ScoreSubtypeFloor {
		return ScoreSubtypeFloor
	}
	return s
}

// PartialScore scores a partial-attribute match: the type score scaled
// by the satisfied fraction of the constraint's top-level conjuncts.
func PartialScore(typeScore float64, satisfied, total int) float64 {
	if total <= 0 || satisfied <= 0 {
		return 0
	}
	return typeScore * PartialWeight * float64(satisfied) / float64(total)
}

// TypeMatch is a phase-1 result: one service type from the requested
// type's conformant closure, pre-graded. Offers of this type inherit
// its Grade/Score when their attributes fully satisfy the constraint.
type TypeMatch struct {
	Name  string
	Grade Grade
	Score float64
}

// GradeClosure converts a typemgr conformant closure into graded type
// matches, preserving order (exact first, then by ascending declared
// depth, then structural conformers).
func GradeClosure(cl []typemgr.ConformantType) []TypeMatch {
	out := make([]TypeMatch, len(cl))
	for i, c := range cl {
		tm := TypeMatch{Name: c.Name, Score: TypeScore(c.Depth, c.Structural)}
		if c.Depth == 0 && !c.Structural {
			tm.Grade = GradeExact
		} else {
			tm.Grade = GradeSubtype
		}
		out[i] = tm
	}
	return out
}

// GradeRemote grades an offer that arrived ungraded from a peer that
// predates grading, using the origin trader's own view of the
// hierarchy: exact if the types agree literally, the closure's grade if
// the offer's type is in it, and a conservative structural-score
// subtype grade when the origin does not know the type at all (the old
// peer already vouched that it matches).
func GradeRemote(reqType, offerType string, cl []TypeMatch) (Grade, float64) {
	if offerType == reqType {
		return GradeExact, ScoreExact
	}
	for _, tm := range cl {
		if tm.Name == offerType {
			return tm.Grade, tm.Score
		}
	}
	return GradeSubtype, ScoreStructural
}
