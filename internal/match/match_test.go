package match

import (
	"errors"
	"testing"

	"cosm/internal/typemgr"
)

func TestGradeLattice(t *testing.T) {
	if !(GradeNone < GradePartial && GradePartial < GradeSubtype && GradeSubtype < GradeExact) {
		t.Fatal("grade lattice out of order")
	}
	if !GradeExact.AtLeast(GradeSubtype) || GradePartial.AtLeast(GradeSubtype) {
		t.Fatal("AtLeast broken")
	}
	for _, g := range []Grade{GradeNone, GradePartial, GradeSubtype, GradeExact} {
		back, err := ParseGrade(g.String())
		if err != nil || back != g {
			t.Fatalf("ParseGrade(%q) = %v, %v; want %v", g.String(), back, err, g)
		}
	}
	if g, err := ParseGrade("partial"); err != nil || g != GradePartial {
		t.Fatalf("ParseGrade(partial) = %v, %v", g, err)
	}
	if _, err := ParseGrade("bogus"); err == nil {
		t.Fatal("ParseGrade(bogus) should fail")
	}
}

func TestTypeScoreOrdering(t *testing.T) {
	// exact > depth1 > depth2 > ... > structural, and deep chains
	// never fall below the structural floor.
	prev := TypeScore(0, false)
	if prev != ScoreExact {
		t.Fatalf("TypeScore(0) = %v", prev)
	}
	for d := 1; d <= 12; d++ {
		s := TypeScore(d, false)
		if s > prev {
			t.Fatalf("TypeScore(%d) = %v not monotone", d, s)
		}
		if s <= ScoreStructural {
			t.Fatalf("TypeScore(%d) = %v under structural score", d, s)
		}
		prev = s
	}
	if TypeScore(0, true) != ScoreStructural {
		t.Fatal("structural score wrong")
	}
}

func TestPartialAlwaysBelowFull(t *testing.T) {
	// Any full match (worst case: structural) must outrank any partial
	// match (best case: exact type, all-but-guaranteed conjuncts).
	bestPartial := PartialScore(ScoreExact, 99, 100)
	if bestPartial >= ScoreStructural {
		t.Fatalf("best partial %v >= worst full %v", bestPartial, ScoreStructural)
	}
	if PartialScore(ScoreExact, 0, 3) != 0 || PartialScore(ScoreExact, 2, 0) != 0 {
		t.Fatal("degenerate partial scores should be 0")
	}
	if PartialScore(1, 1, 2) >= PartialScore(1, 2, 3) {
		t.Fatal("partial score not monotone in satisfied fraction")
	}
}

func TestGradeClosure(t *testing.T) {
	cl := []typemgr.ConformantType{
		{Name: "A", Depth: 0},
		{Name: "B", Depth: 1},
		{Name: "D", Depth: 2},
		{Name: "S", Structural: true},
	}
	tms := GradeClosure(cl)
	if tms[0].Grade != GradeExact || tms[0].Score != ScoreExact {
		t.Fatalf("base graded %+v", tms[0])
	}
	for _, tm := range tms[1:] {
		if tm.Grade != GradeSubtype {
			t.Fatalf("%s graded %v, want subtype", tm.Name, tm.Grade)
		}
	}
	if !(tms[1].Score > tms[2].Score && tms[2].Score > tms[3].Score) {
		t.Fatalf("closure scores not ordered: %+v", tms)
	}
}

func TestGradeRemote(t *testing.T) {
	cl := GradeClosure([]typemgr.ConformantType{
		{Name: "A", Depth: 0}, {Name: "B", Depth: 1},
	})
	if g, s := GradeRemote("A", "A", cl); g != GradeExact || s != ScoreExact {
		t.Fatalf("exact remote: %v %v", g, s)
	}
	if g, s := GradeRemote("A", "B", cl); g != GradeSubtype || s != TypeScore(1, false) {
		t.Fatalf("closure remote: %v %v", g, s)
	}
	// Unknown type vouched for by an old peer: conservative subtype.
	if g, s := GradeRemote("A", "X", cl); g != GradeSubtype || s != ScoreStructural {
		t.Fatalf("unknown remote: %v %v", g, s)
	}
}

// fakeGather returns one full match per bucket plus, for the "B"
// bucket, one partial match — enough to exercise floor handling.
func fakePipeline(t *testing.T) *Pipeline[string] {
	t.Helper()
	return &Pipeline[string]{
		Resolve: func(reqType string) ([]TypeMatch, error) {
			if reqType == "nope" {
				return nil, errors.New("unknown type")
			}
			return []TypeMatch{
				{Name: "A", Grade: GradeExact, Score: ScoreExact},
				{Name: "B", Grade: GradeSubtype, Score: 0.9},
			}, nil
		},
		Gather: func(tm TypeMatch, min Grade) ([]Graded[string], error) {
			ms := []Graded[string]{{Item: tm.Name + "-full", Grade: tm.Grade, Score: tm.Score}}
			if tm.Name == "B" && min <= GradePartial {
				ms = append(ms, Graded[string]{
					Item: "B-partial", Grade: GradePartial,
					Score: PartialScore(tm.Score, 1, 2),
				})
			}
			return ms, nil
		},
	}
}

func TestPipelineRunFloors(t *testing.T) {
	p := fakePipeline(t)
	for _, tc := range []struct {
		min  Grade
		want []string
	}{
		{GradeNone, []string{"A-full", "B-full", "B-partial"}},
		{GradePartial, []string{"A-full", "B-full", "B-partial"}},
		{GradeSubtype, []string{"A-full", "B-full"}},
		{GradeExact, []string{"A-full"}},
	} {
		got, err := p.Run("T", tc.min)
		if err != nil {
			t.Fatalf("Run(min=%v): %v", tc.min, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("Run(min=%v) = %+v, want %v", tc.min, got, tc.want)
		}
		for i := range tc.want {
			if got[i].Item != tc.want[i] {
				t.Fatalf("Run(min=%v) = %+v, want %v", tc.min, got, tc.want)
			}
		}
	}
	if _, err := p.Run("nope", GradeNone); err == nil {
		t.Fatal("Run should propagate resolve errors")
	}
}

func TestPipelinePluggablePhase(t *testing.T) {
	p := fakePipeline(t)
	var saw int
	p.Phases = append(p.Phases, PhaseFunc[string]{
		PhaseName: "demote-b",
		Fn: func(ms []Graded[string]) []Graded[string] {
			saw = len(ms)
			for i := range ms {
				if ms[i].Item == "B-full" {
					ms[i].Grade, ms[i].Score = GradePartial, 0.1
				}
			}
			return ms
		},
	})
	got, err := p.Run("T", GradeSubtype)
	if err != nil {
		t.Fatal(err)
	}
	if saw == 0 {
		t.Fatal("custom phase never ran")
	}
	// The phase demoted B-full below the floor; Run must drop it.
	if len(got) != 1 || got[0].Item != "A-full" {
		t.Fatalf("post-phase floor not enforced: %+v", got)
	}
}
