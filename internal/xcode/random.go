package xcode

import (
	"math/rand"
	"strconv"

	"cosm/internal/ref"
	"cosm/internal/sidl"
)

// Random returns a pseudo-random value of type t, driven by rng. It is
// used by property tests (codec round trips must hold for arbitrary
// values) and by benchmark workload generators.
func Random(rng *rand.Rand, t *sidl.Type) *Value {
	switch t.Kind {
	case sidl.Void:
		return &Value{Type: t}
	case sidl.Bool:
		return &Value{Type: t, Bool: rng.Intn(2) == 1}
	case sidl.Octet:
		return &Value{Type: t, Int: int64(rng.Intn(256))}
	case sidl.Int16:
		return &Value{Type: t, Int: int64(int16(rng.Uint64()))}
	case sidl.Int32:
		return &Value{Type: t, Int: int64(int32(rng.Uint64()))}
	case sidl.Int64:
		return &Value{Type: t, Int: int64(rng.Uint64())}
	case sidl.UInt32:
		return &Value{Type: t, Uint: uint64(uint32(rng.Uint64()))}
	case sidl.UInt64:
		return &Value{Type: t, Uint: rng.Uint64()}
	case sidl.Float32:
		return &Value{Type: t, Float: float64(float32(rng.NormFloat64() * 100))}
	case sidl.Float64:
		return &Value{Type: t, Float: rng.NormFloat64() * 1e6}
	case sidl.String:
		n := rng.Intn(24)
		b := make([]byte, n)
		const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 _-"
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return &Value{Type: t, Str: string(b)}
	case sidl.Enum:
		return &Value{Type: t, Ord: rng.Intn(len(t.Literals))}
	case sidl.SvcRef:
		if rng.Intn(4) == 0 {
			return &Value{Type: t} // nil reference
		}
		r := ref.New("tcp:10.0.0."+strconv.Itoa(rng.Intn(255))+":"+strconv.Itoa(1024+rng.Intn(60000)),
			"svc"+strconv.Itoa(rng.Intn(1000)))
		return &Value{Type: t, Ref: r}
	case sidl.Sequence:
		n := rng.Intn(5)
		v := &Value{Type: t, Elems: make([]*Value, n)}
		for i := range v.Elems {
			v.Elems[i] = Random(rng, t.Elem)
		}
		return v
	case sidl.Struct:
		v := &Value{Type: t, Fields: make([]*Value, len(t.Fields))}
		for i, f := range t.Fields {
			v.Fields[i] = Random(rng, f.Type)
		}
		return v
	}
	panic("xcode: Random of unknown kind " + t.Kind.String())
}
