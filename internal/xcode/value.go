// Package xcode implements the dynamic value model and the type-directed
// wire encoding of the COSM infrastructure.
//
// The paper's generic client (section 3.1) requires "dynamic marshalling
// of transferred parameters": because a SID is obtained at run time, no
// compiled stubs exist, so parameter values must be represented and
// encoded generically, driven by the SIDL type description itself. A
// Value is a typed tree mirroring its *sidl.Type; Marshal and Unmarshal
// translate between Value trees and a compact binary wire form.
package xcode

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cosm/internal/ref"
	"cosm/internal/sidl"
)

// Errors reported by value construction and access.
var (
	ErrTypeMismatch = errors.New("xcode: value/type mismatch")
	ErrNoSuchField  = errors.New("xcode: no such field")
	ErrBadLiteral   = errors.New("xcode: literal does not fit type")
)

// Value is a dynamically typed SIDL value. Its shape mirrors Type: a
// scalar holds one of the payload fields, a struct holds Fields aligned
// positionally with Type.Fields, a sequence holds Elems.
type Value struct {
	Type *sidl.Type

	Bool  bool
	Int   int64  // Octet, Int16, Int32, Int64
	Uint  uint64 // UInt32, UInt64
	Float float64
	Str   string
	Ord   int // Enum ordinal
	Ref   ref.ServiceRef

	Elems  []*Value // Sequence
	Fields []*Value // Struct, positional
}

// Zero returns the zero value of t: false, 0, "", first enum literal,
// empty sequence, struct of zero fields, nil reference.
func Zero(t *sidl.Type) *Value {
	v := &Value{Type: t}
	if t.Kind == sidl.Struct {
		v.Fields = make([]*Value, len(t.Fields))
		for i, f := range t.Fields {
			v.Fields[i] = Zero(f.Type)
		}
	}
	return v
}

// Bool, Int, ... construct scalar values of the given type.

// NewBool returns a boolean value of type t (which must be Bool).
func NewBool(t *sidl.Type, b bool) *Value { mustKind(t, sidl.Bool); return &Value{Type: t, Bool: b} }

// NewInt returns a signed integral value of type t.
func NewInt(t *sidl.Type, i int64) *Value {
	switch t.Kind {
	case sidl.Octet, sidl.Int16, sidl.Int32, sidl.Int64:
		return &Value{Type: t, Int: i}
	}
	panic("xcode: NewInt with kind " + t.Kind.String())
}

// NewUint returns an unsigned integral value of type t.
func NewUint(t *sidl.Type, u uint64) *Value {
	switch t.Kind {
	case sidl.UInt32, sidl.UInt64:
		return &Value{Type: t, Uint: u}
	}
	panic("xcode: NewUint with kind " + t.Kind.String())
}

// NewFloat returns a floating-point value of type t.
func NewFloat(t *sidl.Type, f float64) *Value {
	switch t.Kind {
	case sidl.Float32, sidl.Float64:
		return &Value{Type: t, Float: f}
	}
	panic("xcode: NewFloat with kind " + t.Kind.String())
}

// NewString returns a string value of type t.
func NewString(t *sidl.Type, s string) *Value {
	mustKind(t, sidl.String)
	return &Value{Type: t, Str: s}
}

// NewRef returns a service-reference value of type t.
func NewRef(t *sidl.Type, r ref.ServiceRef) *Value {
	mustKind(t, sidl.SvcRef)
	return &Value{Type: t, Ref: r}
}

// NewEnum returns an enum value by literal name.
func NewEnum(t *sidl.Type, literal string) (*Value, error) {
	ord, ok := t.Ordinal(literal)
	if !ok {
		return nil, fmt.Errorf("%w: %q is not a literal of %s", ErrBadLiteral, literal, t)
	}
	return &Value{Type: t, Ord: ord}, nil
}

// NewSequence returns a sequence value over the given elements; each
// element's type must conform to t's element type.
func NewSequence(t *sidl.Type, elems ...*Value) (*Value, error) {
	mustKind(t, sidl.Sequence)
	for i, e := range elems {
		if !e.Type.ConformsTo(t.Elem) {
			return nil, fmt.Errorf("%w: element %d has type %s, want %s", ErrTypeMismatch, i, e.Type, t.Elem)
		}
	}
	return &Value{Type: t, Elems: elems}, nil
}

// NewStruct returns a struct value with fields given by name. Missing
// fields are zero-valued; unknown names are an error.
func NewStruct(t *sidl.Type, fields map[string]*Value) (*Value, error) {
	mustKind(t, sidl.Struct)
	v := Zero(t)
	for name, fv := range fields {
		if err := v.SetField(name, fv); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func mustKind(t *sidl.Type, k sidl.Kind) {
	if t.Kind != k {
		panic("xcode: constructor type kind " + t.Kind.String() + ", want " + k.String())
	}
}

// FromLit converts a SIDL literal to a value of type t.
func FromLit(t *sidl.Type, l sidl.Lit) (*Value, error) {
	switch l.Kind {
	case sidl.LitBool:
		if t.Kind != sidl.Bool {
			return nil, fmt.Errorf("%w: boolean literal for %s", ErrBadLiteral, t)
		}
		return NewBool(t, l.Bool), nil
	case sidl.LitInt:
		switch t.Kind {
		case sidl.Octet, sidl.Int16, sidl.Int32, sidl.Int64:
			return NewInt(t, l.Int), nil
		case sidl.UInt32, sidl.UInt64:
			if l.Int < 0 {
				return nil, fmt.Errorf("%w: negative literal for %s", ErrBadLiteral, t)
			}
			return NewUint(t, uint64(l.Int)), nil
		case sidl.Float32, sidl.Float64:
			return NewFloat(t, float64(l.Int)), nil
		}
		return nil, fmt.Errorf("%w: integer literal for %s", ErrBadLiteral, t)
	case sidl.LitFloat:
		if t.Kind != sidl.Float32 && t.Kind != sidl.Float64 {
			return nil, fmt.Errorf("%w: float literal for %s", ErrBadLiteral, t)
		}
		return NewFloat(t, l.Float), nil
	case sidl.LitString:
		if t.Kind != sidl.String {
			return nil, fmt.Errorf("%w: string literal for %s", ErrBadLiteral, t)
		}
		return NewString(t, l.Str), nil
	case sidl.LitEnum:
		if t.Kind != sidl.Enum {
			return nil, fmt.Errorf("%w: enum literal for %s", ErrBadLiteral, t)
		}
		return NewEnum(t, l.Enum)
	}
	return nil, fmt.Errorf("%w: unknown literal kind %d", ErrBadLiteral, l.Kind)
}

// Field returns the struct member by name.
func (v *Value) Field(name string) (*Value, error) {
	if v.Type.Kind != sidl.Struct {
		return nil, fmt.Errorf("%w: Field on %s", ErrTypeMismatch, v.Type)
	}
	for i, f := range v.Type.Fields {
		if f.Name == name {
			return v.Fields[i], nil
		}
	}
	return nil, fmt.Errorf("%w: %q in %s", ErrNoSuchField, name, v.Type)
}

// SetField replaces the struct member by name; the new value's type must
// conform to the field type.
func (v *Value) SetField(name string, fv *Value) error {
	if v.Type.Kind != sidl.Struct {
		return fmt.Errorf("%w: SetField on %s", ErrTypeMismatch, v.Type)
	}
	for i, f := range v.Type.Fields {
		if f.Name == name {
			if !fv.Type.ConformsTo(f.Type) {
				return fmt.Errorf("%w: field %q has type %s, want %s", ErrTypeMismatch, name, fv.Type, f.Type)
			}
			v.Fields[i] = fv
			return nil
		}
	}
	return fmt.Errorf("%w: %q in %s", ErrNoSuchField, name, v.Type)
}

// EnumLiteral returns the literal name of an enum value.
func (v *Value) EnumLiteral() string {
	if v.Type.Kind != sidl.Enum || v.Ord < 0 || v.Ord >= len(v.Type.Literals) {
		return ""
	}
	return v.Type.Literals[v.Ord]
}

// Project returns a view of v as the given base type, which v's type
// must conform to: extra struct fields are dropped, recursively. This is
// how an extended value is handed to a component that only understands
// the base description (section 3.1).
func (v *Value) Project(base *sidl.Type) (*Value, error) {
	if err := v.Type.ExplainConformance(base); err != nil {
		return nil, err
	}
	return projectConformant(v, base), nil
}

func projectConformant(v *Value, base *sidl.Type) *Value {
	switch base.Kind {
	case sidl.Struct:
		out := &Value{Type: base, Fields: make([]*Value, len(base.Fields))}
		for i, bf := range base.Fields {
			fv, _ := v.Field(bf.Name) // conformance already checked
			out.Fields[i] = projectConformant(fv, bf.Type)
		}
		return out
	case sidl.Sequence:
		out := &Value{Type: base, Elems: make([]*Value, len(v.Elems))}
		for i, e := range v.Elems {
			out.Elems[i] = projectConformant(e, base.Elem)
		}
		return out
	case sidl.Enum:
		return &Value{Type: base, Ord: v.Ord}
	default:
		c := *v
		c.Type = base
		return &c
	}
}

// Equal reports deep equality of two values (types compared
// structurally).
func (v *Value) Equal(o *Value) bool {
	if v == nil || o == nil {
		return v == o
	}
	if !v.Type.Equal(o.Type) {
		return false
	}
	switch v.Type.Kind {
	case sidl.Void:
		return true
	case sidl.Bool:
		return v.Bool == o.Bool
	case sidl.Octet, sidl.Int16, sidl.Int32, sidl.Int64:
		return v.Int == o.Int
	case sidl.UInt32, sidl.UInt64:
		return v.Uint == o.Uint
	case sidl.Float32, sidl.Float64:
		return v.Float == o.Float
	case sidl.String:
		return v.Str == o.Str
	case sidl.Enum:
		return v.Ord == o.Ord
	case sidl.SvcRef:
		return v.Ref == o.Ref
	case sidl.Sequence:
		if len(v.Elems) != len(o.Elems) {
			return false
		}
		for i := range v.Elems {
			if !v.Elems[i].Equal(o.Elems[i]) {
				return false
			}
		}
		return true
	case sidl.Struct:
		if len(v.Fields) != len(o.Fields) {
			return false
		}
		for i := range v.Fields {
			if !v.Fields[i].Equal(o.Fields[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Clone returns a deep copy (sharing the immutable type).
func (v *Value) Clone() *Value {
	if v == nil {
		return nil
	}
	c := *v
	if v.Elems != nil {
		c.Elems = make([]*Value, len(v.Elems))
		for i, e := range v.Elems {
			c.Elems[i] = e.Clone()
		}
	}
	if v.Fields != nil {
		c.Fields = make([]*Value, len(v.Fields))
		for i, f := range v.Fields {
			c.Fields[i] = f.Clone()
		}
	}
	return &c
}

// String renders the value in a compact human-readable form used by the
// generated user interfaces and logs.
func (v *Value) String() string {
	var b strings.Builder
	v.render(&b)
	return b.String()
}

func (v *Value) render(b *strings.Builder) {
	if v == nil {
		b.WriteString("<nil>")
		return
	}
	switch v.Type.Kind {
	case sidl.Void:
		b.WriteString("void")
	case sidl.Bool:
		b.WriteString(strconv.FormatBool(v.Bool))
	case sidl.Octet, sidl.Int16, sidl.Int32, sidl.Int64:
		b.WriteString(strconv.FormatInt(v.Int, 10))
	case sidl.UInt32, sidl.UInt64:
		b.WriteString(strconv.FormatUint(v.Uint, 10))
	case sidl.Float32, sidl.Float64:
		b.WriteString(strconv.FormatFloat(v.Float, 'g', -1, 64))
	case sidl.String:
		b.WriteString(strconv.Quote(v.Str))
	case sidl.Enum:
		b.WriteString(v.EnumLiteral())
	case sidl.SvcRef:
		b.WriteString(v.Ref.String())
	case sidl.Sequence:
		b.WriteByte('[')
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.render(b)
		}
		b.WriteByte(']')
	case sidl.Struct:
		b.WriteByte('{')
		for i, f := range v.Type.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteString(": ")
			v.Fields[i].render(b)
		}
		b.WriteByte('}')
	default:
		fmt.Fprintf(b, "<kind %d>", v.Type.Kind)
	}
}
