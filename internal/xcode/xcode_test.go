package xcode

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"cosm/internal/ref"
	"cosm/internal/sidl"
)

// carRentalSelect builds the paper's SelectCar_t request value.
func carRentalSelect(t *testing.T) (*sidl.Type, *Value) {
	t.Helper()
	sid := sidl.CarRentalSID()
	st := sid.Type("SelectCar_t")
	model, err := NewEnum(sid.Type("CarModel_t"), "FIAT_Uno")
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewStruct(st, map[string]*Value{
		"model":       model,
		"bookingDate": NewString(sidl.Basic(sidl.String), "1994-06-21"),
		"days":        NewInt(sidl.Basic(sidl.Int32), 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, v
}

func TestMarshalRoundTripCarRental(t *testing.T) {
	st, v := carRentalSelect(t)
	data := Marshal(v)
	got, err := Unmarshal(st, data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: got %s, want %s", got, v)
	}
}

func TestZero(t *testing.T) {
	sid := sidl.CarRentalSID()
	z := Zero(sid.Type("SelectCar_t"))
	if f, err := z.Field("days"); err != nil || f.Int != 0 {
		t.Fatalf("zero days = %v, %v", f, err)
	}
	if f, err := z.Field("model"); err != nil || f.EnumLiteral() != "AUDI" {
		t.Fatalf("zero model = %v, %v", f, err)
	}
	data := Marshal(z)
	got, err := Unmarshal(sid.Type("SelectCar_t"), data)
	if err != nil || !got.Equal(z) {
		t.Fatalf("zero round trip failed: %v", err)
	}
}

func TestFieldAccess(t *testing.T) {
	_, v := carRentalSelect(t)
	f, err := v.Field("bookingDate")
	if err != nil || f.Str != "1994-06-21" {
		t.Fatalf("Field(bookingDate) = %v, %v", f, err)
	}
	if _, err := v.Field("nope"); !errors.Is(err, ErrNoSuchField) {
		t.Fatalf("Field(nope) err = %v", err)
	}
	if err := v.SetField("days", NewInt(sidl.Basic(sidl.Int32), 7)); err != nil {
		t.Fatal(err)
	}
	if f, _ := v.Field("days"); f.Int != 7 {
		t.Fatalf("days = %d after SetField", f.Int)
	}
	// Type-mismatched SetField must fail.
	if err := v.SetField("days", NewString(sidl.Basic(sidl.String), "x")); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("SetField mismatch err = %v", err)
	}
	// Field access on a non-struct must fail.
	if _, err := NewInt(sidl.Basic(sidl.Int32), 1).Field("x"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Field on scalar err = %v", err)
	}
}

func TestNewEnumRejectsUnknownLiteral(t *testing.T) {
	e := sidl.EnumOf("E", "A", "B")
	if _, err := NewEnum(e, "C"); !errors.Is(err, ErrBadLiteral) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewSequenceChecksElements(t *testing.T) {
	seq := sidl.SequenceOf(sidl.Basic(sidl.Int32))
	if _, err := NewSequence(seq, NewInt(sidl.Basic(sidl.Int32), 1), NewString(sidl.Basic(sidl.String), "x")); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
	v, err := NewSequence(seq, NewInt(sidl.Basic(sidl.Int32), 1))
	if err != nil || len(v.Elems) != 1 {
		t.Fatalf("NewSequence: %v", err)
	}
}

func TestNewStructUnknownField(t *testing.T) {
	st := sidl.StructOf("S", sidl.Field{Name: "a", Type: sidl.Basic(sidl.Int32)})
	if _, err := NewStruct(st, map[string]*Value{"zz": NewInt(sidl.Basic(sidl.Int32), 1)}); !errors.Is(err, ErrNoSuchField) {
		t.Fatalf("err = %v", err)
	}
}

func TestFromLit(t *testing.T) {
	e := sidl.EnumOf("E", "A", "B")
	tests := []struct {
		name    string
		typ     *sidl.Type
		lit     sidl.Lit
		wantErr bool
		check   func(*Value) bool
	}{
		{"bool", sidl.Basic(sidl.Bool), sidl.BoolLit(true), false, func(v *Value) bool { return v.Bool }},
		{"int", sidl.Basic(sidl.Int64), sidl.IntLit(-9), false, func(v *Value) bool { return v.Int == -9 }},
		{"int to uint", sidl.Basic(sidl.UInt32), sidl.IntLit(9), false, func(v *Value) bool { return v.Uint == 9 }},
		{"neg to uint", sidl.Basic(sidl.UInt32), sidl.IntLit(-1), true, nil},
		{"int to float", sidl.Basic(sidl.Float64), sidl.IntLit(4), false, func(v *Value) bool { return v.Float == 4 }},
		{"float", sidl.Basic(sidl.Float32), sidl.FloatLit(1.5), false, func(v *Value) bool { return v.Float == 1.5 }},
		{"string", sidl.Basic(sidl.String), sidl.StringLit("s"), false, func(v *Value) bool { return v.Str == "s" }},
		{"enum", e, sidl.EnumLit("B"), false, func(v *Value) bool { return v.Ord == 1 }},
		{"enum unknown", e, sidl.EnumLit("Z"), true, nil},
		{"bool for int", sidl.Basic(sidl.Int32), sidl.BoolLit(true), true, nil},
		{"string for int", sidl.Basic(sidl.Int32), sidl.StringLit("x"), true, nil},
		{"float for string", sidl.Basic(sidl.String), sidl.FloatLit(1), true, nil},
		{"enum lit for int", sidl.Basic(sidl.Int32), sidl.EnumLit("A"), true, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, err := FromLit(tt.typ, tt.lit)
			if tt.wantErr {
				if !errors.Is(err, ErrBadLiteral) {
					t.Fatalf("err = %v, want ErrBadLiteral", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !tt.check(v) {
				t.Fatalf("value = %s", v)
			}
		})
	}
}

func TestProject(t *testing.T) {
	base := sidl.StructOf("Base", sidl.Field{Name: "x", Type: sidl.Basic(sidl.Int32)})
	ext := sidl.StructOf("Ext",
		sidl.Field{Name: "extra", Type: sidl.Basic(sidl.String)},
		sidl.Field{Name: "x", Type: sidl.Basic(sidl.Int32)},
	)
	v, err := NewStruct(ext, map[string]*Value{
		"x":     NewInt(sidl.Basic(sidl.Int32), 42),
		"extra": NewString(sidl.Basic(sidl.String), "hidden"),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.Project(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fields) != 1 || p.Fields[0].Int != 42 {
		t.Fatalf("projection = %s", p)
	}
	// The projection encodes exactly as a base value would.
	want := Marshal(p)
	direct, _ := NewStruct(base, map[string]*Value{"x": NewInt(sidl.Basic(sidl.Int32), 42)})
	if string(want) != string(Marshal(direct)) {
		t.Fatal("projected encoding differs from direct base encoding")
	}
	// Projection to a non-conformant type fails.
	other := sidl.StructOf("O", sidl.Field{Name: "y", Type: sidl.Basic(sidl.Int32)})
	if _, err := v.Project(other); err == nil {
		t.Fatal("projection to non-conformant type must fail")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	int32T := sidl.Basic(sidl.Int32)
	strT := sidl.Basic(sidl.String)
	enumT := sidl.EnumOf("E", "A", "B")
	seqT := sidl.SequenceOf(sidl.Basic(sidl.Int64))
	refT := sidl.Basic(sidl.SvcRef)
	boolT := sidl.Basic(sidl.Bool)

	tests := []struct {
		name string
		typ  *sidl.Type
		data []byte
		want error
	}{
		{"truncated int", int32T, []byte{1, 2}, ErrTruncated},
		{"trailing bytes", int32T, []byte{0, 0, 0, 1, 9}, ErrBadData},
		{"truncated string body", strT, []byte{5, 'a'}, ErrTruncated},
		{"oversize string", strT, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, ErrOversize},
		{"enum out of range", enumT, []byte{7}, ErrBadData},
		{"bad bool byte", boolT, []byte{3}, ErrBadData},
		{"absurd sequence claim", seqT, []byte{0xFF, 0xFF, 0x03, 1, 2}, ErrBadData},
		{"bad ref text", refT, append([]byte{5}, "xxxxx"...), ErrBadData},
		{"empty input varint", strT, nil, ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unmarshal(tt.typ, tt.data)
			if !errors.Is(err, tt.want) {
				t.Fatalf("Unmarshal err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestSvcRefRoundTrip(t *testing.T) {
	refT := sidl.Basic(sidl.SvcRef)
	r := ref.New("tcp:127.0.0.1:9000", "CarRentalService")
	v := NewRef(refT, r)
	got, err := Unmarshal(refT, Marshal(v))
	if err != nil || got.Ref != r {
		t.Fatalf("ref round trip: %v %v", got, err)
	}
	// Nil reference round-trips as nil.
	nilV := Zero(refT)
	got, err = Unmarshal(refT, Marshal(nilV))
	if err != nil || !got.Ref.IsZero() {
		t.Fatalf("nil ref round trip: %v %v", got, err)
	}
}

func TestValueString(t *testing.T) {
	_, v := carRentalSelect(t)
	s := v.String()
	for _, want := range []string{"model: FIAT_Uno", `bookingDate: "1994-06-21"`, "days: 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q lacks %q", s, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	_, v := carRentalSelect(t)
	c := v.Clone()
	if !c.Equal(v) {
		t.Fatal("clone must equal original")
	}
	if err := c.SetField("days", NewInt(sidl.Basic(sidl.Int32), 99)); err != nil {
		t.Fatal(err)
	}
	if f, _ := v.Field("days"); f.Int != 3 {
		t.Fatal("mutating clone affected original")
	}
}

func TestEqualDistinguishes(t *testing.T) {
	a := NewInt(sidl.Basic(sidl.Int32), 1)
	b := NewInt(sidl.Basic(sidl.Int32), 2)
	c := NewInt(sidl.Basic(sidl.Int64), 1)
	if a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal must distinguish values and types")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Equal must accept equal values")
	}
}

// Property: Marshal/Unmarshal round-trips random values of random types.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		typ := randomTestType(rng, 3)
		v := Random(rng, typ)
		data := Marshal(v)
		got, err := Unmarshal(typ, data)
		if err != nil {
			t.Fatalf("iteration %d: Unmarshal: %v (type %s, value %s)", i, err, typ, v)
		}
		if !got.Equal(v) {
			t.Fatalf("iteration %d: round trip mismatch:\n got %s\nwant %s", i, got, v)
		}
	}
}

// Property: decoding arbitrary junk never panics and never returns both
// nil error and a value that re-encodes differently (canonical decode).
func TestDecodeJunkNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		typ := randomTestType(rng, 2)
		junk := make([]byte, rng.Intn(32))
		rng.Read(junk)
		v, err := Unmarshal(typ, junk)
		if err != nil {
			continue
		}
		if string(Marshal(v)) != string(junk) {
			t.Fatalf("non-canonical decode of %x as %s", junk, typ)
		}
	}
}

func randomTestType(rng *rand.Rand, depth int) *sidl.Type {
	if depth <= 0 {
		scalars := []sidl.Kind{
			sidl.Bool, sidl.Octet, sidl.Int16, sidl.Int32, sidl.Int64,
			sidl.UInt32, sidl.UInt64, sidl.Float32, sidl.Float64,
			sidl.String, sidl.SvcRef,
		}
		return sidl.Basic(scalars[rng.Intn(len(scalars))])
	}
	switch rng.Intn(4) {
	case 0:
		n := 1 + rng.Intn(4)
		lits := make([]string, n)
		for i := range lits {
			lits[i] = string(rune('A' + i))
		}
		return sidl.EnumOf("", lits...)
	case 1:
		n := 1 + rng.Intn(4)
		fields := make([]sidl.Field, n)
		for i := range fields {
			fields[i] = sidl.Field{Name: string(rune('a' + i)), Type: randomTestType(rng, depth-1)}
		}
		return sidl.StructOf("", fields...)
	case 2:
		return sidl.SequenceOf(randomTestType(rng, depth-1))
	default:
		return randomTestType(rng, 0)
	}
}
