package xcode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cosm/internal/ref"
	"cosm/internal/sidl"
)

// Codec limits. Decoding applies them defensively: a malformed or
// malicious message must not make a node allocate unbounded memory.
const (
	// MaxStringLen bounds decoded string and reference lengths.
	MaxStringLen = 1 << 20
	// MaxSequenceLen bounds decoded sequence lengths.
	MaxSequenceLen = 1 << 18
)

// Errors reported by the codec.
var (
	ErrTruncated = errors.New("xcode: truncated input")
	ErrOversize  = errors.New("xcode: length exceeds limit")
	ErrBadData   = errors.New("xcode: malformed data")
)

// Marshal encodes v into a compact binary form. The encoding is
// type-directed and carries no type tags: both sides must agree on the
// SIDL type, which in COSM they always do, because the type travels in
// the SID. AppendMarshal appends to dst to allow buffer reuse.
func Marshal(v *Value) []byte {
	return AppendMarshal(nil, v)
}

// AppendMarshal appends the encoding of v to dst and returns the
// extended slice.
func AppendMarshal(dst []byte, v *Value) []byte {
	switch v.Type.Kind {
	case sidl.Void:
		return dst
	case sidl.Bool:
		if v.Bool {
			return append(dst, 1)
		}
		return append(dst, 0)
	case sidl.Octet:
		return append(dst, byte(v.Int))
	case sidl.Int16:
		return binary.BigEndian.AppendUint16(dst, uint16(v.Int))
	case sidl.Int32:
		return binary.BigEndian.AppendUint32(dst, uint32(v.Int))
	case sidl.Int64:
		return binary.BigEndian.AppendUint64(dst, uint64(v.Int))
	case sidl.UInt32:
		return binary.BigEndian.AppendUint32(dst, uint32(v.Uint))
	case sidl.UInt64:
		return binary.BigEndian.AppendUint64(dst, v.Uint)
	case sidl.Float32:
		return binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(v.Float)))
	case sidl.Float64:
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float))
	case sidl.String:
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		return append(dst, v.Str...)
	case sidl.Enum:
		return binary.AppendUvarint(dst, uint64(v.Ord))
	case sidl.SvcRef:
		s := v.Ref.String()
		if v.Ref.IsZero() {
			s = ""
		}
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case sidl.Sequence:
		dst = binary.AppendUvarint(dst, uint64(len(v.Elems)))
		for _, e := range v.Elems {
			dst = AppendMarshal(dst, e)
		}
		return dst
	case sidl.Struct:
		for _, f := range v.Fields {
			dst = AppendMarshal(dst, f)
		}
		return dst
	}
	panic("xcode: Marshal of unknown kind " + v.Type.Kind.String())
}

// Unmarshal decodes a value of type t from data, which must contain
// exactly one encoded value.
func Unmarshal(t *sidl.Type, data []byte) (*Value, error) {
	v, rest, err := decode(t, data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadData, len(rest))
	}
	return v, nil
}

func decode(t *sidl.Type, data []byte) (*Value, []byte, error) {
	v := &Value{Type: t}
	switch t.Kind {
	case sidl.Void:
		return v, data, nil
	case sidl.Bool:
		if len(data) < 1 {
			return nil, nil, ErrTruncated
		}
		switch data[0] {
		case 0:
			v.Bool = false
		case 1:
			v.Bool = true
		default:
			return nil, nil, fmt.Errorf("%w: boolean byte %d", ErrBadData, data[0])
		}
		return v, data[1:], nil
	case sidl.Octet:
		if len(data) < 1 {
			return nil, nil, ErrTruncated
		}
		v.Int = int64(data[0])
		return v, data[1:], nil
	case sidl.Int16:
		if len(data) < 2 {
			return nil, nil, ErrTruncated
		}
		v.Int = int64(int16(binary.BigEndian.Uint16(data)))
		return v, data[2:], nil
	case sidl.Int32:
		if len(data) < 4 {
			return nil, nil, ErrTruncated
		}
		v.Int = int64(int32(binary.BigEndian.Uint32(data)))
		return v, data[4:], nil
	case sidl.Int64:
		if len(data) < 8 {
			return nil, nil, ErrTruncated
		}
		v.Int = int64(binary.BigEndian.Uint64(data))
		return v, data[8:], nil
	case sidl.UInt32:
		if len(data) < 4 {
			return nil, nil, ErrTruncated
		}
		v.Uint = uint64(binary.BigEndian.Uint32(data))
		return v, data[4:], nil
	case sidl.UInt64:
		if len(data) < 8 {
			return nil, nil, ErrTruncated
		}
		v.Uint = binary.BigEndian.Uint64(data)
		return v, data[8:], nil
	case sidl.Float32:
		if len(data) < 4 {
			return nil, nil, ErrTruncated
		}
		v.Float = float64(math.Float32frombits(binary.BigEndian.Uint32(data)))
		return v, data[4:], nil
	case sidl.Float64:
		if len(data) < 8 {
			return nil, nil, ErrTruncated
		}
		v.Float = math.Float64frombits(binary.BigEndian.Uint64(data))
		return v, data[8:], nil
	case sidl.String:
		s, rest, err := decodeBytes(data, MaxStringLen)
		if err != nil {
			return nil, nil, err
		}
		v.Str = string(s)
		return v, rest, nil
	case sidl.Enum:
		n, rest, err := decodeUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		if n >= uint64(len(t.Literals)) {
			return nil, nil, fmt.Errorf("%w: enum ordinal %d out of range for %s", ErrBadData, n, t)
		}
		v.Ord = int(n)
		return v, rest, nil
	case sidl.SvcRef:
		s, rest, err := decodeBytes(data, MaxStringLen)
		if err != nil {
			return nil, nil, err
		}
		if len(s) > 0 {
			r, err := ref.Parse(string(s))
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrBadData, err)
			}
			v.Ref = r
		}
		return v, rest, nil
	case sidl.Sequence:
		n, rest, err := decodeUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		if n > MaxSequenceLen {
			return nil, nil, fmt.Errorf("%w: sequence length %d", ErrOversize, n)
		}
		// Guard against tiny payloads claiming huge lengths: every
		// element costs at least one byte unless it is empty-struct-like.
		if n > uint64(len(rest))+1 {
			min := minEncodedSize(t.Elem)
			if min > 0 && n*uint64(min) > uint64(len(rest)) {
				return nil, nil, fmt.Errorf("%w: sequence claims %d elements in %d bytes", ErrBadData, n, len(rest))
			}
		}
		v.Elems = make([]*Value, n)
		for i := range v.Elems {
			e, r, err := decode(t.Elem, rest)
			if err != nil {
				return nil, nil, fmt.Errorf("element %d: %w", i, err)
			}
			v.Elems[i] = e
			rest = r
		}
		return v, rest, nil
	case sidl.Struct:
		v.Fields = make([]*Value, len(t.Fields))
		rest := data
		for i, f := range t.Fields {
			fv, r, err := decode(f.Type, rest)
			if err != nil {
				return nil, nil, fmt.Errorf("field %q: %w", f.Name, err)
			}
			v.Fields[i] = fv
			rest = r
		}
		return v, rest, nil
	}
	return nil, nil, fmt.Errorf("%w: unknown kind %s", ErrBadData, t.Kind)
}

// minEncodedSize returns a lower bound on the encoded size of a value of
// t, used to reject absurd sequence length claims early.
func minEncodedSize(t *sidl.Type) int {
	switch t.Kind {
	case sidl.Void:
		return 0
	case sidl.Bool, sidl.Octet:
		return 1
	case sidl.Int16:
		return 2
	case sidl.Int32, sidl.UInt32, sidl.Float32:
		return 4
	case sidl.Int64, sidl.UInt64, sidl.Float64:
		return 8
	case sidl.String, sidl.Enum, sidl.SvcRef, sidl.Sequence:
		return 1 // the length/ordinal varint
	case sidl.Struct:
		sum := 0
		for _, f := range t.Fields {
			sum += minEncodedSize(f.Type)
		}
		return sum
	}
	return 0
}

func decodeUvarint(data []byte) (uint64, []byte, error) {
	n, size := binary.Uvarint(data)
	if size <= 0 {
		return 0, nil, ErrTruncated
	}
	return n, data[size:], nil
}

func decodeBytes(data []byte, limit uint64) ([]byte, []byte, error) {
	n, rest, err := decodeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n > limit {
		return nil, nil, fmt.Errorf("%w: length %d", ErrOversize, n)
	}
	if uint64(len(rest)) < n {
		return nil, nil, ErrTruncated
	}
	return rest[:n], rest[n:], nil
}
