package cosm

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// Describe fetches the SID of the service behind r using the reserved
// "_cosm.describe" meta-operation — the "SID transfer" arrow of Fig. 3.
// Connections are drawn from pool, under the pool's retry/breaker
// policy: describing is read-only and idempotent, so connection-class
// failures are retried transparently.
func Describe(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) (*sidl.SID, error) {
	body, err := pool.Call(ctx, r.Endpoint, &wire.Request{Service: r.Service, Op: OpDescribe})
	if err != nil {
		return nil, fmt.Errorf("cosm: describe %s: %w", r, err)
	}
	var sid sidl.SID
	if err := sid.UnmarshalText(body); err != nil {
		return nil, fmt.Errorf("cosm: describe %s: %w", r, err)
	}
	return &sid, nil
}

// Ping probes liveness of the service behind r. Like Describe it is
// idempotent and runs under the pool's retry/breaker policy, so a
// returned error means the service stayed unreachable across the
// policy's attempts — not one unlucky packet.
func Ping(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) error {
	_, err := pool.Call(ctx, r.Endpoint, &wire.Request{Service: r.Service, Op: OpPing})
	return err
}

// Result is the outcome of one dynamic invocation.
type Result struct {
	// Value is the operation result (nil for void operations).
	Value *xcode.Value
	// Outs holds out/inout values in parameter order.
	Outs []*xcode.Value
}

// Out returns the out/inout value by parameter name.
func (r *Result) Out(op sidl.Op, name string) (*xcode.Value, error) {
	i := 0
	for _, p := range op.Params {
		if p.Dir == sidl.In {
			continue
		}
		if p.Name == name {
			return r.Outs[i], nil
		}
		i++
	}
	return nil, fmt.Errorf("%w: no out-parameter %q in op %s", ErrBadResult, name, op.Name)
}

// Conn is a client-side binding to one remote service: the reference,
// its SID, a session identity for FSM tracking, and the pool the
// transport client is drawn from. Conn performs dynamic marshalling
// only; protocol interception and UI generation live in the generic
// client built on top of it.
//
// Each invocation fetches the endpoint's client from the pool, so a
// binding survives a broken connection: the next Invoke dials fresh
// instead of failing forever on the poisoned client. For stateless
// services that is fully transparent. For FSM-guarded services the
// server keys protocol state by (remote, session); a redial changes
// the remote, so the server sees a fresh session in its initial state
// and rejects out-of-order operations — the binding fails safe rather
// than silently resuming mid-protocol.
type Conn struct {
	ref     ref.ServiceRef
	sid     *sidl.SID
	session string
	pool    *wire.Pool
}

// Bind opens a binding to r, fetching the SID from the service itself.
func Bind(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) (*Conn, error) {
	sid, err := Describe(ctx, pool, r)
	if err != nil {
		return nil, err
	}
	return BindWithSID(pool, r, sid)
}

// BindWithSID opens a binding using an already-known SID (for example
// one obtained from a browser listing). No network traffic occurs until
// the first invocation.
func BindWithSID(pool *wire.Pool, r ref.ServiceRef, sid *sidl.SID) (*Conn, error) {
	if sid == nil {
		return nil, ErrNilService
	}
	// Probe connectivity now so binding to a dead provider fails at
	// bind time (the trader's failover path depends on that), not on
	// the first invocation. The probe runs under the pool dialer's own
	// bound (BindWithSID takes no context by design: with a cached SID
	// no RPC happens here, only at most one dial).
	if _, err := pool.Get(context.Background(), r.Endpoint); err != nil {
		return nil, err
	}
	return &Conn{ref: r, sid: sid, session: newSessionID(), pool: pool}, nil
}

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable environment breakage.
		panic("cosm: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Ref returns the bound service reference.
func (c *Conn) Ref() ref.ServiceRef { return c.ref }

// SID returns the bound service's description.
func (c *Conn) SID() *sidl.SID { return c.sid }

// Session returns the binding's session identity.
func (c *Conn) Session() string { return c.session }

// Invoke calls opName with the given in/inout arguments (positionally).
// Argument types must conform to the declared parameter types; values of
// extended subtypes are projected to the declared base types before
// marshalling.
func (c *Conn) Invoke(ctx context.Context, opName string, args ...*xcode.Value) (*Result, error) {
	op, ok := c.sid.Op(opName)
	if !ok {
		return nil, fmt.Errorf("%w: %q in %s", ErrUnknownOp, opName, c.sid.ServiceName)
	}
	body, err := encodeCallBody(op, c.session, args)
	if err != nil {
		return nil, err
	}
	// One dial, one send, no transparent retry: the operation may not
	// be idempotent, and replaying it could execute it twice. Callers
	// that want recovery re-run their protocol from the top.
	client, err := c.pool.Get(ctx, c.ref.Endpoint)
	if err != nil {
		return nil, err
	}
	respBody, err := client.Call(ctx, &wire.Request{Service: c.ref.Service, Op: opName, Body: body})
	if err != nil {
		return nil, err
	}
	result, outs, err := decodeCallResult(op, respBody)
	if err != nil {
		return nil, err
	}
	return &Result{Value: result, Outs: outs}, nil
}
