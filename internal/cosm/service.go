// Package cosm is the core library of the COSM (Common Open Service
// Market) reproduction: the runtime that lets a node host services
// described by SIDs and lets clients bind to and dynamically invoke such
// services with no compiled stubs.
//
// The paper's central design decision (section 3.1) is that the Service
// Interface Description is a communicable first-class object. This
// package realises that: every hosted service answers the reserved
// "_cosm.describe" meta-operation with its own SID text, so any client —
// in particular the generic client of package genclient — can obtain the
// full description at bind time and marshal parameters dynamically.
// Operation invocations are encoded by package xcode, driven by the
// types in the SID; FSM protocol restrictions are enforced server-side
// per session (the client additionally intercepts violations locally).
package cosm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cosm/internal/fsm"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// Reserved meta-operation names. Operation names starting with
// "_cosm." never clash with SIDL identifiers (IDL identifiers cannot
// contain '.').
const (
	// OpDescribe returns the service's SID as SIDL text.
	OpDescribe = "_cosm.describe"
	// OpPing returns an empty body; used for liveness probes.
	OpPing = "_cosm.ping"
)

// Errors reported by service construction and dispatch.
var (
	ErrUnknownOp  = errors.New("cosm: unknown operation")
	ErrNoHandler  = errors.New("cosm: operation has no handler")
	ErrBadArgs    = errors.New("cosm: bad arguments")
	ErrBadResult  = errors.New("cosm: handler produced bad result")
	ErrNilService = errors.New("cosm: nil service")
)

// Call carries one invocation through a handler. In holds one value per
// in/inout parameter, positionally. The handler sets Result (for
// non-void operations) and fills Out (one slot per out/inout parameter,
// pre-populated with zero values).
type Call struct {
	// Ctx carries the caller's propagated deadline and cancellation (see
	// wire.Handler); long-running handlers should honour it.
	Ctx context.Context
	// Remote is the transport address of the calling node.
	Remote string
	// Session identifies the client binding for FSM tracking.
	Session string
	// Op is the operation signature being invoked.
	Op sidl.Op
	// In holds the decoded in/inout arguments.
	In []*xcode.Value
	// Result receives the operation result.
	Result *xcode.Value
	// Out holds out/inout results, pre-populated with zero values.
	Out []*xcode.Value
}

// Arg returns the in/inout argument by parameter name.
func (c *Call) Arg(name string) (*xcode.Value, error) {
	i := 0
	for _, p := range c.Op.Params {
		if p.Dir == sidl.Out {
			continue
		}
		if p.Name == name {
			return c.In[i], nil
		}
		i++
	}
	return nil, fmt.Errorf("%w: no in-parameter %q in op %s", ErrBadArgs, name, c.Op.Name)
}

// SetOut sets the out/inout result by parameter name.
func (c *Call) SetOut(name string, v *xcode.Value) error {
	i := 0
	for _, p := range c.Op.Params {
		if p.Dir == sidl.In {
			continue
		}
		if p.Name == name {
			if !v.Type.ConformsTo(p.Type) {
				return fmt.Errorf("%w: out %q has type %s, want %s", ErrBadResult, name, v.Type, p.Type)
			}
			c.Out[i] = v
			return nil
		}
		i++
	}
	return fmt.Errorf("%w: no out-parameter %q in op %s", ErrBadResult, name, c.Op.Name)
}

// OpHandler implements one operation. It runs concurrently with other
// calls; shared state must be synchronized by the implementation.
type OpHandler func(call *Call) error

// Service is a hosted COSM service: a SID plus an implementation of its
// operations. Create one with NewService, attach handlers with Handle,
// then host it on a Node.
type Service struct {
	sid      *sidl.SID
	enforce  bool
	handlers map[string]OpHandler
	sessions *sessionTable
}

// ServiceOption configures a Service.
type ServiceOption func(*Service)

// WithoutFSMEnforcement disables server-side FSM protocol enforcement.
// The generic client still intercepts violations locally; disabling the
// server-side check reproduces a trusting 1994-style server and is used
// by the ablation benchmarks.
func WithoutFSMEnforcement() ServiceOption {
	return func(s *Service) { s.enforce = false }
}

// NewService creates a service for a validated SID.
func NewService(sid *sidl.SID, opts ...ServiceOption) (*Service, error) {
	if sid == nil {
		return nil, ErrNilService
	}
	if err := sid.Validate(); err != nil {
		return nil, err
	}
	s := &Service{
		sid:      sid,
		enforce:  true,
		handlers: map[string]OpHandler{},
		sessions: newSessionTable(sid.FSM, defaultMaxSessions),
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// SID returns the service's description.
func (s *Service) SID() *sidl.SID { return s.sid }

// Handle attaches the handler for an operation declared in the SID.
func (s *Service) Handle(opName string, h OpHandler) error {
	if _, ok := s.sid.Op(opName); !ok {
		return fmt.Errorf("%w: %q not in SID %s", ErrUnknownOp, opName, s.sid.ServiceName)
	}
	if h == nil {
		return fmt.Errorf("cosm: nil handler for %q", opName)
	}
	s.handlers[opName] = h
	return nil
}

// MustHandle is Handle for static wiring; it panics on error.
func (s *Service) MustHandle(opName string, h OpHandler) {
	if err := s.Handle(opName, h); err != nil {
		panic(err)
	}
}

// serveCOSM dispatches one wire request. It implements wire.Handler via
// the adapter in node.go. ctx carries the caller's propagated deadline
// and is handed to the operation handler via Call.Ctx.
func (s *Service) serveCOSM(ctx context.Context, remote string, req *wire.Request) *wire.Response {
	switch req.Op {
	case OpDescribe:
		text, err := s.sid.MarshalText()
		if err != nil {
			return &wire.Response{Status: wire.StatusAppError, ErrMsg: err.Error()}
		}
		return &wire.Response{Status: wire.StatusOK, Body: text}
	case OpPing:
		return &wire.Response{Status: wire.StatusOK}
	}

	op, ok := s.sid.Op(req.Op)
	if !ok {
		return &wire.Response{Status: wire.StatusNoOp, ErrMsg: req.Op}
	}
	h, ok := s.handlers[req.Op]
	if !ok {
		return &wire.Response{Status: wire.StatusAppError, ErrMsg: "operation not implemented: " + req.Op}
	}

	session, in, err := decodeCallBody(op, req.Body)
	if err != nil {
		return &wire.Response{Status: wire.StatusBadRequest, ErrMsg: err.Error()}
	}

	// Server-side FSM enforcement: the authoritative protocol check of
	// section 4.2 (the generic client performs the same check locally to
	// reject violations before any network traffic).
	if s.enforce && s.sid.FSM.Restricted() {
		if err := s.sessions.step(remote, session, req.Op); err != nil {
			return &wire.Response{Status: wire.StatusProtocol, ErrMsg: err.Error()}
		}
	}

	call := &Call{Ctx: ctx, Remote: remote, Session: session, Op: op, In: in}
	for _, p := range op.Params {
		if p.Dir != sidl.In {
			call.Out = append(call.Out, xcode.Zero(p.Type))
		}
	}
	if err := h(call); err != nil {
		return &wire.Response{Status: wire.StatusAppError, ErrMsg: err.Error()}
	}

	body, err := encodeCallResult(op, call)
	if err != nil {
		return &wire.Response{Status: wire.StatusAppError, ErrMsg: err.Error()}
	}
	return &wire.Response{Status: wire.StatusOK, Body: body}
}

// Call body layout (request): session string, then each in/inout
// argument in parameter order, each length-prefixed so arguments can be
// decoded independently of struct layout drift.
//
// Result layout (response): result value (absent for void), then each
// out/inout value in parameter order, all length-prefixed.

func appendChunk(dst []byte, chunk []byte) []byte {
	dst = appendUvarint(dst, uint64(len(chunk)))
	return append(dst, chunk...)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func consumeUvarint(data []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(data); i++ {
		b := data[i]
		if i >= 9 {
			return 0, nil, fmt.Errorf("%w: uvarint overflow", ErrBadArgs)
		}
		v |= uint64(b&0x7F) << (7 * uint(i))
		if b < 0x80 {
			return v, data[i+1:], nil
		}
	}
	return 0, nil, fmt.Errorf("%w: truncated uvarint", ErrBadArgs)
}

func consumeChunk(data []byte) ([]byte, []byte, error) {
	n, rest, err := consumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("%w: truncated chunk", ErrBadArgs)
	}
	return rest[:n], rest[n:], nil
}

func encodeCallBody(op sidl.Op, session string, args []*xcode.Value) ([]byte, error) {
	inParams := make([]sidl.Param, 0, len(op.Params))
	for _, p := range op.Params {
		if p.Dir != sidl.Out {
			inParams = append(inParams, p)
		}
	}
	if len(args) != len(inParams) {
		return nil, fmt.Errorf("%w: op %s takes %d in-arguments, got %d", ErrBadArgs, op.Name, len(inParams), len(args))
	}
	body := appendChunk(nil, []byte(session))
	for i, p := range inParams {
		projected, err := args[i].Project(p.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: argument %q: %v", ErrBadArgs, p.Name, err)
		}
		body = appendChunk(body, xcode.Marshal(projected))
	}
	return body, nil
}

func decodeCallBody(op sidl.Op, body []byte) (session string, in []*xcode.Value, err error) {
	chunk, rest, err := consumeChunk(body)
	if err != nil {
		return "", nil, err
	}
	session = string(chunk)
	for _, p := range op.Params {
		if p.Dir == sidl.Out {
			continue
		}
		chunk, rest, err = consumeChunk(rest)
		if err != nil {
			return "", nil, fmt.Errorf("%w: argument %q: %v", ErrBadArgs, p.Name, err)
		}
		v, err := xcode.Unmarshal(p.Type, chunk)
		if err != nil {
			return "", nil, fmt.Errorf("%w: argument %q: %v", ErrBadArgs, p.Name, err)
		}
		in = append(in, v)
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", ErrBadArgs, len(rest))
	}
	return session, in, nil
}

func encodeCallResult(op sidl.Op, call *Call) ([]byte, error) {
	var body []byte
	if op.Result.Kind != sidl.Void {
		if call.Result == nil {
			return nil, fmt.Errorf("%w: op %s returned no result", ErrBadResult, op.Name)
		}
		projected, err := call.Result.Project(op.Result)
		if err != nil {
			return nil, fmt.Errorf("%w: result: %v", ErrBadResult, err)
		}
		body = appendChunk(body, xcode.Marshal(projected))
	}
	i := 0
	for _, p := range op.Params {
		if p.Dir == sidl.In {
			continue
		}
		out := call.Out[i]
		i++
		projected, err := out.Project(p.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: out %q: %v", ErrBadResult, p.Name, err)
		}
		body = appendChunk(body, xcode.Marshal(projected))
	}
	return body, nil
}

func decodeCallResult(op sidl.Op, body []byte) (result *xcode.Value, outs []*xcode.Value, err error) {
	rest := body
	if op.Result.Kind != sidl.Void {
		var chunk []byte
		chunk, rest, err = consumeChunk(rest)
		if err != nil {
			return nil, nil, err
		}
		result, err = xcode.Unmarshal(op.Result, chunk)
		if err != nil {
			return nil, nil, fmt.Errorf("result: %w", err)
		}
	}
	for _, p := range op.Params {
		if p.Dir == sidl.In {
			continue
		}
		var chunk []byte
		chunk, rest, err = consumeChunk(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("out %q: %w", p.Name, err)
		}
		v, err := xcode.Unmarshal(p.Type, chunk)
		if err != nil {
			return nil, nil, fmt.Errorf("out %q: %w", p.Name, err)
		}
		outs = append(outs, v)
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes in result", ErrBadResult, len(rest))
	}
	return result, outs, nil
}

// sessionTable tracks FSM sessions per (remote, session) pair with a
// bounded size: the least recently used session is evicted when the
// table is full, so a misbehaving client cannot exhaust server memory.
type sessionTable struct {
	spec *fsm.Spec
	max  int

	mu    sync.Mutex
	table map[string]*sessionEntry
	// ring is a doubly linked LRU list; head.next is most recent.
	head sessionEntry
}

type sessionEntry struct {
	key        string
	session    *fsm.Session
	prev, next *sessionEntry
}

const defaultMaxSessions = 4096

func newSessionTable(spec *fsm.Spec, max int) *sessionTable {
	t := &sessionTable{spec: spec, max: max, table: map[string]*sessionEntry{}}
	t.head.prev = &t.head
	t.head.next = &t.head
	return t
}

func (t *sessionTable) step(remote, session, op string) error {
	key := remote + "\x00" + session
	t.mu.Lock()
	e, ok := t.table[key]
	if !ok {
		e = &sessionEntry{key: key, session: fsm.NewSession(t.spec)}
		t.table[key] = e
		t.insertFront(e)
		if len(t.table) > t.max {
			oldest := t.head.prev
			t.unlink(oldest)
			delete(t.table, oldest.key)
		}
	} else {
		t.unlink(e)
		t.insertFront(e)
	}
	t.mu.Unlock()
	// Step outside the table lock: the session has its own mutex.
	return e.session.Step(op)
}

func (t *sessionTable) insertFront(e *sessionEntry) {
	e.prev = &t.head
	e.next = t.head.next
	t.head.next.prev = e
	t.head.next = e
}

func (t *sessionTable) unlink(e *sessionEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}
