package cosm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/wire"
)

// ErrNotServing is returned by reference-producing methods before the
// node has a bound endpoint.
var ErrNotServing = errors.New("cosm: node is not serving yet")

// Node is one participant in the open service market: a wire server
// hosting any number of SID-described services, plus a client pool for
// outbound bindings. Traders, browsers, name servers and application
// servers are all services hosted on Nodes.
type Node struct {
	server *wire.Server
	pool   *wire.Pool
}

// nodeConfig accumulates options so they compose (a log option and an
// admission option must both reach the one wire.Server).
type nodeConfig struct {
	serverOpts []wire.ServerOption
	poolOpts   []wire.PoolOption
}

// NodeOption configures a Node.
type NodeOption func(*nodeConfig)

// WithNodeLog directs wire-level diagnostics to logf.
func WithNodeLog(logf func(format string, args ...any)) NodeOption {
	return func(c *nodeConfig) {
		c.serverOpts = append(c.serverOpts, wire.WithServerLog(logf))
	}
}

// WithNodeLogger routes the node's wire server through the structured
// logger l (per-request access log with trace IDs, panic stacks; see
// wire.WithServerLogger).
func WithNodeLogger(l *obs.Logger) NodeOption {
	return func(c *nodeConfig) {
		c.serverOpts = append(c.serverOpts, wire.WithServerLogger(l))
	}
}

// WithNodeAdmission bounds the node's inbound concurrency (see
// wire.AdmissionPolicy): beyond the limits the node sheds requests with
// wire.StatusOverloaded instead of accumulating unbounded goroutines.
func WithNodeAdmission(p wire.AdmissionPolicy) NodeOption {
	return func(c *nodeConfig) {
		c.serverOpts = append(c.serverOpts, wire.WithAdmission(p))
	}
}

// WithNodeMetrics instruments both directions of the node's wire layer
// against reg: inbound server families (cosm_server_*) and outbound
// pool families (cosm_client_*). A nil reg disables instrumentation.
func WithNodeMetrics(reg *obs.Registry) NodeOption {
	return func(c *nodeConfig) {
		c.serverOpts = append(c.serverOpts, wire.WithServerMetrics(wire.NewServerMetrics(reg)))
		c.poolOpts = append(c.poolOpts, wire.WithPoolMetrics(wire.NewClientMetrics(reg)))
	}
}

// WithNodeRecorder attaches the flight recorder to both directions of
// the node's wire layer: outbound calls record client-kind spans,
// inbound handled requests record server-kind spans, and the shared
// trace IDs let obs.BuildSpanTree reassemble a federated request into
// one tree. A nil r records nothing and costs nothing.
func WithNodeRecorder(r *obs.SpanRecorder) NodeOption {
	return func(c *nodeConfig) {
		c.serverOpts = append(c.serverOpts, wire.WithServerRecorder(r))
		c.poolOpts = append(c.poolOpts, wire.WithPoolRecorder(r))
	}
}

// WithNodeEvents feeds wire-layer lifecycle events (circuit-breaker
// transitions) into the node's cluster event timeline.
func WithNodeEvents(ev *obs.EventLog) NodeOption {
	return func(c *nodeConfig) {
		c.poolOpts = append(c.poolOpts, wire.WithPoolEvents(ev))
	}
}

// WithNodeSlowThreshold arms the server-side slow-request watchdog (see
// wire.WithSlowThreshold). 0 disables it.
func WithNodeSlowThreshold(d time.Duration) NodeOption {
	return func(c *nodeConfig) {
		c.serverOpts = append(c.serverOpts, wire.WithSlowThreshold(d))
	}
}

// WithNodePool applies extra options to the node's outbound pool
// (dialers, call policies — the fault-injecting harnesses plug in
// here).
func WithNodePool(opts ...wire.PoolOption) NodeOption {
	return func(c *nodeConfig) {
		c.poolOpts = append(c.poolOpts, opts...)
	}
}

// NewNode returns a node with no services.
func NewNode(opts ...NodeOption) *Node {
	var cfg nodeConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Node{
		server: wire.NewServer(cfg.serverOpts...),
		pool:   wire.NewPool(cfg.poolOpts...),
	}
}

// Host registers a service under a name on this node. The name is the
// service component of references to it; by convention it equals the
// SID's service name for application services and a well-known
// "cosm.<role>" name for infrastructure services.
func (n *Node) Host(name string, svc *Service) error {
	if svc == nil {
		return ErrNilService
	}
	return n.server.Register(name, wire.HandlerFunc(svc.serveCOSM))
}

// Unhost removes a hosted service.
func (n *Node) Unhost(name string) { n.server.Unregister(name) }

// ListenAndServe binds the node to an endpoint ("tcp:host:port" or
// "loop:name") and starts serving. It returns the bound endpoint.
func (n *Node) ListenAndServe(endpoint string) (string, error) {
	return n.server.ListenAndServe(endpoint)
}

// Endpoint returns the node's bound endpoint ("" before ListenAndServe).
func (n *Node) Endpoint() string { return n.server.Endpoint() }

// RefFor returns the globally identifying reference for a service hosted
// on this node.
func (n *Node) RefFor(serviceName string) (ref.ServiceRef, error) {
	ep := n.Endpoint()
	if ep == "" {
		return ref.ServiceRef{}, ErrNotServing
	}
	return ref.New(ep, serviceName), nil
}

// MustRefFor is RefFor for static wiring; it panics before serving.
func (n *Node) MustRefFor(serviceName string) ref.ServiceRef {
	r, err := n.RefFor(serviceName)
	if err != nil {
		panic(err)
	}
	return r
}

// Pool exposes the node's outbound connection pool (shared by all Conns
// the node opens).
func (n *Node) Pool() *wire.Pool { return n.pool }

// OnDrain registers fn to run during Shutdown after in-flight requests
// have drained and before connections close (see wire.Server.OnDrain).
// Daemons hook their journal's final flush+fsync here.
func (n *Node) OnDrain(fn func()) { n.server.OnDrain(fn) }

// ServerStats returns the node's inbound overload counters.
func (n *Node) ServerStats() wire.ServerStats { return n.server.Stats() }

// Draining reports whether the node is shedding inbound work because a
// Shutdown is in progress (the daemons' /healthz check).
func (n *Node) Draining() bool { return n.server.Draining() }

// Shutdown drains the node gracefully: new inbound requests are shed,
// in-flight handlers finish under ctx's deadline, and then everything —
// listener, inbound connections, pooled outbound connections — is torn
// down. Deregistration (withdrawing offers, SIDs) is the caller's job
// and must happen *before* Shutdown so clients fail over instead of
// finding a draining endpoint.
func (n *Node) Shutdown(ctx context.Context) error {
	err := n.server.Shutdown(ctx)
	if perr := n.pool.Close(); err == nil {
		err = perr
	}
	if err != nil {
		return fmt.Errorf("cosm: shutdown node: %w", err)
	}
	return nil
}

// Close shuts the node down immediately: the listener, all inbound
// connections (their in-flight work is cancelled), all pooled outbound
// connections. Use Shutdown for a graceful drain.
func (n *Node) Close() error {
	err := n.server.Close()
	if perr := n.pool.Close(); err == nil {
		err = perr
	}
	if err != nil {
		return fmt.Errorf("cosm: close node: %w", err)
	}
	return nil
}
