package cosm

import (
	"errors"
	"fmt"

	"cosm/internal/ref"
	"cosm/internal/wire"
)

// ErrNotServing is returned by reference-producing methods before the
// node has a bound endpoint.
var ErrNotServing = errors.New("cosm: node is not serving yet")

// Node is one participant in the open service market: a wire server
// hosting any number of SID-described services, plus a client pool for
// outbound bindings. Traders, browsers, name servers and application
// servers are all services hosted on Nodes.
type Node struct {
	server *wire.Server
	pool   *wire.Pool
}

// NodeOption configures a Node.
type NodeOption func(*Node)

// WithNodeLog directs wire-level diagnostics to logf.
func WithNodeLog(logf func(format string, args ...any)) NodeOption {
	return func(n *Node) { n.server = wire.NewServer(wire.WithServerLog(logf)) }
}

// NewNode returns a node with no services.
func NewNode(opts ...NodeOption) *Node {
	n := &Node{
		server: wire.NewServer(),
		pool:   wire.NewPool(),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Host registers a service under a name on this node. The name is the
// service component of references to it; by convention it equals the
// SID's service name for application services and a well-known
// "cosm.<role>" name for infrastructure services.
func (n *Node) Host(name string, svc *Service) error {
	if svc == nil {
		return ErrNilService
	}
	return n.server.Register(name, wire.HandlerFunc(svc.serveCOSM))
}

// Unhost removes a hosted service.
func (n *Node) Unhost(name string) { n.server.Unregister(name) }

// ListenAndServe binds the node to an endpoint ("tcp:host:port" or
// "loop:name") and starts serving. It returns the bound endpoint.
func (n *Node) ListenAndServe(endpoint string) (string, error) {
	return n.server.ListenAndServe(endpoint)
}

// Endpoint returns the node's bound endpoint ("" before ListenAndServe).
func (n *Node) Endpoint() string { return n.server.Endpoint() }

// RefFor returns the globally identifying reference for a service hosted
// on this node.
func (n *Node) RefFor(serviceName string) (ref.ServiceRef, error) {
	ep := n.Endpoint()
	if ep == "" {
		return ref.ServiceRef{}, ErrNotServing
	}
	return ref.New(ep, serviceName), nil
}

// MustRefFor is RefFor for static wiring; it panics before serving.
func (n *Node) MustRefFor(serviceName string) ref.ServiceRef {
	r, err := n.RefFor(serviceName)
	if err != nil {
		panic(err)
	}
	return r
}

// Pool exposes the node's outbound connection pool (shared by all Conns
// the node opens).
func (n *Node) Pool() *wire.Pool { return n.pool }

// Close shuts the node down: the listener, all inbound connections, all
// pooled outbound connections.
func (n *Node) Close() error {
	err := n.server.Close()
	if perr := n.pool.Close(); err == nil {
		err = perr
	}
	if err != nil {
		return fmt.Errorf("cosm: close node: %w", err)
	}
	return nil
}
