package cosm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

const calcIDL = `
module Calc {
    struct Pair_t { long a; long b; };
    interface COSM_Operations {
        long Add(in Pair_t p);
        long Div(in Pair_t p);
        void Note(in string text);
        long Split(in long v, out long half, inout long acc);
    };
};
`

// newCalcService builds a small arithmetic service used across tests.
func newCalcService(t *testing.T) *Service {
	t.Helper()
	sid, err := sidl.Parse(calcIDL)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	int32T := sidl.Basic(sidl.Int32)
	svc.MustHandle("Add", func(call *Call) error {
		p, err := call.Arg("p")
		if err != nil {
			return err
		}
		a, _ := p.Field("a")
		b, _ := p.Field("b")
		call.Result = xcode.NewInt(int32T, a.Int+b.Int)
		return nil
	})
	svc.MustHandle("Div", func(call *Call) error {
		p, err := call.Arg("p")
		if err != nil {
			return err
		}
		a, _ := p.Field("a")
		b, _ := p.Field("b")
		if b.Int == 0 {
			return errors.New("division by zero")
		}
		call.Result = xcode.NewInt(int32T, a.Int/b.Int)
		return nil
	})
	svc.MustHandle("Note", func(call *Call) error { return nil })
	svc.MustHandle("Split", func(call *Call) error {
		v, err := call.Arg("v")
		if err != nil {
			return err
		}
		acc, err := call.Arg("acc")
		if err != nil {
			return err
		}
		if err := call.SetOut("half", xcode.NewInt(int32T, v.Int/2)); err != nil {
			return err
		}
		if err := call.SetOut("acc", xcode.NewInt(int32T, acc.Int+v.Int)); err != nil {
			return err
		}
		call.Result = xcode.NewInt(int32T, v.Int)
		return nil
	})
	return svc
}

func startCalcNode(t *testing.T, loopName string) (*Node, ref.ServiceRef) {
	t.Helper()
	node := NewNode(WithNodeLog(func(string, ...any) {}))
	if err := node.Host("Calc", newCalcService(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor("Calc")
}

func TestDescribeAndInvoke(t *testing.T) {
	node, calcRef := startCalcNode(t, "calc-basic")
	ctx := context.Background()

	sid, err := Describe(ctx, node.Pool(), calcRef)
	if err != nil {
		t.Fatal(err)
	}
	if sid.ServiceName != "Calc" || len(sid.Ops) != 4 {
		t.Fatalf("described SID = %s with %d ops", sid.ServiceName, len(sid.Ops))
	}

	conn, err := Bind(ctx, node.Pool(), calcRef)
	if err != nil {
		t.Fatal(err)
	}
	pairT := sid.Type("Pair_t")
	arg, err := xcode.NewStruct(pairT, map[string]*xcode.Value{
		"a": xcode.NewInt(sidl.Basic(sidl.Int32), 20),
		"b": xcode.NewInt(sidl.Basic(sidl.Int32), 22),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.Invoke(ctx, "Add", arg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Int != 42 {
		t.Fatalf("Add = %d", res.Value.Int)
	}
}

func TestInvokeVoidAndError(t *testing.T) {
	node, calcRef := startCalcNode(t, "calc-err")
	ctx := context.Background()
	conn, err := Bind(ctx, node.Pool(), calcRef)
	if err != nil {
		t.Fatal(err)
	}
	// Void result.
	res, err := conn.Invoke(ctx, "Note", xcode.NewString(sidl.Basic(sidl.String), "hello"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != nil {
		t.Fatalf("void op returned %s", res.Value)
	}
	// Application error propagates with its message.
	pairT := conn.SID().Type("Pair_t")
	zero := xcode.Zero(pairT)
	_, err = conn.Invoke(ctx, "Div", zero)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Status != wire.StatusAppError || !strings.Contains(re.Msg, "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeOutAndInout(t *testing.T) {
	node, calcRef := startCalcNode(t, "calc-out")
	ctx := context.Background()
	conn, err := Bind(ctx, node.Pool(), calcRef)
	if err != nil {
		t.Fatal(err)
	}
	int32T := sidl.Basic(sidl.Int32)
	res, err := conn.Invoke(ctx, "Split", xcode.NewInt(int32T, 10), xcode.NewInt(int32T, 5))
	if err != nil {
		t.Fatal(err)
	}
	op, _ := conn.SID().Op("Split")
	if res.Value.Int != 10 {
		t.Fatalf("result = %d", res.Value.Int)
	}
	half, err := res.Out(op, "half")
	if err != nil || half.Int != 5 {
		t.Fatalf("half = %v, %v", half, err)
	}
	acc, err := res.Out(op, "acc")
	if err != nil || acc.Int != 15 {
		t.Fatalf("acc = %v, %v", acc, err)
	}
	if _, err := res.Out(op, "v"); !errors.Is(err, ErrBadResult) {
		t.Fatalf("Out(v) err = %v", err)
	}
}

func TestInvokeArgErrors(t *testing.T) {
	node, calcRef := startCalcNode(t, "calc-args")
	ctx := context.Background()
	conn, err := Bind(ctx, node.Pool(), calcRef)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown operation.
	if _, err := conn.Invoke(ctx, "Mul"); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v", err)
	}
	// Wrong arity.
	if _, err := conn.Invoke(ctx, "Add"); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
	// Non-conforming argument type.
	if _, err := conn.Invoke(ctx, "Add", xcode.NewString(sidl.Basic(sidl.String), "x")); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeSubtypeArgumentProjected(t *testing.T) {
	// A client may pass a value of an extended record type where the
	// base type is declared; the runtime projects it (section 3.1).
	node, calcRef := startCalcNode(t, "calc-subtype")
	ctx := context.Background()
	conn, err := Bind(ctx, node.Pool(), calcRef)
	if err != nil {
		t.Fatal(err)
	}
	extT := sidl.StructOf("ExtendedPair",
		sidl.Field{Name: "a", Type: sidl.Basic(sidl.Int32)},
		sidl.Field{Name: "b", Type: sidl.Basic(sidl.Int32)},
		sidl.Field{Name: "note", Type: sidl.Basic(sidl.String)},
	)
	arg, err := xcode.NewStruct(extT, map[string]*xcode.Value{
		"a":    xcode.NewInt(sidl.Basic(sidl.Int32), 1),
		"b":    xcode.NewInt(sidl.Basic(sidl.Int32), 2),
		"note": xcode.NewString(sidl.Basic(sidl.String), "ignored by base service"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.Invoke(ctx, "Add", arg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Int != 3 {
		t.Fatalf("Add = %d", res.Value.Int)
	}
}

func TestServiceFSMEnforcement(t *testing.T) {
	sid := sidl.CarRentalSID()
	svc, err := NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	selectReturnT := sid.Type("SelectCarReturn_t")
	bookReturnT := sid.Type("BookCarReturn_t")
	svc.MustHandle("SelectCar", func(call *Call) error {
		call.Result = xcode.Zero(selectReturnT)
		return nil
	})
	svc.MustHandle("Commit", func(call *Call) error {
		call.Result = xcode.Zero(bookReturnT)
		return nil
	})

	node := NewNode(WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:fsm-enforce"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ctx := context.Background()
	conn, err := Bind(ctx, node.Pool(), node.MustRefFor("CarRentalService"))
	if err != nil {
		t.Fatal(err)
	}

	// Commit before SelectCar violates the FSM and is rejected by the
	// server with StatusProtocol.
	_, err = conn.Invoke(ctx, "Commit")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Status != wire.StatusProtocol {
		t.Fatalf("err = %v, want protocol violation", err)
	}

	// The legal sequence succeeds.
	sel := xcode.Zero(sid.Type("SelectCar_t"))
	if _, err := conn.Invoke(ctx, "SelectCar", sel); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Invoke(ctx, "Commit"); err != nil {
		t.Fatal(err)
	}

	// Sessions are independent: a second binding starts in INIT.
	conn2, err := Bind(ctx, node.Pool(), node.MustRefFor("CarRentalService"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Invoke(ctx, "Commit"); err == nil {
		t.Fatal("fresh session must start in INIT")
	}
}

func TestWithoutFSMEnforcement(t *testing.T) {
	sid := sidl.CarRentalSID()
	svc, err := NewService(sid, WithoutFSMEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	svc.MustHandle("Commit", func(call *Call) error {
		call.Result = xcode.Zero(sid.Type("BookCarReturn_t"))
		return nil
	})
	node := NewNode(WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:fsm-off"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	conn, err := Bind(context.Background(), node.Pool(), node.MustRefFor("CarRentalService"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Invoke(context.Background(), "Commit"); err != nil {
		t.Fatalf("enforcement disabled, Commit should pass: %v", err)
	}
}

func TestServiceConstructionErrors(t *testing.T) {
	if _, err := NewService(nil); !errors.Is(err, ErrNilService) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewService(&sidl.SID{}); err == nil {
		t.Fatal("invalid SID must fail")
	}
	svc := newCalcService(t)
	if err := svc.Handle("NoSuchOp", func(*Call) error { return nil }); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v", err)
	}
	if err := svc.Handle("Add", nil); err == nil {
		t.Fatal("nil handler must fail")
	}
}

func TestUnimplementedOp(t *testing.T) {
	sid, err := sidl.Parse(calcIDL)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(WithNodeLog(func(string, ...any) {}))
	if err := node.Host("Calc", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:unimpl"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	conn, err := Bind(context.Background(), node.Pool(), node.MustRefFor("Calc"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Invoke(context.Background(), "Note", xcode.NewString(sidl.Basic(sidl.String), "x"))
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Status != wire.StatusAppError || !strings.Contains(re.Msg, "not implemented") {
		t.Fatalf("err = %v", err)
	}
}

func TestNodeRefBeforeServe(t *testing.T) {
	node := NewNode()
	defer node.Close()
	if _, err := node.RefFor("x"); !errors.Is(err, ErrNotServing) {
		t.Fatalf("err = %v", err)
	}
}

func TestPingMetaOp(t *testing.T) {
	node, calcRef := startCalcNode(t, "calc-ping")
	if err := Ping(context.Background(), node.Pool(), calcRef); err != nil {
		t.Fatal(err)
	}
	bad := ref.New(calcRef.Endpoint, "NoSuchService")
	if err := Ping(context.Background(), node.Pool(), bad); err == nil {
		t.Fatal("ping of unknown service must fail")
	}
}

func TestConcurrentInvocations(t *testing.T) {
	node, calcRef := startCalcNode(t, "calc-conc")
	ctx := context.Background()
	conn, err := Bind(ctx, node.Pool(), calcRef)
	if err != nil {
		t.Fatal(err)
	}
	pairT := conn.SID().Type("Pair_t")
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arg, err := xcode.NewStruct(pairT, map[string]*xcode.Value{
				"a": xcode.NewInt(sidl.Basic(sidl.Int32), int64(i)),
				"b": xcode.NewInt(sidl.Basic(sidl.Int32), int64(i)),
			})
			if err != nil {
				errs[i] = err
				return
			}
			res, err := conn.Invoke(ctx, "Add", arg)
			if err != nil {
				errs[i] = err
				return
			}
			if res.Value.Int != int64(2*i) {
				errs[i] = fmt.Errorf("Add(%d,%d) = %d", i, i, res.Value.Int)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
	}
}

func TestSessionTableEviction(t *testing.T) {
	spec := sidl.CarRentalSID().FSM
	table := newSessionTable(spec, 2)
	// Three distinct sessions with capacity two: the first is evicted.
	if err := table.step("r1", "s1", "SelectCar"); err != nil {
		t.Fatal(err)
	}
	if err := table.step("r1", "s2", "SelectCar"); err != nil {
		t.Fatal(err)
	}
	if err := table.step("r1", "s3", "SelectCar"); err != nil {
		t.Fatal(err)
	}
	if len(table.table) != 2 {
		t.Fatalf("table size = %d, want 2", len(table.table))
	}
	// s1 was evicted; a new step for it starts a fresh session in INIT,
	// so Commit is illegal again.
	if err := table.step("r1", "s1", "Commit"); err == nil {
		t.Fatal("evicted session must restart at INIT")
	}
	// s3 is still live and in SELECTED.
	if err := table.step("r1", "s3", "Commit"); err != nil {
		t.Fatalf("live session lost state: %v", err)
	}
}

func TestChunkCodecErrors(t *testing.T) {
	if _, _, err := consumeChunk(nil); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := consumeChunk([]byte{5, 1}); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := consumeUvarint([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}); !errors.Is(err, ErrBadArgs) {
		t.Fatalf("overflow err = %v", err)
	}
	// Round trip sanity for multi-byte varints.
	data := appendUvarint(nil, 1<<40)
	v, rest, err := consumeUvarint(data)
	if err != nil || v != 1<<40 || len(rest) != 0 {
		t.Fatalf("uvarint round trip: %d %v %v", v, rest, err)
	}
}
