package typemgr

import (
	"errors"
	"testing"

	"cosm/internal/sidl"
)

// attrType builds a minimal service type with int attributes by name.
func attrType(name, super string, attrs ...string) *ServiceType {
	st := &ServiceType{Name: name, Super: super}
	for _, a := range attrs {
		st.Attrs = append(st.Attrs, AttrDef{Name: a, Type: sidl.Basic(sidl.Int64)})
	}
	return st
}

// diamondRepo builds a diamond-shaped conformance graph:
//
//	    A{x}
//	   /    \
//	B{x,y} C{x,z}     (both declare Super=A)
//	   \    /
//	  D{x,y,z}        (declares Super=B, structurally conforms to C)
func diamondRepo(t *testing.T) *Repo {
	t.Helper()
	r := NewRepo()
	for _, st := range []*ServiceType{
		attrType("A", "", "x"),
		attrType("B", "A", "x", "y"),
		attrType("C", "A", "x", "z"),
		attrType("D", "B", "x", "y", "z"),
	} {
		if err := r.Define(st); err != nil {
			t.Fatalf("Define(%s): %v", st.Name, err)
		}
	}
	return r
}

func closureNames(cl []ConformantType) []string {
	out := make([]string, len(cl))
	for i, c := range cl {
		out[i] = c.Name
	}
	return out
}

func TestConformingTypesDiamond(t *testing.T) {
	r := diamondRepo(t)

	cl, err := r.ConformingTypes("A")
	if err != nil {
		t.Fatalf("ConformingTypes(A): %v", err)
	}
	want := []string{"A", "B", "C", "D"}
	got := closureNames(cl)
	if len(got) != len(want) {
		t.Fatalf("closure(A) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("closure(A) = %v, want %v", got, want)
		}
	}
	// The base is depth 0, B/C are depth 1, D is depth 2 via B.
	if cl[0].Depth != 0 || cl[1].Depth != 1 || cl[2].Depth != 1 || cl[3].Depth != 2 {
		t.Fatalf("closure(A) depths wrong: %+v", cl)
	}

	// D reaches C structurally only (its declared chain runs D→B→A).
	clC, err := r.ConformingTypes("C")
	if err != nil {
		t.Fatalf("ConformingTypes(C): %v", err)
	}
	foundD := false
	for _, c := range clC {
		if c.Name == "D" {
			foundD = true
			if !c.Structural {
				t.Fatalf("D in closure(C) should be structural-only: %+v", c)
			}
		}
	}
	if !foundD {
		t.Fatalf("closure(C) = %+v, want D via structural conformance", clC)
	}
}

func TestConformingTypesAgreesWithConforms(t *testing.T) {
	r := diamondRepo(t)
	for _, base := range r.Names() {
		inClosure := map[string]bool{}
		cl, err := r.ConformingTypes(base)
		if err != nil {
			t.Fatalf("ConformingTypes(%s): %v", base, err)
		}
		for _, c := range cl {
			inClosure[c.Name] = true
		}
		for _, sub := range r.Names() {
			conf, err := r.Conforms(sub, base)
			if err != nil {
				t.Fatalf("Conforms(%s, %s): %v", sub, base, err)
			}
			if conf != inClosure[sub] {
				t.Fatalf("Conforms(%s, %s) = %v but closure membership = %v",
					sub, base, conf, inClosure[sub])
			}
			if r.Covers(base, sub) != conf {
				t.Fatalf("Covers(%s, %s) disagrees with Conforms", base, sub)
			}
		}
	}
}

func TestConformingTypesInvalidation(t *testing.T) {
	r := diamondRepo(t)
	before, err := r.ConformingTypes("A")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Define(attrType("E", "C", "x", "z", "w")); err != nil {
		t.Fatalf("Define(E): %v", err)
	}
	after, err := r.ConformingTypes("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("closure(A) not invalidated on Define: before %v, after %v",
			closureNames(before), closureNames(after))
	}
	if err := r.Remove("E"); err != nil {
		t.Fatalf("Remove(E): %v", err)
	}
	final, err := r.ConformingTypes("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(before) {
		t.Fatalf("closure(A) not invalidated on Remove: %v", closureNames(final))
	}
}

func TestConformingTypesUnknownBase(t *testing.T) {
	r := diamondRepo(t)
	if _, err := r.ConformingTypes("Nope"); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("ConformingTypes(unknown) = %v, want ErrTypeUnknown", err)
	}
	// Negative result is cached; a second call must answer the same.
	if _, err := r.ConformingTypes("Nope"); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("cached ConformingTypes(unknown) = %v, want ErrTypeUnknown", err)
	}
	if r.Covers("Nope", "A") {
		t.Fatal("Covers(unknown base) should be false")
	}
	// Unknown sub against a known base: not covered, no panic.
	if r.Covers("A", "Nope") {
		t.Fatal("Covers(A, unknown sub) should be false")
	}
}

func TestDefineRejectsSelfCycle(t *testing.T) {
	r := NewRepo()
	err := r.Define(attrType("Loop", "Loop", "x"))
	if !errors.Is(err, ErrTypeCycle) {
		t.Fatalf("Define(self-super) = %v, want ErrTypeCycle", err)
	}
}

// TestHierarchyCycleRejected corrupts a repository directly (the public
// Define path cannot create a loop: supertypes must pre-exist and names
// are immutable) and proves every hierarchy walk fails loudly with
// ErrTypeCycle instead of spinning.
func TestHierarchyCycleRejected(t *testing.T) {
	r := NewRepo()
	if err := r.Define(attrType("Z", "", "zz")); err != nil {
		t.Fatal(err)
	}
	r.types["A"] = attrType("A", "B", "x")
	r.types["B"] = attrType("B", "A", "x")
	r.gen.Add(1)

	// Building Z's closure must walk A's chain A→B→A and bail out.
	if _, err := r.ConformingTypes("Z"); !errors.Is(err, ErrTypeCycle) {
		t.Fatalf("ConformingTypes over cycle = %v, want ErrTypeCycle", err)
	}
	if _, err := r.Conforms("A", "Z"); !errors.Is(err, ErrTypeCycle) {
		t.Fatalf("Conforms over cycle = %v, want ErrTypeCycle", err)
	}
	// A later Define that would hang off the loop is rejected too.
	if err := r.Define(attrType("C", "A", "x")); !errors.Is(err, ErrTypeCycle) {
		t.Fatalf("Define under cycle = %v, want ErrTypeCycle", err)
	}
}
