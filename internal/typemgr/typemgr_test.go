package typemgr

import (
	"errors"
	"fmt"
	"testing"

	"cosm/internal/sidl"
)

// carRentalType builds the paper's CarRentalService type as defined in
// section 2.1.
func carRentalType() *ServiceType {
	carModel := sidl.EnumOf("CarModel_t", "AUDI", "FIAT_Uno", "VW_Golf")
	currency := sidl.EnumOf("Currency_t", "USD", "DEM", "FF", "SFR", "GBP")
	return &ServiceType{
		Name: "CarRentalService",
		Attrs: []AttrDef{
			{Name: "CarModel", Type: carModel},
			{Name: "AverageMilage", Type: sidl.Basic(sidl.Int64)},
			{Name: "ChargePerDay", Type: sidl.Basic(sidl.Float64)},
			{Name: "ChargeCurrency", Type: currency},
		},
		Signature: []sidl.Op{
			{Name: "SelectCar", Result: sidl.Basic(sidl.Bool),
				Params: []sidl.Param{{Name: "selection", Dir: sidl.In, Type: sidl.Basic(sidl.String)}}},
			{Name: "Commit", Result: sidl.Basic(sidl.Bool)},
		},
	}
}

func TestDefineLookupRemove(t *testing.T) {
	r := NewRepo()
	st := carRentalType()
	if err := r.Define(st); err != nil {
		t.Fatal(err)
	}
	if err := r.Define(st); !errors.Is(err, ErrTypeExists) {
		t.Fatalf("dup Define err = %v", err)
	}
	got, err := r.Lookup("CarRentalService")
	if err != nil || got.Name != "CarRentalService" {
		t.Fatalf("Lookup = %+v, %v", got, err)
	}
	if _, err := r.Lookup("Ghost"); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("err = %v", err)
	}
	if got := r.Names(); len(got) != 1 || got[0] != "CarRentalService" {
		t.Fatalf("Names = %v", got)
	}
	if err := r.Remove("Ghost"); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("Remove(Ghost) err = %v", err)
	}
	if err := r.Remove("CarRentalService"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestValidateRejectsMalformedTypes(t *testing.T) {
	r := NewRepo()
	tests := []struct {
		name string
		st   *ServiceType
	}{
		{"empty name", &ServiceType{}},
		{"dup attr", &ServiceType{Name: "T", Attrs: []AttrDef{
			{Name: "a", Type: sidl.Basic(sidl.Int32)},
			{Name: "a", Type: sidl.Basic(sidl.Int32)},
		}}},
		{"nil attr type", &ServiceType{Name: "T", Attrs: []AttrDef{{Name: "a"}}}},
		{"dup op", &ServiceType{Name: "T", Signature: []sidl.Op{
			{Name: "F", Result: sidl.Basic(sidl.Void)},
			{Name: "F", Result: sidl.Basic(sidl.Void)},
		}}},
		{"nil result", &ServiceType{Name: "T", Signature: []sidl.Op{{Name: "F"}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := r.Define(tt.st); !errors.Is(err, ErrBadType) {
				t.Fatalf("err = %v, want ErrBadType", err)
			}
		})
	}
}

func TestSubtypeHierarchy(t *testing.T) {
	r := NewRepo()
	base := carRentalType()
	if err := r.Define(base); err != nil {
		t.Fatal(err)
	}

	// A luxury subtype: same signature plus an extra attribute.
	lux := carRentalType()
	lux.Name = "LuxuryCarRentalService"
	lux.Super = "CarRentalService"
	lux.Attrs = append(lux.Attrs, AttrDef{Name: "Chauffeur", Type: sidl.Basic(sidl.Bool)})
	if err := r.Define(lux); err != nil {
		t.Fatal(err)
	}

	ok, err := r.Conforms("LuxuryCarRentalService", "CarRentalService")
	if err != nil || !ok {
		t.Fatalf("Conforms = %v, %v", ok, err)
	}
	ok, err = r.Conforms("CarRentalService", "LuxuryCarRentalService")
	if err != nil || ok {
		t.Fatalf("reverse Conforms = %v, %v", ok, err)
	}
	if ok, _ := r.Conforms("CarRentalService", "CarRentalService"); !ok {
		t.Fatal("reflexive conformance must hold")
	}
	if _, err := r.Conforms("Ghost", "CarRentalService"); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("err = %v", err)
	}

	// Supertypes with registered subtypes cannot be removed.
	if err := r.Remove("CarRentalService"); !errors.Is(err, ErrTypeInUse) {
		t.Fatalf("Remove err = %v", err)
	}
	if err := r.Remove("LuxuryCarRentalService"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("CarRentalService"); err != nil {
		t.Fatal(err)
	}
}

func TestDefineSubtypeChecksConformance(t *testing.T) {
	r := NewRepo()
	if err := r.Define(carRentalType()); err != nil {
		t.Fatal(err)
	}
	// A declared subtype missing a base attribute must be rejected.
	bad := &ServiceType{Name: "Bad", Super: "CarRentalService"}
	if err := r.Define(bad); !errors.Is(err, sidl.ErrNotConformant) {
		t.Fatalf("err = %v", err)
	}
	// Unknown supertype.
	orphan := &ServiceType{Name: "Orphan", Super: "Ghost"}
	if err := r.Define(orphan); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestStructuralConformanceWithoutDeclaredSuper(t *testing.T) {
	// Two independently defined types: one happens to extend the other
	// structurally. Conforms must detect it without Super links.
	r := NewRepo()
	base := carRentalType()
	if err := r.Define(base); err != nil {
		t.Fatal(err)
	}
	indep := carRentalType()
	indep.Name = "HanseCarRental"
	indep.Attrs = append(indep.Attrs, AttrDef{Name: "HarbourView", Type: sidl.Basic(sidl.Bool)})
	indep.Signature = append(indep.Signature, sidl.Op{Name: "Extra", Result: sidl.Basic(sidl.Void)})
	if err := r.Define(indep); err != nil {
		t.Fatal(err)
	}
	ok, err := r.Conforms("HanseCarRental", "CarRentalService")
	if err != nil || !ok {
		t.Fatalf("structural Conforms = %v, %v", ok, err)
	}
	// Signature drift breaks conformance.
	drift := carRentalType()
	drift.Name = "DriftRental"
	drift.Signature[0].Result = sidl.Basic(sidl.Float64)
	if err := r.Define(drift); err != nil {
		t.Fatal(err)
	}
	ok, err = r.Conforms("DriftRental", "CarRentalService")
	if err != nil || ok {
		t.Fatalf("drifted Conforms = %v, %v", ok, err)
	}
}

func TestCheckOffer(t *testing.T) {
	r := NewRepo()
	if err := r.Define(carRentalType()); err != nil {
		t.Fatal(err)
	}
	good := []sidl.Property{
		{Name: "CarModel", Value: sidl.EnumLit("FIAT_Uno")},
		{Name: "AverageMilage", Value: sidl.IntLit(38000)},
		{Name: "ChargePerDay", Value: sidl.FloatLit(80)},
		{Name: "ChargeCurrency", Value: sidl.EnumLit("USD")},
		{Name: "ExtraProp", Value: sidl.StringLit("allowed")},
	}
	if err := r.CheckOffer("CarRentalService", good); err != nil {
		t.Fatal(err)
	}
	missing := good[:3]
	if err := r.CheckOffer("CarRentalService", missing); !errors.Is(err, ErrMissingAttr) {
		t.Fatalf("err = %v", err)
	}
	bad := append([]sidl.Property{}, good...)
	bad[0] = sidl.Property{Name: "CarModel", Value: sidl.StringLit("FIAT_Uno")}
	if err := r.CheckOffer("CarRentalService", bad); !errors.Is(err, ErrAttrMismatch) {
		t.Fatalf("err = %v", err)
	}
	wrongEnum := append([]sidl.Property{}, good...)
	wrongEnum[0] = sidl.Property{Name: "CarModel", Value: sidl.EnumLit("TRABANT")}
	if err := r.CheckOffer("CarRentalService", wrongEnum); !errors.Is(err, ErrAttrMismatch) {
		t.Fatalf("err = %v", err)
	}
	if err := r.CheckOffer("Ghost", good); !errors.Is(err, ErrTypeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestFromSID(t *testing.T) {
	sid := sidl.CarRentalSID()
	st, err := FromSID(sid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "CarRentalService" {
		t.Fatalf("Name = %q", st.Name)
	}
	if len(st.Signature) != 2 {
		t.Fatalf("Signature = %d ops", len(st.Signature))
	}
	a, ok := st.Attr("CarModel")
	if !ok || a.Type.Kind != sidl.Enum || a.Type.Name != "CarModel_t" {
		t.Fatalf("CarModel attr = %+v, %v", a, ok)
	}
	if a, ok := st.Attr("ChargePerDay"); !ok || a.Type.Kind != sidl.Float64 {
		t.Fatalf("ChargePerDay attr = %+v", a)
	}
	// The derived type accepts the SID's own trader export as an offer.
	r := NewRepo()
	if err := r.Define(st); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckOffer(st.Name, sid.Trader.Properties); err != nil {
		t.Fatalf("SID's own export must type-check: %v", err)
	}
	// Ops lookup.
	if _, ok := st.Op("SelectCar"); !ok {
		t.Fatal("Op(SelectCar) missing")
	}
	if _, ok := st.Op("Ghost"); ok {
		t.Fatal("Op(Ghost) present")
	}
}

func TestFromSIDErrors(t *testing.T) {
	sid := sidl.CarRentalSID()
	sid.Trader = nil
	if _, err := FromSID(sid); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v", err)
	}
	sid2 := sidl.CarRentalSID()
	sid2.Trader.Properties = append(sid2.Trader.Properties,
		sidl.Property{Name: "Rogue", Value: sidl.EnumLit("NOT_DECLARED")})
	if _, err := FromSID(sid2); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentRepo(t *testing.T) {
	r := NewRepo()
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			st := carRentalType()
			st.Name = fmt.Sprintf("T%d", i)
			if err := r.Define(st); err != nil {
				done <- err
				return
			}
			if _, err := r.Lookup(st.Name); err != nil {
				done <- err
				return
			}
			_, err := r.Conforms(st.Name, st.Name)
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d", r.Len())
	}
}
