// Type-hierarchy index: the conformant-subtype closure of a base type,
// cached per repository generation.
//
// The trader's semantic matching engine (internal/match, phase 1) and
// the mesh's summary routing both need the same question answered:
// "which registered types can stand in for type T?". Walking the
// declared Super chains and re-running structural conformance for every
// import would put an O(types) scan with signature comparisons on the
// hot path, so the closure is computed once per (base, repo generation)
// and invalidated the same way the trader's resolution cache is: by
// comparing Gen() snapshots, never by callbacks.
package typemgr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrTypeCycle reports a supertype chain that loops back on itself. The
// Define path rejects such types outright; the hierarchy walks also
// guard against cycles so a corrupted repository (e.g. a hand-built one
// in tests, or a future bulk-load path) fails loudly instead of
// spinning.
var ErrTypeCycle = errors.New("typemgr: supertype cycle")

// ConformantType is one member of a base type's conformant closure: a
// registered type whose offers satisfy imports for the base.
type ConformantType struct {
	// Name of the conforming type.
	Name string
	// Depth is the declared-subtype distance from the base: 0 for the
	// base itself, 1 for a direct declared subtype, and so on. It is
	// meaningful only when Structural is false.
	Depth int
	// Structural marks types with no declared Super path to the base
	// that nevertheless structurally conform (attribute + signature
	// subsumption). They are the weakest full matches: substitutable,
	// but never standardised as refinements.
	Structural bool
}

// hierarchyCache holds closures keyed by base type name, valid for a
// single repository generation.
type hierarchyCache struct {
	mu       sync.Mutex
	gen      uint64
	closures map[string][]ConformantType
}

// ConformingTypes returns the conformant closure of base: every
// registered type whose offers satisfy an import for base, the base
// itself first (Depth 0), then declared subtypes ordered by ascending
// Depth, then structural-only conformers; ties sort by name so the
// result is deterministic. The slice is shared and must not be
// mutated. Unknown base types return ErrTypeUnknown; a corrupted
// declared hierarchy returns ErrTypeCycle.
func (r *Repo) ConformingTypes(base string) ([]ConformantType, error) {
	gen := r.gen.Load()
	r.hier.mu.Lock()
	if r.hier.gen != gen || r.hier.closures == nil {
		r.hier.gen = gen
		r.hier.closures = map[string][]ConformantType{}
	}
	if cl, ok := r.hier.closures[base]; ok {
		r.hier.mu.Unlock()
		if cl == nil {
			return nil, fmt.Errorf("%w: %q", ErrTypeUnknown, base)
		}
		return cl, nil
	}
	r.hier.mu.Unlock()

	cl, err := r.buildClosure(base)
	if err != nil {
		// Cycles are a repository-corruption error, not a property of
		// the base type; do not negatively cache them.
		if errors.Is(err, ErrTypeCycle) {
			return nil, err
		}
		cl = nil
	}
	r.hier.mu.Lock()
	// Only publish if the repository has not moved on underneath us.
	if r.hier.gen == gen && r.hier.closures != nil {
		r.hier.closures[base] = cl
	}
	r.hier.mu.Unlock()
	return cl, err
}

// Covers reports whether an offer of type sub satisfies an import for
// base according to the same closure the matching engine uses. It is
// the single coverage predicate shared by local matching and mesh
// summary routing (planScatter/gossip), so the two can never disagree.
// Unknown sub types simply do not cover (no error): remote summaries
// routinely advertise types this trader has never defined.
func (r *Repo) Covers(base, sub string) bool {
	if base == sub {
		return true
	}
	cl, err := r.ConformingTypes(base)
	if err != nil {
		return false
	}
	for _, c := range cl {
		if c.Name == sub {
			return true
		}
	}
	return false
}

// buildClosure computes the closure uncached.
func (r *Repo) buildClosure(base string) ([]ConformantType, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	baseT, ok := r.types[base]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTypeUnknown, base)
	}
	cl := []ConformantType{{Name: base, Depth: 0}}
	for name, st := range r.types {
		if name == base {
			continue
		}
		depth, declared, err := r.declaredDepthLocked(st, base)
		if err != nil {
			return nil, err
		}
		switch {
		case declared:
			cl = append(cl, ConformantType{Name: name, Depth: depth})
		case st.StructurallyConformsTo(baseT) == nil:
			cl = append(cl, ConformantType{Name: name, Structural: true})
		}
	}
	sort.Slice(cl, func(i, j int) bool {
		a, b := cl[i], cl[j]
		if a.Structural != b.Structural {
			return !a.Structural
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.Name < b.Name
	})
	return cl, nil
}

// declaredDepthLocked walks st's Super chain looking for base,
// returning the link distance when found. Requires r.mu held. A chain
// that revisits a type is a cycle.
func (r *Repo) declaredDepthLocked(st *ServiceType, base string) (int, bool, error) {
	seen := map[string]bool{st.Name: true}
	depth := 0
	for cur := st; cur.Super != ""; {
		depth++
		if cur.Super == base {
			return depth, true, nil
		}
		if seen[cur.Super] {
			return 0, false, fmt.Errorf("%w: via %q", ErrTypeCycle, cur.Super)
		}
		seen[cur.Super] = true
		next, ok := r.types[cur.Super]
		if !ok {
			break
		}
		cur = next
	}
	return 0, false, nil
}

// checkNoCycleLocked verifies that linking st under its Super produces
// an acyclic chain. Requires r.mu held; called before st is inserted,
// so the walk starts from the would-be supertype.
func (r *Repo) checkNoCycleLocked(st *ServiceType) error {
	if st.Super == "" {
		return nil
	}
	if st.Super == st.Name {
		return fmt.Errorf("%w: %q names itself as supertype", ErrTypeCycle, st.Name)
	}
	seen := map[string]bool{st.Name: true}
	for cur := r.types[st.Super]; cur != nil; cur = r.types[cur.Super] {
		if seen[cur.Name] {
			return fmt.Errorf("%w: via %q", ErrTypeCycle, cur.Name)
		}
		seen[cur.Name] = true
		if cur.Super == "" {
			return nil
		}
	}
	return nil
}
