// Package typemgr implements the type management function of the ODP
// trader (paper section 2.1 and reference [5], "A Type Management System
// for an ODP Trader"; the "Type Manager" box of Fig. 6).
//
// A ServiceType is the unit of standardisation: it fixes an operational
// interface signature and a set of characterising attribute types. An
// exporter must refer to a registered service type and supply values for
// all of its attributes; importers request offers by service type, and a
// repository-maintained conformance relation lets offers of a subtype
// satisfy requests for a base type.
package typemgr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

// Errors reported by the repository.
var (
	ErrTypeExists   = errors.New("typemgr: service type already registered")
	ErrTypeUnknown  = errors.New("typemgr: unknown service type")
	ErrTypeInUse    = errors.New("typemgr: service type has registered subtypes")
	ErrBadType      = errors.New("typemgr: malformed service type")
	ErrMissingAttr  = errors.New("typemgr: offer lacks required attribute")
	ErrAttrMismatch = errors.New("typemgr: attribute value does not fit its type")
)

// AttrDef is one characterising attribute of a service type, e.g.
// "ChargePerDay : Float" in the paper's CarRentalService listing.
type AttrDef struct {
	Name string
	Type *sidl.Type
}

// ServiceType is a registered, standardised service classification.
type ServiceType struct {
	// Name identifies the type, e.g. "CarRentalService".
	Name string
	// Super optionally names a registered supertype this type refines.
	// A subtype must structurally conform to its supertype.
	Super string
	// Attrs are the characterising attribute types.
	Attrs []AttrDef
	// Signature is the operational interface: the operations an
	// instance of this type must offer.
	Signature []sidl.Op
}

// Attr returns the attribute definition by name.
func (st *ServiceType) Attr(name string) (AttrDef, bool) {
	for _, a := range st.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// Op returns the signature operation by name.
func (st *ServiceType) Op(name string) (sidl.Op, bool) {
	for _, o := range st.Signature {
		if o.Name == name {
			return o, true
		}
	}
	return sidl.Op{}, false
}

// validate checks internal consistency.
func (st *ServiceType) validate() error {
	if st.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadType)
	}
	seen := map[string]bool{}
	for _, a := range st.Attrs {
		if a.Name == "" || a.Type == nil {
			return fmt.Errorf("%w: attribute with empty name or nil type in %s", ErrBadType, st.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("%w: duplicate attribute %q in %s", ErrBadType, a.Name, st.Name)
		}
		seen[a.Name] = true
	}
	ops := map[string]bool{}
	for _, o := range st.Signature {
		if o.Name == "" || o.Result == nil {
			return fmt.Errorf("%w: malformed operation in %s", ErrBadType, st.Name)
		}
		if ops[o.Name] {
			return fmt.Errorf("%w: duplicate operation %q in %s", ErrBadType, o.Name, st.Name)
		}
		ops[o.Name] = true
	}
	return nil
}

// StructurallyConformsTo reports whether st can stand in for base:
// every base attribute exists with a conforming type and every base
// operation exists with a structurally equal signature (the same
// record-extension discipline as SID conformance).
func (st *ServiceType) StructurallyConformsTo(base *ServiceType) error {
	for _, ba := range base.Attrs {
		sa, ok := st.Attr(ba.Name)
		if !ok {
			return fmt.Errorf("%w: %s lacks attribute %q of %s", sidl.ErrNotConformant, st.Name, ba.Name, base.Name)
		}
		if !sa.Type.ConformsTo(ba.Type) {
			return fmt.Errorf("%w: attribute %q of %s", sidl.ErrNotConformant, ba.Name, st.Name)
		}
	}
	for _, bo := range base.Signature {
		so, ok := st.Op(bo.Name)
		if !ok {
			return fmt.Errorf("%w: %s lacks operation %q of %s", sidl.ErrNotConformant, st.Name, bo.Name, base.Name)
		}
		so.Doc, bo.Doc = "", ""
		if !so.Equal(bo) {
			return fmt.Errorf("%w: operation %q of %s differs from %s", sidl.ErrNotConformant, bo.Name, st.Name, base.Name)
		}
	}
	return nil
}

// FromSID derives a service type from a SID carrying a trader-export
// extension: the signature is the SID's, the attribute types are
// inferred from the export's property values, and the name is the
// export's type-of-service. This is the "maturation" path of section
// 4.1: a mediated service's description becomes the standardised type.
func FromSID(sid *sidl.SID) (*ServiceType, error) {
	if sid.Trader == nil {
		return nil, fmt.Errorf("%w: SID %s has no %s module", ErrBadType, sid.ServiceName, sidl.ModTraderExport)
	}
	st := &ServiceType{Name: sid.Trader.TypeOfService}
	for _, o := range sid.Ops {
		st.Signature = append(st.Signature, o.Clone())
	}
	for _, p := range sid.Trader.Properties {
		at, err := litAttrType(sid, p.Value)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", p.Name, err)
		}
		st.Attrs = append(st.Attrs, AttrDef{Name: p.Name, Type: at})
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	return st, nil
}

func litAttrType(sid *sidl.SID, l sidl.Lit) (*sidl.Type, error) {
	switch l.Kind {
	case sidl.LitBool:
		return sidl.Basic(sidl.Bool), nil
	case sidl.LitInt:
		return sidl.Basic(sidl.Int64), nil
	case sidl.LitFloat:
		return sidl.Basic(sidl.Float64), nil
	case sidl.LitString:
		return sidl.Basic(sidl.String), nil
	case sidl.LitEnum:
		for _, t := range sid.Types {
			if t.Kind == sidl.Enum {
				if _, ok := t.Ordinal(l.Enum); ok {
					return t, nil
				}
			}
		}
		return nil, fmt.Errorf("%w: enum literal %q not declared in SID", ErrBadType, l.Enum)
	}
	return nil, fmt.Errorf("%w: literal kind %d", ErrBadType, l.Kind)
}

// Repo is the type repository: the trader's management interface inserts
// and deletes service type entries here. Safe for concurrent use.
type Repo struct {
	mu      sync.RWMutex
	types   map[string]*ServiceType
	sources map[string]string
	gen     atomic.Uint64
	hier    hierarchyCache
}

// NewRepo returns an empty repository.
func NewRepo() *Repo {
	return &Repo{types: map[string]*ServiceType{}, sources: map[string]string{}}
}

// Define registers a service type. If the type names a supertype, the
// supertype must already be registered and the new type must
// structurally conform to it.
func (r *Repo) Define(st *ServiceType) error {
	return r.DefineWithSource(st, "")
}

// DefineWithSource registers a service type and retains the source text
// it was derived from (SIDL, for types defined via the maturation path).
// The source is what a durable trader journals and replays, so types
// survive a restart byte-identically; an empty source means the type is
// in-memory only (it will not appear in Sources).
func (r *Repo) DefineWithSource(st *ServiceType, source string) error {
	if err := st.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.types[st.Name]; dup {
		return fmt.Errorf("%w: %q", ErrTypeExists, st.Name)
	}
	if st.Super != "" {
		if err := r.checkNoCycleLocked(st); err != nil {
			return err
		}
		super, ok := r.types[st.Super]
		if !ok {
			return fmt.Errorf("%w: supertype %q", ErrTypeUnknown, st.Super)
		}
		if err := st.StructurallyConformsTo(super); err != nil {
			return err
		}
	}
	r.types[st.Name] = st
	if source != "" {
		r.sources[st.Name] = source
	}
	r.gen.Add(1)
	return nil
}

// Source returns the retained source text the named type was defined
// from, if any.
func (r *Repo) Source(name string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	src, ok := r.sources[name]
	return src, ok
}

// Sources returns a copy of all retained type sources by type name.
func (r *Repo) Sources() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.sources))
	for n, s := range r.sources {
		out[n] = s
	}
	return out
}

// Gen returns a generation counter bumped by every successful Define and
// Remove. Callers that cache conformance decisions (the trader's
// matching engine) revalidate against it instead of re-walking the
// hierarchy on every lookup.
func (r *Repo) Gen() uint64 { return r.gen.Load() }

// Lookup returns the registered type by name.
func (r *Repo) Lookup(name string) (*ServiceType, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.types[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTypeUnknown, name)
	}
	return st, nil
}

// Remove deletes a type. Types that still have registered subtypes
// cannot be removed.
func (r *Repo) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.types[name]; !ok {
		return fmt.Errorf("%w: %q", ErrTypeUnknown, name)
	}
	for _, st := range r.types {
		if st.Super == name {
			return fmt.Errorf("%w: %q is supertype of %q", ErrTypeInUse, name, st.Name)
		}
	}
	delete(r.types, name)
	delete(r.sources, name)
	r.gen.Add(1)
	return nil
}

// Names returns all registered type names, sorted.
func (r *Repo) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.types))
	for n := range r.types {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered types.
func (r *Repo) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.types)
}

// Conforms reports whether offers of type sub satisfy requests for type
// base: either the names are equal, base is reachable from sub through
// Super links, or sub structurally conforms to base.
func (r *Repo) Conforms(sub, base string) (bool, error) {
	if sub == base {
		return true, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	subT, ok := r.types[sub]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrTypeUnknown, sub)
	}
	baseT, ok := r.types[base]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrTypeUnknown, base)
	}
	// Declared hierarchy first (cheap), structure second.
	if _, ok, err := r.declaredDepthLocked(subT, base); err != nil {
		return false, err
	} else if ok {
		return true, nil
	}
	return subT.StructurallyConformsTo(baseT) == nil, nil
}

// CheckOffer validates a set of attribute values against the named
// type: every declared attribute must be present and its value must fit
// the attribute type. Extra properties are permitted (they simply do not
// take part in typed matching).
func (r *Repo) CheckOffer(typeName string, props []sidl.Property) error {
	st, err := r.Lookup(typeName)
	if err != nil {
		return err
	}
	byName := make(map[string]sidl.Lit, len(props))
	for _, p := range props {
		byName[p.Name] = p.Value
	}
	for _, a := range st.Attrs {
		lit, ok := byName[a.Name]
		if !ok {
			return fmt.Errorf("%w: %q of type %s", ErrMissingAttr, a.Name, typeName)
		}
		if _, err := xcode.FromLit(a.Type, lit); err != nil {
			return fmt.Errorf("%w: %q: %v", ErrAttrMismatch, a.Name, err)
		}
	}
	return nil
}
