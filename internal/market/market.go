// Package market implements a discrete-event simulator of the "Common
// Open Service Market" scenario the paper argues from (sections 2.2 and
// 2.3).
//
// The paper's quantitative claims are about *transition costs*: making
// an innovative service available, adapting clients to it, and the
// delay imposed by service type standardisation. The paper itself gives
// no measurements — it is an architecture paper — so this simulator
// turns its cost taxonomy into a parameterised model whose *shape*
// reproduces the argument:
//
//   - Under a trading-only regime, a new service category is unusable
//     until its service type is standardised ("service type
//     standardisation by global agreement" plus registration), and every
//     client pays a one-time adaptation cost (writing client code for
//     the new interface).
//   - Under browser mediation with generic clients, offers are usable
//     immediately and client adaptation cost is ≈ 0, at the price of a
//     per-use dynamic-invocation overhead.
//   - The integrated COSM regime mediates immediately and trades after
//     maturation, combining early availability with typed selection.
//
// The simulator is deterministic for a given seed; experiments E7 and
// E8 of EXPERIMENTS.md sweep its parameters.
package market

import (
	"errors"
	"fmt"
	"math/rand"
)

// Regime selects the market's discovery/access mechanism.
type Regime uint8

// The three regimes compared in the paper's argument.
const (
	// TradingOnly: ODP trader as specified, no mediation (section 2.2's
	// critique target).
	TradingOnly Regime = iota + 1
	// MediationOnly: browser mediation with generic clients, no trader.
	MediationOnly
	// Integrated: COSM — mediation from day one, trading once the
	// service type is standardised (section 4.1).
	Integrated
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case TradingOnly:
		return "trading-only"
	case MediationOnly:
		return "mediation-only"
	case Integrated:
		return "integrated"
	}
	return fmt.Sprintf("Regime(%d)", uint8(r))
}

// Params configures a simulation run. Costs are in abstract cost units;
// the paper's argument depends only on their ratios.
type Params struct {
	// Days is the simulated horizon.
	Days int
	// Seed drives all randomness deterministically.
	Seed int64

	// ProviderArrivalPerDay is the expected number of new providers per
	// day.
	ProviderArrivalPerDay float64
	// ClientArrivalPerDay is the expected number of new clients per day.
	ClientArrivalPerDay float64
	// NewCategoryProb is the probability a new provider is *innovative*
	// (opens a new service category) rather than competing in an
	// existing one.
	NewCategoryProb float64
	// StandardisationDelayDays is the time from a category's first
	// provider to an agreed, registered service type.
	StandardisationDelayDays int
	// UsesPerClientPerDay is each client's demand in service uses.
	UsesPerClientPerDay float64

	// CostProviderStubDev is the provider-side cost of adapter stub
	// development and trader registration (trading path).
	CostProviderStubDev float64
	// CostProviderSIDAuthor is the provider-side cost of authoring a SID
	// and registering at a browser (mediation path).
	CostProviderSIDAuthor float64
	// CostClientDev is the per-client, per-category cost of developing a
	// conventional client application (trading path).
	CostClientDev float64
	// CostGenericUseOverhead is the per-use overhead of dynamic
	// invocation through a generic client (mediation path).
	CostGenericUseOverhead float64
	// UseValue is the utility of one served use.
	UseValue float64
}

// DefaultParams returns a baseline parameterisation used by the
// experiments: standardisation takes ~3 months, client development costs
// three orders of magnitude more than one dynamic invocation.
func DefaultParams() Params {
	return Params{
		Days:                     365,
		Seed:                     1994,
		ProviderArrivalPerDay:    0.4,
		ClientArrivalPerDay:      2,
		NewCategoryProb:          0.25,
		StandardisationDelayDays: 90,
		UsesPerClientPerDay:      1,
		CostProviderStubDev:      40,
		CostProviderSIDAuthor:    8,
		CostClientDev:            50,
		CostGenericUseOverhead:   0.05,
		UseValue:                 1,
	}
}

// ErrParams reports an invalid parameterisation.
var ErrParams = errors.New("market: invalid parameters")

// Validate checks the parameterisation.
func (p Params) Validate() error {
	switch {
	case p.Days <= 0:
		return fmt.Errorf("%w: Days = %d", ErrParams, p.Days)
	case p.ProviderArrivalPerDay < 0 || p.ClientArrivalPerDay < 0 || p.UsesPerClientPerDay < 0:
		return fmt.Errorf("%w: negative arrival or demand rate", ErrParams)
	case p.NewCategoryProb < 0 || p.NewCategoryProb > 1:
		return fmt.Errorf("%w: NewCategoryProb = %g", ErrParams, p.NewCategoryProb)
	case p.StandardisationDelayDays < 0:
		return fmt.Errorf("%w: StandardisationDelayDays = %d", ErrParams, p.StandardisationDelayDays)
	}
	return nil
}

// DayPoint is one day of a run's cumulative timeline.
type DayPoint struct {
	Day            int
	UsesServed     int
	UnmetDemand    int
	CumulativeCost float64
	NetUtility     float64
}

// Metrics summarises one run.
type Metrics struct {
	Regime Regime
	// Categories is the number of service categories that appeared.
	Categories int
	// Providers and Clients are the final population sizes.
	Providers int
	Clients   int
	// UsesServed counts successfully served uses.
	UsesServed int
	// UnmetDemand counts uses requested while the category was
	// inaccessible under the regime.
	UnmetDemand int
	// TimeToFirstUse maps category id to days from first provider to
	// first served use (-1 if never served).
	TimeToFirstUse []int
	// FirstMoverShare is the mean, over categories with at least two
	// providers and one served use, of the share of uses captured by
	// the category's first provider — the quantitative form of section
	// 2.2's "being the first pays most".
	FirstMoverShare float64
	// MeanTimeToFirstUse averages the served categories.
	MeanTimeToFirstUse float64
	// ProviderCost, ClientDevCost and OverheadCost split total cost by
	// the paper's taxonomy.
	ProviderCost  float64
	ClientDevCost float64
	OverheadCost  float64
	// NetUtility = UsesServed*UseValue - total cost.
	NetUtility float64
	// Timeline holds per-day cumulative series (the figure data).
	Timeline []DayPoint
}

// TotalCost sums the cost components.
func (m Metrics) TotalCost() float64 {
	return m.ProviderCost + m.ClientDevCost + m.OverheadCost
}

type category struct {
	firstProviderDay int
	standardisedDay  int // day the service type is usable via trader
	providers        []*provider
	firstUseDay      int // -1 until served
}

type provider struct {
	arrivalDay int
	usesServed int
}

type client struct {
	category int
	// paidDev marks categories×client trading adaptation already paid.
	paidDev bool
	// adopted is the provider this client settled on at its first served
	// use; clients are loyal, which is what converts early visibility
	// into lasting market share ("being the first pays most", §2.2).
	adopted *provider
}

// Run simulates one regime and returns its metrics.
func Run(p Params, regime Regime) (Metrics, error) {
	if err := p.Validate(); err != nil {
		return Metrics{}, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// Provider adoption draws use a separate stream so the arrival
	// processes (providers, categories, clients) are bit-identical
	// across regimes and the regimes stay directly comparable.
	pickRng := rand.New(rand.NewSource(p.Seed + 1))
	m := Metrics{Regime: regime}
	var cats []*category
	var clients []*client

	arrivals := func(rate float64) int {
		n := int(rate)
		if rng.Float64() < rate-float64(n) {
			n++
		}
		return n
	}

	for day := 0; day < p.Days; day++ {
		// Provider arrivals.
		for i := 0; i < arrivals(p.ProviderArrivalPerDay); i++ {
			m.Providers++
			var cat *category
			if len(cats) == 0 || rng.Float64() < p.NewCategoryProb {
				cat = &category{firstProviderDay: day, firstUseDay: -1,
					standardisedDay: day + p.StandardisationDelayDays}
				cats = append(cats, cat)
			} else {
				cat = cats[rng.Intn(len(cats))]
			}
			cat.providers = append(cat.providers, &provider{arrivalDay: day})
			// Provider entry cost by regime (section 2.3's "making an
			// innovative service available on the market").
			switch regime {
			case TradingOnly:
				m.ProviderCost += p.CostProviderStubDev
			case MediationOnly:
				m.ProviderCost += p.CostProviderSIDAuthor
			case Integrated:
				// The SID carries the trader export (section 4.1): one
				// authoring effort serves both paths.
				m.ProviderCost += p.CostProviderSIDAuthor
			}
		}
		// Client arrivals subscribe to a random existing category.
		for i := 0; i < arrivals(p.ClientArrivalPerDay); i++ {
			if len(cats) == 0 {
				continue
			}
			m.Clients++
			clients = append(clients, &client{category: rng.Intn(len(cats))})
		}

		// Demand. Each served use goes to one *visible* provider, chosen
		// uniformly: visibility windows alone create (or erode) the
		// first-mover advantage of section 2.2.
		for _, c := range clients {
			cat := cats[c.category]
			for u := 0; u < arrivals(p.UsesPerClientPerDay); u++ {
				served, overhead := serveUse(p, regime, day, cat, c, &m)
				if !served {
					m.UnmetDemand++
					continue
				}
				m.UsesServed++
				m.OverheadCost += overhead
				if cat.firstUseDay < 0 {
					cat.firstUseDay = day
				}
				if c.adopted == nil {
					c.adopted = pickVisibleProvider(pickRng, regime, day, cat)
				}
				if c.adopted != nil {
					c.adopted.usesServed++
				}
			}
		}

		m.Timeline = append(m.Timeline, DayPoint{
			Day:            day,
			UsesServed:     m.UsesServed,
			UnmetDemand:    m.UnmetDemand,
			CumulativeCost: m.TotalCost(),
			NetUtility:     float64(m.UsesServed)*p.UseValue - m.TotalCost(),
		})
	}

	m.Categories = len(cats)
	m.FirstMoverShare = firstMoverShare(cats)
	served := 0
	for _, cat := range cats {
		ttfu := -1
		if cat.firstUseDay >= 0 {
			ttfu = cat.firstUseDay - cat.firstProviderDay
			m.MeanTimeToFirstUse += float64(ttfu)
			served++
		}
		m.TimeToFirstUse = append(m.TimeToFirstUse, ttfu)
	}
	if served > 0 {
		m.MeanTimeToFirstUse /= float64(served)
	} else {
		m.MeanTimeToFirstUse = -1
	}
	m.NetUtility = float64(m.UsesServed)*p.UseValue - m.TotalCost()
	return m, nil
}

// pickVisibleProvider chooses uniformly among the providers a client can
// see on the given day. Under mediation a provider is visible from its
// arrival; under trading-only nobody is visible before standardisation,
// after which *all* providers of the category surface simultaneously —
// which is precisely what erodes the innovator's head start (§2.2).
func pickVisibleProvider(rng *rand.Rand, regime Regime, day int, cat *category) *provider {
	visible := cat.providers
	if regime == TradingOnly {
		if day < cat.standardisedDay {
			return nil
		}
		// All providers that arrived before standardisation became
		// visible at the same instant; later ones on arrival.
	}
	candidates := make([]*provider, 0, len(visible))
	for _, prov := range visible {
		if prov.arrivalDay <= day {
			candidates = append(candidates, prov)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}

// firstMoverShare averages the first provider's share of served uses
// over categories with competition.
func firstMoverShare(cats []*category) float64 {
	sum, n := 0.0, 0
	for _, cat := range cats {
		if len(cat.providers) < 2 {
			continue
		}
		total := 0
		for _, prov := range cat.providers {
			total += prov.usesServed
		}
		if total == 0 {
			continue
		}
		sum += float64(cat.providers[0].usesServed) / float64(total)
		n++
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// serveUse decides whether one use can be served and at what overhead,
// charging client adaptation costs as they occur.
func serveUse(p Params, regime Regime, day int, cat *category, c *client, m *Metrics) (served bool, overhead float64) {
	if len(cat.providers) == 0 {
		return false, 0
	}
	switch regime {
	case TradingOnly:
		// Accessible only after standardisation, and the client must
		// have paid for a conventional client application.
		if day < cat.standardisedDay {
			return false, 0
		}
		if !c.paidDev {
			m.ClientDevCost += p.CostClientDev
			c.paidDev = true
		}
		return true, 0
	case MediationOnly:
		// Generic client: immediate access, per-use overhead.
		return true, p.CostGenericUseOverhead
	case Integrated:
		// Mediation immediately; after standardisation the trader offers
		// typed selection, still driven by the generic client, so no
		// client development cost ever arises.
		return true, p.CostGenericUseOverhead
	}
	return false, 0
}

// CrossoverUses returns the analytic break-even point of section 2.3:
// the number of uses per client/category at which paying the one-time
// conventional-client development cost beats the generic client's
// per-use overhead. Below it, mediation is strictly cheaper for the
// client; above it, a matured (standardised, statically adapted) service
// wins on marginal cost.
func CrossoverUses(p Params) (float64, error) {
	if p.CostGenericUseOverhead <= 0 {
		return 0, fmt.Errorf("%w: CostGenericUseOverhead must be positive for a crossover", ErrParams)
	}
	return p.CostClientDev / p.CostGenericUseOverhead, nil
}

// Compare runs all three regimes on the same parameters and seed.
func Compare(p Params) (map[Regime]Metrics, error) {
	out := make(map[Regime]Metrics, 3)
	for _, regime := range []Regime{TradingOnly, MediationOnly, Integrated} {
		m, err := Run(p, regime)
		if err != nil {
			return nil, err
		}
		out[regime] = m
	}
	return out, nil
}
