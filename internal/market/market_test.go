package market

import (
	"errors"
	"math"
	"testing"
)

func TestRunDeterministic(t *testing.T) {
	p := DefaultParams()
	a, err := Run(p, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Integrated)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsesServed != b.UsesServed || a.TotalCost() != b.TotalCost() || a.Categories != b.Categories {
		t.Fatalf("simulation is not deterministic: %+v vs %+v", a, b)
	}
	if len(a.Timeline) != p.Days {
		t.Fatalf("timeline = %d days, want %d", len(a.Timeline), p.Days)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Params)
	}{
		{"days", func(p *Params) { p.Days = 0 }},
		{"negative rate", func(p *Params) { p.ProviderArrivalPerDay = -1 }},
		{"bad prob", func(p *Params) { p.NewCategoryProb = 1.5 }},
		{"negative delay", func(p *Params) { p.StandardisationDelayDays = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mut(&p)
			if _, err := Run(p, Integrated); !errors.Is(err, ErrParams) {
				t.Fatalf("err = %v, want ErrParams", err)
			}
		})
	}
}

// TestSection22TimeToMarketShape verifies the paper's central section
// 2.2 claim: under trading-only, innovative services are unusable for
// roughly the standardisation delay, while mediation serves them
// immediately.
func TestSection22TimeToMarketShape(t *testing.T) {
	p := DefaultParams()
	results, err := Compare(p)
	if err != nil {
		t.Fatal(err)
	}
	trading := results[TradingOnly]
	mediation := results[MediationOnly]
	integrated := results[Integrated]

	if mediation.MeanTimeToFirstUse < 0 {
		t.Fatal("mediation never served anything")
	}
	if trading.MeanTimeToFirstUse < float64(p.StandardisationDelayDays)*0.8 {
		t.Fatalf("trading-only time to first use %.1f should be near the standardisation delay %d",
			trading.MeanTimeToFirstUse, p.StandardisationDelayDays)
	}
	if mediation.MeanTimeToFirstUse > trading.MeanTimeToFirstUse/4 {
		t.Fatalf("mediation time to first use %.1f should be far below trading %.1f",
			mediation.MeanTimeToFirstUse, trading.MeanTimeToFirstUse)
	}
	if integrated.MeanTimeToFirstUse > mediation.MeanTimeToFirstUse+1 {
		t.Fatalf("integrated %.1f should match mediation %.1f",
			integrated.MeanTimeToFirstUse, mediation.MeanTimeToFirstUse)
	}

	// Trading-only loses demand to the standardisation window.
	if trading.UnmetDemand <= mediation.UnmetDemand {
		t.Fatalf("trading unmet %d should exceed mediation unmet %d",
			trading.UnmetDemand, mediation.UnmetDemand)
	}
	if trading.UsesServed >= mediation.UsesServed {
		t.Fatalf("trading served %d should be below mediation %d",
			trading.UsesServed, mediation.UsesServed)
	}
}

// TestSection23TransitionCostShape verifies the cost taxonomy claims:
// client adaptation cost vanishes under mediation; provider entry is
// cheaper; overhead cost is nonzero but small; integrated nets highest
// utility under the default ratios.
func TestSection23TransitionCostShape(t *testing.T) {
	p := DefaultParams()
	results, err := Compare(p)
	if err != nil {
		t.Fatal(err)
	}
	trading := results[TradingOnly]
	mediation := results[MediationOnly]
	integrated := results[Integrated]

	if mediation.ClientDevCost != 0 || integrated.ClientDevCost != 0 {
		t.Fatalf("generic clients must incur no client development cost: %g %g",
			mediation.ClientDevCost, integrated.ClientDevCost)
	}
	if trading.ClientDevCost == 0 {
		t.Fatal("trading-only must incur client development cost")
	}
	if mediation.ProviderCost >= trading.ProviderCost {
		t.Fatalf("SID authoring %g should undercut stub development %g",
			mediation.ProviderCost, trading.ProviderCost)
	}
	if mediation.OverheadCost <= 0 {
		t.Fatal("mediation must pay per-use overhead")
	}
	if trading.OverheadCost != 0 {
		t.Fatal("static clients pay no per-use overhead")
	}
	if integrated.NetUtility < trading.NetUtility || integrated.NetUtility < mediation.NetUtility-1e-9 {
		t.Fatalf("integrated net utility %.1f should dominate trading %.1f and mediation %.1f",
			integrated.NetUtility, trading.NetUtility, mediation.NetUtility)
	}
}

func TestCrossover(t *testing.T) {
	p := DefaultParams()
	n, err := CrossoverUses(p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.CostClientDev / p.CostGenericUseOverhead
	if math.Abs(n-want) > 1e-9 {
		t.Fatalf("CrossoverUses = %g, want %g", n, want)
	}
	// Below the crossover the generic client is cheaper; above it the
	// one-time static investment wins (marginal costs).
	below := (n - 1) * p.CostGenericUseOverhead
	above := (n + 1) * p.CostGenericUseOverhead
	if below >= p.CostClientDev || above <= p.CostClientDev {
		t.Fatalf("crossover point inconsistent: below %.2f above %.2f dev %.2f",
			below, above, p.CostClientDev)
	}
	p.CostGenericUseOverhead = 0
	if _, err := CrossoverUses(p); !errors.Is(err, ErrParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestTimelineMonotonic(t *testing.T) {
	m, err := Run(DefaultParams(), MediationOnly)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Timeline); i++ {
		prev, cur := m.Timeline[i-1], m.Timeline[i]
		if cur.UsesServed < prev.UsesServed || cur.UnmetDemand < prev.UnmetDemand || cur.CumulativeCost < prev.CumulativeCost {
			t.Fatalf("timeline not monotone at day %d: %+v -> %+v", i, prev, cur)
		}
		if cur.Day != i {
			t.Fatalf("day index mismatch at %d", i)
		}
	}
}

func TestMetricsAccounting(t *testing.T) {
	p := DefaultParams()
	p.Days = 120
	for _, regime := range []Regime{TradingOnly, MediationOnly, Integrated} {
		t.Run(regime.String(), func(t *testing.T) {
			m, err := Run(p, regime)
			if err != nil {
				t.Fatal(err)
			}
			if got := float64(m.UsesServed)*p.UseValue - m.TotalCost(); math.Abs(got-m.NetUtility) > 1e-6 {
				t.Fatalf("NetUtility %.3f != recomputed %.3f", m.NetUtility, got)
			}
			if len(m.TimeToFirstUse) != m.Categories {
				t.Fatalf("TimeToFirstUse len %d != categories %d", len(m.TimeToFirstUse), m.Categories)
			}
			last := m.Timeline[len(m.Timeline)-1]
			if last.UsesServed != m.UsesServed || last.UnmetDemand != m.UnmetDemand {
				t.Fatalf("timeline end %+v != totals", last)
			}
		})
	}
}

func TestRegimeString(t *testing.T) {
	if TradingOnly.String() != "trading-only" || Regime(9).String() != "Regime(9)" {
		t.Fatal("Regime.String broken")
	}
}

func TestStandardisationDelaySweepShape(t *testing.T) {
	// Longer standardisation hurts trading-only monotonically (more
	// unmet demand) but leaves mediation untouched.
	p := DefaultParams()
	p.Days = 200
	var prevUnmet int
	for i, delay := range []int{10, 60, 150} {
		p.StandardisationDelayDays = delay
		tm, err := Run(p, TradingOnly)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && tm.UnmetDemand < prevUnmet {
			t.Fatalf("unmet demand fell from %d to %d as delay grew", prevUnmet, tm.UnmetDemand)
		}
		prevUnmet = tm.UnmetDemand

		mm, err := Run(p, MediationOnly)
		if err != nil {
			t.Fatal(err)
		}
		if mm.UnmetDemand != 0 {
			t.Fatalf("mediation unmet demand = %d with delay %d", mm.UnmetDemand, delay)
		}
	}
}

// TestFirstMoverAdvantageShape verifies the §2.2 claim "being the first
// pays most": under mediation the innovator's visibility head start
// converts into a larger share of served uses, while trading-only's
// standardisation window surfaces all pre-standardisation competitors at
// once and erodes that advantage.
func TestFirstMoverAdvantageShape(t *testing.T) {
	p := DefaultParams()
	p.Days = 365
	med, err := Run(p, MediationOnly)
	if err != nil {
		t.Fatal(err)
	}
	trd, err := Run(p, TradingOnly)
	if err != nil {
		t.Fatal(err)
	}
	if med.FirstMoverShare < 0 || trd.FirstMoverShare < 0 {
		t.Fatalf("shares unavailable: med %v trd %v", med.FirstMoverShare, trd.FirstMoverShare)
	}
	if med.FirstMoverShare <= trd.FirstMoverShare {
		t.Fatalf("mediation first-mover share %.3f should exceed trading-only %.3f",
			med.FirstMoverShare, trd.FirstMoverShare)
	}
	// With uniform choice among visible providers, both shares stay
	// sane fractions.
	for _, s := range []float64{med.FirstMoverShare, trd.FirstMoverShare} {
		if s <= 0 || s > 1 {
			t.Fatalf("share out of range: %v", s)
		}
	}
}
