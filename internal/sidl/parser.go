package sidl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cosm/internal/fsm"
)

// ErrSyntax is wrapped by all parse errors.
var ErrSyntax = errors.New("sidl: syntax error")

// Names of the distinguished COSM extension modules embedded in the IDL
// module structure (section 4.1).
const (
	ModOperations   = "COSM_Operations"
	ModTraderExport = "COSM_TraderExport"
	ModFSM          = "COSM_FSM"
	ModUI           = "COSM_UI"
)

// Parse parses SIDL source text — one top-level IDL module — into a SID
// and validates it. Embedded modules with unrecognised names are skipped
// and preserved verbatim, which is the mechanism that keeps extended
// SIDs processable by base-level components (Fig. 2 and section 4.1).
func Parse(src string) (*SID, error) {
	p := &parser{lx: newLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	sid, err := p.parseTopModule()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	if err := sid.Validate(); err != nil {
		return nil, err
	}
	return sid, nil
}

// maxTypeDepth bounds type-constructor nesting (sequence<sequence<...)
// so adversarial descriptions cannot exhaust the parser's stack.
const maxTypeDepth = 64

type parser struct {
	lx    *lexer
	src   string
	tok   token
	depth int
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectIdent(what string) (token, error) {
	if p.tok.kind != tokIdent {
		return token{}, p.errorf("expected %s, got %q", what, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return p.errorf("expected %q, got %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectPunct(ch string) error {
	if p.tok.kind != tokPunct || p.tok.text != ch {
		return p.errorf("expected %q, got %q", ch, p.tok.text)
	}
	return p.advance()
}

func (p *parser) isPunct(ch string) bool {
	return p.tok.kind == tokPunct && p.tok.text == ch
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) expectEOF() error {
	if p.tok.kind != tokEOF {
		return p.errorf("unexpected trailing input %q", p.tok.text)
	}
	return nil
}

// optSemi consumes an optional trailing semicolon (after "}").
func (p *parser) optSemi() error {
	if p.isPunct(";") {
		return p.advance()
	}
	return nil
}

func (p *parser) parseTopModule() (*SID, error) {
	doc := p.tok.doc
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("module name")
	if err != nil {
		return nil, err
	}
	sid := &SID{ServiceName: name.text, Doc: doc}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	scope := map[string]*Type{}
	for !p.isPunct("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unexpected end of input in module %s", sid.ServiceName)
		}
		if err := p.parseDecl(sid, scope); err != nil {
			return nil, err
		}
	}
	if err := p.advance(); err != nil { // consume "}"
		return nil, err
	}
	if err := p.optSemi(); err != nil {
		return nil, err
	}
	return sid, nil
}

func (p *parser) parseDecl(sid *SID, scope map[string]*Type) error {
	if p.tok.kind != tokIdent {
		return p.errorf("expected declaration, got %q", p.tok.text)
	}
	switch p.tok.text {
	case "typedef":
		return p.parseTypedef(sid, scope)
	case "enum":
		return p.parseEnumDecl(sid, scope)
	case "struct":
		return p.parseStructDecl(sid, scope)
	case "const":
		c, err := p.parseConst(scope)
		if err != nil {
			return err
		}
		sid.Consts = append(sid.Consts, c)
		return nil
	case "interface":
		return p.parseInterface(sid, scope)
	case "module":
		return p.parseSubModule(sid, scope)
	default:
		return p.errorf("unexpected declaration keyword %q", p.tok.text)
	}
}

func (p *parser) declareType(sid *SID, scope map[string]*Type, t *Type) error {
	if _, dup := scope[t.Name]; dup {
		return p.errorf("duplicate type name %q", t.Name)
	}
	scope[t.Name] = t
	sid.Types = append(sid.Types, t)
	return nil
}

// parseTypedef handles "typedef <typespec> Name;" including anonymous
// enum/struct bodies in the typespec position.
func (p *parser) parseTypedef(sid *SID, scope map[string]*Type) error {
	if err := p.advance(); err != nil { // consume "typedef"
		return err
	}
	t, err := p.parseTypeSpec(scope)
	if err != nil {
		return err
	}
	name, err := p.expectIdent("typedef name")
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	// A typedef introduces a new named type with the same structure.
	named := t.Clone()
	named.Name = name.text
	return p.declareType(sid, scope, named)
}

func (p *parser) parseEnumDecl(sid *SID, scope map[string]*Type) error {
	if err := p.advance(); err != nil { // consume "enum"
		return err
	}
	name, err := p.expectIdent("enum name")
	if err != nil {
		return err
	}
	t, err := p.parseEnumBody(name.text)
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	return p.declareType(sid, scope, t)
}

func (p *parser) parseEnumBody(name string) (*Type, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	t := &Type{Kind: Enum, Name: name}
	seen := map[string]bool{}
	for {
		lit, err := p.expectIdent("enum literal")
		if err != nil {
			return nil, err
		}
		if seen[lit.text] {
			return nil, p.errorf("duplicate enum literal %q", lit.text)
		}
		seen[lit.text] = true
		t.Literals = append(t.Literals, lit.text)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return t, nil
}

func (p *parser) parseStructDecl(sid *SID, scope map[string]*Type) error {
	if err := p.advance(); err != nil { // consume "struct"
		return err
	}
	name, err := p.expectIdent("struct name")
	if err != nil {
		return err
	}
	t, err := p.parseStructBody(name.text, scope)
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	return p.declareType(sid, scope, t)
}

func (p *parser) parseStructBody(name string, scope map[string]*Type) (*Type, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	t := &Type{Kind: Struct, Name: name}
	seen := map[string]bool{}
	for !p.isPunct("}") {
		ft, err := p.parseTypeSpec(scope)
		if err != nil {
			return nil, err
		}
		fn, err := p.expectIdent("field name")
		if err != nil {
			return nil, err
		}
		if seen[fn.text] {
			return nil, p.errorf("duplicate field %q in struct %s", fn.text, name)
		}
		seen[fn.text] = true
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		t.Fields = append(t.Fields, Field{Name: fn.text, Type: ft})
	}
	if err := p.advance(); err != nil { // consume "}"
		return nil, err
	}
	if len(t.Fields) == 0 {
		return nil, p.errorf("struct %s has no fields", name)
	}
	return t, nil
}

// parseTypeSpec parses a type reference in declaration position.
func (p *parser) parseTypeSpec(scope map[string]*Type) (*Type, error) {
	if p.depth >= maxTypeDepth {
		return nil, p.errorf("type nesting exceeds %d levels", maxTypeDepth)
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected type, got %q", p.tok.text)
	}
	word := p.tok.text
	switch word {
	case "void":
		return Basic(Void), p.advance()
	case "boolean":
		return Basic(Bool), p.advance()
	case "octet":
		return Basic(Octet), p.advance()
	case "short":
		return Basic(Int16), p.advance()
	case "float":
		return Basic(Float32), p.advance()
	case "double":
		return Basic(Float64), p.advance()
	case "string":
		return Basic(String), p.advance()
	case "Object":
		return Basic(SvcRef), p.advance()
	case "long":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("long") {
			return Basic(Int64), p.advance()
		}
		return Basic(Int32), nil
	case "unsigned":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("long"); err != nil {
			return nil, err
		}
		if p.isKeyword("long") {
			return Basic(UInt64), p.advance()
		}
		return Basic(UInt32), nil
	case "sequence":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		elem, err := p.parseTypeSpec(scope)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		return SequenceOf(elem), nil
	case "enum":
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseEnumBody("")
	case "struct":
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseStructBody("", scope)
	default:
		t, ok := scope[word]
		if !ok {
			return nil, p.errorf("unknown type %q (types must be declared before use)", word)
		}
		return t, p.advance()
	}
}

func (p *parser) parseConst(scope map[string]*Type) (Const, error) {
	if err := p.advance(); err != nil { // consume "const"
		return Const{}, err
	}
	t, err := p.parseTypeSpec(scope)
	if err != nil {
		return Const{}, err
	}
	name, err := p.expectIdent("const name")
	if err != nil {
		return Const{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return Const{}, err
	}
	lit, err := p.parseLiteral(t)
	if err != nil {
		return Const{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return Const{}, err
	}
	return Const{Name: name.text, Type: t, Value: lit}, nil
}

// parseLiteral parses a literal and checks it against the declared type.
func (p *parser) parseLiteral(t *Type) (Lit, error) {
	tok := p.tok
	switch tok.kind {
	case tokInt:
		v, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return Lit{}, p.errorf("bad integer literal %q: %v", tok.text, err)
		}
		if err := p.advance(); err != nil {
			return Lit{}, err
		}
		switch t.Kind {
		case Int16, Int32, Int64, UInt32, UInt64, Octet:
			return IntLit(v), nil
		case Float32, Float64:
			return FloatLit(float64(v)), nil
		}
		return Lit{}, p.errorf("integer literal for non-numeric type %s", t)
	case tokFloat:
		v, err := strconv.ParseFloat(tok.text, 64)
		if err != nil {
			return Lit{}, p.errorf("bad float literal %q: %v", tok.text, err)
		}
		if t.Kind != Float32 && t.Kind != Float64 {
			return Lit{}, p.errorf("float literal for non-float type %s", t)
		}
		return FloatLit(v), p.advance()
	case tokString:
		if t.Kind != String {
			return Lit{}, p.errorf("string literal for non-string type %s", t)
		}
		return StringLit(tok.str), p.advance()
	case tokIdent:
		switch tok.text {
		case "TRUE", "FALSE":
			if t.Kind != Bool {
				return Lit{}, p.errorf("boolean literal for non-boolean type %s", t)
			}
			return BoolLit(tok.text == "TRUE"), p.advance()
		default:
			if t.Kind != Enum {
				return Lit{}, p.errorf("identifier literal %q for non-enum type %s", tok.text, t)
			}
			if _, ok := t.Ordinal(tok.text); !ok {
				return Lit{}, p.errorf("literal %q is not a member of enum %s", tok.text, t.Name)
			}
			return EnumLit(tok.text), p.advance()
		}
	}
	return Lit{}, p.errorf("expected literal, got %q", tok.text)
}

func (p *parser) parseInterface(sid *SID, scope map[string]*Type) error {
	if err := p.advance(); err != nil { // consume "interface"
		return err
	}
	if _, err := p.expectIdent("interface name"); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		doc := p.tok.doc
		result, err := p.parseTypeSpec(scope)
		if err != nil {
			return err
		}
		opName, err := p.expectIdent("operation name")
		if err != nil {
			return err
		}
		op := Op{Name: opName.text, Result: result, Doc: doc}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		for !p.isPunct(")") {
			if len(op.Params) > 0 {
				if err := p.expectPunct(","); err != nil {
					return err
				}
			}
			dir := In
			switch {
			case p.isKeyword("in"):
				if err := p.advance(); err != nil {
					return err
				}
			case p.isKeyword("out"):
				dir = Out
				if err := p.advance(); err != nil {
					return err
				}
			case p.isKeyword("inout"):
				dir = InOut
				if err := p.advance(); err != nil {
					return err
				}
			}
			pt, err := p.parseTypeSpec(scope)
			if err != nil {
				return err
			}
			pn, err := p.expectIdent("parameter name")
			if err != nil {
				return err
			}
			op.Params = append(op.Params, Param{Name: pn.text, Dir: dir, Type: pt})
		}
		if err := p.advance(); err != nil { // consume ")"
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		sid.Ops = append(sid.Ops, op)
	}
	if err := p.advance(); err != nil { // consume "}"
		return err
	}
	return p.optSemi()
}

func (p *parser) parseSubModule(sid *SID, scope map[string]*Type) error {
	if err := p.advance(); err != nil { // consume "module"
		return err
	}
	name, err := p.expectIdent("module name")
	if err != nil {
		return err
	}
	switch name.text {
	case ModTraderExport:
		return p.parseTraderExport(sid, scope)
	case ModFSM:
		return p.parseFSM(sid)
	case ModUI:
		return p.parseUI(sid)
	default:
		// Unknown module: skip it verbatim — the CORBA-compatibility
		// mechanism of section 4.1.
		body, err := p.skipBalanced()
		if err != nil {
			return err
		}
		sid.Unknown = append(sid.Unknown, RawModule{Name: name.text, Body: body})
		return p.optSemi()
	}
}

// skipBalanced consumes a balanced "{...}" block and returns the
// verbatim source between the outer braces.
func (p *parser) skipBalanced() (string, error) {
	if !p.isPunct("{") {
		return "", p.errorf("expected '{', got %q", p.tok.text)
	}
	start := p.tok.end
	depth := 1
	for depth > 0 {
		if err := p.advance(); err != nil {
			return "", err
		}
		switch {
		case p.tok.kind == tokEOF:
			return "", p.errorf("unterminated module body")
		case p.isPunct("{"):
			depth++
		case p.isPunct("}"):
			depth--
		}
	}
	body := p.src[start:p.tok.pos]
	return strings.TrimSpace(body), p.advance()
}

func (p *parser) parseTraderExport(sid *SID, scope map[string]*Type) error {
	if sid.Trader != nil {
		return p.errorf("duplicate %s module", ModTraderExport)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	te := &TraderExport{}
	for !p.isPunct("}") {
		if !p.isKeyword("const") {
			return p.errorf("%s may contain only const declarations, got %q", ModTraderExport, p.tok.text)
		}
		c, err := p.parseConst(scope)
		if err != nil {
			return err
		}
		switch c.Name {
		case "ServiceID":
			if c.Value.Kind != LitInt || c.Value.Int < 0 {
				return p.errorf("ServiceID must be a non-negative integer")
			}
			te.ServiceID = uint64(c.Value.Int)
		case "TOD":
			if c.Value.Kind != LitString {
				return p.errorf("TOD must be a string")
			}
			te.TypeOfService = c.Value.Str
		default:
			te.Properties = append(te.Properties, Property{Name: c.Name, Value: c.Value})
		}
	}
	if err := p.advance(); err != nil { // consume "}"
		return err
	}
	if te.TypeOfService == "" {
		return p.errorf("%s lacks the TOD (type of service) constant", ModTraderExport)
	}
	sid.Trader = te
	return p.optSemi()
}

// parseFSM parses the COSM_FSM module:
//
//	module COSM_FSM {
//	    initial INIT;
//	    transition INIT SelectCar SELECTED;
//	    transition SELECTED Commit INIT;
//	};
func (p *parser) parseFSM(sid *SID) error {
	if sid.FSM != nil {
		return p.errorf("duplicate %s module", ModFSM)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	spec := &fsm.Spec{}
	states := map[string]bool{}
	addState := func(s string) {
		if !states[s] {
			states[s] = true
			spec.States = append(spec.States, s)
		}
	}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("initial"):
			if err := p.advance(); err != nil {
				return err
			}
			st, err := p.expectIdent("initial state")
			if err != nil {
				return err
			}
			if spec.Initial != "" {
				return p.errorf("duplicate initial state declaration")
			}
			spec.Initial = st.text
			addState(st.text)
		case p.isKeyword("transition"):
			if err := p.advance(); err != nil {
				return err
			}
			from, err := p.expectIdent("source state")
			if err != nil {
				return err
			}
			op, err := p.expectIdent("operation")
			if err != nil {
				return err
			}
			to, err := p.expectIdent("target state")
			if err != nil {
				return err
			}
			addState(from.text)
			addState(to.text)
			spec.Transitions = append(spec.Transitions, fsm.Transition{From: from.text, Op: op.text, To: to.text})
		default:
			return p.errorf("expected 'initial' or 'transition' in %s, got %q", ModFSM, p.tok.text)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	if err := p.advance(); err != nil { // consume "}"
		return err
	}
	if spec.Initial == "" {
		return p.errorf("%s lacks an initial state", ModFSM)
	}
	sid.FSM = spec
	return p.optSemi()
}

// parseUI parses the COSM_UI module:
//
//	module COSM_UI {
//	    doc SelectCar "Choose a car model and booking date";
//	    widget SelectCar.selection.model choice;
//	};
func (p *parser) parseUI(sid *SID) error {
	if sid.UI != nil {
		return p.errorf("duplicate %s module", ModUI)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	ui := &UISpec{Docs: map[string]string{}, Widgets: map[string]string{}}
	for !p.isPunct("}") {
		switch {
		case p.isKeyword("doc"):
			if err := p.advance(); err != nil {
				return err
			}
			path, err := p.parsePath()
			if err != nil {
				return err
			}
			if p.tok.kind != tokString {
				return p.errorf("doc for %s requires a string literal", path)
			}
			ui.Docs[path] = p.tok.str
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("widget"):
			if err := p.advance(); err != nil {
				return err
			}
			path, err := p.parsePath()
			if err != nil {
				return err
			}
			hint, err := p.expectIdent("widget hint")
			if err != nil {
				return err
			}
			ui.Widgets[path] = hint.text
		default:
			return p.errorf("expected 'doc' or 'widget' in %s, got %q", ModUI, p.tok.text)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	if err := p.advance(); err != nil { // consume "}"
		return err
	}
	sid.UI = ui
	return p.optSemi()
}

func (p *parser) parsePath() (string, error) {
	var b strings.Builder
	seg, err := p.expectIdent("path segment")
	if err != nil {
		return "", err
	}
	b.WriteString(seg.text)
	for p.isPunct(".") {
		if err := p.advance(); err != nil {
			return "", err
		}
		seg, err := p.expectIdent("path segment")
		if err != nil {
			return "", err
		}
		b.WriteByte('.')
		b.WriteString(seg.text)
	}
	return b.String(), nil
}
