package sidl

// CarRentalIDL is the paper's running example (sections 2.1, 3.1 and
// 4.1) in this implementation's SIDL concrete syntax: the base IDL part
// (types plus the COSM_Operations interface) extended by the trader
// export, FSM protocol and UI annotation modules.
const CarRentalIDL = `
// Rents cars of several models at a daily charge.
module CarRentalService {
    enum CarModel_t { AUDI, FIAT_Uno, VW_Golf };
    enum Currency_t { USD, DEM, FF, SFR, GBP };

    struct SelectCar_t {
        CarModel_t model;
        string bookingDate;
        long days;
    };
    struct SelectCarReturn_t {
        boolean available;
        double charge;
        Currency_t currency;
    };
    struct BookCarReturn_t {
        boolean ok;
        string confirmation;
    };

    interface COSM_Operations {
        // Check availability and price of a car model.
        SelectCarReturn_t SelectCar(in SelectCar_t selection);
        // Book the currently selected car.
        BookCarReturn_t Commit();
    };

    module COSM_FSM {
        initial INIT;
        transition INIT SelectCar SELECTED;
        transition SELECTED SelectCar SELECTED;
        transition SELECTED Commit INIT;
    };

    module COSM_TraderExport {
        const unsigned long ServiceID = 4711;
        const string TOD = "CarRentalService";
        const CarModel_t CarModel = FIAT_Uno;
        const long long AverageMilage = 38000;
        const double ChargePerDay = 80.0;
        const Currency_t ChargeCurrency = USD;
    };

    module COSM_UI {
        doc SelectCar "Choose a car model and booking date";
        doc SelectCar.selection.model "The car model to rent";
        doc Commit "Book the selected car";
        widget SelectCar.selection.model choice;
        widget SelectCar.selection.bookingDate text;
    };
};
`

// CarRentalSID parses CarRentalIDL; it panics on error, which would be a
// programming bug since the source is a compile-time constant covered by
// tests.
func CarRentalSID() *SID {
	sid, err := Parse(CarRentalIDL)
	if err != nil {
		panic("sidl: internal error parsing CarRentalIDL: " + err.Error())
	}
	return sid
}
