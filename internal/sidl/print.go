package sidl

import (
	"fmt"
	"sort"
	"strings"
)

// MarshalText renders the SID as canonical SIDL (CORBA-IDL-conformant)
// source. This text form is the communicable representation of a SID:
// components exchange descriptions as text and re-parse them, so any
// CORBA-compliant tool can process the base part while COSM components
// interpret the embedded extension modules (section 4.1).
func (s *SID) MarshalText() ([]byte, error) {
	return []byte(s.IDL()), nil
}

// UnmarshalText parses canonical SIDL text, replacing *s.
func (s *SID) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*s = *parsed
	return nil
}

// IDL renders the SID as SIDL source text.
func (s *SID) IDL() string {
	var b strings.Builder
	if s.Doc != "" {
		writeDoc(&b, "", s.Doc)
	}
	fmt.Fprintf(&b, "module %s {\n", s.ServiceName)
	for _, t := range s.Types {
		writeTypeDecl(&b, t)
	}
	for _, c := range s.Consts {
		fmt.Fprintf(&b, "    const %s %s = %s;\n", typeRef(c.Type), c.Name, c.Value)
	}
	if len(s.Ops) > 0 {
		fmt.Fprintf(&b, "    interface %s {\n", ModOperations)
		for _, o := range s.Ops {
			if o.Doc != "" {
				writeDoc(&b, "        ", o.Doc)
			}
			fmt.Fprintf(&b, "        %s %s(", typeRef(o.Result), o.Name)
			for i, p := range o.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s %s %s", p.Dir, typeRef(p.Type), p.Name)
			}
			b.WriteString(");\n")
		}
		b.WriteString("    };\n")
	}
	if s.FSM.Restricted() {
		fmt.Fprintf(&b, "    module %s {\n", ModFSM)
		fmt.Fprintf(&b, "        initial %s;\n", s.FSM.Initial)
		for _, t := range s.FSM.Transitions {
			fmt.Fprintf(&b, "        transition %s %s %s;\n", t.From, t.Op, t.To)
		}
		b.WriteString("    };\n")
	}
	if s.Trader != nil {
		fmt.Fprintf(&b, "    module %s {\n", ModTraderExport)
		fmt.Fprintf(&b, "        const unsigned long ServiceID = %d;\n", s.Trader.ServiceID)
		fmt.Fprintf(&b, "        const string TOD = %q;\n", s.Trader.TypeOfService)
		for _, p := range s.Trader.Properties {
			fmt.Fprintf(&b, "        const %s %s = %s;\n", litTypeRef(s, p.Value), p.Name, p.Value)
		}
		b.WriteString("    };\n")
	}
	if s.UI != nil && (len(s.UI.Docs) > 0 || len(s.UI.Widgets) > 0) {
		fmt.Fprintf(&b, "    module %s {\n", ModUI)
		for _, path := range sortedKeys(s.UI.Docs) {
			fmt.Fprintf(&b, "        doc %s %q;\n", path, s.UI.Docs[path])
		}
		for _, path := range sortedKeys(s.UI.Widgets) {
			fmt.Fprintf(&b, "        widget %s %s;\n", path, s.UI.Widgets[path])
		}
		b.WriteString("    };\n")
	}
	for _, m := range s.Unknown {
		fmt.Fprintf(&b, "    module %s {\n", m.Name)
		for _, line := range strings.Split(m.Body, "\n") {
			fmt.Fprintf(&b, "        %s\n", strings.TrimSpace(line))
		}
		b.WriteString("    };\n")
	}
	b.WriteString("};\n")
	return b.String()
}

func writeDoc(b *strings.Builder, indent, doc string) {
	for _, line := range strings.Split(doc, "\n") {
		fmt.Fprintf(b, "%s// %s\n", indent, line)
	}
}

func writeTypeDecl(b *strings.Builder, t *Type) {
	switch t.Kind {
	case Enum:
		fmt.Fprintf(b, "    enum %s { %s };\n", t.Name, strings.Join(t.Literals, ", "))
	case Struct:
		fmt.Fprintf(b, "    struct %s {\n", t.Name)
		for _, f := range t.Fields {
			fmt.Fprintf(b, "        %s %s;\n", typeRef(f.Type), f.Name)
		}
		b.WriteString("    };\n")
	default:
		fmt.Fprintf(b, "    typedef %s %s;\n", typeRefAnon(t), t.Name)
	}
}

// typeRef renders a type reference: named types by name, anonymous ones
// structurally.
func typeRef(t *Type) string {
	if t == nil {
		return "void"
	}
	if t.Name != "" {
		return t.Name
	}
	return typeRefAnon(t)
}

// typeRefAnon renders the structural spelling, ignoring the name (used
// for the right-hand side of a typedef).
func typeRefAnon(t *Type) string {
	switch t.Kind {
	case Sequence:
		return "sequence<" + typeRef(t.Elem) + ">"
	case Enum:
		return "enum { " + strings.Join(t.Literals, ", ") + " }"
	case Struct:
		var b strings.Builder
		b.WriteString("struct { ")
		for _, f := range t.Fields {
			fmt.Fprintf(&b, "%s %s; ", typeRef(f.Type), f.Name)
		}
		b.WriteString("}")
		return b.String()
	default:
		return t.Kind.String()
	}
}

// litTypeRef picks an IDL const type for a literal: enum literals use
// their declaring type if it can be found in the SID, other literals use
// the natural basic type.
func litTypeRef(s *SID, l Lit) string {
	switch l.Kind {
	case LitBool:
		return "boolean"
	case LitInt:
		return "long long"
	case LitFloat:
		return "double"
	case LitString:
		return "string"
	case LitEnum:
		for _, t := range s.Types {
			if t.Kind == Enum {
				if _, ok := t.Ordinal(l.Enum); ok {
					return t.Name
				}
			}
		}
		return "string" // unreachable for validated SIDs
	}
	return "string"
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
