package sidl

import (
	"strings"
	"testing"
)

// TestRoundTripCarRental is the central codec property of the SID-as-
// first-class-object design: marshalling a SID to its textual form and
// re-parsing yields an equivalent description.
func TestRoundTripCarRental(t *testing.T) {
	orig := CarRentalSID()
	text, err := orig.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var again SID
	if err := again.UnmarshalText(text); err != nil {
		t.Fatalf("UnmarshalText: %v\ntext:\n%s", err, text)
	}
	assertSIDEquivalent(t, orig, &again)

	// And once more: the canonical form must be a fixed point.
	text2, err := again.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != string(text2) {
		t.Fatalf("canonical form is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func assertSIDEquivalent(t *testing.T, a, b *SID) {
	t.Helper()
	if a.ServiceName != b.ServiceName {
		t.Fatalf("ServiceName %q != %q", a.ServiceName, b.ServiceName)
	}
	if a.Doc != b.Doc {
		t.Fatalf("Doc %q != %q", a.Doc, b.Doc)
	}
	if len(a.Types) != len(b.Types) {
		t.Fatalf("len(Types) %d != %d", len(a.Types), len(b.Types))
	}
	for i := range a.Types {
		if a.Types[i].Name != b.Types[i].Name || !a.Types[i].Equal(b.Types[i]) {
			t.Fatalf("type %d: %s != %s", i, a.Types[i], b.Types[i])
		}
	}
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("len(Ops) %d != %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		ao, bo := a.Ops[i], b.Ops[i]
		if ao.Doc != bo.Doc {
			t.Fatalf("op %s doc %q != %q", ao.Name, ao.Doc, bo.Doc)
		}
		if !ao.Equal(bo) {
			t.Fatalf("op %d differs: %+v vs %+v", i, ao, bo)
		}
	}
	if len(a.Consts) != len(b.Consts) {
		t.Fatalf("len(Consts) %d != %d", len(a.Consts), len(b.Consts))
	}
	for i := range a.Consts {
		if a.Consts[i].Name != b.Consts[i].Name || !a.Consts[i].Value.Equal(b.Consts[i].Value) {
			t.Fatalf("const %d differs", i)
		}
	}
	if !a.FSM.Equal(b.FSM) {
		t.Fatalf("FSM %s != %s", a.FSM, b.FSM)
	}
	switch {
	case a.Trader == nil && b.Trader == nil:
	case a.Trader == nil || b.Trader == nil:
		t.Fatalf("trader presence differs")
	default:
		if a.Trader.ServiceID != b.Trader.ServiceID || a.Trader.TypeOfService != b.Trader.TypeOfService {
			t.Fatalf("trader header differs: %+v vs %+v", a.Trader, b.Trader)
		}
		if len(a.Trader.Properties) != len(b.Trader.Properties) {
			t.Fatalf("trader properties differ")
		}
		for i := range a.Trader.Properties {
			if a.Trader.Properties[i] != b.Trader.Properties[i] {
				t.Fatalf("trader property %d: %+v vs %+v", i, a.Trader.Properties[i], b.Trader.Properties[i])
			}
		}
	}
	if a.UI != nil || b.UI != nil {
		for k, v := range a.UI.Docs {
			if b.UI.Doc(k) != v {
				t.Fatalf("UI doc %q differs", k)
			}
		}
		for k, v := range a.UI.Widgets {
			if b.UI.Widget(k) != v {
				t.Fatalf("UI widget %q differs", k)
			}
		}
		if len(a.UI.Docs) != len(b.UI.Docs) || len(a.UI.Widgets) != len(b.UI.Widgets) {
			t.Fatalf("UI sizes differ")
		}
	}
	if len(a.Unknown) != len(b.Unknown) {
		t.Fatalf("len(Unknown) %d != %d", len(a.Unknown), len(b.Unknown))
	}
	for i := range a.Unknown {
		if a.Unknown[i].Name != b.Unknown[i].Name {
			t.Fatalf("unknown module %d name differs", i)
		}
	}
}

func TestRoundTripTypeZoo(t *testing.T) {
	src := `
module Zoo {
    typedef sequence<sequence<double>> Matrix_t;
    typedef enum { A, B } E_t;
    struct S_t {
        Matrix_t m;
        E_t e;
        sequence<octet> blob;
        Object peer;
        unsigned long long big;
        short small;
        boolean flag;
    };
    const boolean Yes = TRUE;
    const double Pi = 3.25;
    const string Who = "zoo \"keeper\"\n";
    const E_t Choice = B;
    interface COSM_Operations {
        S_t Echo(in S_t v, out E_t pick);
    };
};
`
	first, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(first.IDL())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, first.IDL())
	}
	assertSIDEquivalent(t, first, again)
	if c, ok := again.Const("Who"); !ok || c.Value.Str != "zoo \"keeper\"\n" {
		t.Fatalf("string const escaping broken: %+v", c)
	}
	if c, ok := again.Const("Yes"); !ok || !c.Value.Bool {
		t.Fatalf("bool const broken: %+v", c)
	}
}

func TestFloatConstRelexesAsFloat(t *testing.T) {
	// A whole-number float const must print with a decimal point so it
	// re-parses as a float.
	sid := &SID{
		ServiceName: "S",
		Consts:      []Const{{Name: "F", Type: Basic(Float64), Value: FloatLit(80)}},
		Ops:         []Op{{Name: "Ping", Result: Basic(Void)}},
	}
	out := sid.IDL()
	if !strings.Contains(out, "80.0") {
		t.Fatalf("float const printed without decimal point:\n%s", out)
	}
	again, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := again.Const("F")
	if c.Value.Kind != LitFloat || c.Value.Float != 80 {
		t.Fatalf("const F = %+v", c.Value)
	}
}

func TestLitString(t *testing.T) {
	tests := []struct {
		lit  Lit
		want string
	}{
		{BoolLit(true), "TRUE"},
		{BoolLit(false), "FALSE"},
		{IntLit(-42), "-42"},
		{FloatLit(1.5), "1.5"},
		{FloatLit(3), "3.0"},
		{StringLit("a\"b"), `"a\"b"`},
		{EnumLit("AUDI"), "AUDI"},
	}
	for _, tt := range tests {
		if got := tt.lit.String(); got != tt.want {
			t.Fatalf("Lit%+v.String() = %q, want %q", tt.lit, got, tt.want)
		}
	}
}

func TestIDLContainsPaperStructure(t *testing.T) {
	// The rendered form must exhibit the embedding structure of the
	// paper's section-4.1 listing: one top module, the COSM_Operations
	// interface, and extension modules inside it.
	out := CarRentalSID().IDL()
	for _, want := range []string{
		"module CarRentalService {",
		"interface COSM_Operations {",
		"module COSM_TraderExport {",
		"const unsigned long ServiceID = 4711;",
		`const string TOD = "CarRentalService";`,
		"module COSM_FSM {",
		"transition SELECTED Commit INIT;",
		"module COSM_UI {",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("IDL output lacks %q:\n%s", want, out)
		}
	}
}
