package sidl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds of the SIDL concrete syntax.
type tokKind uint8

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // single-rune punctuation: ; , { } ( ) < > = .
)

// token is one lexical token, carrying source offsets so the parser can
// slice verbatim text (for RawModule preservation) and report positions.
type token struct {
	kind tokKind
	text string // identifier text, literal text, or punctuation rune
	str  string // decoded value for tokString
	pos  int    // byte offset of the token start
	end  int    // byte offset just past the token
	line int    // 1-based line of the token start
	// doc holds the comment block immediately preceding the token, with
	// comment markers stripped; used to attach documentation.
	doc string
}

// lexer produces tokens from SIDL source text. It strips // and /* */
// comments, recording immediately-preceding comment blocks as doc text.
type lexer struct {
	src  string
	off  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errorf(line int, format string, args ...any) error {
	return fmt.Errorf("sidl: line %d: %s", line, fmt.Sprintf(format, args...))
}

// next returns the next token, or an error on malformed input.
func (lx *lexer) next() (token, error) {
	var doc strings.Builder
	docLine := -2 // line of the last comment line seen
	for {
		lx.skipSpace()
		if lx.off >= len(lx.src) {
			return token{kind: tokEOF, pos: lx.off, end: lx.off, line: lx.line}, nil
		}
		// Comments.
		if strings.HasPrefix(lx.src[lx.off:], "//") {
			start := lx.off + 2
			end := strings.IndexByte(lx.src[start:], '\n')
			if end < 0 {
				end = len(lx.src) - start
			}
			text := strings.TrimSpace(lx.src[start : start+end])
			if docLine >= 0 && lx.line != docLine+1 {
				doc.Reset() // gap between comment blocks: keep only the last
			}
			if doc.Len() > 0 {
				doc.WriteByte('\n')
			}
			doc.WriteString(text)
			docLine = lx.line
			lx.off = start + end
			continue
		}
		if strings.HasPrefix(lx.src[lx.off:], "/*") {
			end := strings.Index(lx.src[lx.off+2:], "*/")
			if end < 0 {
				return token{}, lx.errorf(lx.line, "unterminated block comment")
			}
			body := lx.src[lx.off+2 : lx.off+2+end]
			lx.line += strings.Count(body, "\n")
			doc.Reset()
			doc.WriteString(strings.TrimSpace(body))
			docLine = lx.line
			lx.off += 2 + end + 2
			continue
		}
		break
	}
	// A doc comment counts only if it immediately precedes the token.
	docText := ""
	if docLine >= 0 && lx.line <= docLine+1 {
		docText = doc.String()
	}

	start, startLine := lx.off, lx.line
	c, size := utf8.DecodeRuneInString(lx.src[lx.off:])
	switch {
	case isIdentStart(c):
		for lx.off < len(lx.src) {
			r, n := utf8.DecodeRuneInString(lx.src[lx.off:])
			if !isIdentPart(r) {
				break
			}
			lx.off += n
		}
		return token{kind: tokIdent, text: lx.src[start:lx.off], pos: start, end: lx.off, line: startLine, doc: docText}, nil

	case c >= '0' && c <= '9', c == '-' && lx.peekDigit(1), c == '+' && lx.peekDigit(1):
		return lx.lexNumber(start, startLine, docText)

	case c == '"':
		lx.off += size
		var b strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return token{}, lx.errorf(startLine, "unterminated string literal")
			}
			r, n := utf8.DecodeRuneInString(lx.src[lx.off:])
			lx.off += n
			if r == '"' {
				break
			}
			if r == '\n' {
				return token{}, lx.errorf(startLine, "newline in string literal")
			}
			if r == '\\' {
				if lx.off >= len(lx.src) {
					return token{}, lx.errorf(startLine, "unterminated escape")
				}
				e, m := utf8.DecodeRuneInString(lx.src[lx.off:])
				lx.off += m
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteRune(e)
				default:
					return token{}, lx.errorf(startLine, "unknown escape \\%c", e)
				}
				continue
			}
			b.WriteRune(r)
		}
		return token{kind: tokString, text: lx.src[start:lx.off], str: b.String(), pos: start, end: lx.off, line: startLine, doc: docText}, nil

	case strings.ContainsRune(";,{}()<>=.", c):
		lx.off += size
		return token{kind: tokPunct, text: string(c), pos: start, end: lx.off, line: startLine, doc: docText}, nil
	}
	return token{}, lx.errorf(startLine, "unexpected character %q", c)
}

func (lx *lexer) lexNumber(start, startLine int, docText string) (token, error) {
	if lx.src[lx.off] == '-' || lx.src[lx.off] == '+' {
		lx.off++
	}
	isFloat := false
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		switch {
		case c >= '0' && c <= '9':
			lx.off++
		case c == '.':
			if isFloat {
				return token{}, lx.errorf(startLine, "malformed number %q", lx.src[start:lx.off+1])
			}
			isFloat = true
			lx.off++
		case c == 'e' || c == 'E':
			isFloat = true
			lx.off++
			if lx.off < len(lx.src) && (lx.src[lx.off] == '-' || lx.src[lx.off] == '+') {
				lx.off++
			}
		default:
			goto done
		}
	}
done:
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: lx.src[start:lx.off], pos: start, end: lx.off, line: startLine, doc: docText}, nil
}

func (lx *lexer) peekDigit(ahead int) bool {
	i := lx.off + ahead
	return i < len(lx.src) && lx.src[i] >= '0' && lx.src[i] <= '9'
}

func (lx *lexer) skipSpace() {
	for lx.off < len(lx.src) {
		switch lx.src[lx.off] {
		case ' ', '\t', '\r':
			lx.off++
		case '\n':
			lx.line++
			lx.off++
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
