package sidl

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"cosm/internal/fsm"
)

// Dir is the direction of an operation parameter.
type Dir uint8

// Parameter directions, as in CORBA IDL.
const (
	In Dir = iota + 1
	Out
	InOut
)

// String returns the IDL spelling of the direction.
func (d Dir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Param is one operation parameter.
type Param struct {
	Name string
	Dir  Dir
	Type *Type
}

// Op is one operation signature of the service's computational
// interface (the COSM_Operations interface of the embedded IDL module).
type Op struct {
	Name string
	// Result is the result type; Void for one-way style operations.
	Result *Type
	Params []Param
	// Doc is the natural-language annotation attached to the operation
	// (from a doc comment or a COSM_UI "doc" directive).
	Doc string
}

// Clone returns a deep copy of the operation.
func (o Op) Clone() Op {
	c := Op{Name: o.Name, Result: o.Result.Clone(), Doc: o.Doc}
	for _, p := range o.Params {
		c.Params = append(c.Params, Param{Name: p.Name, Dir: p.Dir, Type: p.Type.Clone()})
	}
	return c
}

// Equal reports structural equality of two signatures (docs ignored).
func (o Op) Equal(p Op) bool {
	if o.Name != p.Name || !o.Result.Equal(p.Result) || len(o.Params) != len(p.Params) {
		return false
	}
	for i := range o.Params {
		a, b := o.Params[i], p.Params[i]
		if a.Name != b.Name || a.Dir != b.Dir || !a.Type.Equal(b.Type) {
			return false
		}
	}
	return true
}

// LitKind enumerates literal (constant) value kinds.
type LitKind uint8

// Literal kinds for SIDL constants and trader property values.
const (
	LitBool LitKind = iota + 1
	LitInt
	LitFloat
	LitString
	LitEnum
)

// Lit is a literal constant value: the value of a "const" declaration or
// of a trader-export service property.
type Lit struct {
	Kind  LitKind
	Bool  bool
	Int   int64
	Float float64
	Str   string
	// Enum is the literal identifier for LitEnum values.
	Enum string
}

// BoolLit, IntLit, FloatLit, StringLit and EnumLit construct literals.
func BoolLit(v bool) Lit     { return Lit{Kind: LitBool, Bool: v} }
func IntLit(v int64) Lit     { return Lit{Kind: LitInt, Int: v} }
func FloatLit(v float64) Lit { return Lit{Kind: LitFloat, Float: v} }
func StringLit(v string) Lit { return Lit{Kind: LitString, Str: v} }
func EnumLit(lit string) Lit { return Lit{Kind: LitEnum, Enum: lit} }

// String renders the literal in IDL syntax.
func (l Lit) String() string {
	switch l.Kind {
	case LitBool:
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	case LitInt:
		return strconv.FormatInt(l.Int, 10)
	case LitFloat:
		s := strconv.FormatFloat(l.Float, 'g', -1, 64)
		// Ensure a float literal re-lexes as a float, not an int.
		if !containsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case LitString:
		return strconv.Quote(l.Str)
	case LitEnum:
		return l.Enum
	}
	return fmt.Sprintf("Lit(%d)", uint8(l.Kind))
}

func containsAny(s, chars string) bool {
	for _, c := range s {
		for _, d := range chars {
			if c == d {
				return true
			}
		}
	}
	return false
}

// Equal reports literal equality.
func (l Lit) Equal(o Lit) bool { return l == o }

// Const is a module-level constant declaration of the base SID part.
type Const struct {
	Name  string
	Type  *Type
	Value Lit
}

// Property is one characterising attribute value of a trader export
// (section 2.1: the exporter supplies values for all attributes of the
// service type, e.g. CarModel = FIAT_Uno).
type Property struct {
	Name  string
	Value Lit
}

// TraderExport is the COSM_TraderExport extension module (section 4.1):
// it carries the information an ODP trader needs to register the service
// as an offer of a standardised service type.
type TraderExport struct {
	// ServiceID is the provider-chosen offer identifier (4711 in the
	// paper's example).
	ServiceID uint64
	// TypeOfService names the standardised service type ("TOD" in the
	// paper's listing, e.g. "CarRentalService").
	TypeOfService string
	// Properties are the attribute values, in declaration order.
	Properties []Property
}

// Property returns the named property value.
func (t *TraderExport) Property(name string) (Lit, bool) {
	if t == nil {
		return Lit{}, false
	}
	for _, p := range t.Properties {
		if p.Name == name {
			return p.Value, true
		}
	}
	return Lit{}, false
}

// UISpec is the COSM_UI extension module: natural-language annotations
// and widget hints that drive automatic user interface generation at the
// generic client (sections 3.2 and 4.2, Figs. 3 and 7).
type UISpec struct {
	// Docs maps an element path to its annotation. Paths are dotted:
	// "SelectCar" for an operation, "SelectCar.selection" for one of its
	// parameters, "SelectCar.selection.model" for a record member.
	Docs map[string]string
	// Widgets maps an element path to a widget hint understood by the
	// UIMS, e.g. "choice", "text", "check", "spin".
	Widgets map[string]string
}

// Doc returns the annotation for path ("" if absent).
func (u *UISpec) Doc(path string) string {
	if u == nil {
		return ""
	}
	return u.Docs[path]
}

// Widget returns the widget hint for path ("" if absent).
func (u *UISpec) Widget(path string) string {
	if u == nil {
		return ""
	}
	return u.Widgets[path]
}

// RawModule preserves an embedded module this implementation does not
// understand. Per the paper (section 4.1), IDL interpreters "recognise
// only known module names and skip those that do not bear any meaning to
// them"; preserving the raw text keeps extended SIDs round-trippable, so
// a COSM node can forward descriptions it cannot interpret itself.
type RawModule struct {
	Name string
	// Body is the verbatim source text between the module's braces.
	Body string
}

// SID is a Service Interface Description: the communicable first-class
// service description at the centre of the COSM architecture.
type SID struct {
	// ServiceName is the name of the top-level IDL module.
	ServiceName string
	// Doc is the service-level annotation (doc comment on the module).
	Doc string
	// Types lists the named type declarations in order.
	Types []*Type
	// Consts lists base-part constant declarations in order.
	Consts []Const
	// Ops lists the operation signatures of the computational interface.
	Ops []Op

	// FSM is the optional protocol restriction (nil or unrestricted if
	// absent).
	FSM *fsm.Spec
	// Trader is the optional trader-export extension.
	Trader *TraderExport
	// UI is the optional user-interface annotation extension.
	UI *UISpec
	// Unknown preserves embedded modules with unrecognised names.
	Unknown []RawModule
}

// Errors reported by SID validation.
var (
	ErrNoName       = errors.New("sidl: SID has no service name")
	ErrDupType      = errors.New("sidl: duplicate type name")
	ErrDupOp        = errors.New("sidl: duplicate operation name")
	ErrUnknownOp    = errors.New("sidl: reference to unknown operation")
	ErrBadParamName = errors.New("sidl: duplicate parameter name")
)

// Type returns the named type declaration, or nil.
func (s *SID) Type(name string) *Type {
	for _, t := range s.Types {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Op returns the named operation signature.
func (s *SID) Op(name string) (Op, bool) {
	for _, o := range s.Ops {
		if o.Name == name {
			return o, true
		}
	}
	return Op{}, false
}

// OpNames returns the operation names in declaration order.
func (s *SID) OpNames() []string {
	names := make([]string, len(s.Ops))
	for i, o := range s.Ops {
		names[i] = o.Name
	}
	return names
}

// Const returns the named base-part constant.
func (s *SID) Const(name string) (Const, bool) {
	for _, c := range s.Consts {
		if c.Name == name {
			return c, true
		}
	}
	return Const{}, false
}

// Validate checks the internal consistency of the description:
// non-empty service name, unique type/operation/parameter names, a valid
// FSM whose operations all exist in the signature, and UI annotations
// that reference existing operations.
func (s *SID) Validate() error {
	if s.ServiceName == "" {
		return ErrNoName
	}
	typeNames := make(map[string]bool, len(s.Types))
	for _, t := range s.Types {
		if t.Name == "" {
			return fmt.Errorf("sidl: unnamed top-level type in %s", s.ServiceName)
		}
		if typeNames[t.Name] {
			return fmt.Errorf("%w: %s", ErrDupType, t.Name)
		}
		typeNames[t.Name] = true
	}
	opNames := make(map[string]bool, len(s.Ops))
	for _, o := range s.Ops {
		if opNames[o.Name] {
			return fmt.Errorf("%w: %s", ErrDupOp, o.Name)
		}
		opNames[o.Name] = true
		params := make(map[string]bool, len(o.Params))
		for _, p := range o.Params {
			if params[p.Name] {
				return fmt.Errorf("%w: %s in op %s", ErrBadParamName, p.Name, o.Name)
			}
			params[p.Name] = true
			if p.Type == nil || p.Type.Kind == Void {
				return fmt.Errorf("sidl: parameter %s of op %s has void type", p.Name, o.Name)
			}
		}
		if o.Result == nil {
			return fmt.Errorf("sidl: op %s has nil result type", o.Name)
		}
	}
	if s.FSM.Restricted() {
		if err := s.FSM.Validate(); err != nil {
			return fmt.Errorf("sidl: %s: %w", s.ServiceName, err)
		}
		for _, t := range s.FSM.Transitions {
			if !opNames[t.Op] {
				return fmt.Errorf("%w: FSM transition op %q", ErrUnknownOp, t.Op)
			}
		}
	}
	if s.UI != nil {
		for path := range s.UI.Docs {
			if err := s.checkUIPath(path, opNames); err != nil {
				return err
			}
		}
		for path := range s.UI.Widgets {
			if err := s.checkUIPath(path, opNames); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *SID) checkUIPath(path string, opNames map[string]bool) error {
	head := path
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			head = path[:i]
			break
		}
	}
	if !opNames[head] {
		return fmt.Errorf("%w: UI annotation path %q", ErrUnknownOp, path)
	}
	return nil
}

// ConformsTo implements SID-level record extension (section 3.1, Fig. 2):
// s conforms to base if it contains at least base's elements — every
// base operation with a structurally equal signature, and every base
// named type with an equal structure. Extensions (additional types, ops,
// FSM, trader export, UI annotations, unknown modules) never break
// conformance: components expecting the base description simply ignore
// them.
func (s *SID) ConformsTo(base *SID) error {
	for _, bt := range base.Types {
		st := s.Type(bt.Name)
		if st == nil {
			return fmt.Errorf("%w: missing base type %s", ErrNotConformant, bt.Name)
		}
		if !st.ConformsTo(bt) {
			return fmt.Errorf("%w: type %s does not conform to base", ErrNotConformant, bt.Name)
		}
	}
	for _, bo := range base.Ops {
		so, ok := s.Op(bo.Name)
		if !ok {
			return fmt.Errorf("%w: missing base operation %s", ErrNotConformant, bo.Name)
		}
		// Docs may differ; signatures must match structurally.
		so.Doc, bo.Doc = "", ""
		if !so.Equal(bo) {
			return fmt.Errorf("%w: operation %s signature differs from base", ErrNotConformant, bo.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the description.
func (s *SID) Clone() *SID {
	c := &SID{ServiceName: s.ServiceName, Doc: s.Doc}
	for _, t := range s.Types {
		c.Types = append(c.Types, t.Clone())
	}
	for _, k := range s.Consts {
		c.Consts = append(c.Consts, Const{Name: k.Name, Type: k.Type.Clone(), Value: k.Value})
	}
	for _, o := range s.Ops {
		c.Ops = append(c.Ops, o.Clone())
	}
	c.FSM = s.FSM.Clone()
	if s.Trader != nil {
		te := &TraderExport{ServiceID: s.Trader.ServiceID, TypeOfService: s.Trader.TypeOfService}
		te.Properties = append(te.Properties, s.Trader.Properties...)
		c.Trader = te
	}
	if s.UI != nil {
		u := &UISpec{Docs: map[string]string{}, Widgets: map[string]string{}}
		for k, v := range s.UI.Docs {
			u.Docs[k] = v
		}
		for k, v := range s.UI.Widgets {
			u.Widgets[k] = v
		}
		c.UI = u
	}
	c.Unknown = append(c.Unknown, s.Unknown...)
	return c
}

// Keywords returns a lowercase keyword set for browser search (service
// name, op names, type names, annotation words). Sorted, deduplicated.
func (s *SID) Keywords() []string {
	set := map[string]bool{lower(s.ServiceName): true}
	for _, o := range s.Ops {
		set[lower(o.Name)] = true
		addWords(set, o.Doc)
	}
	for _, t := range s.Types {
		set[lower(t.Name)] = true
	}
	addWords(set, s.Doc)
	if s.UI != nil {
		for _, d := range s.UI.Docs {
			addWords(set, d)
		}
	}
	delete(set, "")
	words := make([]string, 0, len(set))
	for w := range set {
		words = append(words, w)
	}
	sort.Strings(words)
	return words
}

func addWords(set map[string]bool, text string) {
	word := make([]rune, 0, 16)
	flush := func() {
		if len(word) > 0 {
			set[string(word)] = true
			word = word[:0]
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			word = append(word, r)
		case r >= 'A' && r <= 'Z':
			word = append(word, r+('a'-'A'))
		default:
			flush()
		}
	}
	flush()
}

func lower(s string) string {
	b := []rune(s)
	for i, r := range b {
		if r >= 'A' && r <= 'Z' {
			b[i] = r + ('a' - 'A')
		}
	}
	return string(b)
}
