package sidl

import (
	"errors"
	"strings"
	"testing"

	"cosm/internal/fsm"
)

func TestParseCarRental(t *testing.T) {
	sid := CarRentalSID()

	if sid.ServiceName != "CarRentalService" {
		t.Fatalf("ServiceName = %q", sid.ServiceName)
	}
	if sid.Doc != "Rents cars of several models at a daily charge." {
		t.Fatalf("Doc = %q", sid.Doc)
	}
	if len(sid.Types) != 5 {
		t.Fatalf("len(Types) = %d, want 5", len(sid.Types))
	}
	cm := sid.Type("CarModel_t")
	if cm == nil || cm.Kind != Enum || len(cm.Literals) != 3 || cm.Literals[1] != "FIAT_Uno" {
		t.Fatalf("CarModel_t = %+v", cm)
	}
	sel := sid.Type("SelectCar_t")
	if sel == nil || sel.Kind != Struct || len(sel.Fields) != 3 {
		t.Fatalf("SelectCar_t = %+v", sel)
	}
	if f, ok := sel.Field("model"); !ok || f.Type.Name != "CarModel_t" {
		t.Fatalf("SelectCar_t.model = %+v, %v", f, ok)
	}

	if got := sid.OpNames(); len(got) != 2 || got[0] != "SelectCar" || got[1] != "Commit" {
		t.Fatalf("OpNames = %v", got)
	}
	op, ok := sid.Op("SelectCar")
	if !ok {
		t.Fatal("missing SelectCar")
	}
	if op.Doc != "Check availability and price of a car model." {
		t.Fatalf("SelectCar doc = %q", op.Doc)
	}
	if len(op.Params) != 1 || op.Params[0].Dir != In || op.Params[0].Type.Name != "SelectCar_t" {
		t.Fatalf("SelectCar params = %+v", op.Params)
	}
	if op.Result.Name != "SelectCarReturn_t" {
		t.Fatalf("SelectCar result = %s", op.Result)
	}

	// FSM module — the paper's exact transition set.
	if !sid.FSM.Restricted() {
		t.Fatal("FSM must be restricted")
	}
	if !sid.FSM.Equal(fsm.CarRentalSpec()) && sid.FSM.Initial != "INIT" {
		t.Fatalf("FSM = %s", sid.FSM)
	}
	if to, ok := sid.FSM.Next("SELECTED", "Commit"); !ok || to != "INIT" {
		t.Fatalf("FSM Next(SELECTED, Commit) = %q, %v", to, ok)
	}

	// Trader export module — the paper's listing.
	if sid.Trader == nil {
		t.Fatal("missing trader export")
	}
	if sid.Trader.ServiceID != 4711 || sid.Trader.TypeOfService != "CarRentalService" {
		t.Fatalf("Trader = %+v", sid.Trader)
	}
	if v, ok := sid.Trader.Property("CarModel"); !ok || v.Kind != LitEnum || v.Enum != "FIAT_Uno" {
		t.Fatalf("CarModel property = %+v, %v", v, ok)
	}
	if v, ok := sid.Trader.Property("ChargePerDay"); !ok || v.Kind != LitFloat || v.Float != 80 {
		t.Fatalf("ChargePerDay property = %+v, %v", v, ok)
	}
	if _, ok := sid.Trader.Property("Nonexistent"); ok {
		t.Fatal("Nonexistent property must be absent")
	}

	// UI module.
	if sid.UI.Doc("SelectCar") != "Choose a car model and booking date" {
		t.Fatalf("UI doc = %q", sid.UI.Doc("SelectCar"))
	}
	if sid.UI.Widget("SelectCar.selection.model") != "choice" {
		t.Fatalf("UI widget = %q", sid.UI.Widget("SelectCar.selection.model"))
	}
}

func TestParseTypeSpecVariants(t *testing.T) {
	src := `
module TypeZoo {
    typedef long long Big_t;
    typedef unsigned long Count_t;
    typedef unsigned long long Huge_t;
    typedef short Small_t;
    typedef octet Byte_t;
    typedef sequence<string> Names_t;
    typedef sequence<sequence<long>> Matrix_t;
    typedef enum { RED, GREEN } Color_t;
    typedef struct { long x; long y; } Point_t;
    typedef Object Peer_t;
    interface COSM_Operations {
        void Ping();
        Point_t Move(in Point_t from, inout Names_t tags, out Color_t seen);
    };
};
`
	sid, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := map[string]Kind{
		"Big_t": Int64, "Count_t": UInt32, "Huge_t": UInt64,
		"Small_t": Int16, "Byte_t": Octet, "Names_t": Sequence,
		"Matrix_t": Sequence, "Color_t": Enum, "Point_t": Struct,
		"Peer_t": SvcRef,
	}
	for name, kind := range wantKinds {
		tt := sid.Type(name)
		if tt == nil || tt.Kind != kind {
			t.Fatalf("type %s = %+v, want kind %s", name, tt, kind)
		}
	}
	if elem := sid.Type("Matrix_t").Elem; elem.Kind != Sequence || elem.Elem.Kind != Int32 {
		t.Fatalf("Matrix_t element = %+v", elem)
	}
	op, _ := sid.Op("Move")
	if op.Params[1].Dir != InOut || op.Params[2].Dir != Out {
		t.Fatalf("Move dirs = %+v", op.Params)
	}
	ping, _ := sid.Op("Ping")
	if ping.Result.Kind != Void || len(ping.Params) != 0 {
		t.Fatalf("Ping = %+v", ping)
	}
}

func TestParseUnknownModuleSkipped(t *testing.T) {
	// An extension module this implementation does not understand must
	// be skipped and preserved, exactly as section 4.1 requires of
	// CORBA-compliant components.
	src := `
module Svc {
    interface COSM_Operations {
        void Ping();
    };
    module COSM_QoSContract {
        const long MaxLatencyMs = 20;
        module Nested { const string x = "deep { braces } too"; };
    };
};
`
	sid, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sid.Unknown) != 1 || sid.Unknown[0].Name != "COSM_QoSContract" {
		t.Fatalf("Unknown = %+v", sid.Unknown)
	}
	if !strings.Contains(sid.Unknown[0].Body, "MaxLatencyMs") {
		t.Fatalf("raw body lost: %q", sid.Unknown[0].Body)
	}
	if !strings.Contains(sid.Unknown[0].Body, "deep { braces } too") {
		t.Fatalf("nested raw body lost: %q", sid.Unknown[0].Body)
	}
	// The preserved module must survive a round trip.
	again, err := Parse(sid.IDL())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(again.Unknown) != 1 || !strings.Contains(again.Unknown[0].Body, "MaxLatencyMs") {
		t.Fatalf("round-tripped Unknown = %+v", again.Unknown)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no module", "interface X {};"},
		{"unterminated module", "module X {"},
		{"unknown type", "module X { typedef Bogus_t T; };"},
		{"forward reference", "module X { typedef B_t A_t; typedef long B_t; };"},
		{"dup type", "module X { typedef long T; typedef string T; };"},
		{"dup enum literal", "module X { enum E { A, A }; };"},
		{"dup struct field", "module X { struct S { long a; long a; }; };"},
		{"empty struct", "module X { struct S { }; };"},
		{"const type mismatch int for string", `module X { const string S = 42; };`},
		{"const type mismatch string for long", `module X { const long N = "x"; };`},
		{"const bool for long", `module X { const long N = TRUE; };`},
		{"const unknown enum literal", `module X { enum E { A }; const E e = B; };`},
		{"fsm without initial", "module X { interface COSM_Operations { void F(); }; module COSM_FSM { transition A F B; }; };"},
		{"fsm dup initial", "module X { interface COSM_Operations { void F(); }; module COSM_FSM { initial A; initial B; transition A F B; }; };"},
		{"fsm unknown op", "module X { interface COSM_Operations { void F(); }; module COSM_FSM { initial A; transition A Bogus B; }; };"},
		{"fsm junk", "module X { module COSM_FSM { frobnicate; }; };"},
		{"trader without TOD", "module X { module COSM_TraderExport { const unsigned long ServiceID = 1; }; };"},
		{"trader bad ServiceID", `module X { module COSM_TraderExport { const string ServiceID = "x"; const string TOD = "T"; }; };`},
		{"trader non-const", `module X { module COSM_TraderExport { typedef long T; }; };`},
		{"dup trader", `module X { module COSM_TraderExport { const string TOD = "T"; }; module COSM_TraderExport { const string TOD = "T"; }; };`},
		{"ui doc without string", "module X { interface COSM_Operations { void F(); }; module COSM_UI { doc F; }; };"},
		{"ui unknown directive", "module X { module COSM_UI { paint F red; }; };"},
		{"ui path for unknown op", `module X { interface COSM_Operations { void F(); }; module COSM_UI { doc G "gone"; }; };`},
		{"dup op", "module X { interface COSM_Operations { void F(); void F(); }; };"},
		{"dup param", "module X { interface COSM_Operations { void F(in long a, in long a); }; };"},
		{"void param", "module X { interface COSM_Operations { void F(in void a); }; };"},
		{"unterminated string", `module X { const string S = "oops; };`},
		{"newline in string", "module X { const string S = \"a\nb\"; };"},
		{"unterminated comment", "module X { /* forever };"},
		{"bad char", "module X { @ };"},
		{"trailing garbage", "module X { }; extra"},
		{"unterminated unknown module", "module X { module Y { "},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error")
			}
		})
	}
}

func TestParseSyntaxErrorsAreWrapped(t *testing.T) {
	_, err := Parse("module X { typedef ???; };")
	if !errors.Is(err, ErrSyntax) {
		t.Fatalf("err = %v, want ErrSyntax", err)
	}
}

func TestParseErrorMentionsLine(t *testing.T) {
	src := "module X {\n  typedef long T;\n  bogus decl;\n};"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want mention of line 3", err)
	}
}

func TestDocCommentAttachment(t *testing.T) {
	src := `
// Module doc line one.
// Module doc line two.
module Svc {
    interface COSM_Operations {
        // First op doc.
        void A();

        // Dangling block, separated by the blank line above from A.
        // Attached to B.
        void B();
        void C();
    };
};
`
	sid, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if sid.Doc != "Module doc line one.\nModule doc line two." {
		t.Fatalf("module doc = %q", sid.Doc)
	}
	a, _ := sid.Op("A")
	if a.Doc != "First op doc." {
		t.Fatalf("A doc = %q", a.Doc)
	}
	b, _ := sid.Op("B")
	if !strings.Contains(b.Doc, "Attached to B.") {
		t.Fatalf("B doc = %q", b.Doc)
	}
	c, _ := sid.Op("C")
	if c.Doc != "" {
		t.Fatalf("C doc = %q, want empty", c.Doc)
	}
}

func TestBlockComments(t *testing.T) {
	src := `
/* A block-documented service. */
module Svc {
    /* multi
       line */
    interface COSM_Operations { void F(); };
};
`
	sid, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if sid.Doc != "A block-documented service." {
		t.Fatalf("doc = %q", sid.Doc)
	}
}

func TestKeywords(t *testing.T) {
	sid := CarRentalSID()
	kws := sid.Keywords()
	want := []string{"carrentalservice", "selectcar", "booking"}
	set := map[string]bool{}
	for _, k := range kws {
		set[k] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Fatalf("keyword %q missing from %v", w, kws)
		}
	}
}

func TestSIDConformsTo(t *testing.T) {
	base := CarRentalSID()

	t.Run("reflexive", func(t *testing.T) {
		if err := base.ConformsTo(base); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("extension conforms", func(t *testing.T) {
		ext := base.Clone()
		ext.Ops = append(ext.Ops, Op{Name: "CancelBooking", Result: Basic(Bool)})
		ext.Unknown = append(ext.Unknown, RawModule{Name: "COSM_Extra", Body: "const long x = 1;"})
		if err := ext.ConformsTo(base); err != nil {
			t.Fatal(err)
		}
		if err := base.ConformsTo(ext); err == nil {
			t.Fatal("base must not conform to extension with more ops")
		}
	})
	t.Run("missing op breaks conformance", func(t *testing.T) {
		sub := base.Clone()
		sub.Ops = sub.Ops[:1]
		if err := sub.ConformsTo(base); !errors.Is(err, ErrNotConformant) {
			t.Fatalf("err = %v, want ErrNotConformant", err)
		}
	})
	t.Run("changed signature breaks conformance", func(t *testing.T) {
		sub := base.Clone()
		sub.Ops[0].Result = Basic(Bool)
		if err := sub.ConformsTo(base); !errors.Is(err, ErrNotConformant) {
			t.Fatalf("err = %v, want ErrNotConformant", err)
		}
	})
	t.Run("missing type breaks conformance", func(t *testing.T) {
		sub := base.Clone()
		sub.Types = sub.Types[1:]
		if err := sub.ConformsTo(base); !errors.Is(err, ErrNotConformant) {
			t.Fatalf("err = %v, want ErrNotConformant", err)
		}
	})
}

func TestValidateDirect(t *testing.T) {
	tests := []struct {
		name string
		sid  *SID
		want error
	}{
		{"no name", &SID{}, ErrNoName},
		{"dup type", &SID{ServiceName: "S", Types: []*Type{EnumOf("E", "A"), EnumOf("E", "B")}}, ErrDupType},
		{"dup op", &SID{ServiceName: "S", Ops: []Op{{Name: "F", Result: Basic(Void)}, {Name: "F", Result: Basic(Void)}}}, ErrDupOp},
		{
			"fsm op unknown",
			&SID{ServiceName: "S", Ops: []Op{{Name: "F", Result: Basic(Void)}},
				FSM: &fsm.Spec{States: []string{"A"}, Initial: "A",
					Transitions: []fsm.Transition{{From: "A", Op: "G", To: "A"}}}},
			ErrUnknownOp,
		},
		{
			"ui path unknown",
			&SID{ServiceName: "S", Ops: []Op{{Name: "F", Result: Basic(Void)}},
				UI: &UISpec{Docs: map[string]string{"G.x": "doc"}}},
			ErrUnknownOp,
		},
		{
			"valid minimal",
			&SID{ServiceName: "S", Ops: []Op{{Name: "F", Result: Basic(Void)}}},
			nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.sid.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestParserDepthGuard(t *testing.T) {
	// A deeply nested sequence type must be rejected cleanly, not blow
	// the stack.
	deep := strings.Repeat("sequence<", 500) + "long" + strings.Repeat(">", 500)
	src := "module X { typedef " + deep + " T; };"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "nesting exceeds") {
		t.Fatalf("err = %v, want nesting guard", err)
	}
	// Moderate nesting still parses.
	ok := strings.Repeat("sequence<", 32) + "long" + strings.Repeat(">", 32)
	if _, err := Parse("module X { typedef " + ok + " T; interface COSM_Operations { void F(); }; };"); err != nil {
		t.Fatalf("moderate nesting failed: %v", err)
	}
}
