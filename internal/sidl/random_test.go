package sidl

import (
	"fmt"
	"math/rand"
	"testing"

	"cosm/internal/fsm"
)

// randomSID builds a pseudo-random, valid SID: named types with
// dependencies, operations over them, and random extension modules.
// It drives the parser/printer round-trip property test.
func randomSID(rng *rand.Rand) *SID {
	sid := &SID{ServiceName: fmt.Sprintf("Svc%d", rng.Intn(1_000_000))}
	if rng.Intn(2) == 0 {
		sid.Doc = "A randomly generated service."
	}

	// Named types, declare-before-use.
	nTypes := 1 + rng.Intn(6)
	for i := 0; i < nTypes; i++ {
		name := fmt.Sprintf("T%d_t", i)
		sid.Types = append(sid.Types, randomNamedType(rng, sid, name))
	}

	// Constants over scalar types.
	for i := rng.Intn(3); i > 0; i-- {
		sid.Consts = append(sid.Consts, Const{
			Name:  fmt.Sprintf("C%d", i),
			Type:  Basic(Int64),
			Value: IntLit(int64(rng.Intn(10000)) - 5000),
		})
	}

	// Operations.
	nOps := 1 + rng.Intn(5)
	for i := 0; i < nOps; i++ {
		op := Op{Name: fmt.Sprintf("Op%d", i), Result: randomRefType(rng, sid)}
		if rng.Intn(4) == 0 {
			op.Result = Basic(Void)
		}
		if rng.Intn(2) == 0 {
			op.Doc = fmt.Sprintf("Does operation %d.", i)
		}
		for p := rng.Intn(3); p > 0; p-- {
			dirs := []Dir{In, Out, InOut}
			op.Params = append(op.Params, Param{
				Name: fmt.Sprintf("p%d", p),
				Dir:  dirs[rng.Intn(len(dirs))],
				Type: randomRefType(rng, sid),
			})
		}
		sid.Ops = append(sid.Ops, op)
	}

	// FSM over a subset of ops.
	if rng.Intn(2) == 0 {
		spec := &fsm.Spec{States: []string{"S0", "S1"}, Initial: "S0"}
		seen := map[[2]string]bool{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			tr := fsm.Transition{
				From: spec.States[rng.Intn(2)],
				Op:   sid.Ops[rng.Intn(len(sid.Ops))].Name,
				To:   spec.States[rng.Intn(2)],
			}
			key := [2]string{tr.From, tr.Op}
			if seen[key] {
				continue
			}
			seen[key] = true
			spec.Transitions = append(spec.Transitions, tr)
		}
		// The textual form only mentions states appearing in the initial
		// declaration or a transition; restrict the state set to those
		// so the round trip is exact.
		states := map[string]bool{spec.Initial: true}
		ordered := []string{spec.Initial}
		for _, tr := range spec.Transitions {
			for _, s := range []string{tr.From, tr.To} {
				if !states[s] {
					states[s] = true
					ordered = append(ordered, s)
				}
			}
		}
		spec.States = ordered
		sid.FSM = spec
	}

	// Trader export.
	if rng.Intn(2) == 0 {
		te := &TraderExport{
			ServiceID:     uint64(rng.Intn(100000)),
			TypeOfService: sid.ServiceName + "Type",
		}
		te.Properties = append(te.Properties,
			Property{Name: "PropA", Value: FloatLit(float64(rng.Intn(100)) + 0.5)},
			Property{Name: "PropB", Value: StringLit("value b")},
			Property{Name: "PropC", Value: BoolLit(rng.Intn(2) == 0)},
		)
		sid.Trader = te
	}

	// UI annotations on the first op.
	if rng.Intn(2) == 0 {
		sid.UI = &UISpec{
			Docs:    map[string]string{sid.Ops[0].Name: "annotated op"},
			Widgets: map[string]string{sid.Ops[0].Name: "button"},
		}
	}

	// Unknown extension modules.
	for i := rng.Intn(3); i > 0; i-- {
		sid.Unknown = append(sid.Unknown, RawModule{
			Name: fmt.Sprintf("COSM_Random%d", i),
			Body: fmt.Sprintf("const long X = %d;", rng.Intn(100)),
		})
	}
	return sid
}

// randomNamedType builds a named enum, struct or sequence typedef whose
// member types reference only already-declared names.
func randomNamedType(rng *rand.Rand, sid *SID, name string) *Type {
	switch rng.Intn(3) {
	case 0:
		n := 1 + rng.Intn(4)
		lits := make([]string, n)
		for i := range lits {
			lits[i] = fmt.Sprintf("%s_L%d", name[:len(name)-2], i)
		}
		return EnumOf(name, lits...)
	case 1:
		n := 1 + rng.Intn(4)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{Name: fmt.Sprintf("f%d", i), Type: randomRefType(rng, sid)}
		}
		return StructOf(name, fields...)
	default:
		seq := SequenceOf(randomRefType(rng, sid))
		seq.Name = name
		return seq
	}
}

// randomRefType picks a scalar or an already-declared named type.
func randomRefType(rng *rand.Rand, sid *SID) *Type {
	if len(sid.Types) > 0 && rng.Intn(3) == 0 {
		return sid.Types[rng.Intn(len(sid.Types))]
	}
	scalars := []Kind{Bool, Octet, Int16, Int32, Int64, UInt32, UInt64, Float32, Float64, String, SvcRef}
	return Basic(scalars[rng.Intn(len(scalars))])
}

// TestRandomSIDRoundTripProperty is the parser/printer fuzz: any valid
// SID must survive IDL rendering and re-parsing as an equivalent
// description, and the canonical text must be a fixed point.
func TestRandomSIDRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for i := 0; i < 300; i++ {
		orig := randomSID(rng)
		if err := orig.Validate(); err != nil {
			t.Fatalf("iteration %d: generated invalid SID: %v", i, err)
		}
		text := orig.IDL()
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: re-parse failed: %v\n%s", i, err, text)
		}
		assertSIDEquivalent(t, orig, parsed)
		text2 := parsed.IDL()
		if text != text2 {
			t.Fatalf("iteration %d: canonical form not a fixed point:\n--- a ---\n%s\n--- b ---\n%s", i, text, text2)
		}
		// Conformance reflexivity on random descriptions.
		if err := parsed.ConformsTo(orig); err != nil {
			t.Fatalf("iteration %d: parsed SID does not conform to original: %v", i, err)
		}
	}
}
