package sidl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if got := Int64.String(); got != "long long" {
		t.Fatalf("Int64.String() = %q", got)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestBasicPanicsOnConstructed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Basic(Struct) should panic")
		}
	}()
	Basic(Struct)
}

func TestFieldAndOrdinal(t *testing.T) {
	st := StructOf("S", Field{Name: "a", Type: Basic(Int32)}, Field{Name: "b", Type: Basic(String)})
	if f, ok := st.Field("b"); !ok || f.Type.Kind != String {
		t.Fatalf("Field(b) = %+v, %v", f, ok)
	}
	if _, ok := st.Field("zz"); ok {
		t.Fatal("Field(zz) should be absent")
	}
	if _, ok := Basic(Int32).Field("a"); ok {
		t.Fatal("Field on non-struct should be absent")
	}
	en := EnumOf("E", "A", "B", "C")
	if ord, ok := en.Ordinal("C"); !ok || ord != 2 {
		t.Fatalf("Ordinal(C) = %d, %v", ord, ok)
	}
	if _, ok := en.Ordinal("Z"); ok {
		t.Fatal("Ordinal(Z) should be absent")
	}
	if _, ok := Basic(Int32).Ordinal("A"); ok {
		t.Fatal("Ordinal on non-enum should be absent")
	}
}

func TestTypeEqualIgnoresNames(t *testing.T) {
	a := &Type{Kind: Int32, Name: "Miles"}
	b := Basic(Int32)
	if !a.Equal(b) {
		t.Fatal("typedef'd long must equal plain long")
	}
}

func TestTypeEqual(t *testing.T) {
	s1 := StructOf("S", Field{Name: "a", Type: Basic(Int32)})
	s2 := StructOf("T", Field{Name: "a", Type: Basic(Int32)})
	s3 := StructOf("S", Field{Name: "a", Type: Basic(Int64)})
	s4 := StructOf("S", Field{Name: "b", Type: Basic(Int32)})
	if !s1.Equal(s2) {
		t.Fatal("same structure, different names must be Equal")
	}
	if s1.Equal(s3) || s1.Equal(s4) {
		t.Fatal("different structures must not be Equal")
	}
	q1 := SequenceOf(Basic(String))
	q2 := SequenceOf(Basic(String))
	q3 := SequenceOf(Basic(Bool))
	if !q1.Equal(q2) || q1.Equal(q3) {
		t.Fatal("sequence equality broken")
	}
	e1 := EnumOf("E", "A", "B")
	e2 := EnumOf("F", "A", "B")
	e3 := EnumOf("E", "B", "A")
	if !e1.Equal(e2) || e1.Equal(e3) {
		t.Fatal("enum equality broken")
	}
}

func TestConformsToScalars(t *testing.T) {
	kinds := []Kind{Bool, Octet, Int16, Int32, Int64, UInt32, UInt64, Float32, Float64, String, SvcRef}
	for _, a := range kinds {
		for _, b := range kinds {
			got := Basic(a).ConformsTo(Basic(b))
			if want := a == b; got != want {
				t.Fatalf("Basic(%s).ConformsTo(Basic(%s)) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestConformsToRecordWidth(t *testing.T) {
	// The paper's SIDBase/SIDSub example: a record subtype has at least
	// the base's fields and possibly more (Fig. 2).
	base := StructOf("SIDBase",
		Field{Name: "typespec", Type: Basic(String)},
		Field{Name: "opspec", Type: Basic(String)},
	)
	sub := StructOf("SIDSub",
		Field{Name: "typespec", Type: Basic(String)},
		Field{Name: "opspec", Type: Basic(String)},
		Field{Name: "fsmspec", Type: Basic(String)},
	)
	if !sub.ConformsTo(base) {
		t.Fatalf("SIDSub must conform to SIDBase: %v", sub.ExplainConformance(base))
	}
	if base.ConformsTo(sub) {
		t.Fatal("SIDBase must not conform to SIDSub (missing fsmspec)")
	}
	// Field order does not matter.
	shuffled := StructOf("S",
		Field{Name: "opspec", Type: Basic(String)},
		Field{Name: "typespec", Type: Basic(String)},
	)
	if !shuffled.ConformsTo(base) {
		t.Fatal("field order must not affect conformance")
	}
}

func TestConformsToDepth(t *testing.T) {
	innerBase := StructOf("", Field{Name: "x", Type: Basic(Int32)})
	innerSub := StructOf("", Field{Name: "x", Type: Basic(Int32)}, Field{Name: "y", Type: Basic(Int32)})
	base := StructOf("B", Field{Name: "inner", Type: innerBase})
	sub := StructOf("S", Field{Name: "inner", Type: innerSub})
	if !sub.ConformsTo(base) {
		t.Fatal("depth subtyping must hold")
	}
	if base.ConformsTo(sub) {
		t.Fatal("depth subtyping is directional")
	}
}

func TestConformsToEnumPrefix(t *testing.T) {
	base := EnumOf("CarModel", "AUDI", "FIAT_Uno")
	extended := EnumOf("CarModel2", "AUDI", "FIAT_Uno", "VW_Golf")
	reordered := EnumOf("CarModel3", "FIAT_Uno", "AUDI", "VW_Golf")
	if !extended.ConformsTo(base) {
		t.Fatal("extended enum must conform to base")
	}
	if base.ConformsTo(extended) {
		t.Fatal("base enum must not conform to extension")
	}
	if reordered.ConformsTo(base) {
		t.Fatal("reordering literals changes ordinals and breaks conformance")
	}
}

func TestConformsToSequenceCovariant(t *testing.T) {
	base := SequenceOf(StructOf("", Field{Name: "a", Type: Basic(Int32)}))
	sub := SequenceOf(StructOf("", Field{Name: "a", Type: Basic(Int32)}, Field{Name: "b", Type: Basic(Bool)}))
	if !sub.ConformsTo(base) {
		t.Fatal("sequences must be covariant in the element type")
	}
	if base.ConformsTo(sub) {
		t.Fatal("sequence covariance is directional")
	}
}

func TestConformsToKindMismatch(t *testing.T) {
	if Basic(Int32).ConformsTo(Basic(Float64)) {
		t.Fatal("long must not conform to double")
	}
	if SequenceOf(Basic(Int32)).ConformsTo(Basic(Int32)) {
		t.Fatal("sequence must not conform to scalar")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := StructOf("S",
		Field{Name: "e", Type: EnumOf("E", "A")},
		Field{Name: "q", Type: SequenceOf(Basic(Int32))},
	)
	c := orig.Clone()
	if !c.Equal(orig) {
		t.Fatal("clone must equal original")
	}
	c.Fields[0].Type.Literals[0] = "CHANGED"
	if orig.Fields[0].Type.Literals[0] != "A" {
		t.Fatal("clone shares enum literals with original")
	}
	c.Fields[1].Type.Elem.Kind = Bool
	if orig.Fields[1].Type.Elem.Kind != Int32 {
		t.Fatal("clone shares sequence element with original")
	}
}

// randomType builds a random type tree of bounded depth for properties.
func randomType(rng *rand.Rand, depth int) *Type {
	if depth <= 0 {
		scalars := []Kind{Bool, Int32, Int64, Float64, String}
		return Basic(scalars[rng.Intn(len(scalars))])
	}
	switch rng.Intn(4) {
	case 0:
		n := 1 + rng.Intn(3)
		lits := make([]string, n)
		for i := range lits {
			lits[i] = string(rune('A' + i))
		}
		return EnumOf("", lits...)
	case 1:
		n := 1 + rng.Intn(3)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{Name: string(rune('a' + i)), Type: randomType(rng, depth-1)}
		}
		return StructOf("", fields...)
	case 2:
		return SequenceOf(randomType(rng, depth-1))
	default:
		return randomType(rng, 0)
	}
}

// extendType returns a strict-or-equal supertype-conforming extension of
// t: it adds fields to structs and literals to enums, recursively.
func extendType(rng *rand.Rand, t *Type) *Type {
	c := t.Clone()
	switch c.Kind {
	case Struct:
		for i := range c.Fields {
			c.Fields[i].Type = extendType(rng, c.Fields[i].Type)
		}
		c.Fields = append(c.Fields, Field{Name: "extra_field", Type: Basic(Bool)})
	case Enum:
		c.Literals = append(c.Literals, "EXTRA_LIT")
	case Sequence:
		c.Elem = extendType(rng, c.Elem)
	}
	return c
}

// Properties of the conformance relation: reflexivity, extension
// conformance, and transitivity through a double extension.
func TestConformanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		base := randomType(rng, 3)
		if !base.ConformsTo(base) {
			t.Fatalf("reflexivity violated for %s", base)
		}
		ext := extendType(rng, base)
		if err := ext.ExplainConformance(base); err != nil {
			t.Fatalf("extension must conform: %v\nbase: %s\next: %s", err, base, ext)
		}
		ext2 := extendType(rng, ext)
		if !ext2.ConformsTo(base) {
			t.Fatalf("transitivity violated:\nbase: %s\next2: %s", base, ext2)
		}
	}
}

// Property: Clone is always Equal and never aliases (checked via
// reflect.DeepEqual after mutation-free comparison).
func TestClonePropertyQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(randomType(rng, 3))
		},
	}
	f := func(tt *Type) bool {
		c := tt.Clone()
		return c.Equal(tt) && reflect.DeepEqual(c, tt)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
