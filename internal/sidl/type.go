// Package sidl implements the Service Interface Description Language of
// the COSM infrastructure (paper sections 3.1 and 4.1).
//
// A Service Interface Description (SID) is a communicable, first-class
// description of a remote service: its data types, operation signatures,
// and optional COSM extension modules (trader export attributes, an FSM
// protocol restriction, user interface annotations). The concrete syntax
// conforms to OMG CORBA IDL: a SID is one top-level IDL module whose
// COSM-specific parts are embedded as distinguished sub-modules
// (COSM_Operations, COSM_TraderExport, COSM_FSM, COSM_UI). Components
// that do not understand an embedded module skip it and remain able to
// process the rest of the description — the paper's subtype-polymorphism
// and CORBA-compatibility argument (Fig. 2).
package sidl

import (
	"errors"
	"fmt"
	"strings"
)

// Kind enumerates the SIDL type constructors.
type Kind uint8

// The SIDL kinds. Scalar kinds map to the CORBA IDL basic types; Struct,
// Enum and Sequence are the constructed types; SvcRef is the COSM base
// type SERVICEREFERENCE whose values identify remote services and enable
// binding cascades (section 3.2).
const (
	Void Kind = iota + 1
	Bool
	Octet
	Int16
	Int32
	Int64
	UInt32
	UInt64
	Float32
	Float64
	String
	Enum
	Struct
	Sequence
	SvcRef
)

var kindNames = map[Kind]string{
	Void:     "void",
	Bool:     "boolean",
	Octet:    "octet",
	Int16:    "short",
	Int32:    "long",
	Int64:    "long long",
	UInt32:   "unsigned long",
	UInt64:   "unsigned long long",
	Float32:  "float",
	Float64:  "double",
	String:   "string",
	Enum:     "enum",
	Struct:   "struct",
	Sequence: "sequence",
	SvcRef:   "Object",
}

// String returns the IDL spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Scalar reports whether the kind is a basic (non-constructed) type.
func (k Kind) Scalar() bool {
	switch k {
	case Enum, Struct, Sequence:
		return false
	default:
		return k >= Void && k <= SvcRef
	}
}

// Type describes a SIDL type. Types form trees; named types (introduced
// by typedef, enum or struct declarations) carry their declaration name,
// but conformance and equality are purely structural — the name is
// documentation and pretty-printing metadata only.
type Type struct {
	Kind Kind
	// Name is the declaration name for named types ("" for anonymous
	// occurrences of basic types).
	Name string
	// Literals holds the enumeration literals, in ordinal order (Enum).
	Literals []string
	// Fields holds the record members in declaration order (Struct).
	Fields []Field
	// Elem is the element type (Sequence).
	Elem *Type
}

// Field is one member of a struct type.
type Field struct {
	Name string
	Type *Type
}

// Basic returns the unnamed type of a scalar kind. It panics on
// constructed kinds, which require their shape.
func Basic(k Kind) *Type {
	if !k.Scalar() {
		panic("sidl: Basic called with constructed kind " + k.String())
	}
	return &Type{Kind: k}
}

// EnumOf returns an enum type with the given name and literals.
func EnumOf(name string, literals ...string) *Type {
	return &Type{Kind: Enum, Name: name, Literals: literals}
}

// StructOf returns a struct type with the given name and fields.
func StructOf(name string, fields ...Field) *Type {
	return &Type{Kind: Struct, Name: name, Fields: fields}
}

// SequenceOf returns a sequence type over elem.
func SequenceOf(elem *Type) *Type {
	return &Type{Kind: Sequence, Elem: elem}
}

// Field looks up a struct member by name; ok is false if t is not a
// struct or has no such member.
func (t *Type) Field(name string) (Field, bool) {
	if t == nil || t.Kind != Struct {
		return Field{}, false
	}
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Ordinal returns the ordinal of an enum literal; ok is false if t is
// not an enum or the literal is unknown.
func (t *Type) Ordinal(literal string) (int, bool) {
	if t == nil || t.Kind != Enum {
		return 0, false
	}
	for i, l := range t.Literals {
		if l == literal {
			return i, true
		}
	}
	return 0, false
}

// String renders the type reference as it would appear in a declaration
// position: named types by name, anonymous types structurally.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	if t.Name != "" {
		return t.Name
	}
	switch t.Kind {
	case Sequence:
		return "sequence<" + t.Elem.String() + ">"
	case Enum:
		return "enum { " + strings.Join(t.Literals, ", ") + " }"
	case Struct:
		var b strings.Builder
		b.WriteString("struct { ")
		for _, f := range t.Fields {
			b.WriteString(f.Type.String())
			b.WriteString(" ")
			b.WriteString(f.Name)
			b.WriteString("; ")
		}
		b.WriteString("}")
		return b.String()
	default:
		return t.Kind.String()
	}
}

// Clone returns a deep copy of the type tree.
func (t *Type) Clone() *Type {
	if t == nil {
		return nil
	}
	c := &Type{Kind: t.Kind, Name: t.Name}
	if t.Literals != nil {
		c.Literals = append([]string(nil), t.Literals...)
	}
	for _, f := range t.Fields {
		c.Fields = append(c.Fields, Field{Name: f.Name, Type: f.Type.Clone()})
	}
	c.Elem = t.Elem.Clone()
	return c
}

// Equal reports structural equality of two types. Names are ignored:
// "typedef long Miles;" is equal to plain "long".
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case Enum:
		if len(t.Literals) != len(o.Literals) {
			return false
		}
		for i := range t.Literals {
			if t.Literals[i] != o.Literals[i] {
				return false
			}
		}
		return true
	case Struct:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != o.Fields[i].Name || !t.Fields[i].Type.Equal(o.Fields[i].Type) {
				return false
			}
		}
		return true
	case Sequence:
		return t.Elem.Equal(o.Elem)
	default:
		return true
	}
}

// ErrNotConformant reports a failed subtype-conformance check.
var ErrNotConformant = errors.New("sidl: type not conformant")

// ConformsTo implements the record subtype polymorphism of section 3.1:
// sub conforms to base if every value of sub can safely be used where a
// value of base is expected. Concretely:
//
//   - scalar types conform to the identical kind;
//   - a struct conforms to a base struct if it has, for every base
//     field, a same-named field of a conforming type ("width" plus
//     "depth" record subtyping, as in Quest or TL record types) — extra
//     fields are permitted and simply invisible to base-typed readers;
//   - an enum conforms to a base enum if the base's literal list is a
//     prefix of its own (extension adds literals at the end, so ordinals
//     of shared literals are stable);
//   - a sequence conforms covariantly through its element type.
//
// Names never matter. ConformsTo(t, t) holds for all t (reflexivity),
// and the relation is transitive.
func (t *Type) ConformsTo(base *Type) bool {
	return t.conformsTo(base) == nil
}

// ExplainConformance returns nil if t conforms to base, or an error
// describing the first violation found (for diagnostics and tests).
func (t *Type) ExplainConformance(base *Type) error {
	return t.conformsTo(base)
}

func (t *Type) conformsTo(base *Type) error {
	if t == nil || base == nil {
		if t == base {
			return nil
		}
		return fmt.Errorf("%w: nil type", ErrNotConformant)
	}
	if t.Kind != base.Kind {
		return fmt.Errorf("%w: kind %s does not conform to %s", ErrNotConformant, t.Kind, base.Kind)
	}
	switch base.Kind {
	case Enum:
		if len(t.Literals) < len(base.Literals) {
			return fmt.Errorf("%w: enum %s lacks literals of base %s", ErrNotConformant, t, base)
		}
		for i, l := range base.Literals {
			if t.Literals[i] != l {
				return fmt.Errorf("%w: enum literal %d is %q, base requires %q", ErrNotConformant, i, t.Literals[i], l)
			}
		}
		return nil
	case Struct:
		for _, bf := range base.Fields {
			sf, ok := t.Field(bf.Name)
			if !ok {
				return fmt.Errorf("%w: struct lacks base field %q", ErrNotConformant, bf.Name)
			}
			if err := sf.Type.conformsTo(bf.Type); err != nil {
				return fmt.Errorf("field %q: %w", bf.Name, err)
			}
		}
		return nil
	case Sequence:
		if err := t.Elem.conformsTo(base.Elem); err != nil {
			return fmt.Errorf("sequence element: %w", err)
		}
		return nil
	default:
		return nil
	}
}
