// Package naming implements the service-support level of the COSM
// prototype architecture (Fig. 6): the name server, the binder and the
// group manager.
//
// Both the name server and the group manager are themselves COSM
// services, described by SIDs and hosted on ordinary nodes — the same
// dogfooding the paper applies to browsers ("the browser may also act as
// an application service as well"). Clients use the typed wrappers
// NameClient and GroupClient, which perform dynamic invocations through
// the cosm runtime.
package naming

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cosm/internal/ref"
)

// Well-known service names for infrastructure services hosted on nodes.
const (
	// ServiceName is the name server's hosted service name.
	ServiceName = "cosm.naming"
	// GroupServiceName is the group manager's hosted service name.
	GroupServiceName = "cosm.groups"
)

// Errors reported by the registry (and surfaced through RPC as
// application errors).
var (
	ErrNotFound  = errors.New("naming: name not bound")
	ErrNameTaken = errors.New("naming: name already bound")
	ErrBadName   = errors.New("naming: empty name")
)

// Registry is the name server's in-memory store: a flat map from names
// to service references. It is safe for concurrent use and usable both
// embedded (in-process) and behind the RPC facade.
type Registry struct {
	mu    sync.RWMutex
	names map[string]ref.ServiceRef
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]ref.ServiceRef{}}
}

// Register binds name to target. Rebinding an existing name fails;
// use Rebind for explicit replacement.
func (r *Registry) Register(name string, target ref.ServiceRef) error {
	if name == "" {
		return ErrBadName
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.names[name]; exists {
		return fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	r.names[name] = target
	return nil
}

// Rebind binds name to target, replacing any existing binding.
func (r *Registry) Rebind(name string, target ref.ServiceRef) error {
	if name == "" {
		return ErrBadName
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names[name] = target
	return nil
}

// Unregister removes the binding for name (no-op if absent).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.names, name)
}

// Resolve returns the reference bound to name.
func (r *Registry) Resolve(name string) (ref.ServiceRef, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	target, ok := r.names[name]
	if !ok {
		return ref.ServiceRef{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return target, nil
}

// Entry is one name binding.
type Entry struct {
	Name   string
	Target ref.ServiceRef
}

// List returns all bindings whose name has the given prefix, sorted by
// name. An empty prefix lists everything.
func (r *Registry) List(prefix string) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	entries := make([]Entry, 0, len(r.names))
	for name, target := range r.names {
		if strings.HasPrefix(name, prefix) {
			entries = append(entries, Entry{Name: name, Target: target})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// Len returns the number of bindings.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Groups is the group manager's in-memory store: named sets of endpoint
// strings, backing the multicast/broadcast function of the communication
// level.
type Groups struct {
	mu     sync.RWMutex
	groups map[string]map[string]bool
}

// NewGroups returns an empty group store.
func NewGroups() *Groups {
	return &Groups{groups: map[string]map[string]bool{}}
}

// Join adds endpoint to group, creating the group if needed.
func (g *Groups) Join(group, endpoint string) error {
	if group == "" || endpoint == "" {
		return ErrBadName
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	set, ok := g.groups[group]
	if !ok {
		set = map[string]bool{}
		g.groups[group] = set
	}
	set[endpoint] = true
	return nil
}

// Leave removes endpoint from group; empty groups disappear.
func (g *Groups) Leave(group, endpoint string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set, ok := g.groups[group]
	if !ok {
		return
	}
	delete(set, endpoint)
	if len(set) == 0 {
		delete(g.groups, group)
	}
}

// Members returns the endpoints in group, sorted (nil if absent).
func (g *Groups) Members(group string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	set, ok := g.groups[group]
	if !ok {
		return nil
	}
	members := make([]string, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Strings(members)
	return members
}

// Names returns all group names, sorted.
func (g *Groups) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	names := make([]string, 0, len(g.groups))
	for n := range g.groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
