package naming

import (
	"context"
	"errors"
	"testing"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

func TestRegistryLocal(t *testing.T) {
	reg := NewRegistry()
	a := ref.New("tcp:h:1", "A")
	b := ref.New("tcp:h:2", "B")

	if err := reg.Register("svc/a", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("svc/a", b); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("dup register err = %v", err)
	}
	if err := reg.Register("", a); !errors.Is(err, ErrBadName) {
		t.Fatalf("empty name err = %v", err)
	}
	if err := reg.Rebind("svc/a", b); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Resolve("svc/a")
	if err != nil || got != b {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
	if _, err := reg.Resolve("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := reg.Register("svc/b", a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("other", a); err != nil {
		t.Fatal(err)
	}
	entries := reg.List("svc/")
	if len(entries) != 2 || entries[0].Name != "svc/a" || entries[1].Name != "svc/b" {
		t.Fatalf("List = %+v", entries)
	}
	if reg.Len() != 3 {
		t.Fatalf("Len = %d", reg.Len())
	}
	reg.Unregister("svc/a")
	if _, err := reg.Resolve("svc/a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unregister did not remove binding")
	}
}

func TestGroupsLocal(t *testing.T) {
	g := NewGroups()
	if err := g.Join("", "e"); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v", err)
	}
	if err := g.Join("traders", "tcp:h:1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Join("traders", "tcp:h:2"); err != nil {
		t.Fatal(err)
	}
	if err := g.Join("traders", "tcp:h:1"); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := g.Members("traders"); len(got) != 2 || got[0] != "tcp:h:1" {
		t.Fatalf("Members = %v", got)
	}
	if got := g.Members("ghost"); got != nil {
		t.Fatalf("ghost Members = %v", got)
	}
	g.Leave("traders", "tcp:h:1")
	g.Leave("ghost", "x") // no-op
	if got := g.Members("traders"); len(got) != 1 {
		t.Fatalf("Members = %v", got)
	}
	g.Leave("traders", "tcp:h:2")
	if got := g.Names(); len(got) != 0 {
		t.Fatalf("empty group not removed: %v", got)
	}
}

// startNamingNode hosts a name server and a group manager on one node.
func startNamingNode(t *testing.T, loopName string) (*cosm.Node, ref.ServiceRef, ref.ServiceRef) {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	nameSvc, err := NewService(NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	groupSvc, err := NewGroupService(NewGroups())
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(ServiceName, nameSvc); err != nil {
		t.Fatal(err)
	}
	if err := node.Host(GroupServiceName, groupSvc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor(ServiceName), node.MustRefFor(GroupServiceName)
}

func TestNameServiceRemote(t *testing.T) {
	node, nameRef, _ := startNamingNode(t, "ns-remote")
	ctx := context.Background()
	nc, err := DialNameServer(ctx, node.Pool(), nameRef)
	if err != nil {
		t.Fatal(err)
	}

	target := ref.New("tcp:far:9", "CarRentalService")
	if err := nc.Register(ctx, "market/cars", target); err != nil {
		t.Fatal(err)
	}
	if err := nc.Register(ctx, "market/cars", target); err == nil {
		t.Fatal("duplicate register must fail remotely")
	}
	got, err := nc.Resolve(ctx, "market/cars")
	if err != nil || got != target {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
	if _, err := nc.Resolve(ctx, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resolve(nope) err = %v, want ErrNotFound across the wire", err)
	}

	other := ref.New("tcp:far:10", "Other")
	if err := nc.Rebind(ctx, "market/cars", other); err != nil {
		t.Fatal(err)
	}
	if got, _ := nc.Resolve(ctx, "market/cars"); got != other {
		t.Fatalf("after Rebind: %v", got)
	}

	if err := nc.Register(ctx, "market/bikes", target); err != nil {
		t.Fatal(err)
	}
	entries, err := nc.List(ctx, "market/")
	if err != nil || len(entries) != 2 {
		t.Fatalf("List = %+v, %v", entries, err)
	}
	if entries[0].Name != "market/bikes" || entries[0].Target != target {
		t.Fatalf("List[0] = %+v", entries[0])
	}

	if err := nc.Unregister(ctx, "market/cars"); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Resolve(ctx, "market/cars"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unregistered name must not resolve")
	}
}

func TestGroupServiceRemote(t *testing.T) {
	node, _, groupRef := startNamingNode(t, "grp-remote")
	ctx := context.Background()
	gc, err := DialGroups(ctx, node.Pool(), groupRef)
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.Join(ctx, "traders", "tcp:a:1"); err != nil {
		t.Fatal(err)
	}
	if err := gc.Join(ctx, "traders", "tcp:b:2"); err != nil {
		t.Fatal(err)
	}
	if err := gc.Join(ctx, "browsers", "tcp:c:3"); err != nil {
		t.Fatal(err)
	}
	members, err := gc.Members(ctx, "traders")
	if err != nil || len(members) != 2 {
		t.Fatalf("Members = %v, %v", members, err)
	}
	groups, err := gc.Groups(ctx)
	if err != nil || len(groups) != 2 || groups[0] != "browsers" {
		t.Fatalf("Groups = %v, %v", groups, err)
	}
	if err := gc.Leave(ctx, "traders", "tcp:a:1"); err != nil {
		t.Fatal(err)
	}
	members, _ = gc.Members(ctx, "traders")
	if len(members) != 1 || members[0] != "tcp:b:2" {
		t.Fatalf("Members after Leave = %v", members)
	}
	if err := gc.Join(ctx, "", "x"); err == nil {
		t.Fatal("empty group must fail remotely")
	}
}

func TestNameServiceIsDescribable(t *testing.T) {
	// The name server is itself a COSM service: a generic client can
	// fetch its SID and see its operations.
	node, nameRef, _ := startNamingNode(t, "ns-describe")
	sid, err := cosm.Describe(context.Background(), node.Pool(), nameRef)
	if err != nil {
		t.Fatal(err)
	}
	if sid.ServiceName != "CosmNaming" {
		t.Fatalf("ServiceName = %q", sid.ServiceName)
	}
	if _, ok := sid.Op("Resolve"); !ok {
		t.Fatal("Resolve missing from name server SID")
	}
}

func TestBinder(t *testing.T) {
	node, nameRef, _ := startNamingNode(t, "binder")
	ctx := context.Background()

	// Host an application service on the same node and register it.
	sid := sidl.CarRentalSID()
	svc, err := cosm.NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	svc.MustHandle("SelectCar", func(call *cosm.Call) error {
		call.Result = xcode.Zero(sid.Type("SelectCarReturn_t"))
		return nil
	})
	svc.MustHandle("Commit", func(call *cosm.Call) error {
		call.Result = xcode.Zero(sid.Type("BookCarReturn_t"))
		return nil
	})
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	carRef := node.MustRefFor("CarRentalService")

	nc, err := DialNameServer(ctx, node.Pool(), nameRef)
	if err != nil {
		t.Fatal(err)
	}
	if err := nc.Register(ctx, "rentals/hamburg", carRef); err != nil {
		t.Fatal(err)
	}

	for _, cached := range []bool{true, false} {
		name := "cached"
		opts := []BinderOption{}
		if !cached {
			name = "uncached"
			opts = append(opts, WithoutBinderCache())
		}
		t.Run(name, func(t *testing.T) {
			b := NewBinder(node.Pool(), nc, opts...)
			conn, err := b.BindName(ctx, "rentals/hamburg")
			if err != nil {
				t.Fatal(err)
			}
			if conn.SID().ServiceName != "CarRentalService" {
				t.Fatalf("bound SID = %q", conn.SID().ServiceName)
			}
			if _, err := conn.Invoke(ctx, "SelectCar", xcode.Zero(sid.Type("SelectCar_t"))); err != nil {
				t.Fatal(err)
			}
			// Second bind exercises the cache path (or its absence).
			conn2, err := b.BindName(ctx, "rentals/hamburg")
			if err != nil {
				t.Fatal(err)
			}
			if conn2.Ref() != carRef {
				t.Fatalf("rebind ref = %v", conn2.Ref())
			}
			// Unknown names fail.
			if _, err := b.BindName(ctx, "rentals/ghost"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

func TestBinderInvalidate(t *testing.T) {
	node, nameRef, _ := startNamingNode(t, "binder-inv")
	ctx := context.Background()
	nc, err := DialNameServer(ctx, node.Pool(), nameRef)
	if err != nil {
		t.Fatal(err)
	}
	target := node.MustRefFor(ServiceName) // bind a name to the name server itself
	if err := nc.Register(ctx, "self", target); err != nil {
		t.Fatal(err)
	}
	b := NewBinder(node.Pool(), nc)
	if _, err := b.Resolve(ctx, "self"); err != nil {
		t.Fatal(err)
	}
	// Rebind remotely; the cached reference is now stale until
	// invalidated.
	moved := ref.New(target.Endpoint, GroupServiceName)
	if err := nc.Rebind(ctx, "self", moved); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Resolve(ctx, "self")
	if got != target {
		t.Fatalf("expected stale cached ref, got %v", got)
	}
	b.Invalidate("self")
	got, err = b.Resolve(ctx, "self")
	if err != nil || got != moved {
		t.Fatalf("after Invalidate: %v, %v", got, err)
	}
}
