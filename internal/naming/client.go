package naming

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// NameClient is a typed wrapper over a dynamic binding to a remote name
// server. It exists for the convenience of infrastructure code; a
// generic client can of course drive the same service from its SID
// alone.
type NameClient struct {
	conn *cosm.Conn
	strT *sidl.Type
	refT *sidl.Type
}

// DialNameServer binds to the name server behind r.
func DialNameServer(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) (*NameClient, error) {
	conn, err := cosm.Bind(ctx, pool, r)
	if err != nil {
		return nil, err
	}
	return &NameClient{
		conn: conn,
		strT: sidl.Basic(sidl.String),
		refT: sidl.Basic(sidl.SvcRef),
	}, nil
}

// Register binds name to target at the remote name server.
func (c *NameClient) Register(ctx context.Context, name string, target ref.ServiceRef) error {
	_, err := c.conn.Invoke(ctx, "Register",
		xcode.NewString(c.strT, name), xcode.NewRef(c.refT, target))
	return wrapRemote(err)
}

// Rebind binds name to target, replacing an existing binding.
func (c *NameClient) Rebind(ctx context.Context, name string, target ref.ServiceRef) error {
	_, err := c.conn.Invoke(ctx, "Rebind",
		xcode.NewString(c.strT, name), xcode.NewRef(c.refT, target))
	return wrapRemote(err)
}

// Unregister removes the binding for name.
func (c *NameClient) Unregister(ctx context.Context, name string) error {
	_, err := c.conn.Invoke(ctx, "Unregister", xcode.NewString(c.strT, name))
	return wrapRemote(err)
}

// Resolve returns the reference bound to name.
func (c *NameClient) Resolve(ctx context.Context, name string) (ref.ServiceRef, error) {
	res, err := c.conn.Invoke(ctx, "Resolve", xcode.NewString(c.strT, name))
	if err != nil {
		return ref.ServiceRef{}, wrapRemote(err)
	}
	return res.Value.Ref, nil
}

// List returns bindings by name prefix.
func (c *NameClient) List(ctx context.Context, prefix string) ([]Entry, error) {
	res, err := c.conn.Invoke(ctx, "List", xcode.NewString(c.strT, prefix))
	if err != nil {
		return nil, wrapRemote(err)
	}
	entries := make([]Entry, 0, len(res.Value.Elems))
	for _, ev := range res.Value.Elems {
		name, err := ev.Field("name")
		if err != nil {
			return nil, err
		}
		target, err := ev.Field("target")
		if err != nil {
			return nil, err
		}
		entries = append(entries, Entry{Name: name.Str, Target: target.Ref})
	}
	return entries, nil
}

// GroupClient is a typed wrapper over a dynamic binding to a remote
// group manager.
type GroupClient struct {
	conn *cosm.Conn
	strT *sidl.Type
}

// DialGroups binds to the group manager behind r.
func DialGroups(ctx context.Context, pool *wire.Pool, r ref.ServiceRef) (*GroupClient, error) {
	conn, err := cosm.Bind(ctx, pool, r)
	if err != nil {
		return nil, err
	}
	return &GroupClient{conn: conn, strT: sidl.Basic(sidl.String)}, nil
}

// Join adds endpoint to group.
func (c *GroupClient) Join(ctx context.Context, group, endpoint string) error {
	_, err := c.conn.Invoke(ctx, "Join",
		xcode.NewString(c.strT, group), xcode.NewString(c.strT, endpoint))
	return wrapRemote(err)
}

// Leave removes endpoint from group.
func (c *GroupClient) Leave(ctx context.Context, group, endpoint string) error {
	_, err := c.conn.Invoke(ctx, "Leave",
		xcode.NewString(c.strT, group), xcode.NewString(c.strT, endpoint))
	return wrapRemote(err)
}

// Members returns the endpoints in group.
func (c *GroupClient) Members(ctx context.Context, group string) ([]string, error) {
	res, err := c.conn.Invoke(ctx, "Members", xcode.NewString(c.strT, group))
	if err != nil {
		return nil, wrapRemote(err)
	}
	return stringSeq(res.Value), nil
}

// Groups returns all group names.
func (c *GroupClient) Groups(ctx context.Context) ([]string, error) {
	res, err := c.conn.Invoke(ctx, "Groups")
	if err != nil {
		return nil, wrapRemote(err)
	}
	return stringSeq(res.Value), nil
}

func stringSeq(v *xcode.Value) []string {
	out := make([]string, 0, len(v.Elems))
	for _, e := range v.Elems {
		out = append(out, e.Str)
	}
	return out
}

// wrapRemote preserves the transport error chain and re-maps the name
// server's not-bound failure (which crosses the wire as message text
// only) back onto ErrNotFound for errors.Is.
func wrapRemote(err error) error {
	if err == nil {
		return nil
	}
	var re *wire.RemoteError
	if errors.As(err, &re) && re.Status == wire.StatusAppError && strings.Contains(re.Msg, ErrNotFound.Error()) {
		return fmt.Errorf("%w: %w", ErrNotFound, err)
	}
	return fmt.Errorf("naming: %w", err)
}
