package naming

import (
	"context"
	"sync"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
)

// Binder is the client-side binder function of the prototype
// architecture (Fig. 6, service-support level): it resolves symbolic
// names through a name server and establishes bindings, caching resolved
// references and fetched SIDs so repeated bindings to the same service
// avoid both the name-server round trip and the SID transfer. The cache
// is the subject of the SID-cache ablation benchmark.
type Binder struct {
	pool  *wire.Pool
	names *NameClient

	mu       sync.Mutex
	refCache map[string]ref.ServiceRef
	sidCache map[ref.ServiceRef]*sidl.SID
	caching  bool
}

// BinderOption configures a Binder.
type BinderOption func(*Binder)

// WithoutBinderCache disables reference and SID caching (every bind
// resolves and describes afresh); used by the ablation benchmarks.
func WithoutBinderCache() BinderOption {
	return func(b *Binder) { b.caching = false }
}

// NewBinder returns a binder resolving through the given name client.
func NewBinder(pool *wire.Pool, names *NameClient, opts ...BinderOption) *Binder {
	b := &Binder{
		pool:     pool,
		names:    names,
		refCache: map[string]ref.ServiceRef{},
		sidCache: map[ref.ServiceRef]*sidl.SID{},
		caching:  true,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Resolve maps a symbolic name to a reference, using the cache when
// enabled.
func (b *Binder) Resolve(ctx context.Context, name string) (ref.ServiceRef, error) {
	if b.caching {
		b.mu.Lock()
		r, ok := b.refCache[name]
		b.mu.Unlock()
		if ok {
			return r, nil
		}
	}
	r, err := b.names.Resolve(ctx, name)
	if err != nil {
		return ref.ServiceRef{}, err
	}
	if b.caching {
		b.mu.Lock()
		b.refCache[name] = r
		b.mu.Unlock()
	}
	return r, nil
}

// BindName resolves a symbolic name and binds to the service behind it.
func (b *Binder) BindName(ctx context.Context, name string) (*cosm.Conn, error) {
	r, err := b.Resolve(ctx, name)
	if err != nil {
		return nil, err
	}
	return b.BindRef(ctx, r)
}

// BindRef binds to a known reference, fetching the SID unless cached.
func (b *Binder) BindRef(ctx context.Context, r ref.ServiceRef) (*cosm.Conn, error) {
	if b.caching {
		b.mu.Lock()
		sid, ok := b.sidCache[r]
		b.mu.Unlock()
		if ok {
			return cosm.BindWithSID(b.pool, r, sid)
		}
	}
	sid, err := cosm.Describe(ctx, b.pool, r)
	if err != nil {
		return nil, err
	}
	if b.caching {
		b.mu.Lock()
		b.sidCache[r] = sid
		b.mu.Unlock()
	}
	return cosm.BindWithSID(b.pool, r, sid)
}

// Invalidate drops any cached state for a symbolic name and its
// reference, forcing the next bind to resolve afresh (e.g. after a
// service moved).
func (b *Binder) Invalidate(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if r, ok := b.refCache[name]; ok {
		delete(b.sidCache, r)
	}
	delete(b.refCache, name)
}
