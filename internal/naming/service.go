package naming

import (
	"fmt"

	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

// IDL is the name server's own service description: the name server is
// a COSM service like any other and can therefore be described, browsed
// and invoked generically.
const IDL = `
// Binds names to service references for one administrative domain.
module CosmNaming {
    struct Entry_t {
        string name;
        Object target;
    };
    typedef sequence<Entry_t> Entries_t;
    interface COSM_Operations {
        // Bind a name; fails if the name is already bound.
        void Register(in string name, in Object target);
        // Bind a name, replacing any existing binding.
        void Rebind(in string name, in Object target);
        // Remove a binding (no-op if absent).
        void Unregister(in string name);
        // Resolve a name to a service reference.
        Object Resolve(in string name);
        // List bindings by name prefix ("" lists all).
        Entries_t List(in string prefix);
    };
};
`

// GroupIDL is the group manager's service description.
const GroupIDL = `
// Maintains named endpoint groups for multicast/broadcast.
module CosmGroups {
    typedef sequence<string> Members_t;
    interface COSM_Operations {
        void Join(in string group, in string endpoint);
        void Leave(in string group, in string endpoint);
        Members_t Members(in string group);
        Members_t Groups();
    };
};
`

// NewService wraps a Registry as a hosted COSM service.
func NewService(reg *Registry) (*cosm.Service, error) {
	sid, err := sidl.Parse(IDL)
	if err != nil {
		return nil, fmt.Errorf("naming: internal IDL: %w", err)
	}
	svc, err := cosm.NewService(sid)
	if err != nil {
		return nil, err
	}
	refT := sidl.Basic(sidl.SvcRef)
	strT := sidl.Basic(sidl.String)
	entryT := sid.Type("Entry_t")
	entriesT := sid.Type("Entries_t")

	nameArg := func(call *cosm.Call) (string, error) {
		v, err := call.Arg("name")
		if err != nil {
			return "", err
		}
		return v.Str, nil
	}
	targetArg := func(call *cosm.Call) (ref.ServiceRef, error) {
		v, err := call.Arg("target")
		if err != nil {
			return ref.ServiceRef{}, err
		}
		return v.Ref, nil
	}

	svc.MustHandle("Register", func(call *cosm.Call) error {
		name, err := nameArg(call)
		if err != nil {
			return err
		}
		target, err := targetArg(call)
		if err != nil {
			return err
		}
		return reg.Register(name, target)
	})
	svc.MustHandle("Rebind", func(call *cosm.Call) error {
		name, err := nameArg(call)
		if err != nil {
			return err
		}
		target, err := targetArg(call)
		if err != nil {
			return err
		}
		return reg.Rebind(name, target)
	})
	svc.MustHandle("Unregister", func(call *cosm.Call) error {
		name, err := nameArg(call)
		if err != nil {
			return err
		}
		reg.Unregister(name)
		return nil
	})
	svc.MustHandle("Resolve", func(call *cosm.Call) error {
		name, err := nameArg(call)
		if err != nil {
			return err
		}
		target, err := reg.Resolve(name)
		if err != nil {
			return err
		}
		call.Result = xcode.NewRef(refT, target)
		return nil
	})
	svc.MustHandle("List", func(call *cosm.Call) error {
		prefix, err := call.Arg("prefix")
		if err != nil {
			return err
		}
		entries := reg.List(prefix.Str)
		elems := make([]*xcode.Value, len(entries))
		for i, e := range entries {
			ev, err := xcode.NewStruct(entryT, map[string]*xcode.Value{
				"name":   xcode.NewString(strT, e.Name),
				"target": xcode.NewRef(refT, e.Target),
			})
			if err != nil {
				return err
			}
			elems[i] = ev
		}
		seq, err := xcode.NewSequence(entriesT, elems...)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	return svc, nil
}

// NewGroupService wraps a Groups store as a hosted COSM service.
func NewGroupService(groups *Groups) (*cosm.Service, error) {
	sid, err := sidl.Parse(GroupIDL)
	if err != nil {
		return nil, fmt.Errorf("naming: internal group IDL: %w", err)
	}
	svc, err := cosm.NewService(sid)
	if err != nil {
		return nil, err
	}
	strT := sidl.Basic(sidl.String)
	membersT := sid.Type("Members_t")

	strArg := func(call *cosm.Call, name string) (string, error) {
		v, err := call.Arg(name)
		if err != nil {
			return "", err
		}
		return v.Str, nil
	}
	strSeq := func(items []string) (*xcode.Value, error) {
		elems := make([]*xcode.Value, len(items))
		for i, s := range items {
			elems[i] = xcode.NewString(strT, s)
		}
		return xcode.NewSequence(membersT, elems...)
	}

	svc.MustHandle("Join", func(call *cosm.Call) error {
		group, err := strArg(call, "group")
		if err != nil {
			return err
		}
		endpoint, err := strArg(call, "endpoint")
		if err != nil {
			return err
		}
		return groups.Join(group, endpoint)
	})
	svc.MustHandle("Leave", func(call *cosm.Call) error {
		group, err := strArg(call, "group")
		if err != nil {
			return err
		}
		endpoint, err := strArg(call, "endpoint")
		if err != nil {
			return err
		}
		groups.Leave(group, endpoint)
		return nil
	})
	svc.MustHandle("Members", func(call *cosm.Call) error {
		group, err := strArg(call, "group")
		if err != nil {
			return err
		}
		seq, err := strSeq(groups.Members(group))
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	svc.MustHandle("Groups", func(call *cosm.Call) error {
		seq, err := strSeq(groups.Names())
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	return svc, nil
}
