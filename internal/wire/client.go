package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client-side errors.
var (
	// ErrClientClosed is returned by calls on a closed client, including
	// calls in flight when the connection breaks.
	ErrClientClosed = errors.New("wire: client closed")
	// ErrRemote wraps failures reported by the remote node (application
	// errors, unknown services or operations, protocol violations).
	ErrRemote = errors.New("wire: remote error")
)

// RemoteError is the client-side view of a non-OK response. It wraps
// ErrRemote and preserves the status class so callers can distinguish,
// e.g., an FSM protocol violation from an application error.
type RemoteError struct {
	Status Status
	Msg    string
}

// Error formats the remote failure.
func (e *RemoteError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("wire: remote error: %s", e.Status)
	}
	return fmt.Sprintf("wire: remote error: %s: %s", e.Status, e.Msg)
}

// Unwrap makes errors.Is(err, ErrRemote) hold for all remote errors.
func (e *RemoteError) Unwrap() error { return ErrRemote }

// Client is a multiplexing RPC client for one endpoint. Concurrent Call
// invocations share the connection; responses are correlated by frame
// id. Clients are safe for concurrent use.
type Client struct {
	endpoint string
	conn     net.Conn

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	closed  bool
	readErr error

	readDone chan struct{}
}

// Dial connects an RPC client to an endpoint ("tcp:..." or "loop:...").
func Dial(endpoint string) (*Client, error) {
	conn, err := DialConn(endpoint)
	if err != nil {
		return nil, err
	}
	c := &Client{
		endpoint: endpoint,
		conn:     conn,
		pending:  map[uint64]chan *Response{},
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Endpoint returns the endpoint this client is connected to.
func (c *Client) Endpoint() string { return c.endpoint }

func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		if f.ftype != frameResponse {
			c.failAll(fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.ftype))
			return
		}
		resp, err := decodeResponse(f.payload)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.id]
		delete(c.pending, f.id)
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
}

// failAll marks the client broken and wakes all waiters.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.readErr = err
	}
	pending := c.pending
	c.pending = map[uint64]chan *Response{}
	c.mu.Unlock()
	_ = c.conn.Close()
	for _, ch := range pending {
		close(ch) // receivers translate a closed channel into ErrClientClosed
	}
}

// Call performs one RPC: it sends the request and waits for the matching
// response or ctx cancellation. On a non-OK status it returns a
// *RemoteError wrapping ErrRemote.
func (c *Client) Call(ctx context.Context, req *Request) ([]byte, error) {
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		return nil, closeErr(err)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, frame{ftype: frameRequest, id: id, payload: encodeRequest(req)})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: send %s/%s: %w", req.Service, req.Op, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return nil, closeErr(err)
		}
		if resp.Status != StatusOK {
			return nil, &RemoteError{Status: resp.Status, Msg: resp.ErrMsg}
		}
		return resp.Body, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("wire: call %s/%s: %w", req.Service, req.Op, ctx.Err())
	}
}

func closeErr(cause error) error {
	if cause == nil {
		return ErrClientClosed
	}
	return fmt.Errorf("%w: %v", ErrClientClosed, cause)
}

// Close tears down the connection; in-flight calls fail with
// ErrClientClosed. Safe to call multiple times.
func (c *Client) Close() error {
	c.failAll(nil)
	<-c.readDone
	return nil
}

// Pool is a cache of Clients keyed by endpoint, used by the binder: a
// node talking to many peers reuses one connection per peer. The zero
// value is not usable; call NewPool.
type Pool struct {
	mu      sync.Mutex
	clients map[string]*Client
	closed  bool
}

// NewPool returns an empty client pool.
func NewPool() *Pool {
	return &Pool{clients: map[string]*Client{}}
}

// Get returns a connected client for endpoint, dialing if needed. A
// previously cached client that has since broken is replaced.
func (p *Pool) Get(endpoint string) (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClientClosed
	}
	if c, ok := p.clients[endpoint]; ok {
		c.mu.Lock()
		broken := c.closed
		c.mu.Unlock()
		if !broken {
			return c, nil
		}
		delete(p.clients, endpoint)
	}
	c, err := Dial(endpoint)
	if err != nil {
		return nil, err
	}
	p.clients[endpoint] = c
	return c, nil
}

// Drop removes and closes the cached client for endpoint, if any.
func (p *Pool) Drop(endpoint string) {
	p.mu.Lock()
	c, ok := p.clients[endpoint]
	delete(p.clients, endpoint)
	p.mu.Unlock()
	if ok {
		_ = c.Close()
	}
}

// Close closes all cached clients.
func (p *Pool) Close() error {
	p.mu.Lock()
	clients := p.clients
	p.clients = map[string]*Client{}
	p.closed = true
	p.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
	return nil
}
